#include "core/kernels_simd.hpp"

#include <algorithm>
#include <atomic>
#include <cfloat>
#include <cmath>
#include <cstring>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/bitshuffle.hpp"
#include "core/format.hpp"
#include "telemetry/telemetry.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define FZ_SIMD_X86 1
#endif

namespace fz {

namespace {

// 1-D inputs are fused in chunks of this many elements (two chunks of i64
// scratch stay far under L2 alongside the 4 KiB tile buffer).
constexpr size_t kFusedChunk1D = 4096;

// ---- scalar reference rows -------------------------------------------------
//
// These are the exact per-element expressions from quantizer.cpp; the SIMD
// tiers must reproduce them bit-for-bit and fall back to them for tails and
// out-of-range lane groups.

inline i64 prequant_one(double v, double inv) {
  return static_cast<i64>(std::llround(v * inv));
}

// The f32 fast path: one float multiply + lrintf, *guaranteed* to match
// the exact double path bit-for-bit.  x32 = fl32(v * fl32(inv)) differs
// from the double product by at most |x|*2^-23 (two f32 roundings), so the
// rounded integer can only disagree when x32 sits within that radius of a
// half-integer boundary — the margin test below sends exactly those lanes
// (and ties, which land inside the margin by construction) to the exact
// path.  The fast range is capped at 2^21, where the margin is still
// meaningfully below 0.5; beyond it every element takes the exact path.
// Callers must also verify fl32(inv) is a *normal* float (f32_fast_ok) —
// a subnormal/overflowed multiplier voids the relative-error bound.
constexpr float kF32FastLimit = 2097152.0f;  // 2^21

inline i64 prequant_one_f32fast(f32 v, double inv, float invf) {
  const float x = v * invf;
  const float ax = std::fabs(x);
  if (!(ax < kF32FastLimit)) return prequant_one(static_cast<double>(v), inv);
  const long r = std::lrintf(x);
  const float diff = std::fabs(x - static_cast<float>(r));
  const float margin = ax * 0x1p-22f + 0x1p-24f;
  if (!(diff < 0.5f - margin)) return prequant_one(static_cast<double>(v), inv);
  return r;
}

/// True when the fast path's error analysis holds: the f32-rounded
/// multiplier must be normal and finite.
inline bool f32_fast_ok(double inv) {
  return inv >= static_cast<double>(FLT_MIN) &&
         inv <= static_cast<double>(FLT_MAX);
}

template <typename T>
void prequant_row_scalar(const T* data, size_t n, double inv, i64* out) {
  for (size_t i = 0; i < n; ++i)
    out[i] = prequant_one(static_cast<double>(data[i]), inv);
}

void prequant_row_f32fast_scalar(const f32* data, size_t n, double inv,
                                 float invf, i64* out) {
  for (size_t i = 0; i < n; ++i)
    out[i] = prequant_one_f32fast(data[i], inv, invf);
}

// The f64 fast path pays one more rounding than the f32 one: the input is
// first narrowed to f32 (vf = fl32(v)), then x = fl32(vf * fl32(inv)) — three
// roundings, so the relative error bound grows to ~3*2^-24 and the margin
// slope widens to 2^-21 (vs 2^-22), leaving >2.6x slack.  Two extra guards
// keep the bound honest: a *subnormal* nonzero fl32(v) voids the relative
// error analysis, so those lanes take the exact path; fl32(v) == 0 with
// v != 0 stays fast because |v * inv| < 2^-149 * 2^128 = 2^-21 < 0.5 then,
// so 0 IS the exact llround.  fl32(v) overflowing to inf fails the range
// test like any large x.  The same kF32FastLimit cap applies (the wider
// margin just reaches 0.5 earlier, sending more large values to the exact
// path — a perf matter, never a correctness one).
constexpr float kF64FastMarginSlope = 0x1p-21f;

inline i64 prequant_one_f64fast(f64 v, double inv, float invf) {
  const float vf = static_cast<float>(v);
  const float av = std::fabs(vf);
  if (av < FLT_MIN && av != 0.0f) return prequant_one(v, inv);
  const float x = vf * invf;
  const float ax = std::fabs(x);
  if (!(ax < kF32FastLimit)) return prequant_one(v, inv);
  const long r = std::lrintf(x);
  const float diff = std::fabs(x - static_cast<float>(r));
  const float margin = ax * kF64FastMarginSlope + 0x1p-24f;
  if (!(diff < 0.5f - margin)) return prequant_one(v, inv);
  return r;
}

void prequant_row_f64fast_scalar(const f64* data, size_t n, double inv,
                                 float invf, i64* out) {
  for (size_t i = 0; i < n; ++i)
    out[i] = prequant_one_f64fast(data[i], inv, invf);
}

inline u16 clip_encode_one(i64 v, size_t& sat) {
  if (sign_magnitude_saturates(v)) ++sat;
  const i64 clipped = v > kMaxMagnitude16
                          ? kMaxMagnitude16
                          : (v < -kMaxMagnitude16 ? -kMaxMagnitude16 : v);
  return sign_magnitude_encode(static_cast<i32>(clipped));
}

size_t encode_row_scalar(const i64* d, size_t n, u16* codes) {
  size_t sat = 0;
  for (size_t i = 0; i < n; ++i) codes[i] = clip_encode_one(d[i], sat);
  return sat;
}

// ---- fused Lorenzo delta + encode rows -------------------------------------
//
// The tile-parallel strip body computes the Lorenzo residual and the
// sign-magnitude code in one kernel, so the delta row of the serial fused
// pass is never stored and reloaded.  Writing d[i] = s[i] - s[i-1] with
// s the rank-specific prediction sum (s = p in 1-D, cur - prev in 2-D,
// cur - prev - ppy + ppy1 in 3-D) makes the three ranks share one shape.
// `has_left` distinguishes a mid-row segment (element 0 has an in-row left
// neighbour) from a row start, whose delta drops every [i-1] term — exactly
// delta_row_2d/3d's d[0].  1-D has no flag: the caller keeps a carry slot
// at p[-1] (zero at the very start).  All arithmetic is i64 adds, so every
// tier is bit-identical by construction.

size_t delta1_encode_scalar(const i64* p, size_t n, u16* out) {
  size_t sat = 0;
  for (size_t i = 0; i < n; ++i)
    out[i] = clip_encode_one(p[i] - p[i - 1], sat);
  return sat;
}

size_t delta2_encode_scalar(const i64* cur, const i64* prev, size_t n,
                            bool has_left, u16* out) {
  size_t sat = 0;
  size_t i = 0;
  if (!has_left && n != 0) out[i++] = clip_encode_one(cur[0] - prev[0], sat);
  for (; i < n; ++i)
    out[i] = clip_encode_one(cur[i] - cur[i - 1] - prev[i] + prev[i - 1], sat);
  return sat;
}

size_t delta3_encode_scalar(const i64* cur, const i64* prev, const i64* ppy,
                            const i64* ppy1, size_t n, bool has_left,
                            u16* out) {
  size_t sat = 0;
  size_t i = 0;
  if (!has_left && n != 0)
    out[i++] = clip_encode_one(cur[0] - prev[0] - ppy[0] + ppy1[0], sat);
  for (; i < n; ++i)
    out[i] = clip_encode_one(cur[i] - cur[i - 1] - prev[i] + prev[i - 1] -
                                 ppy[i] + ppy[i - 1] + ppy1[i] - ppy1[i - 1],
                             sat);
  return sat;
}

void transpose_unit_scalar(const u32* in, u32* out, size_t ostride) {
  u32 tmp[kUnitWords];
  std::memcpy(tmp, in, sizeof(tmp));
  transpose_bit_matrix_32(tmp);
  for (size_t j = 0; j < kUnitWords; ++j) out[j * ostride] = tmp[j];
}

// Marks `nblocks` 4-word blocks: byte_flags[blk] in {0,1}, bit_flags packed
// 8 blocks/byte (tail byte zero-padded) — exactly mark_blocks' output, but
// written unconditionally so no pre-zeroing pass is needed.
void mark_rows_scalar(const u32* words, size_t nblocks, u8* byte_flags,
                      u8* bit_flags) {
  for (size_t g = 0; g * 8 < nblocks; ++g) {
    const size_t lim = std::min<size_t>(8, nblocks - g * 8);
    u8 bits = 0;
    for (size_t h = 0; h < lim; ++h) {
      const u32* w = words + (g * 8 + h) * kBlockWords;
      const u32 nz = w[0] | w[1] | w[2] | w[3];
      byte_flags[g * 8 + h] = nz != 0 ? u8{1} : u8{0};
      if (nz != 0) bits |= static_cast<u8>(1u << h);
    }
    bit_flags[g] = bits;
  }
}

#ifdef FZ_SIMD_X86

// ---- SSE2 tier -------------------------------------------------------------

// Exact-llround limit for the SSE2 path: trunc goes through cvttpd_epi32,
// so the scaled value must fit i32.  Lane pairs at or beyond the limit (or
// NaN) take the scalar fallback, preserving bit-identity everywhere.
constexpr double kSse2ExactLimit = 1073741824.0;  // 2^30

__attribute__((target("sse2"))) inline __m128i llround_pd_sse2(__m128d x) {
  // trunc (exact for |x| < 2^31), then round-half-away adjust: the
  // fraction x - trunc(x) is exact (Sterbenz), |frac| >= 0.5 adds +/-1
  // with the sign of the fraction — precisely std::llround.
  const __m128i t32 = _mm_cvttpd_epi32(x);
  const __m128d t = _mm_cvtepi32_pd(t32);
  const __m128d frac = _mm_sub_pd(x, t);
  const __m128d sign_mask = _mm_set1_pd(-0.0);
  const __m128d afrac = _mm_andnot_pd(sign_mask, frac);
  const __m128d needs = _mm_cmpge_pd(afrac, _mm_set1_pd(0.5));
  const __m128d one = _mm_or_pd(_mm_set1_pd(1.0), _mm_and_pd(frac, sign_mask));
  const __m128d r = _mm_add_pd(t, _mm_and_pd(needs, one));
  // Integer-valued |r| <= 2^30: the 2^52+2^51 magic constant turns the
  // double's mantissa bits into the two's-complement i64 directly.
  const __m128d magic = _mm_set1_pd(6755399441055744.0);
  return _mm_sub_epi64(_mm_castpd_si128(_mm_add_pd(r, magic)),
                       _mm_set1_epi64x(0x4338000000000000LL));
}

__attribute__((target("sse2"))) void prequant_row_f64_sse2(const f64* data,
                                                           size_t n, double inv,
                                                           i64* out) {
  const __m128d vinv = _mm_set1_pd(inv);
  const __m128d sign_mask = _mm_set1_pd(-0.0);
  const __m128d limit = _mm_set1_pd(kSse2ExactLimit);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d x = _mm_mul_pd(_mm_loadu_pd(data + i), vinv);
    const __m128d ax = _mm_andnot_pd(sign_mask, x);
    if (_mm_movemask_pd(_mm_cmpnlt_pd(ax, limit)) != 0) {
      out[i] = prequant_one(data[i], inv);
      out[i + 1] = prequant_one(data[i + 1], inv);
      continue;
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), llround_pd_sse2(x));
  }
  for (; i < n; ++i) out[i] = prequant_one(data[i], inv);
}

__attribute__((target("sse2"))) void prequant_row_f32_sse2(const f32* data,
                                                           size_t n, double inv,
                                                           i64* out) {
  const __m128d vinv = _mm_set1_pd(inv);
  const __m128d sign_mask = _mm_set1_pd(-0.0);
  const __m128d limit = _mm_set1_pd(kSse2ExactLimit);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 v = _mm_loadu_ps(data + i);
    const __m128d lo = _mm_mul_pd(_mm_cvtps_pd(v), vinv);
    const __m128d hi = _mm_mul_pd(_mm_cvtps_pd(_mm_movehl_ps(v, v)), vinv);
    const int biglo = _mm_movemask_pd(_mm_cmpnlt_pd(_mm_andnot_pd(sign_mask, lo), limit));
    const int bighi = _mm_movemask_pd(_mm_cmpnlt_pd(_mm_andnot_pd(sign_mask, hi), limit));
    if ((biglo | bighi) != 0) {
      for (size_t k = 0; k < 4; ++k)
        out[i + k] = prequant_one(static_cast<double>(data[i + k]), inv);
      continue;
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), llround_pd_sse2(lo));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 2), llround_pd_sse2(hi));
  }
  for (; i < n; ++i) out[i] = prequant_one(static_cast<double>(data[i]), inv);
}

__attribute__((target("sse2"))) void prequant_row_f32fast_sse2(
    const f32* data, size_t n, double inv, float invf, i64* out) {
  const __m128 vinvf = _mm_set1_ps(invf);
  const __m128 abs_mask = _mm_castsi128_ps(_mm_set1_epi32(0x7fffffff));
  const __m128 limitf = _mm_set1_ps(kF32FastLimit);
  const __m128 half = _mm_set1_ps(0.5f);
  const __m128 mslope = _mm_set1_ps(0x1p-22f);
  const __m128 mfloor = _mm_set1_ps(0x1p-24f);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 x = _mm_mul_ps(_mm_loadu_ps(data + i), vinvf);
    const __m128 ax = _mm_and_ps(x, abs_mask);
    if (_mm_movemask_ps(_mm_cmpnlt_ps(ax, limitf)) != 0) {
      for (size_t k = 0; k < 4; ++k)
        out[i + k] = prequant_one_f32fast(data[i + k], inv, invf);
      continue;
    }
    const __m128i q = _mm_cvtps_epi32(x);  // nearest-even == lrintf
    // Same margin test as prequant_one_f32fast, all four lanes at once;
    // any lane too close to a half-integer boundary sends the group to
    // the exact scalar path.
    const __m128 diff =
        _mm_and_ps(_mm_sub_ps(x, _mm_cvtepi32_ps(q)), abs_mask);
    const __m128 margin = _mm_add_ps(_mm_mul_ps(ax, mslope), mfloor);
    if (_mm_movemask_ps(_mm_cmpnlt_ps(diff, _mm_sub_ps(half, margin))) != 0) {
      for (size_t k = 0; k < 4; ++k)
        out[i + k] = prequant_one_f32fast(data[i + k], inv, invf);
      continue;
    }
    const __m128i sign = _mm_srai_epi32(q, 31);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_unpacklo_epi32(q, sign));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 2),
                     _mm_unpackhi_epi32(q, sign));
  }
  for (; i < n; ++i) out[i] = prequant_one_f32fast(data[i], inv, invf);
}

__attribute__((target("sse2"))) void prequant_row_f64fast_sse2(
    const f64* data, size_t n, double inv, float invf, i64* out) {
  const __m128 vinvf = _mm_set1_ps(invf);
  const __m128 abs_mask = _mm_castsi128_ps(_mm_set1_epi32(0x7fffffff));
  const __m128 limitf = _mm_set1_ps(kF32FastLimit);
  const __m128 fltmin = _mm_set1_ps(FLT_MIN);
  const __m128 zero = _mm_setzero_ps();
  const __m128 half = _mm_set1_ps(0.5f);
  const __m128 mslope = _mm_set1_ps(kF64FastMarginSlope);
  const __m128 mfloor = _mm_set1_ps(0x1p-24f);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // cvtpd_ps narrows round-to-nearest-even, exactly fl32(v).
    const __m128 vf = _mm_movelh_ps(_mm_cvtpd_ps(_mm_loadu_pd(data + i)),
                                    _mm_cvtpd_ps(_mm_loadu_pd(data + i + 2)));
    const __m128 av = _mm_and_ps(vf, abs_mask);
    // Lanes where fl32(v) went subnormal-but-nonzero take the exact path.
    const __m128 sub =
        _mm_and_ps(_mm_cmplt_ps(av, fltmin), _mm_cmpneq_ps(av, zero));
    const __m128 x = _mm_mul_ps(vf, vinvf);
    const __m128 ax = _mm_and_ps(x, abs_mask);
    if (_mm_movemask_ps(_mm_or_ps(sub, _mm_cmpnlt_ps(ax, limitf))) != 0) {
      for (size_t k = 0; k < 4; ++k)
        out[i + k] = prequant_one_f64fast(data[i + k], inv, invf);
      continue;
    }
    const __m128i q = _mm_cvtps_epi32(x);  // nearest-even == lrintf
    // Same margin test as prequant_one_f64fast, all four lanes at once.
    const __m128 diff =
        _mm_and_ps(_mm_sub_ps(x, _mm_cvtepi32_ps(q)), abs_mask);
    const __m128 margin = _mm_add_ps(_mm_mul_ps(ax, mslope), mfloor);
    if (_mm_movemask_ps(_mm_cmpnlt_ps(diff, _mm_sub_ps(half, margin))) != 0) {
      for (size_t k = 0; k < 4; ++k)
        out[i + k] = prequant_one_f64fast(data[i + k], inv, invf);
      continue;
    }
    const __m128i sign = _mm_srai_epi32(q, 31);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_unpacklo_epi32(q, sign));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 2),
                     _mm_unpackhi_epi32(q, sign));
  }
  for (; i < n; ++i) out[i] = prequant_one_f64fast(data[i], inv, invf);
}

// Vectorized Hacker's Delight swap network: the scalar loop in
// transpose_bit_matrix_32 over a[32], four words per XMM register.  The
// j=16/8/4 stages pair whole registers; j=2/1 pair lanes within a register
// via pshufd + a lane mask.  Word-order reversal on load/store conjugates
// the network into our ballot convention, as in the scalar code.
__attribute__((target("sse2"))) inline void hd_step_sse2(__m128i& lo,
                                                         __m128i& hi, int j,
                                                         __m128i m) {
  const __m128i t =
      _mm_and_si128(_mm_xor_si128(lo, _mm_srli_epi32(hi, j)), m);
  lo = _mm_xor_si128(lo, t);
  hi = _mm_xor_si128(hi, _mm_slli_epi32(t, j));
}

__attribute__((target("sse2"))) void transpose_unit_sse2(const u32* in,
                                                         u32* out,
                                                         size_t ostride) {
  __m128i r[8];
  for (size_t i = 0; i < 8; ++i)
    r[i] = _mm_shuffle_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 28 - 4 * i)),
        _MM_SHUFFLE(0, 1, 2, 3));

  const __m128i m16 = _mm_set1_epi32(0x0000ffff);
  for (size_t i = 0; i < 4; ++i) hd_step_sse2(r[i], r[i + 4], 16, m16);
  const __m128i m8 = _mm_set1_epi32(0x00ff00ff);
  hd_step_sse2(r[0], r[2], 8, m8);
  hd_step_sse2(r[1], r[3], 8, m8);
  hd_step_sse2(r[4], r[6], 8, m8);
  hd_step_sse2(r[5], r[7], 8, m8);
  const __m128i m4 = _mm_set1_epi32(0x0f0f0f0f);
  for (size_t i = 0; i < 8; i += 2) hd_step_sse2(r[i], r[i + 1], 4, m4);

  const __m128i m2 = _mm_set1_epi32(0x33333333);
  const __m128i low01 = _mm_set_epi32(0, 0, -1, -1);  // lanes 0,1
  for (auto& reg : r) {
    const __m128i p = _mm_shuffle_epi32(reg, _MM_SHUFFLE(1, 0, 3, 2));
    const __m128i t = _mm_and_si128(
        _mm_and_si128(_mm_xor_si128(reg, _mm_srli_epi32(p, 2)), m2), low01);
    reg = _mm_xor_si128(
        _mm_xor_si128(reg, t),
        _mm_slli_epi32(_mm_shuffle_epi32(t, _MM_SHUFFLE(1, 0, 3, 2)), 2));
  }
  const __m128i m1 = _mm_set1_epi32(0x55555555);
  const __m128i low02 = _mm_set_epi32(0, -1, 0, -1);  // lanes 0,2
  for (auto& reg : r) {
    const __m128i p = _mm_shuffle_epi32(reg, _MM_SHUFFLE(2, 3, 0, 1));
    const __m128i t = _mm_and_si128(
        _mm_and_si128(_mm_xor_si128(reg, _mm_srli_epi32(p, 1)), m1), low02);
    reg = _mm_xor_si128(
        _mm_xor_si128(reg, t),
        _mm_slli_epi32(_mm_shuffle_epi32(t, _MM_SHUFFLE(2, 3, 0, 1)), 1));
  }

  alignas(16) u32 tmp[kUnitWords];
  for (size_t i = 0; i < 8; ++i)
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp + 4 * i), r[i]);
  for (size_t j = 0; j < kUnitWords; ++j) out[j * ostride] = tmp[31 - j];
}

// ---- AVX2 tier -------------------------------------------------------------

// Exact-llround limit for AVX2: roundpd keeps full double range, the magic
// conversion needs |r| < 2^51; 2^50 leaves slack for the +/-1 adjust.
constexpr double kAvx2ExactLimit = 1125899906842624.0;  // 2^50

__attribute__((target("avx2"))) inline __m256i llround_pd_avx2(__m256d x) {
  const __m256d t =
      _mm256_round_pd(x, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
  const __m256d frac = _mm256_sub_pd(x, t);
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const __m256d afrac = _mm256_andnot_pd(sign_mask, frac);
  const __m256d needs = _mm256_cmp_pd(afrac, _mm256_set1_pd(0.5), _CMP_GE_OQ);
  const __m256d one =
      _mm256_or_pd(_mm256_set1_pd(1.0), _mm256_and_pd(frac, sign_mask));
  const __m256d r = _mm256_add_pd(t, _mm256_and_pd(needs, one));
  const __m256d magic = _mm256_set1_pd(6755399441055744.0);  // 2^52 + 2^51
  return _mm256_sub_epi64(_mm256_castpd_si256(_mm256_add_pd(r, magic)),
                          _mm256_set1_epi64x(0x4338000000000000LL));
}

__attribute__((target("avx2"))) void prequant_row_f64_avx2(const f64* data,
                                                           size_t n, double inv,
                                                           i64* out) {
  const __m256d vinv = _mm256_set1_pd(inv);
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const __m256d limit = _mm256_set1_pd(kAvx2ExactLimit);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_mul_pd(_mm256_loadu_pd(data + i), vinv);
    const __m256d ax = _mm256_andnot_pd(sign_mask, x);
    if (_mm256_movemask_pd(_mm256_cmp_pd(ax, limit, _CMP_NLT_UQ)) != 0) {
      for (size_t k = 0; k < 4; ++k) out[i + k] = prequant_one(data[i + k], inv);
      continue;
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), llround_pd_avx2(x));
  }
  for (; i < n; ++i) out[i] = prequant_one(data[i], inv);
}

__attribute__((target("avx2"))) void prequant_row_f32_avx2(const f32* data,
                                                           size_t n, double inv,
                                                           i64* out) {
  const __m256d vinv = _mm256_set1_pd(inv);
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const __m256d limit = _mm256_set1_pd(kAvx2ExactLimit);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_mul_pd(
        _mm256_cvtps_pd(_mm_loadu_ps(data + i)), vinv);
    const __m256d ax = _mm256_andnot_pd(sign_mask, x);
    if (_mm256_movemask_pd(_mm256_cmp_pd(ax, limit, _CMP_NLT_UQ)) != 0) {
      for (size_t k = 0; k < 4; ++k)
        out[i + k] = prequant_one(static_cast<double>(data[i + k]), inv);
      continue;
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), llround_pd_avx2(x));
  }
  for (; i < n; ++i) out[i] = prequant_one(static_cast<double>(data[i]), inv);
}

__attribute__((target("avx2"))) void prequant_row_f32fast_avx2(
    const f32* data, size_t n, double inv, float invf, i64* out) {
  const __m256 vinvf = _mm256_set1_ps(invf);
  const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  const __m256 limitf = _mm256_set1_ps(kF32FastLimit);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 mslope = _mm256_set1_ps(0x1p-22f);
  const __m256 mfloor = _mm256_set1_ps(0x1p-24f);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 x = _mm256_mul_ps(_mm256_loadu_ps(data + i), vinvf);
    const __m256 ax = _mm256_and_ps(x, abs_mask);
    if (_mm256_movemask_ps(_mm256_cmp_ps(ax, limitf, _CMP_NLT_UQ)) != 0) {
      for (size_t k = 0; k < 8; ++k)
        out[i + k] = prequant_one_f32fast(data[i + k], inv, invf);
      continue;
    }
    const __m256i q = _mm256_cvtps_epi32(x);  // nearest-even == lrintf
    // Same margin test as prequant_one_f32fast, eight lanes at once.
    const __m256 diff =
        _mm256_and_ps(_mm256_sub_ps(x, _mm256_cvtepi32_ps(q)), abs_mask);
    const __m256 margin = _mm256_add_ps(_mm256_mul_ps(ax, mslope), mfloor);
    if (_mm256_movemask_ps(_mm256_cmp_ps(diff, _mm256_sub_ps(half, margin),
                                         _CMP_NLT_UQ)) != 0) {
      for (size_t k = 0; k < 8; ++k)
        out[i + k] = prequant_one_f32fast(data[i + k], inv, invf);
      continue;
    }
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        _mm256_cvtepi32_epi64(_mm256_castsi256_si128(q)));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i + 4),
        _mm256_cvtepi32_epi64(_mm256_extracti128_si256(q, 1)));
  }
  for (; i < n; ++i) out[i] = prequant_one_f32fast(data[i], inv, invf);
}

__attribute__((target("avx2"))) void prequant_row_f64fast_avx2(
    const f64* data, size_t n, double inv, float invf, i64* out) {
  const __m256 vinvf = _mm256_set1_ps(invf);
  const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  const __m256 limitf = _mm256_set1_ps(kF32FastLimit);
  const __m256 fltmin = _mm256_set1_ps(FLT_MIN);
  const __m256 zero = _mm256_setzero_ps();
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 mslope = _mm256_set1_ps(kF64FastMarginSlope);
  const __m256 mfloor = _mm256_set1_ps(0x1p-24f);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // Two 4-wide narrowing converts (round-to-nearest-even == fl32).
    const __m256 vf = _mm256_insertf128_ps(
        _mm256_castps128_ps256(_mm256_cvtpd_ps(_mm256_loadu_pd(data + i))),
        _mm256_cvtpd_ps(_mm256_loadu_pd(data + i + 4)), 1);
    const __m256 av = _mm256_and_ps(vf, abs_mask);
    const __m256 sub =
        _mm256_and_ps(_mm256_cmp_ps(av, fltmin, _CMP_LT_OQ),
                      _mm256_cmp_ps(av, zero, _CMP_NEQ_OQ));
    const __m256 x = _mm256_mul_ps(vf, vinvf);
    const __m256 ax = _mm256_and_ps(x, abs_mask);
    if (_mm256_movemask_ps(_mm256_or_ps(
            sub, _mm256_cmp_ps(ax, limitf, _CMP_NLT_UQ))) != 0) {
      for (size_t k = 0; k < 8; ++k)
        out[i + k] = prequant_one_f64fast(data[i + k], inv, invf);
      continue;
    }
    const __m256i q = _mm256_cvtps_epi32(x);  // nearest-even == lrintf
    // Same margin test as prequant_one_f64fast, eight lanes at once.
    const __m256 diff =
        _mm256_and_ps(_mm256_sub_ps(x, _mm256_cvtepi32_ps(q)), abs_mask);
    const __m256 margin = _mm256_add_ps(_mm256_mul_ps(ax, mslope), mfloor);
    if (_mm256_movemask_ps(_mm256_cmp_ps(diff, _mm256_sub_ps(half, margin),
                                         _CMP_NLT_UQ)) != 0) {
      for (size_t k = 0; k < 8; ++k)
        out[i + k] = prequant_one_f64fast(data[i + k], inv, invf);
      continue;
    }
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        _mm256_cvtepi32_epi64(_mm256_castsi256_si128(q)));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i + 4),
        _mm256_cvtepi32_epi64(_mm256_extracti128_si256(q, 1)));
  }
  for (; i < n; ++i) out[i] = prequant_one_f64fast(data[i], inv, invf);
}

// Encodes four i64 residuals to sign-magnitude u16 codes (in the low 64
// bits of the result); bumps `sat` per saturated lane.  mag < 0 can only
// mean INT64_MIN — treated as saturated, like the scalar clip.
__attribute__((target("avx2"))) inline __m128i encode4_avx2(__m256i a,
                                                            size_t& sat) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i vmax = _mm256_set1_epi64x(kMaxMagnitude16);
  const __m256i neg = _mm256_cmpgt_epi64(zero, a);
  const __m256i mag = _mm256_sub_epi64(_mm256_xor_si256(a, neg), neg);
  const __m256i satm = _mm256_or_si256(_mm256_cmpgt_epi64(mag, vmax),
                                       _mm256_cmpgt_epi64(zero, mag));
  sat += static_cast<size_t>(__builtin_popcount(
      static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(satm)))));
  const __m256i clipped = _mm256_blendv_epi8(mag, vmax, satm);
  const __m256i code64 = _mm256_or_si256(
      clipped, _mm256_and_si256(neg, _mm256_set1_epi64x(0x8000)));
  return _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(
      code64, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0)));
}

__attribute__((target("avx2"))) size_t encode_row_avx2(const i64* d, size_t n,
                                                       u16* codes) {
  size_t sat = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i lo = encode4_avx2(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + i)), sat);
    const __m128i hi = encode4_avx2(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + i + 4)), sat);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(codes + i),
                     _mm_packus_epi32(lo, hi));
  }
  sat += encode_row_scalar(d + i, n - i, codes + i);
  return sat;
}

// Fused Lorenzo delta + encode, AVX2 tiers of the delta*_encode_scalar
// kernels.  The prediction sum s is evaluated at offsets i and i-1 with
// unaligned loads (both rows sit in L1 scratch), differenced with paddq —
// wraparound-exact, so bit-identical to the scalar rows.

__attribute__((target("avx2"))) inline __m256i delta1_vec_avx2(const i64* p,
                                                               size_t i) {
  const __m256i s = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(p + i));
  const __m256i s1 = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(p + i - 1));
  return _mm256_sub_epi64(s, s1);
}

__attribute__((target("avx2"))) size_t delta1_encode_avx2(const i64* p,
                                                          size_t n, u16* out) {
  size_t sat = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i lo = encode4_avx2(delta1_vec_avx2(p, i), sat);
    const __m128i hi = encode4_avx2(delta1_vec_avx2(p, i + 4), sat);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_packus_epi32(lo, hi));
  }
  for (; i < n; ++i) out[i] = clip_encode_one(p[i] - p[i - 1], sat);
  return sat;
}

__attribute__((target("avx2"))) inline __m256i delta2_sum_avx2(const i64* cur,
                                                               const i64* prev,
                                                               size_t i) {
  return _mm256_sub_epi64(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cur + i)),
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(prev + i)));
}

__attribute__((target("avx2"))) size_t delta2_encode_avx2(const i64* cur,
                                                          const i64* prev,
                                                          size_t n,
                                                          bool has_left,
                                                          u16* out) {
  size_t sat = 0;
  size_t i = 0;
  if (!has_left && n != 0) out[i++] = clip_encode_one(cur[0] - prev[0], sat);
  for (; i + 8 <= n; i += 8) {
    const __m128i lo =
        encode4_avx2(_mm256_sub_epi64(delta2_sum_avx2(cur, prev, i),
                                      delta2_sum_avx2(cur, prev, i - 1)),
                     sat);
    const __m128i hi =
        encode4_avx2(_mm256_sub_epi64(delta2_sum_avx2(cur, prev, i + 4),
                                      delta2_sum_avx2(cur, prev, i + 3)),
                     sat);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_packus_epi32(lo, hi));
  }
  for (; i < n; ++i)
    out[i] = clip_encode_one(cur[i] - cur[i - 1] - prev[i] + prev[i - 1], sat);
  return sat;
}

__attribute__((target("avx2"))) inline __m256i delta3_sum_avx2(
    const i64* cur, const i64* prev, const i64* ppy, const i64* ppy1,
    size_t i) {
  const __m256i a = _mm256_sub_epi64(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cur + i)),
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(prev + i)));
  const __m256i b = _mm256_sub_epi64(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ppy1 + i)),
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ppy + i)));
  return _mm256_add_epi64(a, b);
}

__attribute__((target("avx2"))) size_t delta3_encode_avx2(
    const i64* cur, const i64* prev, const i64* ppy, const i64* ppy1,
    size_t n, bool has_left, u16* out) {
  size_t sat = 0;
  size_t i = 0;
  if (!has_left && n != 0)
    out[i++] = clip_encode_one(cur[0] - prev[0] - ppy[0] + ppy1[0], sat);
  for (; i + 8 <= n; i += 8) {
    const __m128i lo = encode4_avx2(
        _mm256_sub_epi64(delta3_sum_avx2(cur, prev, ppy, ppy1, i),
                         delta3_sum_avx2(cur, prev, ppy, ppy1, i - 1)),
        sat);
    const __m128i hi = encode4_avx2(
        _mm256_sub_epi64(delta3_sum_avx2(cur, prev, ppy, ppy1, i + 4),
                         delta3_sum_avx2(cur, prev, ppy, ppy1, i + 3)),
        sat);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_packus_epi32(lo, hi));
  }
  for (; i < n; ++i)
    out[i] = clip_encode_one(cur[i] - cur[i - 1] - prev[i] + prev[i - 1] -
                                 ppy[i] + ppy[i - 1] + ppy1[i] - ppy1[i - 1],
                             sat);
  return sat;
}

// 32x32 bit transpose via byte-plane extraction: gather byte k of every
// word into one YMM (pshufb + unpack + cross-lane permute), then peel its
// 8 bit planes with movemask_epi8, shifting left with add_epi8.  32 words
// in, 32 planes out, ~60 instructions.
__attribute__((target("avx2"))) void transpose_unit_avx2(const u32* in,
                                                         u32* out,
                                                         size_t ostride) {
  const __m256i gather = _mm256_setr_epi8(
      0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15,
      0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15);
  const __m256i order = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
  __m256i s[4];
  for (size_t m = 0; m < 4; ++m)
    s[m] = _mm256_shuffle_epi8(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + 8 * m)),
        gather);
  const __m256i u01lo = _mm256_unpacklo_epi32(s[0], s[1]);
  const __m256i u01hi = _mm256_unpackhi_epi32(s[0], s[1]);
  const __m256i u23lo = _mm256_unpacklo_epi32(s[2], s[3]);
  const __m256i u23hi = _mm256_unpackhi_epi32(s[2], s[3]);
  const __m256i planes[4] = {
      _mm256_permutevar8x32_epi32(_mm256_unpacklo_epi64(u01lo, u23lo), order),
      _mm256_permutevar8x32_epi32(_mm256_unpackhi_epi64(u01lo, u23lo), order),
      _mm256_permutevar8x32_epi32(_mm256_unpacklo_epi64(u01hi, u23hi), order),
      _mm256_permutevar8x32_epi32(_mm256_unpackhi_epi64(u01hi, u23hi), order),
  };
  // planes[k] byte lane b == byte k of word b; movemask reads bit 8k+7 of
  // every word at once, add_epi8 moves the next bit into the sign position.
  for (int k = 3; k >= 0; --k) {
    __m256i r = planes[k];
    for (int bit = 7; bit >= 0; --bit) {
      out[(8 * static_cast<size_t>(k) + static_cast<size_t>(bit)) * ostride] =
          static_cast<u32>(_mm256_movemask_epi8(r));
      r = _mm256_add_epi8(r, r);
    }
  }
}

__attribute__((target("avx2"))) void mark_rows_avx2(const u32* words,
                                                    size_t nblocks,
                                                    u8* byte_flags,
                                                    u8* bit_flags) {
  const __m256i zero = _mm256_setzero_si256();
  size_t g = 0;
  for (; (g + 1) * 8 <= nblocks; ++g) {
    u8 bits = 0;
    for (size_t h = 0; h < 4; ++h) {  // two blocks per YMM
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(words + (g * 8 + h * 2) * kBlockWords));
      const int zm = _mm256_movemask_pd(
          _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, zero)));
      const bool nz0 = (zm & 0x3) != 0x3;
      const bool nz1 = (zm & 0xc) != 0xc;
      byte_flags[g * 8 + h * 2] = nz0 ? u8{1} : u8{0};
      byte_flags[g * 8 + h * 2 + 1] = nz1 ? u8{1} : u8{0};
      if (nz0) bits |= static_cast<u8>(1u << (h * 2));
      if (nz1) bits |= static_cast<u8>(1u << (h * 2 + 1));
    }
    bit_flags[g] = bits;
  }
  if (g * 8 < nblocks)
    mark_rows_scalar(words + g * 8 * kBlockWords, nblocks - g * 8,
                     byte_flags + g * 8, bit_flags + g);
}

#endif  // FZ_SIMD_X86

// ---- dispatch table --------------------------------------------------------

struct KernelOps {
  void (*prequant_f32)(const f32*, size_t, double, i64*);
  void (*prequant_f64)(const f64*, size_t, double, i64*);
  void (*prequant_f32fast)(const f32*, size_t, double, float, i64*);
  void (*prequant_f64fast)(const f64*, size_t, double, float, i64*);
  size_t (*encode)(const i64*, size_t, u16*);
  void (*transpose)(const u32*, u32*, size_t);
  void (*mark)(const u32*, size_t, u8*, u8*);
  // Fused Lorenzo delta + encode rows (the tile-parallel strip body).
  size_t (*delta1_encode)(const i64*, size_t, u16*);
  size_t (*delta2_encode)(const i64*, const i64*, size_t, bool, u16*);
  size_t (*delta3_encode)(const i64*, const i64*, const i64*, const i64*,
                          size_t, bool, u16*);
};

constexpr KernelOps kScalarOps = {
    prequant_row_scalar<f32>, prequant_row_scalar<f64>,
    prequant_row_f32fast_scalar, prequant_row_f64fast_scalar,
    encode_row_scalar,
    transpose_unit_scalar, mark_rows_scalar,
    delta1_encode_scalar, delta2_encode_scalar, delta3_encode_scalar,
};

KernelOps ops_for(SimdLevel level) {
#ifdef FZ_SIMD_X86
  switch (level) {
    case SimdLevel::AVX2:
      return {prequant_row_f32_avx2, prequant_row_f64_avx2,
              prequant_row_f32fast_avx2, prequant_row_f64fast_avx2,
              encode_row_avx2,
              transpose_unit_avx2, mark_rows_avx2,
              delta1_encode_avx2, delta2_encode_avx2, delta3_encode_avx2};
    case SimdLevel::SSE2:
      // Sign-magnitude encode has no useful SSE2 form (no 64-bit compare
      // or blend below AVX2); it and the fused delta+encode rows stay
      // scalar at this tier.
      return {prequant_row_f32_sse2, prequant_row_f64_sse2,
              prequant_row_f32fast_sse2, prequant_row_f64fast_sse2,
              encode_row_scalar,
              transpose_unit_sse2, mark_rows_scalar,
              delta1_encode_scalar, delta2_encode_scalar,
              delta3_encode_scalar};
    default:
      return kScalarOps;
  }
#else
  (void)level;
  return kScalarOps;
#endif
}

// ---- fused tile pipeline ---------------------------------------------------

// Accumulates delta rows into one cache-resident tile of codes; a full tile
// is immediately transposed (plane-major scatter, as bitshuffle_tiles) and
// zero-block marked, so codes never exist outside this 4 KiB buffer.
class TileSink {
 public:
  TileSink(const KernelOps& ops, std::span<u32> shuffled,
           std::span<u8> byte_flags, std::span<u8> bit_flags)
      : ops_(ops),
        shuffled_(shuffled.data()),
        byte_flags_(byte_flags.data()),
        bit_flags_(bit_flags.data()) {}

  void consume(const i64* d, size_t n) {
    while (n != 0) {
      const size_t take = std::min(kCodesPerTile - fill_, n);
      sat_ += ops_.encode(d, take, codes() + fill_);
      fill_ += take;
      d += take;
      n -= take;
      if (fill_ == kCodesPerTile) flush();
    }
  }

  /// Segment-producer form of consume: `fn(off, take, out)` writes `take`
  /// codes for logical offsets [off, off + take) directly into the tile
  /// buffer and returns its saturation count.  Lets the fused delta+encode
  /// kernels emit codes without an intermediate delta row.
  template <typename Fn>
  void produce(size_t n, Fn&& fn) {
    size_t off = 0;
    while (n != 0) {
      const size_t take = std::min(kCodesPerTile - fill_, n);
      sat_ += fn(off, take, codes() + fill_);
      fill_ += take;
      off += take;
      n -= take;
      if (fill_ == kCodesPerTile) flush();
    }
  }

  /// Zero-pads the final partial tile (the unfused graph pads its code
  /// array to a tile boundary the same way) and flushes it.
  void finish() {
    if (fill_ == 0) return;
    std::memset(tile_ + fill_ * sizeof(u16), 0,
                (kCodesPerTile - fill_) * sizeof(u16));
    flush();
  }

  size_t saturated() const { return sat_; }

 private:
  u16* codes() { return reinterpret_cast<u16*>(tile_); }

  void flush() {
    const u32* words = reinterpret_cast<const u32*>(tile_);
    u32* tout = shuffled_ + tile_index_ * kTileWords;
    for (size_t u = 0; u < kUnitsPerTile; ++u)
      ops_.transpose(words + u * kUnitWords, tout + u, kUnitsPerTile);
    ops_.mark(tout, kBlocksPerTile, byte_flags_ + tile_index_ * kBlocksPerTile,
              bit_flags_ + tile_index_ * (kBlocksPerTile / 8));
    ++tile_index_;
    fill_ = 0;
  }

  const KernelOps& ops_;
  u32* shuffled_;
  u8* byte_flags_;
  u8* bit_flags_;
  size_t fill_ = 0;
  size_t tile_index_ = 0;
  size_t sat_ = 0;
  alignas(32) u8 tile_[kTileBytes];
};

// Plain integer delta rows (Lorenzo residuals of pre-quantized values);
// bit-identical at any tier by construction, so scalar code the compiler
// auto-vectorizes is enough.  `cur`/`prev` are the pre-quantized rows,
// `ppy`/`ppy1` rows y and y-1 of the previous plane (zeros where absent).
void delta_row_2d(const i64* cur, const i64* prev, size_t nx, i64* d) {
  d[0] = cur[0] - prev[0];
  for (size_t x = 1; x < nx; ++x)
    d[x] = cur[x] - cur[x - 1] - prev[x] + prev[x - 1];
}

void delta_row_3d(const i64* cur, const i64* prev, const i64* ppy,
                  const i64* ppy1, size_t nx, i64* d) {
  d[0] = cur[0] - prev[0] - ppy[0] + ppy1[0];
  for (size_t x = 1; x < nx; ++x)
    d[x] = cur[x] - cur[x - 1] - prev[x] + prev[x - 1] - ppy[x] + ppy[x - 1] +
           ppy1[x] - ppy1[x - 1];
}

template <typename T>
FusedTileResult fused_impl(std::span<const T> data, Dims dims, double abs_eb,
                           bool f32_fast, std::span<u32> shuffled,
                           std::span<u8> byte_flags, std::span<u8> bit_flags,
                           std::span<i64> row_scratch,
                           std::span<i64> plane_scratch, SimdLevel level) {
  FZ_REQUIRE(abs_eb > 0, "fused: error bound must be positive");
  FZ_REQUIRE(data.size() == dims.count(), "fused: dims/size mismatch");
  FZ_REQUIRE(data.size() > 0, "fused: empty input");
  const size_t padded = round_up(data.size(), kCodesPerTile);
  const size_t words = padded * sizeof(u16) / sizeof(u32);
  FZ_REQUIRE(shuffled.size() == words, "fused: shuffled size mismatch");
  FZ_REQUIRE(byte_flags.size() == words / kBlockWords &&
                 bit_flags.size() == words / kBlockWords / 8,
             "fused: flag size mismatch");
  FZ_REQUIRE(row_scratch.size() >= fused_row_scratch_elems(dims),
             "fused: row scratch too small");
  FZ_REQUIRE(plane_scratch.size() >= fused_plane_scratch_elems(dims),
             "fused: plane scratch too small");

  const double inv = 1.0 / (2.0 * abs_eb);
  const float invf = static_cast<float>(inv);
  const KernelOps ops = ops_for(level);
  const bool fast = f32_fast && f32_fast_ok(inv);
  auto prequant_row = [&](const T* src, size_t n, i64* dst) {
    if constexpr (std::is_same_v<T, f32>) {
      if (fast)
        ops.prequant_f32fast(src, n, inv, invf, dst);
      else
        ops.prequant_f32(src, n, inv, dst);
    } else {
      if (fast)
        ops.prequant_f64fast(src, n, inv, invf, dst);
      else
        ops.prequant_f64(src, n, inv, dst);
    }
  };

  TileSink sink(ops, shuffled, byte_flags, bit_flags);
  FusedTileResult res;

  switch (dims.rank()) {
    case 1: {
      const size_t n = data.size();
      const size_t chunk = std::min(round_up(n, 8), kFusedChunk1D);
      // p carries one pad slot in front holding the previous chunk's last
      // value, so the delta loop needs no boundary case.
      i64* p = row_scratch.data();
      i64* d = p + chunk + 1;
      p[0] = 0;
      for (size_t b = 0; b < n; b += chunk) {
        const size_t m = std::min(chunk, n - b);
        prequant_row(data.data() + b, m, p + 1);
        for (size_t x = 0; x < m; ++x) d[x] = p[x + 1] - p[x];
        if (b == 0) {
          res.anchor = d[0];  // d[0] == p[1] == prequant of the first value
          d[0] = 0;
        }
        sink.consume(d, m);
        p[0] = p[m];
      }
      break;
    }
    case 2: {
      const size_t nx = dims.x, ny = dims.y;
      const size_t stride = round_up(nx, 8);
      i64* rows[2] = {row_scratch.data(), row_scratch.data() + stride};
      i64* d = row_scratch.data() + 2 * stride;
      i64* zrow = row_scratch.data() + 3 * stride;
      std::fill(zrow, zrow + nx, i64{0});
      const i64* prev = zrow;
      for (size_t y = 0; y < ny; ++y) {
        i64* cur = rows[y & 1];
        prequant_row(data.data() + y * nx, nx, cur);
        delta_row_2d(cur, prev, nx, d);
        if (y == 0) {
          res.anchor = d[0];
          d[0] = 0;
        }
        sink.consume(d, nx);
        prev = cur;
      }
      break;
    }
    default: {
      const size_t nx = dims.x, ny = dims.y, nz = dims.z;
      const size_t stride = round_up(nx, 8);
      i64* rows[2] = {row_scratch.data(), row_scratch.data() + stride};
      i64* d = row_scratch.data() + 2 * stride;
      i64* zrow = row_scratch.data() + 3 * stride;
      std::fill(zrow, zrow + nx, i64{0});
      i64* plane = plane_scratch.data();
      std::fill(plane, plane + nx * ny, i64{0});
      for (size_t z = 0; z < nz; ++z) {
        const i64* prev = zrow;
        for (size_t y = 0; y < ny; ++y) {
          i64* cur = rows[y & 1];
          prequant_row(data.data() + (z * ny + y) * nx, nx, cur);
          const i64* ppy = plane + y * nx;
          const i64* ppy1 = y > 0 ? plane + (y - 1) * nx : zrow;
          delta_row_3d(cur, prev, ppy, ppy1, nx, d);
          if (z == 0 && y == 0) {
            res.anchor = d[0];
            d[0] = 0;
          }
          sink.consume(d, nx);
          // Row y-1 of the previous plane is dead once row y's deltas are
          // out; replace it with the current plane's row y-1 (delayed one
          // row, because row y's deltas still needed the old row y-1).
          if (y > 0) std::memcpy(plane + (y - 1) * nx, prev,
                                 nx * sizeof(i64));
          prev = cur;
        }
        std::memcpy(plane + (ny - 1) * nx, prev, nx * sizeof(i64));
      }
      break;
    }
  }

  sink.finish();
  res.saturated = sink.saturated();
  return res;
}

// ---- tile-parallel strips --------------------------------------------------

// Rows per pre-quantization batch in the strip body: one kernel dispatch
// covers ~kFusedBatchElems contiguous elements instead of one row.
constexpr size_t kFusedBatchElems = 4096;

size_t fused_batch_rows(size_t nx) {
  return std::clamp<size_t>(div_ceil(kFusedBatchElems, nx), size_t{1},
                            size_t{64});
}

/// i64 scratch one strip needs: zero row + stashed previous row + the
/// multi-row pre-quantization batch (+ the previous-plane buffer in 3-D).
size_t fused_strip_scratch_elems(Dims dims) {
  switch (dims.rank()) {
    case 1:
      return kFusedChunk1D + 16;
    case 2:
      return (2 + fused_batch_rows(dims.x)) * dims.x + 8;
    default:
      return (2 + fused_batch_rows(dims.x)) * dims.x + dims.x * dims.y + 8;
  }
}

/// Upper bound on the halo a strip re-prequantizes: one value (1-D), the
/// previous row plus a partial row (2-D), the previous plane plus partial
/// rows (3-D).
size_t fused_halo_bound(Dims dims) {
  switch (dims.rank()) {
    case 1:
      return 8;
    case 2:
      return 2 * dims.x;
    default:
      return dims.x * dims.y + 2 * dims.x;
  }
}

struct StripExtent {
  size_t first_tile = 0;
  size_t tile_count = 0;
  size_t begin = 0;  ///< first element (tile-aligned)
  size_t end = 0;    ///< one past the strip's last real element
};

/// One strip of the tile-parallel fused pass.  Re-prequantizes the halo its
/// Lorenzo stencil reaches across the strip boundary (pointwise, so the
/// values match what the serial pass carried bit-for-bit), then streams its
/// rows through batched prequantization and the fused delta+encode kernels
/// into a TileSink over the strip's own tiles.  `anchor` is written only by
/// the strip containing element 0.
template <typename T>
void run_fused_strip(std::span<const T> data, Dims dims, double inv,
                     float invf, bool fast, const KernelOps& ops,
                     const StripExtent& ext, std::span<i64> scratch,
                     std::span<u32> shuffled, std::span<u8> byte_flags,
                     std::span<u8> bit_flags, i64* anchor, size_t* saturated,
                     size_t* halo_out) {
  auto prequant_row = [&](const T* src, size_t n, i64* dst) {
    if constexpr (std::is_same_v<T, f32>) {
      if (fast)
        ops.prequant_f32fast(src, n, inv, invf, dst);
      else
        ops.prequant_f32(src, n, inv, dst);
    } else {
      if (fast)
        ops.prequant_f64fast(src, n, inv, invf, dst);
      else
        ops.prequant_f64(src, n, inv, dst);
    }
  };

  TileSink sink(
      ops, shuffled.subspan(ext.first_tile * kTileWords,
                            ext.tile_count * kTileWords),
      byte_flags.subspan(ext.first_tile * kBlocksPerTile,
                         ext.tile_count * kBlocksPerTile),
      bit_flags.subspan(ext.first_tile * (kBlocksPerTile / 8),
                        ext.tile_count * (kBlocksPerTile / 8)));
  size_t halo = 0;

  switch (dims.rank()) {
    case 1: {
      // p[0] is the carry slot: the pre-quantized element left of the
      // current chunk (re-prequantized across the strip boundary).
      i64* p = scratch.data();
      const size_t chunk = kFusedChunk1D;
      if (ext.begin > 0) {
        prequant_row(data.data() + ext.begin - 1, 1, p);
        halo += 1;
      } else {
        p[0] = 0;
      }
      for (size_t b = ext.begin; b < ext.end; b += chunk) {
        const size_t m = std::min(chunk, ext.end - b);
        prequant_row(data.data() + b, m, p + 1);
        if (b == 0) {
          *anchor = p[1];  // d[0] == p[1] - 0: residual of the first value
          sink.produce(1, [](size_t, size_t, u16* out) {
            out[0] = 0;
            return size_t{0};
          });
          sink.produce(m - 1, [&](size_t off, size_t take, u16* out) {
            return ops.delta1_encode(p + 2 + off, take, out);
          });
        } else {
          sink.produce(m, [&](size_t off, size_t take, u16* out) {
            return ops.delta1_encode(p + 1 + off, take, out);
          });
        }
        p[0] = p[m];
      }
      break;
    }
    case 2: {
      const size_t nx = dims.x;
      const size_t R = fused_batch_rows(nx);
      i64* zrow = scratch.data();
      i64* prevrow = zrow + nx;
      i64* batch = prevrow + nx;
      std::fill(zrow, zrow + nx, i64{0});
      const size_t y_first = ext.begin / nx;
      const size_t x_off = ext.begin % nx;
      const size_t y_last = (ext.end - 1) / nx;
      const i64* prev = zrow;
      if (y_first > 0) {
        prequant_row(data.data() + (y_first - 1) * nx, nx, prevrow);
        halo += nx;
        prev = prevrow;
      }
      halo += x_off;
      for (size_t y0 = y_first; y0 <= y_last; y0 += R) {
        const size_t rcount = std::min(R, y_last + 1 - y0);
        prequant_row(data.data() + y0 * nx, rcount * nx, batch);
        for (size_t r = 0; r < rcount; ++r) {
          const size_t y = y0 + r;
          const i64* cur = batch + r * nx;
          const size_t xb = y == y_first ? x_off : 0;
          const size_t xe = std::min(nx, ext.end - y * nx);
          if (y == 0 && xb == 0) {
            *anchor = cur[0] - prev[0];  // prev == zrow
            sink.produce(1, [](size_t, size_t, u16* out) {
              out[0] = 0;
              return size_t{0};
            });
            sink.produce(xe - 1, [&](size_t off, size_t take, u16* out) {
              return ops.delta2_encode(cur + 1 + off, prev + 1 + off, take,
                                       true, out);
            });
          } else {
            sink.produce(xe - xb, [&](size_t off, size_t take, u16* out) {
              return ops.delta2_encode(cur + xb + off, prev + xb + off, take,
                                       xb + off > 0, out);
            });
          }
          halo += nx - xe;
          prev = cur;
        }
        if (y0 + rcount <= y_last) {
          std::memcpy(prevrow, batch + (rcount - 1) * nx, nx * sizeof(i64));
          prev = prevrow;
        }
      }
      break;
    }
    default: {
      const size_t nx = dims.x, ny = dims.y;
      const size_t nxy = nx * ny;
      const size_t R = fused_batch_rows(nx);
      i64* zrow = scratch.data();
      i64* prevrow = zrow + nx;
      i64* batch = prevrow + nx;
      i64* plane = batch + R * nx;
      std::fill(zrow, zrow + nx, i64{0});
      const size_t z_first = ext.begin / nxy;
      const size_t y_first = (ext.begin % nxy) / nx;
      const size_t x_off = ext.begin % nx;
      const size_t z_last = (ext.end - 1) / nxy;

      // Halo init: rebuild the serial pass's plane state at (z_first,
      // y_first) by re-prequantizing it.  At that point the delayed copies
      // have replaced rows [0, y_first-1) with plane z_first; the rest
      // still holds plane z_first-1 (zeros when z_first == 0).
      const size_t lo = y_first == 0 ? 0 : y_first - 1;
      if (lo > 0) {
        prequant_row(data.data() + z_first * nxy, lo * nx, plane);
        halo += lo * nx;
      }
      if (z_first > 0) {
        prequant_row(data.data() + (z_first - 1) * nxy + lo * nx,
                     (ny - lo) * nx, plane + lo * nx);
        halo += (ny - lo) * nx;
      } else {
        std::fill(plane + lo * nx, plane + nxy, i64{0});
      }
      const i64* prev = zrow;
      if (y_first > 0) {
        prequant_row(data.data() + z_first * nxy + (y_first - 1) * nx, nx,
                     prevrow);
        halo += nx;
        prev = prevrow;
      }
      halo += x_off;

      for (size_t z = z_first; z <= z_last; ++z) {
        const size_t base = z * nxy;
        if (z != z_first) prev = zrow;
        const size_t yb = z == z_first ? y_first : 0;
        const size_t ye = z == z_last ? (ext.end - 1 - base) / nx + 1 : ny;
        for (size_t y0 = yb; y0 < ye; y0 += R) {
          const size_t rcount = std::min(R, ye - y0);
          prequant_row(data.data() + base + y0 * nx, rcount * nx, batch);
          const i64* batch_prev = prev;  // current row y0-1 (or the zero row)
          for (size_t r = 0; r < rcount; ++r) {
            const size_t y = y0 + r;
            const i64* cur = batch + r * nx;
            const i64* ppy = plane + y * nx;
            const i64* ppy1 = y > 0 ? plane + (y - 1) * nx : zrow;
            const size_t xb = (z == z_first && y == y_first) ? x_off : 0;
            const size_t xe = std::min(nx, ext.end - base - y * nx);
            if (z == 0 && y == 0 && xb == 0) {
              *anchor = cur[0] - prev[0] - ppy[0] + ppy1[0];
              sink.produce(1, [](size_t, size_t, u16* out) {
                out[0] = 0;
                return size_t{0};
              });
              sink.produce(xe - 1, [&](size_t off, size_t take, u16* out) {
                return ops.delta3_encode(cur + 1 + off, prev + 1 + off,
                                         ppy + 1 + off, ppy1 + 1 + off, take,
                                         true, out);
              });
            } else {
              sink.produce(xe - xb, [&](size_t off, size_t take, u16* out) {
                return ops.delta3_encode(cur + xb + off, prev + xb + off,
                                         ppy + xb + off, ppy1 + xb + off,
                                         take, xb + off > 0, out);
              });
            }
            halo += nx - xe;
            prev = cur;
          }
          // Delayed plane update, batched: current rows [y0-1, y0+rcount-1)
          // replace the previous plane's (every delta above read the old
          // values; the next batch only reads rows >= y0+rcount-1, still
          // untouched).  The batch's last row is stashed in prevrow.
          if (y0 > 0)
            std::memcpy(plane + (y0 - 1) * nx, batch_prev, nx * sizeof(i64));
          if (rcount > 1)
            std::memcpy(plane + y0 * nx, batch, (rcount - 1) * nx * sizeof(i64));
          std::memcpy(prevrow, batch + (rcount - 1) * nx, nx * sizeof(i64));
          prev = prevrow;
        }
        if (z != z_last)
          std::memcpy(plane + (ny - 1) * nx, prevrow, nx * sizeof(i64));
      }
      break;
    }
  }

  sink.finish();
  *saturated = sink.saturated();
  *halo_out = halo;
}

template <typename T>
FusedTileResult fused_parallel_impl(std::span<const T> data, Dims dims,
                                    double abs_eb, bool f32_fast,
                                    std::span<u32> shuffled,
                                    std::span<u8> byte_flags,
                                    std::span<u8> bit_flags,
                                    std::span<i64> scratch,
                                    const FusedParallelPlan& plan,
                                    SimdLevel level, telemetry::Sink* sink) {
  FZ_REQUIRE(abs_eb > 0, "fused: error bound must be positive");
  FZ_REQUIRE(data.size() == dims.count(), "fused: dims/size mismatch");
  FZ_REQUIRE(data.size() > 0, "fused: empty input");
  const size_t padded = round_up(data.size(), kCodesPerTile);
  const size_t words = padded * sizeof(u16) / sizeof(u32);
  FZ_REQUIRE(shuffled.size() == words, "fused: shuffled size mismatch");
  FZ_REQUIRE(byte_flags.size() == words / kBlockWords &&
                 bit_flags.size() == words / kBlockWords / 8,
             "fused: flag size mismatch");
  FZ_REQUIRE(plan.strips >= 1 && scratch.size() >= plan.scratch_elems,
             "fused: scratch smaller than the plan");

  const size_t tiles = padded / kCodesPerTile;
  const size_t tiles_per = div_ceil(tiles, plan.strips);
  const size_t strips = div_ceil(tiles, tiles_per);
  const size_t per_strip = scratch.size() / strips;

  const double inv = 1.0 / (2.0 * abs_eb);
  const float invf = static_cast<float>(inv);
  const KernelOps ops = ops_for(level);
  const bool fast = f32_fast && f32_fast_ok(inv);

  std::atomic<size_t> saturated{0};
  i64 anchor = 0;  // written only by the strip holding element 0

  parallel_tasks(strips, strips, [&](size_t t, size_t /*worker*/) {
    StripExtent ext;
    ext.first_tile = t * tiles_per;
    ext.tile_count = std::min(tiles_per, tiles - ext.first_tile);
    ext.begin = ext.first_tile * kCodesPerTile;
    ext.end = std::min(data.size(),
                       (ext.first_tile + ext.tile_count) * kCodesPerTile);
    telemetry::Span span(sink, "fused-strip");
    size_t sat = 0, halo = 0;
    run_fused_strip<T>(data, dims, inv, invf, fast, ops, ext,
                       scratch.subspan(t * per_strip, per_strip), shuffled,
                       byte_flags, bit_flags, &anchor, &sat, &halo);
    saturated.fetch_add(sat, std::memory_order_relaxed);
    if (span.enabled()) {
      span.arg("strip", static_cast<double>(t));
      span.arg("halo_elems", static_cast<double>(halo));
      span.arg("bytes",
               static_cast<double>((ext.end - ext.begin) * sizeof(T)));
    }
  });

  FusedTileResult res;
  res.saturated = saturated.load();
  res.anchor = anchor;
  return res;
}

}  // namespace

// ---- public entry points ---------------------------------------------------

size_t fused_row_scratch_elems(Dims dims) {
  const size_t nx = dims.rank() == 1
                        ? std::min(round_up(dims.count(), 8), kFusedChunk1D)
                        : dims.x;
  return 4 * (round_up(nx, 8) + 2);
}

size_t fused_plane_scratch_elems(Dims dims) {
  return dims.rank() == 3 ? dims.x * dims.y : 0;
}

FusedTileResult fused_quant_shuffle_mark(FloatSpan data, Dims dims,
                                         double abs_eb, bool f32_fast,
                                         std::span<u32> shuffled,
                                         std::span<u8> byte_flags,
                                         std::span<u8> bit_flags,
                                         std::span<i64> row_scratch,
                                         std::span<i64> plane_scratch,
                                         SimdLevel level) {
  return fused_impl(data, dims, abs_eb, f32_fast, shuffled, byte_flags,
                    bit_flags, row_scratch, plane_scratch, level);
}

FusedTileResult fused_quant_shuffle_mark(std::span<const f64> data, Dims dims,
                                         double abs_eb, bool f32_fast,
                                         std::span<u32> shuffled,
                                         std::span<u8> byte_flags,
                                         std::span<u8> bit_flags,
                                         std::span<i64> row_scratch,
                                         std::span<i64> plane_scratch,
                                         SimdLevel level) {
  return fused_impl(data, dims, abs_eb, f32_fast, shuffled, byte_flags,
                    bit_flags, row_scratch, plane_scratch, level);
}

FusedParallelPlan fused_parallel_plan(Dims dims, size_t workers) {
  const size_t n = dims.count();
  const size_t tiles = div_ceil(std::max<size_t>(n, 1), kCodesPerTile);
  size_t strips = std::min(workers != 0 ? workers : max_threads(), tiles);
  // Keep the halo recompute a small fraction of the real work: each extra
  // strip re-prequantizes at most `bound` elements.
  const size_t bound = fused_halo_bound(dims);
  strips = std::min(strips, std::max<size_t>(1, n / (4 * bound)));
  strips = std::max<size_t>(strips, 1);
  // Even tile split; trailing strips may be empty — fold them away.
  const size_t tiles_per = div_ceil(tiles, strips);
  strips = div_ceil(tiles, tiles_per);

  FusedParallelPlan plan;
  plan.strips = strips;
  plan.scratch_elems = strips * round_up(fused_strip_scratch_elems(dims), 8);
  plan.halo_elems = (strips - 1) * bound;
  return plan;
}

FusedTileResult fused_quant_shuffle_mark_parallel(
    FloatSpan data, Dims dims, double abs_eb, bool f32_fast,
    std::span<u32> shuffled, std::span<u8> byte_flags,
    std::span<u8> bit_flags, std::span<i64> scratch,
    const FusedParallelPlan& plan, SimdLevel level, telemetry::Sink* sink) {
  return fused_parallel_impl(data, dims, abs_eb, f32_fast, shuffled,
                             byte_flags, bit_flags, scratch, plan, level,
                             sink);
}

FusedTileResult fused_quant_shuffle_mark_parallel(
    std::span<const f64> data, Dims dims, double abs_eb, bool f32_fast,
    std::span<u32> shuffled, std::span<u8> byte_flags,
    std::span<u8> bit_flags, std::span<i64> scratch,
    const FusedParallelPlan& plan, SimdLevel level, telemetry::Sink* sink) {
  return fused_parallel_impl(data, dims, abs_eb, f32_fast, shuffled,
                             byte_flags, bit_flags, scratch, plan, level,
                             sink);
}

void prequantize_simd(FloatSpan data, double eb, std::span<i64> out,
                      SimdLevel level) {
  FZ_REQUIRE(eb > 0, "error bound must be positive");
  FZ_REQUIRE(data.size() == out.size(), "prequantize: size mismatch");
  const double inv = 1.0 / (2.0 * eb);
  const KernelOps ops = ops_for(level);
  parallel_chunks(data.size(), size_t{1} << 15, [&](size_t b, size_t e) {
    ops.prequant_f32(data.data() + b, e - b, inv, out.data() + b);
  });
}

void prequantize_simd(std::span<const f64> data, double eb, std::span<i64> out,
                      SimdLevel level) {
  FZ_REQUIRE(eb > 0, "error bound must be positive");
  FZ_REQUIRE(data.size() == out.size(), "prequantize: size mismatch");
  const double inv = 1.0 / (2.0 * eb);
  const KernelOps ops = ops_for(level);
  parallel_chunks(data.size(), size_t{1} << 15, [&](size_t b, size_t e) {
    ops.prequant_f64(data.data() + b, e - b, inv, out.data() + b);
  });
}

void prequantize_f32fast(FloatSpan data, double eb, std::span<i64> out,
                         SimdLevel level) {
  FZ_REQUIRE(eb > 0, "error bound must be positive");
  FZ_REQUIRE(data.size() == out.size(), "prequantize: size mismatch");
  const double inv = 1.0 / (2.0 * eb);
  const float invf = static_cast<float>(inv);
  const KernelOps ops = ops_for(level);
  if (!f32_fast_ok(inv)) {
    // fl32(inv) is subnormal, zero, or infinite — the fast path's error
    // bound does not hold, so every element takes the exact kernel.
    parallel_chunks(data.size(), size_t{1} << 15, [&](size_t b, size_t e) {
      ops.prequant_f32(data.data() + b, e - b, inv, out.data() + b);
    });
    return;
  }
  parallel_chunks(data.size(), size_t{1} << 15, [&](size_t b, size_t e) {
    ops.prequant_f32fast(data.data() + b, e - b, inv, invf, out.data() + b);
  });
}

void prequantize_f64fast(std::span<const f64> data, double eb,
                         std::span<i64> out, SimdLevel level) {
  FZ_REQUIRE(eb > 0, "error bound must be positive");
  FZ_REQUIRE(data.size() == out.size(), "prequantize: size mismatch");
  const double inv = 1.0 / (2.0 * eb);
  const float invf = static_cast<float>(inv);
  const KernelOps ops = ops_for(level);
  if (!f32_fast_ok(inv)) {
    // Same gate as the f32 fast path: a subnormal/zero/infinite fl32(inv)
    // voids the margin analysis, so every element takes the exact kernel.
    parallel_chunks(data.size(), size_t{1} << 15, [&](size_t b, size_t e) {
      ops.prequant_f64(data.data() + b, e - b, inv, out.data() + b);
    });
    return;
  }
  parallel_chunks(data.size(), size_t{1} << 15, [&](size_t b, size_t e) {
    ops.prequant_f64fast(data.data() + b, e - b, inv, invf, out.data() + b);
  });
}

size_t quant_encode_v2_simd(std::span<const i64> deltas, std::span<u16> codes,
                            SimdLevel level) {
  FZ_REQUIRE(codes.size() == deltas.size(), "quant: size mismatch");
  const KernelOps ops = ops_for(level);
  std::atomic<size_t> saturated{0};
  parallel_chunks(deltas.size(), size_t{1} << 16, [&](size_t b, size_t e) {
    const size_t local = ops.encode(deltas.data() + b, e - b, codes.data() + b);
    if (local != 0) saturated.fetch_add(local, std::memory_order_relaxed);
  });
  return saturated.load();
}

void bitshuffle_tiles_simd(std::span<const u32> in, std::span<u32> out,
                           SimdLevel level) {
  FZ_REQUIRE(in.size() % kTileWords == 0,
             "bitshuffle: size must be a multiple of one tile (1024 words)");
  FZ_REQUIRE(in.size() == out.size(), "bitshuffle: size mismatch");
  FZ_REQUIRE(in.data() != out.data(), "bitshuffle: must not alias");
  const KernelOps ops = ops_for(level);
  const size_t tiles = in.size() / kTileWords;
  parallel_chunks(tiles, 16, [&](size_t tb, size_t te) {
    for (size_t t = tb; t < te; ++t) {
      const u32* tin = in.data() + t * kTileWords;
      u32* tout = out.data() + t * kTileWords;
      for (size_t u = 0; u < kUnitsPerTile; ++u)
        ops.transpose(tin + u * kUnitWords, tout + u, kUnitsPerTile);
    }
  });
}

void bitunshuffle_tiles_simd(std::span<const u32> in, std::span<u32> out,
                             SimdLevel level) {
  FZ_REQUIRE(in.size() % kTileWords == 0,
             "bitshuffle: size must be a multiple of one tile (1024 words)");
  FZ_REQUIRE(in.size() == out.size(), "bitshuffle: size mismatch");
  FZ_REQUIRE(in.data() != out.data(), "bitshuffle: must not alias");
  const KernelOps ops = ops_for(level);
  const size_t tiles = in.size() / kTileWords;
  parallel_chunks(tiles, 16, [&](size_t tb, size_t te) {
    for (size_t t = tb; t < te; ++t) {
      const u32* tin = in.data() + t * kTileWords;
      u32* tout = out.data() + t * kTileWords;
      for (size_t u = 0; u < kUnitsPerTile; ++u) {
        alignas(32) u32 tmp[kUnitWords];
        // Gather unit u's planes, then the same transpose (an involution)
        // written contiguously inverts the shuffle.
        for (size_t j = 0; j < kUnitWords; ++j)
          tmp[j] = tin[j * kUnitsPerTile + u];
        ops.transpose(tmp, tout + u * kUnitWords, 1);
      }
    }
  });
}

void mark_blocks_simd(std::span<const u32> words, std::span<u8> byte_flags,
                      std::span<u8> bit_flags, SimdLevel level) {
  FZ_REQUIRE(words.size() % kBlockWords == 0,
             "encoder: word count must be a multiple of the block size");
  const size_t nblocks = words.size() / kBlockWords;
  FZ_REQUIRE(byte_flags.size() == nblocks &&
                 bit_flags.size() == div_ceil(nblocks, 8),
             "encoder: flag array size mismatch");
  const KernelOps ops = ops_for(level);
  // 4096-block chunks start on a flag-byte boundary (4096 % 8 == 0), so
  // each chunk owns disjoint bit_flags bytes.
  parallel_chunks(nblocks, 4096, [&](size_t b, size_t e) {
    ops.mark(words.data() + b * kBlockWords, e - b, byte_flags.data() + b,
             bit_flags.data() + b / 8);
  });
}

void transpose_unit_simd(const u32* in, u32* out, size_t out_stride,
                         SimdLevel level) {
  ops_for(level).transpose(in, out, out_stride);
}

TransposeUnitFn transpose_unit_fn(SimdLevel level) {
  return ops_for(level).transpose;
}

void fused_first_touch_strips(MutByteSpan bytes, size_t strips) {
  if (strips <= 1 || bytes.empty() || numa_node_count() <= 1) return;
  // One touch per page, strips aligned to page boundaries so two workers
  // never claim the same page.  The strip split mirrors the even tile
  // split of the fused passes; a static-schedule parallel_for pins strip s
  // to the same worker slot the strip loop will claim in the common
  // (uncontended) case.
  constexpr size_t kPage = 4096;
  const size_t per = round_up(div_ceil(bytes.size(), strips), kPage);
  parallel_for(0, strips, [&](size_t s) {
    const size_t b = s * per;
    const size_t e = std::min(bytes.size(), b + per);
    for (size_t i = b; i < e; i += kPage) bytes[i] = 0;
  });
}

}  // namespace fz
