// The FZ stage graph (compression pipeline decomposed into explicit,
// swappable stages).
//
// Each stage is a discrete object with a name and a run() method over a
// shared PipelineContext.  The context carries the run's inputs (data,
// params or stream), the resolved parameters, every scratch buffer (leased
// from a BufferPool so steady-state runs never allocate), and the
// data-dependent results the next stage or the stream assembly needs.
//
// Compression graph (paper Fig. 1):
//   ResolveTransformStage   validate input, resolve eb, optional log x-form
//   DualQuantStage          pre-quantize + Lorenzo + residual codes (3.2)
//   BitshuffleMarkStage     tile bitshuffle + block flags (3.3/3.4 phase 1)
//   EncodeStage             prefix-sum offsets + block compaction (3.4)
//   AssembleStage           header + sections -> output stream
//
// Decompression mirrors it in reverse:
//   ParseHeaderStage        validate header, slice stream sections
//   ScatterUnshuffleStage   scatter nonzero blocks + inverse bitshuffle
//   InverseQuantStage       decode residuals + inverse Lorenzo
//   ReconstructStage        dequantize + inverse transform -> output
//
// fz::Codec (core/codec.hpp) owns a pool plus both graphs and is the
// intended way to run them; fz_compress/fz_decompress are thin one-shot
// wrappers.  See docs/ARCHITECTURE.md.
#pragma once

#include <memory>
#include <vector>

#include "common/bits.hpp"
#include "common/pool.hpp"
#include "common/types.hpp"
#include "core/format.hpp"
#include "core/pipeline.hpp"
#include "core/quantizer.hpp"

namespace fz {

/// Shared state threaded through a stage graph for one compress or
/// decompress run.  Reused across runs by fz::Codec: the pooled leases are
/// released at the end of each run (back to the pool, to be re-leased as
/// hits), and the small dynamic members keep their capacity.
struct PipelineContext {
  BufferPool* pool = nullptr;
  /// Resolved telemetry sink for the run (set by fz::Codec; may be null).
  /// Stages that fan work out to worker threads record their per-worker
  /// spans here — e.g. the tile-parallel fused pass's "fused-strip" spans.
  telemetry::Sink* sink = nullptr;

  // ---- run inputs ----------------------------------------------------------
  FzParams params;
  Dims dims;
  size_t count = 0;
  u8 dtype = sizeof(f32);
  const void* input = nullptr;  ///< compression: count elements of dtype
  std::vector<u8>* out_bytes = nullptr;  ///< compression output stream
  ByteSpan stream;              ///< decompression input
  void* output = nullptr;       ///< decompression: count elements of dtype

  // ---- resolved by the front stages ---------------------------------------
  double abs_eb = 0;
  bool log_transform = false;
  StreamHeader header{};  ///< decompression: validated header
  ByteSpan sec_bit_flags, sec_blocks, sec_outliers;  ///< stream sections

  // ---- pooled scratch ------------------------------------------------------
  PooledBuffer values;      ///< dtype[count]: log-transformed input copy
  PooledBuffer pq;          ///< i64[count]: pre-quantized / residuals
  PooledBuffer codes;       ///< u16[padded_codes()]
  PooledBuffer shuffled;    ///< u32[total_words()]
  PooledBuffer byte_flags;  ///< u8[total_blocks()]
  PooledBuffer bit_flags;   ///< u8[ceil(total_blocks()/8)]
  PooledBuffer flags32;     ///< u32[total_blocks()]: scan input
  PooledBuffer offsets;     ///< u32[total_blocks()]: scan output
  PooledBuffer scan_scratch;  ///< u32: blocked-scan chunk totals/offsets
  PooledBuffer blocks;      ///< u32: compacted blocks (worst case sized)
  PooledBuffer row_scratch;    ///< i64: fused pipeline rolling rows
  PooledBuffer plane_scratch;  ///< i64: fused pipeline previous plane (3-D)

  // ---- data-dependent results ---------------------------------------------
  i64 anchor = 0;
  u32 radius = 0;
  std::vector<Outlier> outliers;  ///< V1 only; capacity reused across runs
  size_t nonzero_blocks = 0;
  FzStats stats;

  /// Codes are padded with zeros to a whole number of 4096-byte tiles: the
  /// padding bitshuffles to zero blocks and costs only flag bits.
  size_t padded_codes() const { return round_up(count, kCodesPerTile); }
  size_t total_words() const {
    return padded_codes() * sizeof(u16) / sizeof(u32);
  }
  size_t total_blocks() const { return total_words() / kBlockWords; }

  template <typename T>
  std::span<const T> input_as() const {
    return {static_cast<const T*>(input), count};
  }
  template <typename T>
  std::span<T> output_as() {
    return {static_cast<T*>(output), count};
  }

  /// Prepare the context for a compression run (clears per-run state).
  void begin_compress(BufferPool* p, const FzParams& run_params, Dims run_dims,
                      size_t n, u8 run_dtype, const void* data,
                      std::vector<u8>* out);
  /// Prepare the context for a decompression run.  `run_params` carries
  /// only the host execution knobs (simd, fast-quant, fused_workers,
  /// fused_decompress, numa_first_touch); everything stream-related comes
  /// from the parsed header.
  void begin_decompress(BufferPool* p, const FzParams& run_params,
                        ByteSpan run_stream, size_t n, u8 run_dtype,
                        void* out);
  /// Return every pooled lease to the pool (end of a run).
  void release_scratch();
};

/// A single pipeline stage.  Stages are stateless: all run state lives in
/// the context, so one stage object can serve any number of codecs.
class Stage {
 public:
  virtual ~Stage() = default;
  virtual const char* name() const = 0;
  virtual void run(PipelineContext& ctx) const = 0;
};

using StageGraph = std::vector<std::unique_ptr<Stage>>;

/// Build the compression / decompression stage graphs (see file comment).
StageGraph make_compress_stages();
StageGraph make_decompress_stages();

/// The fused-host compression graph: DualQuantStage + BitshuffleMarkStage
/// are replaced by one FusedQuantShuffleMarkStage that streams the input
/// through cache-resident tiles (core/kernels_simd.hpp), never
/// materializing the i64 pre-quant array.  V2 quantization only; the
/// output stream is byte-identical to make_compress_stages().
StageGraph make_compress_stages_fused();

/// The fused decompress graph: ScatterUnshuffleStage + InverseQuantStage
/// are replaced by one FusedDecodeStage that scatters, inverse-bitshuffles
/// and decodes tile by tile per strip (core/kernels_decode.hpp) — the
/// shuffled-word and u16-code arrays never materialize.  V2 streams only
/// (fz::Codec peeks the header and routes V1 streams to the unfused
/// graph); the output is byte-identical to make_decompress_stages().
StageGraph make_decompress_stages_fused();

}  // namespace fz
