#include "core/lorenzo.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"

namespace fz {

namespace {

// Forward residuals are the mixed differences:
//   1-D: d[x]     = p[x] - p[x-1]
//   2-D: d[x,y]   = p[x,y] - p[x-1,y] - p[x,y-1] + p[x-1,y-1]
//   3-D: d[x,y,z] = Σ over the 2^3 corner offsets with alternating signs.
// Out-of-range neighbours are 0 (the standard Lorenzo boundary handling).

void forward_1d(std::span<const i64> p, size_t nx, std::span<i64> d) {
  // Process backwards so the in-place case (d == p) stays correct.
  for (size_t x = nx; x-- > 1;) d[x] = p[x] - p[x - 1];
  d[0] = p[0];
}

void forward_2d(std::span<const i64> p, size_t nx, size_t ny, std::span<i64> d) {
  auto at = [&](size_t x, size_t y) -> i64 {
    return (x < nx && y < ny) ? p[x + nx * y] : 0;  // x,y wrap when "negative"
  };
  for (size_t y = ny; y-- > 0;) {
    for (size_t x = nx; x-- > 0;) {
      const i64 w = x > 0 ? at(x - 1, y) : 0;
      const i64 n = y > 0 ? at(x, y - 1) : 0;
      const i64 nw = (x > 0 && y > 0) ? at(x - 1, y - 1) : 0;
      d[x + nx * y] = p[x + nx * y] - w - n + nw;
    }
  }
}

void forward_3d(std::span<const i64> p, size_t nx, size_t ny, size_t nz,
                std::span<i64> d) {
  auto at = [&](size_t x, size_t y, size_t z) -> i64 {
    return p[x + nx * (y + ny * z)];
  };
  for (size_t z = nz; z-- > 0;) {
    for (size_t y = ny; y-- > 0;) {
      for (size_t x = nx; x-- > 0;) {
        i64 v = at(x, y, z);
        if (x > 0) v -= at(x - 1, y, z);
        if (y > 0) v -= at(x, y - 1, z);
        if (z > 0) v -= at(x, y, z - 1);
        if (x > 0 && y > 0) v += at(x - 1, y - 1, z);
        if (x > 0 && z > 0) v += at(x - 1, y, z - 1);
        if (y > 0 && z > 0) v += at(x, y - 1, z - 1);
        if (x > 0 && y > 0 && z > 0) v -= at(x - 1, y - 1, z - 1);
        d[x + nx * (y + ny * z)] = v;
      }
    }
  }
}

/// Chunk grain for line-parallel scans: enough lines per claim that the
/// task-crew fallback pays one atomic per ~16Ki elements, not per line.
size_t line_grain(size_t line_len) {
  return std::max<size_t>(1, (size_t{1} << 14) / std::max<size_t>(1, line_len));
}

/// Deterministic chunk count for the boundary-propagation scans: at most
/// one chunk per worker (0 = hardware threads), each covering at least
/// `min_per` lines so the two extra passes stay negligible.
size_t scan_chunk_split(size_t lines, size_t workers, size_t min_per) {
  size_t w = workers != 0 ? workers : static_cast<size_t>(max_threads());
  w = std::min(w, lines / std::max<size_t>(min_per, 1));
  return std::max<size_t>(w, 1);
}

// The axis scans below break the prefix dependence the way rapidgzip's
// inverse pass does: (1) every chunk computes its *chunk-local* scan in
// parallel, (2) one cheap serial pass globalizes each chunk's final
// line by adding the previous chunk's (already global) final line, and
// (3) a second parallel pass adds that boundary offset to every interior
// line.  Integer adds are associative, so the result is identical to the
// serial scan for every chunk count — decompression stays byte-exact.

/// Chunked inclusive prefix sum over one 1-D array.
void scan_x_chunked_1d(std::span<i64> a, size_t nchunks) {
  const size_t n = a.size();
  const size_t per = div_ceil(n, nchunks);
  nchunks = div_ceil(n, per);
  parallel_tasks(nchunks, nchunks, [&](size_t c, size_t) {
    const size_t b = c * per;
    const size_t e = std::min(n, b + per);
    i64* p = a.data();
    for (size_t i = b + 1; i < e; ++i) p[i] += p[i - 1];
  });
  for (size_t c = 1; c < nchunks; ++c)
    a[std::min(n, c * per + per) - 1] += a[c * per - 1];
  parallel_tasks(nchunks - 1, nchunks - 1, [&](size_t t, size_t) {
    const size_t c = t + 1;
    const size_t b = c * per;
    const size_t e = std::min(n, b + per);
    const i64 carry = a[b - 1];
    i64* p = a.data();
    for (size_t i = b; i + 1 < e; ++i) p[i] += carry;
  });
}

/// Chunked y-scan over a single plane (row-granular boundary offsets).
void scan_y_chunked_plane(i64* plane, size_t nx, size_t ny, size_t nchunks) {
  const size_t per = div_ceil(ny, nchunks);
  nchunks = div_ceil(ny, per);
  parallel_tasks(nchunks, nchunks, [&](size_t c, size_t) {
    const size_t yb = c * per;
    const size_t ye = std::min(ny, yb + per);
    for (size_t y = yb + 1; y < ye; ++y)
      for (size_t x = 0; x < nx; ++x)
        plane[x + nx * y] += plane[x + nx * (y - 1)];
  });
  for (size_t c = 1; c < nchunks; ++c) {
    i64* last = plane + (std::min(ny, c * per + per) - 1) * nx;
    const i64* prev = plane + (c * per - 1) * nx;
    for (size_t x = 0; x < nx; ++x) last[x] += prev[x];
  }
  parallel_tasks(nchunks - 1, nchunks - 1, [&](size_t t, size_t) {
    const size_t c = t + 1;
    const size_t yb = c * per;
    const size_t ye = std::min(ny, yb + per);
    const i64* carry = plane + (yb - 1) * nx;
    for (size_t y = yb; y + 1 < ye; ++y)
      for (size_t x = 0; x < nx; ++x) plane[x + nx * y] += carry[x];
  });
}

/// Inclusive prefix sum along x for every (y, z) line.
void scan_x(std::span<i64> a, Dims dims, size_t workers) {
  const size_t lines = dims.y * dims.z;
  if (lines == 1) {
    // 1-D input: the whole array is one prefix chain — the only scan where
    // boundary propagation is needed to parallelize at all.
    const size_t nchunks = scan_chunk_split(dims.x, workers, size_t{1} << 15);
    if (nchunks > 1) {
      scan_x_chunked_1d(a, nchunks);
      return;
    }
  }
  parallel_chunks(lines, line_grain(dims.x), [&](size_t b, size_t e) {
    for (size_t line = b; line < e; ++line) {
      i64* row = a.data() + line * dims.x;
      for (size_t x = 1; x < dims.x; ++x) row[x] += row[x - 1];
    }
  });
}

void scan_y(std::span<i64> a, Dims dims, size_t workers) {
  if (dims.z == 1) {
    // Single plane (2-D input): without boundary propagation the y-scan
    // would be one serial chain of row adds.
    const size_t nchunks = scan_chunk_split(dims.y, workers, 32);
    if (nchunks > 1) {
      scan_y_chunked_plane(a.data(), dims.x, dims.y, nchunks);
      return;
    }
  }
  parallel_chunks(dims.z, line_grain(dims.x * dims.y), [&](size_t zb, size_t ze) {
    for (size_t z = zb; z < ze; ++z) {
      i64* plane = a.data() + z * dims.x * dims.y;
      for (size_t y = 1; y < dims.y; ++y)
        for (size_t x = 0; x < dims.x; ++x)
          plane[x + dims.x * y] += plane[x + dims.x * (y - 1)];
    }
  });
}

/// Chunked z-scan with plane-granular boundary offsets — the 3-D analogue
/// of scan_y_chunked_plane: chunk-local z-scans in parallel, one serial
/// pass globalizing each chunk's final plane, then a parallel interior
/// carry-add of that plane.
void scan_z_chunked(std::span<i64> a, size_t nx, size_t ny, size_t nz,
                    size_t nchunks) {
  const size_t plane = nx * ny;
  const size_t per = div_ceil(nz, nchunks);
  nchunks = div_ceil(nz, per);
  parallel_tasks(nchunks, nchunks, [&](size_t c, size_t) {
    const size_t zb = c * per;
    const size_t ze = std::min(nz, zb + per);
    for (size_t z = zb + 1; z < ze; ++z)
      for (size_t i = 0; i < plane; ++i)
        a[i + plane * z] += a[i + plane * (z - 1)];
  });
  for (size_t c = 1; c < nchunks; ++c) {
    i64* last = a.data() + (std::min(nz, c * per + per) - 1) * plane;
    const i64* prev = a.data() + (c * per - 1) * plane;
    for (size_t i = 0; i < plane; ++i) last[i] += prev[i];
  }
  parallel_tasks(nchunks - 1, nchunks - 1, [&](size_t t, size_t) {
    const size_t c = t + 1;
    const size_t zb = c * per;
    const size_t ze = std::min(nz, zb + per);
    const i64* carry = a.data() + (zb - 1) * plane;
    for (size_t z = zb; z + 1 < ze; ++z)
      for (size_t i = 0; i < plane; ++i) a[i + plane * z] += carry[i];
  });
}

void scan_z(std::span<i64> a, Dims dims, size_t workers) {
  const size_t w = workers != 0 ? workers : static_cast<size_t>(max_threads());
  if (dims.y < w) {
    // Too few y-rows to occupy the crew (flat or thin-slab volumes): chunk
    // the z-chain itself and propagate plane-granular boundary offsets.
    const size_t nchunks = scan_chunk_split(dims.z, workers, 4);
    if (nchunks > 1) {
      scan_z_chunked(a, dims.x, dims.y, dims.z, nchunks);
      return;
    }
  }
  const size_t plane = dims.x * dims.y;
  parallel_chunks(dims.y, line_grain(dims.x * dims.z), [&](size_t yb, size_t ye) {
    for (size_t y = yb; y < ye; ++y)
      for (size_t z = 1; z < dims.z; ++z)
        for (size_t x = 0; x < dims.x; ++x)
          a[x + dims.x * y + plane * z] += a[x + dims.x * y + plane * (z - 1)];
  });
}

}  // namespace

void lorenzo_forward(std::span<const i64> p, Dims dims, std::span<i64> delta) {
  FZ_REQUIRE(p.size() == dims.count() && delta.size() == p.size(),
             "lorenzo: size mismatch");
  switch (dims.rank()) {
    case 1:
      forward_1d(p, dims.x, delta);
      break;
    case 2:
      forward_2d(p, dims.x, dims.y, delta);
      break;
    default:
      forward_3d(p, dims.x, dims.y, dims.z, delta);
      break;
  }
}

void lorenzo_inverse(std::span<const i64> delta, Dims dims, std::span<i64> p,
                     size_t workers) {
  FZ_REQUIRE(delta.size() == dims.count() && p.size() == delta.size(),
             "lorenzo: size mismatch");
  if (p.data() != delta.data())
    std::copy(delta.begin(), delta.end(), p.begin());
  scan_x(p, dims, workers);
  if (dims.rank() >= 2) scan_y(p, dims, workers);
  if (dims.rank() >= 3) scan_z(p, dims, workers);
}

}  // namespace fz
