#include "core/kernels_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "core/bitshuffle.hpp"
#include "core/format.hpp"
#include "cudasim/launch.hpp"
#include "substrate/bitio.hpp"
#include "substrate/scan.hpp"

namespace fz {

using cudasim::CostSheet;
using cudasim::Dim3;
using cudasim::LaunchConfig;
using cudasim::ThreadCtx;

namespace {

// Shared tail of the two tile kernels (sim_bitshuffle_mark_fused and
// sim_fused_quant_shuffle_mark): the caller has already placed this
// thread's 32-bit code word in shared buf[y*stride + x] and issued the
// barrier; from there the ballot transpose, the shuffled write-back, and
// the fused zero-block marking are identical.
template <typename Buf, typename ByteArr, typename BitArr>
void tile_shuffle_mark_tail(ThreadCtx& t, Buf& buf, ByteArr& byte_flag_arr,
                            BitArr& bit_flag_arr, std::span<u32> out,
                            std::vector<u8>& byte_flags,
                            std::vector<u8>& bit_flags, size_t stride,
                            BitshuffleFault fault, u32 ballot_guard) {
  const u32 x = t.thread_idx.x;
  const u32 y = t.thread_idx.y;
  const size_t tile = t.block_idx.x;
  const size_t g = tile * kTileWords + y * 32 + x;

  // 32 ballot rounds: plane i of this warp's unit (= row y) is the vote
  // of bit i across the 32 lanes.  Lane i keeps round i's result.
  const u32 cur = buf.ld(y * stride + x);
  for (u32 i = 0; i < 32; ++i) {
    const u32 plane = t.ballot((cur >> i) & 1u);
    if (x == i) buf.st(y * stride + i, plane);
    t.count_ops(3);
  }
  if (fault != BitshuffleFault::MissingBarrier) t.sync_threads();

  // Transposed write-back: out word (x, y) = plane y of unit x.  The
  // column-wise shared read is the access the 32x33 padding protects.
  const u32 shuffled = buf.ld(x * stride + y);
  t.gstore(out, g, shuffled);
  t.sync_threads();

  // Fused mark: 256 threads each own one 16-byte block (4 consecutive
  // output words in plane-major order).
  const u32 ltid = t.linear_tid();
  if (ltid < kBlocksPerTile) {
    u32 nz = 0;
    for (u32 i = 0; i < 4; ++i) {
      const u32 p = ltid * 4 + i;  // linear output position in the tile
      const u32 py = p / 32, px = p % 32;
      nz |= buf.ld(px * stride + py);
    }
    byte_flag_arr.st(ltid, nz != 0 ? 1 : 0);
    t.count_ops(6);
  }
  t.sync_threads();

  // Byte flags -> bit flags via ballot (8 warps cover 256 blocks).
  if (ltid < ballot_guard) {
    const u32 flag_word = t.ballot(byte_flag_arr.ld(ltid) != 0);
    if (t.lane() == 0) bit_flag_arr.st(t.warp_id(), flag_word);
  }
  t.sync_threads();

  // Write both flag arrays back to global memory.
  if (ltid < kBlocksPerTile) {
    t.gstore(byte_flags, tile * kBlocksPerTile + ltid, byte_flag_arr.ld(ltid));
  }
  if (ltid < 8) {
    const u32 word = bit_flag_arr.ld(ltid);
    for (u32 b = 0; b < 4; ++b) {
      t.gstore(bit_flags, tile * (kBlocksPerTile / 8) + ltid * 4 + b,
               static_cast<u8>(word >> (8 * b)));
    }
  }
}

}  // namespace

CostSheet sim_pred_quant_v2(FloatSpan data, Dims dims, double abs_eb,
                            std::span<u16> codes_out) {
  FZ_REQUIRE(data.size() == dims.count(), "sim: dims mismatch");
  FZ_REQUIRE(codes_out.size() >= data.size(), "sim: output too small");
  FZ_REQUIRE(abs_eb > 0, "sim: bad error bound");
  const double inv = 1.0 / (2.0 * abs_eb);

  LaunchConfig cfg;
  cfg.name = "pred-quant-v2";
  cfg.block = Dim3{256};
  cfg.grid = Dim3{static_cast<u32>(div_ceil(data.size(), 256))};

  return cudasim::launch(cfg, [&, inv](ThreadCtx& t) {
    const size_t i = static_cast<size_t>(t.block_idx.x) * 256 + t.thread_idx.x;
    if (i >= data.size()) return;

    // Pointwise pre-quantization; neighbours are recomputed, not shared.
    const auto prequant = [&](size_t ix, size_t iy, size_t iz) -> i64 {
      const f32 v = t.gload(data, dims.linear(ix, iy, iz));
      t.count_ops(2);
      return static_cast<i64>(std::llround(static_cast<double>(v) * inv));
    };

    const size_t ix = i % dims.x;
    const size_t iy = (i / dims.x) % dims.y;
    const size_t iz = i / (dims.x * dims.y);

    i64 delta = prequant(ix, iy, iz);
    if (ix > 0) delta -= prequant(ix - 1, iy, iz);
    if (iy > 0) delta -= prequant(ix, iy - 1, iz);
    if (iz > 0) delta -= prequant(ix, iy, iz - 1);
    if (ix > 0 && iy > 0) delta += prequant(ix - 1, iy - 1, iz);
    if (ix > 0 && iz > 0) delta += prequant(ix - 1, iy, iz - 1);
    if (iy > 0 && iz > 0) delta += prequant(ix, iy - 1, iz - 1);
    if (ix > 0 && iy > 0 && iz > 0) delta -= prequant(ix - 1, iy - 1, iz - 1);

    const i64 clipped = std::clamp<i64>(delta, -kMaxMagnitude16, kMaxMagnitude16);
    t.gstore(codes_out, i, sign_magnitude_encode(static_cast<i32>(clipped)));
    t.count_ops(6);
  });
}

CostSheet sim_bitshuffle_mark_fused(std::span<const u32> in, std::span<u32> out,
                                    std::vector<u8>& byte_flags,
                                    std::vector<u8>& bit_flags,
                                    bool padded_shared, BitshuffleFault fault) {
  FZ_REQUIRE(in.size() % kTileWords == 0, "sim: input must be whole tiles");
  FZ_REQUIRE(in.size() == out.size(), "sim: size mismatch");
  const size_t tiles = in.size() / kTileWords;
  byte_flags.assign(tiles * kBlocksPerTile, 0);
  bit_flags.assign(tiles * kBlocksPerTile / 8, 0);

  // The padded row stride (33 words) staggers column-wise accesses across
  // banks; the unpadded 32-word stride lands a whole column in one bank.
  const size_t stride = padded_shared ? 33 : 32;
  // BitshuffleFault::DivergentBallot narrows the flag-ballot guard so the
  // top 8 lanes of warp 7 skip the collective and park at the barrier.
  const u32 ballot_guard = fault == BitshuffleFault::DivergentBallot
                               ? kBlocksPerTile - 8
                               : kBlocksPerTile;

  LaunchConfig cfg;
  cfg.name = "bitshuffle-mark-fused";
  cfg.grid = Dim3{static_cast<u32>(tiles)};
  cfg.block = Dim3{32, 32};

  return cudasim::launch(cfg, [&, stride, fault, ballot_guard](ThreadCtx& t) {
    auto buf = t.shared_mem<u32>("buf", 32 * stride);
    auto byte_flag_arr = t.shared_mem<u8>("ByteFlagArr", kBlocksPerTile);
    auto bit_flag_arr = t.shared_mem<u32>("BitFlagArr", 8);

    const u32 x = t.thread_idx.x;
    const u32 y = t.thread_idx.y;
    const size_t g = t.block_idx.x * kTileWords + y * 32 + x;

    // Load the tile into shared memory (row-wise, coalesced, conflict-free).
    buf.st(y * stride + x, t.gload(in, g));
    t.sync_threads();

    tile_shuffle_mark_tail(t, buf, byte_flag_arr, bit_flag_arr, out,
                           byte_flags, bit_flags, stride, fault, ballot_guard);
  });
}

CostSheet sim_fused_quant_shuffle_mark(FloatSpan data, Dims dims,
                                       double abs_eb, std::span<u32> out,
                                       std::vector<u8>& byte_flags,
                                       std::vector<u8>& bit_flags,
                                       std::span<i64> anchor_out,
                                       bool padded_shared,
                                       BitshuffleFault fault) {
  FZ_REQUIRE(data.size() == dims.count(), "sim: dims mismatch");
  FZ_REQUIRE(out.size() % kTileWords == 0 && out.size() * 2 >= data.size(),
             "sim: output must be whole tiles covering the input");
  FZ_REQUIRE(!anchor_out.empty(), "sim: anchor output too small");
  FZ_REQUIRE(abs_eb > 0, "sim: bad error bound");
  const double inv = 1.0 / (2.0 * abs_eb);
  const size_t tiles = out.size() / kTileWords;
  byte_flags.assign(tiles * kBlocksPerTile, 0);
  bit_flags.assign(tiles * kBlocksPerTile / 8, 0);

  const size_t stride = padded_shared ? 33 : 32;
  const u32 ballot_guard = fault == BitshuffleFault::DivergentBallot
                               ? kBlocksPerTile - 8
                               : kBlocksPerTile;

  LaunchConfig cfg;
  cfg.name = "fused-quant-shuffle-mark";
  cfg.grid = Dim3{static_cast<u32>(tiles)};
  cfg.block = Dim3{32, 32};

  return cudasim::launch(cfg, [&, inv, stride, fault,
                               ballot_guard](ThreadCtx& t) {
    auto buf = t.shared_mem<u32>("buf", 32 * stride);
    auto byte_flag_arr = t.shared_mem<u8>("ByteFlagArr", kBlocksPerTile);
    auto bit_flag_arr = t.shared_mem<u32>("BitFlagArr", 8);

    const u32 x = t.thread_idx.x;
    const u32 y = t.thread_idx.y;
    const size_t tile = t.block_idx.x;

    // Pointwise pre-quantization; neighbours are recomputed, not shared —
    // the dual-quantization property, exactly as in sim_pred_quant_v2.
    const auto prequant = [&](size_t ix, size_t iy, size_t iz) -> i64 {
      const f32 v = t.gload(data, dims.linear(ix, iy, iz));
      t.count_ops(2);
      return static_cast<i64>(std::llround(static_cast<double>(v) * inv));
    };
    const auto code_for = [&](size_t e) -> u16 {
      if (e >= data.size()) return 0;  // tile padding shuffles to zero blocks
      const size_t ix = e % dims.x;
      const size_t iy = (e / dims.x) % dims.y;
      const size_t iz = e / (dims.x * dims.y);
      i64 delta = prequant(ix, iy, iz);
      if (ix > 0) delta -= prequant(ix - 1, iy, iz);
      if (iy > 0) delta -= prequant(ix, iy - 1, iz);
      if (iz > 0) delta -= prequant(ix, iy, iz - 1);
      if (ix > 0 && iy > 0) delta += prequant(ix - 1, iy - 1, iz);
      if (ix > 0 && iz > 0) delta += prequant(ix - 1, iy, iz - 1);
      if (iy > 0 && iz > 0) delta += prequant(ix, iy - 1, iz - 1);
      if (ix > 0 && iy > 0 && iz > 0) delta -= prequant(ix - 1, iy - 1, iz - 1);
      if (e == 0) {
        // The first value's residual is the value itself; the host carries
        // it in the stream header and zeroes the code (anchor).
        t.gstore(anchor_out, 0, delta);
        return 0;
      }
      const i64 clipped =
          std::clamp<i64>(delta, -kMaxMagnitude16, kMaxMagnitude16);
      t.count_ops(6);
      return sign_magnitude_encode(static_cast<i32>(clipped));
    };

    // This thread owns one code word of the tile = two consecutive u16
    // codes, packed little-endian like the native codes-as-u32 layout.
    // The codes go straight into the shared tile — never to global memory.
    const size_t e0 = tile * kCodesPerTile + 2 * (y * 32 + x);
    const u16 c0 = code_for(e0);
    const u16 c1 = code_for(e0 + 1);
    buf.st(y * stride + x,
           static_cast<u32>(c0) | (static_cast<u32>(c1) << 16));
    t.sync_threads();

    tile_shuffle_mark_tail(t, buf, byte_flag_arr, bit_flag_arr, out,
                           byte_flags, bit_flags, stride, fault, ballot_guard);
  });
}

namespace {

/// Split-plane staging for sim_fused_quant_shuffle_mark_strips: with a 3-D
/// plane halo too large for one contiguous shared window, the stencil's
/// reads still cluster into two bounded ranges per element e — the near
/// cluster [e-(nx+1), e] (same-plane and previous-row neighbours) and the
/// z-plane cluster [e-(nx*ny+nx+1), e-nx*ny] — each spanning at most
/// kCodesPerTile + nx + 1 elements across a whole tile.  Staging one
/// shared window per cluster keeps the cooperative scheme (one global
/// load + quantization per staged element) instead of falling back to
/// per-thread global recomputes.  Reads route by linear index: at or
/// above the near window's base goes near, below goes far; while both
/// windows fit the 200 KB budget the clusters cannot overlap (a near read
/// is always >= e-(nx+1) >= the near base; a far read needs
/// nx*ny <= kCodesPerTile + nx to reach the near base, impossible at the
/// plane sizes that trigger the split).  Hazard freedom — every routed
/// read hits a staged slot — is asserted under fzcheck.
CostSheet sim_fused_strips_split_planes(FloatSpan data, Dims dims, double inv,
                                        std::span<u32> out,
                                        std::vector<u8>& byte_flags,
                                        std::vector<u8>& bit_flags,
                                        std::span<i64> anchor_out,
                                        bool padded_shared, size_t halo_ext,
                                        size_t win_elems) {
  const size_t tiles = out.size() / kTileWords;
  byte_flags.assign(tiles * kBlocksPerTile, 0);
  bit_flags.assign(tiles * kBlocksPerTile / 8, 0);
  const size_t stride = padded_shared ? 33 : 32;
  const size_t plane = dims.x * dims.y;

  LaunchConfig cfg;
  cfg.name = "fused-quant-shuffle-mark-strips";
  cfg.grid = Dim3{static_cast<u32>(tiles)};
  cfg.block = Dim3{32, 32};

  return cudasim::launch(cfg, [&, inv, stride, halo_ext, win_elems,
                               plane](ThreadCtx& t) {
    auto pq_far = t.shared_mem<i64>("pq_halo_far", win_elems);
    auto pq_near = t.shared_mem<i64>("pq_halo_near", win_elems);
    auto buf = t.shared_mem<u32>("buf", 32 * stride);
    auto byte_flag_arr = t.shared_mem<u8>("ByteFlagArr", kBlocksPerTile);
    auto bit_flag_arr = t.shared_mem<u32>("BitFlagArr", 8);

    const size_t tile = t.block_idx.x;
    const size_t e_begin = tile * kCodesPerTile;
    const size_t h1 = std::min(data.size(), e_begin + kCodesPerTile);
    const size_t near_lo = e_begin > dims.x + 1 ? e_begin - (dims.x + 1) : 0;
    const size_t far_lo = e_begin > halo_ext ? e_begin - halo_ext : 0;
    const size_t far_hi = h1 > plane ? h1 - plane : 0;

    const auto stage = [&](auto& win, size_t lo, size_t hi) {
      for (size_t i = lo + t.linear_tid(); i < hi; i += 1024) {
        const f32 v = t.gload(data, i);
        win.st(i - lo,
               static_cast<i64>(std::llround(static_cast<double>(v) * inv)));
        t.count_ops(2);
      }
    };
    stage(pq_far, far_lo, far_hi);
    stage(pq_near, near_lo, h1);
    t.sync_threads();

    const auto pq_at = [&](size_t ix, size_t iy, size_t iz) -> i64 {
      const size_t idx = dims.linear(ix, iy, iz);
      return idx >= near_lo ? pq_near.ld(idx - near_lo)
                            : pq_far.ld(idx - far_lo);
    };
    const auto code_for = [&](size_t e) -> u16 {
      if (e >= data.size()) return 0;  // tile padding shuffles to zero blocks
      const size_t ix = e % dims.x;
      const size_t iy = (e / dims.x) % dims.y;
      const size_t iz = e / plane;
      i64 delta = pq_at(ix, iy, iz);
      if (ix > 0) delta -= pq_at(ix - 1, iy, iz);
      if (iy > 0) delta -= pq_at(ix, iy - 1, iz);
      if (iz > 0) delta -= pq_at(ix, iy, iz - 1);
      if (ix > 0 && iy > 0) delta += pq_at(ix - 1, iy - 1, iz);
      if (ix > 0 && iz > 0) delta += pq_at(ix - 1, iy, iz - 1);
      if (iy > 0 && iz > 0) delta += pq_at(ix, iy - 1, iz - 1);
      if (ix > 0 && iy > 0 && iz > 0) delta -= pq_at(ix - 1, iy - 1, iz - 1);
      if (e == 0) {
        t.gstore(anchor_out, 0, delta);
        return 0;
      }
      const i64 clipped =
          std::clamp<i64>(delta, -kMaxMagnitude16, kMaxMagnitude16);
      t.count_ops(6);
      return sign_magnitude_encode(static_cast<i32>(clipped));
    };

    const u32 x = t.thread_idx.x;
    const u32 y = t.thread_idx.y;
    const size_t e0 = tile * kCodesPerTile + 2 * (y * 32 + x);
    const u16 c0 = code_for(e0);
    const u16 c1 = code_for(e0 + 1);
    buf.st(y * stride + x, static_cast<u32>(c0) | (static_cast<u32>(c1) << 16));
    t.sync_threads();

    tile_shuffle_mark_tail(t, buf, byte_flag_arr, bit_flag_arr, out,
                           byte_flags, bit_flags, stride,
                           BitshuffleFault::None, kBlocksPerTile);
  });
}

}  // namespace

CostSheet sim_fused_quant_shuffle_mark_strips(FloatSpan data, Dims dims,
                                              double abs_eb,
                                              std::span<u32> out,
                                              std::vector<u8>& byte_flags,
                                              std::vector<u8>& bit_flags,
                                              std::span<i64> anchor_out,
                                              bool padded_shared) {
  FZ_REQUIRE(data.size() == dims.count(), "sim: dims mismatch");
  FZ_REQUIRE(out.size() % kTileWords == 0 && out.size() * 2 >= data.size(),
             "sim: output must be whole tiles covering the input");
  FZ_REQUIRE(!anchor_out.empty(), "sim: anchor output too small");
  FZ_REQUIRE(abs_eb > 0, "sim: bad error bound");

  // Maximum backward reach of the Lorenzo stencil in linear index space:
  // the (iz-1, iy-1, ix-1) corner sits nx*ny + nx + 1 elements behind.
  const size_t halo_ext = dims.rank() == 1   ? 1
                          : dims.rank() == 2 ? dims.x + 1
                                             : dims.x * dims.y + dims.x + 1;
  const size_t pq_elems = halo_ext + kCodesPerTile;
  // Shared-capacity gate (Hopper-class ~228 KB dynamic shared memory,
  // minus the transpose tile and flag arrays): when a 3-D plane halo does
  // not fit in one contiguous window, split the staging into the two
  // bounded read clusters (near rows + the z-plane band); only when even
  // the split windows exceed the budget (nx beyond ~10750) fall back to
  // the per-thread global-recompute kernel — same output, more traffic.
  constexpr size_t kSharedBudget = size_t{200} << 10;
  if (pq_elems * sizeof(i64) > kSharedBudget) {
    const size_t win_elems = kCodesPerTile + dims.x + 1;
    if (2 * win_elems * sizeof(i64) > kSharedBudget)
      return sim_fused_quant_shuffle_mark(data, dims, abs_eb, out, byte_flags,
                                          bit_flags, anchor_out, padded_shared);
    return sim_fused_strips_split_planes(data, dims, 1.0 / (2.0 * abs_eb), out,
                                         byte_flags, bit_flags, anchor_out,
                                         padded_shared, halo_ext, win_elems);
  }

  const double inv = 1.0 / (2.0 * abs_eb);
  const size_t tiles = out.size() / kTileWords;
  byte_flags.assign(tiles * kBlocksPerTile, 0);
  bit_flags.assign(tiles * kBlocksPerTile / 8, 0);
  const size_t stride = padded_shared ? 33 : 32;

  LaunchConfig cfg;
  cfg.name = "fused-quant-shuffle-mark-strips";
  cfg.grid = Dim3{static_cast<u32>(tiles)};
  cfg.block = Dim3{32, 32};

  return cudasim::launch(cfg, [&, inv, stride, halo_ext,
                               pq_elems](ThreadCtx& t) {
    auto pq = t.shared_mem<i64>("pq_halo", pq_elems);
    auto buf = t.shared_mem<u32>("buf", 32 * stride);
    auto byte_flag_arr = t.shared_mem<u8>("ByteFlagArr", kBlocksPerTile);
    auto bit_flag_arr = t.shared_mem<u32>("BitFlagArr", 8);

    const size_t tile = t.block_idx.x;
    const size_t e_begin = tile * kCodesPerTile;
    const size_t h0 = e_begin > halo_ext ? e_begin - halo_ext : 0;
    const size_t h1 = std::min(data.size(), e_begin + kCodesPerTile);

    // Cooperative halo re-prequantization (the host strip scheme, one
    // block = one strip of one tile): the block quantizes every element
    // its codes' stencils can reach ONCE into shared memory, so the up to
    // eight global recomputes per element of the single-pass kernel become
    // shared loads.  Strided so consecutive lanes touch consecutive words.
    for (size_t i = h0 + t.linear_tid(); i < h1; i += 1024) {
      const f32 v = t.gload(data, i);
      pq.st(i - h0,
            static_cast<i64>(std::llround(static_cast<double>(v) * inv)));
      t.count_ops(2);
    }
    t.sync_threads();

    // Every guarded neighbour of an element in [e_begin, h1) lies in
    // [e - halo_ext, e] and below data.size(), so the shared reads below
    // never touch an unwritten slot (fzcheck's uninit-read tracking
    // asserts this in tests/test_sanitizer.cpp).
    const auto pq_at = [&](size_t ix, size_t iy, size_t iz) -> i64 {
      return pq.ld(dims.linear(ix, iy, iz) - h0);
    };
    const auto code_for = [&](size_t e) -> u16 {
      if (e >= data.size()) return 0;  // tile padding shuffles to zero blocks
      const size_t ix = e % dims.x;
      const size_t iy = (e / dims.x) % dims.y;
      const size_t iz = e / (dims.x * dims.y);
      i64 delta = pq_at(ix, iy, iz);
      if (ix > 0) delta -= pq_at(ix - 1, iy, iz);
      if (iy > 0) delta -= pq_at(ix, iy - 1, iz);
      if (iz > 0) delta -= pq_at(ix, iy, iz - 1);
      if (ix > 0 && iy > 0) delta += pq_at(ix - 1, iy - 1, iz);
      if (ix > 0 && iz > 0) delta += pq_at(ix - 1, iy, iz - 1);
      if (iy > 0 && iz > 0) delta += pq_at(ix, iy - 1, iz - 1);
      if (ix > 0 && iy > 0 && iz > 0) delta -= pq_at(ix - 1, iy - 1, iz - 1);
      if (e == 0) {
        t.gstore(anchor_out, 0, delta);
        return 0;
      }
      const i64 clipped =
          std::clamp<i64>(delta, -kMaxMagnitude16, kMaxMagnitude16);
      t.count_ops(6);
      return sign_magnitude_encode(static_cast<i32>(clipped));
    };

    const u32 x = t.thread_idx.x;
    const u32 y = t.thread_idx.y;
    const size_t e0 = tile * kCodesPerTile + 2 * (y * 32 + x);
    const u16 c0 = code_for(e0);
    const u16 c1 = code_for(e0 + 1);
    buf.st(y * stride + x, static_cast<u32>(c0) | (static_cast<u32>(c1) << 16));
    t.sync_threads();

    tile_shuffle_mark_tail(t, buf, byte_flag_arr, bit_flag_arr, out,
                           byte_flags, bit_flags, stride,
                           BitshuffleFault::None, kBlocksPerTile);
  });
}

CostSheet sim_compact_blocks(std::span<const u32> shuffled,
                             std::span<const u8> byte_flags,
                             std::vector<u32>& blocks_out) {
  const size_t nblocks = byte_flags.size();
  FZ_REQUIRE(shuffled.size() == nblocks * kBlockWords, "sim: size mismatch");

  // Prefix sum (the paper calls CUB's ExclusiveSum between the kernels).
  std::vector<u32> flags32(nblocks);
  for (size_t i = 0; i < nblocks; ++i) flags32[i] = byte_flags[i];
  std::vector<u32> presum(nblocks);
  CostSheet total = scan_exclusive_device_model(flags32, presum);
  total.name = "prefix-sum-encode";

  const size_t nonzero = nblocks == 0 ? 0 : presum.back() + flags32.back();
  blocks_out.assign(nonzero * kBlockWords, 0);

  LaunchConfig cfg;
  cfg.name = "encode-compact";
  cfg.grid = Dim3{static_cast<u32>(div_ceil(nblocks, 256))};
  cfg.block = Dim3{256};

  CostSheet compact = cudasim::launch(cfg, [&](ThreadCtx& t) {
    const size_t blk =
        static_cast<size_t>(t.block_idx.x) * 256 + t.thread_idx.x;
    if (blk >= nblocks) return;
    const u32 offset = t.gload(presum, blk);
    // "The offset is valid if it is different from its previous offset" —
    // equivalently the block's own flag is set.
    const bool valid = blk + 1 < nblocks
                           ? t.gload(presum, blk + 1) != offset
                           : flags32[blk] != 0;
    if (!valid) return;
    for (size_t k = 0; k < kBlockWords; ++k) {
      const u32 v = t.gload(shuffled, blk * kBlockWords + k);
      t.gstore(blocks_out, static_cast<size_t>(offset) * kBlockWords + k, v);
    }
    t.count_ops(8);
  });
  total += compact;
  return total;
}

CostSheet sim_huffman_encode(std::span<const u16> symbols,
                             const HuffmanCodebook& book, size_t chunk_size,
                             std::vector<u8>& encoded_out,
                             size_t segment_size) {
  FZ_REQUIRE(chunk_size > 0, "sim: chunk size must be positive");
  const size_t num_chunks = div_ceil(symbols.size(), chunk_size);

  // Kernel 1: each thread encodes one chunk into its private (worst-case
  // sized) buffer, records the produced byte count, and — for free, since
  // the encoder always knows its bit position — the gap array of segment
  // start offsets that unlocks segment-parallel decode.
  std::vector<std::vector<u8>> payloads(num_chunks);
  std::vector<std::vector<u32>> gaps(num_chunks);
  std::vector<u32> sizes(num_chunks, 0);
  LaunchConfig cfg;
  cfg.name = "huffman-encode-coarse";
  cfg.grid = Dim3{static_cast<u32>(div_ceil(num_chunks, 64))};
  cfg.block = Dim3{64};
  CostSheet total = cudasim::launch(cfg, [&](ThreadCtx& t) {
    const size_t c = static_cast<size_t>(t.block_idx.x) * 64 + t.thread_idx.x;
    if (c >= num_chunks) return;
    const size_t begin = c * chunk_size;
    const size_t end = std::min(begin + chunk_size, symbols.size());
    // Serial bit packing within the chunk — the irregular, data-dependent
    // loop that caps this kernel's throughput (paper 3.1).
    u64 acc = 0;
    int nbits = 0;
    std::vector<u8>& buf = payloads[c];
    for (size_t i = begin; i < end; ++i) {
      if (segment_size != 0 && i != begin && (i - begin) % segment_size == 0)
        gaps[c].push_back(static_cast<u32>(buf.size() * 8 +
                                           static_cast<size_t>(nbits)));
      const u16 s = t.gload(symbols, i);
      const int len = book.lengths[s];
      const u64 code = book.codes[s];
      t.count_ops(static_cast<size_t>(4 + len / 8));
      for (int b = len - 1; b >= 0; --b) {
        acc = (acc << 1) | ((code >> b) & 1u);
        if (++nbits == 8) {
          buf.push_back(static_cast<u8>(acc));
          acc = 0;
          nbits = 0;
        }
      }
    }
    if (nbits != 0) buf.push_back(static_cast<u8>(acc << (8 - nbits)));
    sizes[c] = static_cast<u32>(buf.size());
    t.count_global_write(buf.size() + gaps[c].size() * sizeof(u32));
  });

  // Prefix sum of chunk sizes gives the compaction offsets (same global-
  // sync-by-kernel-exit pattern as the fz encoder).
  std::vector<u32> offsets(num_chunks);
  total += scan_exclusive_device_model(sizes, offsets);

  // Assemble the exact huffman_encode stream layout (either version).
  encoded_out.clear();
  ByteWriter w(encoded_out);
  if (segment_size != 0) {
    w.put<u32>(kHuffGapMagic);
    w.put<u32>(static_cast<u32>(num_chunks));
    w.put<u32>(static_cast<u32>(chunk_size));
    w.put<u32>(static_cast<u32>(segment_size));
    w.put<u64>(symbols.size());
    for (const u32 sz : sizes) w.put<u32>(sz);
    for (const auto& g : gaps)
      for (const u32 bit : g) w.put<u32>(bit);
  } else {
    w.put<u32>(static_cast<u32>(num_chunks));
    w.put<u32>(static_cast<u32>(chunk_size));
    w.put<u64>(symbols.size());
    for (const u32 sz : sizes) w.put<u32>(sz);
  }
  for (const auto& p : payloads) w.put_bytes(p);
  total.name = "huffman-encode-coarse";
  return total;
}

CostSheet sim_huffman_decode(ByteSpan encoded, const HuffmanCodebook& book,
                             std::vector<u16>& symbols_out) {
  // Parse the chunked layout host-side (it is part of the stream format),
  // through the same validated parser the host decoder uses.
  const HuffmanLayout lay = parse_huffman_layout(encoded);
  FZ_FORMAT_REQUIRE(lay.count <= lay.payload.size() * 8,
                    "sim: count exceeds payload");

  // Canonical decode tables, as on device constant memory — the shared
  // build also rejects hostile length tables before any kernel runs.
  const HuffmanDecodeTables tb = build_decode_tables(book);
  const int maxlen = tb.max_length;
  FZ_FORMAT_REQUIRE(maxlen > 0 || lay.count == 0, "sim: empty codebook");

  symbols_out.assign(lay.count, 0);
  LaunchConfig cfg;
  cfg.name = "huffman-decode-chunked";
  cfg.grid = Dim3{static_cast<u32>(div_ceil(lay.num_chunks, 64))};
  cfg.block = Dim3{64};
  CostSheet cost = cudasim::launch(cfg, [&](ThreadCtx& t) {
    const size_t c = static_cast<size_t>(t.block_idx.x) * 64 + t.thread_idx.x;
    if (c >= lay.num_chunks) return;
    // Bounds-checked view of this chunk's payload: a decode overrunning
    // its chunk is a GlobalOutOfBounds finding, not silent bleed into the
    // next chunk.
    const ByteSpan chunk = lay.payload.subspan(lay.offsets[c], lay.sizes[c]);
    size_t bitpos = 0;
    const size_t begin = c * static_cast<size_t>(lay.chunk_size);
    const size_t end = std::min<size_t>(begin + lay.chunk_size, lay.count);
    for (size_t i = begin; i < end; ++i) {
      u64 code = 0;
      int len = 0;
      for (;;) {
        const u8 byte = t.gload(chunk, bitpos / 8);
        code = (code << 1) | ((byte >> (7 - bitpos % 8)) & 1u);
        ++bitpos;
        ++len;
        FZ_FORMAT_REQUIRE(len <= maxlen, "sim: invalid Huffman code");
        const u64 base = tb.first_code[static_cast<size_t>(len)];
        const u32 n_at_len = tb.count_per_len[static_cast<size_t>(len)];
        if (n_at_len != 0 && code >= base && code < base + n_at_len) {
          const u32 idx = tb.first_index[static_cast<size_t>(len)] +
                          static_cast<u32>(code - base);
          t.gstore(symbols_out, i, static_cast<u16>(tb.sorted_syms[idx]));
          break;
        }
        t.count_ops(3);
      }
    }
  });
  return cost;
}

CostSheet sim_huffman_decode_gap(ByteSpan encoded, const HuffmanCodebook& book,
                                 std::vector<u16>& symbols_out) {
  const HuffmanLayout lay = parse_huffman_layout(encoded);
  FZ_FORMAT_REQUIRE(lay.count <= lay.payload.size() * 8,
                    "sim: count exceeds payload");
  const HuffmanDecodeTables tb = build_decode_tables(book);
  FZ_FORMAT_REQUIRE(tb.max_length > 0 || lay.count == 0, "sim: empty codebook");

  symbols_out.assign(lay.count, 0);
  const size_t nseg = lay.total_segments();
  if (nseg == 0) {
    CostSheet empty;
    empty.name = "huffman-decode-gap";
    return empty;
  }

  // Host-side segment -> chunk map (device builds this with a trivial
  // binary search or a scatter; constant-size metadata either way).
  std::vector<u32> seg_chunk(nseg);
  for (size_t c = 0; c < lay.num_chunks; ++c) {
    const size_t base = lay.gap_start[c] + c;
    std::fill_n(seg_chunk.begin() + static_cast<long>(base),
                lay.segments_in_chunk(c), static_cast<u32>(c));
  }

  const bool use_table = tb.table_ok;
  const int K = tb.primary_bits;
  const size_t psize = tb.primary.size();
  const std::span<const u32> primary_g(tb.primary);
  const std::span<const u32> secondary_g(tb.secondary);

  LaunchConfig cfg;
  cfg.name = "huffman-decode-gap";
  cfg.grid = Dim3{static_cast<u32>(div_ceil(nseg, 64))};
  cfg.block = Dim3{64};
  return cudasim::launch(cfg, [&](ThreadCtx& t) {
    // Cooperatively stage the primary lookup table into shared memory
    // (every segment's inner loop hits it once per symbol); the barrier
    // below is the hazard fzcheck verifies.  All threads participate
    // before the excess-segment guard so the block-wide sync is uniform.
    auto sh = t.shared_mem<u32>("huff_primary", std::max<size_t>(psize, 1));
    if (use_table) {
      for (size_t i = t.linear_tid(); i < psize; i += 64)
        sh.st(i, t.gload(primary_g, i));
    }
    t.sync_threads();

    const size_t g = static_cast<size_t>(t.block_idx.x) * 64 + t.thread_idx.x;
    if (g >= nseg) return;
    const size_t c = seg_chunk[g];
    const size_t s = g - (lay.gap_start[c] + c);
    const size_t chunk_begin = c * static_cast<size_t>(lay.chunk_size);
    const size_t chunk_end =
        std::min<size_t>(chunk_begin + lay.chunk_size, lay.count);
    const size_t seg_size = lay.segment_size == 0 ? chunk_end - chunk_begin
                                                  : lay.segment_size;
    const size_t begin = chunk_begin + s * seg_size;
    const size_t end = std::min(begin + seg_size, chunk_end);
    const ByteSpan chunk = lay.payload.subspan(lay.offsets[c], lay.sizes[c]);
    size_t bitpos = s == 0 ? 0 : lay.gaps[lay.gap_start[c] + s - 1];

    if (use_table) {
      // 4-byte window starting at the current byte: >= 25 valid bits from
      // any intra-byte phase, enough for the 11-bit primary index and any
      // in-budget sub-table width (<= 20 bits).  Bytes past the chunk read
      // as zero, like BitReaderMsb::peek; the position check after each
      // symbol rejects decodes that ran into the padding.
      const auto peek_win = [&](int n) -> u32 {
        const size_t first = bitpos / 8;
        u64 window = 0;
        for (size_t b = 0; b < 4; ++b) {
          const u64 byte =
              first + b < chunk.size() ? t.gload(chunk, first + b) : 0;
          window = (window << 8) | byte;
        }
        return static_cast<u32>(
            (window >> (32 - bitpos % 8 - static_cast<size_t>(n))) &
            ((u64{1} << n) - 1));
      };
      for (size_t i = begin; i < end; ++i) {
        const u32 e = sh.ld(peek_win(K));
        FZ_FORMAT_REQUIRE(e != HuffmanDecodeTables::kInvalidEntry,
                          "sim: invalid Huffman code");
        if ((e & HuffmanDecodeTables::kLongFlag) == 0) {
          bitpos += e >> HuffmanDecodeTables::kLenShift;
          t.gstore(symbols_out, i, static_cast<u16>(e & 0xffff));
        } else {
          bitpos += static_cast<size_t>(K);
          const int sub =
              static_cast<int>(e >> HuffmanDecodeTables::kLenShift) & 0x3f;
          const u32 e2 =
              t.gload(secondary_g, (e & 0x00ffffffu) + peek_win(sub));
          FZ_FORMAT_REQUIRE(e2 != HuffmanDecodeTables::kInvalidEntry,
                            "sim: invalid Huffman code");
          bitpos += (e2 >> HuffmanDecodeTables::kLenShift) -
                    static_cast<size_t>(K);
          t.gstore(symbols_out, i, static_cast<u16>(e2 & 0xffff));
        }
        FZ_FORMAT_REQUIRE(bitpos <= chunk.size() * 8,
                          "sim: bit stream exhausted");
        t.count_ops(4);
      }
      return;
    }
    // Bit-serial fallback for codebooks past the table budget.
    for (size_t i = begin; i < end; ++i) {
      u64 code = 0;
      int len = 0;
      for (;;) {
        const u8 byte = t.gload(chunk, bitpos / 8);
        code = (code << 1) | ((byte >> (7 - bitpos % 8)) & 1u);
        ++bitpos;
        ++len;
        FZ_FORMAT_REQUIRE(len <= tb.max_length, "sim: invalid Huffman code");
        const u64 base = tb.first_code[static_cast<size_t>(len)];
        const u32 n_at_len = tb.count_per_len[static_cast<size_t>(len)];
        if (n_at_len != 0 && code >= base && code < base + n_at_len) {
          const u32 idx = tb.first_index[static_cast<size_t>(len)] +
                          static_cast<u32>(code - base);
          t.gstore(symbols_out, i, static_cast<u16>(tb.sorted_syms[idx]));
          break;
        }
        t.count_ops(3);
      }
    }
  });
}

CostSheet sim_szx_block_stats(FloatSpan data, std::span<f32> mins,
                              std::span<f32> maxs) {
  constexpr size_t kBlock = 128;
  const size_t nblocks = div_ceil(data.size(), kBlock);
  FZ_REQUIRE(mins.size() >= nblocks && maxs.size() >= nblocks,
             "sim: stats output too small");

  LaunchConfig cfg;
  cfg.name = "szx-block-stats";
  cfg.grid = Dim3{static_cast<u32>(nblocks)};
  cfg.block = Dim3{static_cast<u32>(kBlock)};

  return cudasim::launch(cfg, [&](ThreadCtx& t) {
    const size_t blk = t.block_idx.x;
    const size_t i = blk * kBlock + t.thread_idx.x;
    // Out-of-range lanes contribute reduction identities so partial tail
    // blocks reduce correctly without divergent collectives.
    f32 lo = std::numeric_limits<f32>::infinity();
    f32 hi = -std::numeric_limits<f32>::infinity();
    if (i < data.size()) lo = hi = t.gload(data, i);

    // Warp butterfly: after log2(32) rounds every lane holds the warp
    // min/max (__shfl_xor_sync pattern).
    for (u32 offset = 16; offset > 0; offset >>= 1) {
      const f32 olo = bits_float(t.shfl(float_bits(lo), t.lane() ^ offset));
      const f32 ohi = bits_float(t.shfl(float_bits(hi), t.lane() ^ offset));
      lo = std::min(lo, olo);
      hi = std::max(hi, ohi);
      t.count_ops(4);
    }

    // Cross-warp combine through shared memory (4 warps per block).
    auto warp_lo = t.shared_mem<f32>("warp_lo", 4);
    auto warp_hi = t.shared_mem<f32>("warp_hi", 4);
    if (t.lane() == 0) {
      warp_lo.st(t.warp_id(), lo);
      warp_hi.st(t.warp_id(), hi);
    }
    t.sync_threads();
    if (t.linear_tid() == 0) {
      f32 block_lo = warp_lo.ld(0), block_hi = warp_hi.ld(0);
      for (size_t w = 1; w < 4; ++w) {
        block_lo = std::min(block_lo, warp_lo.ld(w));
        block_hi = std::max(block_hi, warp_hi.ld(w));
      }
      t.gstore(mins, blk, block_lo);
      t.gstore(maxs, blk, block_hi);
      t.count_ops(8);
    }
  });
}

CostSheet sim_scatter_blocks(std::span<const u8> bit_flags,
                             std::span<const u32> blocks,
                             std::span<u32> shuffled_out) {
  FZ_REQUIRE(shuffled_out.size() % kBlockWords == 0, "sim: bad output size");
  const size_t nblocks = shuffled_out.size() / kBlockWords;
  FZ_REQUIRE(bit_flags.size() >= div_ceil(nblocks, 8), "sim: flags too small");

  // Prefix sum over the unpacked flags gives each nonzero block's slot in
  // the compacted payload (the exact mirror of the encode offsets).
  std::vector<u32> flags32(nblocks);
  for (size_t i = 0; i < nblocks; ++i)
    flags32[i] = (bit_flags[i / 8] >> (i % 8)) & 1u;
  std::vector<u32> presum(nblocks);
  CostSheet total = scan_exclusive_device_model(flags32, presum);
  total.name = "prefix-sum-scatter";

  LaunchConfig cfg;
  cfg.name = "decode-scatter";
  cfg.grid = Dim3{static_cast<u32>(div_ceil(nblocks, 256))};
  cfg.block = Dim3{256};
  CostSheet scatter = cudasim::launch(cfg, [&](ThreadCtx& t) {
    const size_t blk =
        static_cast<size_t>(t.block_idx.x) * 256 + t.thread_idx.x;
    if (blk >= nblocks) return;
    if (flags32[blk] == 0) {
      for (size_t k = 0; k < kBlockWords; ++k)
        t.gstore(shuffled_out, blk * kBlockWords + k, 0u);
      return;
    }
    const u32 slot = t.gload(presum, blk);
    for (size_t k = 0; k < kBlockWords; ++k) {
      const u32 v = t.gload(blocks, static_cast<size_t>(slot) * kBlockWords + k);
      t.gstore(shuffled_out, blk * kBlockWords + k, v);
    }
    t.count_ops(8);
  });
  total += scatter;
  return total;
}

CostSheet sim_bitunshuffle(std::span<const u32> in, std::span<u32> out,
                           bool padded_shared) {
  FZ_REQUIRE(in.size() % kTileWords == 0, "sim: input must be whole tiles");
  FZ_REQUIRE(in.size() == out.size(), "sim: size mismatch");
  const size_t tiles = in.size() / kTileWords;
  const size_t stride = padded_shared ? 33 : 32;

  LaunchConfig cfg;
  cfg.name = "bitunshuffle";
  cfg.grid = Dim3{static_cast<u32>(tiles)};
  cfg.block = Dim3{32, 32};

  return cudasim::launch(cfg, [&, stride](ThreadCtx& t) {
    auto buf = t.shared_mem<u32>("buf", 32 * stride);
    const u32 x = t.thread_idx.x;
    const u32 y = t.thread_idx.y;
    const size_t tile = t.block_idx.x;

    // Coalesced load of the plane-major tile into shared memory.
    buf.st(y * stride + x, t.gload(in, tile * kTileWords + y * 32 + x));
    t.sync_threads();

    // Lane x of warp y needs plane x of unit y, which sits at tile
    // position x*32 + y -> buf[x][y]: the COLUMN-wise shared read the
    // 32x33 padding protects (mirror of the forward kernel's write-back).
    const u32 cur = buf.ld(x * stride + y);
    t.sync_threads();

    // Same 32-round ballot transpose: round i reassembles original word i
    // of the unit (bit l = bit i of plane l).
    for (u32 i = 0; i < 32; ++i) {
      const u32 word = t.ballot((cur >> i) & 1u);
      if (x == i) buf.st(y * stride + i, word);
      t.count_ops(3);
    }
    t.sync_threads();

    // Unit y's words are contiguous in the code stream: coalesced store.
    const u32 v = buf.ld(y * stride + x);
    t.gstore(out, tile * kTileWords + y * 32 + x, v);
  });
}

CostSheet sim_fused_decode(std::span<const u8> bit_flags,
                           std::span<const u32> blocks,
                           std::span<i64> deltas_out, bool padded_shared) {
  FZ_REQUIRE(!deltas_out.empty(), "sim: empty output");
  const size_t count = deltas_out.size();
  const size_t tiles = div_ceil(count, kCodesPerTile);
  const size_t nblocks = tiles * kBlocksPerTile;
  FZ_REQUIRE(bit_flags.size() >= div_ceil(nblocks, 8), "sim: flags too small");

  // Offset prefix sum, exactly as sim_scatter_blocks recovers it.
  std::vector<u32> flags32(nblocks);
  for (size_t i = 0; i < nblocks; ++i)
    flags32[i] = (bit_flags[i / 8] >> (i % 8)) & 1u;
  std::vector<u32> presum(nblocks);
  CostSheet total = scan_exclusive_device_model(flags32, presum);
  total.name = "prefix-sum-scatter";
  const size_t nonzero = presum.back() + flags32.back();
  FZ_REQUIRE(blocks.size() >= nonzero * kBlockWords,
             "sim: block payload too small");

  const size_t stride = padded_shared ? 33 : 32;

  LaunchConfig cfg;
  cfg.name = "fused-decode";
  cfg.grid = Dim3{static_cast<u32>(tiles)};
  cfg.block = Dim3{32, 32};

  CostSheet decode = cudasim::launch(cfg, [&, stride, count](ThreadCtx& t) {
    auto buf = t.shared_mem<u32>("buf", 32 * stride);
    const u32 x = t.thread_idx.x;
    const u32 y = t.thread_idx.y;
    const size_t tile = t.block_idx.x;
    const u32 ltid = t.linear_tid();

    // Scatter: 256 threads each place one 16-byte block straight into the
    // shared tile (zero blocks zero-filled) — the scattered words never
    // touch global memory, mirroring the host fused decode pass.
    if (ltid < kBlocksPerTile) {
      const size_t blk = tile * kBlocksPerTile + ltid;
      const bool nz = flags32[blk] != 0;
      const u32 slot = nz ? t.gload(presum, blk) : 0;
      for (u32 k = 0; k < kBlockWords; ++k) {
        const u32 p = ltid * 4 + k;  // plane-major position in the tile
        const u32 v =
            nz ? t.gload(blocks, static_cast<size_t>(slot) * kBlockWords + k)
               : 0u;
        buf.st((p / 32) * stride + p % 32, v);
      }
      t.count_ops(8);
    }
    t.sync_threads();

    // Inverse bitshuffle, identical to sim_bitunshuffle from here: the
    // column-wise read the padding protects, then 32 ballot rounds.
    const u32 cur = buf.ld(x * stride + y);
    t.sync_threads();
    for (u32 i = 0; i < 32; ++i) {
      const u32 word = t.ballot((cur >> i) & 1u);
      if (x == i) buf.st(y * stride + i, word);
      t.count_ops(3);
    }
    t.sync_threads();

    // Sign-magnitude decode of the two u16 codes in this thread's word,
    // straight to the i64 residual output (the u16 code array never
    // materializes either).
    const u32 v = buf.ld(y * stride + x);
    const size_t e0 = tile * kCodesPerTile + 2 * (y * 32 + x);
    if (e0 < count) {
      t.gstore(deltas_out, e0,
               static_cast<i64>(
                   sign_magnitude_decode(static_cast<u16>(v & 0xffff))));
    }
    if (e0 + 1 < count) {
      t.gstore(deltas_out, e0 + 1,
               static_cast<i64>(sign_magnitude_decode(static_cast<u16>(v >> 16))));
    }
    t.count_ops(4);
  });
  total += decode;
  return total;
}

}  // namespace fz
