// fzlint:hot-path — the fused decompress inner loops; every Reader chunk
// fetch and fzd decompress job runs through here.
#include "core/kernels_decode.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/bitshuffle.hpp"
#include "core/format.hpp"
#include "telemetry/telemetry.hpp"

namespace fz {

namespace {

/// Scatter one tile's 256 blocks into the stack tile buffer: zero blocks
/// zero-fill, nonzero blocks copy four words from the compacted payload.
/// The flag/offset spans are tile-local slices (kBlocksPerTile entries).
inline void scatter_tile(const u32* flags32, const u32* offsets,
                         const u32* blocks, u32* tile) {
  for (size_t blk = 0; blk < kBlocksPerTile; ++blk) {
    u32* dst = tile + blk * kBlockWords;
    if (flags32[blk] == 0) {
      for (size_t k = 0; k < kBlockWords; ++k) dst[k] = 0;
      continue;
    }
    const u32* src = blocks + static_cast<size_t>(offsets[blk]) * kBlockWords;
    for (size_t k = 0; k < kBlockWords; ++k) dst[k] = src[k];
  }
}

/// Inverse bitshuffle of one tile (the bitunshuffle_tiles_simd body with
/// the dispatch hoisted out): gather each unit's planes, then the same
/// transpose (an involution) written contiguously inverts the shuffle.
inline void unshuffle_tile(TransposeUnitFn transpose, const u32* tin,
                           u32* tout) {
  for (size_t u = 0; u < kUnitsPerTile; ++u) {
    alignas(32) u32 tmp[kUnitWords];
    for (size_t j = 0; j < kUnitWords; ++j)
      tmp[j] = tin[j * kUnitsPerTile + u];
    transpose(tmp, tout + u * kUnitWords, 1);
  }
}

}  // namespace

void fused_scatter_decode_parallel(std::span<const u32> flags32,
                                   std::span<const u32> offsets,
                                   std::span<const u32> blocks,
                                   std::span<i64> deltas,
                                   const FusedParallelPlan& plan,
                                   SimdLevel level, telemetry::Sink* sink) {
  const size_t count = deltas.size();
  const size_t tiles = div_ceil(std::max<size_t>(count, 1), kCodesPerTile);
  FZ_REQUIRE(flags32.size() == tiles * kBlocksPerTile &&
                 offsets.size() == flags32.size(),
             "fused decode: flag/offset size mismatch");
  const size_t tiles_per = div_ceil(tiles, plan.strips);
  const TransposeUnitFn transpose = transpose_unit_fn(level);

  parallel_tasks(plan.strips, plan.strips, [&](size_t s, size_t) {
    const size_t tile_b = s * tiles_per;
    const size_t tile_e = std::min(tiles, tile_b + tiles_per);
    telemetry::Span span(sink, "fused-decode-strip");
    if (span.enabled()) {
      span.arg("strip", static_cast<double>(s));
      span.arg("tiles", static_cast<double>(tile_e - tile_b));
    }
    size_t decoded = 0;
    // Both tile buffers stay resident in L1 across the whole strip — the
    // traffic fz_fused_decode_cost models as saved.
    alignas(64) u32 tile_shuf[kTileWords];
    alignas(64) u32 tile_codes[kTileWords];
    for (size_t t = tile_b; t < tile_e; ++t) {
      scatter_tile(flags32.data() + t * kBlocksPerTile,
                   offsets.data() + t * kBlocksPerTile, blocks.data(),
                   tile_shuf);
      unshuffle_tile(transpose, tile_shuf, tile_codes);
      // Codes are packed little-endian two-per-word (the codes-as-u32
      // layout the whole pipeline shares); view them as u16 and decode.
      // The last tile's padding codes stop at the field's element count.
      const u16* codes = reinterpret_cast<const u16*>(tile_codes);
      const size_t base = t * kCodesPerTile;
      const size_t n = std::min(kCodesPerTile, count - base);
      i64* out = deltas.data() + base;
      for (size_t i = 0; i < n; ++i)
        out[i] = sign_magnitude_decode(codes[i]);
      decoded += n;
    }
    if (span.enabled())
      span.arg("bytes", static_cast<double>(decoded * sizeof(i64)));
  });
}

}  // namespace fz
