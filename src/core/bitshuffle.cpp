#include "core/bitshuffle.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace fz {

void transpose_bit_matrix_32(u32* a) {
  // Block-swap network (Hacker's Delight §7-3): swap 16x16 sub-blocks, then
  // 8x8, ... 1x1.  ~5*32 ops instead of 32*32 single-bit gathers.  The HD
  // network computes the anti-transpose under our "bit j of word i" =
  // element (i, j) convention, so conjugate it with a word-order reversal
  // on both sides: W[j] bit i == A[i] bit j (the ballot semantics).
  std::reverse(a, a + 32);
  u32 m = 0x0000ffffu;
  for (u32 j = 16; j != 0; j >>= 1, m ^= m << j) {
    for (u32 k = 0; k < 32; k = (k + j + 1) & ~j) {
      const u32 t = (a[k] ^ (a[k + j] >> j)) & m;
      a[k] ^= t;
      a[k + j] ^= t << j;
    }
  }
  std::reverse(a, a + 32);
}

namespace {

void check_tile_args(std::span<const u32> in, std::span<u32> out) {
  FZ_REQUIRE(in.size() % kTileWords == 0,
             "bitshuffle: size must be a multiple of one tile (1024 words)");
  FZ_REQUIRE(in.size() == out.size(), "bitshuffle: size mismatch");
  FZ_REQUIRE(in.data() != out.data(), "bitshuffle: must not alias");
}

}  // namespace

// A 4 KiB tile is already a meaningful unit of work, but claim a few per
// atomic in the task-crew fallback anyway.
constexpr size_t kTileGrain = 16;

void bitshuffle_tiles(std::span<const u32> in, std::span<u32> out) {
  check_tile_args(in, out);
  const size_t tiles = in.size() / kTileWords;
  parallel_chunks(tiles, kTileGrain, [&](size_t tb, size_t te) {
    for (size_t t = tb; t < te; ++t) {
      const u32* tin = in.data() + t * kTileWords;
      u32* tout = out.data() + t * kTileWords;
      for (size_t u = 0; u < kUnitsPerTile; ++u) {
        u32 tmp[kUnitWords];
        std::memcpy(tmp, tin + u * kUnitWords, sizeof(tmp));
        transpose_bit_matrix_32(tmp);
        // tmp[j] bit i == input word i's bit j: tmp[j] is plane j of unit u.
        // Plane-major scatter within the tile.
        for (size_t j = 0; j < kUnitWords; ++j)
          tout[j * kUnitsPerTile + u] = tmp[j];
      }
    }
  });
}

void bitunshuffle_tiles(std::span<const u32> in, std::span<u32> out) {
  check_tile_args(in, out);
  const size_t tiles = in.size() / kTileWords;
  parallel_chunks(tiles, kTileGrain, [&](size_t tb, size_t te) {
    for (size_t t = tb; t < te; ++t) {
      const u32* tin = in.data() + t * kTileWords;
      u32* tout = out.data() + t * kTileWords;
      for (size_t u = 0; u < kUnitsPerTile; ++u) {
        u32 tmp[kUnitWords];
        // Gather unit u's planes back, then invert the bit transpose.
        for (size_t j = 0; j < kUnitWords; ++j)
          tmp[j] = tin[j * kUnitsPerTile + u];
        transpose_bit_matrix_32(tmp);
        std::memcpy(tout + u * kUnitWords, tmp, sizeof(tmp));
      }
    }
  });
}

}  // namespace fz
