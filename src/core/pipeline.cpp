// One-shot public API: each call builds a throwaway fz::Codec and runs the
// stage graph once.  Callers that compress repeatedly should hold a Codec
// (core/codec.hpp) so the scratch pool amortizes across calls.
#include "core/pipeline.hpp"

#include <cmath>

#include "common/bits.hpp"
#include "core/chunked.hpp"
#include "core/codec.hpp"
#include "core/format.hpp"
#include "substrate/bitio.hpp"

namespace fz {

namespace {

std::string join_issues(const std::vector<ParamIssue>& issues) {
  std::string msg = "invalid FzParams:";
  for (const ParamIssue& i : issues)
    msg += std::string(" [") + i.field + "] " + i.message + ";";
  if (!issues.empty()) msg.pop_back();
  return msg;
}

}  // namespace

ParamError::ParamError(std::vector<ParamIssue> issues)
    : Error(join_issues(issues)), issues_(std::move(issues)) {}

std::vector<ParamIssue> FzParams::validate() const {
  std::vector<ParamIssue> issues;
  if (!std::isfinite(eb.value) || eb.value <= 0) {
    issues.push_back({"eb", "error bound must be a positive finite value"});
  } else if (eb.mode == ErrorBoundMode::PointwiseRelative && eb.value >= 1) {
    issues.push_back(
        {"eb", "point-wise relative bound must be in (0, 1): a bound of 1 "
               "or more cannot constrain |d'/d - 1|"});
  }
  if (quant != QuantVersion::V1Original && quant != QuantVersion::V2Optimized)
    issues.push_back({"quant", "unknown quantizer version"});
  if (quant == QuantVersion::V1Original) {
    // V1 codes are radius-shifted into u16 with code 0 reserved for
    // outliers: the radius must leave both headroom and the reserved slot.
    if (radius < 1 || radius > 32767)
      issues.push_back({"radius", "V1 radius must be in [1, 32767] (codes "
                                  "are radius-shifted 16-bit values)"});
    // The fused host graph has no V1 (outlier-list) tile body; fail the
    // configuration up front instead of asserting deep inside the stage.
    if (fused_host_graph)
      issues.push_back(
          {"fused_host_graph",
           "the fused host graph supports V2 quantization only; set "
           "fused_host_graph = false to compress with V1Original"});
  }
  if (static_cast<u8>(simd) > static_cast<u8>(SimdDispatch::AVX2))
    issues.push_back({"simd", "unknown SIMD dispatch tier"});
  return issues;
}

std::vector<ParamIssue> FzParams::validate(Dims dims) const {
  std::vector<ParamIssue> issues = validate();
  if (dims.x == 0 || dims.y == 0 || dims.z == 0) {
    issues.push_back({"dims", "every extent must be nonzero (" +
                                  dims.to_string() + ")"});
  } else if (dims.x > SIZE_MAX / dims.y ||
             dims.x * dims.y > SIZE_MAX / dims.z) {
    issues.push_back(
        {"dims", "extent product overflows size_t (" + dims.to_string() + ")"});
  }
  return issues;
}

FzCompressed fz_compress(FloatSpan data, Dims dims, const FzParams& params) {
  return Codec(params).compress(data, dims);
}

FzCompressed fz_compress_f64(std::span<const f64> data, Dims dims,
                             const FzParams& params) {
  return Codec(params).compress(data, dims);
}

FzDecompressed fz_decompress(ByteSpan stream) {
  return Codec().decompress(stream);
}

FzDecompressed64 fz_decompress_f64(ByteSpan stream) {
  return Codec().decompress_f64(stream);
}

StreamInfo inspect(ByteSpan stream) {
  // Chunked containers are inspectable through the same front door: the
  // container path reports the whole-field identity plus the chunk index.
  if (is_container(stream)) return inspect_container(stream);
  ByteReader r(stream);
  const StreamHeader h = r.get<StreamHeader>();
  // Full validation (version, rank, dtype, quant, eb, dims-vs-count,
  // section sizes vs. stream length), not just the magic: inspect is the
  // front door for untrusted streams, so a truncated or corrupt header must
  // be rejected here rather than surface as a huge bogus count.
  validate_stream_header(h, stream.size());
  StreamInfo info;
  info.dims = Dims{h.nx, h.ny, h.nz};
  info.count = h.count;
  info.dtype_bytes = h.dtype;
  info.format_version = h.version;
  info.quant = static_cast<QuantVersion>(h.quant);
  info.abs_eb = h.abs_eb;
  info.log_transform = h.transform == kTransformLog;
  info.radius = h.radius;
  info.header_bytes = sizeof(StreamHeader);
  info.bit_flag_bytes = h.bit_flag_bytes;
  info.block_bytes = h.block_words * sizeof(u32);
  info.outlier_bytes = static_cast<QuantVersion>(h.quant) ==
                               QuantVersion::V1Original
                           ? h.outlier_count * (sizeof(u32) + sizeof(i32))
                           : 0;
  info.stream_bytes = stream.size();
  info.total_blocks = round_up(h.count, kCodesPerTile) * sizeof(u16) /
                      sizeof(u32) / kBlockWords;
  info.nonzero_blocks = h.block_words / kBlockWords;
  info.saturated = h.saturated;
  return info;
}

Status try_inspect(ByteSpan stream, StreamInfo& out) noexcept {
  try {
    out = inspect(stream);
    return {};
  } catch (...) {
    return detail::status_from_current_exception();
  }
}

namespace detail {

Status status_from_current_exception() {
  try {
    throw;
  } catch (const ParamError& e) {
    return {StatusCode::InvalidParams, e.what()};
  } catch (const FormatError& e) {
    return {StatusCode::InvalidStream, e.what()};
  } catch (const std::exception& e) {
    return {StatusCode::Internal, e.what()};
  } catch (...) {
    return {StatusCode::Internal, "unknown exception"};
  }
}

}  // namespace detail

FzHeaderInfo fz_inspect(ByteSpan stream) {
  const StreamInfo info = inspect(stream);
  FzHeaderInfo legacy;
  legacy.dims = info.dims;
  legacy.abs_eb = info.abs_eb;
  legacy.quant = info.quant;
  legacy.count = info.count;
  legacy.dtype_bytes = info.dtype_bytes;
  return legacy;
}

}  // namespace fz
