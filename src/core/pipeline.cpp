#include "core/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/bits.hpp"
#include "common/buffer.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/bitshuffle.hpp"
#include "core/costs.hpp"
#include "core/encoder.hpp"
#include "core/lorenzo.hpp"
#include "substrate/bitio.hpp"

namespace fz {

namespace {

constexpr u32 kMagic = 0x50475a46u;  // "FZGP" little-endian
constexpr u16 kVersion = 2;          // v2 added the dtype field
constexpr size_t kCodesPerTile = kTileBytes / sizeof(u16);  // 2048

#pragma pack(push, 1)
struct Header {
  u32 magic;
  u16 version;
  u8 quant;
  u8 rank;
  u8 dtype;      // sizeof the sample type: 4 (f32) or 8 (f64)
  u8 transform;  // 0 = none, 1 = natural log (point-wise relative bound)
  u8 pad[6];
  u64 nx, ny, nz;
  u64 count;
  f64 abs_eb;
  u32 radius;
  i64 anchor;  // pre-quantized first value: residual[0] has no predictor
               // and would otherwise saturate u16 whenever |data offset|
               // is large relative to eb
  u64 saturated;
  u64 outlier_count;
  u64 bit_flag_bytes;
  u64 block_words;
};
#pragma pack(pop)

constexpr u8 kTransformNone = 0;
constexpr u8 kTransformLog = 1;

template <typename T>
double resolve_eb(std::span<const T> data, const ErrorBound& eb) {
  if (eb.mode == ErrorBoundMode::Absolute) return eb.value;
  if (eb.mode == ErrorBoundMode::PointwiseRelative) {
    // Realized via the log transform: an absolute bound of log(1+rel) on
    // log-space data bounds each value's relative error by rel.
    FZ_REQUIRE(eb.value > 0 && eb.value < 1,
               "point-wise relative bound must be in (0, 1)");
    return std::log1p(eb.value);
  }
  const auto [lo, hi] = std::minmax_element(data.begin(), data.end());
  double range = static_cast<double>(*hi) - static_cast<double>(*lo);
  if (range <= 0) {
    // Degenerate constant field: scale the relative bound by the value
    // magnitude instead (any positive bound reproduces it exactly anyway).
    range = std::max(std::fabs(static_cast<double>(*hi)), 1.0);
  }
  return eb.resolve(range);
}

template <typename T>
FzCompressed compress_impl(std::span<const T> data, Dims dims,
                           const FzParams& params) {
  FZ_REQUIRE(!data.empty(), "cannot compress an empty field");
  FZ_REQUIRE(data.size() == dims.count(), "dims do not match data size");
  for (const T v : data)
    FZ_REQUIRE(std::isfinite(v),
               "input contains NaN/Inf; error-bounded compression requires "
               "finite data");

  FzCompressed out;
  FzStats& st = out.stats;
  st.count = data.size();
  st.input_bytes = data.size() * sizeof(T);
  st.abs_eb = resolve_eb(data, params.eb);
  FZ_REQUIRE(st.abs_eb > 0, "resolved error bound must be positive");

  // Point-wise relative mode: compress log(d) with the absolute bound
  // log(1+rel) (Liang et al., the paper's HACC protocol, §4.1).
  const bool log_transform =
      params.eb.mode == ErrorBoundMode::PointwiseRelative;
  std::vector<T> transformed;
  std::span<const T> values = data;
  if (log_transform) {
    transformed.resize(data.size());
    for (size_t i = 0; i < data.size(); ++i) {
      FZ_REQUIRE(data[i] > 0,
                 "point-wise relative bounds require strictly positive data "
                 "(apply an offset or use an absolute bound)");
      transformed[i] = static_cast<T>(std::log(static_cast<double>(data[i])));
    }
    values = transformed;
  }

  // Stage 1: dual-quantization (pre-quantize, Lorenzo-predict, quantize the
  // residuals).
  std::vector<i64> pq(values.size());
  prequantize(values, st.abs_eb, pq);
  lorenzo_forward(pq, dims, pq);
  // Anchor the first value: its "residual" is the value itself, which can
  // exceed the 16-bit code range by orders of magnitude for offset-heavy
  // data; carry it in the header instead.
  const i64 anchor = pq[0];
  pq[0] = 0;

  // Codes live in an aligned buffer, padded with zero codes to a whole
  // number of 4096-byte tiles: the padding bitshuffles to zero blocks and
  // costs only flag bits.
  const size_t padded_codes = round_up(data.size(), kCodesPerTile);
  AlignedBuffer code_buf(padded_codes * sizeof(u16));
  auto codes = code_buf.as<u16>();

  std::vector<Outlier> outliers;
  u32 radius = 0;
  if (params.quant == QuantVersion::V2Optimized) {
    QuantV2Result q = quant_encode_v2(pq);
    st.saturated = q.saturated;
    std::memcpy(codes.data(), q.codes.data(), q.codes.size() * sizeof(u16));
  } else {
    QuantV1Result q = quant_encode_v1(pq, params.radius);
    outliers = std::move(q.outliers);
    st.outliers = outliers.size();
    radius = q.radius;
    std::memcpy(codes.data(), q.codes.data(), q.codes.size() * sizeof(u16));
  }

  // Stage 2: bitshuffle (+ phase-1 flags; fused on device, see costs.cpp).
  AlignedBuffer shuffled_buf(code_buf.size());
  auto words_in = code_buf.as<u32>();
  auto words_out = shuffled_buf.as<u32>();
  bitshuffle_tiles(words_in, words_out);

  std::vector<u8> byte_flags, bit_flags;
  mark_blocks(words_out, byte_flags, bit_flags);

  // Stage 3: prefix-sum offsets + block compaction.
  std::vector<u32> blocks;
  compact_blocks(words_out, byte_flags, blocks);
  st.total_blocks = byte_flags.size();
  st.nonzero_blocks = blocks.size() / kBlockWords;

  // Assemble the stream.
  Header h{};
  h.magic = kMagic;
  h.version = kVersion;
  h.quant = static_cast<u8>(params.quant);
  h.rank = static_cast<u8>(dims.rank());
  h.dtype = sizeof(T);
  h.transform = log_transform ? kTransformLog : kTransformNone;
  h.nx = dims.x;
  h.ny = dims.y;
  h.nz = dims.z;
  h.count = data.size();
  h.abs_eb = st.abs_eb;
  h.radius = radius;
  h.anchor = anchor;
  h.saturated = st.saturated;
  h.outlier_count = outliers.size();
  h.bit_flag_bytes = bit_flags.size();
  h.block_words = blocks.size();

  ByteWriter w(out.bytes);
  w.put(h);
  w.put_bytes(bit_flags);
  w.put_bytes(ByteSpan{reinterpret_cast<const u8*>(blocks.data()),
                       blocks.size() * sizeof(u32)});
  for (const Outlier& o : outliers) {
    FZ_REQUIRE(o.index <= UINT32_MAX && o.delta >= INT32_MIN &&
                   o.delta <= INT32_MAX,
               "outlier exceeds 8-byte stream encoding");
    w.put<u32>(static_cast<u32>(o.index));
    w.put<i32>(static_cast<i32>(o.delta));
  }
  st.compressed_bytes = out.bytes.size();

  out.stage_costs = fz_compression_costs(st, params);
  return out;
}

struct DecodedCore {
  Header header;
  Dims dims;
  std::vector<i64> values;  ///< pre-quantized reconstruction (before scaling)
  std::vector<cudasim::CostSheet> stage_costs;
};

DecodedCore decompress_core(ByteSpan stream, u8 expected_dtype) {
  ByteReader r(stream);
  const Header h = r.get<Header>();
  FZ_FORMAT_REQUIRE(h.magic == kMagic, "not an FZ stream");
  FZ_FORMAT_REQUIRE(h.version == kVersion, "unsupported FZ stream version");
  FZ_FORMAT_REQUIRE(h.rank >= 1 && h.rank <= 3, "bad rank");
  FZ_FORMAT_REQUIRE(h.dtype == expected_dtype,
                    h.dtype == 8
                        ? "stream holds f64 data (use fz_decompress_f64)"
                        : "stream holds f32 data (use fz_decompress)");
  FZ_FORMAT_REQUIRE(h.abs_eb > 0, "bad error bound");
  // The format's ratio ceiling is 256x on the u16 code stream (the 128x
  // flag ceiling); a count beyond that is corrupt.  Each extent is checked
  // stepwise so the product cannot wrap around u64 and masquerade as a
  // small count (the loops iterate per axis, not on the product).
  const u64 max_count = static_cast<u64>(stream.size()) * 512;
  FZ_FORMAT_REQUIRE(h.nx >= 1 && h.ny >= 1 && h.nz >= 1 && h.nx <= max_count &&
                        h.ny <= max_count && h.nz <= max_count,
                    "bad dims");
  FZ_FORMAT_REQUIRE(h.nx * h.ny <= max_count &&
                        h.nx * h.ny * h.nz <= max_count,
                    "dims exceed stream");
  const Dims dims{h.nx, h.ny, h.nz};
  FZ_FORMAT_REQUIRE(dims.count() == h.count && h.count > 0, "bad dims");
  const QuantVersion quant = static_cast<QuantVersion>(h.quant);
  FZ_FORMAT_REQUIRE(quant == QuantVersion::V1Original ||
                        quant == QuantVersion::V2Optimized,
                    "bad quant version");

  const size_t padded_codes = round_up(h.count, kCodesPerTile);
  const size_t total_words = padded_codes * sizeof(u16) / sizeof(u32);
  FZ_FORMAT_REQUIRE(h.bit_flag_bytes == div_ceil(total_words / kBlockWords, 8),
                    "bit-flag section size mismatch");
  FZ_FORMAT_REQUIRE(h.block_words <= total_words,
                    "block payload exceeds field size");
  const ByteSpan bit_flags = r.get_bytes(h.bit_flag_bytes);
  const ByteSpan block_bytes = r.get_bytes(h.block_words * sizeof(u32));

  // Scatter nonzero blocks, then inverse bitshuffle.
  AlignedBuffer shuffled_buf(total_words * sizeof(u32));
  {
    std::vector<u32> blocks(h.block_words);
    std::memcpy(blocks.data(), block_bytes.data(), block_bytes.size());
    decode_blocks(bit_flags, blocks, shuffled_buf.as<u32>());
  }
  AlignedBuffer code_buf(shuffled_buf.size());
  bitunshuffle_tiles(shuffled_buf.as<u32>(), code_buf.as<u32>());
  auto codes = code_buf.as<u16>().subspan(0, h.count);

  // Inverse quantization + Lorenzo.
  DecodedCore core;
  core.header = h;
  core.dims = dims;
  core.values.resize(h.count);
  if (quant == QuantVersion::V2Optimized) {
    quant_decode_v2(codes, core.values);
  } else {
    QuantV1Result q;
    q.radius = h.radius;
    q.codes.assign(codes.begin(), codes.end());
    q.outliers.resize(h.outlier_count);
    for (auto& o : q.outliers) {
      o.index = r.get<u32>();
      o.delta = r.get<i32>();
      FZ_FORMAT_REQUIRE(o.index < h.count, "outlier index out of range");
    }
    quant_decode_v1(q, core.values);
  }
  core.values[0] += h.anchor;  // restore the first value's residual
  lorenzo_inverse(core.values, dims, core.values);

  FzStats st;
  st.count = h.count;
  st.input_bytes = h.count * h.dtype;
  st.compressed_bytes = stream.size();
  st.saturated = h.saturated;
  st.outliers = h.outlier_count;
  st.total_blocks = total_words / kBlockWords;
  st.nonzero_blocks = h.block_words / kBlockWords;
  FzParams params;
  params.quant = quant;
  core.stage_costs = fz_decompression_costs(st, params);
  return core;
}

}  // namespace

FzCompressed fz_compress(FloatSpan data, Dims dims, const FzParams& params) {
  return compress_impl(data, dims, params);
}

FzCompressed fz_compress_f64(std::span<const f64> data, Dims dims,
                             const FzParams& params) {
  return compress_impl(data, dims, params);
}

namespace {

template <typename T>
void undo_transform(u8 transform, std::span<T> values) {
  if (transform == kTransformNone) return;
  FZ_FORMAT_REQUIRE(transform == kTransformLog, "unknown transform");
  parallel_for(0, values.size(), [&](size_t i) {
    values[i] = static_cast<T>(std::exp(static_cast<double>(values[i])));
  });
}

}  // namespace

FzDecompressed fz_decompress(ByteSpan stream) {
  DecodedCore core = decompress_core(stream, sizeof(f32));
  FzDecompressed out;
  out.dims = core.dims;
  out.stage_costs = std::move(core.stage_costs);
  out.data.resize(core.values.size());
  dequantize(core.values, core.header.abs_eb, std::span<f32>{out.data});
  undo_transform(core.header.transform, std::span<f32>{out.data});
  return out;
}

FzDecompressed64 fz_decompress_f64(ByteSpan stream) {
  DecodedCore core = decompress_core(stream, sizeof(f64));
  FzDecompressed64 out;
  out.dims = core.dims;
  out.stage_costs = std::move(core.stage_costs);
  out.data.resize(core.values.size());
  dequantize(core.values, core.header.abs_eb, std::span<f64>{out.data});
  undo_transform(core.header.transform, std::span<f64>{out.data});
  return out;
}

FzHeaderInfo fz_inspect(ByteSpan stream) {
  ByteReader r(stream);
  const Header h = r.get<Header>();
  FZ_FORMAT_REQUIRE(h.magic == kMagic, "not an FZ stream");
  FzHeaderInfo info;
  info.dims = Dims{h.nx, h.ny, h.nz};
  info.abs_eb = h.abs_eb;
  info.quant = static_cast<QuantVersion>(h.quant);
  info.count = h.count;
  info.dtype_bytes = h.dtype;
  return info;
}

}  // namespace fz
