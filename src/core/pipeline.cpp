// One-shot public API: each call builds a throwaway fz::Codec and runs the
// stage graph once.  Callers that compress repeatedly should hold a Codec
// (core/codec.hpp) so the scratch pool amortizes across calls.
#include "core/pipeline.hpp"

#include "core/codec.hpp"
#include "core/format.hpp"
#include "substrate/bitio.hpp"

namespace fz {

FzCompressed fz_compress(FloatSpan data, Dims dims, const FzParams& params) {
  return Codec(params).compress(data, dims);
}

FzCompressed fz_compress_f64(std::span<const f64> data, Dims dims,
                             const FzParams& params) {
  return Codec(params).compress(data, dims);
}

FzDecompressed fz_decompress(ByteSpan stream) {
  return Codec().decompress(stream);
}

FzDecompressed64 fz_decompress_f64(ByteSpan stream) {
  return Codec().decompress_f64(stream);
}

FzHeaderInfo fz_inspect(ByteSpan stream) {
  ByteReader r(stream);
  const StreamHeader h = r.get<StreamHeader>();
  // Full validation (version, rank, dtype, quant, eb, dims-vs-count,
  // section sizes vs. stream length), not just the magic: inspect is the
  // front door for untrusted streams, so a truncated or corrupt header must
  // be rejected here rather than surface as a huge bogus count.
  validate_stream_header(h, stream.size());
  FzHeaderInfo info;
  info.dims = Dims{h.nx, h.ny, h.nz};
  info.abs_eb = h.abs_eb;
  info.quant = static_cast<QuantVersion>(h.quant);
  info.count = h.count;
  info.dtype_bytes = h.dtype;
  return info;
}

}  // namespace fz
