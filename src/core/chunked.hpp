// Chunked (multi-GPU / streaming) compression.
//
// The paper treats multi-GPU operation as embarrassingly parallel (§4.1):
// "we partition data in a coarse-grained manner to fit into a single GPU,
// with a data chunk independent from another."  This module implements that
// partitioning: the field is split along its slowest-varying axis into
// independent chunks, each compressed with the single-device pipeline, and
// the chunk streams are framed into one self-describing container.
//
// The same mechanism serves three purposes:
//   * multi-GPU scaling (one chunk per device, no cross-device traffic),
//   * out-of-core/streaming compression of fields larger than device memory,
//   * random access: any chunk can be decompressed without the others.
//
// Note the ratio/chunking trade-off: Lorenzo prediction restarts at every
// chunk boundary, so very small chunks cost compression ratio; tests pin
// the expected overhead.
//
// Chunks execute in parallel (the CPU analogue of the paper's one-chunk-
// per-device layout): worker threads claim chunks dynamically and each
// worker owns a private fz::Codec, so scratch buffers pool per worker and
// no codec state is shared.  The container bytes are independent of the
// worker count — chunk streams are assembled in chunk order.
#pragma once

#include <vector>

#include "core/pipeline.hpp"

namespace fz {

struct ChunkedParams {
  FzParams base;
  /// Target number of chunks ("devices"); the actual count may be lower
  /// for small fields (at least one slowest-axis slab per chunk).
  size_t num_chunks = 4;
  /// Upper bound on concurrent chunk workers: 0 = one per hardware thread,
  /// 1 = serial (the reference order for byte-identicality tests).
  size_t max_parallelism = 0;
  /// Container format version to write.  2 (the default) embeds the chunk
  /// index that makes random access O(1); 1 writes the legacy size-table
  /// container so the read-compat path stays honestly testable.
  unsigned container_version = 2;
};

struct ChunkedCompressed {
  std::vector<u8> bytes;
  FzStats stats;  ///< aggregated over chunks
  size_t num_chunks = 0;
  /// Per-chunk modeled device costs (each chunk = one device's work).
  std::vector<std::vector<cudasim::CostSheet>> chunk_costs;
};

ChunkedCompressed fz_compress_chunked(FloatSpan data, Dims dims,
                                      const ChunkedParams& params);

/// A container's fully validated identity: format version, field dims, and
/// the chunk index.  For v2 streams the index is parsed straight off the
/// stream; for legacy v1 streams it is synthesized by walking the size
/// table and recomputing the slab plan (the O(chunks) fallback the index
/// was introduced to retire).
struct ContainerInfo {
  unsigned version = 0;  ///< 1 (legacy size table) or 2 (embedded index)
  Dims dims;             ///< whole-field dims
  size_t count = 0;      ///< dims.count()
  size_t header_bytes = 0;  ///< container header + index / size table
  size_t stream_bytes = 0;  ///< total container size
  std::vector<ChunkEntry> chunks;
};

/// Parse and validate a container's header and complete chunk index
/// (byte ranges in bounds and non-overlapping, element ranges exactly
/// tiling the field).  Throws FormatError on anything corrupt.  This is the
/// one container-parsing routine — fz_decompress_chunked, fz::Reader, and
/// fz::inspect all route through it.
ContainerInfo fz_container_info(ByteSpan stream);

/// Decompress the whole container.  Chunks decompress in parallel, each
/// directly into its slab of the output field (0 = one worker per hardware
/// thread, 1 = serial).
FzDecompressed fz_decompress_chunked(ByteSpan stream,
                                     size_t max_parallelism = 0);

/// Decompress only chunk `index` (random access).  Returns the chunk's data
/// and its dims; `offset_out` receives the chunk's starting index in the
/// flattened full field.  On v2 containers this reads exactly one index
/// entry — O(1) in the chunk count; the O(chunks) size-table walk survives
/// only as the legacy-v1 fallback.
FzDecompressed fz_decompress_chunk(ByteSpan stream, size_t index,
                                   size_t* offset_out = nullptr);

/// Number of chunks in a container stream.  O(1) on v2 containers (header
/// only); walks the size table on legacy v1 streams.
size_t fz_chunk_count(ByteSpan stream);

/// fz::inspect's container path: whole-field identity plus the validated
/// chunk index, with compression parameters taken from chunk 0 and section
/// byte counts summed over chunks.  Prefer calling fz::inspect, which
/// dispatches on the magic.
StreamInfo inspect_container(ByteSpan stream);

}  // namespace fz
