#include "core/chunked.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/codec.hpp"
#include "core/format.hpp"
#include "substrate/bitio.hpp"
#include "telemetry/telemetry.hpp"

namespace fz {

namespace {

/// Split the slowest-varying axis into `want` roughly equal slabs.
std::vector<std::pair<size_t, size_t>> plan_slabs(size_t extent, size_t want) {
  const size_t chunks = std::max<size_t>(1, std::min(want, extent));
  std::vector<std::pair<size_t, size_t>> slabs;
  const size_t base = extent / chunks;
  const size_t extra = extent % chunks;
  size_t begin = 0;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t len = base + (c < extra ? 1 : 0);
    slabs.emplace_back(begin, len);
    begin += len;
  }
  return slabs;
}

size_t slowest_extent(Dims dims) {
  switch (dims.rank()) {
    case 1: return dims.x;
    case 2: return dims.y;
    default: return dims.z;
  }
}

Dims slab_dims(Dims dims, size_t len) {
  switch (dims.rank()) {
    case 1: return Dims{len};
    case 2: return Dims{dims.x, len};
    default: return Dims{dims.x, dims.y, len};
  }
}

/// One private Codec per worker slot: codec scratch pools are
/// single-threaded by design, and per-worker pooling is what lets a long
/// chunk sequence run allocation-free on every worker.
std::vector<std::unique_ptr<Codec>> make_worker_codecs(size_t workers,
                                                       const FzParams& params) {
  std::vector<std::unique_ptr<Codec>> codecs;
  codecs.reserve(workers);
  for (size_t w = 0; w < workers; ++w)
    codecs.push_back(std::make_unique<Codec>(params));
  return codecs;
}

size_t resolve_workers(size_t max_parallelism, size_t num_tasks) {
  const size_t cap =
      max_parallelism == 0 ? static_cast<size_t>(max_threads())
                           : max_parallelism;
  return std::max<size_t>(1, std::min(cap, num_tasks));
}

telemetry::Sink* resolve_sink(const FzParams& params) {
  return params.telemetry != nullptr ? params.telemetry
                                     : telemetry::active_sink();
}

/// Reject corrupt dims before anything allocates on them; each extent is
/// checked separately so the product cannot overflow first.
Dims validated_container_dims(u64 nx, u64 ny, u64 nz, size_t stream_bytes) {
  const u64 max_count = static_cast<u64>(stream_bytes) * 512;
  FZ_FORMAT_REQUIRE(nx >= 1 && ny >= 1 && nz >= 1 && nx <= max_count &&
                        ny <= max_count && nz <= max_count,
                    "bad container dims");
  FZ_FORMAT_REQUIRE(nx * ny <= max_count && nx * ny * nz <= max_count,
                    "container dims exceed stream");
  return Dims{nx, ny, nz};
}

/// Validate one v2 index entry's byte range against the stream and its
/// chunk dims against the field's slab geometry.  `payload_pos` is the
/// first legal chunk byte (end of the index).  Used both by the full-index
/// walk and by the O(1) single-entry random-access path.
ChunkEntry validated_entry(const ChunkIndexEntry& e, Dims dims,
                           size_t payload_pos, size_t stream_bytes) {
  FZ_FORMAT_REQUIRE(e.bytes > 0 && e.bytes <= stream_bytes,
                    "chunk size exceeds container");
  FZ_FORMAT_REQUIRE(e.offset >= payload_pos && e.offset <= stream_bytes &&
                        e.offset + e.bytes <= stream_bytes,
                    "chunk bytes outside container");
  const Dims cd = validated_container_dims(e.nx, e.ny, e.nz, stream_bytes);
  // A chunk is a slab of the slowest axis: every faster extent must match
  // the field's, and the chunk must not out-rank the field.
  switch (dims.rank()) {
    case 1:
      FZ_FORMAT_REQUIRE(cd.y == 1 && cd.z == 1,
                        "chunk dims disagree with field");
      break;
    case 2:
      FZ_FORMAT_REQUIRE(cd.x == dims.x && cd.z == 1,
                        "chunk dims disagree with field");
      break;
    default:
      FZ_FORMAT_REQUIRE(cd.x == dims.x && cd.y == dims.y,
                        "chunk dims disagree with field");
      break;
  }
  FZ_FORMAT_REQUIRE(e.elem_offset <= dims.count(), "chunk element offset");
  ChunkEntry out;
  out.offset = static_cast<size_t>(e.offset);
  out.bytes = static_cast<size_t>(e.bytes);
  out.elem_offset = static_cast<size_t>(e.elem_offset);
  out.dims = cd;
  return out;
}

ContainerInfo read_info_v2(ByteSpan stream) {
  ByteReader r(stream);
  const auto h = r.get<ContainerHeaderV2>();
  FZ_FORMAT_REQUIRE(h.version == kContainerVersion,
                    "unsupported FZ container version");
  FZ_FORMAT_REQUIRE(h.rank >= 1 && h.rank <= 3, "bad container rank");
  FZ_FORMAT_REQUIRE(h.num_chunks > 0 && h.num_chunks < kMaxContainerChunks,
                    "bad chunk count");
  ContainerInfo info;
  info.version = kContainerVersion;
  info.dims = validated_container_dims(h.nx, h.ny, h.nz, stream.size());
  info.count = info.dims.count();
  info.stream_bytes = stream.size();
  info.header_bytes =
      sizeof(ContainerHeaderV2) + h.num_chunks * sizeof(ChunkIndexEntry);
  FZ_FORMAT_REQUIRE(info.header_bytes <= stream.size(), "container truncated");

  // Walk the index once, validating that the byte ranges stay in bounds and
  // never overlap, and that the element ranges exactly tile the field — a
  // corrupt index must be rejected before any decode trusts it.
  info.chunks.reserve(h.num_chunks);
  size_t prev_end = info.header_bytes;
  size_t next_elem = 0;
  for (u32 c = 0; c < h.num_chunks; ++c) {
    const ChunkEntry e = validated_entry(r.get<ChunkIndexEntry>(), info.dims,
                                         info.header_bytes, stream.size());
    FZ_FORMAT_REQUIRE(e.offset >= prev_end, "overlapping chunk index entries");
    FZ_FORMAT_REQUIRE(e.elem_offset == next_elem,
                      "chunk index does not tile the field");
    prev_end = e.offset + e.bytes;
    next_elem += e.dims.count();
    info.chunks.push_back(e);
  }
  FZ_FORMAT_REQUIRE(next_elem == info.count,
                    "chunk index does not cover the field");
  return info;
}

ContainerInfo read_info_v1(ByteSpan stream) {
  ByteReader r(stream);
  const auto h = r.get<ContainerHeaderV1>();
  FZ_FORMAT_REQUIRE(h.num_chunks > 0 && h.num_chunks < kMaxContainerChunks,
                    "bad chunk count");
  ContainerInfo info;
  info.version = 1;
  info.dims = validated_container_dims(h.nx, h.ny, h.nz, stream.size());
  info.count = info.dims.count();
  info.stream_bytes = stream.size();

  // Legacy layout: a size table only.  Synthesize the index the v2 format
  // records directly — offsets by summing sizes, placement by recomputing
  // the writer's slab plan.
  std::vector<u64> sizes(h.num_chunks);
  for (auto& s : sizes) {
    s = r.get<u64>();
    // Bound each size so the offset accumulation below cannot overflow.
    FZ_FORMAT_REQUIRE(s <= stream.size(), "chunk size exceeds container");
  }
  info.header_bytes = r.pos();
  const size_t plane = info.count / slowest_extent(info.dims);
  const auto slabs = plan_slabs(slowest_extent(info.dims), h.num_chunks);
  FZ_FORMAT_REQUIRE(slabs.size() == h.num_chunks,
                    "chunk count disagrees with container dims");
  info.chunks.reserve(h.num_chunks);
  size_t offset = info.header_bytes;
  for (u32 c = 0; c < h.num_chunks; ++c) {
    FZ_FORMAT_REQUIRE(offset + sizes[c] <= stream.size(),
                      "container truncated");
    ChunkEntry e;
    e.offset = offset;
    e.bytes = static_cast<size_t>(sizes[c]);
    e.elem_offset = slabs[c].first * plane;
    e.dims = slab_dims(info.dims, slabs[c].second);
    info.chunks.push_back(e);
    offset += sizes[c];
  }
  return info;
}

}  // namespace

ChunkedCompressed fz_compress_chunked(FloatSpan data, Dims dims,
                                      const ChunkedParams& params) {
  FZ_REQUIRE(data.size() == dims.count() && !data.empty(),
             "chunked: bad input");
  FZ_REQUIRE(params.container_version == 1 ||
                 params.container_version == kContainerVersion,
             "chunked: unknown container version");
  // Resolve the error bound once over the WHOLE field so every chunk uses
  // the same absolute bound (a per-chunk range would change the semantics).
  FzParams base = params.base;
  if (base.eb.mode == ErrorBoundMode::Relative) {
    FZ_REQUIRE(parallel_all_finite(data),
               "input contains NaN/Inf; error-bounded compression requires "
               "finite data");
    const auto [lo, hi] = parallel_minmax(data);
    double range = static_cast<double>(hi) - static_cast<double>(lo);
    if (range <= 0) range = std::max(std::fabs(static_cast<double>(hi)), 1.0);
    base.eb = ErrorBound::absolute(base.eb.value * range);
  }

  const size_t plane = dims.count() / slowest_extent(dims);
  const auto slabs = plan_slabs(slowest_extent(dims), params.num_chunks);

  ChunkedCompressed out;
  out.num_chunks = slabs.size();
  std::vector<FzCompressed> parts(slabs.size());
  // Chunks are independent — this is the multi-GPU axis (each task would
  // run on its own device).  Workers claim chunks dynamically; the parts
  // array keeps chunk order, so the container bytes do not depend on the
  // schedule.
  const size_t workers = resolve_workers(params.max_parallelism, slabs.size());
  auto codecs = make_worker_codecs(workers, base);
  telemetry::Sink* sink = resolve_sink(base);
  telemetry::Span total(sink, "compress-chunked");
  parallel_tasks(slabs.size(), workers, [&](size_t c, size_t w) {
    const auto [begin, len] = slabs[c];
    // One span per chunk, recorded on the claiming worker's thread, so the
    // exported trace shows each worker's timeline and any scheduling gaps.
    telemetry::Span span(sink, "chunk-compress");
    parts[c] = codecs[w]->compress(data.subspan(begin * plane, len * plane),
                                   slab_dims(dims, len));
    if (span.enabled()) {
      span.arg("chunk", static_cast<double>(c));
      span.arg("worker", static_cast<double>(w));
      span.arg("bytes_in", static_cast<double>(len * plane * sizeof(f32)));
      span.arg("bytes_out", static_cast<double>(parts[c].bytes.size()));
    }
  });

  ByteWriter w(out.bytes);
  if (params.container_version == kContainerVersion) {
    // v2: header, then the chunk index (offset/bytes/element placement per
    // chunk — the random-access substrate), then the chunk streams.
    ContainerHeaderV2 h{};
    h.magic = kContainerMagic;
    h.sentinel = kContainerV2Sentinel;
    h.version = kContainerVersion;
    h.rank = static_cast<u8>(dims.rank());
    h.num_chunks = static_cast<u32>(slabs.size());
    h.nx = dims.x;
    h.ny = dims.y;
    h.nz = dims.z;
    w.put(h);
    u64 offset = sizeof(ContainerHeaderV2) +
                 static_cast<u64>(slabs.size()) * sizeof(ChunkIndexEntry);
    for (size_t c = 0; c < slabs.size(); ++c) {
      const Dims cd = slab_dims(dims, slabs[c].second);
      ChunkIndexEntry e{};
      e.offset = offset;
      e.bytes = parts[c].bytes.size();
      e.elem_offset = slabs[c].first * plane;
      e.nx = cd.x;
      e.ny = cd.y;
      e.nz = cd.z;
      w.put(e);
      offset += e.bytes;
    }
  } else {
    // Legacy v1: size table only (kept writable so read compat is tested
    // against real streams, not synthetic fixtures).
    ContainerHeaderV1 h{};
    h.magic = kContainerMagic;
    h.num_chunks = static_cast<u32>(slabs.size());
    h.rank = static_cast<u8>(dims.rank());
    h.nx = dims.x;
    h.ny = dims.y;
    h.nz = dims.z;
    w.put(h);
    for (const auto& p : parts) w.put<u64>(p.bytes.size());
  }
  for (const auto& p : parts) w.put_bytes(p.bytes);

  out.stats.count = data.size();
  out.stats.input_bytes = data.size() * sizeof(f32);
  out.stats.compressed_bytes = out.bytes.size();
  out.stats.abs_eb = parts.front().stats.abs_eb;
  for (const auto& p : parts) {
    out.stats.saturated += p.stats.saturated;
    out.stats.outliers += p.stats.outliers;
    out.stats.total_blocks += p.stats.total_blocks;
    out.stats.nonzero_blocks += p.stats.nonzero_blocks;
    out.chunk_costs.push_back(p.stage_costs);
  }
  if (total.enabled()) {
    total.arg("chunks", static_cast<double>(out.num_chunks));
    total.arg("workers", static_cast<double>(workers));
    total.arg("bytes_in", static_cast<double>(out.stats.input_bytes));
    total.arg("bytes_out", static_cast<double>(out.stats.compressed_bytes));
  }
  return out;
}

ContainerInfo fz_container_info(ByteSpan stream) {
  FZ_FORMAT_REQUIRE(is_container(stream), "not an FZ container");
  return is_container_v2(stream) ? read_info_v2(stream) : read_info_v1(stream);
}

size_t fz_chunk_count(ByteSpan stream) {
  // v2: the count is a header field — no index walk, no size-table sum.
  if (is_container_v2(stream)) {
    ByteReader r(stream);
    const auto h = r.get<ContainerHeaderV2>();
    FZ_FORMAT_REQUIRE(h.version == kContainerVersion,
                      "unsupported FZ container version");
    FZ_FORMAT_REQUIRE(h.num_chunks > 0 && h.num_chunks < kMaxContainerChunks,
                      "bad chunk count");
    return h.num_chunks;
  }
  return fz_container_info(stream).chunks.size();
}

FzDecompressed fz_decompress_chunk(ByteSpan stream, size_t index,
                                   size_t* offset_out) {
  ChunkEntry entry;
  if (is_container_v2(stream)) {
    // O(1) random access: validate the header, then read exactly the one
    // index entry this chunk needs.  The chunk stream itself is a fully
    // self-describing single-field stream, so decode validates the rest.
    ByteReader r(stream);
    const auto h = r.get<ContainerHeaderV2>();
    FZ_FORMAT_REQUIRE(h.version == kContainerVersion,
                      "unsupported FZ container version");
    FZ_FORMAT_REQUIRE(h.num_chunks > 0 && h.num_chunks < kMaxContainerChunks,
                      "bad chunk count");
    FZ_FORMAT_REQUIRE(index < h.num_chunks, "chunk index out of range");
    const Dims dims =
        validated_container_dims(h.nx, h.ny, h.nz, stream.size());
    const size_t payload_pos =
        sizeof(ContainerHeaderV2) + h.num_chunks * sizeof(ChunkIndexEntry);
    FZ_FORMAT_REQUIRE(payload_pos <= stream.size(), "container truncated");
    ByteReader at(stream.subspan(sizeof(ContainerHeaderV2) +
                                 index * sizeof(ChunkIndexEntry)));
    entry = validated_entry(at.get<ChunkIndexEntry>(), dims, payload_pos,
                            stream.size());
  } else {
    // Legacy fallback: the size-table walk (O(chunks)).
    const ContainerInfo info = fz_container_info(stream);
    FZ_FORMAT_REQUIRE(index < info.chunks.size(), "chunk index out of range");
    entry = info.chunks[index];
  }
  FzDecompressed d =
      fz_decompress(stream.subspan(entry.offset, entry.bytes));
  FZ_FORMAT_REQUIRE(d.dims == entry.dims,
                    "chunk stream dims disagree with container index");
  if (offset_out != nullptr) *offset_out = entry.elem_offset;
  return d;
}

FzDecompressed fz_decompress_chunked(ByteSpan stream, size_t max_parallelism) {
  const ContainerInfo info = fz_container_info(stream);
  // The validated index places every chunk: element ranges tile the field
  // exactly (checked in fz_container_info), so workers can decompress
  // concurrently each into its own disjoint slab of the output (no gather
  // pass).  A chunk whose own header count disagrees with its index dims is
  // rejected by decompress_into's span-length check.
  FzDecompressed out;
  out.dims = info.dims;
  out.data.resize(info.count);
  std::vector<std::vector<cudasim::CostSheet>> chunk_costs(info.chunks.size());
  const size_t workers = resolve_workers(max_parallelism, info.chunks.size());
  auto codecs = make_worker_codecs(workers, FzParams{});
  telemetry::Sink* sink = resolve_sink(FzParams{});
  telemetry::Span total(sink, "decompress-chunked");
  parallel_tasks(info.chunks.size(), workers, [&](size_t c, size_t w) {
    const ChunkEntry& e = info.chunks[c];
    const ByteSpan chunk = stream.subspan(e.offset, e.bytes);
    telemetry::Span span(sink, "chunk-decompress");
    const Dims d = codecs[w]->decompress_into(
        chunk,
        std::span<f32>{out.data}.subspan(e.elem_offset, e.dims.count()),
        &chunk_costs[c]);
    FZ_FORMAT_REQUIRE(d == e.dims,
                      "chunk stream dims disagree with container index");
    if (span.enabled()) {
      span.arg("chunk", static_cast<double>(c));
      span.arg("worker", static_cast<double>(w));
      span.arg("bytes_in", static_cast<double>(chunk.size()));
      span.arg("bytes_out", static_cast<double>(e.dims.count() * sizeof(f32)));
    }
  });
  for (auto& costs : chunk_costs)
    for (auto& sheet : costs) out.stage_costs.push_back(sheet);
  return out;
}

StreamInfo inspect_container(ByteSpan stream) {
  const ContainerInfo info = fz_container_info(stream);
  StreamInfo out;
  out.container_version = info.version;
  out.chunks = info.chunks;
  out.dims = info.dims;
  out.count = info.count;
  out.stream_bytes = info.stream_bytes;
  out.header_bytes = info.header_bytes;
  // Compression parameters are uniform across chunks by construction (one
  // absolute bound resolved over the whole field); take them from chunk 0
  // and sum the per-chunk section layouts.
  bool first = true;
  for (const ChunkEntry& e : info.chunks) {
    const StreamInfo chunk = inspect(stream.subspan(e.offset, e.bytes));
    FZ_FORMAT_REQUIRE(chunk.dims == e.dims && chunk.container_version == 0,
                      "chunk stream dims disagree with container index");
    if (first) {
      out.dtype_bytes = chunk.dtype_bytes;
      out.format_version = chunk.format_version;
      out.quant = chunk.quant;
      out.abs_eb = chunk.abs_eb;
      out.log_transform = chunk.log_transform;
      out.radius = chunk.radius;
      first = false;
    }
    out.header_bytes += chunk.header_bytes;
    out.bit_flag_bytes += chunk.bit_flag_bytes;
    out.block_bytes += chunk.block_bytes;
    out.outlier_bytes += chunk.outlier_bytes;
    out.total_blocks += chunk.total_blocks;
    out.nonzero_blocks += chunk.nonzero_blocks;
    out.saturated += chunk.saturated;
  }
  return out;
}

}  // namespace fz
