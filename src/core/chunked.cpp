#include "core/chunked.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/codec.hpp"
#include "substrate/bitio.hpp"
#include "telemetry/telemetry.hpp"

namespace fz {

namespace {

constexpr u32 kChunkMagic = 0x4b435a46u;  // "FZCK"

#pragma pack(push, 1)
struct ContainerHeader {
  u32 magic;
  u32 num_chunks;
  u8 rank;
  u8 pad[7];
  u64 nx, ny, nz;
};
#pragma pack(pop)

/// Split the slowest-varying axis into `want` roughly equal slabs.
std::vector<std::pair<size_t, size_t>> plan_slabs(size_t extent, size_t want) {
  const size_t chunks = std::max<size_t>(1, std::min(want, extent));
  std::vector<std::pair<size_t, size_t>> slabs;
  const size_t base = extent / chunks;
  const size_t extra = extent % chunks;
  size_t begin = 0;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t len = base + (c < extra ? 1 : 0);
    slabs.emplace_back(begin, len);
    begin += len;
  }
  return slabs;
}

size_t slowest_extent(Dims dims) {
  switch (dims.rank()) {
    case 1: return dims.x;
    case 2: return dims.y;
    default: return dims.z;
  }
}

Dims slab_dims(Dims dims, size_t len) {
  switch (dims.rank()) {
    case 1: return Dims{len};
    case 2: return Dims{dims.x, len};
    default: return Dims{dims.x, dims.y, len};
  }
}

/// One private Codec per worker slot: codec scratch pools are
/// single-threaded by design, and per-worker pooling is what lets a long
/// chunk sequence run allocation-free on every worker.
std::vector<std::unique_ptr<Codec>> make_worker_codecs(size_t workers,
                                                       const FzParams& params) {
  std::vector<std::unique_ptr<Codec>> codecs;
  codecs.reserve(workers);
  for (size_t w = 0; w < workers; ++w)
    codecs.push_back(std::make_unique<Codec>(params));
  return codecs;
}

size_t resolve_workers(size_t max_parallelism, size_t num_tasks) {
  const size_t cap =
      max_parallelism == 0 ? static_cast<size_t>(max_threads())
                           : max_parallelism;
  return std::max<size_t>(1, std::min(cap, num_tasks));
}

telemetry::Sink* resolve_sink(const FzParams& params) {
  return params.telemetry != nullptr ? params.telemetry
                                     : telemetry::active_sink();
}

}  // namespace

ChunkedCompressed fz_compress_chunked(FloatSpan data, Dims dims,
                                      const ChunkedParams& params) {
  FZ_REQUIRE(data.size() == dims.count() && !data.empty(),
             "chunked: bad input");
  // Resolve the error bound once over the WHOLE field so every chunk uses
  // the same absolute bound (a per-chunk range would change the semantics).
  FzParams base = params.base;
  if (base.eb.mode == ErrorBoundMode::Relative) {
    FZ_REQUIRE(parallel_all_finite(data),
               "input contains NaN/Inf; error-bounded compression requires "
               "finite data");
    const auto [lo, hi] = parallel_minmax(data);
    double range = static_cast<double>(hi) - static_cast<double>(lo);
    if (range <= 0) range = std::max(std::fabs(static_cast<double>(hi)), 1.0);
    base.eb = ErrorBound::absolute(base.eb.value * range);
  }

  const size_t plane = dims.count() / slowest_extent(dims);
  const auto slabs = plan_slabs(slowest_extent(dims), params.num_chunks);

  ChunkedCompressed out;
  out.num_chunks = slabs.size();
  std::vector<FzCompressed> parts(slabs.size());
  // Chunks are independent — this is the multi-GPU axis (each task would
  // run on its own device).  Workers claim chunks dynamically; the parts
  // array keeps chunk order, so the container bytes do not depend on the
  // schedule.
  const size_t workers = resolve_workers(params.max_parallelism, slabs.size());
  auto codecs = make_worker_codecs(workers, base);
  telemetry::Sink* sink = resolve_sink(base);
  telemetry::Span total(sink, "compress-chunked");
  parallel_tasks(slabs.size(), workers, [&](size_t c, size_t w) {
    const auto [begin, len] = slabs[c];
    // One span per chunk, recorded on the claiming worker's thread, so the
    // exported trace shows each worker's timeline and any scheduling gaps.
    telemetry::Span span(sink, "chunk-compress");
    parts[c] = codecs[w]->compress(data.subspan(begin * plane, len * plane),
                                   slab_dims(dims, len));
    if (span.enabled()) {
      span.arg("chunk", static_cast<double>(c));
      span.arg("worker", static_cast<double>(w));
      span.arg("bytes_in", static_cast<double>(len * plane * sizeof(f32)));
      span.arg("bytes_out", static_cast<double>(parts[c].bytes.size()));
    }
  });

  ContainerHeader h{};
  h.magic = kChunkMagic;
  h.num_chunks = static_cast<u32>(slabs.size());
  h.rank = static_cast<u8>(dims.rank());
  h.nx = dims.x;
  h.ny = dims.y;
  h.nz = dims.z;
  ByteWriter w(out.bytes);
  w.put(h);
  for (const auto& p : parts) w.put<u64>(p.bytes.size());
  for (const auto& p : parts) w.put_bytes(p.bytes);

  out.stats.count = data.size();
  out.stats.input_bytes = data.size() * sizeof(f32);
  out.stats.compressed_bytes = out.bytes.size();
  out.stats.abs_eb = parts.front().stats.abs_eb;
  for (const auto& p : parts) {
    out.stats.saturated += p.stats.saturated;
    out.stats.outliers += p.stats.outliers;
    out.stats.total_blocks += p.stats.total_blocks;
    out.stats.nonzero_blocks += p.stats.nonzero_blocks;
    out.chunk_costs.push_back(p.stage_costs);
  }
  if (total.enabled()) {
    total.arg("chunks", static_cast<double>(out.num_chunks));
    total.arg("workers", static_cast<double>(workers));
    total.arg("bytes_in", static_cast<double>(out.stats.input_bytes));
    total.arg("bytes_out", static_cast<double>(out.stats.compressed_bytes));
  }
  return out;
}

namespace {

struct ContainerIndex {
  ContainerHeader header;
  std::vector<u64> sizes;
  std::vector<size_t> offsets;  // into the chunk payload area
  size_t payload_pos;           // absolute position of the first chunk
};

ContainerIndex read_index(ByteSpan stream) {
  ByteReader r(stream);
  ContainerIndex idx;
  idx.header = r.get<ContainerHeader>();
  FZ_FORMAT_REQUIRE(idx.header.magic == kChunkMagic, "not an FZ container");
  FZ_FORMAT_REQUIRE(idx.header.num_chunks > 0 && idx.header.num_chunks < (1u << 24),
                    "bad chunk count");
  // Reject corrupt dims before anything allocates on them; each extent is
  // checked separately so the product cannot overflow first.
  const u64 max_count = static_cast<u64>(stream.size()) * 512;
  FZ_FORMAT_REQUIRE(idx.header.nx >= 1 && idx.header.ny >= 1 &&
                        idx.header.nz >= 1 && idx.header.nx <= max_count &&
                        idx.header.ny <= max_count && idx.header.nz <= max_count,
                    "bad container dims");
  FZ_FORMAT_REQUIRE(idx.header.nx * idx.header.ny <= max_count &&
                        idx.header.nx * idx.header.ny * idx.header.nz <= max_count,
                    "container dims exceed stream");
  idx.sizes.resize(idx.header.num_chunks);
  for (auto& s : idx.sizes) {
    s = r.get<u64>();
    // Bound each size so the offset accumulation below cannot overflow.
    FZ_FORMAT_REQUIRE(s <= stream.size(), "chunk size exceeds container");
  }
  idx.offsets.resize(idx.header.num_chunks + 1, 0);
  for (size_t c = 0; c < idx.sizes.size(); ++c)
    idx.offsets[c + 1] = idx.offsets[c] + idx.sizes[c];
  idx.payload_pos = r.pos();
  FZ_FORMAT_REQUIRE(idx.payload_pos + idx.offsets.back() <= stream.size(),
                    "container truncated");
  return idx;
}

}  // namespace

size_t fz_chunk_count(ByteSpan stream) {
  return read_index(stream).header.num_chunks;
}

FzDecompressed fz_decompress_chunk(ByteSpan stream, size_t index,
                                   size_t* offset_out) {
  const ContainerIndex idx = read_index(stream);
  FZ_FORMAT_REQUIRE(index < idx.header.num_chunks, "chunk index out of range");
  const ByteSpan chunk = stream.subspan(idx.payload_pos + idx.offsets[index],
                                        idx.sizes[index]);
  FzDecompressed d = fz_decompress(chunk);
  if (offset_out != nullptr) {
    // Recompute the slab plan to find this chunk's offset.
    const Dims dims{idx.header.nx, idx.header.ny, idx.header.nz};
    const size_t plane = dims.count() / slowest_extent(dims);
    const auto slabs = plan_slabs(slowest_extent(dims), idx.header.num_chunks);
    *offset_out = slabs[index].first * plane;
  }
  return d;
}

FzDecompressed fz_decompress_chunked(ByteSpan stream, size_t max_parallelism) {
  const ContainerIndex idx = read_index(stream);
  const Dims dims{idx.header.nx, idx.header.ny, idx.header.nz};
  // The writer slabs the slowest axis; recomputing its plan gives every
  // chunk's extent and offset, so workers can decompress concurrently each
  // into its own disjoint slab of the output (no gather pass).  A container
  // whose chunk counts disagree with its own dims is rejected (the
  // per-chunk header count is validated against the slab size).
  const size_t plane = dims.count() / slowest_extent(dims);
  const auto slabs = plan_slabs(slowest_extent(dims), idx.header.num_chunks);
  FZ_FORMAT_REQUIRE(slabs.size() == idx.header.num_chunks,
                    "chunk count disagrees with container dims");

  FzDecompressed out;
  out.dims = dims;
  out.data.resize(dims.count());
  std::vector<std::vector<cudasim::CostSheet>> chunk_costs(slabs.size());
  const size_t workers = resolve_workers(max_parallelism, slabs.size());
  auto codecs = make_worker_codecs(workers, FzParams{});
  telemetry::Sink* sink = resolve_sink(FzParams{});
  telemetry::Span total(sink, "decompress-chunked");
  parallel_tasks(slabs.size(), workers, [&](size_t c, size_t w) {
    const auto [begin, len] = slabs[c];
    const ByteSpan chunk =
        stream.subspan(idx.payload_pos + idx.offsets[c], idx.sizes[c]);
    telemetry::Span span(sink, "chunk-decompress");
    codecs[w]->decompress_into(
        chunk, std::span<f32>{out.data}.subspan(begin * plane, len * plane),
        &chunk_costs[c]);
    if (span.enabled()) {
      span.arg("chunk", static_cast<double>(c));
      span.arg("worker", static_cast<double>(w));
      span.arg("bytes_in", static_cast<double>(chunk.size()));
      span.arg("bytes_out", static_cast<double>(len * plane * sizeof(f32)));
    }
  });
  for (auto& costs : chunk_costs)
    for (auto& sheet : costs) out.stage_costs.push_back(sheet);
  return out;
}

}  // namespace fz
