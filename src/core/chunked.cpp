#include "core/chunked.hpp"

#include <algorithm>
#include <cmath>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "substrate/bitio.hpp"

namespace fz {

namespace {

constexpr u32 kChunkMagic = 0x4b435a46u;  // "FZCK"

#pragma pack(push, 1)
struct ContainerHeader {
  u32 magic;
  u32 num_chunks;
  u8 rank;
  u8 pad[7];
  u64 nx, ny, nz;
};
#pragma pack(pop)

/// Split the slowest-varying axis into `want` roughly equal slabs.
std::vector<std::pair<size_t, size_t>> plan_slabs(size_t extent, size_t want) {
  const size_t chunks = std::max<size_t>(1, std::min(want, extent));
  std::vector<std::pair<size_t, size_t>> slabs;
  const size_t base = extent / chunks;
  const size_t extra = extent % chunks;
  size_t begin = 0;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t len = base + (c < extra ? 1 : 0);
    slabs.emplace_back(begin, len);
    begin += len;
  }
  return slabs;
}

size_t slowest_extent(Dims dims) {
  switch (dims.rank()) {
    case 1: return dims.x;
    case 2: return dims.y;
    default: return dims.z;
  }
}

Dims slab_dims(Dims dims, size_t len) {
  switch (dims.rank()) {
    case 1: return Dims{len};
    case 2: return Dims{dims.x, len};
    default: return Dims{dims.x, dims.y, len};
  }
}

}  // namespace

ChunkedCompressed fz_compress_chunked(FloatSpan data, Dims dims,
                                      const ChunkedParams& params) {
  FZ_REQUIRE(data.size() == dims.count() && !data.empty(),
             "chunked: bad input");
  // Resolve the error bound once over the WHOLE field so every chunk uses
  // the same absolute bound (a per-chunk range would change the semantics).
  FzParams base = params.base;
  if (base.eb.mode == ErrorBoundMode::Relative) {
    const auto [lo, hi] = std::minmax_element(data.begin(), data.end());
    double range = static_cast<double>(*hi) - static_cast<double>(*lo);
    if (range <= 0) range = std::max(std::fabs(static_cast<double>(*hi)), 1.0);
    base.eb = ErrorBound::absolute(base.eb.value * range);
  }

  const size_t plane = dims.count() / slowest_extent(dims);
  const auto slabs = plan_slabs(slowest_extent(dims), params.num_chunks);

  ChunkedCompressed out;
  out.num_chunks = slabs.size();
  std::vector<FzCompressed> parts(slabs.size());
  // Chunks are independent — this loop is the multi-GPU axis (each
  // iteration would run on its own device).
  for (size_t c = 0; c < slabs.size(); ++c) {
    const auto [begin, len] = slabs[c];
    parts[c] = fz_compress(data.subspan(begin * plane, len * plane),
                           slab_dims(dims, len), base);
  }

  ContainerHeader h{};
  h.magic = kChunkMagic;
  h.num_chunks = static_cast<u32>(slabs.size());
  h.rank = static_cast<u8>(dims.rank());
  h.nx = dims.x;
  h.ny = dims.y;
  h.nz = dims.z;
  ByteWriter w(out.bytes);
  w.put(h);
  for (const auto& p : parts) w.put<u64>(p.bytes.size());
  for (const auto& p : parts) w.put_bytes(p.bytes);

  out.stats.count = data.size();
  out.stats.input_bytes = data.size() * sizeof(f32);
  out.stats.compressed_bytes = out.bytes.size();
  out.stats.abs_eb = parts.front().stats.abs_eb;
  for (const auto& p : parts) {
    out.stats.saturated += p.stats.saturated;
    out.stats.outliers += p.stats.outliers;
    out.stats.total_blocks += p.stats.total_blocks;
    out.stats.nonzero_blocks += p.stats.nonzero_blocks;
    out.chunk_costs.push_back(p.stage_costs);
  }
  return out;
}

namespace {

struct ContainerIndex {
  ContainerHeader header;
  std::vector<u64> sizes;
  std::vector<size_t> offsets;  // into the chunk payload area
  size_t payload_pos;           // absolute position of the first chunk
};

ContainerIndex read_index(ByteSpan stream) {
  ByteReader r(stream);
  ContainerIndex idx;
  idx.header = r.get<ContainerHeader>();
  FZ_FORMAT_REQUIRE(idx.header.magic == kChunkMagic, "not an FZ container");
  FZ_FORMAT_REQUIRE(idx.header.num_chunks > 0 && idx.header.num_chunks < (1u << 24),
                    "bad chunk count");
  // Reject corrupt dims before anything allocates on them; each extent is
  // checked separately so the product cannot overflow first.
  const u64 max_count = static_cast<u64>(stream.size()) * 512;
  FZ_FORMAT_REQUIRE(idx.header.nx >= 1 && idx.header.ny >= 1 &&
                        idx.header.nz >= 1 && idx.header.nx <= max_count &&
                        idx.header.ny <= max_count && idx.header.nz <= max_count,
                    "bad container dims");
  FZ_FORMAT_REQUIRE(idx.header.nx * idx.header.ny <= max_count &&
                        idx.header.nx * idx.header.ny * idx.header.nz <= max_count,
                    "container dims exceed stream");
  idx.sizes.resize(idx.header.num_chunks);
  for (auto& s : idx.sizes) {
    s = r.get<u64>();
    // Bound each size so the offset accumulation below cannot overflow.
    FZ_FORMAT_REQUIRE(s <= stream.size(), "chunk size exceeds container");
  }
  idx.offsets.resize(idx.header.num_chunks + 1, 0);
  for (size_t c = 0; c < idx.sizes.size(); ++c)
    idx.offsets[c + 1] = idx.offsets[c] + idx.sizes[c];
  idx.payload_pos = r.pos();
  FZ_FORMAT_REQUIRE(idx.payload_pos + idx.offsets.back() <= stream.size(),
                    "container truncated");
  return idx;
}

}  // namespace

size_t fz_chunk_count(ByteSpan stream) {
  return read_index(stream).header.num_chunks;
}

FzDecompressed fz_decompress_chunk(ByteSpan stream, size_t index,
                                   size_t* offset_out) {
  const ContainerIndex idx = read_index(stream);
  FZ_FORMAT_REQUIRE(index < idx.header.num_chunks, "chunk index out of range");
  const ByteSpan chunk = stream.subspan(idx.payload_pos + idx.offsets[index],
                                        idx.sizes[index]);
  FzDecompressed d = fz_decompress(chunk);
  if (offset_out != nullptr) {
    // Recompute the slab plan to find this chunk's offset.
    const Dims dims{idx.header.nx, idx.header.ny, idx.header.nz};
    const size_t plane = dims.count() / slowest_extent(dims);
    const auto slabs = plan_slabs(slowest_extent(dims), idx.header.num_chunks);
    *offset_out = slabs[index].first * plane;
  }
  return d;
}

FzDecompressed fz_decompress_chunked(ByteSpan stream) {
  const ContainerIndex idx = read_index(stream);
  const Dims dims{idx.header.nx, idx.header.ny, idx.header.nz};

  FzDecompressed out;
  out.dims = dims;
  out.data.resize(dims.count());
  size_t cursor = 0;
  for (size_t c = 0; c < idx.header.num_chunks; ++c) {
    const ByteSpan chunk =
        stream.subspan(idx.payload_pos + idx.offsets[c], idx.sizes[c]);
    FzDecompressed d = fz_decompress(chunk);
    FZ_FORMAT_REQUIRE(cursor + d.data.size() <= out.data.size(),
                      "container chunks exceed field size");
    std::copy(d.data.begin(), d.data.end(), out.data.begin() + cursor);
    cursor += d.data.size();
    for (auto& costs : d.stage_costs) out.stage_costs.push_back(costs);
  }
  FZ_FORMAT_REQUIRE(cursor == out.data.size(), "container incomplete");
  return out;
}

}  // namespace fz
