#include "core/stages.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/bitshuffle.hpp"
#include "core/encoder.hpp"
#include "core/kernels_decode.hpp"
#include "core/kernels_simd.hpp"
#include "core/lorenzo.hpp"
#include "substrate/bitio.hpp"
#include "substrate/scan.hpp"

namespace fz {

void PipelineContext::begin_compress(BufferPool* p, const FzParams& run_params,
                                     Dims run_dims, size_t n, u8 run_dtype,
                                     const void* data, std::vector<u8>* out) {
  pool = p;
  params = run_params;
  dims = run_dims;
  count = n;
  dtype = run_dtype;
  input = data;
  out_bytes = out;
  stream = {};
  output = nullptr;
  abs_eb = 0;
  log_transform = false;
  header = {};
  sec_bit_flags = sec_blocks = sec_outliers = {};
  anchor = 0;
  radius = 0;
  outliers.clear();
  nonzero_blocks = 0;
  stats = {};
}

void PipelineContext::begin_decompress(BufferPool* p,
                                       const FzParams& run_params,
                                       ByteSpan run_stream, size_t n,
                                       u8 run_dtype, void* out) {
  pool = p;
  params = {};
  // Host execution knobs survive into the decompress stages; the
  // stream-derived fields (quant, eb, ...) are filled by ParseHeaderStage.
  params.simd = run_params.simd;
  params.f32_fast_quant = run_params.f32_fast_quant;
  params.f64_fast_quant = run_params.f64_fast_quant;
  params.fused_workers = run_params.fused_workers;
  params.fused_decompress = run_params.fused_decompress;
  params.numa_first_touch = run_params.numa_first_touch;
  dims = {};
  count = n;
  dtype = run_dtype;
  input = nullptr;
  out_bytes = nullptr;
  stream = run_stream;
  output = out;
  abs_eb = 0;
  log_transform = false;
  header = {};
  sec_bit_flags = sec_blocks = sec_outliers = {};
  anchor = 0;
  radius = 0;
  outliers.clear();
  nonzero_blocks = 0;
  stats = {};
}

void PipelineContext::release_scratch() {
  values.release();
  pq.release();
  codes.release();
  shuffled.release();
  byte_flags.release();
  bit_flags.release();
  flags32.release();
  offsets.release();
  scan_scratch.release();
  blocks.release();
  row_scratch.release();
  plane_scratch.release();
}

namespace {

// ---- compression stages -----------------------------------------------------

/// Validate the input (NaN/Inf-free), resolve the error bound, and apply
/// the optional log transform.  All three full-data walks run through the
/// OpenMP reductions in common/parallel.hpp — they used to be serial scans
/// on the hot path.
class ResolveTransformStage final : public Stage {
 public:
  const char* name() const override { return "resolve-transform"; }

  void run(PipelineContext& ctx) const override {
    if (ctx.dtype == sizeof(f64)) {
      run_impl<f64>(ctx);
    } else {
      run_impl<f32>(ctx);
    }
  }

 private:
  template <typename T>
  static void run_impl(PipelineContext& ctx) {
    const std::span<const T> data = ctx.input_as<T>();
    FZ_REQUIRE(parallel_all_finite(data),
               "input contains NaN/Inf; error-bounded compression requires "
               "finite data");
    ctx.stats.count = data.size();
    ctx.stats.input_bytes = data.size() * sizeof(T);

    const ErrorBound& eb = ctx.params.eb;
    if (eb.mode == ErrorBoundMode::Absolute) {
      ctx.abs_eb = eb.value;
    } else if (eb.mode == ErrorBoundMode::PointwiseRelative) {
      // Realized via the log transform: an absolute bound of log(1+rel) on
      // log-space data bounds each value's relative error by rel.
      FZ_REQUIRE(eb.value > 0 && eb.value < 1,
                 "point-wise relative bound must be in (0, 1)");
      ctx.abs_eb = std::log1p(eb.value);
    } else {
      const auto [lo, hi] = parallel_minmax(data);
      double range = static_cast<double>(hi) - static_cast<double>(lo);
      if (range <= 0) {
        // Degenerate constant field: scale the relative bound by the value
        // magnitude instead (any positive bound reproduces it exactly
        // anyway).
        range = std::max(std::fabs(static_cast<double>(hi)), 1.0);
      }
      ctx.abs_eb = eb.resolve(range);
    }
    ctx.stats.abs_eb = ctx.abs_eb;
    FZ_REQUIRE(ctx.abs_eb > 0, "resolved error bound must be positive");

    // Point-wise relative mode: compress log(d) with the absolute bound
    // log(1+rel) (Liang et al., the paper's HACC protocol, §4.1).
    ctx.log_transform = eb.mode == ErrorBoundMode::PointwiseRelative;
    if (ctx.log_transform) {
      ctx.values = ctx.pool->acquire(ctx.count * sizeof(T), false);
      const std::span<T> values = ctx.values.as<T>();
      parallel_chunks(data.size(), size_t{1} << 14, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) {
          FZ_REQUIRE(data[i] > 0,
                     "point-wise relative bounds require strictly positive "
                     "data (apply an offset or use an absolute bound)");
          values[i] = static_cast<T>(std::log(static_cast<double>(data[i])));
        }
      });
    }
  }
};

/// Dual-quantization (pre-quantize, Lorenzo-predict, quantize the
/// residuals into 16-bit codes).
class DualQuantStage final : public Stage {
 public:
  const char* name() const override { return "dual-quant"; }

  void run(PipelineContext& ctx) const override {
    const SimdLevel level = resolve_simd(ctx.params.simd);
    ctx.pq = ctx.pool->acquire(ctx.count * sizeof(i64), false);
    const std::span<i64> pq = ctx.pq.as<i64>();
    if (ctx.dtype == sizeof(f64)) {
      if (ctx.params.f64_fast_quant) {
        prequantize_f64fast(source<f64>(ctx), ctx.abs_eb, pq, level);
      } else {
        prequantize_simd(source<f64>(ctx), ctx.abs_eb, pq, level);
      }
    } else if (ctx.params.f32_fast_quant) {
      prequantize_f32fast(source<f32>(ctx), ctx.abs_eb, pq, level);
    } else {
      prequantize_simd(source<f32>(ctx), ctx.abs_eb, pq, level);
    }
    lorenzo_forward(pq, ctx.dims, pq);
    // Anchor the first value: its "residual" is the value itself, which can
    // exceed the 16-bit code range by orders of magnitude for offset-heavy
    // data; carry it in the header instead.
    ctx.anchor = pq[0];
    pq[0] = 0;

    ctx.codes = ctx.pool->acquire(ctx.padded_codes() * sizeof(u16), false);
    const std::span<u16> codes = ctx.codes.as<u16>();
    if (ctx.params.quant == QuantVersion::V2Optimized) {
      ctx.stats.saturated =
          quant_encode_v2_simd(pq, codes.first(ctx.count), level);
      ctx.radius = 0;
    } else {
      quant_encode_v1(pq, ctx.params.radius, codes.first(ctx.count),
                      ctx.outliers);
      ctx.radius = ctx.params.radius;
      ctx.stats.outliers = ctx.outliers.size();
    }
    // Zero the tile padding: it bitshuffles to zero blocks.
    std::fill(codes.begin() + ctx.count, codes.end(), u16{0});
  }

 private:
  template <typename T>
  static std::span<const T> source(const PipelineContext& ctx) {
    return ctx.log_transform ? std::span<const T>(ctx.values.as<T>())
                             : ctx.input_as<T>();
  }
};

/// Bitshuffle (+ phase-1 flags; fused on device, see costs.cpp).
class BitshuffleMarkStage final : public Stage {
 public:
  const char* name() const override { return "bitshuffle-mark"; }

  void run(PipelineContext& ctx) const override {
    const SimdLevel level = resolve_simd(ctx.params.simd);
    ctx.shuffled = ctx.pool->acquire(ctx.total_words() * sizeof(u32), false);
    bitshuffle_tiles_simd(ctx.codes.as<u32>(), ctx.shuffled.as<u32>(), level);

    ctx.byte_flags = ctx.pool->acquire(ctx.total_blocks(), false);
    ctx.bit_flags =
        ctx.pool->acquire(div_ceil(ctx.total_blocks(), 8), false);
    mark_blocks_simd(ctx.shuffled.as<u32>(), ctx.byte_flags.as<u8>(),
                     ctx.bit_flags.as<u8>(), level);
  }
};

/// The fused host pipeline (paper §3.4's fusion idea applied to the whole
/// compress hot path): pre-quantize + Lorenzo + residual encode + tile
/// bitshuffle + zero-block mark in one pass over the input, tile by tile.
/// Replaces DualQuantStage + BitshuffleMarkStage; the i64 pre-quant array
/// never exists, only O(row)/O(plane) rolling scratch.  V2 only.
class FusedQuantShuffleMarkStage final : public Stage {
 public:
  const char* name() const override { return "fused-quant-shuffle-mark"; }

  void run(PipelineContext& ctx) const override {
    FZ_REQUIRE(ctx.params.quant == QuantVersion::V2Optimized,
               "fused graph supports V2 quantization only");
    const SimdLevel level = resolve_simd(ctx.params.simd);
    ctx.shuffled = ctx.pool->acquire(ctx.total_words() * sizeof(u32), false);
    ctx.byte_flags = ctx.pool->acquire(ctx.total_blocks(), false);
    ctx.bit_flags = ctx.pool->acquire(div_ceil(ctx.total_blocks(), 8), false);

    FusedTileResult r;
    if (ctx.params.fused_serial_tiles) {
      // Ablation / reference path: the pre-PR5 serial streaming pass.
      ctx.row_scratch = ctx.pool->acquire(
          fused_row_scratch_elems(ctx.dims) * sizeof(i64), false);
      const size_t plane_elems = fused_plane_scratch_elems(ctx.dims);
      std::span<i64> plane;
      if (plane_elems != 0) {
        ctx.plane_scratch =
            ctx.pool->acquire(plane_elems * sizeof(i64), false);
        plane = ctx.plane_scratch.as<i64>();
      }
      if (ctx.dtype == sizeof(f64)) {
        r = fused_quant_shuffle_mark(
            source<f64>(ctx), ctx.dims, ctx.abs_eb, ctx.params.f64_fast_quant,
            ctx.shuffled.as<u32>(), ctx.byte_flags.as<u8>(),
            ctx.bit_flags.as<u8>(), ctx.row_scratch.as<i64>(), plane, level);
      } else {
        r = fused_quant_shuffle_mark(
            source<f32>(ctx), ctx.dims, ctx.abs_eb, ctx.params.f32_fast_quant,
            ctx.shuffled.as<u32>(), ctx.byte_flags.as<u8>(),
            ctx.bit_flags.as<u8>(), ctx.row_scratch.as<i64>(), plane, level);
      }
    } else {
      // Tile-parallel strips with halo re-prequantization: one pooled lease
      // sliced per strip, byte-identical to the serial pass for every plan.
      const FusedParallelPlan plan =
          fused_parallel_plan(ctx.dims, ctx.params.fused_workers);
      // Best-effort NUMA placement: touch each strip's output slice in
      // strip shape while the lease's pages are still uncommitted.
      if (ctx.params.numa_first_touch && ctx.shuffled.fresh())
        fused_first_touch_strips(ctx.shuffled.bytes(), plan.strips);
      ctx.row_scratch =
          ctx.pool->acquire(plan.scratch_elems * sizeof(i64), false);
      if (ctx.dtype == sizeof(f64)) {
        r = fused_quant_shuffle_mark_parallel(
            source<f64>(ctx), ctx.dims, ctx.abs_eb, ctx.params.f64_fast_quant,
            ctx.shuffled.as<u32>(), ctx.byte_flags.as<u8>(),
            ctx.bit_flags.as<u8>(), ctx.row_scratch.as<i64>(), plan, level,
            ctx.sink);
      } else {
        r = fused_quant_shuffle_mark_parallel(
            source<f32>(ctx), ctx.dims, ctx.abs_eb, ctx.params.f32_fast_quant,
            ctx.shuffled.as<u32>(), ctx.byte_flags.as<u8>(),
            ctx.bit_flags.as<u8>(), ctx.row_scratch.as<i64>(), plan, level,
            ctx.sink);
      }
    }
    ctx.anchor = r.anchor;
    ctx.stats.saturated = r.saturated;
    ctx.radius = 0;
  }

 private:
  template <typename T>
  static std::span<const T> source(const PipelineContext& ctx) {
    return ctx.log_transform ? std::span<const T>(ctx.values.as<T>())
                             : ctx.input_as<T>();
  }
};

/// Prefix-sum offsets + block compaction (encode phase 2).
class EncodeStage final : public Stage {
 public:
  const char* name() const override { return "prefix-sum-encode"; }

  void run(PipelineContext& ctx) const override {
    const size_t nblocks = ctx.total_blocks();
    ctx.flags32 = ctx.pool->acquire(nblocks * sizeof(u32), false);
    ctx.offsets = ctx.pool->acquire(nblocks * sizeof(u32), false);
    ctx.scan_scratch = ctx.pool->acquire(
        2 * scan_chunk_count(nblocks) * sizeof(u32), false);
    ctx.blocks =
        ctx.pool->acquire(ctx.total_words() * sizeof(u32), false);
    ctx.nonzero_blocks = compact_blocks(
        ctx.shuffled.as<u32>(), ctx.byte_flags.as<u8>(), ctx.flags32.as<u32>(),
        ctx.offsets.as<u32>(), ctx.scan_scratch.as<u32>(),
        ctx.blocks.as<u32>());
    ctx.stats.total_blocks = nblocks;
    ctx.stats.nonzero_blocks = ctx.nonzero_blocks;
  }
};

/// Header + sections -> the self-describing output stream.
class AssembleStage final : public Stage {
 public:
  const char* name() const override { return "assemble"; }

  void run(PipelineContext& ctx) const override {
    StreamHeader h{};
    h.magic = kStreamMagic;
    h.version = kStreamVersion;
    h.quant = static_cast<u8>(ctx.params.quant);
    h.rank = static_cast<u8>(ctx.dims.rank());
    h.dtype = ctx.dtype;
    h.transform = ctx.log_transform ? kTransformLog : kTransformNone;
    h.nx = ctx.dims.x;
    h.ny = ctx.dims.y;
    h.nz = ctx.dims.z;
    h.count = ctx.count;
    h.abs_eb = ctx.abs_eb;
    h.radius = ctx.radius;
    h.anchor = ctx.anchor;
    h.saturated = ctx.stats.saturated;
    h.outlier_count = ctx.outliers.size();
    h.bit_flag_bytes = ctx.bit_flags.size();
    h.block_words = ctx.nonzero_blocks * kBlockWords;

    std::vector<u8>& out = *ctx.out_bytes;
    out.clear();
    out.reserve(sizeof(h) + h.bit_flag_bytes + h.block_words * sizeof(u32) +
                ctx.outliers.size() * (sizeof(u32) + sizeof(i32)));
    ByteWriter w(out);
    w.put(h);
    w.put_bytes(ctx.bit_flags.bytes());
    w.put_bytes(ByteSpan{
        reinterpret_cast<const u8*>(ctx.blocks.as<u32>().data()),
        h.block_words * sizeof(u32)});
    for (const Outlier& o : ctx.outliers) {
      FZ_REQUIRE(o.index <= UINT32_MAX && o.delta >= INT32_MIN &&
                     o.delta <= INT32_MAX,
                 "outlier exceeds 8-byte stream encoding");
      w.put<u32>(static_cast<u32>(o.index));
      w.put<i32>(static_cast<i32>(o.delta));
    }
    ctx.stats.compressed_bytes = out.size();
  }
};

// ---- decompression stages ---------------------------------------------------

/// Validate the header and slice the stream into its sections.
class ParseHeaderStage final : public Stage {
 public:
  const char* name() const override { return "parse-header"; }

  void run(PipelineContext& ctx) const override {
    ByteReader r(ctx.stream);
    const StreamHeader h = r.get<StreamHeader>();
    validate_stream_header(h, ctx.stream.size());
    FZ_FORMAT_REQUIRE(h.dtype == ctx.dtype,
                      h.dtype == sizeof(f64)
                          ? "stream holds f64 data (use fz_decompress_f64)"
                          : "stream holds f32 data (use fz_decompress)");
    FZ_FORMAT_REQUIRE(h.count == ctx.count,
                      "stream count does not match output size");
    ctx.dims = Dims{h.nx, h.ny, h.nz};
    ctx.params.quant = static_cast<QuantVersion>(h.quant);
    ctx.abs_eb = h.abs_eb;
    ctx.log_transform = h.transform == kTransformLog;
    ctx.radius = h.radius;

    const size_t total_words = ctx.total_words();
    FZ_FORMAT_REQUIRE(
        h.bit_flag_bytes == div_ceil(total_words / kBlockWords, 8),
        "bit-flag section size mismatch");
    FZ_FORMAT_REQUIRE(h.block_words <= total_words,
                      "block payload exceeds field size");
    // Outlier indices are distinct positions, so their count is bounded by
    // the field size; this also keeps the section-size product from
    // overflowing below.
    FZ_FORMAT_REQUIRE(h.outlier_count <= h.count, "too many outliers");
    ctx.sec_bit_flags = r.get_bytes(h.bit_flag_bytes);
    ctx.sec_blocks = r.get_bytes(h.block_words * sizeof(u32));
    ctx.sec_outliers =
        ctx.params.quant == QuantVersion::V1Original
            ? r.get_bytes(h.outlier_count * (sizeof(u32) + sizeof(i32)))
            : ByteSpan{};
    ctx.header = h;

    ctx.stats.count = h.count;
    ctx.stats.input_bytes = h.count * h.dtype;
    ctx.stats.compressed_bytes = ctx.stream.size();
    ctx.stats.abs_eb = h.abs_eb;
    ctx.stats.saturated = h.saturated;
    ctx.stats.outliers = h.outlier_count;
    ctx.stats.total_blocks = total_words / kBlockWords;
    ctx.stats.nonzero_blocks = h.block_words / kBlockWords;
  }
};

/// Scatter nonzero blocks, then inverse bitshuffle.
class ScatterUnshuffleStage final : public Stage {
 public:
  const char* name() const override { return "scatter-unshuffle"; }

  void run(PipelineContext& ctx) const override {
    const size_t nwords = ctx.total_words();
    const size_t nblocks = ctx.total_blocks();
    ctx.shuffled = ctx.pool->acquire(nwords * sizeof(u32), false);
    ctx.flags32 = ctx.pool->acquire(nblocks * sizeof(u32), false);
    ctx.offsets = ctx.pool->acquire(nblocks * sizeof(u32), false);
    ctx.scan_scratch = ctx.pool->acquire(
        2 * scan_chunk_count(nblocks) * sizeof(u32), false);
    // The block section sits at an arbitrary byte offset in the stream;
    // copy it into an aligned buffer before viewing it as u32.
    ctx.blocks = ctx.pool->acquire(ctx.sec_blocks.size(), false);
    if (!ctx.sec_blocks.empty())
      std::memcpy(ctx.blocks.data(), ctx.sec_blocks.data(),
                  ctx.sec_blocks.size());
    decode_blocks(ctx.sec_bit_flags, ctx.blocks.as<u32>(),
                  ctx.shuffled.as<u32>(), ctx.flags32.as<u32>(),
                  ctx.offsets.as<u32>(), ctx.scan_scratch.as<u32>());

    ctx.codes = ctx.pool->acquire(nwords * sizeof(u32), false);
    bitunshuffle_tiles_simd(ctx.shuffled.as<u32>(), ctx.codes.as<u32>(),
                            resolve_simd(ctx.params.simd));
  }
};

/// Inverse quantization + inverse Lorenzo.
class InverseQuantStage final : public Stage {
 public:
  const char* name() const override { return "inverse-quant"; }

  void run(PipelineContext& ctx) const override {
    ctx.pq = ctx.pool->acquire(ctx.count * sizeof(i64), false);
    const std::span<i64> pq = ctx.pq.as<i64>();
    const std::span<const u16> codes =
        std::span<const u16>(ctx.codes.as<u16>()).first(ctx.count);
    if (ctx.params.quant == QuantVersion::V2Optimized) {
      quant_decode_v2(codes, pq);
    } else {
      const i64 radius = ctx.radius;
      parallel_chunks(ctx.count, size_t{1} << 16, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i)
          pq[i] = static_cast<i64>(codes[i]) - radius;  // code 0 fixed below
      });
      // Non-outlier zeros cannot occur: code 0 is reserved for outliers.
      const u8* rec = ctx.sec_outliers.data();
      for (size_t k = 0; k < ctx.header.outlier_count; ++k, rec += 8) {
        const u32 index = load_le<u32>(rec);
        FZ_FORMAT_REQUIRE(index < ctx.count, "outlier index out of range");
        pq[index] = load_le<i32>(rec + sizeof(u32));
      }
    }
    pq[0] += ctx.header.anchor;  // restore the first value's residual
    lorenzo_inverse(pq, ctx.dims, pq, ctx.params.fused_workers);
  }
};

/// The fused decompress hot path (the decode-side twin of
/// FusedQuantShuffleMarkStage): recover block offsets once, then scatter +
/// inverse-bitshuffle + sign-magnitude decode tile by tile per strip —
/// the full shuffled-word and u16-code arrays never materialize.  The
/// inverse Lorenzo runs after, with its boundary offsets propagated in the
/// existing cheap second pass, so the output is byte-identical to the
/// unfused graph for every plan.  V2 streams only (V1's outlier patching
/// needs the whole code array).
class FusedDecodeStage final : public Stage {
 public:
  const char* name() const override { return "fused-decode"; }

  void run(PipelineContext& ctx) const override {
    FZ_REQUIRE(ctx.params.quant == QuantVersion::V2Optimized,
               "fused decompress supports V2 streams only");
    const size_t nblocks = ctx.total_blocks();
    ctx.flags32 = ctx.pool->acquire(nblocks * sizeof(u32), false);
    ctx.offsets = ctx.pool->acquire(nblocks * sizeof(u32), false);
    ctx.scan_scratch = ctx.pool->acquire(
        2 * scan_chunk_count(nblocks) * sizeof(u32), false);
    // The block section sits at an arbitrary byte offset in the stream;
    // copy it into an aligned buffer before viewing it as u32.
    ctx.blocks = ctx.pool->acquire(ctx.sec_blocks.size(), false);
    if (!ctx.sec_blocks.empty())
      std::memcpy(ctx.blocks.data(), ctx.sec_blocks.data(),
                  ctx.sec_blocks.size());
    decode_block_offsets(ctx.sec_bit_flags, ctx.blocks.as<u32>(),
                         ctx.flags32.as<u32>(), ctx.offsets.as<u32>(),
                         ctx.scan_scratch.as<u32>());

    ctx.pq = ctx.pool->acquire(ctx.count * sizeof(i64), false);
    const FusedParallelPlan plan =
        fused_parallel_plan(ctx.dims, ctx.params.fused_workers);
    // Best-effort NUMA placement: touch each strip's output slice in strip
    // shape while the lease's pages are still uncommitted.
    if (ctx.params.numa_first_touch && ctx.pq.fresh())
      fused_first_touch_strips(ctx.pq.bytes(), plan.strips);
    const std::span<i64> pq = ctx.pq.as<i64>();
    fused_scatter_decode_parallel(ctx.flags32.as<u32>(), ctx.offsets.as<u32>(),
                                  ctx.blocks.as<u32>(), pq, plan,
                                  resolve_simd(ctx.params.simd), ctx.sink);
    pq[0] += ctx.header.anchor;  // restore the first value's residual
    lorenzo_inverse(pq, ctx.dims, pq, ctx.params.fused_workers);
  }
};

/// Dequantize + inverse transform into the caller's output storage.
class ReconstructStage final : public Stage {
 public:
  const char* name() const override { return "reconstruct"; }

  void run(PipelineContext& ctx) const override {
    if (ctx.dtype == sizeof(f64)) {
      run_impl<f64>(ctx);
    } else {
      run_impl<f32>(ctx);
    }
  }

 private:
  template <typename T>
  static void run_impl(PipelineContext& ctx) {
    const std::span<T> out = ctx.output_as<T>();
    if constexpr (std::is_same_v<T, f32>) {
      if (ctx.params.f32_fast_quant) {
        dequantize_f32fast(ctx.pq.as<i64>(), ctx.abs_eb, out);
      } else {
        dequantize(ctx.pq.as<i64>(), ctx.abs_eb, out);
      }
    } else {
      dequantize(ctx.pq.as<i64>(), ctx.abs_eb, out);
    }
    if (!ctx.log_transform) return;
    parallel_chunks(out.size(), size_t{1} << 14, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i)
        out[i] = static_cast<T>(std::exp(static_cast<double>(out[i])));
    });
  }
};

}  // namespace

StageGraph make_compress_stages() {
  StageGraph g;
  g.push_back(std::make_unique<ResolveTransformStage>());
  g.push_back(std::make_unique<DualQuantStage>());
  g.push_back(std::make_unique<BitshuffleMarkStage>());
  g.push_back(std::make_unique<EncodeStage>());
  g.push_back(std::make_unique<AssembleStage>());
  return g;
}

StageGraph make_compress_stages_fused() {
  StageGraph g;
  g.push_back(std::make_unique<ResolveTransformStage>());
  g.push_back(std::make_unique<FusedQuantShuffleMarkStage>());
  g.push_back(std::make_unique<EncodeStage>());
  g.push_back(std::make_unique<AssembleStage>());
  return g;
}

StageGraph make_decompress_stages() {
  StageGraph g;
  g.push_back(std::make_unique<ParseHeaderStage>());
  g.push_back(std::make_unique<ScatterUnshuffleStage>());
  g.push_back(std::make_unique<InverseQuantStage>());
  g.push_back(std::make_unique<ReconstructStage>());
  return g;
}

StageGraph make_decompress_stages_fused() {
  StageGraph g;
  g.push_back(std::make_unique<ParseHeaderStage>());
  g.push_back(std::make_unique<FusedDecodeStage>());
  g.push_back(std::make_unique<ReconstructStage>());
  return g;
}

}  // namespace fz
