// Lorenzo predictor over pre-quantized integer data (the prediction half of
// cuSZ's dual-quantization, §2.3 of the paper).
//
// The forward transform replaces every value with its prediction residual,
// where the prediction is the order-1 Lorenzo stencil over *already
// quantized* neighbours (this is what makes dual-quantization exactly
// invertible).  The residual of the d-dimensional Lorenzo predictor is the
// mixed finite difference, so the inverse transform is a separable
// inclusive prefix sum along each axis — O(n), fully parallelizable per
// line, matching the paper's observation that the predictor is O(n) and
// fine-grained parallel.
#pragma once

#include <span>

#include "common/types.hpp"

namespace fz {

/// delta[i] = p[i] - lorenzo_prediction(p, i); in-place overload provided
/// because the pipeline transforms large buffers.
void lorenzo_forward(std::span<const i64> p, Dims dims, std::span<i64> delta);

/// Reconstruct p from delta (exact inverse of lorenzo_forward).  The 1-D
/// x-scan, the single-plane 2-D y-scan, and the 3-D z-scan over flat
/// volumes (fewer y-rows than workers) chunk the prefix chain and
/// propagate per-chunk boundary offsets — line-, row-, and plane-granular
/// respectively — in a cheap second pass (integer adds are associative, so
/// the result is identical to the serial scan for every chunk count).
/// `workers` bounds the chunk parallelism (0 = one chunk per hardware
/// thread).
void lorenzo_inverse(std::span<const i64> delta, Dims dims, std::span<i64> p,
                     size_t workers = 0);

}  // namespace fz
