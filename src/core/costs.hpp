// Analytical device cost sheets for the FZ pipeline stages.
//
// Each stage's CostSheet is assembled from the *measured* data-dependent
// statistics of a real compression run (outlier count, nonzero-block count,
// saturation) plus per-element resource counts derived from the kernel
// structure (§3.2–3.4).  The DeviceModel turns these into modeled kernel
// times for the throughput figures; see DESIGN.md §1 for why this
// reproduces the paper's relative results.
#pragma once

#include <vector>

#include "core/pipeline.hpp"
#include "cudasim/cost_sheet.hpp"

namespace fz {

std::vector<cudasim::CostSheet> fz_compression_costs(const FzStats& st,
                                                     const FzParams& params);
std::vector<cudasim::CostSheet> fz_decompression_costs(const FzStats& st,
                                                       const FzParams& params);

/// Modeled cost of the fused tile pipeline (make_compress_stages_fused):
/// quantize + Lorenzo + encode + bitshuffle + mark in one pass over
/// cache-resident tiles.  Merges the first two sheets of
/// fz_compression_costs into one launch and drops the quantization-code
/// round trip (the u16 array written by pred-quant and re-read by
/// bitshuffle) — exactly the traffic the paper's kernel fusion removes
/// (§3.4).  The arithmetic is unchanged; only the memory system sees the
/// difference.
cudasim::CostSheet fz_fused_tile_cost(const FzStats& st);

/// DRAM bytes the fused tile pipeline avoids relative to the unfused
/// graph: the intermediate code array's write + re-read.
u64 fz_fusion_traffic_saved(const FzStats& st);

/// Extra elements the tile-parallel strip scheme re-prequantizes: every
/// strip after the first recomputes the predecessor values its Lorenzo
/// stencil reaches across the strip boundary (one element in 1-D, a row in
/// 2-D, a plane in 3-D — the linear stencil reach).  Zero for one strip.
u64 fz_halo_recompute_elems(Dims dims, size_t strips);

/// Modeled cost of the tile-parallel fused pass (host strips / the
/// sim_fused_quant_shuffle_mark_strips device kernel): fz_fused_tile_cost
/// plus the halo re-prequantization term — each halo element is one extra
/// input load and pointwise quantization, priced so the device model can
/// weigh strip parallelism against its recompute overhead.
cudasim::CostSheet fz_fused_parallel_cost(const FzStats& st, Dims dims,
                                          size_t strips);

/// Modeled cost of the fused decompress pass (make_decompress_stages_fused
/// / the sim_fused_decode device kernel): scatter + inverse bitshuffle +
/// sign-magnitude decode in one launch over cache-resident tiles — the
/// decode-side mirror of fz_fused_tile_cost.  The intermediate scattered
/// words and u16 codes never touch DRAM.
cudasim::CostSheet fz_fused_decode_cost(const FzStats& st);

/// Modeled cost of the segment-parallel gap-array Huffman decode
/// (substrate/huffman.cpp, sim_huffman_decode_gap) — the
/// codebook_build_serial_ns sibling on the decode side.  `encoded_bytes`
/// is the whole stream including the gap array; `gap_bytes` (see
/// huffman_gap_bytes) is the slice of it that is pure parallelism
/// metadata, priced as per-segment launch/setup work on top of the
/// table-driven per-symbol decode.  Replaces the hand-tuned 40-ops/symbol
/// bit-serial estimate the cusz baseline used before the gap decode
/// existed.
cudasim::CostSheet huffman_gap_decode_cost(size_t count, size_t encoded_bytes,
                                           size_t gap_bytes);

/// Projected cost of the paper's future work (§6, item 1): "fusing all GPU
/// kernels into one".  A single persistent kernel keeps the quantization
/// codes and the shuffled tile in shared memory and resolves the block
/// offsets with a decoupled-lookback scan, so the only DRAM traffic is the
/// input read and the compressed output write, with one launch.  The
/// bench/future_fused_all binary compares this projection against the
/// shipped three-kernel pipeline.
cudasim::CostSheet fz_fully_fused_cost(const FzStats& st);

}  // namespace fz
