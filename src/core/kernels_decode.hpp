// The fused tile-parallel decompress pass — the decode-side twin of the
// PR5 compress fusion (core/kernels_simd.hpp).
//
// The unfused decompress graph materializes two full intermediate arrays
// between the stream and the i64 residuals: the scattered shuffled words
// (u32[total_words]) and the unshuffled code words (u32[total_words]).
// Both are written once and read once — pure DRAM traffic.  This pass
// walks the stream tile by tile instead: scatter one tile's compacted
// blocks into a stack-resident 4 KiB buffer, inverse-bitshuffle it into a
// second 4 KiB buffer, and sign-magnitude-decode the 2048 codes straight
// into the caller's i64 delta array.  Both tile buffers live in L1 for the
// whole pass, so the only DRAM traffic is the compressed sections in and
// the deltas out.
//
// Strips of whole tiles (the same fused_parallel_plan partitioning the
// compress side uses) write disjoint delta slices, so every strip count
// produces identical bytes; the inverse-Lorenzo scans that follow
// (core/lorenzo.hpp) propagate their own chunk boundary offsets, keeping
// the whole decompress byte-identical for every (workers, SIMD tier,
// dtype, rank) combination — pinned by tests/test_fused_decompress.cpp.
#pragma once

#include <span>

#include "common/simd.hpp"
#include "common/types.hpp"
#include "core/kernels_simd.hpp"

namespace fz::telemetry {
class Sink;
}  // namespace fz::telemetry

namespace fz {

/// Fused scatter + inverse bitshuffle + sign-magnitude decode.  `flags32`
/// and `offsets` are the expanded block flags and their exclusive prefix
/// sum (decode_block_offsets, core/encoder.hpp), `blocks` the compacted
/// nonzero payload, and `deltas` the caller's i64 residual array of exactly
/// the field's element count (tile padding never leaves the tile buffer).
/// Tiles are processed in plan.strips disjoint strips; when `sink` is
/// non-null each strip records a "fused-decode-strip" span (strip id, tile
/// count, decoded bytes) on its worker thread.  Output is bit-identical to
/// decode_blocks + bitunshuffle_tiles_simd + quant_decode_v2 for every plan
/// and SIMD tier.
void fused_scatter_decode_parallel(std::span<const u32> flags32,
                                   std::span<const u32> offsets,
                                   std::span<const u32> blocks,
                                   std::span<i64> deltas,
                                   const FusedParallelPlan& plan,
                                   SimdLevel level,
                                   telemetry::Sink* sink = nullptr);

}  // namespace fz
