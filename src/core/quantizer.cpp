#include "core/quantizer.hpp"

#include <atomic>
#include <cfloat>
#include <cmath>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"

namespace fz {

namespace {

// Chunked grain for the trivial per-element loops: one atomic claim per
// 32Ki elements instead of one per element in the task-crew fallback.
constexpr size_t kQuantGrain = size_t{1} << 15;

template <typename T>
void prequantize_impl(std::span<const T> data, double eb, std::span<i64> out) {
  FZ_REQUIRE(eb > 0, "error bound must be positive");
  FZ_REQUIRE(data.size() == out.size(), "prequantize: size mismatch");
  const double inv = 1.0 / (2.0 * eb);
  parallel_chunks(data.size(), kQuantGrain, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i)
      out[i] =
          static_cast<i64>(std::llround(static_cast<double>(data[i]) * inv));
  });
}

template <typename T>
void dequantize_impl(std::span<const i64> p, double eb, std::span<T> out) {
  FZ_REQUIRE(p.size() == out.size(), "dequantize: size mismatch");
  const double scale = 2.0 * eb;
  parallel_chunks(p.size(), kQuantGrain, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i)
      out[i] = static_cast<T>(static_cast<double>(p[i]) * scale);
  });
}

}  // namespace

void prequantize(FloatSpan data, double eb, std::span<i64> out) {
  prequantize_impl(data, eb, out);
}
void prequantize(std::span<const f64> data, double eb, std::span<i64> out) {
  prequantize_impl(data, eb, out);
}

void dequantize(std::span<const i64> p, double eb, std::span<f32> out) {
  dequantize_impl(p, eb, out);
}
void dequantize(std::span<const i64> p, double eb, std::span<f64> out) {
  dequantize_impl(p, eb, out);
}

void dequantize_f32fast(std::span<const i64> p, double eb,
                        std::span<f32> out) {
  FZ_REQUIRE(p.size() == out.size(), "dequantize: size mismatch");
  const double scale = 2.0 * eb;
  const float scalef = static_cast<float>(scale);
  // The fast product needs a normal, finite f32 scale; fall back to the
  // exact expression when 2·eb rounds to zero/subnormal/inf in f32.
  if (!(scale >= FLT_MIN && scale <= FLT_MAX)) {
    dequantize_impl(p, eb, out);
    return;
  }
  constexpr i64 kExactF32 = i64{1} << 24;  // float(p) exact below this
  parallel_chunks(p.size(), kQuantGrain, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      const i64 v = p[i];
      out[i] = (v > -kExactF32 && v < kExactF32)
                   ? static_cast<f32>(v) * scalef
                   : static_cast<f32>(static_cast<double>(v) * scale);
    }
  });
}

size_t quant_encode_v2(std::span<const i64> deltas, std::span<u16> codes) {
  FZ_REQUIRE(codes.size() == deltas.size(), "quant: size mismatch");
  std::atomic<size_t> saturated{0};
  parallel_chunks(deltas.size(), 1 << 16, [&](size_t b, size_t e) {
    size_t local_sat = 0;
    for (size_t i = b; i < e; ++i) {
      const i64 d = deltas[i];
      if (sign_magnitude_saturates(d)) ++local_sat;
      // Narrowing to i32 after saturation check keeps the helper simple.
      const i64 clipped =
          d > kMaxMagnitude16 ? kMaxMagnitude16
                              : (d < -kMaxMagnitude16 ? -kMaxMagnitude16 : d);
      codes[i] = sign_magnitude_encode(static_cast<i32>(clipped));
    }
    if (local_sat != 0) saturated.fetch_add(local_sat, std::memory_order_relaxed);
  });
  return saturated.load();
}

QuantV2Result quant_encode_v2(std::span<const i64> deltas) {
  QuantV2Result r;
  r.codes.resize(deltas.size());
  r.saturated = quant_encode_v2(deltas, r.codes);
  return r;
}

void quant_decode_v2(std::span<const u16> codes, std::span<i64> deltas) {
  FZ_REQUIRE(codes.size() == deltas.size(), "quant: size mismatch");
  parallel_chunks(codes.size(), size_t{1} << 16, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) deltas[i] = sign_magnitude_decode(codes[i]);
  });
}

void quant_encode_v1(std::span<const i64> deltas, u32 radius,
                     std::span<u16> codes, std::vector<Outlier>& outliers) {
  FZ_REQUIRE(radius >= 2 && radius <= 0x4000, "bad radius");
  FZ_REQUIRE(codes.size() == deltas.size(), "quant: size mismatch");
  outliers.clear();
  // Outlier collection is order-dependent; run sequentially per chunk and
  // merge (outliers are rare so the merge is cheap).
  std::vector<std::vector<Outlier>> partial(
      static_cast<size_t>(max_threads()) + 1);
  const size_t chunk = div_ceil(deltas.size(), partial.size());
  parallel_for(0, partial.size(), [&](size_t c) {
    const size_t b = c * chunk;
    const size_t e = std::min(b + chunk, deltas.size());
    for (size_t i = b; i < e; ++i) {
      const i64 d = deltas[i];
      if (d > -static_cast<i64>(radius) && d < static_cast<i64>(radius)) {
        codes[i] = static_cast<u16>(d + radius);
      } else {
        codes[i] = 0;
        partial[c].push_back({i, d});
      }
    }
  });
  for (const auto& p : partial)
    outliers.insert(outliers.end(), p.begin(), p.end());
}

QuantV1Result quant_encode_v1(std::span<const i64> deltas, u32 radius) {
  QuantV1Result r;
  r.radius = radius;
  r.codes.resize(deltas.size());
  quant_encode_v1(deltas, radius, r.codes, r.outliers);
  return r;
}

void quant_decode_v1(const QuantV1Result& q, std::span<i64> deltas) {
  FZ_REQUIRE(q.codes.size() == deltas.size(), "quant: size mismatch");
  const i64 radius = q.radius;
  parallel_for(0, q.codes.size(), [&](size_t i) {
    deltas[i] = static_cast<i64>(q.codes[i]) - radius;  // code 0 fixed up below
  });
  for (const Outlier& o : q.outliers) deltas[o.index] = o.delta;
  // Non-outlier zeros cannot occur: code 0 is reserved for outliers.
  return;
}

}  // namespace fz
