#include "core/costs.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "core/bitshuffle.hpp"

namespace fz {

namespace {

using cudasim::CostSheet;

// Per-element resource counts, derived from the kernel structure:
//
// pred-quant v2 (§3.2): one fused kernel; each thread loads its f32, rounds,
// computes the Lorenzo stencil from neighbours (re-loaded through cache /
// shared tiles — charged as ops, not extra DRAM), sign-magnitude packs and
// stores a u16.  No branches.
constexpr double kPredQuantV2Ops = 14.0;
// pred-quant v1 adds the radius range check (warp-divergent on real data),
// the +radius shift, and the atomic outlier compaction; cuSZ also emits
// 4-byte quantization codes instead of u16.
constexpr double kPredQuantV1Ops = 24.0;
constexpr double kAtomicOutlierNs = 0.05;  // amortized atomicAdd slot grab

// bitshuffle (§3.3): per 32-word unit a warp does one coalesced load, 32
// ballot rounds (each: mask test + ballot + one shared write), and one
// coalesced store.  The stage stays memory-bound on both devices — the
// paper's FZ throughput tracks DRAM bandwidth across A100/A4000.
constexpr double kBitshuffleOpsPerWord = 45.0;
constexpr double kBitshuffleSmemTxPerWord = 1.35;

// mark (encode phase 1): iterate each 16-byte block, OR the words, ballot
// the byte flags into bit flags.
constexpr double kMarkOpsPerBlock = 10.0;

// encode phase 2: CUB ExclusiveSum over the byte flags (two sub-kernels)
// plus the compaction kernel.
constexpr double kScanOpsPerBlock = 6.0;
constexpr double kCompactOpsPerBlock = 8.0;

// Gap-array Huffman decode: with the K-bit lookup table one shared-memory
// access resolves a whole code (two for codes past the primary width), so
// a symbol costs ~8 ops — peek, table hit, length extract, bit-cursor
// advance — versus the ~40 of the bit-at-a-time canonical walk the old
// chunk-serial estimate charged.
constexpr double kHuffGapDecodeOpsPerSym = 8.0;
constexpr double kHuffGapDecodeSmemTxPerSym = 2.0;
// Per-segment setup: map the segment to its chunk, load its gap offset,
// and align the bit cursor before the first symbol.
constexpr double kHuffGapSegmentSetupOps = 24.0;

}  // namespace

std::vector<CostSheet> fz_compression_costs(const FzStats& st,
                                            const FzParams& params) {
  const double n = static_cast<double>(st.count);
  const size_t words = round_up(st.count, kTileBytes / sizeof(u16)) / 2;
  const double w = static_cast<double>(words);
  const double blocks = static_cast<double>(st.total_blocks);
  const double nz = static_cast<double>(st.nonzero_blocks);

  std::vector<CostSheet> costs;

  // ---- stage 1: pred-quant ------------------------------------------------
  CostSheet pq;
  pq.kernel_launches = 1;
  pq.global_bytes_read = static_cast<u64>(n) * 4;
  if (params.quant == QuantVersion::V2Optimized) {
    pq.name = "pred-quant-v2";
    pq.global_bytes_written = static_cast<u64>(n) * 2;
    pq.thread_ops = static_cast<u64>(n * kPredQuantV2Ops);
  } else {
    pq.name = "pred-quant-v1";
    // cuSZ's original kernel writes the u16 codes AND a dense full-length
    // outlier value array (compacted later) — the "amount of memory
    // transaction [that] hinders the performance" (§3.1); this is the bulk
    // of v2's up-to-1.7x advantage.
    pq.global_bytes_written =
        static_cast<u64>(n) * (2 + 4) + static_cast<u64>(st.outliers) * 12;
    pq.thread_ops = static_cast<u64>(n * kPredQuantV1Ops);
    // Warps containing at least one out-of-radius residual replay both
    // branch sides; bound by the warp count.
    pq.divergent_branches = std::min<u64>(static_cast<u64>(st.outliers),
                                          static_cast<u64>(n) / 32);
    pq.serial_ns = kAtomicOutlierNs * static_cast<double>(st.outliers);
  }
  costs.push_back(pq);

  // ---- stage 2: bitshuffle + mark ----------------------------------------
  const u64 flag_bytes = static_cast<u64>(blocks) + static_cast<u64>(blocks) / 8;
  if (params.fused_bitshuffle_mark) {
    CostSheet bs;
    bs.name = "bitshuffle-mark-fused";
    bs.kernel_launches = 1;
    bs.global_bytes_read = words * sizeof(u32);
    bs.global_bytes_written = words * sizeof(u32) + flag_bytes;
    bs.thread_ops =
        static_cast<u64>(w * kBitshuffleOpsPerWord + blocks * kMarkOpsPerBlock);
    bs.shared_transactions = static_cast<u64>(w * kBitshuffleSmemTxPerWord);
    costs.push_back(bs);
  } else {
    CostSheet bs;
    bs.name = "bitshuffle";
    bs.kernel_launches = 1;
    bs.global_bytes_read = words * sizeof(u32);
    bs.global_bytes_written = words * sizeof(u32);
    bs.thread_ops = static_cast<u64>(w * kBitshuffleOpsPerWord);
    bs.shared_transactions = static_cast<u64>(w * kBitshuffleSmemTxPerWord);
    costs.push_back(bs);
    CostSheet mark;
    mark.name = "mark";
    mark.kernel_launches = 1;
    // The split kernel must re-read the shuffled words from global memory —
    // the traffic the fusion eliminates (§3.4).
    mark.global_bytes_read = words * sizeof(u32);
    mark.global_bytes_written = flag_bytes;
    mark.thread_ops = static_cast<u64>(blocks * kMarkOpsPerBlock);
    costs.push_back(mark);
  }

  // ---- stage 3: prefix-sum + encode ---------------------------------------
  CostSheet enc;
  enc.name = "prefix-sum-encode";
  enc.kernel_launches = 3;  // scan upsweep, scan downsweep, compaction
  // The compact kernel's data loads are predicated on the block flag, so
  // only nonzero blocks move — this is why the v2 quantization (fewer
  // nonzero blocks) speeds the encode up by up to ~1.9x (paper §4.5).
  enc.global_bytes_read = static_cast<u64>(blocks) * 3  // flags (scan x2 + enc)
                          + static_cast<u64>(blocks) * sizeof(u32) * 2  // offsets
                          + static_cast<u64>(nz) * kBlockWords * sizeof(u32);
  enc.global_bytes_written = static_cast<u64>(blocks) * sizeof(u32)  // offsets
                             + static_cast<u64>(nz) * kBlockWords * sizeof(u32);
  enc.thread_ops =
      static_cast<u64>(blocks * (kScanOpsPerBlock + kCompactOpsPerBlock));
  costs.push_back(enc);

  return costs;
}

CostSheet fz_fused_tile_cost(const FzStats& st) {
  const double n = static_cast<double>(st.count);
  const size_t words = round_up(st.count, kTileBytes / sizeof(u16)) / 2;
  const double w = static_cast<double>(words);
  const double blocks = static_cast<double>(st.total_blocks);

  CostSheet c;
  c.name = "fused-quant-shuffle-mark";
  c.kernel_launches = 1;
  // Input once; shuffled words + flags out.  The u16 codes live only in
  // the tile working set (shared memory on the device, L1 on the host).
  c.global_bytes_read = static_cast<u64>(n) * 4;
  c.global_bytes_written = static_cast<u64>(words) * sizeof(u32) +
                           static_cast<u64>(blocks) +
                           static_cast<u64>(blocks) / 8;
  c.thread_ops = static_cast<u64>(n * kPredQuantV2Ops +
                                  w * kBitshuffleOpsPerWord +
                                  blocks * kMarkOpsPerBlock);
  c.shared_transactions = static_cast<u64>(w * kBitshuffleSmemTxPerWord);
  return c;
}

u64 fz_halo_recompute_elems(Dims dims, size_t strips) {
  if (strips <= 1) return 0;
  const size_t reach = dims.rank() == 1   ? 1
                       : dims.rank() == 2 ? dims.x + 1
                                          : dims.x * dims.y + dims.x + 1;
  return static_cast<u64>(strips - 1) * reach;
}

CostSheet fz_fused_parallel_cost(const FzStats& st, Dims dims, size_t strips) {
  CostSheet c = fz_fused_tile_cost(st);
  c.name = "fused-quant-shuffle-mark-strips";
  const u64 halo = fz_halo_recompute_elems(dims, strips);
  // One extra f32 read plus the pointwise quantization (2 ops) per halo
  // element; the Lorenzo stencil itself is not recomputed.
  c.global_bytes_read += halo * sizeof(f32);
  c.thread_ops += halo * 2;
  return c;
}

CostSheet fz_fused_decode_cost(const FzStats& st) {
  const double n = static_cast<double>(st.count);
  const size_t words = round_up(st.count, kTileBytes / sizeof(u16)) / 2;
  const double w = static_cast<double>(words);
  const double blocks = static_cast<double>(st.total_blocks);
  const double nz = static_cast<double>(st.nonzero_blocks);

  CostSheet c;
  c.name = "fused-decode";
  c.kernel_launches = 1;
  // Flags + offsets + compacted payload in; i64 residuals out.  The
  // scattered words and u16 codes live only in the tile working set, the
  // decode-side mirror of fz_fused_tile_cost's saved traffic.
  c.global_bytes_read = static_cast<u64>(blocks) + static_cast<u64>(blocks) / 8 +
                        static_cast<u64>(blocks) * sizeof(u32) +
                        static_cast<u64>(nz) * kBlockWords * sizeof(u32);
  c.global_bytes_written = static_cast<u64>(n) * sizeof(i64);
  // Offset scan + scatter, the inverse shuffle's ballot rounds, and the
  // two-op sign-magnitude decode per element.
  c.thread_ops = static_cast<u64>(
      blocks * (kScanOpsPerBlock + kCompactOpsPerBlock) +
      w * kBitshuffleOpsPerWord + n * 2);
  c.shared_transactions = static_cast<u64>(w * kBitshuffleSmemTxPerWord);
  return c;
}

u64 fz_fusion_traffic_saved(const FzStats& st) {
  // pred-quant's code-array write (2 bytes/value) plus bitshuffle's
  // re-read of the same array (padded to a tile boundary).
  const size_t words = round_up(st.count, kTileBytes / sizeof(u16)) / 2;
  return static_cast<u64>(st.count) * 2 +
         static_cast<u64>(words) * sizeof(u32);
}

CostSheet huffman_gap_decode_cost(size_t count, size_t encoded_bytes,
                                  size_t gap_bytes) {
  CostSheet c;
  c.name = "huffman-decode-gap";
  c.kernel_launches = 1;
  // The whole stream is read once (the gap array is part of it — that is
  // the storage the format spends); decoded symbols are written once.
  c.global_bytes_read = encoded_bytes;
  c.global_bytes_written = static_cast<u64>(count) * sizeof(u16);
  // One thread per segment: the segment count is recoverable from the gap
  // metadata (one u32 per segment after each chunk's first).
  const u64 segments = gap_bytes / sizeof(u32) + 1;
  c.thread_ops = static_cast<u64>(static_cast<double>(count) *
                                      kHuffGapDecodeOpsPerSym +
                                  static_cast<double>(segments) *
                                      kHuffGapSegmentSetupOps);
  c.shared_transactions = static_cast<u64>(static_cast<double>(count) *
                                           kHuffGapDecodeSmemTxPerSym);
  return c;
}

CostSheet fz_fully_fused_cost(const FzStats& st) {
  const double n = static_cast<double>(st.count);
  const size_t words = round_up(st.count, kTileBytes / sizeof(u16)) / 2;
  const double w = static_cast<double>(words);
  const double blocks = static_cast<double>(st.total_blocks);
  const double nz = static_cast<double>(st.nonzero_blocks);

  CostSheet c;
  c.name = "fz-fused-all";
  c.kernel_launches = 1;
  // Input once; output = flags + compacted blocks only.  The intermediate
  // code and shuffled-word arrays never touch DRAM.
  c.global_bytes_read = static_cast<u64>(n) * 4;
  c.global_bytes_written = static_cast<u64>(blocks) + static_cast<u64>(blocks) / 8 +
                           static_cast<u64>(nz) * kBlockWords * sizeof(u32);
  // All three stages' arithmetic still runs, plus the decoupled-lookback
  // scan bookkeeping per tile.
  c.thread_ops = static_cast<u64>(n * kPredQuantV2Ops + w * kBitshuffleOpsPerWord +
                                  blocks * (kMarkOpsPerBlock + kScanOpsPerBlock +
                                            kCompactOpsPerBlock));
  c.shared_transactions = static_cast<u64>(w * kBitshuffleSmemTxPerWord * 1.5);
  // Lookback chains serialize on tile-prefix availability.
  c.serial_ns = blocks / kBlocksPerTile * 1.0;
  return c;
}

std::vector<CostSheet> fz_decompression_costs(const FzStats& st,
                                              const FzParams& params) {
  // The decompression pipeline mirrors compression (paper §4.4: "highly
  // symmetrical ... throughput nearly identical"): scatter blocks, inverse
  // bitshuffle, inverse Lorenzo + dequantization.
  std::vector<CostSheet> costs = fz_compression_costs(st, params);
  std::reverse(costs.begin(), costs.end());
  for (auto& c : costs) {
    std::swap(c.global_bytes_read, c.global_bytes_written);
    c.name = "inv-" + c.name;
  }
  return costs;
}

}  // namespace fz
