// fz::Codec — a reusable compression/decompression engine.
//
// A Codec owns a BufferPool plus the compression and decompression stage
// graphs, and threads one PipelineContext through them per call.  The first
// call on each path allocates the scratch buffers (pool misses); every
// subsequent call of a same-shaped field is answered entirely from the pool
// (zero scratch heap allocations — see BufferPool::Stats and the
// CodecTest.SteadyStateDoesNotAllocate test).
//
// The one-shot fz_compress/fz_decompress functions in core/pipeline.hpp are
// thin wrappers that build a throwaway Codec; use a long-lived Codec when
// compressing many fields (a service, the chunked container, benchmarks).
//
// Thread-safety: a Codec is a single-threaded engine (one context, one
// pool).  Use one Codec per thread — fz_compress_chunked does exactly that
// for its parallel chunk workers.  The telemetry sink is the one shared
// piece: any number of codecs on any threads may point at the same
// fz::telemetry::Sink (it must be thread-safe, and fz::telemetry::Sink is —
// each thread appends spans to its own lock-free recorder and the recorders
// are merged only when the sink is flushed/exported).  This contract is
// exercised under ThreadSanitizer by test_threading.cpp
// (Threading.SharedTelemetrySinkAcrossWorkerCodecs).
#pragma once

#include <span>
#include <vector>

#include "common/pool.hpp"
#include "core/pipeline.hpp"
#include "core/stages.hpp"
#include "telemetry/telemetry.hpp"

namespace fz {

class Codec {
 public:
  explicit Codec(FzParams params = {}) ;

  // The pool (mutex) and the in-flight context pin a Codec in place.
  Codec(const Codec&) = delete;
  Codec& operator=(const Codec&) = delete;

  FzCompressed compress(FloatSpan data, Dims dims);
  FzCompressed compress(std::span<const f64> data, Dims dims);

  FzDecompressed decompress(ByteSpan stream);
  FzDecompressed64 decompress_f64(ByteSpan stream);

  /// Decompress into caller storage (out.size() must equal the stream's
  /// count — the header is validated against it).  Returns the stream's
  /// dims.  This is the allocation-free path the chunked container uses to
  /// write each chunk directly into its slab of the full field.
  Dims decompress_into(ByteSpan stream, std::span<f32> out,
                       std::vector<cudasim::CostSheet>* stage_costs = nullptr);
  Dims decompress_into(ByteSpan stream, std::span<f64> out,
                       std::vector<cudasim::CostSheet>* stage_costs = nullptr);

  const FzParams& params() const { return params_; }
  FzParams& params() { return params_; }

  /// The scratch pool — exposed for stats (tests, capacity planning) and
  /// trim().
  BufferPool& pool() { return pool_; }
  const BufferPool& pool() const { return pool_; }

  /// The resolved telemetry sink: FzParams::telemetry if set, else the
  /// FZ_TRACE env sink, else nullptr (all hooks disabled).
  telemetry::Sink* telemetry_sink() const { return sink_; }

 private:
  template <typename T>
  FzCompressed compress_impl(std::span<const T> data, Dims dims);
  template <typename T>
  Dims decompress_into_impl(ByteSpan stream, std::span<T> out,
                            std::vector<cudasim::CostSheet>* stage_costs);

  FzParams params_;
  telemetry::Sink* sink_;
  BufferPool pool_;
  StageGraph compress_stages_;
  StageGraph compress_stages_fused_;
  StageGraph decompress_stages_;
  PipelineContext ctx_;
};

}  // namespace fz
