// fz::Codec — a reusable compression/decompression engine.
//
// A Codec owns a BufferPool plus the compression and decompression stage
// graphs, and threads one PipelineContext through them per call.  The first
// call on each path allocates the scratch buffers (pool misses); every
// subsequent call of a same-shaped field is answered entirely from the pool
// (zero scratch heap allocations — see BufferPool::Stats and the
// CodecTest.SteadyStateDoesNotAllocate test).
//
// The one-shot fz_compress/fz_decompress functions in core/pipeline.hpp are
// thin wrappers that build a throwaway Codec; use a long-lived Codec when
// compressing many fields (a service, the chunked container, benchmarks).
//
// Thread-safety: a Codec is a single-threaded engine (one context, one
// pool).  Use one Codec per thread — fz_compress_chunked does exactly that
// for its parallel chunk workers.  The telemetry sink is the one shared
// piece: any number of codecs on any threads may point at the same
// fz::telemetry::Sink (it must be thread-safe, and fz::telemetry::Sink is —
// each thread appends spans to its own lock-free recorder and the recorders
// are merged only when the sink is flushed/exported).  This contract is
// exercised under ThreadSanitizer by test_threading.cpp
// (Threading.SharedTelemetrySinkAcrossWorkerCodecs).
#pragma once

#include <span>
#include <vector>

#include "common/pool.hpp"
#include "common/status.hpp"
#include "core/pipeline.hpp"
#include "core/stages.hpp"
#include "telemetry/telemetry.hpp"

namespace fz {

class Codec {
 public:
  explicit Codec(FzParams params = {}) ;

  // The pool (mutex) and the in-flight context pin a Codec in place.
  Codec(const Codec&) = delete;
  Codec& operator=(const Codec&) = delete;

  FzCompressed compress(FloatSpan data, Dims dims);
  FzCompressed compress(std::span<const f64> data, Dims dims);

  FzDecompressed decompress(ByteSpan stream);
  FzDecompressed64 decompress_f64(ByteSpan stream);

  // ---- non-throwing boundary ------------------------------------------------
  //
  // The try_* family is the service-facing API: identical work, but every
  // failure comes back as an fz::Status instead of an exception
  // (ParamError → InvalidParams, FormatError → InvalidStream, anything
  // else → Internal; the mapping lives in one place,
  // detail::status_from_current_exception).  fz::Service uses these as its
  // only error path, so no exception ever crosses the service boundary.
  //
  // try_compress reuses `out`: bytes and stats are overwritten with the
  // vector's capacity retained, so a warm steady-state call allocates
  // nothing.  Unlike compress(), it does NOT fill out.stage_costs (the
  // device cost sheets allocate per call; a service loop has no use for
  // them) — out.stage_costs is cleared, not populated.  On failure `out`
  // holds no stream (bytes cleared).

  Status try_compress(FloatSpan data, Dims dims, FzCompressed& out) noexcept;
  Status try_compress(std::span<const f64> data, Dims dims,
                      FzCompressed& out) noexcept;

  /// Decompress into `out.data`, resizing it to the stream's count (capacity
  /// is reused on repeat calls).  Does not fill out.stage_costs.
  Status try_decompress(ByteSpan stream, FzDecompressed& out) noexcept;
  Status try_decompress(ByteSpan stream, FzDecompressed64& out) noexcept;

  /// Allocation-free variant: decompress into caller storage (out.size()
  /// must equal the stream's count).  The stream's dims are written to
  /// *dims when non-null.
  Status try_decompress_into(ByteSpan stream, std::span<f32> out,
                             Dims* dims = nullptr) noexcept;
  Status try_decompress_into(ByteSpan stream, std::span<f64> out,
                             Dims* dims = nullptr) noexcept;

  /// Decompress into caller storage (out.size() must equal the stream's
  /// count — the header is validated against it).  Returns the stream's
  /// dims.  This is the allocation-free path the chunked container uses to
  /// write each chunk directly into its slab of the full field.
  Dims decompress_into(ByteSpan stream, std::span<f32> out,
                       std::vector<cudasim::CostSheet>* stage_costs = nullptr);
  Dims decompress_into(ByteSpan stream, std::span<f64> out,
                       std::vector<cudasim::CostSheet>* stage_costs = nullptr);

  const FzParams& params() const { return params_; }
  FzParams& params() { return params_; }

  /// The scratch pool — exposed for stats (tests, capacity planning) and
  /// trim().
  BufferPool& pool() { return pool_; }
  const BufferPool& pool() const { return pool_; }

  /// The resolved telemetry sink: FzParams::telemetry if set, else the
  /// FZ_TRACE env sink, else nullptr (all hooks disabled).
  telemetry::Sink* telemetry_sink() const { return sink_; }

 private:
  /// Compress into `out` (bytes/stats overwritten, capacities reused).
  /// Fills out.stage_costs only when `with_costs`.
  template <typename T>
  void compress_impl(std::span<const T> data, Dims dims, FzCompressed& out,
                     bool with_costs);
  template <typename T>
  Dims decompress_into_impl(ByteSpan stream, std::span<T> out,
                            std::vector<cudasim::CostSheet>* stage_costs);
  template <typename T>
  Status try_decompress_impl(ByteSpan stream, std::vector<T>& data, Dims& dims,
                             unsigned expected_dtype_bytes) noexcept;

  FzParams params_;
  telemetry::Sink* sink_;
  BufferPool pool_;
  StageGraph compress_stages_;
  StageGraph compress_stages_fused_;
  StageGraph decompress_stages_;
  StageGraph decompress_stages_fused_;
  PipelineContext ctx_;
};

}  // namespace fz
