// The FZ compressor: optimized dual-quantization → bitshuffle → fast
// sparsification encoding (paper §3, Fig. 1).
//
// The engine behind everything here is fz::Codec (core/codec.hpp); the
// fz_compress/fz_decompress free functions are thin conveniences that build
// a throwaway Codec per call.  Hold a Codec when compressing repeatedly —
// its scratch pool makes steady-state calls allocation-free.  Include
// "fz.hpp" to get both plus the rest of the public surface.
//
// Usage:
//   fz::FzParams params;
//   params.eb = fz::ErrorBound::relative(1e-3);
//   auto compressed = fz::fz_compress(field.values(), field.dims, params);
//   auto restored   = fz::fz_decompress(compressed.bytes);
//
// The compressed stream is self-describing (dims, error bound, and quant
// version travel in the header).  Every compression also returns the
// data-dependent statistics (saturation count, nonzero-block count, ...)
// and the per-stage device cost sheets consumed by the benchmark figures.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/simd.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "core/quantizer.hpp"
#include "cudasim/cost_sheet.hpp"

namespace fz::telemetry {
class Sink;
}  // namespace fz::telemetry

namespace fz {

enum class QuantVersion : u8 {
  V1Original = 1,   ///< cuSZ-style: radius shift + outlier list (ablation)
  V2Optimized = 2,  ///< FZ: sign-magnitude, no outliers (the default)
};

/// One problem found by FzParams::validate(): which field is wrong and why.
struct ParamIssue {
  const char* field;    ///< parameter name ("eb", "radius", "dims", ...)
  std::string message;  ///< human-readable explanation
};

/// Thrown when a Codec is built from (or run with) invalid parameters.  One
/// error type for every misuse, carrying the full structured issue list, so
/// callers catch configuration mistakes up front instead of deep-in-stage
/// Error throws.
class ParamError : public Error {
 public:
  explicit ParamError(std::vector<ParamIssue> issues);
  const std::vector<ParamIssue>& issues() const { return issues_; }

 private:
  std::vector<ParamIssue> issues_;
};

struct FzParams {
  ErrorBound eb = ErrorBound::relative(1e-3);
  QuantVersion quant = QuantVersion::V2Optimized;
  /// Fuse bitshuffle with encode phase 1 (paper §3.4).  The output is
  /// identical either way; the flag selects which cost sheet the device
  /// model sees (fused saves one global-memory round trip).
  bool fused_bitshuffle_mark = true;
  /// V1-only: quantization radius.
  u32 radius = 512;
  /// Host execution: compress through the fused tile pipeline (quantize +
  /// Lorenzo + encode + bitshuffle + mark in one cache-resident pass, V2
  /// only; other configurations fall back to the unfused graph).  The
  /// stream bytes are identical either way — pinned by
  /// CodecTest.FusedGraphMatchesUnfusedByteForByte.
  bool fused_host_graph = true;
  /// Host execution: worker count for the tile-parallel fused pass (and the
  /// chunk-parallel inverse-Lorenzo scans on decompress).  0 = one strip per
  /// hardware thread.  Every worker count emits byte-identical streams —
  /// pinned by tests/test_fused_parallel.cpp — so this is purely a
  /// performance knob.
  size_t fused_workers = 0;
  /// Host execution, ablation/reference knob: run the fused pass serially
  /// over tiles (the pre-PR5 streaming implementation) instead of the
  /// tile-parallel halo-recompute strips.  Output bytes are identical; the
  /// bench harness uses this as the fused-serial baseline.
  bool fused_serial_tiles = false;
  /// Host execution: decompress through the fused tile-parallel decode
  /// graph (scatter + inverse bitshuffle + sign-magnitude decode tile by
  /// tile per strip; the shuffled-word and u16-code arrays never
  /// materialize).  V2 streams only — V1/legacy streams are routed to the
  /// unfused graph automatically.  Output is byte-identical either way —
  /// pinned by tests/test_fused_decompress.cpp.
  bool fused_decompress = true;
  /// Host execution: before the tile-parallel passes fill a fresh (pool
  /// miss) output lease, touch its pages in strip shape so first-touch
  /// policy places each strip's pages on the node of the worker that will
  /// process it.  Best-effort placement hint: a no-op on single-node boxes
  /// (the common case) and on recycled leases, whose pages already belong
  /// to whichever node touched them first.
  bool numa_first_touch = true;
  /// Host execution: SIMD tier for the vectorized kernels.  Auto resolves
  /// from the FZ_SIMD env var / CPUID; every tier is bit-identical, so this
  /// never changes the stream either.
  SimdDispatch simd = SimdDispatch::Auto;
  /// f32 inputs only: quantize with a float multiply + lrintf instead of
  /// the double-promoted llround.  A margin test routes any value whose
  /// scaled magnitude nears a rounding boundary (or 2^21) through the
  /// exact path, so compressed streams are byte-identical to the default
  /// path.  On decompress, reconstruction uses a float product while
  /// |p| < 2^24 — values may differ from the default path by an f32 ulp
  /// (the bound still holds up to f32 representation precision), which is
  /// why this stays opt-in.
  bool f32_fast_quant = false;
  /// f64 inputs only: the same margin-tested fast-quant scheme, narrowing
  /// the input to f32 before the float multiply + lrintf.  The extra
  /// narrowing rounding widens the margin, and any value whose f32 image
  /// is subnormal-but-nonzero takes the exact path, so compressed streams
  /// stay byte-identical to the default path.  Reconstruction is unchanged
  /// (exact double arithmetic), so unlike f32_fast_quant this flag never
  /// affects decompressed values.
  bool f64_fast_quant = false;
  /// Observability sink (src/telemetry/): when set, every stage, chunk, and
  /// pool interaction records spans/counters into it.  The sink must be
  /// thread-safe (fz::telemetry::Sink is); it must outlive every codec that
  /// holds it.  When null, telemetry::active_sink() is consulted instead
  /// (the innermost ScopedSink, else the FZ_TRACE env-var sink); with no
  /// sink anywhere, all hooks reduce to one branch-on-nullptr and the
  /// output stream is byte-identical.
  telemetry::Sink* telemetry = nullptr;

  /// Check parameters for consistency; returns the (possibly empty) issue
  /// list rather than throwing so callers can render all problems at once.
  /// fz::Codec calls this at construction and throws ParamError on any
  /// issue — misuse fails fast with one error type instead of deep-in-stage
  /// throws.
  std::vector<ParamIssue> validate() const;
  /// Also validate a concrete field shape (zero extents, count overflow).
  std::vector<ParamIssue> validate(Dims dims) const;
};

struct FzStats {
  size_t count = 0;            ///< number of f32 values
  size_t input_bytes = 0;
  size_t compressed_bytes = 0;
  double abs_eb = 0;           ///< resolved absolute error bound
  size_t saturated = 0;        ///< V2: clipped residuals
  size_t outliers = 0;         ///< V1: out-of-radius residuals
  size_t total_blocks = 0;
  size_t nonzero_blocks = 0;
  double ratio() const {
    return compressed_bytes == 0
               ? 0
               : static_cast<double>(input_bytes) / compressed_bytes;
  }
  double bitrate() const { return ratio() == 0 ? 0 : 32.0 / ratio(); }
};

struct FzCompressed {
  std::vector<u8> bytes;
  FzStats stats;
  /// Stage cost sheets, in pipeline order: "pred-quant",
  /// "bitshuffle-mark" (fused) or "bitshuffle"+"mark" (split),
  /// "prefix-sum-encode".
  std::vector<cudasim::CostSheet> stage_costs;
};

FzCompressed fz_compress(FloatSpan data, Dims dims, const FzParams& params);

/// Double-precision input: the pipeline is identical (pre-quantization is
/// the only dtype-dependent stage), the stream records the dtype, and the
/// u16 residual codes impose the same saturation behaviour.  Note that a
/// very tight bound relative to f64 precision will saturate residuals the
/// way it never could for f32 — check FzStats::saturated.
FzCompressed fz_compress_f64(std::span<const f64> data, Dims dims,
                             const FzParams& params);

struct FzDecompressed {
  std::vector<f32> data;
  Dims dims;
  std::vector<cudasim::CostSheet> stage_costs;
};

struct FzDecompressed64 {
  std::vector<f64> data;
  Dims dims;
  std::vector<cudasim::CostSheet> stage_costs;
};

/// Decompress an f32 stream (throws FormatError on an f64 stream).
FzDecompressed fz_decompress(ByteSpan stream);
/// Decompress an f64 stream (throws FormatError on an f32 stream).
FzDecompressed64 fz_decompress_f64(ByteSpan stream);

/// One validated chunk-index record of a chunked container: where the
/// chunk's bytes live, how large they are, and which slab of the field they
/// reconstruct.  Parsed from the v2 on-stream index (core/format.hpp), or
/// synthesized from the legacy v1 size table plus the slab plan.
struct ChunkEntry {
  size_t offset = 0;       ///< byte offset of the chunk stream in the container
  size_t bytes = 0;        ///< compressed byte size
  size_t elem_offset = 0;  ///< first element's index in the flattened field
  Dims dims;               ///< chunk dims (slab of the slowest-varying axis)
};

/// Everything a stream's header declares, fully validated: identity (dims,
/// dtype, count), compression parameters (error bound, quant version,
/// transform), format version, and the byte layout of every section.  The
/// structured replacement for the loose fz_inspect output — returned by
/// fz::inspect, consumed by the CLI `info` command and any service that
/// routes streams without decompressing them.
///
/// fz::inspect also accepts chunked containers: `container_version` is then
/// nonzero, `chunks` holds the validated chunk index, the identity fields
/// describe the whole field, the compression parameters come from chunk 0
/// (uniform across chunks by construction), and the section byte counts are
/// sums over the chunks.
struct StreamInfo {
  Dims dims;
  size_t count = 0;
  unsigned dtype_bytes = 4;   ///< 4 = f32 stream, 8 = f64 stream
  unsigned format_version = 0;
  QuantVersion quant = QuantVersion::V2Optimized;
  double abs_eb = 0;
  bool log_transform = false;  ///< point-wise relative bound (log domain)
  u32 radius = 0;              ///< V1 only

  // Section layout, in stream order; header_bytes + bit_flag_bytes +
  // block_bytes + outlier_bytes == stream_bytes.
  size_t header_bytes = 0;
  size_t bit_flag_bytes = 0;
  size_t block_bytes = 0;
  size_t outlier_bytes = 0;
  size_t stream_bytes = 0;

  size_t total_blocks = 0;
  size_t nonzero_blocks = 0;
  size_t saturated = 0;  ///< V2: residuals clipped during encoding

  // Chunked containers only (fz_compress_chunked streams).
  unsigned container_version = 0;   ///< 0 = single-field stream
  std::vector<ChunkEntry> chunks;   ///< validated chunk index

  double ratio() const {
    return stream_bytes == 0 ? 0
                             : static_cast<double>(count) * dtype_bytes /
                                   static_cast<double>(stream_bytes);
  }
};

/// Parse and validate a stream's header without decompressing.  Throws
/// FormatError on anything corrupt or truncated.
StreamInfo inspect(ByteSpan stream);

/// Non-throwing inspect: the service-boundary variant.  On failure `out` is
/// left untouched and the FormatError comes back as StatusCode::InvalidStream
/// (see common/status.hpp; exceptions are mapped exactly once, here and in
/// Codec::try_*).
Status try_inspect(ByteSpan stream, StreamInfo& out) noexcept;

namespace detail {
/// The one place exceptions become Status codes: rethrows the current
/// exception and maps ParamError → InvalidParams, FormatError →
/// InvalidStream, everything else → Internal.  Call only from a catch
/// block.  Every try_* boundary (Codec::try_compress/try_decompress,
/// fz::try_inspect, fz::Service) funnels through here so the taxonomy can
/// never drift between entry points.
Status status_from_current_exception();
}  // namespace detail

/// DEPRECATED legacy header peek: use fz::inspect (StreamInfo reports the
/// same identity fields plus the full section layout and chunk index) or
/// fz::try_inspect at a non-throwing boundary.  See docs/SERVICE.md for the
/// migration table.  This shim survives one release for out-of-tree
/// callers and is no longer used anywhere in-tree.
struct FzHeaderInfo {
  Dims dims;
  double abs_eb;
  QuantVersion quant;
  size_t count;
  unsigned dtype_bytes = 4;  ///< 4 = f32 stream, 8 = f64 stream
};
[[deprecated("use fz::inspect / fz::try_inspect (StreamInfo); see "
             "docs/SERVICE.md")]]
FzHeaderInfo fz_inspect(ByteSpan stream);

}  // namespace fz
