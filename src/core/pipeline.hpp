// The FZ compressor: optimized dual-quantization → bitshuffle → fast
// sparsification encoding (paper §3, Fig. 1).  This is the library's
// primary public API.
//
// Usage:
//   fz::FzParams params;
//   params.eb = fz::ErrorBound::relative(1e-3);
//   auto compressed = fz::fz_compress(field.values(), field.dims, params);
//   auto restored   = fz::fz_decompress(compressed.bytes);
//
// The compressed stream is self-describing (dims, error bound, and quant
// version travel in the header).  Every compression also returns the
// data-dependent statistics (saturation count, nonzero-block count, ...)
// and the per-stage device cost sheets consumed by the benchmark figures.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/simd.hpp"
#include "common/types.hpp"
#include "core/quantizer.hpp"
#include "cudasim/cost_sheet.hpp"

namespace fz {

enum class QuantVersion : u8 {
  V1Original = 1,   ///< cuSZ-style: radius shift + outlier list (ablation)
  V2Optimized = 2,  ///< FZ: sign-magnitude, no outliers (the default)
};

struct FzParams {
  ErrorBound eb = ErrorBound::relative(1e-3);
  QuantVersion quant = QuantVersion::V2Optimized;
  /// Fuse bitshuffle with encode phase 1 (paper §3.4).  The output is
  /// identical either way; the flag selects which cost sheet the device
  /// model sees (fused saves one global-memory round trip).
  bool fused_bitshuffle_mark = true;
  /// V1-only: quantization radius.
  u32 radius = 512;
  /// Host execution: compress through the fused tile pipeline (quantize +
  /// Lorenzo + encode + bitshuffle + mark in one cache-resident pass, V2
  /// only; other configurations fall back to the unfused graph).  The
  /// stream bytes are identical either way — pinned by
  /// CodecTest.FusedGraphMatchesUnfusedByteForByte.
  bool fused_host_graph = true;
  /// Host execution: SIMD tier for the vectorized kernels.  Auto resolves
  /// from the FZ_SIMD env var / CPUID; every tier is bit-identical, so this
  /// never changes the stream either.
  SimdDispatch simd = SimdDispatch::Auto;
  /// f32 inputs only: quantize with a float multiply + lrintf instead of
  /// the double-promoted llround.  A margin test routes any value whose
  /// scaled magnitude nears a rounding boundary (or 2^21) through the
  /// exact path, so compressed streams are byte-identical to the default
  /// path.  On decompress, reconstruction uses a float product while
  /// |p| < 2^24 — values may differ from the default path by an f32 ulp
  /// (the bound still holds up to f32 representation precision), which is
  /// why this stays opt-in.
  bool f32_fast_quant = false;
};

struct FzStats {
  size_t count = 0;            ///< number of f32 values
  size_t input_bytes = 0;
  size_t compressed_bytes = 0;
  double abs_eb = 0;           ///< resolved absolute error bound
  size_t saturated = 0;        ///< V2: clipped residuals
  size_t outliers = 0;         ///< V1: out-of-radius residuals
  size_t total_blocks = 0;
  size_t nonzero_blocks = 0;
  double ratio() const {
    return compressed_bytes == 0
               ? 0
               : static_cast<double>(input_bytes) / compressed_bytes;
  }
  double bitrate() const { return ratio() == 0 ? 0 : 32.0 / ratio(); }
};

struct FzCompressed {
  std::vector<u8> bytes;
  FzStats stats;
  /// Stage cost sheets, in pipeline order: "pred-quant",
  /// "bitshuffle-mark" (fused) or "bitshuffle"+"mark" (split),
  /// "prefix-sum-encode".
  std::vector<cudasim::CostSheet> stage_costs;
};

FzCompressed fz_compress(FloatSpan data, Dims dims, const FzParams& params);

/// Double-precision input: the pipeline is identical (pre-quantization is
/// the only dtype-dependent stage), the stream records the dtype, and the
/// u16 residual codes impose the same saturation behaviour.  Note that a
/// very tight bound relative to f64 precision will saturate residuals the
/// way it never could for f32 — check FzStats::saturated.
FzCompressed fz_compress_f64(std::span<const f64> data, Dims dims,
                             const FzParams& params);

struct FzDecompressed {
  std::vector<f32> data;
  Dims dims;
  std::vector<cudasim::CostSheet> stage_costs;
};

struct FzDecompressed64 {
  std::vector<f64> data;
  Dims dims;
  std::vector<cudasim::CostSheet> stage_costs;
};

/// Decompress an f32 stream (throws FormatError on an f64 stream).
FzDecompressed fz_decompress(ByteSpan stream);
/// Decompress an f64 stream (throws FormatError on an f32 stream).
FzDecompressed64 fz_decompress_f64(ByteSpan stream);

/// Peek at a stream's header without decompressing.
struct FzHeaderInfo {
  Dims dims;
  double abs_eb;
  QuantVersion quant;
  size_t count;
  unsigned dtype_bytes = 4;  ///< 4 = f32 stream, 8 = f64 stream
};
FzHeaderInfo fz_inspect(ByteSpan stream);

}  // namespace fz
