// The fast sparsification-style lossless encoder (paper §3.4).
//
// Phase 1 partitions the bitshuffled words into 16-byte blocks and records
// one flag per block ("is any word nonzero?").  The flags live twice in the
// pipeline: as a byte-flag array (input of the offset prefix sum) and packed
// into a bit-flag array (part of the compressed output, 1 bit per block —
// hence the ratio ceiling of 128x over the code stream that the paper
// contrasts with Huffman's 32x).  Phase 2 exclusive-prefix-sums the byte
// flags into block offsets and compacts the nonzero blocks.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "cudasim/cost_sheet.hpp"

namespace fz {

struct EncodeResult {
  std::vector<u8> bit_flags;   ///< 1 bit per block, LSB-first within bytes
  std::vector<u8> byte_flags;  ///< 1 byte per block (phase-2 scan input)
  std::vector<u32> blocks;     ///< compacted nonzero blocks, 4 words each
  size_t total_blocks = 0;
  size_t nonzero_blocks = 0;

  size_t payload_bytes() const {
    return bit_flags.size() + blocks.size() * sizeof(u32);
  }
};

/// Phase 1: flag computation.  `words.size()` must be a multiple of 4.
void mark_blocks(std::span<const u32> words, std::vector<u8>& byte_flags,
                 std::vector<u8>& bit_flags);

/// Allocation-free phase 1: byte_flags.size() == words.size() / 4 and
/// bit_flags.size() == ceil(byte_flags.size() / 8); both are cleared and
/// refilled.  The stage graph uses this with pooled buffers.
void mark_blocks(std::span<const u32> words, std::span<u8> byte_flags,
                 std::span<u8> bit_flags);

/// Phase 2: offsets via exclusive prefix sum + block compaction.
/// Returns the modeled device cost of the scan (the encode kernel cost is
/// assembled by core/costs.cpp).
cudasim::CostSheet compact_blocks(std::span<const u32> words,
                                  std::span<const u8> byte_flags,
                                  std::vector<u32>& blocks_out);

/// Allocation-free phase 2.  `flags32` and `offsets` are scratch of
/// byte_flags.size() elements each, `scan_scratch` as required by
/// scan_exclusive_parallel, and `blocks_out` must hold the worst case
/// (words.size() elements).  Returns the number of nonzero blocks; the
/// compacted payload is blocks_out[0 .. nonzero * kBlockWords).
size_t compact_blocks(std::span<const u32> words,
                      std::span<const u8> byte_flags, std::span<u32> flags32,
                      std::span<u32> offsets, std::span<u32> scan_scratch,
                      std::span<u32> blocks_out,
                      cudasim::CostSheet* scan_cost = nullptr);

/// Convenience: run both phases.
EncodeResult encode_blocks(std::span<const u32> words);

/// Inverse: scatter nonzero blocks back into `out` (pre-sized, multiple of
/// 4 words); zero blocks are zero-filled.
void decode_blocks(std::span<const u8> bit_flags, std::span<const u32> blocks,
                   std::span<u32> out);

/// Allocation-free inverse: `flags32`/`offsets` are scratch of
/// out.size() / 4 elements each, `scan_scratch` as required by
/// scan_exclusive_parallel.
void decode_blocks(std::span<const u8> bit_flags, std::span<const u32> blocks,
                   std::span<u32> out, std::span<u32> flags32,
                   std::span<u32> offsets, std::span<u32> scan_scratch);

/// The offset-recovery half of decode_blocks: expand the packed bit flags
/// into `flags32` (flags32.size() == total block count) and exclusive-scan
/// them into `offsets`, validating the payload size.  Returns the nonzero
/// block count.  The fused decompress pass (core/kernels_decode.hpp) uses
/// this then scatters tile-by-tile instead of materializing `out`.
size_t decode_block_offsets(std::span<const u8> bit_flags,
                            std::span<const u32> blocks,
                            std::span<u32> flags32, std::span<u32> offsets,
                            std::span<u32> scan_scratch);

}  // namespace fz
