// The FZ stream format: the on-disk header plus its validation rules.
//
// Shared by the compression stage graph (core/stages.cpp), the decoders,
// and fz_inspect, so a header field can never be written by one layer and
// skipped by another's validation.  Internal — the public API is
// core/pipeline.hpp and core/codec.hpp.
#pragma once

#include <cstddef>
#include <cstring>
#include <type_traits>

#include "common/error.hpp"
#include "common/types.hpp"
#include "core/bitshuffle.hpp"
#include "core/pipeline.hpp"

namespace fz {

constexpr u32 kStreamMagic = 0x50475a46u;  // "FZGP" little-endian
constexpr u16 kStreamVersion = 2;          // v2 added the dtype field
constexpr size_t kCodesPerTile = kTileBytes / sizeof(u16);  // 2048

constexpr u8 kTransformNone = 0;
constexpr u8 kTransformLog = 1;

#pragma pack(push, 1)
struct StreamHeader {
  u32 magic;
  u16 version;
  u8 quant;
  u8 rank;
  u8 dtype;      // sizeof the sample type: 4 (f32) or 8 (f64)
  u8 transform;  // 0 = none, 1 = natural log (point-wise relative bound)
  u8 pad[6];
  u64 nx, ny, nz;
  u64 count;
  f64 abs_eb;
  u32 radius;
  i64 anchor;  // pre-quantized first value: residual[0] has no predictor
               // and would otherwise saturate u16 whenever |data offset|
               // is large relative to eb
  u64 saturated;
  u64 outlier_count;
  u64 bit_flag_bytes;
  u64 block_words;
};
#pragma pack(pop)

// On-disk layout guards: these asserts ARE the format contract.  The
// literal numbers must match docs/FORMAT.md, and tools/fzlint (rule
// layout-audit) re-derives every value from the declaration above and
// fails CI if an assert is missing or disagrees — so layout drift is a
// compile error and a stale assert is a lint error.  memcpy in/out of the
// stream additionally requires trivial copyability.
static_assert(std::is_trivially_copyable_v<StreamHeader>);
static_assert(sizeof(StreamHeader) == 100);
static_assert(offsetof(StreamHeader, magic) == 0);
static_assert(offsetof(StreamHeader, version) == 4);
static_assert(offsetof(StreamHeader, quant) == 6);
static_assert(offsetof(StreamHeader, rank) == 7);
static_assert(offsetof(StreamHeader, dtype) == 8);
static_assert(offsetof(StreamHeader, transform) == 9);
static_assert(offsetof(StreamHeader, pad) == 10);
static_assert(offsetof(StreamHeader, nx) == 16);
static_assert(offsetof(StreamHeader, ny) == 24);
static_assert(offsetof(StreamHeader, nz) == 32);
static_assert(offsetof(StreamHeader, count) == 40);
static_assert(offsetof(StreamHeader, abs_eb) == 48);
static_assert(offsetof(StreamHeader, radius) == 56);
static_assert(offsetof(StreamHeader, anchor) == 60);
static_assert(offsetof(StreamHeader, saturated) == 68);
static_assert(offsetof(StreamHeader, outlier_count) == 76);
static_assert(offsetof(StreamHeader, bit_flag_bytes) == 84);
static_assert(offsetof(StreamHeader, block_words) == 92);

// ---- chunked container ------------------------------------------------------
//
// The container frames independent single-field chunk streams (the paper's
// coarse-grained multi-GPU partitioning).  Container version 1 (legacy)
// stored only a size table, so locating chunk k meant summing k sizes and
// nothing recorded where a chunk lives in the field; version 2 embeds a
// self-describing chunk index — per-chunk byte offset, compressed size,
// element offset, and dims — which is what makes random access O(1) and the
// fz::Reader slice service possible.  Readers accept both; writers emit v2
// (v1 only on request, for compatibility tests).

constexpr u32 kContainerMagic = 0x4b435a46u;  // "FZCK", v1 and v2 alike
constexpr u16 kContainerVersion = 2;
/// v1 stored num_chunks (bounded < 2^24) in the u32 after the magic; v2
/// stores this sentinel there instead, so either version identifies the
/// other's streams unambiguously — and a v1 reader rejects a v2 stream as a
/// bad chunk count rather than misparsing it.
constexpr u32 kContainerV2Sentinel = 0xffffffffu;
constexpr u32 kMaxContainerChunks = 1u << 24;

#pragma pack(push, 1)
/// Container header, version 1 (legacy).  Followed by `num_chunks` u64 byte
/// sizes, then by the concatenated chunk streams; chunk placement had to be
/// recomputed from the slab plan.  Read-only today (written on request for
/// compatibility tests).
struct ContainerHeaderV1 {
  u32 magic;       // kContainerMagic
  u32 num_chunks;  // 1 .. 2^24-1 (which is how v1 streams stay identifiable)
  u8 rank;
  u8 pad[7];
  u64 nx, ny, nz;
};

/// Container header, version 2.  Followed immediately by `num_chunks`
/// ChunkIndexEntry records, then by the concatenated chunk streams.
struct ContainerHeaderV2 {
  u32 magic;     // kContainerMagic
  u32 sentinel;  // kContainerV2Sentinel (v1 kept num_chunks here)
  u16 version;   // kContainerVersion
  u8 rank;       // 1..3
  u8 pad[5];
  u32 num_chunks;
  u32 pad2;
  u64 nx, ny, nz;  // dims of the WHOLE field
};

/// One chunk-index record: everything needed to locate, size, and place a
/// chunk without touching any other chunk's bytes.
struct ChunkIndexEntry {
  u64 offset;       ///< byte offset of the chunk stream from container start
  u64 bytes;        ///< compressed byte size of the chunk stream
  u64 elem_offset;  ///< first element's index in the flattened full field
  u64 nx, ny, nz;   ///< chunk dims (a slab of the slowest-varying axis)
};
#pragma pack(pop)

// Container layout guards (see the StreamHeader block above for why the
// values are literals): v1 is frozen forever — old archives must keep
// reading — and v2's 48-byte header + 48-byte index entries are what
// docs/FORMAT.md documents and fz::Reader seeks by.
static_assert(std::is_trivially_copyable_v<ContainerHeaderV1>);
static_assert(sizeof(ContainerHeaderV1) == 40);
static_assert(offsetof(ContainerHeaderV1, magic) == 0);
static_assert(offsetof(ContainerHeaderV1, num_chunks) == 4);
static_assert(offsetof(ContainerHeaderV1, rank) == 8);
static_assert(offsetof(ContainerHeaderV1, pad) == 9);
static_assert(offsetof(ContainerHeaderV1, nx) == 16);
static_assert(offsetof(ContainerHeaderV1, ny) == 24);
static_assert(offsetof(ContainerHeaderV1, nz) == 32);

static_assert(std::is_trivially_copyable_v<ContainerHeaderV2>);
static_assert(sizeof(ContainerHeaderV2) == 48);
static_assert(offsetof(ContainerHeaderV2, magic) == 0);
static_assert(offsetof(ContainerHeaderV2, sentinel) == 4);
static_assert(offsetof(ContainerHeaderV2, version) == 8);
static_assert(offsetof(ContainerHeaderV2, rank) == 10);
static_assert(offsetof(ContainerHeaderV2, pad) == 11);
static_assert(offsetof(ContainerHeaderV2, num_chunks) == 16);
static_assert(offsetof(ContainerHeaderV2, pad2) == 20);
static_assert(offsetof(ContainerHeaderV2, nx) == 24);
static_assert(offsetof(ContainerHeaderV2, ny) == 32);
static_assert(offsetof(ContainerHeaderV2, nz) == 40);

static_assert(std::is_trivially_copyable_v<ChunkIndexEntry>);
static_assert(sizeof(ChunkIndexEntry) == 48);
static_assert(offsetof(ChunkIndexEntry, offset) == 0);
static_assert(offsetof(ChunkIndexEntry, bytes) == 8);
static_assert(offsetof(ChunkIndexEntry, elem_offset) == 16);
static_assert(offsetof(ChunkIndexEntry, nx) == 24);
static_assert(offsetof(ChunkIndexEntry, ny) == 32);
static_assert(offsetof(ChunkIndexEntry, nz) == 40);

/// True when the bytes start like a v2 (indexed) container.  False for v1
/// containers, single-field streams, and garbage — callers still validate.
inline bool is_container_v2(ByteSpan stream) {
  if (stream.size() < sizeof(ContainerHeaderV2)) return false;
  u32 magic, sentinel;
  std::memcpy(&magic, stream.data(), sizeof(u32));
  std::memcpy(&sentinel, stream.data() + sizeof(u32), sizeof(u32));
  return magic == kContainerMagic && sentinel == kContainerV2Sentinel;
}

/// True when the bytes carry the container magic (either version).
inline bool is_container(ByteSpan stream) {
  if (stream.size() < sizeof(u32)) return false;
  u32 magic;
  std::memcpy(&magic, stream.data(), sizeof(u32));
  return magic == kContainerMagic;
}

/// Validate every self-consistency rule a header must satisfy before any
/// field is trusted (magic, version, rank, dtype, transform, quant, error
/// bound, dims vs. count vs. stream size).  Throws FormatError.
inline void validate_stream_header(const StreamHeader& h, size_t stream_bytes) {
  FZ_FORMAT_REQUIRE(h.magic == kStreamMagic, "not an FZ stream");
  FZ_FORMAT_REQUIRE(h.version == kStreamVersion,
                    "unsupported FZ stream version");
  FZ_FORMAT_REQUIRE(h.rank >= 1 && h.rank <= 3, "bad rank");
  FZ_FORMAT_REQUIRE(h.dtype == sizeof(f32) || h.dtype == sizeof(f64),
                    "bad dtype");
  FZ_FORMAT_REQUIRE(
      h.transform == kTransformNone || h.transform == kTransformLog,
      "unknown transform");
  const QuantVersion quant = static_cast<QuantVersion>(h.quant);
  FZ_FORMAT_REQUIRE(quant == QuantVersion::V1Original ||
                        quant == QuantVersion::V2Optimized,
                    "bad quant version");
  FZ_FORMAT_REQUIRE(h.abs_eb > 0, "bad error bound");
  // The format's ratio ceiling is 256x on the u16 code stream (the 128x
  // flag ceiling); a count beyond that is corrupt.  Each extent is checked
  // stepwise so the product cannot wrap around u64 and masquerade as a
  // small count (the loops iterate per axis, not on the product).
  const u64 max_count = static_cast<u64>(stream_bytes) * 512;
  FZ_FORMAT_REQUIRE(h.nx >= 1 && h.ny >= 1 && h.nz >= 1 && h.nx <= max_count &&
                        h.ny <= max_count && h.nz <= max_count,
                    "bad dims");
  FZ_FORMAT_REQUIRE(h.nx * h.ny <= max_count &&
                        h.nx * h.ny * h.nz <= max_count,
                    "dims exceed stream");
  const Dims dims{h.nx, h.ny, h.nz};
  FZ_FORMAT_REQUIRE(dims.count() == h.count && h.count > 0, "bad dims");
}

}  // namespace fz
