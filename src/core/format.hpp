// The FZ stream format: the on-disk header plus its validation rules.
//
// Shared by the compression stage graph (core/stages.cpp), the decoders,
// and fz_inspect, so a header field can never be written by one layer and
// skipped by another's validation.  Internal — the public API is
// core/pipeline.hpp and core/codec.hpp.
#pragma once

#include "common/error.hpp"
#include "common/types.hpp"
#include "core/bitshuffle.hpp"
#include "core/pipeline.hpp"

namespace fz {

constexpr u32 kStreamMagic = 0x50475a46u;  // "FZGP" little-endian
constexpr u16 kStreamVersion = 2;          // v2 added the dtype field
constexpr size_t kCodesPerTile = kTileBytes / sizeof(u16);  // 2048

constexpr u8 kTransformNone = 0;
constexpr u8 kTransformLog = 1;

#pragma pack(push, 1)
struct StreamHeader {
  u32 magic;
  u16 version;
  u8 quant;
  u8 rank;
  u8 dtype;      // sizeof the sample type: 4 (f32) or 8 (f64)
  u8 transform;  // 0 = none, 1 = natural log (point-wise relative bound)
  u8 pad[6];
  u64 nx, ny, nz;
  u64 count;
  f64 abs_eb;
  u32 radius;
  i64 anchor;  // pre-quantized first value: residual[0] has no predictor
               // and would otherwise saturate u16 whenever |data offset|
               // is large relative to eb
  u64 saturated;
  u64 outlier_count;
  u64 bit_flag_bytes;
  u64 block_words;
};
#pragma pack(pop)

/// Validate every self-consistency rule a header must satisfy before any
/// field is trusted (magic, version, rank, dtype, transform, quant, error
/// bound, dims vs. count vs. stream size).  Throws FormatError.
inline void validate_stream_header(const StreamHeader& h, size_t stream_bytes) {
  FZ_FORMAT_REQUIRE(h.magic == kStreamMagic, "not an FZ stream");
  FZ_FORMAT_REQUIRE(h.version == kStreamVersion,
                    "unsupported FZ stream version");
  FZ_FORMAT_REQUIRE(h.rank >= 1 && h.rank <= 3, "bad rank");
  FZ_FORMAT_REQUIRE(h.dtype == sizeof(f32) || h.dtype == sizeof(f64),
                    "bad dtype");
  FZ_FORMAT_REQUIRE(
      h.transform == kTransformNone || h.transform == kTransformLog,
      "unknown transform");
  const QuantVersion quant = static_cast<QuantVersion>(h.quant);
  FZ_FORMAT_REQUIRE(quant == QuantVersion::V1Original ||
                        quant == QuantVersion::V2Optimized,
                    "bad quant version");
  FZ_FORMAT_REQUIRE(h.abs_eb > 0, "bad error bound");
  // The format's ratio ceiling is 256x on the u16 code stream (the 128x
  // flag ceiling); a count beyond that is corrupt.  Each extent is checked
  // stepwise so the product cannot wrap around u64 and masquerade as a
  // small count (the loops iterate per axis, not on the product).
  const u64 max_count = static_cast<u64>(stream_bytes) * 512;
  FZ_FORMAT_REQUIRE(h.nx >= 1 && h.ny >= 1 && h.nz >= 1 && h.nx <= max_count &&
                        h.ny <= max_count && h.nz <= max_count,
                    "bad dims");
  FZ_FORMAT_REQUIRE(h.nx * h.ny <= max_count &&
                        h.nx * h.ny * h.nz <= max_count,
                    "dims exceed stream");
  const Dims dims{h.nx, h.ny, h.nz};
  FZ_FORMAT_REQUIRE(dims.count() == h.count && h.count > 0, "bad dims");
}

}  // namespace fz
