#include "core/codec.hpp"

#include "common/error.hpp"
#include "core/costs.hpp"
#include "core/format.hpp"

namespace fz {

namespace {

/// Returns the context's scratch leases to the pool when a run ends —
/// including by exception, so a failed run never strands a lease.
struct ScratchGuard {
  PipelineContext& ctx;
  ~ScratchGuard() { ctx.release_scratch(); }
};

}  // namespace

Codec::Codec(FzParams params)
    : params_(params),
      compress_stages_(make_compress_stages()),
      compress_stages_fused_(make_compress_stages_fused()),
      decompress_stages_(make_decompress_stages()) {}

template <typename T>
FzCompressed Codec::compress_impl(std::span<const T> data, Dims dims) {
  FZ_REQUIRE(!data.empty(), "cannot compress an empty field");
  FZ_REQUIRE(data.size() == dims.count(), "dims do not match data size");

  // The fused tile pipeline covers V2 only; V1 (outlier list) always runs
  // the unfused graph.  Either graph emits the same bytes.
  const StageGraph& graph =
      params_.fused_host_graph && params_.quant == QuantVersion::V2Optimized
          ? compress_stages_fused_
          : compress_stages_;

  FzCompressed out;
  ctx_.begin_compress(&pool_, params_, dims, data.size(), sizeof(T),
                      data.data(), &out.bytes);
  {
    ScratchGuard guard{ctx_};
    for (const auto& stage : graph) stage->run(ctx_);
  }
  out.stats = ctx_.stats;
  out.stage_costs = fz_compression_costs(out.stats, params_);
  return out;
}

FzCompressed Codec::compress(FloatSpan data, Dims dims) {
  return compress_impl(data, dims);
}

FzCompressed Codec::compress(std::span<const f64> data, Dims dims) {
  return compress_impl(data, dims);
}

template <typename T>
Dims Codec::decompress_into_impl(ByteSpan stream, std::span<T> out,
                                 std::vector<cudasim::CostSheet>* stage_costs) {
  ctx_.begin_decompress(&pool_, params_, stream, out.size(), sizeof(T),
                        out.data());
  {
    ScratchGuard guard{ctx_};
    for (const auto& stage : decompress_stages_) stage->run(ctx_);
  }
  if (stage_costs != nullptr) {
    FzParams params;
    params.quant = ctx_.params.quant;
    *stage_costs = fz_decompression_costs(ctx_.stats, params);
  }
  return ctx_.dims;
}

Dims Codec::decompress_into(ByteSpan stream, std::span<f32> out,
                            std::vector<cudasim::CostSheet>* stage_costs) {
  return decompress_into_impl(stream, out, stage_costs);
}

Dims Codec::decompress_into(ByteSpan stream, std::span<f64> out,
                            std::vector<cudasim::CostSheet>* stage_costs) {
  return decompress_into_impl(stream, out, stage_costs);
}

FzDecompressed Codec::decompress(ByteSpan stream) {
  const FzHeaderInfo info = fz_inspect(stream);
  FzDecompressed out;
  out.data.resize(info.count);
  out.dims =
      decompress_into(stream, std::span<f32>{out.data}, &out.stage_costs);
  return out;
}

FzDecompressed64 Codec::decompress_f64(ByteSpan stream) {
  const FzHeaderInfo info = fz_inspect(stream);
  FzDecompressed64 out;
  out.data.resize(info.count);
  out.dims =
      decompress_into(stream, std::span<f64>{out.data}, &out.stage_costs);
  return out;
}

}  // namespace fz
