#include "core/codec.hpp"

#include <cstddef>

#include "common/error.hpp"
#include "core/costs.hpp"
#include "core/format.hpp"

namespace fz {

namespace {

/// Returns the context's scratch leases to the pool when a run ends —
/// including by exception, so a failed run never strands a lease.
struct ScratchGuard {
  PipelineContext& ctx;
  ~ScratchGuard() { ctx.release_scratch(); }
};

/// Pool hit/miss counts before a run, for the run span's attribute delta.
/// Only captured when a sink is attached — stats() takes the pool mutex,
/// which the disabled-telemetry path must not pay.
struct PoolDelta {
  u64 hits = 0, misses = 0;
};

PoolDelta pool_delta(const BufferPool& pool, bool traced) {
  if (!traced) return {};
  const BufferPool::Stats s = pool.stats();
  return {s.hits, s.misses};
}

void finish_run_span(telemetry::Span& span, const PipelineContext& ctx,
                     const BufferPool& pool, const PoolDelta& before) {
  if (!span.enabled()) return;
  span.arg("bytes_in", static_cast<double>(ctx.stats.input_bytes));
  span.arg("bytes_out", static_cast<double>(ctx.stats.compressed_bytes));
  span.arg("tier", static_cast<double>(resolve_simd(ctx.params.simd)));
  span.arg("tiles",
           static_cast<double>(ctx.padded_codes() / kCodesPerTile));
  const BufferPool::Stats after = pool.stats();
  span.arg("pool_hits", static_cast<double>(after.hits - before.hits));
  span.arg("pool_misses", static_cast<double>(after.misses - before.misses));
}

}  // namespace

Codec::Codec(FzParams params)
    : params_(params),
      sink_(params.telemetry != nullptr ? params.telemetry
                                        : telemetry::active_sink()),
      compress_stages_(make_compress_stages()),
      compress_stages_fused_(make_compress_stages_fused()),
      decompress_stages_(make_decompress_stages()),
      decompress_stages_fused_(make_decompress_stages_fused()) {
  std::vector<ParamIssue> issues = params_.validate();
  if (!issues.empty()) throw ParamError(std::move(issues));
  pool_.set_telemetry(sink_);
}

template <typename T>
void Codec::compress_impl(std::span<const T> data, Dims dims,
                          FzCompressed& out, bool with_costs) {
  out.bytes.clear();
  out.stage_costs.clear();
  out.stats = {};
  // params() hands out a mutable reference so callers can retune the bound
  // between runs; revalidate here so a bad mutation surfaces as ParamError
  // at the call boundary instead of failing deep inside a stage.  The happy
  // path returns an empty (allocation-free) issue vector.
  std::vector<ParamIssue> issues = params_.validate(dims);
  if (!issues.empty()) throw ParamError(std::move(issues));
  FZ_REQUIRE(!data.empty(), "cannot compress an empty field");
  FZ_REQUIRE(data.size() == dims.count(), "dims do not match data size");

  // The fused tile pipeline covers V2 only; validate() rejects a fused V1
  // request up front, so the choice here is purely on the flag.  Either
  // graph emits the same bytes.
  const StageGraph& graph =
      params_.fused_host_graph ? compress_stages_fused_ : compress_stages_;

  ctx_.begin_compress(&pool_, params_, dims, data.size(), sizeof(T),
                      data.data(), &out.bytes);
  ctx_.sink = sink_;
  {
    const PoolDelta before = pool_delta(pool_, sink_ != nullptr);
    telemetry::Span run(sink_, "compress");
    ScratchGuard guard{ctx_};
    for (const auto& stage : graph) {
      telemetry::Span span(sink_, stage->name());
      stage->run(ctx_);
      span.arg("bytes_in", static_cast<double>(ctx_.stats.input_bytes));
    }
    finish_run_span(run, ctx_, pool_, before);
  }
  out.stats = ctx_.stats;
  if (with_costs) out.stage_costs = fz_compression_costs(out.stats, params_);
}

FzCompressed Codec::compress(FloatSpan data, Dims dims) {
  FzCompressed out;
  compress_impl(data, dims, out, /*with_costs=*/true);
  return out;
}

FzCompressed Codec::compress(std::span<const f64> data, Dims dims) {
  FzCompressed out;
  compress_impl(data, dims, out, /*with_costs=*/true);
  return out;
}

Status Codec::try_compress(FloatSpan data, Dims dims,
                           FzCompressed& out) noexcept {
  try {
    compress_impl(data, dims, out, /*with_costs=*/false);
    return {};
  } catch (...) {
    out.bytes.clear();
    return detail::status_from_current_exception();
  }
}

Status Codec::try_compress(std::span<const f64> data, Dims dims,
                           FzCompressed& out) noexcept {
  try {
    compress_impl(data, dims, out, /*with_costs=*/false);
    return {};
  } catch (...) {
    out.bytes.clear();
    return detail::status_from_current_exception();
  }
}

template <typename T>
Dims Codec::decompress_into_impl(ByteSpan stream, std::span<T> out,
                                 std::vector<cudasim::CostSheet>* stage_costs) {
  // The fused decode covers V2 streams only; peek the quant byte (pinned at
  // offset 6 by a format.hpp static_assert) to route V1/legacy streams to
  // the unfused graph.  Both graphs open with ParseHeaderStage, so a
  // garbage peek on a truncated or corrupt stream still fails with the
  // graph-independent format error.  Either graph writes the same bytes.
  const bool v2_stream =
      stream.size() >= sizeof(StreamHeader) &&
      stream[offsetof(StreamHeader, quant)] ==
          static_cast<u8>(QuantVersion::V2Optimized);
  const StageGraph& graph = params_.fused_decompress && v2_stream
                                ? decompress_stages_fused_
                                : decompress_stages_;

  ctx_.begin_decompress(&pool_, params_, stream, out.size(), sizeof(T),
                        out.data());
  ctx_.sink = sink_;
  {
    const PoolDelta before = pool_delta(pool_, sink_ != nullptr);
    telemetry::Span run(sink_, "decompress");
    ScratchGuard guard{ctx_};
    for (const auto& stage : graph) {
      telemetry::Span span(sink_, stage->name());
      stage->run(ctx_);
      span.arg("bytes_in", static_cast<double>(ctx_.stats.input_bytes));
    }
    finish_run_span(run, ctx_, pool_, before);
  }
  if (stage_costs != nullptr) {
    FzParams params;
    params.quant = ctx_.params.quant;
    *stage_costs = fz_decompression_costs(ctx_.stats, params);
  }
  return ctx_.dims;
}

Dims Codec::decompress_into(ByteSpan stream, std::span<f32> out,
                            std::vector<cudasim::CostSheet>* stage_costs) {
  return decompress_into_impl(stream, out, stage_costs);
}

Dims Codec::decompress_into(ByteSpan stream, std::span<f64> out,
                            std::vector<cudasim::CostSheet>* stage_costs) {
  return decompress_into_impl(stream, out, stage_costs);
}

FzDecompressed Codec::decompress(ByteSpan stream) {
  const StreamInfo info = inspect(stream);
  FzDecompressed out;
  out.data.resize(info.count);
  out.dims =
      decompress_into(stream, std::span<f32>{out.data}, &out.stage_costs);
  return out;
}

FzDecompressed64 Codec::decompress_f64(ByteSpan stream) {
  const StreamInfo info = inspect(stream);
  FzDecompressed64 out;
  out.data.resize(info.count);
  out.dims =
      decompress_into(stream, std::span<f64>{out.data}, &out.stage_costs);
  return out;
}

Status Codec::try_decompress_into(ByteSpan stream, std::span<f32> out,
                                  Dims* dims) noexcept {
  try {
    const Dims d = decompress_into_impl(stream, out, nullptr);
    if (dims != nullptr) *dims = d;
    return {};
  } catch (...) {
    return detail::status_from_current_exception();
  }
}

Status Codec::try_decompress_into(ByteSpan stream, std::span<f64> out,
                                  Dims* dims) noexcept {
  try {
    const Dims d = decompress_into_impl(stream, out, nullptr);
    if (dims != nullptr) *dims = d;
    return {};
  } catch (...) {
    return detail::status_from_current_exception();
  }
}

template <typename T>
Status Codec::try_decompress_impl(ByteSpan stream, std::vector<T>& data,
                                  Dims& dims,
                                  unsigned expected_dtype_bytes) noexcept {
  try {
    const StreamInfo info = inspect(stream);
    // Resize before the dtype check so an exact message comes from the
    // stage's own validation path (one wording for both entry points).
    if (info.dtype_bytes == expected_dtype_bytes) data.resize(info.count);
    dims = decompress_into_impl(stream, std::span<T>{data}, nullptr);
    return {};
  } catch (...) {
    return detail::status_from_current_exception();
  }
}

Status Codec::try_decompress(ByteSpan stream, FzDecompressed& out) noexcept {
  out.stage_costs.clear();
  return try_decompress_impl(stream, out.data, out.dims, sizeof(f32));
}

Status Codec::try_decompress(ByteSpan stream, FzDecompressed64& out) noexcept {
  out.stage_costs.clear();
  return try_decompress_impl(stream, out.data, out.dims, sizeof(f64));
}

}  // namespace fz
