// The paper's GPU kernels, written against the cudasim execution model.
//
// These follow the pseudocode of §3.4 line-for-line: a 32×32 thread block
// per 4096-byte tile, a padded 32×33 shared tile, 32 rounds of
// __ballot_sync per warp for the bit transpose, fused zero-block marking
// into ByteFlagArr/BitFlagArr, and a separate compaction kernel driven by
// the prefix-summed byte flags.  Tests assert bit-identical output against
// the native pipeline (core/bitshuffle.cpp, core/encoder.cpp) and use the
// simulator's bank-conflict counters to verify the padding claim (§3.3).
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "cudasim/cost_sheet.hpp"
#include "substrate/huffman.hpp"

namespace fz {

/// Dual-quantization kernel (pred-quant v2, §3.2).  The key property that
/// makes this embarrassingly parallel is dual-quantization itself: the
/// Lorenzo prediction runs on *pre-quantized* values, and pre-quantization
/// is pointwise, so each thread recomputes its neighbours' quantized values
/// instead of waiting for them — no dependency, no halo exchange.  Each
/// thread emits one 16-bit sign-magnitude residual code.
cudasim::CostSheet sim_pred_quant_v2(FloatSpan data, Dims dims, double abs_eb,
                                     std::span<u16> codes_out);

/// Deliberate defect injection for the fused bitshuffle kernel — fzcheck
/// regression fodder (each variant must produce its expected diagnostic;
/// see tests/test_sanitizer.cpp and docs/SANITIZER.md).
enum class BitshuffleFault {
  None = 0,
  /// Skip the __syncthreads between the ballot transpose's shared stores
  /// and the transposed read-back: a classic missing-barrier R/W race.
  MissingBarrier,
  /// Narrow the flag-ballot guard so 8 lanes of warp 7 skip the
  /// __ballot_sync: a divergent collective that deadlocks the block.
  DivergentBallot,
};

/// Fused bitshuffle + mark kernel (encode phase 1).  `in.size()` must be a
/// multiple of one tile (1024 words).  `padded_shared=false` switches the
/// shared tile from 32×33 to 32×32 — functionally identical but with the
/// bank conflicts the padding exists to avoid (ablation knob, and the
/// target of fzcheck's bank-conflict lint).
cudasim::CostSheet sim_bitshuffle_mark_fused(
    std::span<const u32> in, std::span<u32> out, std::vector<u8>& byte_flags,
    std::vector<u8>& bit_flags, bool padded_shared = true,
    BitshuffleFault fault = BitshuffleFault::None);

/// Device mirror of the host fused tile pipeline (PR3,
/// core/kernels_simd.hpp fused_quant_shuffle_mark): dual-quantization,
/// Lorenzo encoding, bit transpose and zero-block marking in ONE launch.
/// Each thread of a 32x32 block computes the two u16 codes of its tile
/// word via neighbour recomputation, packs them into the shared tile, and
/// the block runs the same ballot transpose + mark tail as
/// sim_bitshuffle_mark_fused — the quantization codes never touch global
/// memory (the traffic fz_fused_tile_cost models as saved, §3.4).
/// `out.size()` must be whole tiles covering `data` (padding shuffles to
/// zero blocks); `anchor_out[0]` receives the first value's pre-quantized
/// anchor, matching the host stream header.  Output is byte-identical to
/// the host fused stage, which tests/test_kernels_sim.cpp asserts.
cudasim::CostSheet sim_fused_quant_shuffle_mark(
    FloatSpan data, Dims dims, double abs_eb, std::span<u32> out,
    std::vector<u8>& byte_flags, std::vector<u8>& bit_flags,
    std::span<i64> anchor_out, bool padded_shared = true,
    BitshuffleFault fault = BitshuffleFault::None);

/// Device mirror of the PR5 tile-parallel strip scheme: each block first
/// *cooperatively re-prequantizes* its tile's elements plus the halo its
/// Lorenzo stencils reach backwards (nx*ny + nx + 1 linear elements at
/// most) into a shared i64 buffer — one global load + quantization per
/// element — then computes codes from shared neighbours instead of up to
/// eight global recomputes per element.  When a 3-D plane halo exceeds
/// the 200 KB shared budget, the staging splits into two bounded windows
/// (the near rows and the z-plane band — the stencil's two read clusters)
/// and stays cooperative; only past the split windows' own budget (nx
/// beyond ~10750) does it fall back to sim_fused_quant_shuffle_mark.
/// Output is byte-identical to the single-pass kernel and the host fused
/// stage; hazard-freedom (no uninitialized shared reads, barrier
/// placement) is asserted under fzcheck.
cudasim::CostSheet sim_fused_quant_shuffle_mark_strips(
    FloatSpan data, Dims dims, double abs_eb, std::span<u32> out,
    std::vector<u8>& byte_flags, std::vector<u8>& bit_flags,
    std::span<i64> anchor_out, bool padded_shared = true);

/// Encode phase 2: prefix-sum the byte flags (host-side CUB stand-in) and
/// run the compaction kernel.  Returns the combined cost.
cudasim::CostSheet sim_compact_blocks(std::span<const u32> shuffled,
                                      std::span<const u8> byte_flags,
                                      std::vector<u32>& blocks_out);

/// cuSZ-style coarse-grained GPU Huffman encoding (Tian et al., IPDPS'21,
/// paper reference [47]): ONE THREAD serially encodes one whole chunk of
/// symbols into its private buffer (the "coarse-grained" design the paper
/// contrasts with fine-grained alternatives), then the chunk payloads are
/// compacted by a prefix sum over their byte sizes.  While packing, each
/// thread also records the gap array — the bit offset of every
/// segment_size-symbol segment inside its chunk (Rivera et al.'s two-pass
/// scheme folds into one pass here because the encoder knows the offsets
/// for free).  Produces byte-identical output to fz::huffman_encode for
/// the same codebook/chunk/segment sizes (segment_size = 0 emits the
/// legacy layout), which the tests assert.
cudasim::CostSheet sim_huffman_encode(std::span<const u16> symbols,
                                      const HuffmanCodebook& book,
                                      size_t chunk_size,
                                      std::vector<u8>& encoded_out,
                                      size_t segment_size = kHuffDefaultSegment);

/// Chunk-parallel GPU Huffman decoding: the chunked stream layout makes
/// every chunk's bit offset known up front, so one thread decodes each
/// chunk independently with the bit-serial canonical walk.  Accepts both
/// stream versions (gap arrays are simply ignored).  Byte-identical output
/// to fz::huffman_decode.  Kept as the pre-gap reference kernel the
/// gap-parallel kernel is measured against.
cudasim::CostSheet sim_huffman_decode(ByteSpan encoded,
                                      const HuffmanCodebook& book,
                                      std::vector<u16>& symbols_out);

/// Segment-parallel gap-array GPU Huffman decoding (Rivera et al.,
/// IPDPS'22, paper reference [48]): one thread decodes each
/// segment_size-symbol segment, entering the chunk's bit stream at the
/// offset the encoder recorded — a single-chunk stream no longer
/// serializes on one thread.  Codes resolve through the shared
/// HuffmanDecodeTables K-bit lookup table, cooperatively staged into
/// shared memory by each block (bit-serial walk when the codebook is too
/// deep for the table budget).  Legacy streams decode too (one segment
/// per chunk).  Byte-identical output to fz::huffman_decode; hazard
/// freedom of the staging barrier is asserted under fzcheck.
cudasim::CostSheet sim_huffman_decode_gap(ByteSpan encoded,
                                          const HuffmanCodebook& book,
                                          std::vector<u16>& symbols_out);

/// cuSZx block-statistics kernel (Yu et al., HPDC'22): per 128-value block,
/// min and max are computed with warp-shuffle butterfly reductions (the
/// lightweight bitwise operations the paper credits for cuSZx's speed),
/// combined across the block's four warps through shared memory.  These
/// stats drive the constant/non-constant block split of the cuSZx
/// baseline; tests check them against a scalar reference.
cudasim::CostSheet sim_szx_block_stats(FloatSpan data, std::span<f32> mins,
                                       std::span<f32> maxs);

/// Decompression phase 1: scatter the compacted nonzero blocks back to
/// their tile positions (zero blocks zero-filled), driven by the bit-flag
/// array — the mirror of sim_compact_blocks.
cudasim::CostSheet sim_scatter_blocks(std::span<const u8> bit_flags,
                                      std::span<const u32> blocks,
                                      std::span<u32> shuffled_out);

/// Decompression phase 2: inverse bitshuffle (same 32-round ballot
/// transpose, transposed addressing on the way in).
cudasim::CostSheet sim_bitunshuffle(std::span<const u32> in, std::span<u32> out,
                                    bool padded_shared = true);

/// Device mirror of the fused decompress pass (core/kernels_decode.hpp):
/// scatter + inverse bitshuffle + sign-magnitude decode in ONE launch.
/// Each 32x32 block scatters its tile's 256 compacted blocks straight
/// into the shared transpose tile, runs the ballot transpose, and decodes
/// its word's two u16 codes directly to the i64 residual output — the
/// scattered words and the code array never touch global memory (the
/// traffic fz_fused_decode_cost models as saved).  deltas_out receives
/// the raw sign-magnitude residuals (the inverse Lorenzo runs after, on
/// the host side).  Output matches sim_scatter_blocks +
/// sim_bitunshuffle + a scalar decode; hazard freedom of the scatter /
/// transpose barriers is asserted under fzcheck.
cudasim::CostSheet sim_fused_decode(std::span<const u8> bit_flags,
                                    std::span<const u32> blocks,
                                    std::span<i64> deltas_out,
                                    bool padded_shared = true);

}  // namespace fz
