// SIMD host kernels with runtime dispatch (common/simd.hpp), plus the fused
// tile pipeline — the host mirror of the paper's kernel fusion (§3.4).
//
// Every kernel here is *bit-identical* to its scalar reference in
// core/quantizer.cpp, core/bitshuffle.cpp and core/encoder.cpp at every
// dispatch tier; tests/test_simd.cpp enforces this with random and
// adversarial inputs at each level.  In particular the vectorized
// pre-quantization reproduces `std::llround(double(v) * inv)` EXACTLY
// (trunc + half-away-from-zero adjust + magic-constant i64 conversion),
// falling back to scalar llround for any lane group whose magnitude nears
// 2^50 — so SIMD never changes a compressed stream.
//
// The fused tile pipeline processes the input in cache-resident 4096-byte
// tiles (2048 u16 codes): quantize -> Lorenzo delta -> sign-magnitude
// encode -> 32x32 bit transpose -> zero-block flagging in one pass, so the
// i64 pre-quant array of the unfused graph is never materialized.  Lorenzo
// needs the previous row (2-D) / previous plane (3-D) of *pre-quantized*
// values, which stream through small reused scratch buffers — the same
// trick the paper's dual-quantization plays on the GPU, where neighbours
// are recomputed instead of communicated.
#pragma once

#include <span>

#include "common/simd.hpp"
#include "common/types.hpp"

namespace fz::telemetry {
class Sink;
}  // namespace fz::telemetry

namespace fz {

// ---- standalone vectorized kernels (unfused graph + tests) -----------------

/// Vectorized pre-quantization: p_i = llround(d_i / (2 eb)), bit-identical
/// to the scalar reference at every level.
void prequantize_simd(FloatSpan data, double eb, std::span<i64> out,
                      SimdLevel level);
void prequantize_simd(std::span<const f64> data, double eb, std::span<i64> out,
                      SimdLevel level);

/// The all-f32 fast path (float multiply + lrintf): no double promotion on
/// the hot loop, yet *bit-identical* to prequantize at every level.  The
/// f32 product differs from the double product by at most |x|·2^-23 (two
/// f32 roundings), so the rounded code can only disagree when the scaled
/// value lands within that radius of a half-integer boundary — a margin
/// test detects exactly those lanes (plus everything at |x| ≥ 2^21, where
/// the margin stops being meaningful, and any eb whose f32 reciprocal is
/// subnormal/infinite) and routes them through the exact double kernel.
/// Pinned by QuantizerTest.F32FastPathMatchesExactOnTier1 and the
/// adversarial sweeps in tests/test_simd.cpp.
void prequantize_f32fast(FloatSpan data, double eb, std::span<i64> out,
                         SimdLevel level);

/// The f64 sibling of prequantize_f32fast: narrow the input to f32 once,
/// then the same float-multiply + lrintf hot loop — still *bit-identical*
/// to prequantize at every level.  The extra narrowing rounding widens the
/// margin slope to 2^-21 (three roundings instead of two), and any value
/// whose f32 image is subnormal-but-nonzero is routed to the exact double
/// kernel (a value that narrows to exactly 0 stays fast: its scaled
/// magnitude is provably below 1/2, so 0 is the exact code).  Pinned by
/// the adversarial sweeps in tests/test_simd.cpp.
void prequantize_f64fast(std::span<const f64> data, double eb,
                         std::span<i64> out, SimdLevel level);

/// Vectorized V2 residual encode (sign-magnitude, saturating); returns the
/// saturation count.  Bit-identical to quant_encode_v2.
size_t quant_encode_v2_simd(std::span<const i64> deltas, std::span<u16> codes,
                            SimdLevel level);

/// Vectorized tile bitshuffle / inverse (bit-identical to
/// bitshuffle_tiles / bitunshuffle_tiles).  Sizes as in core/bitshuffle.hpp.
void bitshuffle_tiles_simd(std::span<const u32> in, std::span<u32> out,
                           SimdLevel level);
void bitunshuffle_tiles_simd(std::span<const u32> in, std::span<u32> out,
                             SimdLevel level);

/// Vectorized zero-block marking (bit-identical to mark_blocks).
void mark_blocks_simd(std::span<const u32> words, std::span<u8> byte_flags,
                      std::span<u8> bit_flags, SimdLevel level);

/// One 32-word unit bit transpose: out[j * out_stride] = plane j (bit j of
/// each input word, word i at bit i).  Exposed for the equivalence tests;
/// the AVX2 tier uses the movemask-epi8 plane extraction, SSE2 a vectorized
/// Hacker's Delight swap network, scalar the reference network.
void transpose_unit_simd(const u32* in, u32* out, size_t out_stride,
                         SimdLevel level);

/// The unit transpose resolved to a concrete tier, for callers that loop
/// tiles themselves (the fused decode strips, core/kernels_decode.hpp):
/// fetching the pointer once hoists the dispatch out of the per-unit loop.
using TransposeUnitFn = void (*)(const u32* in, u32* out, size_t out_stride);
TransposeUnitFn transpose_unit_fn(SimdLevel level);

// ---- fused tile pipeline ---------------------------------------------------

struct FusedTileResult {
  size_t saturated = 0;  ///< residual codes clipped to +/-(2^15 - 1)
  i64 anchor = 0;        ///< pre-quantized first value (header field)
};

/// Scratch sizing for the fused pipeline: `row` covers the rotating
/// pre-quantized row buffers + delta row (+ a zero row for absent
/// neighbours), `plane` the previous-plane buffer (rank 3 only, else 0).
size_t fused_row_scratch_elems(Dims dims);
size_t fused_plane_scratch_elems(Dims dims);

/// The fused stage kernel: quantize + Lorenzo + encode + bitshuffle + mark
/// in one pass over `data`.  Outputs exactly what DualQuantStage +
/// BitshuffleMarkStage produce — `shuffled` (total_words u32), `byte_flags`
/// (one per 16-byte block) and `bit_flags` (packed) — byte-for-byte, without
/// ever materializing the i64[count] pre-quant array.  `row_scratch` /
/// `plane_scratch` must hold fused_*_scratch_elems(dims) elements (contents
/// need not be initialized).  V2 quantization only.  `f32_fast` opts into
/// the margin-tested fast-quant row for the overload's dtype (the f64
/// overload routes through the prequantize_f64fast kernel); output is
/// bit-identical either way.
FusedTileResult fused_quant_shuffle_mark(FloatSpan data, Dims dims,
                                         double abs_eb, bool f32_fast,
                                         std::span<u32> shuffled,
                                         std::span<u8> byte_flags,
                                         std::span<u8> bit_flags,
                                         std::span<i64> row_scratch,
                                         std::span<i64> plane_scratch,
                                         SimdLevel level);
FusedTileResult fused_quant_shuffle_mark(std::span<const f64> data, Dims dims,
                                         double abs_eb, bool f32_fast,
                                         std::span<u32> shuffled,
                                         std::span<u8> byte_flags,
                                         std::span<u8> bit_flags,
                                         std::span<i64> row_scratch,
                                         std::span<i64> plane_scratch,
                                         SimdLevel level);

// ---- tile-parallel fused pipeline ------------------------------------------
//
// The cuSZ+ observation applied to the host path: pre-quantization is
// pointwise, so any tile strip can *re-prequantize* the few predecessor
// values its Lorenzo stencil reaches across the strip boundary (one value
// in 1-D, one row in 2-D, one plane in 3-D) and then predict independently
// of every other strip.  Strips are aligned to whole 2048-code tiles, so
// each worker owns a disjoint region of `shuffled`/`byte_flags`/`bit_flags`
// and the assembled stream is byte-identical to the serial fused pass for
// every strip count, dtype and SIMD tier (pinned by
// tests/test_fused_parallel.cpp).
//
// The strip body is also a faster single-thread implementation than the
// serial streaming pass: rows are pre-quantized in multi-row batches (one
// dispatch per batch instead of per row) and the Lorenzo delta + sign-
// magnitude encode run as one fused vector kernel straight into the tile
// buffer, removing the intermediate delta-row store/reload.

struct FusedParallelPlan {
  size_t strips = 1;         ///< actual strip count (<= requested workers)
  size_t scratch_elems = 0;  ///< total i64 scratch across all strips
  size_t halo_elems = 0;     ///< upper bound on re-prequantized halo elements
                             ///< (exact counts ride the "fused-strip" spans)
};

/// Partition `dims` into tile strips for `workers` workers (0 = one strip
/// per hardware thread).  The strip count is clamped so the halo-recompute
/// overhead stays a small fraction of the total work; the plan is
/// deterministic in (dims, workers) — it never depends on thread timing.
FusedParallelPlan fused_parallel_plan(Dims dims, size_t workers);

/// NUMA-aware strip placement: first-touch one byte per page of each
/// strip's slice of `bytes` from a parallel worker crew shaped like the
/// strip loop, so Linux's first-touch policy places each slice on (or near)
/// the node that will stream through it.  Only meaningful for a freshly
/// allocated buffer (PooledBuffer::fresh()) — recycled pages already
/// belong to a node — and a no-op on single-node machines, when there is
/// only one strip, or when `bytes` is empty.  Purely a placement hint: the
/// touched bytes are about-to-be-overwritten scratch, so output streams
/// are identical with the pass on or off.
void fused_first_touch_strips(MutByteSpan bytes, size_t strips);

/// Tile-parallel fused stage kernel.  Same outputs as
/// fused_quant_shuffle_mark, byte-for-byte, for every plan.  `scratch` must
/// hold plan.scratch_elems i64 (contents need not be initialized); it is
/// sliced per strip, so one pooled lease serves every worker.  When `sink`
/// is non-null each strip records a "fused-strip" span (strip id, halo
/// elems, consumed bytes) on its worker thread.
FusedTileResult fused_quant_shuffle_mark_parallel(
    FloatSpan data, Dims dims, double abs_eb, bool f32_fast,
    std::span<u32> shuffled, std::span<u8> byte_flags,
    std::span<u8> bit_flags, std::span<i64> scratch,
    const FusedParallelPlan& plan, SimdLevel level,
    telemetry::Sink* sink = nullptr);
FusedTileResult fused_quant_shuffle_mark_parallel(
    std::span<const f64> data, Dims dims, double abs_eb, bool f32_fast,
    std::span<u32> shuffled, std::span<u8> byte_flags,
    std::span<u8> bit_flags, std::span<i64> scratch,
    const FusedParallelPlan& plan, SimdLevel level,
    telemetry::Sink* sink = nullptr);

}  // namespace fz
