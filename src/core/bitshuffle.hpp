// Bitshuffle at 32-bit granularity (paper §3.3).
//
// Terminology:
//   word  = u32 (two 16-bit quantization codes)
//   unit  = 32 consecutive words (1024 bits; what one warp ballots over)
//   tile  = 32 units = 1024 words = 4096 bytes (one thread block's share)
//   block = 4 consecutive output words = 16 bytes (the encoder flag unit)
//
// Within a unit, the shuffle is a 32×32 bit-matrix transpose: plane j of
// unit u collects bit j of each of the unit's 32 words (what 32 rounds of
// __ballot_sync compute).  Within a tile the output is stored PLANE-MAJOR:
//
//   out_tile[j*32 + u] = plane j of unit u
//
// matching the paper's fused kernel, which writes back through the shared
// tile transposed (Fig. 5).  The layout matters for ratio: a 16-byte block
// then covers the same bit plane j across four adjacent units, and plane
// sparsity is spatially correlated, so zero blocks cluster.
#pragma once

#include <span>

#include "common/types.hpp"

namespace fz {

constexpr size_t kUnitWords = 32;                            // 128 B
constexpr size_t kUnitsPerTile = 32;
constexpr size_t kTileWords = kUnitWords * kUnitsPerTile;    // 1024
constexpr size_t kTileBytes = kTileWords * sizeof(u32);      // 4096 B
constexpr size_t kBlockWords = 4;                            // 16 B
constexpr size_t kBlocksPerTile = kTileWords / kBlockWords;  // 256

/// Tile-level bitshuffle.  `in.size()` must be a multiple of kTileWords;
/// `out` must have the same size and must not alias `in`.
void bitshuffle_tiles(std::span<const u32> in, std::span<u32> out);

/// Exact inverse of bitshuffle_tiles.
void bitunshuffle_tiles(std::span<const u32> in, std::span<u32> out);

/// In-place 32×32 bit-matrix transpose of one unit (Hacker's Delight
/// block-swap network; 5 stages).  Exposed for tests and the simulated
/// kernel cross-check.  Postcondition: new a[j] bit i == old a[i] bit j.
void transpose_bit_matrix_32(u32* words);

}  // namespace fz
