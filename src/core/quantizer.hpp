// Dual-quantization (paper §2.3, §3.2).
//
// Two variants are provided:
//  * V2 ("optimized", the FZ contribution): residuals are stored as 16-bit
//    sign-magnitude codes — no radius shift, no outlier list; |δ| ≥ 2^15
//    saturates (rare by construction at the paper's error bounds, and the
//    saturation count is reported so callers can verify).
//  * V1 ("original", cuSZ-style, used by the ablation and the cuSZ
//    baseline): residuals inside (-radius, radius) are shifted by +radius
//    into [1, 2·radius); residuals outside are recorded as outliers
//    (index + pre-quantized value) and their code is 0.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace fz {

/// Pre-quantization: p_i = round(d_i / (2·eb)).  The only lossy step of the
/// whole pipeline; |p_i·2eb − d_i| ≤ eb by construction (Fig. 2).
void prequantize(FloatSpan data, double eb, std::span<i64> out);
void prequantize(std::span<const f64> data, double eb, std::span<i64> out);

/// Reconstruction: d̂_i = p_i · 2eb.
void dequantize(std::span<const i64> p, double eb, std::span<f32> out);
void dequantize(std::span<const i64> p, double eb, std::span<f64> out);

/// All-f32 reconstruction fast path: float(p_i) · float(2eb) while
/// |p_i| < 2^24 (where float(p_i) is exact), the double expression above
/// otherwise.  Differs from dequantize by at most the product's f32
/// rounding — the reconstruction still honours the error bound (pinned by
/// QuantizerTest.F32FastDequantHonoursBound).  Selected by
/// FzParams::f32_fast_quant.
void dequantize_f32fast(std::span<const i64> p, double eb, std::span<f32> out);

// ---- V2: optimized (sign-magnitude, saturating) ----------------------------

struct QuantV2Result {
  std::vector<u16> codes;
  size_t saturated = 0;  ///< residuals clipped to ±(2^15 − 1)
};

QuantV2Result quant_encode_v2(std::span<const i64> deltas);
void quant_decode_v2(std::span<const u16> codes, std::span<i64> deltas);

/// Allocation-free variant: encode into caller storage (codes.size() ==
/// deltas.size()); returns the saturation count.  The stage graph uses this
/// with pooled buffers so steady-state compression never touches the heap.
size_t quant_encode_v2(std::span<const i64> deltas, std::span<u16> codes);

// ---- V1: original (radius shift + outliers) ---------------------------------

struct Outlier {
  u64 index;
  i64 delta;
};

struct QuantV1Result {
  std::vector<u16> codes;  ///< δ + radius in [1, 2·radius), 0 = outlier
  std::vector<Outlier> outliers;
  u32 radius = 512;
};

QuantV1Result quant_encode_v1(std::span<const i64> deltas, u32 radius = 512);
void quant_decode_v1(const QuantV1Result& q, std::span<i64> deltas);

/// Codes-into-caller-storage variant (codes.size() == deltas.size()).
/// `outliers` is cleared and refilled (its capacity is reused across calls;
/// the outlier list is the one genuinely data-dependent V1 output).
void quant_encode_v1(std::span<const i64> deltas, u32 radius,
                     std::span<u16> codes, std::vector<Outlier>& outliers);

}  // namespace fz
