#include "core/encoder.hpp"

#include <algorithm>
#include <atomic>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/bitshuffle.hpp"
#include "substrate/scan.hpp"

namespace fz {

void mark_blocks(std::span<const u32> words, std::span<u8> byte_flags,
                 std::span<u8> bit_flags) {
  FZ_REQUIRE(words.size() % kBlockWords == 0,
             "encoder: word count must be a multiple of the block size");
  const size_t nblocks = words.size() / kBlockWords;
  FZ_REQUIRE(byte_flags.size() == nblocks &&
                 bit_flags.size() == div_ceil(nblocks, 8),
             "encoder: flag array size mismatch");
  std::fill(byte_flags.begin(), byte_flags.end(), u8{0});
  std::fill(bit_flags.begin(), bit_flags.end(), u8{0});
  // 4096-block chunks keep each thread's bit_flags writes on disjoint
  // bytes (4096 % 8 == 0), so the |= below is race-free.
  parallel_chunks(nblocks, 4096, [&](size_t b, size_t e) {
    for (size_t blk = b; blk < e; ++blk) {
      const u32* w = words.data() + blk * kBlockWords;
      const u32 nz = w[0] | w[1] | w[2] | w[3];
      if (nz != 0) {
        byte_flags[blk] = 1;
        bit_flags[blk / 8] |= static_cast<u8>(1u << (blk % 8));
      }
    }
  });
}

void mark_blocks(std::span<const u32> words, std::vector<u8>& byte_flags,
                 std::vector<u8>& bit_flags) {
  FZ_REQUIRE(words.size() % kBlockWords == 0,
             "encoder: word count must be a multiple of the block size");
  const size_t nblocks = words.size() / kBlockWords;
  byte_flags.resize(nblocks);
  bit_flags.resize(div_ceil(nblocks, 8));
  mark_blocks(words, std::span<u8>{byte_flags}, std::span<u8>{bit_flags});
}

size_t compact_blocks(std::span<const u32> words,
                      std::span<const u8> byte_flags, std::span<u32> flags32,
                      std::span<u32> offsets, std::span<u32> scan_scratch,
                      std::span<u32> blocks_out,
                      cudasim::CostSheet* scan_cost) {
  const size_t nblocks = byte_flags.size();
  FZ_REQUIRE(words.size() == nblocks * kBlockWords, "encoder: size mismatch");
  FZ_REQUIRE(flags32.size() == nblocks && offsets.size() == nblocks,
             "encoder: scratch size mismatch");

  // Exclusive prefix sum of the byte flags gives each block's output slot
  // (the paper's phase-2 CUB ExclusiveSum).
  parallel_chunks(nblocks, size_t{1} << 16, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) flags32[i] = byte_flags[i];
  });
  if (scan_cost != nullptr) {
    *scan_cost =
        scan_exclusive_device_model(flags32, offsets, scan_scratch, 2048);
  } else {
    // The device model is the same scan plus a CostSheet; skip the sheet
    // (its name string allocates) so warm compress calls stay alloc-free.
    scan_exclusive_parallel(flags32, offsets, scan_scratch);
  }

  const size_t nonzero =
      nblocks == 0 ? 0 : offsets.back() + flags32.back();
  FZ_REQUIRE(blocks_out.size() >= nonzero * kBlockWords,
             "encoder: output too small");
  parallel_chunks(nblocks, 4096, [&](size_t b, size_t e) {
    for (size_t blk = b; blk < e; ++blk) {
      if (byte_flags[blk] == 0) continue;
      const u32 slot = offsets[blk];
      for (size_t k = 0; k < kBlockWords; ++k)
        blocks_out[slot * kBlockWords + k] = words[blk * kBlockWords + k];
    }
  });
  return nonzero;
}

cudasim::CostSheet compact_blocks(std::span<const u32> words,
                                  std::span<const u8> byte_flags,
                                  std::vector<u32>& blocks_out) {
  const size_t nblocks = byte_flags.size();
  std::vector<u32> flags32(nblocks), offsets(nblocks);
  std::vector<u32> scan_scratch(2 * scan_chunk_count(nblocks), 0);
  blocks_out.resize(words.size());
  cudasim::CostSheet cost;
  const size_t nonzero = compact_blocks(words, byte_flags, flags32, offsets,
                                        scan_scratch, blocks_out, &cost);
  blocks_out.resize(nonzero * kBlockWords);
  return cost;
}

EncodeResult encode_blocks(std::span<const u32> words) {
  EncodeResult r;
  mark_blocks(words, r.byte_flags, r.bit_flags);
  compact_blocks(words, r.byte_flags, r.blocks);
  r.total_blocks = r.byte_flags.size();
  r.nonzero_blocks = r.blocks.size() / kBlockWords;
  return r;
}

size_t decode_block_offsets(std::span<const u8> bit_flags,
                            std::span<const u32> blocks,
                            std::span<u32> flags32, std::span<u32> offsets,
                            std::span<u32> scan_scratch) {
  const size_t nblocks = flags32.size();
  FZ_FORMAT_REQUIRE(bit_flags.size() >= div_ceil(nblocks, 8),
                    "decoder: flag array too small");
  FZ_REQUIRE(offsets.size() == nblocks, "decoder: scratch size mismatch");
  // Offsets are recovered with the same prefix sum the encoder used.
  parallel_chunks(nblocks, size_t{1} << 16, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i)
      flags32[i] = (bit_flags[i / 8] >> (i % 8)) & 1u;
  });
  scan_exclusive_parallel(flags32, offsets, scan_scratch);
  const size_t nonzero = nblocks == 0 ? 0 : offsets.back() + flags32.back();
  FZ_FORMAT_REQUIRE(blocks.size() == nonzero * kBlockWords,
                    "decoder: block payload size mismatch");
  return nonzero;
}

void decode_blocks(std::span<const u8> bit_flags, std::span<const u32> blocks,
                   std::span<u32> out, std::span<u32> flags32,
                   std::span<u32> offsets, std::span<u32> scan_scratch) {
  FZ_REQUIRE(out.size() % kBlockWords == 0, "decoder: bad output size");
  const size_t nblocks = out.size() / kBlockWords;
  FZ_REQUIRE(flags32.size() == nblocks, "decoder: scratch size mismatch");
  decode_block_offsets(bit_flags, blocks, flags32, offsets, scan_scratch);
  parallel_chunks(nblocks, 4096, [&](size_t b, size_t e) {
    for (size_t blk = b; blk < e; ++blk) {
      u32* dst = out.data() + blk * kBlockWords;
      if (flags32[blk] == 0) {
        for (size_t k = 0; k < kBlockWords; ++k) dst[k] = 0;
        continue;
      }
      const u32 slot = offsets[blk];
      for (size_t k = 0; k < kBlockWords; ++k)
        dst[k] = blocks[slot * kBlockWords + k];
    }
  });
}

void decode_blocks(std::span<const u8> bit_flags, std::span<const u32> blocks,
                   std::span<u32> out) {
  const size_t nblocks = out.size() / kBlockWords;
  std::vector<u32> flags32(nblocks), offsets(nblocks);
  std::vector<u32> scan_scratch(2 * scan_chunk_count(nblocks), 0);
  decode_blocks(bit_flags, blocks, out, flags32, offsets, scan_scratch);
}

}  // namespace fz
