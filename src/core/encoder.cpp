#include "core/encoder.hpp"

#include <atomic>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/bitshuffle.hpp"
#include "substrate/scan.hpp"

namespace fz {

void mark_blocks(std::span<const u32> words, std::vector<u8>& byte_flags,
                 std::vector<u8>& bit_flags) {
  FZ_REQUIRE(words.size() % kBlockWords == 0,
             "encoder: word count must be a multiple of the block size");
  const size_t nblocks = words.size() / kBlockWords;
  byte_flags.assign(nblocks, 0);
  bit_flags.assign(div_ceil(nblocks, 8), 0);
  parallel_chunks(nblocks, 4096, [&](size_t b, size_t e) {
    for (size_t blk = b; blk < e; ++blk) {
      const u32* w = words.data() + blk * kBlockWords;
      const u32 nz = w[0] | w[1] | w[2] | w[3];
      if (nz != 0) {
        byte_flags[blk] = 1;
        bit_flags[blk / 8] |= static_cast<u8>(1u << (blk % 8));
      }
    }
  });
}

cudasim::CostSheet compact_blocks(std::span<const u32> words,
                                  std::span<const u8> byte_flags,
                                  std::vector<u32>& blocks_out) {
  const size_t nblocks = byte_flags.size();
  FZ_REQUIRE(words.size() == nblocks * kBlockWords, "encoder: size mismatch");

  // Exclusive prefix sum of the byte flags gives each block's output slot
  // (the paper's phase-2 CUB ExclusiveSum).
  std::vector<u32> flags32(nblocks);
  parallel_for(0, nblocks, [&](size_t i) { flags32[i] = byte_flags[i]; });
  std::vector<u32> offsets(nblocks);
  cudasim::CostSheet scan_cost =
      scan_exclusive_device_model(flags32, offsets);

  const size_t nonzero =
      nblocks == 0 ? 0 : offsets.back() + flags32.back();
  blocks_out.resize(nonzero * kBlockWords);
  parallel_for(0, nblocks, [&](size_t blk) {
    if (byte_flags[blk] == 0) return;
    const u32 slot = offsets[blk];
    for (size_t k = 0; k < kBlockWords; ++k)
      blocks_out[slot * kBlockWords + k] = words[blk * kBlockWords + k];
  });
  return scan_cost;
}

EncodeResult encode_blocks(std::span<const u32> words) {
  EncodeResult r;
  mark_blocks(words, r.byte_flags, r.bit_flags);
  compact_blocks(words, r.byte_flags, r.blocks);
  r.total_blocks = r.byte_flags.size();
  r.nonzero_blocks = r.blocks.size() / kBlockWords;
  return r;
}

void decode_blocks(std::span<const u8> bit_flags, std::span<const u32> blocks,
                   std::span<u32> out) {
  FZ_REQUIRE(out.size() % kBlockWords == 0, "decoder: bad output size");
  const size_t nblocks = out.size() / kBlockWords;
  FZ_FORMAT_REQUIRE(bit_flags.size() >= div_ceil(nblocks, 8),
                    "decoder: flag array too small");
  // Offsets are recovered with the same prefix sum the encoder used.
  std::vector<u32> flags32(nblocks);
  parallel_for(0, nblocks, [&](size_t i) {
    flags32[i] = (bit_flags[i / 8] >> (i % 8)) & 1u;
  });
  std::vector<u32> offsets(nblocks);
  scan_exclusive_parallel(flags32, offsets);
  const size_t nonzero = nblocks == 0 ? 0 : offsets.back() + flags32.back();
  FZ_FORMAT_REQUIRE(blocks.size() == nonzero * kBlockWords,
                    "decoder: block payload size mismatch");
  parallel_for(0, nblocks, [&](size_t blk) {
    u32* dst = out.data() + blk * kBlockWords;
    if (flags32[blk] == 0) {
      for (size_t k = 0; k < kBlockWords; ++k) dst[k] = 0;
      return;
    }
    const u32 slot = offsets[blk];
    for (size_t k = 0; k < kBlockWords; ++k)
      dst[k] = blocks[slot * kBlockWords + k];
  });
}

}  // namespace fz
