#include "common/timer.hpp"

#include <algorithm>
#include <sstream>

namespace fz {

double time_best_of(int iters, const std::function<void()>& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < std::max(iters, 1); ++i) {
    Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

std::string Dims::to_string() const {
  std::ostringstream os;
  os << x;
  if (rank() >= 2) os << "x" << y;
  if (rank() >= 3) os << "x" << z;
  return os.str();
}

}  // namespace fz
