// fz::ThreadPool — a persistent worker crew with stable worker indices.
//
// parallel.hpp's task crew spins threads up per call, which is the right
// shape for one-shot fork/join loops but wrong for a long-lived service:
// fz::Reader answers a stream of small random-access requests, and paying
// thread creation per request would dwarf the decode itself.  This pool
// keeps its workers alive for the owner's lifetime and hands every task the
// index of the worker running it, so callers can keep per-worker state
// (one fz::Codec per worker — the Codec threading contract) with no
// locking.
//
// The one-shot crew behaviour survives as run_task_crew() below;
// parallel.hpp's non-OpenMP fallback delegates to it, so both the fork/join
// loops and the pool share one tested implementation of dynamic task
// claiming.
//
// Contract:
//   * submit() enqueues task(worker_index); tasks run in FIFO order but
//     complete in any order.  Tasks must not throw — error delivery is the
//     caller's job (fz::Reader routes errors through its cache entries);
//     an escaping exception is swallowed and counted (dropped_exceptions).
//   * wait_idle() blocks until the queue is empty and no task is running.
//   * A task may submit() further tasks, but must NOT wait on another
//     task's completion unless the dependency already runs (waiting on a
//     queued task from inside the last free worker deadlocks).
//   * The destructor drains nothing: it stops after the tasks already
//     dequeued finish and discards the rest.  Call wait_idle() first when
//     every submitted task must run.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace fz {

/// Number of NUMA memory nodes on this machine (>= 1).  Probed once from
/// /sys/devices/system/node and cached; returns 1 wherever the sysfs tree
/// is absent (non-Linux, containers without sysfs).  The NUMA first-touch
/// placement pass (core/kernels_simd.hpp fused_first_touch_strips) gates on
/// this so single-node boxes pay nothing.
size_t numa_node_count();

class ThreadPool {
 public:
  /// Spin up `workers` persistent threads (0 = one per hardware thread).
  explicit ThreadPool(size_t workers = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  size_t worker_count() const { return threads_.size(); }

  /// Enqueue task(worker_index), worker_index in [0, worker_count()).
  void submit(std::function<void(size_t)> task);

  /// Block until the queue is empty and every worker is idle.
  void wait_idle();

  /// Tasks whose exceptions escaped into the pool (a contract violation;
  /// exposed so tests can assert it stays zero).
  size_t dropped_exceptions() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop(size_t worker);

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: queue non-empty or stop
  std::condition_variable idle_cv_;  ///< wait_idle: queue drained + all idle
  std::deque<std::function<void(size_t)>> queue_;
  size_t active_ = 0;  ///< tasks currently executing
  bool stop_ = false;
  std::atomic<size_t> dropped_{0};
  std::vector<std::thread> threads_;
};

/// One-shot dynamic task crew: run fn(task, worker) for every task in
/// [0, count) on `workers` threads (the calling thread doubles as worker 0).
/// Tasks are claimed dynamically so uneven costs balance; worker indices are
/// unique per concurrent thread; the first exception is captured and
/// rethrown on the calling thread after the join.  This is the engine
/// behind parallel_for/parallel_tasks when OpenMP is unavailable.
/// Requires workers >= 1.
template <typename Fn>
void run_task_crew(size_t count, size_t workers, Fn&& fn) {
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;
  auto body = [&](size_t w) {
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < count;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      if (failed.load(std::memory_order_relaxed)) break;
      try {
        fn(i, w);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };
  std::vector<std::thread> crew;
  crew.reserve(workers - 1);
  for (size_t w = 1; w < workers; ++w) crew.emplace_back(body, w);
  body(0);
  for (auto& t : crew) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace fz
