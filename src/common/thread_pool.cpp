// fzlint:hot-path — every Reader request crosses the pool's queue mutex;
// fzlint flags allocation and blocking inside its critical sections.
#include "common/thread_pool.hpp"

#if defined(__linux__)
#include <dirent.h>

#include <cstdlib>
#include <cstring>
#endif

namespace fz {

namespace {

size_t probe_numa_node_count() {
#if defined(__linux__)
  // Count /sys/devices/system/node/node<N> entries — the same view libnuma
  // reports, without the library dependency.
  DIR* dir = ::opendir("/sys/devices/system/node");
  if (dir == nullptr) return 1;
  size_t nodes = 0;
  while (const dirent* entry = ::readdir(dir)) {
    const char* name = entry->d_name;
    if (std::strncmp(name, "node", 4) != 0) continue;
    char* end = nullptr;
    (void)std::strtoul(name + 4, &end, 10);
    if (end != name + 4 && *end == '\0') ++nodes;
  }
  ::closedir(dir);
  return nodes == 0 ? 1 : nodes;
#else
  return 1;
#endif
}

}  // namespace

size_t numa_node_count() {
  static const size_t nodes = probe_numa_node_count();
  return nodes;
}

ThreadPool::ThreadPool(size_t workers) {
  if (workers == 0) {
    const unsigned n = std::thread::hardware_concurrency();
    workers = n == 0 ? 1 : n;
  }
  threads_.reserve(workers);
  for (size_t w = 0; w < workers; ++w)
    threads_.emplace_back([this, w] { worker_loop(w); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    queue_.clear();  // undequeued tasks are discarded, per the contract
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void(size_t)> task) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    // Deque growth is amortized block-at-a-time and submit IS the
    // producer edge — the alternative (allocate a node outside, splice
    // inside) costs an allocation per submit instead of per block.
    queue_.push_back(std::move(task));  // fzlint:allow(lock-discipline)
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  // Condition-variable wait releases the mutex while parked.
  idle_cv_.wait(lock,  // fzlint:allow(lock-discipline)
                [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop(size_t worker) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Condition-variable wait releases the mutex while parked.
    work_cv_.wait(lock,  // fzlint:allow(lock-discipline)
                  [this] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    std::function<void(size_t)> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    try {
      task(worker);
    } catch (...) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    task = nullptr;  // release captures before reporting idle
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace fz
