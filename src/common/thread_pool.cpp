#include "common/thread_pool.hpp"

namespace fz {

ThreadPool::ThreadPool(size_t workers) {
  if (workers == 0) {
    const unsigned n = std::thread::hardware_concurrency();
    workers = n == 0 ? 1 : n;
  }
  threads_.reserve(workers);
  for (size_t w = 0; w < workers; ++w)
    threads_.emplace_back([this, w] { worker_loop(w); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    queue_.clear();  // undequeued tasks are discarded, per the contract
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void(size_t)> task) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop(size_t worker) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    std::function<void(size_t)> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    try {
      task(worker);
    } catch (...) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    task = nullptr;  // release captures before reporting idle
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace fz
