#include "common/buffer.hpp"

#include <algorithm>

namespace fz {

namespace {
fz::u8* allocate(size_t bytes) {
  return static_cast<fz::u8*>(
      ::operator new[](bytes, std::align_val_t{AlignedBuffer::kAlignment}));
}
}  // namespace

void AlignedBuffer::resize(size_t bytes) {
  if (bytes == 0) {
    data_.reset();
    size_ = 0;
    return;
  }
  data_.reset(allocate(bytes));
  std::memset(data_.get(), 0, bytes);
  size_ = bytes;
}

void AlignedBuffer::resize_uninitialized(size_t bytes) {
  if (bytes == 0) {
    data_.reset();
    size_ = 0;
    return;
  }
  data_.reset(allocate(bytes));
  size_ = bytes;
}

void AlignedBuffer::resize_preserving(size_t bytes) {
  if (bytes == size_) return;
  if (bytes == 0) {
    resize(0);
    return;
  }
  std::unique_ptr<u8[], Free> next(allocate(bytes));
  const size_t keep = std::min(size_, bytes);
  if (keep != 0) std::memcpy(next.get(), data_.get(), keep);
  if (bytes > keep) std::memset(next.get() + keep, 0, bytes - keep);
  data_ = std::move(next);
  size_ = bytes;
}

}  // namespace fz
