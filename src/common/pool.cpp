#include "common/pool.hpp"

#include <cstring>
#include <utility>

namespace fz {

PooledBuffer& PooledBuffer::operator=(PooledBuffer&& other) noexcept {
  if (this != &other) {
    release();
    pool_ = std::exchange(other.pool_, nullptr);
    buf_ = std::move(other.buf_);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

void PooledBuffer::release() {
  if (pool_ != nullptr && buf_.size() != 0) pool_->put_back(std::move(buf_));
  pool_ = nullptr;
  buf_ = AlignedBuffer{};
  size_ = 0;
}

PooledBuffer BufferPool::acquire(size_t bytes, bool zeroed) {
  if (bytes == 0) return {};
  AlignedBuffer buf;
  bool recycled = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Smallest cached buffer that fits.  Usage patterns are steady (the
    // same pipeline sizes recur every call), so first-fit keeps waste low
    // without a size-class scheme.
    auto it = free_.lower_bound(bytes);
    if (it != free_.end()) {
      auto node = free_.extract(it);
      buf = std::move(node.mapped());
      recycled = true;
      ++stats_.hits;
      stats_.cached_bytes -= buf.size();
      --stats_.cached_buffers;
    } else {
      ++stats_.misses;
      stats_.allocated_bytes += bytes;
      if (stats_.allocated_bytes > stats_.peak_allocated_bytes)
        stats_.peak_allocated_bytes = stats_.allocated_bytes;
    }
    ++stats_.leased_buffers;
  }
  if (!recycled) {
    buf.resize(bytes);  // fresh allocations are already zeroed
  } else if (zeroed) {
    std::memset(buf.data(), 0, bytes);
  }
  return PooledBuffer(this, std::move(buf), bytes);
}

void BufferPool::put_back(AlignedBuffer buf) {
  const size_t cap = buf.size();
  std::lock_guard<std::mutex> lock(mu_);
  --stats_.leased_buffers;
  ++stats_.cached_buffers;
  stats_.cached_bytes += cap;
  free_.emplace(cap, std::move(buf));
}

void BufferPool::trim() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.allocated_bytes -= stats_.cached_bytes;
  stats_.cached_bytes = 0;
  stats_.cached_buffers = 0;
  free_.clear();
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace fz
