// fzlint:hot-path — the pool mutex sits on every buffer lease of every
// codec; fzlint flags allocation and blocking inside its critical sections.
#include "common/pool.hpp"

#include <cstring>
#include <utility>

// Only the inline atomic-counter surface of the sink is used here, so
// fz_common does not link against fz_telemetry (which itself links
// fz_common).  This is the one sanctioned back-edge in the layer DAG —
// declaring `common: telemetry` in tools/fzlint_layers.txt would make the
// declared graph cyclic, so the exception lives here, at the include site.
#include "telemetry/telemetry.hpp"  // fzlint:allow(layering)

namespace fz {

PooledBuffer& PooledBuffer::operator=(PooledBuffer&& other) noexcept {
  if (this != &other) {
    release();
    pool_ = std::exchange(other.pool_, nullptr);
    buf_ = std::move(other.buf_);
    size_ = std::exchange(other.size_, 0);
    fresh_ = std::exchange(other.fresh_, false);
  }
  return *this;
}

void PooledBuffer::release() {
  if (pool_ != nullptr && buf_.size() != 0) pool_->put_back(std::move(buf_));
  pool_ = nullptr;
  buf_ = AlignedBuffer{};
  size_ = 0;
  fresh_ = false;
}

PooledBuffer BufferPool::acquire(size_t bytes, bool zeroed) {
  if (bytes == 0) return {};
  AlignedBuffer buf;
  bool recycled = false;
  size_t reclaimed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Smallest cached buffer that fits.  Usage patterns are steady (the
    // same pipeline sizes recur every call), so first-fit keeps waste low
    // without a size-class scheme.
    auto it = free_.lower_bound(bytes);
    if (it != free_.end()) {
      auto node = free_.extract(it);
      buf = std::move(node.mapped());
      // Keep the emptied node so the matching put_back() reuses it instead
      // of allocating a fresh one — the lease cycle stays heap-free.  The
      // push reuses capacity freed by that same cycle; steady-state
      // heap-freedom is pinned by CodecTest.SteadyStateDoesNotAllocate.
      spare_nodes_.push_back(std::move(node));  // fzlint:allow(lock-discipline)
      recycled = true;
      reclaimed = buf.size();
      ++stats_.hits;
      stats_.cached_bytes -= buf.size();
      --stats_.cached_buffers;
    } else {
      ++stats_.misses;
      stats_.allocated_bytes += bytes;
      if (stats_.allocated_bytes > stats_.peak_allocated_bytes)
        stats_.peak_allocated_bytes = stats_.allocated_bytes;
    }
    ++stats_.leased_buffers;
  }
  if (sink_ != nullptr) {
    using telemetry::Counter;
    sink_->count(recycled ? Counter::PoolHit : Counter::PoolMiss, 1);
    if (recycled) {
      sink_->count(Counter::PoolBytesRetained,
                   -static_cast<i64>(reclaimed));
    } else {
      sink_->count(Counter::PoolBytesAllocated, static_cast<i64>(bytes));
    }
  }
  if (!recycled) {
    if (zeroed) {
      buf.resize(bytes);  // fresh allocations are already zeroed
    } else {
      // The caller overwrites every byte, so leave the fresh pages
      // untouched: large allocations stay zero-fill-on-demand mappings,
      // which lets the NUMA first-touch pass (fused_first_touch_strips)
      // place each strip's pages on the node that will work on them.
      buf.resize_uninitialized(bytes);
    }
  } else if (zeroed) {
    std::memset(buf.data(), 0, bytes);
  }
  return PooledBuffer(this, std::move(buf), bytes, /*fresh=*/!recycled);
}

void BufferPool::put_back(AlignedBuffer buf) {
  const size_t cap = buf.size();
  if (sink_ != nullptr)
    sink_->count(telemetry::Counter::PoolBytesRetained,
                 static_cast<i64>(cap));
  std::lock_guard<std::mutex> lock(mu_);
  --stats_.leased_buffers;
  ++stats_.cached_buffers;
  stats_.cached_bytes += cap;
  if (!spare_nodes_.empty()) {
    auto node = std::move(spare_nodes_.back());
    spare_nodes_.pop_back();
    node.key() = cap;
    node.mapped() = std::move(buf);
    // Node-handle reinsertion recycles the map node — no allocation.
    free_.insert(std::move(node));  // fzlint:allow(lock-discipline)
  } else {
    // Only reached when a buffer is returned that was never acquired from
    // the free list (a pool's first leases); steady state takes the
    // node-reuse branch above.
    free_.emplace(cap, std::move(buf));  // fzlint:allow(lock-discipline)
  }
}

void BufferPool::trim() {
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_ != nullptr)
    sink_->count(telemetry::Counter::PoolBytesRetained,
                 -static_cast<i64>(stats_.cached_bytes));
  stats_.allocated_bytes -= stats_.cached_bytes;
  stats_.cached_bytes = 0;
  stats_.cached_buffers = 0;
  free_.clear();
  spare_nodes_.clear();
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace fz
