// Deterministic pseudo-random generation for the synthetic dataset
// generators and property tests.  SplitMix64 seeds an xoshiro256** state;
// both are tiny, fast, and reproducible across platforms (unlike
// std::default_random_engine distributions).
#pragma once

#include <cmath>

#include "common/types.hpp"

namespace fz {

class Rng {
 public:
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    u64 x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      u64 z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  u64 next_u64() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  u32 next_u32() { return static_cast<u32>(next_u64() >> 32); }

  /// Uniform in [0, 1).
  double uniform() { return (next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  u64 below(u64 n) { return n == 0 ? 0 : next_u64() % n; }

  /// Standard normal via Box–Muller (no cached spare; simplicity over speed).
  double normal() {
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  }
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

 private:
  static constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
  u64 state_[4];
};

}  // namespace fz
