// Bit-manipulation helpers shared by the codecs.
#pragma once

#include <bit>
#include <cstring>

#include "common/types.hpp"

namespace fz {

/// Number of bits needed to represent v (0 -> 0).
constexpr int bit_width_u32(u32 v) { return std::bit_width(v); }
constexpr int bit_width_u64(u64 v) { return std::bit_width(v); }

constexpr int popcount_u32(u32 v) { return std::popcount(v); }
constexpr int popcount_u64(u64 v) { return std::popcount(v); }

/// Round `v` up to the next multiple of `m` (m > 0).
constexpr size_t round_up(size_t v, size_t m) { return (v + m - 1) / m * m; }
constexpr size_t div_ceil(size_t v, size_t m) { return (v + m - 1) / m; }

/// Reinterpret the bits of a float as u32 and back (no UB, unlike casts).
inline u32 float_bits(f32 v) { return std::bit_cast<u32>(v); }
inline f32 bits_float(u32 v) { return std::bit_cast<f32>(v); }

/// Load/store little-endian scalars from byte streams.
template <typename T>
inline T load_le(const u8* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}
template <typename T>
inline void store_le(u8* p, T v) {
  std::memcpy(p, &v, sizeof(T));
}

/// Sign-magnitude encoding used by the optimized dual-quantization (§3.2 of
/// the paper): the most significant bit of the 16-bit code carries the sign,
/// the low 15 bits the magnitude. Magnitudes ≥ 2^15 saturate; the paper
/// discards outlier handling and accepts the (rare) precision loss.
constexpr u16 kSignBit16 = u16{1} << 15;
constexpr i32 kMaxMagnitude16 = (i32{1} << 15) - 1;

constexpr u16 sign_magnitude_encode(i32 delta) {
  const bool neg = delta < 0;
  i64 mag = neg ? -static_cast<i64>(delta) : static_cast<i64>(delta);
  if (mag > kMaxMagnitude16) mag = kMaxMagnitude16;  // saturation, documented
  return static_cast<u16>(mag) | (neg ? kSignBit16 : u16{0});
}

constexpr i32 sign_magnitude_decode(u16 code) {
  const i32 mag = code & ~kSignBit16;
  return (code & kSignBit16) ? -mag : mag;
}

/// True when encoding `delta` as a 16-bit sign-magnitude code would saturate.
constexpr bool sign_magnitude_saturates(i64 delta) {
  const i64 mag = delta < 0 ? -delta : delta;
  return mag > kMaxMagnitude16;
}

/// Zig-zag mapping (used by the SZ-style baselines' quantization codes).
constexpr u32 zigzag_encode(i32 v) {
  return (static_cast<u32>(v) << 1) ^ static_cast<u32>(v >> 31);
}
constexpr i32 zigzag_decode(u32 v) {
  return static_cast<i32>(v >> 1) ^ -static_cast<i32>(v & 1);
}

}  // namespace fz
