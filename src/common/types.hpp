// Core value types shared by every fz subsystem.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace fz {

using std::size_t;
using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using f32 = float;
using f64 = double;

/// Logical extent of a scalar field, up to three dimensions.
///
/// Dimensions are stored fastest-varying first (x, y, z), matching the
/// row-major flattening `idx = x + nx*(y + ny*z)` used throughout.
/// Unused trailing dimensions are 1.
struct Dims {
  size_t x = 1;
  size_t y = 1;
  size_t z = 1;

  constexpr Dims() = default;
  constexpr Dims(size_t nx) : x(nx) {}
  constexpr Dims(size_t nx, size_t ny) : x(nx), y(ny) {}
  constexpr Dims(size_t nx, size_t ny, size_t nz) : x(nx), y(ny), z(nz) {}

  /// Number of meaningful dimensions (trailing 1s do not count).
  constexpr int rank() const {
    if (z > 1) return 3;
    if (y > 1) return 2;
    return 1;
  }
  constexpr size_t count() const { return x * y * z; }
  constexpr size_t linear(size_t ix, size_t iy = 0, size_t iz = 0) const {
    return ix + x * (iy + y * iz);
  }
  constexpr bool operator==(const Dims&) const = default;

  std::string to_string() const;
};

/// User-facing error-bound specification.
///
/// `Relative` bounds are relative to the value *range* of the field
/// (max - min), the convention used by SDRBench and the FZ-GPU paper
/// ("range-based relative error bounds").  They are resolved to an
/// absolute bound before compression.
///
/// `PointwiseRelative` bounds each value's error relative to its own
/// magnitude: |d̂_i/d_i − 1| ≤ value.  Implemented with the logarithmic
/// transform of Liang et al. (CLUSTER'18), the scheme the paper applies to
/// HACC (§4.1); requires strictly positive data.
enum class ErrorBoundMode { Absolute, Relative, PointwiseRelative };

struct ErrorBound {
  ErrorBoundMode mode = ErrorBoundMode::Relative;
  double value = 1e-3;

  static constexpr ErrorBound absolute(double v) {
    return {ErrorBoundMode::Absolute, v};
  }
  static constexpr ErrorBound relative(double v) {
    return {ErrorBoundMode::Relative, v};
  }
  static constexpr ErrorBound pointwise_relative(double v) {
    return {ErrorBoundMode::PointwiseRelative, v};
  }
  /// Resolve to an absolute bound given the field's value range.
  double resolve(double value_range) const {
    return mode == ErrorBoundMode::Absolute ? value : value * value_range;
  }
};

using ByteSpan = std::span<const u8>;
using MutByteSpan = std::span<u8>;
using FloatSpan = std::span<const f32>;
using MutFloatSpan = std::span<f32>;

}  // namespace fz
