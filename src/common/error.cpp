#include "common/error.hpp"

#include <sstream>

namespace fz {
namespace {

std::string format(const char* file, int line, const std::string& msg) {
  std::ostringstream os;
  os << msg << " (" << file << ":" << line << ")";
  return os.str();
}

}  // namespace

void throw_error(const char* file, int line, const std::string& msg) {
  throw Error(format(file, line, msg));
}

void throw_format_error(const char* file, int line, const std::string& msg) {
  throw FormatError(format(file, line, msg));
}

}  // namespace fz
