// AlignedBuffer: an owning, cache-line-aligned byte buffer.
//
// Compression pipelines move large flat arrays between stages; a dedicated
// buffer type (rather than std::vector<u8>) gives us 64-byte alignment for
// vectorized kernels and explicit, audited reallocation behaviour.
#pragma once

#include <cstring>
#include <memory>
#include <span>

#include "common/types.hpp"

namespace fz {

class AlignedBuffer {
 public:
  static constexpr size_t kAlignment = 64;

  AlignedBuffer() = default;
  explicit AlignedBuffer(size_t bytes) { resize(bytes); }

  AlignedBuffer(const AlignedBuffer& other) { *this = other; }
  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) {
      resize(other.size_);
      if (size_ != 0) std::memcpy(data_.get(), other.data_.get(), size_);
    }
    return *this;
  }
  AlignedBuffer(AlignedBuffer&&) noexcept = default;
  AlignedBuffer& operator=(AlignedBuffer&&) noexcept = default;

  /// Resize, discarding contents. New bytes are zero-initialized.
  void resize(size_t bytes);

  /// Resize, discarding contents, WITHOUT touching the new bytes: the pages
  /// come straight from the allocator (for large buffers, untouched
  /// zero-fill-on-demand mappings).  This is what makes NUMA first-touch
  /// placement possible — the eager memset of resize() would commit every
  /// page to the allocating thread's node.  Callers must overwrite every
  /// byte before reading, exactly like a recycled pool buffer.
  void resize_uninitialized(size_t bytes);

  /// Resize preserving the common prefix; new bytes are zero-initialized.
  void resize_preserving(size_t bytes);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  u8* data() { return data_.get(); }
  const u8* data() const { return data_.get(); }

  MutByteSpan bytes() { return {data(), size_}; }
  ByteSpan bytes() const { return {data(), size_}; }

  /// View the buffer as an array of trivially-copyable T.
  template <typename T>
  std::span<T> as() {
    return {reinterpret_cast<T*>(data()), size_ / sizeof(T)};
  }
  template <typename T>
  std::span<const T> as() const {
    return {reinterpret_cast<const T*>(data()), size_ / sizeof(T)};
  }

 private:
  struct Free {
    void operator()(u8* p) const { ::operator delete[](p, std::align_val_t{kAlignment}); }
  };
  std::unique_ptr<u8[], Free> data_;
  size_t size_ = 0;
};

}  // namespace fz
