// fz::Status — the non-throwing error channel of the public API.
//
// The library's internals keep throwing fz::Error subclasses (that is the
// right tool for deep-in-stage failures), but exceptions are the wrong
// boundary for a long-lived service: a daemon must turn every failure into
// a response, never unwind a worker.  Status is that boundary type: a small
// code + message pair returned by Codec::try_compress / try_decompress /
// fz::try_inspect and carried by every fz::Service response.  Exceptions
// are mapped into codes exactly once, at the try_* boundary
// (fz::detail::status_from_current_exception in core/pipeline.cpp) — no
// other layer catches.
//
// The success path allocates nothing: a default-constructed Status is Ok
// with an empty message, so steady-state service loops stay
// allocation-free (the soak test in tests/test_service.cpp pins this with
// a global operator-new counter).
#pragma once

#include <string>
#include <utility>

#include "common/types.hpp"

namespace fz {

/// Stable, wire-safe failure taxonomy (docs/SERVICE.md documents each).
/// Values are part of the fzd wire protocol — append only, never renumber.
enum class StatusCode : u8 {
  Ok = 0,
  InvalidParams = 1,  ///< FzParams/ParamError: bad eb, radius, dims, ...
  InvalidStream = 2,  ///< FormatError: corrupt/truncated/mismatched stream
  BadRequest = 3,     ///< malformed job: empty payload, size/dims mismatch
  PolicyDenied = 4,   ///< tenant policy rejected the job (service layer)
  QueueFull = 5,      ///< admission queue at capacity — retry later
  ShuttingDown = 6,   ///< service is stopping; job was not admitted
  Unsupported = 7,    ///< recognized but unimplemented job/protocol version
  Internal = 8,       ///< anything else; message carries the what() text
};

/// Stable kebab-case name ("ok", "invalid-params", ...), never nullptr.
const char* status_code_name(StatusCode code);

class Status {
 public:
  /// Default is success — `return {};` on the happy path.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  bool ok() const { return code_ == StatusCode::Ok; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "[invalid-stream] header magic mismatch" (or "ok").
  std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::Ok;
  std::string message_;
};

}  // namespace fz
