// Runtime SIMD dispatch for the host kernel layer (core/kernels_simd.*).
//
// The paper's speed comes from warp-level bit manipulation and kernel
// fusion; on the host the same roles are played by vector registers and the
// fused tile pipeline.  Every vectorized kernel ships three tiers —
//   AVX2   : 256-bit integer/double path (movemask bit-transpose, 4x-wide
//            exact llround emulation)
//   SSE2   : 128-bit path (x86-64 baseline, always compiled on x86)
//   Scalar : the pre-existing reference code, bit-identical by definition
// — selected at runtime from CPUID, clamped by an explicit override.
//
// Overrides (strongest first):
//   * FzParams::simd (SimdDispatch) — per-codec, used by the stage graphs
//     and the equivalence tests;
//   * FZ_SIMD environment variable ("scalar" | "sse2" | "avx2") — consulted
//     when the param says Auto, so sanitizer/CI runs can pin a tier without
//     code changes.
// A request above what the CPU supports clamps down to the supported tier
// (never up), so forcing "avx2" on a non-AVX2 box silently runs SSE2 or
// scalar rather than faulting.
#pragma once

#include <cstdlib>
#include <string_view>

#include "common/types.hpp"

namespace fz {

/// Instruction-set tiers, ordered: higher value = wider vectors.
enum class SimdLevel : u8 { Scalar = 0, SSE2 = 1, AVX2 = 2 };

/// Dispatch request: Auto resolves from FZ_SIMD / CPUID at run time.
enum class SimdDispatch : u8 { Auto = 0, Scalar = 1, SSE2 = 2, AVX2 = 3 };

inline const char* simd_level_name(SimdLevel l) {
  switch (l) {
    case SimdLevel::AVX2:
      return "avx2";
    case SimdLevel::SSE2:
      return "sse2";
    default:
      return "scalar";
  }
}

/// Highest tier this CPU executes.  Cached after the first call.
inline SimdLevel simd_supported() {
#if defined(__x86_64__) || defined(__i386__)
  static const SimdLevel cached = [] {
    if (__builtin_cpu_supports("avx2")) return SimdLevel::AVX2;
    if (__builtin_cpu_supports("sse2")) return SimdLevel::SSE2;
    return SimdLevel::Scalar;
  }();
  return cached;
#else
  return SimdLevel::Scalar;
#endif
}

/// Parse a level name ("scalar" | "sse2" | "avx2").  Returns false (and
/// leaves `out` untouched) on anything else.
inline bool simd_parse_level(std::string_view name, SimdLevel& out) {
  if (name == "scalar") {
    out = SimdLevel::Scalar;
  } else if (name == "sse2") {
    out = SimdLevel::SSE2;
  } else if (name == "avx2") {
    out = SimdLevel::AVX2;
  } else {
    return false;
  }
  return true;
}

/// Resolve a dispatch request to a concrete tier: explicit request or
/// FZ_SIMD (when Auto), clamped to what the CPU supports.  Unparseable
/// FZ_SIMD values are ignored (Auto behaviour), never an error.
inline SimdLevel resolve_simd(SimdDispatch d = SimdDispatch::Auto) {
  const SimdLevel hw = simd_supported();
  SimdLevel want = hw;
  if (d == SimdDispatch::Auto) {
    if (const char* env = std::getenv("FZ_SIMD")) {
      SimdLevel parsed;
      if (simd_parse_level(env, parsed)) want = parsed;
    }
  } else {
    want = static_cast<SimdLevel>(static_cast<u8>(d) - 1);
  }
  return want < hw ? want : hw;
}

}  // namespace fz
