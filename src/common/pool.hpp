// BufferPool: a thread-safe pool of recycled AlignedBuffers.
//
// The compression pipeline needs the same handful of large scratch arrays
// (pre-quantized integers, code tiles, shuffled words, block flags) on every
// call.  Allocating them per call costs both time and — worse for a service
// under heavy traffic — allocator contention across worker threads.  The
// pool keeps released buffers on a free list keyed by capacity so a
// steady-state fz::Codec run performs zero scratch heap allocations: every
// acquire() is answered by a recycled buffer (a "hit").
//
// Lifecycle:
//   * acquire(bytes) leases a buffer of at least `bytes`; the returned
//     PooledBuffer exposes exactly `bytes` (the underlying capacity may be
//     larger when a bigger cached buffer is reused).
//   * The lease returns its buffer to the pool on destruction or release().
//   * trim() frees all idle (cached) buffers.
//   * stats() reports hits/misses/bytes for tests and capacity planning.
//
// Thread-safety: acquire/release/trim/stats may be called concurrently.  A
// PooledBuffer itself is NOT synchronized (it is scratch memory owned by one
// thread), and every lease must be released before its pool is destroyed.
#pragma once

#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "common/buffer.hpp"
#include "common/types.hpp"

namespace fz::telemetry {
class Sink;
}  // namespace fz::telemetry

namespace fz {

class BufferPool;

/// RAII lease of a pooled buffer.  Move-only; returns the underlying
/// AlignedBuffer to the pool when destroyed or release()d.
class PooledBuffer {
 public:
  PooledBuffer() = default;
  PooledBuffer(PooledBuffer&& other) noexcept { *this = std::move(other); }
  PooledBuffer& operator=(PooledBuffer&& other) noexcept;
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;
  ~PooledBuffer() { release(); }

  /// Return the buffer to the pool now (no-op on an empty lease).
  void release();

  /// Leased (logical) size in bytes; the allocation may be larger.
  size_t size() const { return size_; }
  size_t capacity() const { return buf_.size(); }
  bool empty() const { return size_ == 0; }

  /// True when this lease was a pool miss — a fresh allocation whose pages
  /// have never been written.  The NUMA first-touch placement pass
  /// (core/kernels_simd.hpp) only runs on fresh leases: recycled pages
  /// already belong to whichever node touched them first.
  bool fresh() const { return fresh_; }

  u8* data() { return buf_.data(); }
  const u8* data() const { return buf_.data(); }
  MutByteSpan bytes() { return {data(), size_}; }
  ByteSpan bytes() const { return {data(), size_}; }

  /// View the leased bytes as an array of trivially-copyable T.
  template <typename T>
  std::span<T> as() {
    return {reinterpret_cast<T*>(data()), size_ / sizeof(T)};
  }
  template <typename T>
  std::span<const T> as() const {
    return {reinterpret_cast<const T*>(data()), size_ / sizeof(T)};
  }

 private:
  friend class BufferPool;
  PooledBuffer(BufferPool* pool, AlignedBuffer buf, size_t size, bool fresh)
      : pool_(pool), buf_(std::move(buf)), size_(size), fresh_(fresh) {}

  BufferPool* pool_ = nullptr;
  AlignedBuffer buf_;
  size_t size_ = 0;
  bool fresh_ = false;
};

class BufferPool {
 public:
  struct Stats {
    size_t hits = 0;    ///< acquires served from the free list
    size_t misses = 0;  ///< acquires that had to allocate
    size_t cached_buffers = 0;
    size_t cached_bytes = 0;
    size_t leased_buffers = 0;
    size_t allocated_bytes = 0;  ///< total capacity owned (cached + leased)
    size_t peak_allocated_bytes = 0;
  };

  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  ~BufferPool() = default;

  /// Lease a buffer exposing `bytes` bytes.  When `zeroed` (the default)
  /// the leased contents are cleared; pass false when the caller overwrites
  /// every byte (recycled buffers hold stale data).
  PooledBuffer acquire(size_t bytes, bool zeroed = true);

  /// Free all cached (idle) buffers.  Outstanding leases are unaffected.
  void trim();

  Stats stats() const;

  /// Attach a telemetry sink: every acquire records a PoolHit/PoolMiss
  /// counter tick (plus allocated/retained byte counters).  Null detaches;
  /// with no sink the hook is a single branch.  The sink must outlive the
  /// pool or be detached first.
  void set_telemetry(telemetry::Sink* sink) { sink_ = sink; }

 private:
  friend class PooledBuffer;
  void put_back(AlignedBuffer buf);

  using FreeList = std::multimap<size_t, AlignedBuffer>;

  mutable std::mutex mu_;
  /// Idle buffers keyed by capacity (smallest adequate buffer is reused).
  FreeList free_;
  /// Map nodes emptied by acquire(), recycled by put_back() so the lease
  /// cycle performs zero heap allocations once warm (pinned by
  /// CodecTest.SteadyStateDoesNotAllocate's global allocation counter).
  std::vector<FreeList::node_type> spare_nodes_;
  Stats stats_;
  telemetry::Sink* sink_ = nullptr;
};

}  // namespace fz
