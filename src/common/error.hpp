// Error handling: a single exception type plus check macros.
//
// Following the Core Guidelines (E.2, E.14) we throw a dedicated exception
// type for recoverable failures (corrupt streams, bad arguments) and use
// assertions only for internal invariants.
#pragma once

#include <stdexcept>
#include <string>

namespace fz {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a compressed stream fails validation during decode.
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what) : Error(what) {}
};

[[noreturn]] void throw_error(const char* file, int line, const std::string& msg);
[[noreturn]] void throw_format_error(const char* file, int line,
                                     const std::string& msg);

}  // namespace fz

#define FZ_REQUIRE(cond, msg)                              \
  do {                                                     \
    if (!(cond)) ::fz::throw_error(__FILE__, __LINE__, (msg)); \
  } while (0)

#define FZ_FORMAT_REQUIRE(cond, msg)                              \
  do {                                                            \
    if (!(cond)) ::fz::throw_format_error(__FILE__, __LINE__, (msg)); \
  } while (0)
