// Parallel-loop helpers.  All parallel loops in the native backends go
// through these wrappers.  With OpenMP they compile to omp regions; without
// it (FZ_ENABLE_OPENMP=OFF) parallel_for/parallel_tasks fall back to a
// std::thread task crew with the same contract.  The `tsan` preset builds
// without OpenMP deliberately: libgomp is not TSan-instrumented, so its
// fork/join happens-before edges are invisible and ThreadSanitizer flags
// correct code; raw std::threads keep the concurrency both real and
// visible to the tool.
#pragma once

#include <atomic>
#include <bit>
#include <cmath>
#include <cstddef>
#include <exception>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#if defined(FZ_HAVE_OPENMP)
#include <omp.h>
#endif

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"

namespace fz {

inline int max_threads() {
#if defined(FZ_HAVE_OPENMP)
  return omp_get_max_threads();
#else
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
#endif
}

/// Index of the calling thread within the innermost parallel region
/// (0 outside any region or without OpenMP).
inline int thread_index() {
#if defined(FZ_HAVE_OPENMP)
  return omp_get_thread_num();
#else
  return 0;
#endif
}

namespace detail {

/// std::thread task crew backing parallel_for/parallel_tasks when OpenMP is
/// unavailable.  Same contract as parallel_tasks: fn(task, worker), tasks
/// claimed dynamically, worker indices unique, first exception captured and
/// rethrown on the calling thread (which doubles as worker 0).  The
/// implementation lives in common/thread_pool.hpp (run_task_crew) so the
/// fork/join loops and the persistent fz::ThreadPool share one engine.
template <typename Fn>
void thread_crew(size_t count, size_t workers, Fn& fn) {
  run_task_crew(count, workers, fn);
}

}  // namespace detail

/// Parallel for over [begin, end) with a static schedule.
/// `fn(i)` must be independent across iterations.
///
/// Exceptions must not unwind out of an OpenMP region (that calls
/// std::terminate), so the first exception thrown by any iteration is
/// captured and rethrown on the calling thread after the region ends —
/// decoders rely on this to reject corrupt streams from parallel loops.
template <typename Fn>
void parallel_for(size_t begin, size_t end, Fn&& fn) {
#if defined(FZ_HAVE_OPENMP)
  std::exception_ptr error;
#pragma omp parallel for schedule(static) shared(error)
  for (i64 i = static_cast<i64>(begin); i < static_cast<i64>(end); ++i) {
    try {
      fn(static_cast<size_t>(i));
    } catch (...) {
#pragma omp critical(fz_parallel_for_error)
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
#else
  if (end <= begin) return;
  const size_t count = end - begin;
  const size_t workers =
      count < static_cast<size_t>(max_threads()) ? count
                                                 : static_cast<size_t>(max_threads());
  if (workers > 1) {
    auto task = [&](size_t i, size_t) { fn(begin + i); };
    detail::thread_crew(count, workers, task);
  } else {
    for (size_t i = begin; i < end; ++i) fn(i);
  }
#endif
}

/// Parallel for over chunks: fn(chunk_begin, chunk_end).  Used when per-
/// iteration work is tiny and the body wants sequential inner loops.
/// `chunk` must be nonzero (a zero chunk would divide by zero).
template <typename Fn>
void parallel_chunks(size_t count, size_t chunk, Fn&& fn) {
  FZ_REQUIRE(chunk > 0, "parallel_chunks: chunk size must be nonzero");
  const size_t nchunks = count == 0 ? 0 : (count + chunk - 1) / chunk;
  parallel_for(0, nchunks, [&](size_t c) {
    const size_t b = c * chunk;
    const size_t e = b + chunk < count ? b + chunk : count;
    fn(b, e);
  });
}

/// Run fn(task, worker) for every task in [0, count) using at most `workers`
/// concurrent threads (0 = max_threads()).  Each worker index in
/// [0, workers) is used by exactly one thread at a time, so fn may use it to
/// address per-worker state (e.g. one fz::Codec per worker).  Tasks are
/// claimed dynamically: uneven task costs still balance.  Exceptions
/// propagate like parallel_for.
template <typename Fn>
void parallel_tasks(size_t count, size_t workers, Fn&& fn) {
  if (workers == 0) workers = static_cast<size_t>(max_threads());
  if (workers > count) workers = count;
#if defined(FZ_HAVE_OPENMP)
  if (workers > 1) {
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
#pragma omp parallel num_threads(static_cast<int>(workers)) \
    shared(next, failed, error)
    {
      const size_t w = static_cast<size_t>(omp_get_thread_num());
      for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < count;
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        if (failed.load(std::memory_order_relaxed)) break;
        try {
          fn(i, w);
        } catch (...) {
#pragma omp critical(fz_parallel_tasks_error)
          if (!error) error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }
#else
  if (workers > 1) {
    detail::thread_crew(count, workers, fn);
    return;
  }
#endif
  for (size_t i = 0; i < count; ++i) fn(i, 0);
}

/// Parallel min/max over the span (OpenMP parallel+simd reduction; no
/// scratch allocation).  The branchless select form vectorizes where the
/// branchy `if (x < lo)` form cannot, and min/max reductions are
/// order-independent on NaN-free data, so the result is identical to the
/// serial loop.  The data must be NaN-free — validate first.  Requires a
/// non-empty span.
template <typename T>
std::pair<T, T> parallel_minmax(std::span<const T> v) {
  FZ_REQUIRE(!v.empty(), "parallel_minmax: empty span");
  T lo = v[0];
  T hi = v[0];
  const T* p = v.data();
#if defined(FZ_HAVE_OPENMP)
#pragma omp parallel for simd schedule(static) reduction(min : lo) \
    reduction(max : hi)
#endif
  for (i64 i = 0; i < static_cast<i64>(v.size()); ++i) {
    const T x = p[i];
    lo = x < lo ? x : lo;
    hi = x > hi ? x : hi;
  }
  return {lo, hi};
}

/// True iff every element is finite (no NaN/Inf).  OpenMP parallel+simd
/// reduced; no scratch allocation.  A value is non-finite exactly when all
/// its exponent bits are set, so the test is pure integer compare+AND —
/// no libm isfinite call, and the loop vectorizes.
template <typename T>
bool parallel_all_finite(std::span<const T> v) {
  using U = std::conditional_t<sizeof(T) == sizeof(u32), u32, u64>;
  static_assert(sizeof(T) == sizeof(U));
  constexpr U kExpMask = sizeof(T) == sizeof(u32)
                             ? static_cast<U>(0x7f800000u)
                             : static_cast<U>(0x7ff0000000000000ull);
  const T* p = v.data();
  int ok = 1;
#if defined(FZ_HAVE_OPENMP)
#pragma omp parallel for simd schedule(static) reduction(& : ok)
#endif
  for (i64 i = 0; i < static_cast<i64>(v.size()); ++i)
    ok &= static_cast<int>((std::bit_cast<U>(p[i]) & kExpMask) != kExpMask);
  return ok != 0;
}

}  // namespace fz
