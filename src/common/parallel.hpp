// OpenMP helpers.  All parallel loops in the native backends go through
// these wrappers so the library builds (serially) without OpenMP too.
#pragma once

#include <cstddef>
#include <exception>

#if defined(FZ_HAVE_OPENMP)
#include <omp.h>
#endif

#include "common/types.hpp"

namespace fz {

inline int max_threads() {
#if defined(FZ_HAVE_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Parallel for over [begin, end) with a static schedule.
/// `fn(i)` must be independent across iterations.
///
/// Exceptions must not unwind out of an OpenMP region (that calls
/// std::terminate), so the first exception thrown by any iteration is
/// captured and rethrown on the calling thread after the region ends —
/// decoders rely on this to reject corrupt streams from parallel loops.
template <typename Fn>
void parallel_for(size_t begin, size_t end, Fn&& fn) {
#if defined(FZ_HAVE_OPENMP)
  std::exception_ptr error;
#pragma omp parallel for schedule(static) shared(error)
  for (i64 i = static_cast<i64>(begin); i < static_cast<i64>(end); ++i) {
    try {
      fn(static_cast<size_t>(i));
    } catch (...) {
#pragma omp critical(fz_parallel_for_error)
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
#else
  for (size_t i = begin; i < end; ++i) fn(i);
#endif
}

/// Parallel for over chunks: fn(chunk_begin, chunk_end).  Used when per-
/// iteration work is tiny and the body wants sequential inner loops.
template <typename Fn>
void parallel_chunks(size_t count, size_t chunk, Fn&& fn) {
  const size_t nchunks = count == 0 ? 0 : (count + chunk - 1) / chunk;
  parallel_for(0, nchunks, [&](size_t c) {
    const size_t b = c * chunk;
    const size_t e = b + chunk < count ? b + chunk : count;
    fn(b, e);
  });
}

}  // namespace fz
