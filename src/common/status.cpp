#include "common/status.hpp"

namespace fz {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::Ok:            return "ok";
    case StatusCode::InvalidParams: return "invalid-params";
    case StatusCode::InvalidStream: return "invalid-stream";
    case StatusCode::BadRequest:    return "bad-request";
    case StatusCode::PolicyDenied:  return "policy-denied";
    case StatusCode::QueueFull:     return "queue-full";
    case StatusCode::ShuttingDown:  return "shutting-down";
    case StatusCode::Unsupported:   return "unsupported";
    case StatusCode::Internal:      return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (ok()) return "ok";
  std::string s = "[";
  s += status_code_name(code_);
  s += "] ";
  s += message_;
  return s;
}

}  // namespace fz
