// Wall-clock timing for the native (OpenMP) measurements.
#pragma once

#include <chrono>
#include <functional>

#include "common/types.hpp"

namespace fz {

class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Run `fn` `iters` times and return the best (minimum) wall-clock seconds.
/// Minimum-of-N is the standard noise-robust estimator for kernel timing.
double time_best_of(int iters, const std::function<void()>& fn);

/// GB/s for processing `bytes` in `seconds` (decimal GB, as in the paper).
constexpr double throughput_gbps(size_t bytes, double seconds) {
  return seconds <= 0 ? 0.0 : static_cast<double>(bytes) / 1e9 / seconds;
}

}  // namespace fz
