#include "service/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace fz {

namespace {

bool read_full(int fd, void* into, size_t n) {
  u8* p = static_cast<u8*>(into);
  while (n > 0) {
    const ssize_t got = ::read(fd, p, n);
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      return false;
    }
    p += got;
    n -= static_cast<size_t>(got);
  }
  return true;
}

bool write_full(int fd, const void* from, size_t n) {
  const u8* p = static_cast<const u8*>(from);
  while (n > 0) {
    const ssize_t put = ::write(fd, p, n);
    if (put <= 0) {
      if (put < 0 && errno == EINTR) continue;
      return false;
    }
    p += put;
    n -= static_cast<size_t>(put);
  }
  return true;
}

Status transport_error(const char* what) {
  return {StatusCode::Internal, std::string("fzd transport: ") + what};
}

}  // namespace

Client::Client(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path))
    throw Error("fzd client: bad socket path: " + socket_path);
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0)
    throw Error(std::string("fzd client: socket(): ") + std::strerror(errno));
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw Error("fzd client: cannot connect to " + socket_path + ": " + why);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::call(const Request& req, Response& resp) {
  buf_.clear();
  wire::encode_request(req, buf_);
  if (!write_full(fd_, buf_.data(), buf_.size()))
    return transport_error("send failed (daemon gone?)");
  u32 frame_bytes = 0;
  if (!read_full(fd_, &frame_bytes, sizeof(frame_bytes)))
    return transport_error("connection closed before a response arrived");
  if (frame_bytes < sizeof(wire::ResponseHeader) ||
      frame_bytes > wire::kMaxFrameBytes)
    return transport_error("bad response frame length");
  buf_.resize(frame_bytes);
  if (!read_full(fd_, buf_.data(), buf_.size()))
    return transport_error("response frame truncated");
  const Status decoded = wire::decode_response(buf_, resp);
  if (!decoded.ok()) return decoded;
  return resp.status;
}

Status Client::ping() {
  Response resp;
  req_.kind = JobKind::Ping;
  req_.payload.clear();
  return call(req_, resp);
}

Status Client::compress(FloatSpan data, Dims dims, ErrorBound eb,
                        Response& resp) {
  req_.kind = JobKind::Compress;
  req_.dims = dims;
  req_.eb = eb;
  const u8* bytes = reinterpret_cast<const u8*>(data.data());
  req_.payload.assign(bytes, bytes + data.size() * sizeof(f32));
  return call(req_, resp);
}

Status Client::compress_f64(std::span<const f64> data, Dims dims,
                            ErrorBound eb, Response& resp) {
  req_.kind = JobKind::CompressF64;
  req_.dims = dims;
  req_.eb = eb;
  const u8* bytes = reinterpret_cast<const u8*>(data.data());
  req_.payload.assign(bytes, bytes + data.size() * sizeof(f64));
  return call(req_, resp);
}

Status Client::decompress(ByteSpan stream, Response& resp) {
  req_.kind = JobKind::Decompress;
  req_.payload.assign(stream.begin(), stream.end());
  return call(req_, resp);
}

Status Client::inspect(ByteSpan stream, Response& resp) {
  req_.kind = JobKind::Inspect;
  req_.payload.assign(stream.begin(), stream.end());
  return call(req_, resp);
}

Status Client::stats_text(std::string& out) {
  Response resp;
  req_.kind = JobKind::Stats;
  req_.payload.clear();
  const Status s = call(req_, resp);
  if (s.ok()) out.assign(resp.payload.begin(), resp.payload.end());
  return s;
}

}  // namespace fz
