// fzd's transport: an AF_UNIX SOCK_STREAM server wrapping one fz::Service.
//
// One acceptor plus `io_workers` connection handlers, all running on a
// fz::ThreadPool (never raw threads).  Each connection speaks the framed
// wire protocol (service/wire.hpp) serially: read one request frame, run it
// through Service::submit, write one response frame.  Concurrency comes
// from concurrent connections — fzd_client opens one connection per client
// thread — while the Service's own bounded queue provides the backpressure
// (a QueueFull response travels back like any other status).
//
// A connection that sends garbage gets a BadRequest/Unsupported response
// and the connection is closed; nothing a peer sends can raise an exception
// past the handler (the worker-pool tasks-never-throw contract).
//
// Lifecycle: the constructor binds and starts serving (throws fz::Error if
// the socket path cannot be bound); stop() — idempotent, also run by the
// destructor — closes the listener, wakes every handler, and joins.
#pragma once

#include <atomic>
#include <string>

#include "common/thread_pool.hpp"
#include "service/service.hpp"
#include "service/wire.hpp"

namespace fz {

class Server {
 public:
  struct Options {
    /// Filesystem path of the Unix socket.  An existing socket file at the
    /// path is replaced (the daemon owns its path).
    std::string socket_path;
    /// Concurrent connection handlers.  More simultaneous connections than
    /// this simply wait for a free handler — admission control for jobs is
    /// the Service queue's, not the transport's.
    size_t io_workers = 4;
    Service::Options service;
  };

  explicit Server(Options options);
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;
  ~Server();

  const std::string& socket_path() const { return opts_.socket_path; }
  Service& service() { return service_; }

  /// Connections accepted since start (includes ones already closed).
  u64 connections_accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }

  /// Stop accepting, wake and join every handler, unlink the socket path.
  void stop();

 private:
  void accept_loop();
  void handle_connection(int fd);

  Options opts_;
  Service service_;
  std::atomic<bool> stop_{false};
  std::atomic<u64> accepted_{0};
  int listen_fd_ = -1;
  ThreadPool io_pool_;  ///< last member: joins first
};

}  // namespace fz
