// The fzd wire protocol: fz::Request / fz::Response over a byte stream.
//
// Transport-agnostic framing (the daemon runs it over an AF_UNIX
// SOCK_STREAM socket; the tests run it over in-memory byte vectors).  Every
// frame is
//
//   u32 frame_bytes  — size of everything after this prefix
//   header           — RequestHeader or ResponseHeader (packed, below)
//   sections         — message / info / payload bytes, sizes in the header
//
// so a reader can always skip a frame it does not understand.  Headers are
// little-endian packed structs with pinned layouts (audited by fzlint's
// layout rule, same as the stream format in core/format.hpp); the version
// field is checked on decode and kWireVersion is bumped on any layout
// change.  StatusCode and JobKind values travel as raw bytes — both enums
// are append-only for exactly this reason.
//
// Inspect responses carry a packed WireStreamInfo as their info section
// (chunk index entries are summarized as a count, not shipped); compress
// responses carry a packed WireStats.  decode_* functions return a Status
// instead of throwing — a malformed frame is a peer bug, not a server
// crash.
#pragma once

#include <cstddef>
#include <type_traits>
#include <vector>

#include "service/job.hpp"

namespace fz::wire {

inline constexpr u32 kRequestMagic = 0x71645A46;   // "FZdq" little-endian
inline constexpr u32 kResponseMagic = 0x72645A46;  // "FZdr" little-endian
inline constexpr u16 kWireVersion = 1;
/// Hard cap on any frame's declared size: a garbage length prefix must not
/// make the peer allocate unboundedly.
inline constexpr u64 kMaxFrameBytes = u64{1} << 31;

#pragma pack(push, 1)

/// One request on the wire, followed by `payload_bytes` of payload.
struct RequestHeader {
  u32 magic = kRequestMagic;
  u16 version = kWireVersion;
  u8 kind = 0;      ///< JobKind value
  u8 eb_mode = 0;   ///< ErrorBoundMode value
  u32 tenant = 0;
  f64 eb_value = 0;
  u64 nx = 0;
  u64 ny = 0;
  u64 nz = 0;
  u64 payload_bytes = 0;
};

/// One response on the wire, followed by its sections in order:
/// `message_bytes` of status message, `info_bytes` of WireStreamInfo (0 or
/// sizeof(WireStreamInfo)), `stats_bytes` of WireStats (likewise), then
/// `payload_bytes` of payload.
struct ResponseHeader {
  u32 magic = kResponseMagic;
  u16 version = kWireVersion;
  u8 status = 0;       ///< StatusCode value
  u8 dtype_bytes = 4;
  u64 nx = 0;
  u64 ny = 0;
  u64 nz = 0;
  u32 message_bytes = 0;
  u32 info_bytes = 0;
  u32 stats_bytes = 0;
  u32 pad = 0;
  u64 payload_bytes = 0;
};

/// StreamInfo for the wire (Inspect responses).  The chunk index is
/// summarized as `chunk_count`; a caller that needs the entries decodes the
/// stream locally with fz::inspect.
struct WireStreamInfo {
  u64 nx = 0;
  u64 ny = 0;
  u64 nz = 0;
  u64 count = 0;
  u32 dtype_bytes = 4;
  u32 format_version = 0;
  u8 quant = 0;
  u8 log_transform = 0;
  u16 pad = 0;
  u32 radius = 0;
  f64 abs_eb = 0;
  u64 header_bytes = 0;
  u64 bit_flag_bytes = 0;
  u64 block_bytes = 0;
  u64 outlier_bytes = 0;
  u64 stream_bytes = 0;
  u64 total_blocks = 0;
  u64 nonzero_blocks = 0;
  u64 saturated = 0;
  u32 container_version = 0;
  u32 chunk_count = 0;
};

/// FzStats for the wire (Compress responses).
struct WireStats {
  u64 count = 0;
  u64 input_bytes = 0;
  u64 compressed_bytes = 0;
  f64 abs_eb = 0;
  u64 saturated = 0;
  u64 outliers = 0;
  u64 total_blocks = 0;
  u64 nonzero_blocks = 0;
};

#pragma pack(pop)

static_assert(std::is_trivially_copyable_v<RequestHeader>);
static_assert(sizeof(RequestHeader) == 52);
static_assert(offsetof(RequestHeader, magic) == 0);
static_assert(offsetof(RequestHeader, version) == 4);
static_assert(offsetof(RequestHeader, kind) == 6);
static_assert(offsetof(RequestHeader, eb_mode) == 7);
static_assert(offsetof(RequestHeader, tenant) == 8);
static_assert(offsetof(RequestHeader, eb_value) == 12);
static_assert(offsetof(RequestHeader, nx) == 20);
static_assert(offsetof(RequestHeader, ny) == 28);
static_assert(offsetof(RequestHeader, nz) == 36);
static_assert(offsetof(RequestHeader, payload_bytes) == 44);

static_assert(std::is_trivially_copyable_v<ResponseHeader>);
static_assert(sizeof(ResponseHeader) == 56);
static_assert(offsetof(ResponseHeader, magic) == 0);
static_assert(offsetof(ResponseHeader, version) == 4);
static_assert(offsetof(ResponseHeader, status) == 6);
static_assert(offsetof(ResponseHeader, dtype_bytes) == 7);
static_assert(offsetof(ResponseHeader, nx) == 8);
static_assert(offsetof(ResponseHeader, ny) == 16);
static_assert(offsetof(ResponseHeader, nz) == 24);
static_assert(offsetof(ResponseHeader, message_bytes) == 32);
static_assert(offsetof(ResponseHeader, info_bytes) == 36);
static_assert(offsetof(ResponseHeader, stats_bytes) == 40);
static_assert(offsetof(ResponseHeader, pad) == 44);
static_assert(offsetof(ResponseHeader, payload_bytes) == 48);

static_assert(std::is_trivially_copyable_v<WireStreamInfo>);
static_assert(sizeof(WireStreamInfo) == 128);
static_assert(offsetof(WireStreamInfo, nx) == 0);
static_assert(offsetof(WireStreamInfo, ny) == 8);
static_assert(offsetof(WireStreamInfo, nz) == 16);
static_assert(offsetof(WireStreamInfo, count) == 24);
static_assert(offsetof(WireStreamInfo, dtype_bytes) == 32);
static_assert(offsetof(WireStreamInfo, format_version) == 36);
static_assert(offsetof(WireStreamInfo, quant) == 40);
static_assert(offsetof(WireStreamInfo, log_transform) == 41);
static_assert(offsetof(WireStreamInfo, pad) == 42);
static_assert(offsetof(WireStreamInfo, radius) == 44);
static_assert(offsetof(WireStreamInfo, abs_eb) == 48);
static_assert(offsetof(WireStreamInfo, header_bytes) == 56);
static_assert(offsetof(WireStreamInfo, bit_flag_bytes) == 64);
static_assert(offsetof(WireStreamInfo, block_bytes) == 72);
static_assert(offsetof(WireStreamInfo, outlier_bytes) == 80);
static_assert(offsetof(WireStreamInfo, stream_bytes) == 88);
static_assert(offsetof(WireStreamInfo, total_blocks) == 96);
static_assert(offsetof(WireStreamInfo, nonzero_blocks) == 104);
static_assert(offsetof(WireStreamInfo, saturated) == 112);
static_assert(offsetof(WireStreamInfo, container_version) == 120);
static_assert(offsetof(WireStreamInfo, chunk_count) == 124);

static_assert(std::is_trivially_copyable_v<WireStats>);
static_assert(sizeof(WireStats) == 64);
static_assert(offsetof(WireStats, count) == 0);
static_assert(offsetof(WireStats, input_bytes) == 8);
static_assert(offsetof(WireStats, compressed_bytes) == 16);
static_assert(offsetof(WireStats, abs_eb) == 24);
static_assert(offsetof(WireStats, saturated) == 32);
static_assert(offsetof(WireStats, outliers) == 40);
static_assert(offsetof(WireStats, total_blocks) == 48);
static_assert(offsetof(WireStats, nonzero_blocks) == 56);

/// Append one framed request/response to `out` (length prefix included).
/// The buffer is appended to, not cleared — callers batch frames by
/// encoding into the same vector.
void encode_request(const Request& req, std::vector<u8>& out);
void encode_response(const Response& resp, std::vector<u8>& out);

/// Decode one framed message from `frame` — the bytes AFTER the u32 length
/// prefix (the transport reads the prefix to know how much to buffer).
/// Returns non-Ok (and leaves `out` unspecified) on bad magic, unsupported
/// version, or section sizes that disagree with the frame length.
Status decode_request(ByteSpan frame, Request& out);
Status decode_response(ByteSpan frame, Response& out);

}  // namespace fz::wire
