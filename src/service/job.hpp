// The job model of the FZ compression service: fz::Request in,
// fz::Response out.
//
// One pair of structs serves both transports — the in-process
// fz::Service::submit() call (tests, embedders) and the fzd wire protocol
// (service/wire.hpp serializes exactly these fields) — so a job means the
// same thing no matter how it arrives.  Both structs are designed for
// reuse: clearing them retains vector capacities, which is what keeps a
// warm service loop allocation-free (tests/test_service.cpp pins this).
//
// Error delivery is fz::Status only (common/status.hpp): a Response always
// comes back, its status says what happened, and no exception ever crosses
// the service boundary.
#pragma once

#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "core/pipeline.hpp"

namespace fz {

/// What the service should do with a request's payload.  Values travel on
/// the wire — append only, never renumber.
enum class JobKind : u8 {
  Ping = 0,        ///< liveness probe; echoes an empty Ok response
  Compress = 1,    ///< payload = raw f32 samples (dims/eb describe them)
  CompressF64 = 2, ///< payload = raw f64 samples
  Decompress = 3,  ///< payload = FZ stream or chunked container
  Inspect = 4,     ///< payload = FZ stream; response carries StreamInfo
  Stats = 5,       ///< response payload = scrapeable stats text (fzd only)
};

/// Stable kebab-case name ("compress", "inspect", ...), never nullptr.
const char* job_kind_name(JobKind kind);

struct Request {
  JobKind kind = JobKind::Ping;
  /// Tenant the job is accounted/policed under (0 = default tenant).
  u32 tenant = 0;
  /// Compress jobs: field shape; payload must hold dims.count() samples.
  Dims dims;
  /// Compress jobs: the error bound to compress under.
  ErrorBound eb = ErrorBound::relative(1e-3);
  /// The job's input bytes (samples or stream, per `kind`).
  std::vector<u8> payload;
};

struct Response {
  Status status;
  /// Compress: the FZ stream.  Decompress: raw samples (dtype_bytes each).
  /// Stats: the stats text.  Empty for Inspect/Ping and on failure.
  std::vector<u8> payload;
  /// Decompress: shape of the restored field (payload holds dims.count()
  /// samples of dtype_bytes each).
  Dims dims;
  unsigned dtype_bytes = 4;
  /// Compress: ratio/saturation accounting for the produced stream.
  FzStats stats;
  /// Inspect: the full header report (see core/pipeline.hpp).
  StreamInfo info;

  /// Forget the previous job but keep every buffer capacity.
  void reset() {
    status = {};
    payload.clear();
    dims = {};
    dtype_bytes = 4;
    stats = {};
    info = StreamInfo{};
  }
};

/// Per-tenant admission policy, enforced before a job is queued.  A tenant
/// with no registered policy gets the default-constructed one (everything
/// allowed).  Violations come back as StatusCode::PolicyDenied; parameter
/// nonsense (negative bounds, zero dims) is still InvalidParams via
/// FzParams::validate().
struct TenantPolicy {
  /// Tightest error bound the tenant may request, per mode (0 = no floor).
  /// Tighter bounds mean larger streams and slower jobs, so this is the
  /// service's lever against one tenant monopolizing workers.
  double min_abs_eb = 0;
  double min_rel_eb = 0;
  double min_pw_rel_eb = 0;
  /// Largest request payload accepted (0 = unlimited).
  size_t max_payload_bytes = 0;
  /// Whether f64 jobs (twice the scratch footprint) are allowed.
  bool allow_f64 = true;
};

}  // namespace fz
