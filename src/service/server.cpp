// fzlint:hot-path — per-request transport loop; keep lock scopes empty.
#include "service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace fz {

namespace {

constexpr int kPollMs = 200;  ///< stop-flag check cadence while blocked

/// Read exactly `n` bytes, polling so a stop request interrupts the wait.
/// Returns false on EOF/error/stop.
bool read_full(int fd, void* into, size_t n, const std::atomic<bool>& stop) {
  u8* p = static_cast<u8*>(into);
  while (n > 0) {
    if (stop.load(std::memory_order_relaxed)) return false;
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready < 0 && errno != EINTR) return false;
    if (ready <= 0) continue;
    const ssize_t got = ::read(fd, p, n);
    if (got <= 0) {
      if (got < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      return false;
    }
    p += got;
    n -= static_cast<size_t>(got);
  }
  return true;
}

bool write_full(int fd, const void* from, size_t n) {
  const u8* p = static_cast<const u8*>(from);
  while (n > 0) {
    const ssize_t put = ::write(fd, p, n);
    if (put <= 0) {
      if (put < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      return false;
    }
    p += put;
    n -= static_cast<size_t>(put);
  }
  return true;
}

}  // namespace

Server::Server(Options options)
    : opts_(std::move(options)),
      service_(opts_.service),
      io_pool_(std::max<size_t>(opts_.io_workers, 1) + 1) {
  if (opts_.socket_path.empty())
    throw Error("fzd server: socket_path must not be empty");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opts_.socket_path.size() >= sizeof(addr.sun_path))
    throw Error("fzd server: socket path too long: " + opts_.socket_path);
  std::memcpy(addr.sun_path, opts_.socket_path.c_str(),
              opts_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw Error(std::string("fzd server: socket(): ") + std::strerror(errno));
  ::unlink(opts_.socket_path.c_str());  // the daemon owns its path
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("fzd server: cannot listen on " + opts_.socket_path + ": " +
                why);
  }
  io_pool_.submit([this](size_t) { accept_loop(); });
}

Server::~Server() { stop(); }

void Server::stop() {
  if (stop_.exchange(true)) {
    io_pool_.wait_idle();  // another stop() already ran; just join
    return;
  }
  io_pool_.wait_idle();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(opts_.socket_path.c_str());
}

void Server::accept_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready < 0 && errno != EINTR) return;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    accepted_.fetch_add(1, std::memory_order_relaxed);
    io_pool_.submit([this, fd](size_t) { handle_connection(fd); });
  }
}

void Server::handle_connection(int fd) {
  // The pool's tasks-never-throw contract: nothing a peer sends may unwind.
  try {
    Request req;
    Response resp;
    std::vector<u8> frame;
    std::vector<u8> out;
    while (!stop_.load(std::memory_order_relaxed)) {
      u32 frame_bytes = 0;
      if (!read_full(fd, &frame_bytes, sizeof(frame_bytes), stop_)) break;
      if (frame_bytes < sizeof(wire::RequestHeader) ||
          frame_bytes > wire::kMaxFrameBytes) {
        resp.reset();
        resp.status = Status(StatusCode::BadRequest, "bad frame length");
        out.clear();
        wire::encode_response(resp, out);
        write_full(fd, out.data(), out.size());
        break;  // framing is gone; the stream cannot be resynced
      }
      frame.resize(frame_bytes);
      if (!read_full(fd, frame.data(), frame.size(), stop_)) break;

      const Status decoded = wire::decode_request(frame, req);
      if (decoded.ok()) {
        service_.submit(req, resp);  // resp.status carries any failure
      } else {
        resp.reset();
        resp.status = decoded;
      }
      out.clear();
      wire::encode_response(resp, out);
      if (!write_full(fd, out.data(), out.size())) break;
      if (!decoded.ok()) break;  // a confused peer gets one answer, then EOF
    }
  } catch (...) {
    // Swallow (bad_alloc on a huge frame, ...): drop the connection instead
    // of feeding the pool's dropped_exceptions counter.
  }
  ::close(fd);
}

}  // namespace fz
