// fzlint:hot-path — the service mutex sits on every job of every client:
// admission, dispatch and completion all cross it.  No allocation, blocking
// wait, or span construction may happen inside its lock scopes (the two
// condition-variable waits below are the deliberate, suppressed
// exceptions); jobs always run outside the lock on a worker's own codec.
#include "service/service.hpp"

#include <algorithm>
#include <cstring>
#include <ostream>
#include <sstream>

#include "core/chunked.hpp"

namespace fz {

namespace {

/// Percentile over an unsorted window copy (scrape path only).
u32 percentile_us(std::vector<u32>& window, double q) {
  if (window.empty()) return 0;
  const size_t idx = std::min(
      window.size() - 1,
      static_cast<size_t>(q * static_cast<double>(window.size() - 1) + 0.5));
  std::nth_element(window.begin(),
                   window.begin() + static_cast<ptrdiff_t>(idx), window.end());
  return window[static_cast<size_t>(idx)];
}

}  // namespace

const char* job_kind_name(JobKind kind) {
  switch (kind) {
    case JobKind::Ping:        return "ping";
    case JobKind::Compress:    return "compress";
    case JobKind::CompressF64: return "compress-f64";
    case JobKind::Decompress:  return "decompress";
    case JobKind::Inspect:     return "inspect";
    case JobKind::Stats:       return "stats";
  }
  return "unknown";
}

Service::Service(Options options) : opts_(options), pool_(options.workers) {
  opts_.queue_depth = std::max<size_t>(opts_.queue_depth, 1);
  opts_.batch_max = std::clamp<size_t>(opts_.batch_max, 1, kMaxBatch);
  opts_.latency_window = std::max<size_t>(opts_.latency_window, 1);
  sink_ = opts_.telemetry;
  slots_.assign(opts_.queue_depth, nullptr);
  latency_us_.assign(opts_.latency_window, 0);

  FzParams cp = opts_.codec;
  cp.telemetry = sink_;
  // The service parallelizes across jobs; one job must not fan out over
  // every hardware thread underneath N concurrent workers.  The cap rides
  // into decompress jobs too (begin_decompress carries it), where the
  // fused decode pass runs one strip per job.
  if (cp.fused_workers == 0) cp.fused_workers = 1;

  // One Codec per pool worker (the Codec threading contract).  Codec
  // construction validates cp, so a misconfigured service fails here with
  // ParamError — the last exception this object can ever surface.
  workers_.reserve(pool_.worker_count());
  for (size_t i = 0; i < pool_.worker_count(); ++i)
    workers_.push_back(Worker{std::make_unique<Codec>(cp), {}});

  // Each long-running loop occupies one pool worker for the service's
  // lifetime; the task index handed in is that worker's stable id.
  for (size_t i = 0; i < pool_.worker_count(); ++i)
    pool_.submit([this](size_t w) { worker_loop(w); });
}

Service::~Service() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  // Workers drain every admitted job before returning, so no submitter is
  // left waiting; concurrent submits see stop_ and reject as ShuttingDown.
  pool_.wait_idle();
}

void Service::set_policy(u32 tenant, const TenantPolicy& policy) {
  const std::lock_guard<std::mutex> lock(policy_mu_);
  policies_[tenant] = policy;
}

Status Service::admission_check(const Request& req) const {
  // Structural validation first: a malformed job is BadRequest no matter
  // whose tenant it is.
  switch (req.kind) {
    case JobKind::Ping:
    case JobKind::Stats:
      break;
    case JobKind::Compress:
    case JobKind::CompressF64: {
      FzParams p = opts_.codec;
      p.eb = req.eb;
      std::vector<ParamIssue> issues = p.validate(req.dims);
      if (!issues.empty())
        return {StatusCode::InvalidParams, ParamError(std::move(issues)).what()};
      const size_t sample = req.kind == JobKind::Compress ? sizeof(f32)
                                                          : sizeof(f64);
      if (req.payload.empty() || req.payload.size() % sample != 0 ||
          req.payload.size() / sample != req.dims.count())
        return {StatusCode::BadRequest,
                "payload does not hold dims.count() samples"};
      break;
    }
    case JobKind::Decompress:
    case JobKind::Inspect:
      if (req.payload.empty())
        return {StatusCode::BadRequest, "empty stream payload"};
      break;
    default:
      return {StatusCode::Unsupported, "unknown job kind"};
  }

  TenantPolicy policy;
  {
    const std::lock_guard<std::mutex> lock(policy_mu_);
    const auto it = policies_.find(req.tenant);
    if (it != policies_.end()) policy = it->second;
  }
  if (policy.max_payload_bytes != 0 &&
      req.payload.size() > policy.max_payload_bytes)
    return {StatusCode::PolicyDenied,
            "payload exceeds the tenant's size cap"};
  if (req.kind == JobKind::CompressF64 && !policy.allow_f64)
    return {StatusCode::PolicyDenied, "tenant may not submit f64 jobs"};
  if (req.kind == JobKind::Compress || req.kind == JobKind::CompressF64) {
    double floor = 0;
    switch (req.eb.mode) {
      case ErrorBoundMode::Absolute:          floor = policy.min_abs_eb; break;
      case ErrorBoundMode::Relative:          floor = policy.min_rel_eb; break;
      case ErrorBoundMode::PointwiseRelative: floor = policy.min_pw_rel_eb;
                                              break;
    }
    if (floor > 0 && req.eb.value < floor)
      return {StatusCode::PolicyDenied,
              "error bound tighter than the tenant's floor"};
  }
  return {};
}

Status Service::submit(const Request& req, Response& resp) {
  resp.reset();
  Status pre = admission_check(req);
  if (!pre.ok()) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (pre.code() == StatusCode::PolicyDenied)
        ++counters_.rejected_policy;
      else
        ++counters_.rejected_invalid;
    }
    resp.status = std::move(pre);
    return resp.status;
  }

  Job job;
  job.req = &req;
  job.resp = &resp;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      ++counters_.rejected_shutdown;
      resp.status = Status(StatusCode::ShuttingDown, "shutting down");
      return resp.status;
    }
    if (queued_ == slots_.size()) {
      // Backpressure: reject-with-status, never block or grow the queue.
      // (The literal stays under SSO size so the hot rejection path does
      // not allocate.)
      ++counters_.rejected_queue_full;
      resp.status = Status(StatusCode::QueueFull, "queue full");
      return resp.status;
    }
    job.enqueued = std::chrono::steady_clock::now();
    slots_[(head_ + queued_) % slots_.size()] = &job;
    ++queued_;
    ++counters_.accepted;
    counters_.queue_len = queued_;
    counters_.peak_queue_depth =
        std::max<u64>(counters_.peak_queue_depth, queued_);
  }
  work_cv_.notify_one();
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return job.done; });  // fzlint:allow(lock-discipline)
  }
  return resp.status;
}

void Service::worker_loop(size_t worker) {
  Worker& w = workers_[worker];
  std::array<Job*, kMaxBatch> batch{};
  for (;;) {
    size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,  // fzlint:allow(lock-discipline)
                    [&] { return stop_ || queued_ > 0; });
      if (queued_ == 0) return;  // stopping and fully drained
      const auto pop = [&] {
        Job* j = slots_[head_];
        head_ = (head_ + 1) % slots_.size();
        --queued_;
        return j;
      };
      batch[n++] = pop();
      // Small-request batching: drain consecutive small jobs in this same
      // wakeup so tiny-message traffic pays for the lock/wakeup once.
      if (batch[0]->req->payload.size() <= opts_.small_job_bytes) {
        while (n < opts_.batch_max && queued_ > 0 &&
               slots_[head_]->req->payload.size() <= opts_.small_job_bytes)
          batch[n++] = pop();
      }
      if (n > 1) {
        ++counters_.batches;
        counters_.batched_jobs += n;
      }
      counters_.queue_len = queued_;
    }

    for (size_t i = 0; i < n; ++i) {
      telemetry::Span span(sink_, "service-job");
      run_job(w, *batch[i]->req, *batch[i]->resp);
      if (span.enabled()) {
        span.arg("bytes_in",
                 static_cast<double>(batch[i]->req->payload.size()));
        span.arg("bytes_out",
                 static_cast<double>(batch[i]->resp->payload.size()));
        span.arg("batch", static_cast<double>(n));
      }
    }

    const auto now = std::chrono::steady_clock::now();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      for (size_t i = 0; i < n; ++i) {
        Job* j = batch[i];
        const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                            now - j->enqueued)
                            .count();
        latency_us_[latency_next_] =
            static_cast<u32>(std::min<long long>(us, UINT32_MAX));
        latency_next_ = (latency_next_ + 1) % latency_us_.size();
        ++latency_count_;
        ++counters_.completed;
        if (!j->resp->status.ok()) ++counters_.failed;
        j->done = true;
      }
    }
    done_cv_.notify_all();
  }
}

void Service::run_job(Worker& w, const Request& req, Response& resp) {
  // The whole job runs behind the non-throwing Codec boundary; the
  // try/catch is a belt-and-braces backstop (e.g. bad_alloc while resizing
  // a response) so the worker-pool tasks-never-throw contract holds no
  // matter what.
  try {
    switch (req.kind) {
      case JobKind::Ping:
        return;
      case JobKind::Compress:
      case JobKind::CompressF64: {
        Codec& codec = *w.codec;
        codec.params().eb = req.eb;
        Status s;
        if (req.kind == JobKind::Compress) {
          const FloatSpan data{
              reinterpret_cast<const f32*>(req.payload.data()),
              req.payload.size() / sizeof(f32)};
          s = codec.try_compress(data, req.dims, w.scratch);
        } else {
          const std::span<const f64> data{
              reinterpret_cast<const f64*>(req.payload.data()),
              req.payload.size() / sizeof(f64)};
          s = codec.try_compress(data, req.dims, w.scratch);
        }
        if (!s.ok()) {
          resp.status = std::move(s);
          return;
        }
        resp.payload.assign(w.scratch.bytes.begin(), w.scratch.bytes.end());
        resp.stats = w.scratch.stats;
        resp.dims = req.dims;
        resp.dtype_bytes =
            req.kind == JobKind::Compress ? sizeof(f32) : sizeof(f64);
        return;
      }
      case JobKind::Decompress: {
        StreamInfo info;
        Status s = try_inspect(req.payload, info);
        if (!s.ok()) {
          resp.status = std::move(s);
          return;
        }
        if (info.container_version > 0) {
          // Chunked containers decode through the one-shot chunk runner
          // (it owns its own per-chunk codecs); this path allocates its
          // result, unlike the pooled single-stream path below.
          const FzDecompressed d = fz_decompress_chunked(req.payload);
          const u8* bytes = reinterpret_cast<const u8*>(d.data.data());
          resp.payload.assign(bytes, bytes + d.data.size() * sizeof(f32));
          resp.dims = d.dims;
          resp.dtype_bytes = sizeof(f32);
          return;
        }
        resp.payload.resize(info.count * info.dtype_bytes);
        if (info.dtype_bytes == sizeof(f64)) {
          const std::span<f64> out{
              reinterpret_cast<f64*>(resp.payload.data()), info.count};
          s = w.codec->try_decompress_into(req.payload, out, &resp.dims);
        } else {
          const std::span<f32> out{
              reinterpret_cast<f32*>(resp.payload.data()), info.count};
          s = w.codec->try_decompress_into(req.payload, out, &resp.dims);
        }
        if (!s.ok()) {
          resp.payload.clear();
          resp.status = std::move(s);
          return;
        }
        resp.dtype_bytes = info.dtype_bytes;
        return;
      }
      case JobKind::Inspect: {
        Status s = try_inspect(req.payload, resp.info);
        if (!s.ok()) {
          resp.status = std::move(s);
          return;
        }
        resp.dims = resp.info.dims;
        resp.dtype_bytes = resp.info.dtype_bytes;
        return;
      }
      case JobKind::Stats: {
        std::ostringstream text;
        write_stats_text(text);
        const std::string s = text.str();
        resp.payload.assign(s.begin(), s.end());
        return;
      }
    }
    resp.status = Status(StatusCode::Unsupported, "unknown job kind");
  } catch (...) {
    resp.payload.clear();
    resp.status = detail::status_from_current_exception();
  }
}

Service::Counters Service::counters() const {
  Counters c;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    c = counters_;
  }
  c.dropped_exceptions = pool_.dropped_exceptions();
  return c;
}

void Service::write_stats_text(std::ostream& os) const {
  const Counters c = counters();
  std::vector<u32> window;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const size_t filled =
        static_cast<size_t>(std::min<u64>(latency_count_, latency_us_.size()));
    window.assign(latency_us_.begin(),  // fzlint:allow(lock-discipline)
                  latency_us_.begin() + static_cast<ptrdiff_t>(filled));
  }

  os << "# fz service stats: one `name value` per line (docs/SERVICE.md)\n";
  os << "fz_service_up 1\n";
  os << "fz_service_workers " << worker_count() << "\n";
  os << "fz_service_queue_capacity " << queue_capacity() << "\n";
  os << "fz_service_queue_len " << c.queue_len << "\n";
  os << "fz_service_queue_peak " << c.peak_queue_depth << "\n";
  os << "fz_service_jobs_accepted " << c.accepted << "\n";
  os << "fz_service_jobs_completed " << c.completed << "\n";
  os << "fz_service_jobs_failed " << c.failed << "\n";
  os << "fz_service_rejected_queue_full " << c.rejected_queue_full << "\n";
  os << "fz_service_rejected_policy " << c.rejected_policy << "\n";
  os << "fz_service_rejected_invalid " << c.rejected_invalid << "\n";
  os << "fz_service_rejected_shutdown " << c.rejected_shutdown << "\n";
  os << "fz_service_batches " << c.batches << "\n";
  os << "fz_service_batched_jobs " << c.batched_jobs << "\n";
  os << "fz_service_worker_dropped_exceptions " << c.dropped_exceptions
     << "\n";
  os << "fz_service_job_latency_us{quantile=\"0.5\"} "
     << percentile_us(window, 0.50) << "\n";
  os << "fz_service_job_latency_us{quantile=\"0.9\"} "
     << percentile_us(window, 0.90) << "\n";
  os << "fz_service_job_latency_us{quantile=\"0.99\"} "
     << percentile_us(window, 0.99) << "\n";

  if (sink_ != nullptr) {
    // Per-stage throughput from the sink's spans, then every telemetry
    // counter — including the pool and reader/chunk-cache counters, so a
    // Reader sharing this sink reports through the same endpoint.
    for (const telemetry::Sink::StageSummary& s : sink_->stage_summaries()) {
      os << "fz_stage_count{stage=\"" << s.name << "\"} " << s.count << "\n";
      os << "fz_stage_total_ms{stage=\"" << s.name << "\"} " << s.total_ms
         << "\n";
      os << "fz_stage_gbps{stage=\"" << s.name << "\"} " << s.gbps << "\n";
    }
    telemetry::write_counters_text(*sink_, os);
  }
}

}  // namespace fz
