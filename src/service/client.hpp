// fzd_client — the blocking client side of the fzd wire protocol.
//
// One Client wraps one connected Unix socket and runs one RPC at a time
// (request frame out, response frame in).  Not thread-safe: give each
// client thread its own Client, the way fzd's soak harness and
// `fz_cli r*` commands do.  Transport failures (daemon gone, truncated
// frame) surface as StatusCode::Unavailable-like Internal statuses — the
// client never throws once constructed.
#pragma once

#include <string>

#include "service/wire.hpp"

namespace fz {

class Client {
 public:
  /// Connect to a serving fzd at `socket_path`; throws fz::Error if the
  /// daemon is not reachable (the one failure that has no Response to
  /// carry a status).
  explicit Client(const std::string& socket_path);
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// One RPC: returns resp.status (transport failures map to Internal).
  Status call(const Request& req, Response& resp);

  // Convenience wrappers over call(); each reuses the Response's buffers.
  Status ping();
  Status compress(FloatSpan data, Dims dims, ErrorBound eb, Response& resp);
  Status compress_f64(std::span<const f64> data, Dims dims, ErrorBound eb,
                      Response& resp);
  Status decompress(ByteSpan stream, Response& resp);
  Status inspect(ByteSpan stream, Response& resp);
  /// Fetch the daemon's scrapeable stats text (docs/SERVICE.md format).
  Status stats_text(std::string& out);

 private:
  int fd_ = -1;
  Request req_;         ///< scratch for the convenience wrappers
  std::vector<u8> buf_; ///< encoded-frame scratch, reused per call
};

}  // namespace fz
