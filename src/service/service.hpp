// fz::Service — the long-lived, in-process compression service.
//
// Every earlier entry point is a one-shot process; this class is the
// "pool it once, stream jobs through" harness the ROADMAP's service story
// needs.  A Service owns a persistent ThreadPool with one fz::Codec per
// worker (the Codec threading contract), so codec state and scratch-pool
// buffers amortize across every request: after warmup a steady loop of
// same-shaped jobs performs zero heap allocations end to end (pinned by
// tests/test_service.cpp with a global operator-new counter).
//
// The fzd daemon (service/server.hpp + fzd_main.cpp) is a thin wire
// wrapper around this class; tests and embedders call submit() directly
// and skip the socket.
//
// Job flow:
//   submit(req, resp)
//     ├─ admission: structural checks (BadRequest), per-tenant policy
//     │  (PolicyDenied), FzParams::validate (InvalidParams) — all before
//     │  a queue slot is taken
//     ├─ bounded queue: `queue_depth` preallocated slots.  A full queue
//     │  REJECTS with StatusCode::QueueFull immediately — backpressure is
//     │  explicit, never an unbounded buffer or a silent drop
//     ├─ dispatch: a waking worker drains up to `batch_max` consecutive
//     │  small jobs (payload <= small_job_bytes) in one queue pass, so
//     │  tiny-message traffic amortizes the wakeup/locking cost
//     └─ completion: the submitting thread blocks until its response is
//        filled in; the status IS the error channel — no exception ever
//        crosses this boundary (Codec::try_* only; the worker pool's
//        dropped_exceptions counter is exported and must stay 0)
//
// Observability: pass a telemetry::Sink to record per-job/per-stage spans
// and pool counters; write_stats_text() renders the scrapeable plain-text
// endpoint fzd serves (docs/SERVICE.md documents the format).  With no
// sink, every hook is a branch and the stats text still carries the
// service's own counters and latency percentiles.
//
// Thread-safety: submit(), counters(), write_stats_text() and set_policy()
// may be called from any number of threads concurrently.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/codec.hpp"
#include "service/job.hpp"

namespace fz {

class Service {
 public:
  /// Hard ceiling on jobs drained per worker wakeup (Options::batch_max is
  /// clamped to it); sized so the drain array lives on the worker's stack.
  static constexpr size_t kMaxBatch = 32;

  struct Options {
    /// Worker threads, one Codec each (0 = one per hardware thread).
    size_t workers = 0;
    /// Admission-queue slots; a submit against a full queue returns
    /// StatusCode::QueueFull instead of blocking or growing the queue.
    size_t queue_depth = 64;
    /// Max consecutive small jobs one worker drains per wakeup (>=1).
    size_t batch_max = 8;
    /// Payload size at or below which a job counts as "small" for batching.
    size_t small_job_bytes = size_t{64} << 10;
    /// Completed-job latencies retained for the stats percentiles.
    size_t latency_window = 4096;
    /// Optional sink for spans + pool/reader counters; must outlive the
    /// Service.  Null disables telemetry (steady state stays
    /// allocation-free either way — span recording allocates event chunks,
    /// so the zero-allocation soak runs sinkless).
    telemetry::Sink* telemetry = nullptr;
    /// Base parameters for every worker Codec.  The per-job error bound
    /// overrides `codec.eb`; fused_workers 0 is forced to 1 — the service
    /// parallelizes across jobs, not inside one.
    FzParams codec;
  };

  struct Counters {
    u64 accepted = 0;             ///< jobs that took a queue slot
    u64 rejected_queue_full = 0;  ///< backpressure rejections
    u64 rejected_policy = 0;      ///< tenant-policy rejections
    u64 rejected_invalid = 0;     ///< BadRequest/InvalidParams at admission
    u64 rejected_shutdown = 0;    ///< submits after shutdown began
    u64 completed = 0;            ///< responses delivered (any status)
    u64 failed = 0;               ///< completed with a non-Ok status
    u64 batches = 0;              ///< wakeups that drained >1 job
    u64 batched_jobs = 0;         ///< jobs delivered through such drains
    u64 peak_queue_depth = 0;     ///< high-water mark of queued jobs
    u64 queue_len = 0;            ///< jobs queued right now
    u64 dropped_exceptions = 0;   ///< worker-pool contract violations (0)
  };

  Service() : Service(Options{}) {}
  explicit Service(Options options);
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;
  /// Drains already-admitted jobs, then joins the workers.  Concurrent
  /// submits observe ShuttingDown.
  ~Service();

  /// Run one job to completion (blocking).  Returns resp.status.  `req` and
  /// `resp` must stay valid until submit returns; `resp` is reset first, so
  /// reusing one Response across calls keeps its buffer capacities.
  Status submit(const Request& req, Response& resp);

  /// Install/replace the admission policy for a tenant id.
  void set_policy(u32 tenant, const TenantPolicy& policy);

  Counters counters() const;
  size_t worker_count() const { return pool_.worker_count(); }
  size_t queue_capacity() const { return slots_.size(); }
  telemetry::Sink* sink() const { return sink_; }

  /// The scrapeable stats endpoint body: service counters, queue gauges,
  /// job-latency percentiles, per-stage GB/s from the sink's spans, and
  /// every telemetry counter (pool + reader/chunk-cache), one
  /// `name value` line each.  docs/SERVICE.md pins the format.
  void write_stats_text(std::ostream& os) const;

 private:
  struct Job {
    const Request* req = nullptr;
    Response* resp = nullptr;
    std::chrono::steady_clock::time_point enqueued{};
    bool done = false;
  };
  /// Per-worker state: the codec plus a reused compress-output scratch so
  /// steady-state compress jobs never allocate.
  struct Worker {
    std::unique_ptr<Codec> codec;
    FzCompressed scratch;
  };

  Status admission_check(const Request& req) const;
  void worker_loop(size_t worker);
  void run_job(Worker& w, const Request& req, Response& resp);
  bool queue_empty() const { return queued_ == 0; }

  Options opts_;
  telemetry::Sink* sink_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: job queued or stopping
  std::condition_variable done_cv_;  ///< submitters: their job completed
  std::vector<Job*> slots_;          ///< ring of queued jobs (preallocated)
  size_t head_ = 0;                  ///< index of the oldest queued job
  size_t queued_ = 0;                ///< jobs currently in the ring
  bool stop_ = false;
  Counters counters_;
  std::vector<u32> latency_us_;      ///< ring of completed-job latencies
  size_t latency_next_ = 0;
  u64 latency_count_ = 0;

  mutable std::mutex policy_mu_;
  std::map<u32, TenantPolicy> policies_;

  std::vector<Worker> workers_;
  ThreadPool pool_;  ///< last member: joins first, while state is alive
};

}  // namespace fz
