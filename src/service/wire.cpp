#include "service/wire.hpp"

#include <cstring>

namespace fz::wire {

namespace {

void append_bytes(std::vector<u8>& out, const void* data, size_t n) {
  const u8* p = static_cast<const u8*>(data);
  out.insert(out.end(), p, p + n);
}

/// Sequential reader over a decoded frame; all bounds checks in one place.
struct FrameReader {
  ByteSpan frame;
  size_t pos = 0;

  bool read(void* into, size_t n) {
    if (n > frame.size() - pos) return false;
    std::memcpy(into, frame.data() + pos, n);
    pos += n;
    return true;
  }
  bool read_vector(std::vector<u8>& into, size_t n) {
    if (n > frame.size() - pos) return false;
    into.assign(frame.begin() + static_cast<ptrdiff_t>(pos),
                frame.begin() + static_cast<ptrdiff_t>(pos + n));
    pos += n;
    return true;
  }
};

Status bad_frame(const char* why) {
  return {StatusCode::BadRequest, why};
}

}  // namespace

void encode_request(const Request& req, std::vector<u8>& out) {
  RequestHeader h;
  h.kind = static_cast<u8>(req.kind);
  h.eb_mode = static_cast<u8>(req.eb.mode);
  h.tenant = req.tenant;
  h.eb_value = req.eb.value;
  h.nx = req.dims.x;
  h.ny = req.dims.y;
  h.nz = req.dims.z;
  h.payload_bytes = req.payload.size();
  const u32 frame_bytes =
      static_cast<u32>(sizeof(RequestHeader) + req.payload.size());
  out.reserve(out.size() + sizeof(frame_bytes) + frame_bytes);
  append_bytes(out, &frame_bytes, sizeof(frame_bytes));
  append_bytes(out, &h, sizeof(h));
  append_bytes(out, req.payload.data(), req.payload.size());
}

void encode_response(const Response& resp, std::vector<u8>& out) {
  ResponseHeader h;
  h.status = static_cast<u8>(resp.status.code());
  h.dtype_bytes = static_cast<u8>(resp.dtype_bytes);
  h.nx = resp.dims.x;
  h.ny = resp.dims.y;
  h.nz = resp.dims.z;
  h.message_bytes = static_cast<u32>(resp.status.message().size());
  h.payload_bytes = resp.payload.size();

  WireStreamInfo info;
  const bool with_info = resp.info.count > 0;
  if (with_info) {
    h.info_bytes = sizeof(WireStreamInfo);
    info.nx = resp.info.dims.x;
    info.ny = resp.info.dims.y;
    info.nz = resp.info.dims.z;
    info.count = resp.info.count;
    info.dtype_bytes = resp.info.dtype_bytes;
    info.format_version = resp.info.format_version;
    info.quant = static_cast<u8>(resp.info.quant);
    info.log_transform = resp.info.log_transform ? 1 : 0;
    info.radius = resp.info.radius;
    info.abs_eb = resp.info.abs_eb;
    info.header_bytes = resp.info.header_bytes;
    info.bit_flag_bytes = resp.info.bit_flag_bytes;
    info.block_bytes = resp.info.block_bytes;
    info.outlier_bytes = resp.info.outlier_bytes;
    info.stream_bytes = resp.info.stream_bytes;
    info.total_blocks = resp.info.total_blocks;
    info.nonzero_blocks = resp.info.nonzero_blocks;
    info.saturated = resp.info.saturated;
    info.container_version = resp.info.container_version;
    info.chunk_count = static_cast<u32>(resp.info.chunks.size());
  }

  WireStats stats;
  const bool with_stats = resp.stats.compressed_bytes > 0;
  if (with_stats) {
    h.stats_bytes = sizeof(WireStats);
    stats.count = resp.stats.count;
    stats.input_bytes = resp.stats.input_bytes;
    stats.compressed_bytes = resp.stats.compressed_bytes;
    stats.abs_eb = resp.stats.abs_eb;
    stats.saturated = resp.stats.saturated;
    stats.outliers = resp.stats.outliers;
    stats.total_blocks = resp.stats.total_blocks;
    stats.nonzero_blocks = resp.stats.nonzero_blocks;
  }

  const u32 frame_bytes =
      static_cast<u32>(sizeof(ResponseHeader) + h.message_bytes +
                       h.info_bytes + h.stats_bytes + resp.payload.size());
  out.reserve(out.size() + sizeof(frame_bytes) + frame_bytes);
  append_bytes(out, &frame_bytes, sizeof(frame_bytes));
  append_bytes(out, &h, sizeof(h));
  append_bytes(out, resp.status.message().data(), h.message_bytes);
  if (with_info) append_bytes(out, &info, sizeof(info));
  if (with_stats) append_bytes(out, &stats, sizeof(stats));
  append_bytes(out, resp.payload.data(), resp.payload.size());
}

Status decode_request(ByteSpan frame, Request& out) {
  FrameReader r{frame};
  RequestHeader h;
  if (!r.read(&h, sizeof(h))) return bad_frame("request frame too short");
  if (h.magic != kRequestMagic) return bad_frame("bad request magic");
  if (h.version != kWireVersion)
    return {StatusCode::Unsupported, "unsupported wire version"};
  if (h.payload_bytes != frame.size() - sizeof(h))
    return bad_frame("request payload size disagrees with frame length");
  out.kind = static_cast<JobKind>(h.kind);
  out.tenant = h.tenant;
  out.eb.mode = static_cast<ErrorBoundMode>(h.eb_mode);
  out.eb.value = h.eb_value;
  out.dims = Dims{h.nx, h.ny, h.nz};
  if (!r.read_vector(out.payload, static_cast<size_t>(h.payload_bytes)))
    return bad_frame("request frame truncated");
  return {};
}

Status decode_response(ByteSpan frame, Response& out) {
  FrameReader r{frame};
  ResponseHeader h;
  if (!r.read(&h, sizeof(h))) return bad_frame("response frame too short");
  if (h.magic != kResponseMagic) return bad_frame("bad response magic");
  if (h.version != kWireVersion)
    return {StatusCode::Unsupported, "unsupported wire version"};
  if (h.info_bytes != 0 && h.info_bytes != sizeof(WireStreamInfo))
    return bad_frame("bad info section size");
  if (h.stats_bytes != 0 && h.stats_bytes != sizeof(WireStats))
    return bad_frame("bad stats section size");
  const u64 sections = u64{h.message_bytes} + h.info_bytes + h.stats_bytes +
                       h.payload_bytes;
  if (sections != frame.size() - sizeof(h))
    return bad_frame("response sections disagree with frame length");

  out.reset();
  std::string message(h.message_bytes, '\0');
  if (!r.read(message.data(), message.size()))
    return bad_frame("response frame truncated");
  out.status = Status(static_cast<StatusCode>(h.status), std::move(message));
  out.dims = Dims{h.nx, h.ny, h.nz};
  out.dtype_bytes = h.dtype_bytes;

  if (h.info_bytes != 0) {
    WireStreamInfo info;
    if (!r.read(&info, sizeof(info)))
      return bad_frame("response frame truncated");
    out.info.dims = Dims{info.nx, info.ny, info.nz};
    out.info.count = info.count;
    out.info.dtype_bytes = info.dtype_bytes;
    out.info.format_version = info.format_version;
    out.info.quant = static_cast<QuantVersion>(info.quant);
    out.info.log_transform = info.log_transform != 0;
    out.info.radius = info.radius;
    out.info.abs_eb = info.abs_eb;
    out.info.header_bytes = info.header_bytes;
    out.info.bit_flag_bytes = info.bit_flag_bytes;
    out.info.block_bytes = info.block_bytes;
    out.info.outlier_bytes = info.outlier_bytes;
    out.info.stream_bytes = info.stream_bytes;
    out.info.total_blocks = info.total_blocks;
    out.info.nonzero_blocks = info.nonzero_blocks;
    out.info.saturated = info.saturated;
    out.info.container_version = info.container_version;
    // chunk_count is informational; the index itself does not travel.
  }
  if (h.stats_bytes != 0) {
    WireStats stats;
    if (!r.read(&stats, sizeof(stats)))
      return bad_frame("response frame truncated");
    out.stats.count = stats.count;
    out.stats.input_bytes = stats.input_bytes;
    out.stats.compressed_bytes = stats.compressed_bytes;
    out.stats.abs_eb = stats.abs_eb;
    out.stats.saturated = stats.saturated;
    out.stats.outliers = stats.outliers;
    out.stats.total_blocks = stats.total_blocks;
    out.stats.nonzero_blocks = stats.nonzero_blocks;
  }
  if (!r.read_vector(out.payload, static_cast<size_t>(h.payload_bytes)))
    return bad_frame("response frame truncated");
  return {};
}

}  // namespace fz::wire
