// fzd — the FZ compression daemon (docs/SERVICE.md).
//
//   fzd serve    --socket PATH [--workers N] [--queue N] [--batch N]
//   fzd stats    --socket PATH
//   fzd selftest [--socket PATH]
//   fzd soak     [--requests N] [--clients N] [--workers N] [--queue N]
//                [--socket PATH]
//
// `serve` runs until SIGINT/SIGTERM.  `selftest` starts a private server,
// runs one client through every job kind and failure mode, and exits 0 on
// success.  `soak` hammers one fz::Service from many client threads with
// mixed-size requests and verifies every response byte-identical against a
// direct Codec; with --socket the same traffic crosses the wire protocol.
// Both are wired into scripts/check.sh.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "datasets/generators.hpp"
#include "service/client.hpp"
#include "service/server.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

struct Args {
  std::string command;
  std::string socket_path;
  size_t workers = 0;
  size_t queue_depth = 64;
  size_t batch_max = 8;
  size_t requests = 5000;
  size_t clients = 8;
};

int usage() {
  std::cerr << "usage: fzd serve --socket PATH [--workers N] [--queue N] "
               "[--batch N]\n"
               "       fzd stats --socket PATH\n"
               "       fzd selftest [--socket PATH]\n"
               "       fzd soak [--requests N] [--clients N] [--workers N] "
               "[--queue N] [--socket PATH]\n";
  return 2;
}

bool parse_args(int argc, char** argv, Args& args) {
  if (argc < 2) return false;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) return false;
    const std::string value = argv[++i];
    if (flag == "--socket")
      args.socket_path = value;
    else if (flag == "--workers")
      args.workers = std::stoul(value);
    else if (flag == "--queue")
      args.queue_depth = std::stoul(value);
    else if (flag == "--batch")
      args.batch_max = std::stoul(value);
    else if (flag == "--requests")
      args.requests = std::stoul(value);
    else if (flag == "--clients")
      args.clients = std::stoul(value);
    else
      return false;
  }
  return true;
}

std::string private_socket_path(const char* tag) {
  return "/tmp/fzd-" + std::string(tag) + "-" +
         std::to_string(static_cast<long>(::getpid())) + ".sock";
}

fz::Service::Options service_options(const Args& args) {
  fz::Service::Options opt;
  opt.workers = args.workers;
  opt.queue_depth = args.queue_depth;
  opt.batch_max = args.batch_max;
  return opt;
}

int cmd_serve(const Args& args) {
  if (args.socket_path.empty()) return usage();
  fz::Server::Options opt;
  opt.socket_path = args.socket_path;
  opt.service = service_options(args);
  fz::Server server(opt);
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::cout << "fzd: serving on " << server.socket_path() << " ("
            << server.service().worker_count() << " workers, queue "
            << server.service().queue_capacity() << ")" << std::endl;
  while (g_stop == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.stop();
  std::cout << "fzd: stopped" << std::endl;
  return 0;
}

int cmd_stats(const Args& args) {
  if (args.socket_path.empty()) return usage();
  fz::Client client(args.socket_path);
  std::string text;
  const fz::Status s = client.stats_text(text);
  if (!s.ok()) {
    std::cerr << "fzd stats: " << s.to_string() << "\n";
    return 1;
  }
  std::cout << text;
  return 0;
}

#define CHECK(cond, what)                                       \
  do {                                                          \
    if (!(cond)) {                                              \
      std::cerr << "fzd selftest FAILED: " << (what) << "\n";   \
      return 1;                                                 \
    }                                                           \
  } while (0)

int cmd_selftest(const Args& args) {
  const std::string path = args.socket_path.empty()
                               ? private_socket_path("selftest")
                               : args.socket_path;
  fz::Server::Options opt;
  opt.socket_path = path;
  opt.service.workers = 2;
  fz::Server server(opt);
  fz::Client client(path);
  fz::Response resp;

  CHECK(client.ping().ok(), "ping");

  // f32 roundtrip, byte-identical to a direct Codec.
  const fz::Field field =
      fz::generate_field(fz::Dataset::CESM, fz::Dims{64, 32, 8});
  const fz::ErrorBound eb = fz::ErrorBound::relative(1e-3);
  fz::FzParams params;
  params.eb = eb;
  params.fused_workers = 1;
  const fz::FzCompressed direct =
      fz::fz_compress(field.values(), field.dims, params);
  CHECK(client.compress(field.values(), field.dims, eb, resp).ok(),
        "compress status");
  CHECK(resp.payload == direct.bytes, "compressed bytes match direct Codec");
  CHECK(resp.stats.compressed_bytes == direct.stats.compressed_bytes,
        "stats travel on the wire");
  const std::vector<fz::u8> stream = resp.payload;

  CHECK(client.decompress(stream, resp).ok(), "decompress status");
  const fz::FzDecompressed restored = fz::fz_decompress(stream);
  CHECK(resp.dims.count() == restored.data.size() &&
            resp.payload.size() == restored.data.size() * sizeof(fz::f32) &&
            std::memcmp(resp.payload.data(), restored.data.data(),
                        resp.payload.size()) == 0,
        "decompressed samples match direct Codec");

  CHECK(client.inspect(stream, resp).ok(), "inspect status");
  CHECK(resp.info.count == field.dims.count(), "inspect count");
  CHECK(resp.info.stream_bytes == stream.size(), "inspect stream_bytes");

  // Failure taxonomy across the wire.
  std::vector<fz::u8> garbage(64, 0xAB);
  fz::Status s = client.decompress(garbage, resp);
  CHECK(s.code() == fz::StatusCode::InvalidStream, "garbage -> invalid-stream");
  {
    fz::Request req;
    req.kind = fz::JobKind::Compress;
    req.dims = fz::Dims{0, 0, 0};
    s = client.call(req, resp);
    CHECK(s.code() == fz::StatusCode::InvalidParams,
          "zero dims -> invalid-params");
  }
  {
    fz::TenantPolicy policy;
    policy.max_payload_bytes = 16;
    server.service().set_policy(7, policy);
    fz::Request req;
    req.kind = fz::JobKind::Compress;
    req.tenant = 7;
    req.dims = fz::Dims{64, 32, 8};
    req.eb = eb;
    const fz::u8* bytes =
        reinterpret_cast<const fz::u8*>(field.data.data());
    req.payload.assign(bytes, bytes + field.data.size() * sizeof(fz::f32));
    s = client.call(req, resp);
    CHECK(s.code() == fz::StatusCode::PolicyDenied,
          "oversize payload -> policy-denied");
  }

  std::string stats;
  CHECK(client.stats_text(stats).ok(), "stats status");
  CHECK(stats.find("fz_service_up 1") != std::string::npos, "stats body");
  CHECK(stats.find("fz_service_worker_dropped_exceptions 0") !=
            std::string::npos,
        "no worker exceptions");

  server.stop();
  std::cout << "fzd selftest: ok" << std::endl;
  return 0;
}

/// One client thread's deterministic request mix (no rand(): index math
/// only, so every run and every transport exercises the same sequence).
struct SoakPlan {
  std::vector<fz::Field> fields;
  std::vector<std::vector<fz::u8>> expected;  ///< direct-Codec streams
  fz::ErrorBound eb = fz::ErrorBound::relative(1e-3);
};

int cmd_soak(const Args& args) {
  SoakPlan plan;
  // Mixed sizes: small fields exercise the batching path
  // (payload <= small_job_bytes), the large one the singleton path.
  plan.fields.push_back(
      fz::generate_field(fz::Dataset::CESM, fz::Dims{32, 16, 4}));
  plan.fields.push_back(
      fz::generate_field(fz::Dataset::HACC, fz::Dims{512, 1, 1}));
  plan.fields.push_back(
      fz::generate_field(fz::Dataset::Nyx, fz::Dims{48, 24, 12}));
  plan.fields.push_back(
      fz::generate_field(fz::Dataset::CESM, fz::Dims{128, 64, 16}));
  fz::FzParams params;
  params.eb = plan.eb;
  params.fused_workers = 1;
  for (const fz::Field& f : plan.fields)
    plan.expected.push_back(
        fz::fz_compress(f.values(), f.dims, params).bytes);

  std::unique_ptr<fz::Service> direct;
  std::unique_ptr<fz::Server> server;
  const bool over_wire = !args.socket_path.empty();
  if (over_wire) {
    fz::Server::Options wopt;
    wopt.socket_path = args.socket_path;
    wopt.service = service_options(args);
    wopt.io_workers = args.clients;
    server = std::make_unique<fz::Server>(wopt);
  } else {
    direct = std::make_unique<fz::Service>(service_options(args));
  }
  fz::Service& service = over_wire ? server->service() : *direct;

  const size_t clients = std::max<size_t>(args.clients, 1);
  const size_t per_client = (args.requests + clients - 1) / clients;
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> failures{0};
  std::atomic<size_t> retries{0};
  std::atomic<size_t> completed{0};

  fz::run_task_crew(clients, clients, [&](size_t task, size_t) {
    std::unique_ptr<fz::Client> client;
    if (over_wire) client = std::make_unique<fz::Client>(args.socket_path);
    fz::Request req;
    fz::Response resp;
    req.kind = fz::JobKind::Compress;
    req.eb = plan.eb;
    for (size_t i = 0; i < per_client; ++i) {
      const size_t which = (task * 9973 + i * 31) % plan.fields.size();
      const fz::Field& f = plan.fields[which];
      req.dims = f.dims;
      const fz::u8* bytes = reinterpret_cast<const fz::u8*>(f.data.data());
      req.payload.assign(bytes, bytes + f.data.size() * sizeof(fz::f32));
      for (;;) {
        const fz::Status s = over_wire ? client->call(req, resp)
                                       : service.submit(req, resp);
        if (s.code() == fz::StatusCode::QueueFull) {
          // Backpressure is a retryable contract, not an error.
          retries.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::yield();
          continue;
        }
        if (!s.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        if (resp.payload != plan.expected[which])
          mismatches.fetch_add(1, std::memory_order_relaxed);
        completed.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
  });

  const fz::Service::Counters c = service.counters();
  std::cout << "fzd soak: " << completed.load() << " responses ("
            << clients << " clients, " << (over_wire ? "wire" : "in-process")
            << "), " << retries.load() << " queue-full retries, "
            << c.batches << " batched wakeups, peak queue "
            << c.peak_queue_depth << "\n";
  if (server) server->stop();
  if (mismatches.load() != 0 || failures.load() != 0 ||
      c.dropped_exceptions != 0) {
    std::cerr << "fzd soak FAILED: " << mismatches.load() << " mismatches, "
              << failures.load() << " failures, " << c.dropped_exceptions
              << " dropped exceptions\n";
    return 1;
  }
  std::cout << "fzd soak: ok (all responses byte-identical to direct Codec)"
            << std::endl;
  return 0;
}

#undef CHECK

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return usage();
  try {
    if (args.command == "serve") return cmd_serve(args);
    if (args.command == "stats") return cmd_stats(args);
    if (args.command == "selftest") return cmd_selftest(args);
    if (args.command == "soak") return cmd_soak(args);
  } catch (const std::exception& e) {
    std::cerr << "fzd: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
