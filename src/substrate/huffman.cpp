// fzlint:hot-path — segment-parallel entropy decode; keep locks out of the
// per-symbol loops (the lint gate enforces allocation/wait discipline here).
#include "substrate/huffman.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <tuple>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "substrate/bitio.hpp"
#include "telemetry/telemetry.hpp"

namespace fz {

namespace {

struct TreeNode {
  u64 weight;
  u32 order;  // tie-break for determinism
  i32 left = -1;
  i32 right = -1;
  i32 symbol = -1;
};

struct HeapEntry {
  u64 weight;
  u32 order;
  i32 node;
  bool operator>(const HeapEntry& o) const {
    return std::tie(weight, order) > std::tie(o.weight, o.order);
  }
};

void assign_depths(const std::vector<TreeNode>& nodes, i32 root,
                   std::vector<u8>& lengths) {
  // Iterative DFS; depth of a leaf is its code length.
  std::vector<std::pair<i32, int>> stack{{root, 0}};
  while (!stack.empty()) {
    auto [n, depth] = stack.back();
    stack.pop_back();
    const TreeNode& node = nodes[static_cast<size_t>(n)];
    if (node.symbol >= 0) {
      lengths[static_cast<size_t>(node.symbol)] =
          static_cast<u8>(std::max(depth, 1));
      continue;
    }
    stack.emplace_back(node.left, depth + 1);
    stack.emplace_back(node.right, depth + 1);
  }
}

/// Symbols with nonzero length in canonical order (length, then value).
std::vector<u32> canonical_symbol_order(const std::vector<u8>& lengths) {
  std::vector<u32> syms;
  for (size_t s = 0; s < lengths.size(); ++s)
    if (lengths[s] != 0) syms.push_back(static_cast<u32>(s));
  std::sort(syms.begin(), syms.end(), [&](u32 a, u32 b) {
    return std::tie(lengths[a], a) < std::tie(lengths[b], b);
  });
  return syms;
}

}  // namespace

int HuffmanCodebook::max_length() const {
  u8 m = 0;
  for (const u8 l : lengths) m = std::max(m, l);
  return m;
}

void HuffmanCodebook::rebuild_codes_from_lengths() {
  codes.assign(lengths.size(), 0);
  const std::vector<u32> syms = canonical_symbol_order(lengths);
  u64 code = 0;
  int prev_len = 0;
  for (const u32 s : syms) {
    const int len = lengths[s];
    FZ_FORMAT_REQUIRE(len <= 63, "Huffman code length overflow");
    code <<= (len - prev_len);
    // An over-subscribed length table (Kraft sum > 1) runs the canonical
    // counter past 2^len — exactly the streams that would overflow the
    // decode table, so they are rejected here for every consumer at once.
    FZ_FORMAT_REQUIRE(code >> len == 0, "Huffman code lengths over-subscribed");
    codes[s] = code;
    ++code;
    prev_len = len;
  }
}

HuffmanCodebook HuffmanCodebook::build(std::span<const u64> histogram) {
  HuffmanCodebook book;
  const size_t n = histogram.size();
  book.lengths.assign(n, 0);
  book.codes.assign(n, 0);

  std::vector<TreeNode> nodes;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  u32 order = 0;
  for (size_t s = 0; s < n; ++s) {
    if (histogram[s] == 0) continue;
    nodes.push_back({histogram[s], order, -1, -1, static_cast<i32>(s)});
    heap.push({histogram[s], order, static_cast<i32>(nodes.size() - 1)});
    ++order;
  }
  if (nodes.empty()) return book;
  if (nodes.size() == 1) {
    book.lengths[static_cast<size_t>(nodes[0].symbol)] = 1;
    // canonical code 0, length 1
    return book;
  }
  while (heap.size() > 1) {
    const HeapEntry a = heap.top();
    heap.pop();
    const HeapEntry b = heap.top();
    heap.pop();
    nodes.push_back({a.weight + b.weight, order, a.node, b.node, -1});
    heap.push({a.weight + b.weight, order, static_cast<i32>(nodes.size() - 1)});
    ++order;
  }
  assign_depths(nodes, heap.top().node, book.lengths);
  FZ_REQUIRE(book.max_length() <= 63, "Huffman code length overflow");
  book.rebuild_codes_from_lengths();
  return book;
}

HuffmanDecodeTables build_decode_tables(const HuffmanCodebook& book) {
  HuffmanDecodeTables t;
  const int maxlen = book.max_length();
  FZ_FORMAT_REQUIRE(maxlen <= 63, "Huffman code length overflow");
  t.max_length = maxlen;
  t.sorted_syms = canonical_symbol_order(book.lengths);
  t.count_per_len.assign(static_cast<size_t>(maxlen) + 1, 0);
  for (const u32 s : t.sorted_syms) ++t.count_per_len[book.lengths[s]];
  t.first_code.assign(static_cast<size_t>(maxlen) + 2, 0);
  t.first_index.assign(static_cast<size_t>(maxlen) + 2, 0);
  {
    u64 code = 0;
    u32 index = 0;
    for (int len = 1; len <= maxlen; ++len) {
      const u32 at_len = t.count_per_len[static_cast<size_t>(len)];
      // Same over-subscription bound rebuild_codes_from_lengths enforces:
      // every length's code range must fit in `len` bits or the table fill
      // below would run off the end.
      FZ_FORMAT_REQUIRE(code + at_len <= (u64{1} << len),
                        "Huffman code lengths over-subscribed");
      t.first_code[static_cast<size_t>(len)] = code;
      t.first_index[static_cast<size_t>(len)] = index;
      code = (code + at_len) << 1;
      index += at_len;
    }
    t.first_code[static_cast<size_t>(maxlen) + 1] = code;
    t.first_index[static_cast<size_t>(maxlen) + 1] = index;
  }
  if (maxlen == 0) return t;  // empty codebook: bit-serial tables only

  const int K = std::min(maxlen, HuffmanDecodeTables::kMaxPrimaryBits);
  t.primary_bits = K;

  // Pass 1: per-primary-prefix sub-table width = the largest excess
  // (len - K) among long codes sharing that prefix.
  std::vector<u8> sub_bits(size_t{1} << K, 0);
  {
    u64 code = 0;
    int prev_len = 0;
    for (const u32 s : t.sorted_syms) {
      const int len = book.lengths[s];
      code <<= (len - prev_len);
      if (len > K) {
        const size_t prefix = static_cast<size_t>(code >> (len - K));
        sub_bits[prefix] =
            std::max(sub_bits[prefix], static_cast<u8>(len - K));
      }
      ++code;
      prev_len = len;
    }
  }
  size_t secondary_total = 0;
  std::vector<u32> sub_offset(size_t{1} << K, 0);
  for (size_t p = 0; p < sub_bits.size(); ++p) {
    if (sub_bits[p] == 0) continue;
    sub_offset[p] = static_cast<u32>(secondary_total);
    secondary_total += size_t{1} << sub_bits[p];
    if (secondary_total > HuffmanDecodeTables::kMaxSecondaryEntries) {
      // A legal but pathologically deep codebook: stay on the bit-serial
      // walk rather than allocate an unbounded table.
      t.primary_bits = 0;
      return t;
    }
  }

  t.primary.assign(size_t{1} << K, HuffmanDecodeTables::kInvalidEntry);
  t.secondary.assign(secondary_total, HuffmanDecodeTables::kInvalidEntry);
  for (size_t p = 0; p < sub_bits.size(); ++p) {
    if (sub_bits[p] != 0)
      t.primary[p] = HuffmanDecodeTables::kLongFlag |
                     (static_cast<u32>(sub_bits[p])
                      << HuffmanDecodeTables::kLenShift) |
                     sub_offset[p];
  }

  // Pass 2: range-fill.  A code of length len <= K owns every primary slot
  // whose top len bits equal it; a longer code owns the analogous slice of
  // its prefix's sub-table.
  {
    u64 code = 0;
    int prev_len = 0;
    for (const u32 s : t.sorted_syms) {
      const int len = book.lengths[s];
      code <<= (len - prev_len);
      const u32 entry =
          static_cast<u32>(s) |
          (static_cast<u32>(len) << HuffmanDecodeTables::kLenShift);
      if (len <= K) {
        const size_t lo = static_cast<size_t>(code) << (K - len);
        const size_t fill = size_t{1} << (K - len);
        std::fill_n(t.primary.begin() + static_cast<long>(lo), fill, entry);
      } else {
        const size_t prefix = static_cast<size_t>(code >> (len - K));
        const int sb = sub_bits[prefix];
        const u64 rest = code & ((u64{1} << (len - K)) - 1);
        const size_t lo =
            sub_offset[prefix] + (static_cast<size_t>(rest) << (sb - (len - K)));
        const size_t fill = size_t{1} << (sb - (len - K));
        std::fill_n(t.secondary.begin() + static_cast<long>(lo), fill, entry);
      }
      ++code;
      prev_len = len;
    }
  }
  t.table_ok = true;
  return t;
}

size_t HuffmanLayout::segments_in_chunk(size_t c) const {
  if (segment_size == 0) return 1;
  const size_t begin = c * static_cast<size_t>(chunk_size);
  const size_t end =
      std::min<size_t>(begin + chunk_size, static_cast<size_t>(count));
  return div_ceil(end - begin, static_cast<size_t>(segment_size));
}

size_t HuffmanLayout::total_segments() const {
  return gap_start.back() + num_chunks;
}

HuffmanLayout parse_huffman_layout(ByteSpan encoded) {
  HuffmanLayout lay;
  ByteReader r(encoded);
  const u32 first = r.get<u32>();
  if (first == kHuffGapMagic) {
    lay.num_chunks = r.get<u32>();
    lay.chunk_size = r.get<u32>();
    lay.segment_size = r.get<u32>();
    lay.count = r.get<u64>();
    FZ_FORMAT_REQUIRE(lay.segment_size > 0, "bad segment size");
  } else {
    // Legacy (pre-gap) layout: the first word is the chunk count.
    lay.num_chunks = first;
    lay.chunk_size = r.get<u32>();
    lay.segment_size = 0;
    lay.count = r.get<u64>();
  }
  FZ_FORMAT_REQUIRE(lay.chunk_size > 0, "bad chunk size");
  FZ_FORMAT_REQUIRE(lay.num_chunks == div_ceil(lay.count, lay.chunk_size),
                    "chunk count mismatch");
  // Bound table allocations by the bytes actually present: a hostile chunk
  // count must not allocate gigabytes before the reads below reject it.
  FZ_FORMAT_REQUIRE(size_t{lay.num_chunks} * sizeof(u32) <= r.remaining(),
                    "chunk table exceeds stream");
  lay.sizes.resize(lay.num_chunks);
  for (auto& s : lay.sizes) s = r.get<u32>();
  lay.offsets.assign(size_t{lay.num_chunks} + 1, 0);
  for (size_t c = 0; c < lay.num_chunks; ++c)
    lay.offsets[c + 1] = lay.offsets[c] + lay.sizes[c];

  lay.gap_start.assign(size_t{lay.num_chunks} + 1, 0);
  for (size_t c = 0; c < lay.num_chunks; ++c)
    lay.gap_start[c + 1] = lay.gap_start[c] + (lay.segments_in_chunk(c) - 1);
  if (lay.segment_size != 0) {
    FZ_FORMAT_REQUIRE(lay.gap_start.back() * sizeof(u32) <= r.remaining(),
                      "gap array exceeds stream");
    lay.gaps.resize(lay.gap_start.back());
    for (auto& g : lay.gaps) g = r.get<u32>();
    for (size_t c = 0; c < lay.num_chunks; ++c)
      for (size_t k = lay.gap_start[c]; k < lay.gap_start[c + 1]; ++k)
        FZ_FORMAT_REQUIRE(lay.gaps[k] <= size_t{lay.sizes[c]} * 8,
                          "gap offset exceeds chunk");
  }
  lay.payload = r.get_bytes(lay.offsets.back());
  return lay;
}

std::vector<u8> huffman_encode(std::span<const u16> symbols,
                               const HuffmanCodebook& book,
                               const HuffmanEncodeOptions& opts) {
  const size_t chunk_size = opts.chunk_size;
  const size_t segment_size = opts.segment_size;
  FZ_REQUIRE(chunk_size > 0, "chunk size must be positive");
  const size_t num_chunks = div_ceil(symbols.size(), chunk_size);

  telemetry::Span span(telemetry::active_sink(), "huffman-encode");

  std::vector<std::vector<u8>> payloads(num_chunks);
  std::vector<std::vector<u32>> gaps(num_chunks);
  parallel_for(0, num_chunks, [&](size_t c) {
    BitWriterMsb bw;
    const size_t begin = c * chunk_size;
    const size_t end = std::min(begin + chunk_size, symbols.size());
    for (size_t i = begin; i < end; ++i) {
      if (segment_size != 0 && i != begin &&
          (i - begin) % segment_size == 0) {
        const size_t bits = bw.bit_count();
        FZ_REQUIRE(bits <= 0xffffffffu, "chunk too large for gap array");
        gaps[c].push_back(static_cast<u32>(bits));
      }
      const u16 s = symbols[i];
      FZ_REQUIRE(s < book.num_symbols() && book.lengths[s] != 0,
                 "symbol missing from codebook");
      bw.put_bits(book.codes[s], book.lengths[s]);
    }
    payloads[c] = bw.take();
  });

  std::vector<u8> out;
  ByteWriter w(out);
  if (segment_size != 0) {
    w.put<u32>(kHuffGapMagic);
    w.put<u32>(static_cast<u32>(num_chunks));
    w.put<u32>(static_cast<u32>(chunk_size));
    w.put<u32>(static_cast<u32>(segment_size));
    w.put<u64>(symbols.size());
    for (const auto& p : payloads) w.put<u32>(static_cast<u32>(p.size()));
    for (const auto& g : gaps)
      for (const u32 bit : g) w.put<u32>(bit);
  } else {
    w.put<u32>(static_cast<u32>(num_chunks));
    w.put<u32>(static_cast<u32>(chunk_size));
    w.put<u64>(symbols.size());
    for (const auto& p : payloads) w.put<u32>(static_cast<u32>(p.size()));
  }
  for (const auto& p : payloads) w.put_bytes(p);
  if (span.enabled()) {
    span.arg("bytes_in", static_cast<double>(symbols.size() * sizeof(u16)));
    span.arg("bytes_out", static_cast<double>(out.size()));
    span.arg("chunks", static_cast<double>(num_chunks));
  }
  return out;
}

std::vector<u8> huffman_encode(std::span<const u16> symbols,
                               const HuffmanCodebook& book, size_t chunk_size) {
  return huffman_encode(symbols, book, HuffmanEncodeOptions{chunk_size});
}

std::vector<u16> huffman_decode(ByteSpan encoded, const HuffmanCodebook& book,
                                const HuffmanDecodeOptions& opts) {
  telemetry::Span span(telemetry::active_sink(), "huffman-decode");
  const HuffmanLayout lay = parse_huffman_layout(encoded);
  // Each symbol costs at least one bit, so a corrupt count that exceeds
  // the payload's bit capacity is rejected before allocating the output.
  FZ_FORMAT_REQUIRE(lay.count <= lay.payload.size() * 8,
                    "symbol count exceeds payload");
  const HuffmanDecodeTables tables = build_decode_tables(book);
  const int maxlen = tables.max_length;
  FZ_FORMAT_REQUIRE(maxlen > 0 || lay.count == 0, "empty codebook");

  std::vector<u16> out(lay.count);
  const size_t nseg = lay.total_segments();
  // Flatten (chunk, segment) so the parallel loop load-balances across the
  // whole stream, not per chunk.  seg_base[c] = gap_start[c] + c because a
  // chunk has one more segment than it has gaps.
  std::vector<u32> seg_chunk(nseg);
  for (size_t c = 0; c < lay.num_chunks; ++c) {
    const size_t base = lay.gap_start[c] + c;
    const size_t segs = lay.segments_in_chunk(c);
    std::fill_n(seg_chunk.begin() + static_cast<long>(base), segs,
                static_cast<u32>(c));
  }
  const bool use_table = opts.table_fast && tables.table_ok;
  const int K = tables.primary_bits;
  const u32* primary = tables.primary.data();
  const u32* secondary = tables.secondary.data();

  parallel_tasks(nseg, opts.workers, [&](size_t g, size_t) {
    const size_t c = seg_chunk[g];
    const size_t s = g - (lay.gap_start[c] + c);
    const size_t chunk_begin = c * static_cast<size_t>(lay.chunk_size);
    const size_t chunk_end =
        std::min<size_t>(chunk_begin + lay.chunk_size, lay.count);
    const size_t seg_size = lay.segment_size == 0 ? chunk_end - chunk_begin
                                                  : lay.segment_size;
    const size_t begin = chunk_begin + s * seg_size;
    const size_t end = std::min(begin + seg_size, chunk_end);
    const ByteSpan chunk = lay.payload.subspan(lay.offsets[c], lay.sizes[c]);
    const size_t start_bit = s == 0 ? 0 : lay.gaps[lay.gap_start[c] + s - 1];
    BitReaderMsb br(chunk, start_bit);

    if (use_table) {
      // Table-driven fast path: resolve whole codes from a wide peek()
      // window.  One peek(kMaxPeek)/consume(used) pair serves as many
      // symbols as fit ahead of the worst-case code width, so the
      // per-symbol work is just a shift, a table hit and a length add.
      // peek() pads past the end with zeros; consume() still rejects any
      // advance into the padding, so truncated streams fail with the same
      // FormatError as the bit-serial walk (the garbage symbols decoded
      // from padding die with the throw).
      constexpr int kWin = BitReaderMsb::kMaxPeek;
      const int worst = maxlen;  // table_ok bounds this by K + sub_bits
      u16* op = out.data();
      for (size_t i = begin; i < end;) {
        // MSB-aligned shift register: the next unread bit is bit 63, so a
        // code resolves as one shift + one table hit, and advancing is one
        // more shift — no per-symbol offset arithmetic.
        u64 win = br.peek(kWin) << (64 - kWin);
        int used = 0;
        do {
          const u32 e = primary[win >> (64 - K)];
          FZ_FORMAT_REQUIRE(e != HuffmanDecodeTables::kInvalidEntry,
                            "invalid Huffman code");
          if ((e & HuffmanDecodeTables::kLongFlag) == 0) {
            const int len = static_cast<int>(e >> HuffmanDecodeTables::kLenShift);
            op[i++] = static_cast<u16>(e & 0xffff);
            win <<= len;
            used += len;
          } else {
            const int sub =
                static_cast<int>(e >> HuffmanDecodeTables::kLenShift) & 0x3f;
            const u32 e2 =
                secondary[(e & 0x00ffffffu) + ((win << K) >> (64 - sub))];
            FZ_FORMAT_REQUIRE(e2 != HuffmanDecodeTables::kInvalidEntry,
                              "invalid Huffman code");
            const int len =
                static_cast<int>(e2 >> HuffmanDecodeTables::kLenShift);
            op[i++] = static_cast<u16>(e2 & 0xffff);
            win <<= len;
            used += len;
          }
        } while (i < end && used + worst <= kWin);
        br.consume(used);
      }
      return;
    }
    // Bit-serial canonical walk (legacy-equivalent reference; also the
    // fallback for codebooks too deep for the table budget).
    for (size_t i = begin; i < end; ++i) {
      u64 code = 0;
      int len = 0;
      for (;;) {
        code = (code << 1) | u64{br.get_bit()};
        ++len;
        FZ_FORMAT_REQUIRE(len <= maxlen, "invalid Huffman code");
        const u64 base = tables.first_code[static_cast<size_t>(len)];
        const u32 n_at_len = tables.count_per_len[static_cast<size_t>(len)];
        if (n_at_len != 0 && code >= base && code < base + n_at_len) {
          const u32 idx = tables.first_index[static_cast<size_t>(len)] +
                          static_cast<u32>(code - base);
          out[i] = static_cast<u16>(tables.sorted_syms[idx]);
          break;
        }
      }
    }
  });
  if (span.enabled()) {
    span.arg("bytes_in", static_cast<double>(encoded.size()));
    span.arg("symbols", static_cast<double>(lay.count));
    span.arg("chunks", static_cast<double>(lay.num_chunks));
    span.arg("segments", static_cast<double>(nseg));
    span.arg("table_fast", use_table ? 1.0 : 0.0);
  }
  return out;
}

std::vector<u8> huffman_compress(std::span<const u16> symbols, size_t num_bins,
                                 size_t chunk_size) {
  std::vector<u64> hist(num_bins, 0);
  for (const u16 s : symbols) {
    FZ_REQUIRE(s < num_bins, "symbol out of range for codebook");
    ++hist[s];
  }
  const HuffmanCodebook book = HuffmanCodebook::build(hist);
  std::vector<u8> out;
  ByteWriter w(out);
  w.put<u32>(static_cast<u32>(num_bins));
  for (const u8 l : book.lengths) w.put<u8>(l);
  const std::vector<u8> payload =
      huffman_encode(symbols, book, HuffmanEncodeOptions{chunk_size});
  w.put_bytes(payload);
  return out;
}

std::vector<u16> huffman_decompress(ByteSpan stream) {
  ByteReader r(stream);
  const u32 num_bins = r.get<u32>();
  FZ_FORMAT_REQUIRE(num_bins > 0 && num_bins <= (1u << 16), "bad bin count");
  HuffmanCodebook book;
  book.lengths.resize(num_bins);
  for (auto& l : book.lengths) l = r.get<u8>();
  // Stream lengths are untrusted: the shared canonical rebuild rejects
  // over-long and over-subscribed tables with FormatError before any
  // decode table is sized from them.
  book.rebuild_codes_from_lengths();
  const ByteSpan payload = ByteSpan{stream}.subspan(r.pos());
  return huffman_decode(payload, book);
}

size_t huffman_gap_bytes(size_t count, size_t chunk_size, size_t segment_size) {
  if (segment_size == 0 || chunk_size == 0) return 0;
  const size_t num_chunks = div_ceil(count, chunk_size);
  size_t gaps = 0;
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t begin = c * chunk_size;
    const size_t end = std::min(begin + chunk_size, count);
    gaps += div_ceil(end - begin, segment_size) - 1;
  }
  // Gap words plus the extra header fields (magic + segment size).
  return gaps * sizeof(u32) + 2 * sizeof(u32);
}

double codebook_build_serial_ns(size_t num_bins) {
  // Serial heap-based tree build: O(n log n) node merges, each a long
  // dependency chain on device.  ~1.2 ms at 1024 bins — calibrated so the
  // codebook dominates cuSZ on small fields (paper: 10.7x FZ speedup on
  // CESM) while remaining visible on large ones (4.2x average).
  const double n = static_cast<double>(num_bins);
  return 120.0 * n * std::max(1.0, std::log2(n));
}

}  // namespace fz
