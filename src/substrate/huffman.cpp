#include "substrate/huffman.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <tuple>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "substrate/bitio.hpp"

namespace fz {

namespace {

struct TreeNode {
  u64 weight;
  u32 order;  // tie-break for determinism
  i32 left = -1;
  i32 right = -1;
  i32 symbol = -1;
};

struct HeapEntry {
  u64 weight;
  u32 order;
  i32 node;
  bool operator>(const HeapEntry& o) const {
    return std::tie(weight, order) > std::tie(o.weight, o.order);
  }
};

void assign_depths(const std::vector<TreeNode>& nodes, i32 root,
                   std::vector<u8>& lengths) {
  // Iterative DFS; depth of a leaf is its code length.
  std::vector<std::pair<i32, int>> stack{{root, 0}};
  while (!stack.empty()) {
    auto [n, depth] = stack.back();
    stack.pop_back();
    const TreeNode& node = nodes[static_cast<size_t>(n)];
    if (node.symbol >= 0) {
      lengths[static_cast<size_t>(node.symbol)] =
          static_cast<u8>(std::max(depth, 1));
      continue;
    }
    stack.emplace_back(node.left, depth + 1);
    stack.emplace_back(node.right, depth + 1);
  }
}

}  // namespace

int HuffmanCodebook::max_length() const {
  u8 m = 0;
  for (const u8 l : lengths) m = std::max(m, l);
  return m;
}

HuffmanCodebook HuffmanCodebook::build(std::span<const u64> histogram) {
  HuffmanCodebook book;
  const size_t n = histogram.size();
  book.lengths.assign(n, 0);
  book.codes.assign(n, 0);

  std::vector<TreeNode> nodes;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  u32 order = 0;
  for (size_t s = 0; s < n; ++s) {
    if (histogram[s] == 0) continue;
    nodes.push_back({histogram[s], order, -1, -1, static_cast<i32>(s)});
    heap.push({histogram[s], order, static_cast<i32>(nodes.size() - 1)});
    ++order;
  }
  if (nodes.empty()) return book;
  if (nodes.size() == 1) {
    book.lengths[static_cast<size_t>(nodes[0].symbol)] = 1;
    // canonical code 0, length 1
    return book;
  }
  while (heap.size() > 1) {
    const HeapEntry a = heap.top();
    heap.pop();
    const HeapEntry b = heap.top();
    heap.pop();
    nodes.push_back({a.weight + b.weight, order, a.node, b.node, -1});
    heap.push({a.weight + b.weight, order, static_cast<i32>(nodes.size() - 1)});
    ++order;
  }
  assign_depths(nodes, heap.top().node, book.lengths);

  // Canonical code assignment: symbols sorted by (length, symbol value).
  std::vector<u32> syms;
  for (size_t s = 0; s < n; ++s)
    if (book.lengths[s] != 0) syms.push_back(static_cast<u32>(s));
  std::sort(syms.begin(), syms.end(), [&](u32 a, u32 b) {
    return std::tie(book.lengths[a], a) < std::tie(book.lengths[b], b);
  });
  u64 code = 0;
  int prev_len = static_cast<int>(book.lengths[syms.front()]);
  for (const u32 s : syms) {
    const int len = book.lengths[s];
    code <<= (len - prev_len);
    book.codes[s] = code;
    ++code;
    prev_len = len;
  }
  FZ_REQUIRE(book.max_length() <= 63, "Huffman code length overflow");
  return book;
}

std::vector<u8> huffman_encode(std::span<const u16> symbols,
                               const HuffmanCodebook& book, size_t chunk_size) {
  FZ_REQUIRE(chunk_size > 0, "chunk size must be positive");
  const size_t num_chunks = div_ceil(symbols.size(), chunk_size);

  std::vector<std::vector<u8>> payloads(num_chunks);
  parallel_for(0, num_chunks, [&](size_t c) {
    BitWriterMsb bw;
    const size_t begin = c * chunk_size;
    const size_t end = std::min(begin + chunk_size, symbols.size());
    for (size_t i = begin; i < end; ++i) {
      const u16 s = symbols[i];
      FZ_REQUIRE(s < book.num_symbols() && book.lengths[s] != 0,
                 "symbol missing from codebook");
      bw.put_bits(book.codes[s], book.lengths[s]);
    }
    payloads[c] = bw.take();
  });

  std::vector<u8> out;
  ByteWriter w(out);
  w.put<u32>(static_cast<u32>(num_chunks));
  w.put<u32>(static_cast<u32>(chunk_size));
  w.put<u64>(symbols.size());
  for (const auto& p : payloads) w.put<u32>(static_cast<u32>(p.size()));
  for (const auto& p : payloads) w.put_bytes(p);
  return out;
}

std::vector<u16> huffman_decode(ByteSpan encoded, const HuffmanCodebook& book) {
  ByteReader r(encoded);
  const u32 num_chunks = r.get<u32>();
  const u32 chunk_size = r.get<u32>();
  const u64 count = r.get<u64>();
  FZ_FORMAT_REQUIRE(chunk_size > 0, "bad chunk size");
  FZ_FORMAT_REQUIRE(num_chunks == div_ceil(count, chunk_size),
                    "chunk count mismatch");
  std::vector<u32> sizes(num_chunks);
  for (auto& s : sizes) s = r.get<u32>();
  std::vector<size_t> offsets(num_chunks + 1, 0);
  for (size_t c = 0; c < num_chunks; ++c) offsets[c + 1] = offsets[c] + sizes[c];
  const ByteSpan payload = r.get_bytes(offsets.back());
  // Each symbol costs at least one bit, so a corrupt count that exceeds
  // the payload's bit capacity is rejected before allocating the output.
  FZ_FORMAT_REQUIRE(count <= payload.size() * 8, "symbol count exceeds payload");

  // Canonical decode tables: first code and first symbol index per length.
  const int maxlen = book.max_length();
  FZ_FORMAT_REQUIRE(maxlen > 0 || count == 0, "empty codebook");
  std::vector<u64> first_code(static_cast<size_t>(maxlen) + 2, 0);
  std::vector<u32> first_index(static_cast<size_t>(maxlen) + 2, 0);
  std::vector<u32> sorted_syms;
  for (size_t s = 0; s < book.num_symbols(); ++s)
    if (book.lengths[s] != 0) sorted_syms.push_back(static_cast<u32>(s));
  std::sort(sorted_syms.begin(), sorted_syms.end(), [&](u32 a, u32 b) {
    return std::tie(book.lengths[a], a) < std::tie(book.lengths[b], b);
  });
  std::vector<u32> count_per_len(static_cast<size_t>(maxlen) + 1, 0);
  for (const u32 s : sorted_syms) ++count_per_len[book.lengths[s]];
  {
    u64 code = 0;
    u32 index = 0;
    for (int len = 1; len <= maxlen; ++len) {
      first_code[static_cast<size_t>(len)] = code;
      first_index[static_cast<size_t>(len)] = index;
      code = (code + count_per_len[static_cast<size_t>(len)]) << 1;
      index += count_per_len[static_cast<size_t>(len)];
    }
    first_code[static_cast<size_t>(maxlen) + 1] = code;
  }

  std::vector<u16> out(count);
  parallel_for(0, num_chunks, [&](size_t c) {
    BitReaderMsb br(payload.subspan(offsets[c], sizes[c]));
    const size_t begin = c * chunk_size;
    const size_t end = std::min<size_t>(begin + chunk_size, count);
    for (size_t i = begin; i < end; ++i) {
      u64 code = 0;
      int len = 0;
      for (;;) {
        code = (code << 1) | u64{br.get_bit()};
        ++len;
        FZ_FORMAT_REQUIRE(len <= maxlen, "invalid Huffman code");
        const u64 base = first_code[static_cast<size_t>(len)];
        const u32 n_at_len = count_per_len[static_cast<size_t>(len)];
        if (n_at_len != 0 && code >= base && code < base + n_at_len) {
          const u32 idx =
              first_index[static_cast<size_t>(len)] + static_cast<u32>(code - base);
          out[i] = static_cast<u16>(sorted_syms[idx]);
          break;
        }
      }
    }
  });
  return out;
}

std::vector<u8> huffman_compress(std::span<const u16> symbols, size_t num_bins,
                                 size_t chunk_size) {
  std::vector<u64> hist(num_bins, 0);
  for (const u16 s : symbols) {
    FZ_REQUIRE(s < num_bins, "symbol out of range for codebook");
    ++hist[s];
  }
  const HuffmanCodebook book = HuffmanCodebook::build(hist);
  std::vector<u8> out;
  ByteWriter w(out);
  w.put<u32>(static_cast<u32>(num_bins));
  for (const u8 l : book.lengths) w.put<u8>(l);
  const std::vector<u8> payload = huffman_encode(symbols, book, chunk_size);
  w.put_bytes(payload);
  return out;
}

std::vector<u16> huffman_decompress(ByteSpan stream) {
  ByteReader r(stream);
  const u32 num_bins = r.get<u32>();
  FZ_FORMAT_REQUIRE(num_bins > 0 && num_bins <= (1u << 16), "bad bin count");
  HuffmanCodebook book;
  book.lengths.resize(num_bins);
  for (auto& l : book.lengths) l = r.get<u8>();
  // Stream lengths are untrusted; the canonical-code rebuild below shifts by
  // length deltas, so enforce the same bound the encoder guarantees.
  FZ_FORMAT_REQUIRE(book.max_length() <= 63, "Huffman code length overflow");
  // Rebuild canonical codes from lengths (codes vector only needed for
  // encode, but keep the book internally consistent).
  book.codes.assign(num_bins, 0);
  std::vector<u32> syms;
  for (size_t s = 0; s < num_bins; ++s)
    if (book.lengths[s] != 0) syms.push_back(static_cast<u32>(s));
  std::sort(syms.begin(), syms.end(), [&](u32 a, u32 b) {
    return std::tie(book.lengths[a], a) < std::tie(book.lengths[b], b);
  });
  if (!syms.empty()) {
    u64 code = 0;
    int prev_len = book.lengths[syms.front()];
    for (const u32 s : syms) {
      const int len = book.lengths[s];
      code <<= (len - prev_len);
      book.codes[s] = code;
      ++code;
      prev_len = len;
    }
  }
  const ByteSpan payload = ByteSpan{stream}.subspan(r.pos());
  return huffman_decode(payload, book);
}

double codebook_build_serial_ns(size_t num_bins) {
  // Serial heap-based tree build: O(n log n) node merges, each a long
  // dependency chain on device.  ~1.2 ms at 1024 bins — calibrated so the
  // codebook dominates cuSZ on small fields (paper: 10.7x FZ speedup on
  // CESM) while remaining visible on large ones (4.2x average).
  const double n = static_cast<double>(num_bins);
  return 120.0 * n * std::max(1.0, std::log2(n));
}

}  // namespace fz
