// Exclusive prefix sums.
//
// Three implementations with identical results:
//  * scan_sequential    — reference,
//  * scan_parallel      — two-pass blocked OpenMP scan,
//  * scan_device_model  — the CUB-style ExclusiveSum used by the fz encoder's
//    phase 2 (§3.4): a reduce-then-scan over fixed-size tiles whose device
//    cost (tile reduction kernel + serial tile-prefix + downsweep kernel) is
//    reported in a CostSheet.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "cudasim/cost_sheet.hpp"

namespace fz {

void scan_exclusive_sequential(std::span<const u32> in, std::span<u32> out);
void scan_exclusive_parallel(std::span<const u32> in, std::span<u32> out);

/// Number of chunks the blocked parallel scan splits `n` elements into
/// (bounded by the thread count).  Scratch-taking scan overloads need
/// 2 * scan_chunk_count(n) u32 of scratch.
size_t scan_chunk_count(size_t n);

/// Allocation-free variant: `scratch` holds the per-chunk totals and
/// offsets (>= 2 * scan_chunk_count(in.size()) elements).  Used by the
/// stage graph with pooled buffers.
void scan_exclusive_parallel(std::span<const u32> in, std::span<u32> out,
                             std::span<u32> scratch);

/// CUB-style ExclusiveSum: computes `out` and returns the modeled device
/// cost of the two-kernel scan over `tile_size`-element tiles.
cudasim::CostSheet scan_exclusive_device_model(std::span<const u32> in,
                                               std::span<u32> out,
                                               size_t tile_size = 2048);

/// Allocation-free variant (see scan_exclusive_parallel above).
cudasim::CostSheet scan_exclusive_device_model(std::span<const u32> in,
                                               std::span<u32> out,
                                               std::span<u32> scratch,
                                               size_t tile_size);

}  // namespace fz
