#include "substrate/scan.hpp"

#include <numeric>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"

namespace fz {

void scan_exclusive_sequential(std::span<const u32> in, std::span<u32> out) {
  FZ_REQUIRE(in.size() == out.size(), "scan size mismatch");
  u32 acc = 0;
  for (size_t i = 0; i < in.size(); ++i) {
    out[i] = acc;
    acc += in[i];
  }
}

size_t scan_chunk_count(size_t n) {
  if (n == 0) return 0;
  const size_t nthreads = static_cast<size_t>(max_threads());
  const size_t chunk = std::max<size_t>(div_ceil(n, nthreads), 4096);
  return div_ceil(n, chunk);
}

void scan_exclusive_parallel(std::span<const u32> in, std::span<u32> out,
                             std::span<u32> scratch) {
  FZ_REQUIRE(in.size() == out.size(), "scan size mismatch");
  const size_t n = in.size();
  if (n == 0) return;
  const size_t nchunks = scan_chunk_count(n);
  const size_t chunk = div_ceil(n, nchunks);
  FZ_REQUIRE(scratch.size() >= 2 * nchunks, "scan scratch too small");
  std::span<u32> totals = scratch.subspan(0, nchunks);
  std::span<u32> offsets = scratch.subspan(nchunks, nchunks);

  // Pass 1: per-chunk totals.
  parallel_for(0, nchunks, [&](size_t c) {
    const size_t b = c * chunk;
    const size_t e = std::min(b + chunk, n);
    u32 t = 0;
    for (size_t i = b; i < e; ++i) t += in[i];
    totals[c] = t;
  });
  // Serial scan of chunk totals (tiny).
  scan_exclusive_sequential(totals, offsets);
  // Pass 2: local scans seeded by the chunk offset.
  parallel_for(0, nchunks, [&](size_t c) {
    const size_t b = c * chunk;
    const size_t e = std::min(b + chunk, n);
    u32 acc = offsets[c];
    for (size_t i = b; i < e; ++i) {
      out[i] = acc;
      acc += in[i];
    }
  });
}

void scan_exclusive_parallel(std::span<const u32> in, std::span<u32> out) {
  std::vector<u32> scratch(2 * scan_chunk_count(in.size()), 0);
  scan_exclusive_parallel(in, out, scratch);
}

cudasim::CostSheet scan_exclusive_device_model(std::span<const u32> in,
                                               std::span<u32> out,
                                               std::span<u32> scratch,
                                               size_t tile_size) {
  scan_exclusive_parallel(in, out, scratch);

  cudasim::CostSheet cost;
  cost.name = "cub::ExclusiveSum";
  // Kernel 1 (tile reduce) + kernel 2 (tile downsweep): the decoupled
  // look-back formulation is a single pass in CUB, but the fz encoder uses
  // the two-kernel split described in the paper (global sync by kernel
  // exit), so charge two launches.
  cost.kernel_launches = 2;
  const u64 bytes = in.size() * sizeof(u32);
  cost.global_bytes_read = 2 * bytes;       // both kernels read the input
  cost.global_bytes_written = bytes;        // downsweep writes the result
  cost.thread_ops = in.size() * 2;          // add + store per element
  // The tile-prefix scan between the kernels is serial over tile count.
  cost.serial_ns = static_cast<double>(div_ceil(in.size(), tile_size)) * 2.0;
  return cost;
}

cudasim::CostSheet scan_exclusive_device_model(std::span<const u32> in,
                                               std::span<u32> out,
                                               size_t tile_size) {
  std::vector<u32> scratch(2 * scan_chunk_count(in.size()), 0);
  return scan_exclusive_device_model(in, out, scratch, tile_size);
}

}  // namespace fz
