#include "substrate/rle.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"

namespace fz {

std::vector<u8> rle_encode(std::span<const u16> symbols) {
  std::vector<u8> out;
  out.reserve(symbols.size() / 4 + 16);
  size_t i = 0;
  while (i < symbols.size()) {
    const u16 sym = symbols[i];
    size_t run = 1;
    while (i + run < symbols.size() && symbols[i + run] == sym && run < 256)
      ++run;
    out.push_back(static_cast<u8>(sym & 0xff));
    out.push_back(static_cast<u8>(sym >> 8));
    out.push_back(static_cast<u8>(run - 1));
    i += run;
  }
  return out;
}

std::vector<u16> rle_decode(ByteSpan stream, size_t expected_count) {
  FZ_FORMAT_REQUIRE(stream.size() % 3 == 0, "RLE stream size not a multiple of 3");
  std::vector<u16> out;
  out.reserve(expected_count);
  for (size_t pos = 0; pos + 3 <= stream.size(); pos += 3) {
    const u16 sym = static_cast<u16>(stream[pos] | (u16{stream[pos + 1]} << 8));
    const size_t run = size_t{stream[pos + 2]} + 1;
    FZ_FORMAT_REQUIRE(out.size() + run <= expected_count,
                      "RLE stream overruns expected count");
    out.insert(out.end(), run, sym);
  }
  FZ_FORMAT_REQUIRE(out.size() == expected_count, "RLE stream incomplete");
  return out;
}

size_t rle_encoded_bytes(std::span<const u16> symbols) {
  size_t records = 0;
  size_t i = 0;
  while (i < symbols.size()) {
    size_t run = 1;
    while (i + run < symbols.size() && symbols[i + run] == symbols[i] &&
           run < 256)
      ++run;
    ++records;
    i += run;
  }
  return records * 3;
}

}  // namespace fz
