#include "substrate/histogram.hpp"

#include <cmath>

namespace fz {

double shannon_entropy(std::span<const u64> hist) {
  u64 total = 0;
  for (const u64 c : hist) total += c;
  if (total == 0) return 0.0;
  double h = 0.0;
  for (const u64 c : hist) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace fz
