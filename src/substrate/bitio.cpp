// bitio is header-only; this TU exists so the substrate library always has
// at least one object file and to hold the out-of-line stream validators.
#include "substrate/bitio.hpp"

namespace fz {

// (intentionally empty)

}  // namespace fz
