// Bit-granular readers and writers over byte buffers.
//
// Two orders are provided because the codecs disagree: the Huffman coder
// emits codes MSB-first (canonical-code convention), while the ZFP-style
// bit-plane coder consumes bits LSB-first within 64-bit words.
#pragma once

#include <cstring>
#include <type_traits>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace fz {

/// MSB-first bit writer: the first bit written becomes the top bit of the
/// first byte.
class BitWriterMsb {
 public:
  void put_bit(bool b) {
    acc_ = (acc_ << 1) | u64{b};
    if (++nbits_ == 8) flush_byte();
  }
  /// Write the low `n` bits of `v`, most significant of those first.
  void put_bits(u64 v, int n) {
    FZ_REQUIRE(n >= 0 && n <= 64, "bad bit count");
    for (int i = n - 1; i >= 0; --i) put_bit((v >> i) & 1);
  }
  /// Pad to a byte boundary with zero bits.
  void align_byte() {
    while (nbits_ != 0) put_bit(false);
  }
  size_t bit_count() const { return bytes_.size() * 8 + nbits_; }
  std::vector<u8> take() {
    align_byte();
    return std::move(bytes_);
  }

 private:
  void flush_byte() {
    bytes_.push_back(static_cast<u8>(acc_));
    acc_ = 0;
    nbits_ = 0;
  }
  std::vector<u8> bytes_;
  u64 acc_ = 0;
  int nbits_ = 0;
};

/// MSB-first bit reader with a buffered multi-bit peek/consume surface.
/// `peek(n)` exposes the next n bits without advancing (zero-padded past the
/// end of the stream, so a lookup-table decode can always index with a full
/// window), and `consume(n)` advances with the same exhaustion check the
/// bit-at-a-time reader enforced — a code resolved against padding still
/// fails with FormatError the moment it is consumed past the real data.
class BitReaderMsb {
 public:
  /// Widest peek/consume: the 64-bit refill buffer always holds >= 57 valid
  /// bits after refill (it tops up in whole bytes).
  static constexpr int kMaxPeek = 57;

  explicit BitReaderMsb(ByteSpan data) : data_(data) {}
  /// Start reading at an arbitrary bit offset (gap-array segment decode).
  /// `start_bit` beyond the stream is a FormatError: segment offsets come
  /// from untrusted headers.
  BitReaderMsb(ByteSpan data, size_t start_bit) : data_(data) {
    FZ_FORMAT_REQUIRE(start_bit <= data_.size() * 8, "bad bit offset");
    pos_ = start_bit;
    fill_byte_ = start_bit / 8;
    const int drop = static_cast<int>(start_bit % 8);
    if (drop != 0) {
      refill();
      buf_ <<= drop;
      buf_bits_ -= drop;
    }
  }

  /// Next `n` (0..kMaxPeek) bits, MSB-first, in the low bits of the result;
  /// bits past the end of the stream read as zero.  Does not advance.
  u64 peek(int n) {
    FZ_REQUIRE(n >= 0 && n <= kMaxPeek, "bad peek width");
    if (buf_bits_ < n) refill();
    return n == 0 ? 0 : buf_ >> (64 - n);
  }
  /// Advance by `n` (0..kMaxPeek) bits; FormatError past the end.
  void consume(int n) {
    FZ_REQUIRE(n >= 0 && n <= kMaxPeek, "bad consume width");
    FZ_FORMAT_REQUIRE(pos_ + static_cast<size_t>(n) <= data_.size() * 8,
                      "bit stream exhausted");
    if (buf_bits_ < n) refill();
    pos_ += static_cast<size_t>(n);
    buf_ <<= n;
    buf_bits_ -= n;
  }

  bool get_bit() {
    const bool b = peek(1) != 0;
    consume(1);
    return b;
  }
  u64 get_bits(int n) {
    FZ_REQUIRE(n >= 0 && n <= 64, "bad bit count");
    u64 v = 0;
    while (n > kMaxPeek) {
      v = (v << kMaxPeek) | peek(kMaxPeek);
      consume(kMaxPeek);
      n -= kMaxPeek;
    }
    if (n != 0) {
      v = (v << n) | peek(n);
      consume(n);
    }
    return v;
  }
  size_t bit_pos() const { return pos_; }
  size_t bits_remaining() const { return data_.size() * 8 - pos_; }

 private:
  void refill() {
    // MSB-aligned: the next unread bit is bit 63 of buf_.  Bytes past the
    // end refill as zero (peek padding); consume()'s position check is what
    // rejects reads into the padding.
    if (fill_byte_ + 8 <= data_.size()) {
      // Fast path: one unaligned 64-bit load per refill instead of a
      // byte-at-a-time loop (this sits under every peek of the table-driven
      // Huffman decode).  The shift-OR assembly is recognized as
      // load+byteswap by the usual compilers.
      u64 w = 0;
      for (int k = 0; k < 8; ++k)
        w = (w << 8) | u64{data_[fill_byte_ + static_cast<size_t>(k)]};
      const int added = (64 - buf_bits_) >> 3;  // whole bytes that fit
      const int bits = added * 8;               // 8..64
      buf_ |= ((w >> (64 - bits)) << (64 - bits)) >> buf_bits_;
      fill_byte_ += static_cast<size_t>(added);
      buf_bits_ += bits;
      return;
    }
    while (buf_bits_ <= 56) {
      const u64 b = fill_byte_ < data_.size() ? data_[fill_byte_] : 0;
      buf_ |= b << (56 - buf_bits_);
      ++fill_byte_;
      buf_bits_ += 8;
    }
  }

  ByteSpan data_;
  u64 buf_ = 0;
  int buf_bits_ = 0;
  size_t fill_byte_ = 0;  ///< next byte to load into the buffer
  size_t pos_ = 0;        ///< bits consumed so far
};

/// LSB-first bit writer over 64-bit words (ZFP-style stream).
class BitWriterLsb {
 public:
  void put_bit(bool b) {
    if (b) acc_ |= u64{1} << nbits_;
    if (++nbits_ == 64) flush_word();
  }
  /// put_bit that returns the bit written — lets the ZFP group-testing
  /// loops keep their original (compact) control flow.
  bool put_bit_r(bool b) {
    put_bit(b);
    return b;
  }
  /// Write the low `n` bits of `v`, least significant first.
  void put_bits(u64 v, int n) {
    FZ_REQUIRE(n >= 0 && n <= 64, "bad bit count");
    for (int i = 0; i < n; ++i) put_bit((v >> i) & 1);
  }
  size_t bit_count() const { return words_.size() * 64 + nbits_; }
  /// Finish the stream; returns the packed words plus the total bit count.
  std::vector<u64> take() {
    if (nbits_ != 0) flush_word();
    return std::move(words_);
  }

 private:
  void flush_word() {
    words_.push_back(acc_);
    acc_ = 0;
    nbits_ = 0;
  }
  std::vector<u64> words_;
  u64 acc_ = 0;
  int nbits_ = 0;
};

class BitReaderLsb {
 public:
  explicit BitReaderLsb(std::span<const u64> words, size_t bit_count)
      : words_(words), bit_count_(bit_count) {}
  bool get_bit() {
    FZ_FORMAT_REQUIRE(pos_ < bit_count_, "bit stream exhausted");
    const bool b = (words_[pos_ / 64] >> (pos_ % 64)) & 1;
    ++pos_;
    return b;
  }
  u64 get_bits(int n) {
    u64 v = 0;
    for (int i = 0; i < n; ++i) v |= u64{get_bit()} << i;
    return v;
  }
  size_t bit_pos() const { return pos_; }

 private:
  std::span<const u64> words_;
  size_t bit_count_;
  size_t pos_ = 0;
};

/// Append/read trivially-copyable scalars to a byte vector (stream headers).
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<u8>& out) : out_(out) {}
  template <typename T>
  void put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t off = out_.size();
    out_.resize(off + sizeof(T));
    std::memcpy(out_.data() + off, &v, sizeof(T));
  }
  void put_bytes(ByteSpan b) { out_.insert(out_.end(), b.begin(), b.end()); }

 private:
  std::vector<u8>& out_;
};

class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) : data_(data) {}
  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    FZ_FORMAT_REQUIRE(pos_ + sizeof(T) <= data_.size(), "byte stream exhausted");
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  ByteSpan get_bytes(size_t n) {
    FZ_FORMAT_REQUIRE(pos_ + n <= data_.size(), "byte stream exhausted");
    ByteSpan s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }
  size_t pos() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  ByteSpan data_;
  size_t pos_ = 0;
};

}  // namespace fz
