// Bit-granular readers and writers over byte buffers.
//
// Two orders are provided because the codecs disagree: the Huffman coder
// emits codes MSB-first (canonical-code convention), while the ZFP-style
// bit-plane coder consumes bits LSB-first within 64-bit words.
#pragma once

#include <cstring>
#include <type_traits>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace fz {

/// MSB-first bit writer: the first bit written becomes the top bit of the
/// first byte.
class BitWriterMsb {
 public:
  void put_bit(bool b) {
    acc_ = (acc_ << 1) | u64{b};
    if (++nbits_ == 8) flush_byte();
  }
  /// Write the low `n` bits of `v`, most significant of those first.
  void put_bits(u64 v, int n) {
    FZ_REQUIRE(n >= 0 && n <= 64, "bad bit count");
    for (int i = n - 1; i >= 0; --i) put_bit((v >> i) & 1);
  }
  /// Pad to a byte boundary with zero bits.
  void align_byte() {
    while (nbits_ != 0) put_bit(false);
  }
  size_t bit_count() const { return bytes_.size() * 8 + nbits_; }
  std::vector<u8> take() {
    align_byte();
    return std::move(bytes_);
  }

 private:
  void flush_byte() {
    bytes_.push_back(static_cast<u8>(acc_));
    acc_ = 0;
    nbits_ = 0;
  }
  std::vector<u8> bytes_;
  u64 acc_ = 0;
  int nbits_ = 0;
};

class BitReaderMsb {
 public:
  explicit BitReaderMsb(ByteSpan data) : data_(data) {}
  bool get_bit() {
    FZ_FORMAT_REQUIRE(bit_pos_ < data_.size() * 8, "bit stream exhausted");
    const u8 byte = data_[bit_pos_ / 8];
    const bool b = (byte >> (7 - bit_pos_ % 8)) & 1;
    ++bit_pos_;
    return b;
  }
  u64 get_bits(int n) {
    u64 v = 0;
    for (int i = 0; i < n; ++i) v = (v << 1) | u64{get_bit()};
    return v;
  }
  size_t bit_pos() const { return bit_pos_; }
  size_t bits_remaining() const { return data_.size() * 8 - bit_pos_; }

 private:
  ByteSpan data_;
  size_t bit_pos_ = 0;
};

/// LSB-first bit writer over 64-bit words (ZFP-style stream).
class BitWriterLsb {
 public:
  void put_bit(bool b) {
    if (b) acc_ |= u64{1} << nbits_;
    if (++nbits_ == 64) flush_word();
  }
  /// put_bit that returns the bit written — lets the ZFP group-testing
  /// loops keep their original (compact) control flow.
  bool put_bit_r(bool b) {
    put_bit(b);
    return b;
  }
  /// Write the low `n` bits of `v`, least significant first.
  void put_bits(u64 v, int n) {
    FZ_REQUIRE(n >= 0 && n <= 64, "bad bit count");
    for (int i = 0; i < n; ++i) put_bit((v >> i) & 1);
  }
  size_t bit_count() const { return words_.size() * 64 + nbits_; }
  /// Finish the stream; returns the packed words plus the total bit count.
  std::vector<u64> take() {
    if (nbits_ != 0) flush_word();
    return std::move(words_);
  }

 private:
  void flush_word() {
    words_.push_back(acc_);
    acc_ = 0;
    nbits_ = 0;
  }
  std::vector<u64> words_;
  u64 acc_ = 0;
  int nbits_ = 0;
};

class BitReaderLsb {
 public:
  explicit BitReaderLsb(std::span<const u64> words, size_t bit_count)
      : words_(words), bit_count_(bit_count) {}
  bool get_bit() {
    FZ_FORMAT_REQUIRE(pos_ < bit_count_, "bit stream exhausted");
    const bool b = (words_[pos_ / 64] >> (pos_ % 64)) & 1;
    ++pos_;
    return b;
  }
  u64 get_bits(int n) {
    u64 v = 0;
    for (int i = 0; i < n; ++i) v |= u64{get_bit()} << i;
    return v;
  }
  size_t bit_pos() const { return pos_; }

 private:
  std::span<const u64> words_;
  size_t bit_count_;
  size_t pos_ = 0;
};

/// Append/read trivially-copyable scalars to a byte vector (stream headers).
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<u8>& out) : out_(out) {}
  template <typename T>
  void put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t off = out_.size();
    out_.resize(off + sizeof(T));
    std::memcpy(out_.data() + off, &v, sizeof(T));
  }
  void put_bytes(ByteSpan b) { out_.insert(out_.end(), b.begin(), b.end()); }

 private:
  std::vector<u8>& out_;
};

class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) : data_(data) {}
  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    FZ_FORMAT_REQUIRE(pos_ + sizeof(T) <= data_.size(), "byte stream exhausted");
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  ByteSpan get_bytes(size_t n) {
    FZ_FORMAT_REQUIRE(pos_ + n <= data_.size(), "byte stream exhausted");
    ByteSpan s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }
  size_t pos() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  ByteSpan data_;
  size_t pos_ = 0;
};

}  // namespace fz
