// LZ77/LZSS dictionary coder.
//
// Used as the dictionary stage of the MGARD baseline's DEFLATE-like back end
// and to demonstrate why LZ-family coders are a poor fit for massively
// parallel hardware (the paper §3.4): the repeated-string search is a serial
// dependency chain, which the cost model charges as serial time.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace fz {

struct LzParams {
  size_t window = 1 << 15;     ///< max match distance
  size_t min_match = 4;        ///< shortest emitted match
  size_t max_match = 255 + 4;  ///< longest emitted match
  size_t max_chain = 32;       ///< hash-chain probe limit (greedy matcher)
};

/// Token stream format (byte-oriented, LZSS-style):
///   flag byte: 8 flags, LSB first; 0 = literal byte, 1 = match
///   literal:   1 raw byte
///   match:     u16 distance (little endian), u8 length - min_match
std::vector<u8> lz_compress(ByteSpan input, const LzParams& params = {});
std::vector<u8> lz_decompress(ByteSpan stream, size_t expected_size);

/// Modeled serial device time (ns) for LZ matching over `input_bytes`
/// (the paper measures nvCOMP LZ4 at ~6.3 GB/s on its datasets).
double lz_match_serial_ns(size_t input_bytes);

}  // namespace fz
