// Canonical Huffman codec.
//
// This is the entropy back end of the cuSZ/SZ-OMP baselines.  Encoding is
// chunked ("coarse-grained" in cuSZ terminology): symbols are split into
// fixed-size chunks, each encoded independently and byte-aligned, so chunks
// can be decoded in parallel.  On top of that, the encoder records a *gap
// array* (Rivera et al., "Optimizing Huffman Decoding for Error-Bounded
// Lossy Compression on GPUs"): the bit offset of every segment_size-symbol
// segment inside each chunk, so decode parallelism is per segment instead
// of per chunk — a single-chunk stream no longer serializes on one thread.
// Decoding itself resolves codes through a flat (symbol, length) lookup
// table indexed by the next K bits (two-level for longer codes), fed by the
// buffered BitReaderMsb::peek/consume, instead of the bit-at-a-time
// canonical walk.  Both speedups are format-versioned and byte-identical in
// output: legacy (no-gap) streams still decode, and every path yields the
// same symbols.
//
// The codebook build is the inherently serial phase the FZ-GPU paper
// identifies as cuSZ's bottleneck; its modeled device cost is exposed via
// codebook_build_serial_ns().
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace fz {

struct HuffmanCodebook {
  /// Per-symbol code length in bits; 0 = symbol unused.
  std::vector<u8> lengths;
  /// Canonical codes (value right-aligned; written MSB-first).
  std::vector<u64> codes;

  size_t num_symbols() const { return lengths.size(); }
  int max_length() const;

  /// Build a canonical codebook from symbol frequencies.
  static HuffmanCodebook build(std::span<const u64> histogram);

  /// Rebuild `codes` from `lengths` (canonical order: sorted by length,
  /// then symbol value).  This is the one shared canonical-assignment
  /// routine — build() and the stream decoder both call it.  Throws
  /// FormatError when the length table is not a prefix code (lengths over
  /// 63 bits, or an over-subscribed Kraft sum — the "decode table
  /// overflow" case for hostile streams).
  void rebuild_codes_from_lengths();
};

/// Canonical decode tables for a codebook: the bit-serial first_code walk
/// plus the flat K-bit lookup table (two-level for codes longer than K).
/// Shared by the host decoder and the cudasim decode kernels so every path
/// resolves codes identically.
struct HuffmanDecodeTables {
  int max_length = 0;
  /// Symbols in canonical order (length, then value).
  std::vector<u32> sorted_syms;
  std::vector<u32> count_per_len;  ///< [0 .. max_length]
  std::vector<u64> first_code;     ///< [0 .. max_length + 1]
  std::vector<u32> first_index;    ///< [0 .. max_length + 1]

  // ---- table-driven fast path ----
  // primary[next primary_bits bits] resolves codes of length <= primary_bits
  // directly; longer codes chain through `secondary` sub-tables.  Entry
  // layout: kInvalidEntry = no code with this prefix (FormatError on hit);
  // short entry = symbol | length << kLenShift; long entry additionally has
  // kLongFlag set, with the low bits holding the secondary-table offset and
  // the sub-table width in bits at kLenShift.
  static constexpr u32 kInvalidEntry = 0xffffffffu;
  static constexpr u32 kLongFlag = 0x80000000u;
  static constexpr int kLenShift = 24;
  static constexpr int kMaxPrimaryBits = 11;
  /// Budget on total secondary entries: a valid but pathologically deep
  /// codebook (lengths up to 63 are legal) could otherwise demand
  /// gigabyte-scale tables from a few header bytes.  Past the budget,
  /// table_ok stays false and decode falls back to the bit-serial walk —
  /// correctness never depends on the table.
  static constexpr size_t kMaxSecondaryEntries = size_t{1} << 20;

  int primary_bits = 0;
  bool table_ok = false;
  std::vector<u32> primary;
  std::vector<u32> secondary;
};

/// Build decode tables from `book.lengths` (codes are not consulted).
/// Throws FormatError on an invalid length table, like
/// rebuild_codes_from_lengths.
HuffmanDecodeTables build_decode_tables(const HuffmanCodebook& book);

/// Stream-layout constants and the parsed view of an encoded stream,
/// shared with the cudasim mirror kernels.
inline constexpr u32 kHuffGapMagic = 0x50414748u;  // "HGAP"
inline constexpr size_t kHuffDefaultChunk = 4096;
inline constexpr size_t kHuffDefaultSegment = 1024;

struct HuffmanLayout {
  u32 num_chunks = 0;
  u32 chunk_size = 0;
  u32 segment_size = 0;  ///< 0 = legacy stream (one segment per chunk)
  u64 count = 0;
  std::vector<u32> sizes;       ///< payload bytes per chunk
  std::vector<size_t> offsets;  ///< exclusive prefix sum of sizes (n+1)
  std::vector<u32> gaps;        ///< per-chunk intra-chunk segment bit offsets
  std::vector<size_t> gap_start;  ///< first gap index per chunk (n+1)
  ByteSpan payload;

  /// Segments in chunk c: ceil(symbols_in_chunk / segment_size), or 1 for
  /// legacy streams.
  size_t segments_in_chunk(size_t c) const;
  size_t total_segments() const;
};

/// Parse and validate the header of a huffman_encode stream (either
/// version).  FormatError on any inconsistency; the returned spans alias
/// `encoded`.
HuffmanLayout parse_huffman_layout(ByteSpan encoded);

struct HuffmanEncodeOptions {
  size_t chunk_size = kHuffDefaultChunk;
  /// Symbols per gap-array segment.  0 writes the legacy (v1) layout with
  /// no gap array — kept for format-compat tests and as the decode
  /// fallback ablation.
  size_t segment_size = kHuffDefaultSegment;
};

struct HuffmanDecodeOptions {
  /// Worker threads for segment-parallel decode; 0 = one per hardware
  /// thread.  Every worker count yields identical output.
  size_t workers = 0;
  /// Ablation: force the bit-at-a-time canonical walk instead of the
  /// K-bit lookup table.  Output is identical either way.
  bool table_fast = true;
};

/// Chunked encode. Gap (v2) layout:
///   [u32 kHuffGapMagic][u32 num_chunks][u32 chunk_size][u32 segment_size]
///   [u64 symbol_count][u32 byte_size per chunk...]
///   [u32 segment bit offsets: segments_in_chunk(c) - 1 per chunk...]
///   [chunk payloads, each byte aligned]
/// Legacy (v1) layout (segment_size = 0; also what pre-gap streams hold):
///   [u32 num_chunks][u32 chunk_size][u64 symbol_count]
///   [u32 byte_size per chunk...][chunk payloads, each byte aligned]
/// The payload bytes are identical between the two versions; only the
/// header differs.
std::vector<u8> huffman_encode(std::span<const u16> symbols,
                               const HuffmanCodebook& book,
                               const HuffmanEncodeOptions& opts = {});
/// Back-compat shim: encode with an explicit chunk size and the default
/// segment size.
std::vector<u8> huffman_encode(std::span<const u16> symbols,
                               const HuffmanCodebook& book, size_t chunk_size);

/// Decode `huffman_encode` output (either version).  Segments (chunks, for
/// legacy streams) are decoded independently in parallel with no
/// per-symbol synchronization.
std::vector<u16> huffman_decode(ByteSpan encoded, const HuffmanCodebook& book,
                                const HuffmanDecodeOptions& opts = {});

/// Self-contained stream: serializes the codebook (as the length table)
/// ahead of the chunked payload.
std::vector<u8> huffman_compress(std::span<const u16> symbols, size_t num_bins,
                                 size_t chunk_size = kHuffDefaultChunk);
std::vector<u16> huffman_decompress(ByteSpan stream);

/// Gap-array bytes a v2 stream spends on `count` symbols: one u32 per
/// segment after the first in each chunk, plus the extra header fields.
/// The decode-speed/format-cost trade is priced in core/costs.*.
size_t huffman_gap_bytes(size_t count, size_t chunk_size, size_t segment_size);

/// Modeled serial device time (ns) to build a codebook of `num_bins`
/// symbols on a GPU, cuSZ-style (histogram + serial tree + canonization).
/// Calibrated so that a 1024-bin build costs ~0.7 ms, matching the order of
/// magnitude implied by cuSZ's throughput collapse on small fields (paper
/// §4.4: the codebook time is roughly constant across datasets).
double codebook_build_serial_ns(size_t num_bins);

}  // namespace fz
