// Canonical Huffman codec.
//
// This is the entropy back end of the cuSZ/SZ-OMP baselines.  Encoding is
// chunked ("coarse-grained" in cuSZ terminology): symbols are split into
// fixed-size chunks, each encoded independently and byte-aligned, so chunks
// can be decoded in parallel.  The codebook build is the inherently serial
// phase the FZ-GPU paper identifies as cuSZ's bottleneck; its modeled device
// cost is exposed via codebook_build_serial_ns().
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace fz {

struct HuffmanCodebook {
  /// Per-symbol code length in bits; 0 = symbol unused.
  std::vector<u8> lengths;
  /// Canonical codes (value right-aligned; written MSB-first).
  std::vector<u64> codes;

  size_t num_symbols() const { return lengths.size(); }
  int max_length() const;

  /// Build a canonical codebook from symbol frequencies.
  static HuffmanCodebook build(std::span<const u64> histogram);
};

/// Chunked encode. Output layout:
///   [u32 num_chunks][u32 chunk_size][u64 symbol_count]
///   [u32 byte_size per chunk...][chunk payloads, each byte aligned]
std::vector<u8> huffman_encode(std::span<const u16> symbols,
                               const HuffmanCodebook& book,
                               size_t chunk_size = 4096);

/// Decode `huffman_encode` output. Chunks are decoded independently
/// (parallelized across threads when OpenMP is enabled).
std::vector<u16> huffman_decode(ByteSpan encoded, const HuffmanCodebook& book);

/// Self-contained stream: serializes the codebook (as the length table)
/// ahead of the chunked payload.
std::vector<u8> huffman_compress(std::span<const u16> symbols, size_t num_bins,
                                 size_t chunk_size = 4096);
std::vector<u16> huffman_decompress(ByteSpan stream);

/// Modeled serial device time (ns) to build a codebook of `num_bins`
/// symbols on a GPU, cuSZ-style (histogram + serial tree + canonization).
/// Calibrated so that a 1024-bin build costs ~0.7 ms, matching the order of
/// magnitude implied by cuSZ's throughput collapse on small fields (paper
/// §4.4: the codebook time is roughly constant across datasets).
double codebook_build_serial_ns(size_t num_bins);

}  // namespace fz
