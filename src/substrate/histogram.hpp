// Symbol histograms and entropy, shared by the Huffman coder and the
// metrics/ablation reporting.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace fz {

/// Count occurrences of each symbol value in [0, num_bins).
/// Symbols >= num_bins are clamped into the last bin (callers that need
/// exact semantics must pre-clamp; the SZ-style coders guarantee range).
template <typename Sym>
std::vector<u64> histogram(std::span<const Sym> symbols, size_t num_bins) {
  std::vector<u64> h(num_bins, 0);
  for (const Sym s : symbols) {
    const size_t b = static_cast<size_t>(s) < num_bins
                         ? static_cast<size_t>(s)
                         : num_bins - 1;
    ++h[b];
  }
  return h;
}

/// Shannon entropy (bits/symbol) of a histogram.
double shannon_entropy(std::span<const u64> hist);

}  // namespace fz
