// Run-length encoding of 16-bit symbols.
//
// Tian et al. (CLUSTER'21, reference [32] of the FZ-GPU paper) replace
// cuSZ's Huffman stage with run-length encoding for high-error-bound
// scenarios, where the quantization codes are dominated by long runs of
// the zero-residual symbol.  This codec backs the cuSZ-RLE baseline
// variant: (symbol, run-length) pairs with a u8 run field and escape
// continuation for longer runs.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace fz {

/// Encode as a sequence of [u16 symbol][u8 run-1] records; runs longer
/// than 256 repeat the record.
std::vector<u8> rle_encode(std::span<const u16> symbols);
std::vector<u16> rle_decode(ByteSpan stream, size_t expected_count);

/// Exact encoded size without materializing the stream (for cost models).
size_t rle_encoded_bytes(std::span<const u16> symbols);

}  // namespace fz
