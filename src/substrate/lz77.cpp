#include "substrate/lz77.hpp"

#include <algorithm>
#include <array>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace fz {

namespace {

constexpr size_t kHashBits = 15;
constexpr size_t kHashSize = size_t{1} << kHashBits;

u32 hash4(const u8* p) {
  u32 v = load_le<u32>(p);
  return (v * 2654435761u) >> (32 - kHashBits);
}

class TokenWriter {
 public:
  explicit TokenWriter(std::vector<u8>& out) : out_(out) {}

  void literal(u8 byte) {
    begin_token(false);
    out_.push_back(byte);
  }
  void match(size_t distance, size_t length, size_t min_match) {
    begin_token(true);
    out_.push_back(static_cast<u8>(distance & 0xff));
    out_.push_back(static_cast<u8>(distance >> 8));
    out_.push_back(static_cast<u8>(length - min_match));
  }

 private:
  void begin_token(bool is_match) {
    if (flag_count_ == 0) {
      flag_pos_ = out_.size();
      out_.push_back(0);
      flag_count_ = 8;
    }
    if (is_match) out_[flag_pos_] |= static_cast<u8>(1u << (8 - flag_count_));
    --flag_count_;
  }
  std::vector<u8>& out_;
  size_t flag_pos_ = 0;
  int flag_count_ = 0;
};

}  // namespace

std::vector<u8> lz_compress(ByteSpan input, const LzParams& params) {
  std::vector<u8> out;
  out.reserve(input.size() / 2 + 16);
  TokenWriter tokens(out);

  std::vector<u32> head(kHashSize, 0xffffffffu);
  std::vector<u32> chain(input.size(), 0xffffffffu);

  size_t pos = 0;
  while (pos < input.size()) {
    size_t best_len = 0;
    size_t best_dist = 0;
    if (pos + params.min_match <= input.size() && pos + 4 <= input.size()) {
      const u32 h = hash4(&input[pos]);
      u32 cand = head[h];
      size_t probes = 0;
      while (cand != 0xffffffffu && probes < params.max_chain) {
        const size_t dist = pos - cand;
        if (dist > params.window) break;
        const size_t limit = std::min(params.max_match, input.size() - pos);
        size_t len = 0;
        while (len < limit && input[cand + len] == input[pos + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = dist;
          if (len == limit) break;
        }
        cand = chain[cand];
        ++probes;
      }
      chain[pos] = head[h];
      head[h] = static_cast<u32>(pos);
    }
    if (best_len >= params.min_match) {
      tokens.match(best_dist, best_len, params.min_match);
      // Insert skipped positions into the hash chains so later matches can
      // reference them (cheap, improves ratio on periodic data).
      for (size_t k = 1; k < best_len && pos + k + 4 <= input.size(); ++k) {
        const u32 h = hash4(&input[pos + k]);
        chain[pos + k] = head[h];
        head[h] = static_cast<u32>(pos + k);
      }
      pos += best_len;
    } else {
      tokens.literal(input[pos]);
      ++pos;
    }
  }
  return out;
}

std::vector<u8> lz_decompress(ByteSpan stream, size_t expected_size) {
  std::vector<u8> out;
  out.reserve(expected_size);
  size_t pos = 0;
  const LzParams params{};
  while (out.size() < expected_size) {
    FZ_FORMAT_REQUIRE(pos < stream.size(), "LZ stream truncated (flags)");
    const u8 flags = stream[pos++];
    for (int bit = 0; bit < 8 && out.size() < expected_size; ++bit) {
      if (flags & (1u << bit)) {
        FZ_FORMAT_REQUIRE(pos + 3 <= stream.size(), "LZ stream truncated (match)");
        const size_t dist = stream[pos] | (size_t{stream[pos + 1]} << 8);
        const size_t len = size_t{stream[pos + 2]} + params.min_match;
        pos += 3;
        FZ_FORMAT_REQUIRE(dist != 0 && dist <= out.size(), "bad LZ distance");
        for (size_t k = 0; k < len; ++k)
          out.push_back(out[out.size() - dist]);  // overlapping copies ok
      } else {
        FZ_FORMAT_REQUIRE(pos < stream.size(), "LZ stream truncated (literal)");
        out.push_back(stream[pos++]);
      }
    }
  }
  FZ_FORMAT_REQUIRE(out.size() == expected_size, "LZ output size mismatch");
  return out;
}

double lz_match_serial_ns(size_t input_bytes) {
  // ~6.3 GB/s effective (nvCOMP LZ4 figure quoted in the paper, §3.4 fn 3).
  return static_cast<double>(input_bytes) / 6.3;
}

}  // namespace fz
