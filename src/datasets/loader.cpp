#include "datasets/loader.hpp"

#include <fstream>

#include "common/error.hpp"

namespace fz {

namespace {

std::ifstream open_for_read(const std::string& path, size_t* size_out) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  FZ_REQUIRE(in.good(), "cannot open '" + path + "' for reading");
  *size_out = static_cast<size_t>(in.tellg());
  in.seekg(0);
  return in;
}

}  // namespace

Field load_f32_file(const std::string& path, Dims dims,
                    const std::string& name) {
  size_t bytes = 0;
  std::ifstream in = open_for_read(path, &bytes);
  FZ_REQUIRE(bytes == dims.count() * sizeof(f32),
             "'" + path + "' holds " + std::to_string(bytes / sizeof(f32)) +
                 " f32 values but dims " + dims.to_string() + " need " +
                 std::to_string(dims.count()));
  Field f;
  f.dataset = "file";
  f.name = name.empty() ? path : name;
  f.dims = dims;
  f.data.resize(dims.count());
  in.read(reinterpret_cast<char*>(f.data.data()),
          static_cast<std::streamsize>(bytes));
  FZ_REQUIRE(in.good(), "short read from '" + path + "'");
  return f;
}

void save_f32_file(const std::string& path, FloatSpan data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  FZ_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(f32)));
  FZ_REQUIRE(out.good(), "short write to '" + path + "'");
}

std::vector<f64> load_f64_file(const std::string& path, Dims dims) {
  size_t bytes = 0;
  std::ifstream in = open_for_read(path, &bytes);
  FZ_REQUIRE(bytes == dims.count() * sizeof(f64),
             "'" + path + "' holds " + std::to_string(bytes / sizeof(f64)) +
                 " f64 values but dims " + dims.to_string() + " need " +
                 std::to_string(dims.count()));
  std::vector<f64> data(dims.count());
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(bytes));
  FZ_REQUIRE(in.good(), "short read from '" + path + "'");
  return data;
}

void save_f64_file(const std::string& path, std::span<const f64> data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  FZ_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(f64)));
  FZ_REQUIRE(out.good(), "short write to '" + path + "'");
}

std::vector<u8> load_bytes(const std::string& path) {
  size_t bytes = 0;
  std::ifstream in = open_for_read(path, &bytes);
  std::vector<u8> v(bytes);
  in.read(reinterpret_cast<char*>(v.data()), static_cast<std::streamsize>(bytes));
  FZ_REQUIRE(in.good(), "short read from '" + path + "'");
  return v;
}

void save_bytes(const std::string& path, ByteSpan bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  FZ_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  FZ_REQUIRE(out.good(), "short write to '" + path + "'");
}

}  // namespace fz
