// Field-level pre-transforms.
//
// The paper evaluates HACC after a logarithmic transform so that an absolute
// error bound on the transformed data realizes a point-wise *relative* bound
// on the original (Liang et al., CLUSTER'18) — log_transform/exp_transform
// implement that scheme.
#pragma once

#include "datasets/field.hpp"

namespace fz {

/// In-place natural-log transform; requires strictly positive data.
void log_transform(Field& f);

/// Inverse of log_transform (applied to decompressed data).
void exp_transform(std::span<f32> values);

/// Convert a point-wise relative bound into the absolute bound to use on
/// log-transformed data: |log x' - log x| <= log(1 + rel) ~ rel.
double log_abs_bound_for_relative(double pointwise_rel);

/// Extract a 2-D z-slice from a 3-D field (Fig. 12 visual-quality protocol).
Field slice_z(const Field& f, size_t iz);

}  // namespace fz
