// Raw binary field I/O: SDRBench distributes its datasets as headerless
// little-endian f32 arrays (.f32/.dat), which is also the format the real
// FZ-GPU CLI consumes.  These helpers let the library and the fz_cli tool
// operate on real data in place of the synthetic generators.
#pragma once

#include <string>

#include "datasets/field.hpp"

namespace fz {

/// Load a headerless f32 file; the file size must equal dims.count()*4.
Field load_f32_file(const std::string& path, Dims dims,
                    const std::string& name = "");

/// Write a field's samples as a headerless f32 file.
void save_f32_file(const std::string& path, FloatSpan data);

/// Double-precision variants (SDRBench also ships f64 datasets).
std::vector<f64> load_f64_file(const std::string& path, Dims dims);
void save_f64_file(const std::string& path, std::span<const f64> data);

/// Read/write arbitrary binary blobs (compressed streams).
std::vector<u8> load_bytes(const std::string& path);
void save_bytes(const std::string& path, ByteSpan bytes);

}  // namespace fz
