#include "datasets/transforms.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace fz {

void log_transform(Field& f) {
  parallel_for(0, f.data.size(), [&](size_t i) {
    FZ_REQUIRE(f.data[i] > 0.0f, "log transform requires positive data");
    f.data[i] = std::log(f.data[i]);
  });
  f.name += "(log)";
}

void exp_transform(std::span<f32> values) {
  parallel_for(0, values.size(), [&](size_t i) { values[i] = std::exp(values[i]); });
}

double log_abs_bound_for_relative(double pointwise_rel) {
  FZ_REQUIRE(pointwise_rel > 0 && pointwise_rel < 1, "bad relative bound");
  return std::log1p(pointwise_rel);
}

Field slice_z(const Field& f, size_t iz) {
  FZ_REQUIRE(f.dims.rank() == 3 && iz < f.dims.z, "bad slice");
  Field s;
  s.dataset = f.dataset;
  s.name = f.name + "[z=" + std::to_string(iz) + "]";
  s.dims = Dims{f.dims.x, f.dims.y};
  s.data.resize(s.dims.count());
  for (size_t iy = 0; iy < f.dims.y; ++iy)
    for (size_t ix = 0; ix < f.dims.x; ++ix)
      s.data[s.dims.linear(ix, iy)] = f.data[f.dims.linear(ix, iy, iz)];
  return s;
}

}  // namespace fz
