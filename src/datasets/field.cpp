#include "datasets/field.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace fz {

void Field::compute_stats() const {
  FZ_REQUIRE(!data.empty(), "empty field");
  auto [lo, hi] = std::minmax_element(data.begin(), data.end());
  min_ = *lo;
  max_ = *hi;
  stats_valid_ = true;
}

double Field::min_value() const {
  if (!stats_valid_) compute_stats();
  return min_;
}

double Field::max_value() const {
  if (!stats_valid_) compute_stats();
  return max_;
}

double Field::value_range() const {
  if (!stats_valid_) compute_stats();
  return max_ - min_;
}

double Field::resolve_eb(const ErrorBound& eb) const {
  if (eb.mode == ErrorBoundMode::Absolute) return eb.value;
  double range = value_range();
  if (range <= 0) {
    // Constant field: scale by the value magnitude instead (any positive
    // bound reproduces a constant exactly).
    range = std::max(std::fabs(max_value()), 1.0);
  }
  return eb.resolve(range);
}

}  // namespace fz
