// Field: a named single-precision scalar field with logical dimensions.
// The unit of compression throughout the library and the benchmarks.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace fz {

struct Field {
  std::string dataset;  ///< owning dataset, e.g. "RTM"
  std::string name;     ///< field name, e.g. "snapshot_1200"
  Dims dims;
  std::vector<f32> data;

  size_t count() const { return data.size(); }
  size_t bytes() const { return data.size() * sizeof(f32); }
  FloatSpan values() const { return data; }

  /// Min/max/range of the data (computed on demand, cached).
  double min_value() const;
  double max_value() const;
  double value_range() const;

  /// Resolve a (possibly range-relative) error bound for this field.
  /// Constant fields (range 0) fall back to the value magnitude.
  double resolve_eb(const ErrorBound& eb) const;

 private:
  mutable bool stats_valid_ = false;
  mutable double min_ = 0, max_ = 0;
  void compute_stats() const;
};

/// Static description of a full-scale SDRBench dataset (Table 1 of the
/// paper); the generators produce scaled-down instances of these.
struct DatasetInfo {
  std::string name;
  std::string domain;
  Dims full_dims;
  int num_fields;
  std::string example_fields;
  double full_field_mb;
};

}  // namespace fz
