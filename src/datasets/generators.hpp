// Synthetic SDRBench-like field generators (Table 1 of the paper).
//
// Real SDRBench data is not redistributable inside this repository, so each
// dataset is replaced by a generator that reproduces the *statistical
// character* that drives compressor behaviour (see DESIGN.md §1):
//   HACC      1-D particle coordinates/velocities — unordered, Lorenzo-hostile
//   CESM      2-D climate fields — large-scale smooth structure + banding
//   Hurricane 3-D weather — vortex flow; QRAIN-like fields are sparse
//   Nyx       3-D cosmology — log-normal density, huge dynamic range
//   QMCPACK   3-D orbitals — oscillatory, locally rough
//   RTM       3-D seismic wavefield — expanding wavefronts, many exact zeros
#pragma once

#include <string>
#include <vector>

#include "datasets/field.hpp"

namespace fz {

enum class Dataset { HACC, CESM, Hurricane, Nyx, QMCPACK, RTM };

const char* dataset_name(Dataset ds);
const DatasetInfo& dataset_info(Dataset ds);
std::vector<Dataset> all_datasets();

/// Scaled dims for a dataset: `scale` ~ linear shrink factor relative to the
/// full-scale dims in Table 1 (scale = 1.0 reproduces the paper's sizes).
Dims scaled_dims(Dataset ds, double scale);

/// Generate the representative field of `ds` at the given dims.
/// Deterministic in (ds, dims, seed).
Field generate_field(Dataset ds, Dims dims, u64 seed = 42);

/// Generate a named variant (e.g. a second field of the dataset with a
/// different character: "vx" for HACC velocities, "qrain" for Hurricane).
Field generate_field_variant(Dataset ds, const std::string& variant, Dims dims,
                             u64 seed = 42);

/// The benchmark suite: one representative field per dataset at benchmark
/// scale (scale ~0.22 of full size => a few MB per field; the throughput
/// model is size-aware so relative results match the paper's).
std::vector<Field> benchmark_suite(double scale = 0.22, u64 seed = 42);

}  // namespace fz
