#include "datasets/generators.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace fz {

namespace {

// ---- fractal value noise ---------------------------------------------------
// Tri-linearly interpolated lattice noise with octaves; the workhorse for
// smooth-but-structured fields. Deterministic hash lattice (no tables).

f64 lattice_hash(u64 seed, i64 ix, i64 iy, i64 iz) {
  u64 h = seed;
  h ^= static_cast<u64>(ix) * 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h ^= static_cast<u64>(iy) * 0xc2b2ae3d27d4eb4full;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  h ^= static_cast<u64>(iz) * 0x165667b19e3779f9ull;
  h ^= h >> 31;
  return static_cast<f64>(h >> 11) * 0x1.0p-53 * 2.0 - 1.0;  // [-1, 1)
}

f64 smoothstep(f64 t) { return t * t * (3.0 - 2.0 * t); }

f64 value_noise(u64 seed, f64 x, f64 y, f64 z) {
  const i64 ix = static_cast<i64>(std::floor(x));
  const i64 iy = static_cast<i64>(std::floor(y));
  const i64 iz = static_cast<i64>(std::floor(z));
  const f64 fx = smoothstep(x - static_cast<f64>(ix));
  const f64 fy = smoothstep(y - static_cast<f64>(iy));
  const f64 fz = smoothstep(z - static_cast<f64>(iz));
  f64 c[2][2][2];
  for (int dz = 0; dz < 2; ++dz)
    for (int dy = 0; dy < 2; ++dy)
      for (int dx = 0; dx < 2; ++dx)
        c[dz][dy][dx] = lattice_hash(seed, ix + dx, iy + dy, iz + dz);
  auto lerp = [](f64 a, f64 b, f64 t) { return a + (b - a) * t; };
  const f64 x00 = lerp(c[0][0][0], c[0][0][1], fx);
  const f64 x01 = lerp(c[0][1][0], c[0][1][1], fx);
  const f64 x10 = lerp(c[1][0][0], c[1][0][1], fx);
  const f64 x11 = lerp(c[1][1][0], c[1][1][1], fx);
  const f64 y0 = lerp(x00, x01, fy);
  const f64 y1 = lerp(x10, x11, fy);
  return lerp(y0, y1, fz);
}

f64 fractal_noise(u64 seed, f64 x, f64 y, f64 z, int octaves,
                  f64 lacunarity = 2.0, f64 gain = 0.5) {
  f64 sum = 0.0, amp = 1.0, freq = 1.0, norm = 0.0;
  for (int o = 0; o < octaves; ++o) {
    sum += amp * value_noise(seed + static_cast<u64>(o) * 7919, x * freq,
                             y * freq, z * freq);
    norm += amp;
    amp *= gain;
    freq *= lacunarity;
  }
  return sum / norm;
}

/// Heterogeneous detail: fine-scale noise gated by a smooth large-scale
/// mask, so fields have broad quiet regions (zero-block friendly, like real
/// simulation output) punctuated by rough feature patches (transform-coder
/// hostile).  Homogeneous noise gets neither behaviour right.
f64 gated_detail(u64 seed, f64 x, f64 y, f64 z) {
  const f64 gate = value_noise(seed ^ 0x9a1fULL, x / 3.0, y / 3.0, z / 3.0);
  const f64 mask = gate > 0 ? gate * gate * 2.0 : 0.0;
  return mask * fractal_noise(seed, x, y, z, 6, 2.3, 0.65);
}

Field make_field(Dataset ds, const std::string& name, Dims dims) {
  Field f;
  f.dataset = dataset_name(ds);
  f.name = name;
  f.dims = dims;
  f.data.resize(dims.count());
  return f;
}

// ---- HACC: 1-D particle data ------------------------------------------------
// Particles clustered into halos, stored in arbitrary (shuffled) order:
// neighbouring array entries are unrelated, so Lorenzo prediction degrades —
// the paper notes HACC "generates many large irregular integers".
Field gen_hacc(Dims dims, u64 seed, bool velocity) {
  Field f = make_field(Dataset::HACC, velocity ? "vx" : "xx", dims);
  Rng rng(seed ^ (velocity ? 0xbeefULL : 0x0ULL));
  const size_t n = dims.count();
  const size_t num_halos = std::max<size_t>(n / 4096, 8);
  std::vector<f64> halo_center(num_halos), halo_sigma(num_halos);
  for (size_t h = 0; h < num_halos; ++h) {
    halo_center[h] = rng.uniform(0.0, 256.0);
    halo_sigma[h] = rng.uniform(0.05, 2.0);
  }
  for (size_t i = 0; i < n; ++i) {
    const size_t h = rng.below(num_halos);
    if (velocity) {
      // Velocities: halo bulk flow + internal dispersion (km/s scale).
      f.data[i] = static_cast<f32>(rng.normal(halo_center[h] * 10.0 - 1280.0,
                                              200.0 * halo_sigma[h]));
    } else {
      // Positions in a 256 Mpc box; strictly positive for the log transform.
      f64 x = rng.normal(halo_center[h], halo_sigma[h]);
      x = std::fabs(x);
      if (x < 1e-3) x = 1e-3;
      if (x > 255.9) x = std::fmod(x, 256.0);
      f.data[i] = static_cast<f32>(x);
    }
  }
  return f;
}

// ---- CESM: 2-D climate ------------------------------------------------------
// Zonal (latitude) gradient + planetary-wave sinusoids + fractal detail;
// CLDICE-like variant is a patchy non-negative cloud field.
Field gen_cesm(Dims dims, u64 seed, bool cloud) {
  Field f = make_field(Dataset::CESM, cloud ? "CLDICE" : "RELHUM", dims);
  const f64 ny = static_cast<f64>(dims.y), nx = static_cast<f64>(dims.x);
  parallel_for(0, dims.y, [&](size_t iy) {
    const f64 lat = (static_cast<f64>(iy) / ny - 0.5) * M_PI;  // -pi/2..pi/2
    for (size_t ix = 0; ix < dims.x; ++ix) {
      const f64 lon = static_cast<f64>(ix) / nx * 2.0 * M_PI;
      const f64 waves = std::sin(3.0 * lon + 2.1 * lat) * std::cos(lat) * 0.3 +
                        std::cos(5.0 * lon - 1.3 * lat) * 0.15;
      const f64 detail = gated_detail(seed, static_cast<f64>(ix) / 24.0,
                                      static_cast<f64>(iy) / 24.0, 0.0);
      if (cloud) {
        // Cloud ice: zero outside patches, small positive inside.
        const f64 v = detail + 0.4 * waves - 0.25;
        f.data[f.dims.linear(ix, iy)] =
            v > 0 ? static_cast<f32>(1e-4 * v * v) : 0.0f;
      } else {
        // Relative humidity-like: 0..100 with smooth structure.
        const f64 v = 55.0 + 30.0 * std::cos(2.0 * lat) + 20.0 * waves +
                      12.0 * detail;
        f.data[f.dims.linear(ix, iy)] = static_cast<f32>(v);
      }
    }
  });
  return f;
}

// ---- Hurricane: 3-D vortex --------------------------------------------------
Field gen_hurricane(Dims dims, u64 seed, bool qrain) {
  Field f = make_field(Dataset::Hurricane, qrain ? "QRAIN" : "Uf", dims);
  const f64 cx = static_cast<f64>(dims.x) * 0.55;
  const f64 cy = static_cast<f64>(dims.y) * 0.45;
  parallel_for(0, dims.z, [&](size_t iz) {
    const f64 zf = static_cast<f64>(iz) / static_cast<f64>(dims.z);
    for (size_t iy = 0; iy < dims.y; ++iy) {
      for (size_t ix = 0; ix < dims.x; ++ix) {
        const f64 dx = static_cast<f64>(ix) - cx;
        const f64 dy = static_cast<f64>(iy) - cy;
        const f64 r = std::sqrt(dx * dx + dy * dy) + 1e-9;
        const f64 rmax = 18.0 + 10.0 * zf;  // eye-wall radius grows with height
        // Rankine-like vortex tangential wind profile.
        const f64 vt = r < rmax ? 60.0 * r / rmax : 60.0 * rmax / r;
        const f64 detail =
            gated_detail(seed, static_cast<f64>(ix) / 16.0,
                         static_cast<f64>(iy) / 16.0, static_cast<f64>(iz) / 8.0);
        const size_t idx = f.dims.linear(ix, iy, iz);
        if (qrain) {
          // Rain mixing ratio: nonzero only inside a compact annulus of
          // spiral bands around the eye wall; the rest of the domain is
          // exactly quiescent.  Real QRAIN/QSNOW sparsity is spatially
          // compact like this (most of the slice holds long all-zero runs).
          const f64 ring = (r - 2.2 * rmax) / 22.0;
          if (r < 6.0 || ring > 1.6 || ring < -1.6) {
            f.data[idx] = 0.0f;
          } else {
            const f64 theta = std::atan2(dy, dx);
            const f64 band = std::sin(theta * 2.0 - r / 14.0 + 6.0 * zf);
            const f64 v = band - 0.35 + 0.1 * detail;
            const f64 conf = std::exp(-ring * ring * 2.0);
            f.data[idx] =
                v > 0 ? static_cast<f32>(2e-3 * v * v * conf) : 0.0f;
          }
        } else {
          // u-wind component of the vortex plus turbulence.
          const f64 u = -vt * dy / r + 16.0 * detail;
          f.data[idx] = static_cast<f32>(u);
        }
      }
    }
  });
  return f;
}

// ---- Nyx: 3-D log-normal density ---------------------------------------------
Field gen_nyx(Dims dims, u64 seed) {
  Field f = make_field(Dataset::Nyx, "baryon_density", dims);
  parallel_for(0, dims.z, [&](size_t iz) {
    for (size_t iy = 0; iy < dims.y; ++iy) {
      for (size_t ix = 0; ix < dims.x; ++ix) {
        const f64 g =
            fractal_noise(seed, static_cast<f64>(ix) / 20.0,
                          static_cast<f64>(iy) / 20.0, static_cast<f64>(iz) / 20.0,
                          5, 2.0, 0.6);
        // Log-normal: mostly near the mean density with rare dense filaments
        // spanning several orders of magnitude.
        f.data[f.dims.linear(ix, iy, iz)] =
            static_cast<f32>(std::exp(6.5 * g) * 7.7e9);
      }
    }
  });
  return f;
}

// ---- QMCPACK: 3-D orbitals ----------------------------------------------------
Field gen_qmcpack(Dims dims, u64 seed) {
  Field f = make_field(Dataset::QMCPACK, "einspline", dims);
  parallel_for(0, dims.z, [&](size_t iz) {
    for (size_t iy = 0; iy < dims.y; ++iy) {
      for (size_t ix = 0; ix < dims.x; ++ix) {
        const f64 x = static_cast<f64>(ix), y = static_cast<f64>(iy),
                  z = static_cast<f64>(iz);
        // Bloch-like oscillatory orbital: plane waves modulated by an
        // envelope, plus rough high-frequency content (QMCPACK is the
        // paper's "many unsmooth floating data points" dataset).
        const f64 osc = std::sin(0.9 * x + 0.31 * y) * std::cos(0.7 * z - 0.4 * x) +
                        0.6 * std::sin(1.7 * y - 0.8 * z);
        const f64 rough = fractal_noise(seed, x / 3.0, y / 3.0, z / 3.0, 3, 2.3, 0.7);
        f.data[f.dims.linear(ix, iy, iz)] =
            static_cast<f32>(0.8 * osc + 0.55 * rough);
      }
    }
  });
  return f;
}

// ---- RTM: 3-D wavefield snapshot ----------------------------------------------
Field gen_rtm(Dims dims, u64 seed) {
  Field f = make_field(Dataset::RTM, "snapshot_1200", dims);
  const f64 sx = static_cast<f64>(dims.x) / 2.0;
  const f64 sy = static_cast<f64>(dims.y) / 2.0;
  const f64 sz = 4.0;  // shot near the surface
  const f64 front = 0.42 * static_cast<f64>(dims.x);  // wavefront radius
  parallel_for(0, dims.z, [&](size_t iz) {
    for (size_t iy = 0; iy < dims.y; ++iy) {
      for (size_t ix = 0; ix < dims.x; ++ix) {
        const f64 dx = static_cast<f64>(ix) - sx;
        const f64 dy = static_cast<f64>(iy) - sy;
        const f64 dz = static_cast<f64>(iz) - sz;
        const f64 r = std::sqrt(dx * dx + dy * dy + dz * dz);
        const size_t idx = f.dims.linear(ix, iy, iz);
        if (r > front) {
          // Ahead of the wavefront the medium is exactly quiescent — the
          // paper: "the RTM dataset contains many zero values".
          f.data[idx] = 0.0f;
          continue;
        }
        // Ricker-wavelet-style ringing behind the front, geometrically
        // attenuated, over a smooth layered background reflectivity.
        const f64 phase = (front - r) / 6.0;
        const f64 ring = (1.0 - 2.0 * phase * phase * 0.08) *
                         std::exp(-0.04 * phase * phase) * std::cos(1.9 * phase);
        const f64 layers =
            0.15 * std::sin(static_cast<f64>(iz) / 9.0 +
                            2.0 * fractal_noise(seed, static_cast<f64>(ix) / 40.0,
                                                static_cast<f64>(iy) / 40.0, 0.0, 3));
        f.data[idx] = static_cast<f32>((ring + layers) * 1e3 / (1.0 + 0.02 * r));
      }
    }
  });
  return f;
}

}  // namespace

const char* dataset_name(Dataset ds) {
  switch (ds) {
    case Dataset::HACC: return "HACC";
    case Dataset::CESM: return "CESM";
    case Dataset::Hurricane: return "Hurricane";
    case Dataset::Nyx: return "Nyx";
    case Dataset::QMCPACK: return "QMCPACK";
    case Dataset::RTM: return "RTM";
  }
  return "?";
}

const DatasetInfo& dataset_info(Dataset ds) {
  static const DatasetInfo infos[] = {
      {"HACC", "cosmology particle simulation", Dims{280953867}, 6, "xx, vx", 1123.81},
      {"CESM", "climate simulation", Dims{3600, 1800}, 70, "CLDICE, RELHUM", 25.92},
      {"Hurricane", "ISABEL weather simulation", Dims{500, 500, 100}, 13,
       "CLDICE, QRAIN", 100.0},
      {"Nyx", "cosmology simulation", Dims{512, 512, 512}, 6, "baryon_density",
       536.87},
      {"QMCPACK", "quantum Monte Carlo simulation", Dims{288, 69, 7935}, 1,
       "einspline", 630.74},
      {"RTM", "reverse time migration (seismic)", Dims{449, 449, 235}, 16,
       "snapshot_1200", 189.50},
  };
  return infos[static_cast<int>(ds)];
}

std::vector<Dataset> all_datasets() {
  return {Dataset::HACC, Dataset::CESM, Dataset::Hurricane,
          Dataset::Nyx,  Dataset::QMCPACK, Dataset::RTM};
}

Dims scaled_dims(Dataset ds, double scale) {
  FZ_REQUIRE(scale > 0 && scale <= 1.0, "scale must be in (0, 1]");
  const Dims full = dataset_info(ds).full_dims;
  auto s = [&](size_t v, double p) {
    const auto r = static_cast<size_t>(std::llround(static_cast<double>(v) *
                                                    std::pow(scale, p)));
    return std::max<size_t>(r, 8);
  };
  switch (full.rank()) {
    case 1: return Dims{s(full.x, 3.0)};
    case 2: return Dims{s(full.x, 1.5), s(full.y, 1.5)};
    default: return Dims{s(full.x, 1.0), s(full.y, 1.0), s(full.z, 1.0)};
  }
}

Field generate_field(Dataset ds, Dims dims, u64 seed) {
  switch (ds) {
    case Dataset::HACC: return gen_hacc(dims, seed, /*velocity=*/false);
    case Dataset::CESM: return gen_cesm(dims, seed, /*cloud=*/false);
    case Dataset::Hurricane: return gen_hurricane(dims, seed, /*qrain=*/false);
    case Dataset::Nyx: return gen_nyx(dims, seed);
    case Dataset::QMCPACK: return gen_qmcpack(dims, seed);
    case Dataset::RTM: return gen_rtm(dims, seed);
  }
  FZ_REQUIRE(false, "unknown dataset");
}

Field generate_field_variant(Dataset ds, const std::string& variant, Dims dims,
                             u64 seed) {
  if (ds == Dataset::HACC && variant == "vx") return gen_hacc(dims, seed, true);
  if (ds == Dataset::HACC && variant == "xx") return gen_hacc(dims, seed, false);
  if (ds == Dataset::CESM && variant == "CLDICE") return gen_cesm(dims, seed, true);
  if (ds == Dataset::CESM && variant == "RELHUM") return gen_cesm(dims, seed, false);
  if (ds == Dataset::Hurricane && variant == "QRAIN")
    return gen_hurricane(dims, seed, true);
  if (ds == Dataset::Hurricane && variant == "Uf")
    return gen_hurricane(dims, seed, false);
  Field f = generate_field(ds, dims, seed);
  FZ_REQUIRE(f.name == variant, "unknown field variant '" + variant + "' for " +
                                    dataset_name(ds));
  return f;
}

std::vector<Field> benchmark_suite(double scale, u64 seed) {
  std::vector<Field> suite;
  for (const Dataset ds : all_datasets())
    suite.push_back(generate_field(ds, scaled_dims(ds, scale), seed));
  return suite;
}

}  // namespace fz
