#include "reader/prefetcher.hpp"

namespace fz {

std::vector<size_t> Prefetcher::on_access(size_t first, size_t last,
                                          size_t chunk_count) {
  // Sequential iff this access starts exactly where the previous one ended
  // or overlaps forward into it (sliding windows with overlap still ramp).
  const bool sequential = next_expected_ != kNoPattern &&
                          first <= next_expected_ && last + 1 > next_expected_;
  next_expected_ = last + 1;
  if (!sequential || max_degree_ == 0) {
    degree_ = 1;
    return {};
  }
  degree_ = degree_ * 2 < max_degree_ ? degree_ * 2 : max_degree_;
  std::vector<size_t> ahead;
  for (size_t id = last + 1; id < chunk_count && ahead.size() < degree_; ++id)
    ahead.push_back(id);
  return ahead;
}

void Prefetcher::reset() {
  next_expected_ = kNoPattern;
  degree_ = 1;
}

}  // namespace fz
