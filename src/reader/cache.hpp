// fz::ChunkCache — LRU cache of decoded chunks with a byte budget.
//
// The Reader's working set: chunk id → decoded f32 slab.  Entries are
// published in three steps so decodes never run under the cache lock:
//
//   1. acquire(id) under the lock either finds the entry (hit) or inserts a
//      placeholder and tells exactly one caller to load it (miss);
//   2. that loader decodes into the entry unlocked (it is the only writer
//      until publication) and calls publish(), which marks the entry ready,
//      charges its bytes, and evicts cold ready entries past the budget;
//   3. everyone else blocks in wait_ready() on the cache's condition
//      variable; the publish mutex hand-off is the happens-before edge that
//      makes the loader's plain writes visible (TSan-verified by the
//      many-reader stress in tests/test_threading.cpp).
//
// Entries are shared_ptrs: eviction only drops the cache's reference, so a
// reader still copying from an evicted chunk keeps its data alive, and the
// PooledBuffer returns to the Reader's BufferPool when the last reference
// goes — eviction is never a dangling-pointer hazard, only a recycling
// delay.  A load that throws publishes its exception_ptr instead of data;
// failed entries are dropped from the map immediately so a later access
// retries rather than caching the failure.
//
// Thread-safety: all methods may be called from any thread.
#pragma once

#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/pool.hpp"
#include "common/types.hpp"

namespace fz::telemetry {
class Sink;
}  // namespace fz::telemetry

namespace fz {

class ChunkCache {
 public:
  struct Entry {
    // Written by the loading thread before publish(), read-only afterwards.
    PooledBuffer data;  ///< decoded f32 slab (empty when `error` is set)
    Dims dims;
    size_t elem_offset = 0;
    std::exception_ptr error;

    // Guarded by the cache mutex.
    bool ready = false;
    bool prefetched = false;  ///< loaded speculatively, not demanded yet
    u64 last_use = 0;
    size_t charged_bytes = 0;
  };
  using EntryPtr = std::shared_ptr<Entry>;

  /// Demand/prefetch hit, miss, prefetch-usefulness, and eviction totals.
  /// Mirrored onto the telemetry sink (Counter::Reader*) when one is set.
  struct Stats {
    u64 hits = 0;             ///< demand accesses answered from the cache
    u64 misses = 0;           ///< demand accesses that triggered a decode
    u64 prefetch_issued = 0;  ///< speculative decodes started
    u64 prefetch_hits = 0;    ///< demand accesses that landed on a prefetch
    u64 evictions = 0;
    size_t resident_bytes = 0;
    size_t resident_chunks = 0;
  };

  /// `budget_bytes` bounds the decoded bytes the cache retains (in-flight
  /// readers can pin evicted entries beyond it transiently).  A budget
  /// smaller than one chunk still works: the chunk is decoded, handed to its
  /// waiters, and evicted on the next publish.
  explicit ChunkCache(size_t budget_bytes, telemetry::Sink* sink = nullptr);

  struct Lookup {
    EntryPtr entry;
    bool load = false;  ///< true for exactly one caller per entry: decode it
  };

  /// Find or create the entry for `id`.  `prefetch` marks speculative
  /// accesses: they never count as demand hits/misses, and a hit on an
  /// entry first loaded by prefetch counts prefetch_hits once.
  Lookup acquire(size_t id, bool prefetch);

  /// Loader only: mark `entry` ready (data or error filled in), wake every
  /// waiter, charge `bytes` against the budget, and evict LRU ready entries
  /// until the budget holds.  Failed loads are uncharged and dropped.
  void publish(size_t id, const EntryPtr& entry, size_t bytes);

  /// Block until `entry` is published; rethrows the loader's exception.
  void wait_ready(const EntryPtr& entry);

  Stats stats() const;
  size_t budget_bytes() const { return budget_; }

 private:
  void evict_locked();

  const size_t budget_;
  telemetry::Sink* sink_;

  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  std::unordered_map<size_t, EntryPtr> map_;
  u64 clock_ = 0;  ///< LRU timestamp source
  Stats stats_;
};

}  // namespace fz
