// fzlint:hot-path — the prefetcher mutex is taken on every read;
// fzlint flags allocation and blocking inside its critical section.
#include "reader/reader.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "core/codec.hpp"
#include "core/format.hpp"
#include "telemetry/telemetry.hpp"

namespace fz {

namespace {

size_t resolve_workers(size_t workers) {
  if (workers != 0) return workers;
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

/// The container identity, or a single-field f32 stream wrapped as a
/// one-chunk container (version 0) so slicing works on any stream.
ContainerInfo make_info(ByteSpan stream) {
  if (is_container(stream)) return fz_container_info(stream);
  const StreamInfo s = inspect(stream);
  FZ_FORMAT_REQUIRE(s.dtype_bytes == sizeof(f32),
                    "fz::Reader reads f32 streams only");
  ContainerInfo info;
  info.version = 0;
  info.dims = s.dims;
  info.count = s.count;
  info.header_bytes = 0;
  info.stream_bytes = stream.size();
  info.chunks.push_back(ChunkEntry{0, stream.size(), 0, s.dims});
  return info;
}

size_t slow_extent(Dims d, int rank) {
  return rank == 1 ? d.x : rank == 2 ? d.y : d.z;
}

}  // namespace

Reader::Reader(ByteSpan stream, ReaderOptions options)
    : stream_(stream),
      info_(make_info(stream)),
      plane_(info_.count / slow_extent(info_.dims, info_.dims.rank())),
      // Same resolution as Codec: explicit sink, else the innermost
      // ScopedSink / FZ_TRACE env sink, else disabled.
      sink_(options.telemetry != nullptr ? options.telemetry
                                         : telemetry::active_sink()),
      cache_(options.cache_bytes, sink_),
      prefetcher_(options.max_prefetch),
      pool_(resolve_workers(options.workers)) {
  buffers_.set_telemetry(sink_);
  FzParams params;
  params.telemetry = sink_;
  // One chunk per worker is the parallelism unit here; keep each decode's
  // internal fan-out — the fused decode strips and the inverse-Lorenzo
  // scans — single-strip so the pool never oversubscribes.  Chunk fetches
  // still ride the fused decompress graph (one strip per fetch).
  params.fused_workers = 1;
  codecs_.reserve(pool_.worker_count());
  for (size_t w = 0; w < pool_.worker_count(); ++w)
    codecs_.push_back(std::make_unique<Codec>(params));
}

Reader::~Reader() {
  // ThreadPool's destructor (first, by declaration order) discards queued
  // prefetches and joins in-flight decodes; their entries simply go
  // unpublished — no reader can be waiting once the destructor runs.
}

size_t Reader::chunk_at_slow(size_t slow) const {
  return chunk_at_elem(slow * plane_);
}

size_t Reader::chunk_at_elem(size_t elem) const {
  auto it = std::upper_bound(
      info_.chunks.begin(), info_.chunks.end(), elem,
      [](size_t v, const ChunkEntry& e) { return v < e.elem_offset; });
  return static_cast<size_t>(it - info_.chunks.begin()) - 1;
}

ChunkCache::EntryPtr Reader::request(size_t id, bool prefetch) {
  ChunkCache::Lookup l = cache_.acquire(id, prefetch);
  if (l.load) {
    ChunkCache::EntryPtr entry = l.entry;
    pool_.submit([this, id, entry, prefetch](size_t worker) {
      fetch(id, entry, worker, prefetch);
    });
  }
  return l.entry;
}

void Reader::fetch(size_t id, const ChunkCache::EntryPtr& entry, size_t worker,
                   bool prefetch) {
  const ChunkEntry& c = info_.chunks[id];
  telemetry::Span span(sink_, "chunk-fetch");
  span.arg("chunk", static_cast<double>(id));
  span.arg("worker", static_cast<double>(worker));
  span.arg("bytes_in", static_cast<double>(c.bytes));
  span.arg("prefetch", prefetch ? 1 : 0);
  try {
    PooledBuffer buf =
        buffers_.acquire(c.dims.count() * sizeof(f32), /*zeroed=*/false);
    const Dims got = codecs_[worker]->decompress_into(
        stream_.subspan(c.offset, c.bytes), buf.as<f32>());
    FZ_FORMAT_REQUIRE(got == c.dims,
                      "chunk stream dims disagree with the container index");
    span.arg("bytes_out", static_cast<double>(buf.size()));
    entry->data = std::move(buf);
    entry->dims = got;
    entry->elem_offset = c.elem_offset;
  } catch (...) {
    entry->error = std::current_exception();
  }
  cache_.publish(id, entry, c.dims.count() * sizeof(f32));
}

void Reader::prefetch_after(size_t first, size_t last) {
  std::vector<size_t> ahead;
  {
    const std::lock_guard<std::mutex> lock(prefetch_mu_);
    ahead = prefetcher_.on_access(first, last, info_.chunks.size());
  }
  for (size_t id : ahead) request(id, true);
}

void Reader::read(const Slice& s, std::span<f32> out) {
  const Dims d = info_.dims;
  FZ_REQUIRE(s.nx >= 1 && s.ny >= 1 && s.nz >= 1,
             "Reader::read: every slice extent must be nonzero");
  FZ_REQUIRE(s.x <= d.x && s.nx <= d.x - s.x && s.y <= d.y &&
                 s.ny <= d.y - s.y && s.z <= d.z && s.nz <= d.z - s.z,
             "Reader::read: slice exceeds the field bounds");
  FZ_REQUIRE(out.size() == s.count(),
             "Reader::read: output size != slice element count");
  telemetry::Span span(sink_, "reader-read");
  span.arg("elems", static_cast<double>(out.size()));
  const int rank = d.rank();
  const size_t s0 = rank == 1 ? s.x : rank == 2 ? s.y : s.z;
  const size_t sn = rank == 1 ? s.nx : rank == 2 ? s.ny : s.nz;
  const size_t c0 = chunk_at_slow(s0);
  const size_t c1 = chunk_at_slow(s0 + sn - 1);
  span.arg("chunks", static_cast<double>(c1 - c0 + 1));
  std::vector<ChunkCache::EntryPtr> entries;
  entries.reserve(c1 - c0 + 1);
  for (size_t id = c0; id <= c1; ++id) entries.push_back(request(id, false));
  prefetch_after(c0, c1);
  for (const ChunkCache::EntryPtr& entry : entries) {
    cache_.wait_ready(entry);
    assemble(s, *entry, out);
  }
}

std::vector<f32> Reader::read(const Slice& s) {
  std::vector<f32> out(s.count());
  read(s, out);
  return out;
}

void Reader::read_flat(size_t first, std::span<f32> out) {
  if (out.empty()) return;
  FZ_REQUIRE(first <= info_.count && out.size() <= info_.count - first,
             "Reader::read_flat: range exceeds the field");
  telemetry::Span span(sink_, "reader-read");
  span.arg("elems", static_cast<double>(out.size()));
  const size_t c0 = chunk_at_elem(first);
  const size_t c1 = chunk_at_elem(first + out.size() - 1);
  span.arg("chunks", static_cast<double>(c1 - c0 + 1));
  std::vector<ChunkCache::EntryPtr> entries;
  entries.reserve(c1 - c0 + 1);
  for (size_t id = c0; id <= c1; ++id) entries.push_back(request(id, false));
  prefetch_after(c0, c1);
  for (const ChunkCache::EntryPtr& entry : entries) {
    cache_.wait_ready(entry);
    const std::span<const f32> src = entry->data.as<f32>();
    const size_t b = entry->elem_offset;
    const size_t lo = std::max(first, b);
    const size_t hi = std::min(first + out.size(), b + src.size());
    std::memcpy(out.data() + (lo - first), src.data() + (lo - b),
                (hi - lo) * sizeof(f32));
  }
}

void Reader::assemble(const Slice& s, const ChunkCache::Entry& e,
                      std::span<f32> out) const {
  const Dims d = info_.dims;
  const int rank = d.rank();
  const std::span<const f32> src = e.data.as<f32>();
  const size_t b = e.elem_offset / plane_;  // chunk's first slowest index
  const size_t len = slow_extent(e.dims, rank);
  const size_t s0 = rank == 1 ? s.x : rank == 2 ? s.y : s.z;
  const size_t sn = rank == 1 ? s.nx : rank == 2 ? s.ny : s.nz;
  const size_t lo = std::max(s0, b);
  const size_t hi = std::min(s0 + sn, b + len);
  if (lo >= hi) return;
  switch (rank) {
    case 1:
      std::memcpy(out.data() + (lo - s.x), src.data() + (lo - b),
                  (hi - lo) * sizeof(f32));
      break;
    case 2:
      for (size_t y = lo; y < hi; ++y)
        std::memcpy(out.data() + (y - s.y) * s.nx,
                    src.data() + (y - b) * d.x + s.x, s.nx * sizeof(f32));
      break;
    default:
      for (size_t z = lo; z < hi; ++z)
        for (size_t y = s.y; y < s.y + s.ny; ++y)
          std::memcpy(
              out.data() + ((z - s.z) * s.ny + (y - s.y)) * s.nx,
              src.data() + ((z - b) * d.y + y) * d.x + s.x,
              s.nx * sizeof(f32));
      break;
  }
}

}  // namespace fz
