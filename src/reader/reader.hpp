// fz::Reader — concurrent random access into compressed streams.
//
// The container's chunk index (core/format.hpp, v2) makes any chunk
// locatable in O(1); this subsystem turns that into a slice service: ask
// for any N-D rectangle of the field and the Reader decodes exactly the
// covering chunks — on a persistent ThreadPool, through an LRU ChunkCache,
// with a sequential-pattern Prefetcher warming the cache ahead of forward
// sweeps.  The architecture follows rapidgzip's random-access stack
// (BlockFetcher / prefetcher / cache / thread pool), with FZ chunks in
// place of gzip blocks.
//
// Results are byte-identical to decompressing the full stream and copying
// the region out (pinned by tests/test_reader.cpp for every worker count
// and cache budget) — the cache changes when work happens, never what it
// produces.
//
// Concurrency contract: every public method may be called from any number
// of threads concurrently.  Decodes run on the pool (one fz::Codec per
// pool worker — the Codec threading contract); callers block only in the
// cache's wait, never inside a decode another caller needs.  The stream
// bytes must stay alive and unchanged for the Reader's lifetime.
//
// Telemetry: with a sink attached, each read() records a "reader-read"
// span, each pool decode a "chunk-fetch" span, and the cache ticks the
// Counter::Reader* hit/miss/prefetch/eviction counters.
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/pool.hpp"
#include "common/thread_pool.hpp"
#include "core/chunked.hpp"
#include "reader/cache.hpp"
#include "reader/prefetcher.hpp"

namespace fz {

class Codec;

/// An axis-aligned rectangle of the field: origin (x, y, z) and extent
/// (nx, ny, nz).  Unused trailing axes stay at origin 0, extent 1 (so
/// Slice{.x = 5, .nx = 10} is elements [5, 15) of a 1-D field).
struct Slice {
  size_t x = 0, y = 0, z = 0;
  size_t nx = 1, ny = 1, nz = 1;
  size_t count() const { return nx * ny * nz; }
};

struct ReaderOptions {
  /// Decode pool size (0 = one worker per hardware thread).
  size_t workers = 0;
  /// Byte budget for decoded chunks retained in the cache.
  size_t cache_bytes = size_t{256} << 20;
  /// Max chunks prefetched ahead of a sequential sweep (0 disables).
  size_t max_prefetch = 4;
  /// Observability sink; when null the Reader falls back to
  /// telemetry::active_sink() (ScopedSink / FZ_TRACE), like Codec does.
  /// The resolved sink must outlive the Reader.
  telemetry::Sink* telemetry = nullptr;
};

/// Cache effectiveness counters (a stable snapshot of ChunkCache::Stats).
using ReaderStats = ChunkCache::Stats;

class Reader {
 public:
  /// Parse and validate the container's chunk index (or wrap a single-field
  /// f32 stream as one chunk, so slicing works uniformly on any stream).
  /// Throws FormatError on corrupt input, before any thread is spawned.
  explicit Reader(ByteSpan stream, ReaderOptions options = {});
  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;
  ~Reader();

  const ContainerInfo& info() const { return info_; }
  Dims dims() const { return info_.dims; }
  size_t chunk_count() const { return info_.chunks.size(); }
  size_t worker_count() const { return pool_.worker_count(); }

  /// Read the slice into caller storage (out.size() must equal s.count();
  /// row-major layout with extent s.nx × s.ny × s.nz).
  void read(const Slice& s, std::span<f32> out);
  /// Convenience: allocate and return the slice.
  std::vector<f32> read(const Slice& s);

  /// Read `out.size()` consecutive elements of the flattened field starting
  /// at flat index `first` (crosses chunk boundaries transparently).
  void read_flat(size_t first, std::span<f32> out);

  ReaderStats stats() const { return cache_.stats(); }

 private:
  /// Chunk whose slab contains slowest-axis index `slow`.
  size_t chunk_at_slow(size_t slow) const;
  /// Chunk whose slab contains flat element index `elem`.
  size_t chunk_at_elem(size_t elem) const;
  /// Cache lookup; on a miss, schedule the decode on the pool.  Returns the
  /// (possibly not yet ready) entry for demand requests, nothing for
  /// prefetches.
  ChunkCache::EntryPtr request(size_t id, bool prefetch);
  /// Pool worker body: decode chunk `id` into `entry` and publish it.
  void fetch(size_t id, const ChunkCache::EntryPtr& entry, size_t worker,
             bool prefetch);
  /// Report the demand range to the prefetch policy and issue its picks.
  void prefetch_after(size_t first, size_t last);
  /// Copy the intersection of `s` and the chunk's slab into `out`.
  void assemble(const Slice& s, const ChunkCache::Entry& e,
                std::span<f32> out) const;

  // Declaration order is destruction order in reverse: the pool is declared
  // last so its join runs first (workers may touch every other member), and
  // the cache before the buffer pool dies (entries release leases into it).
  ByteSpan stream_;
  ContainerInfo info_;
  size_t plane_;  ///< elements per unit of the slowest-varying axis
  telemetry::Sink* sink_;
  BufferPool buffers_;
  ChunkCache cache_;
  std::mutex prefetch_mu_;
  Prefetcher prefetcher_;
  std::vector<std::unique_ptr<Codec>> codecs_;  ///< one per pool worker
  ThreadPool pool_;
};

}  // namespace fz
