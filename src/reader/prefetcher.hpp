// fz::Prefetcher — sequential-pattern prefetch policy for chunk access.
//
// Pure policy, no I/O: the Reader reports every demand access (the chunk
// range covering a slice) and gets back the chunk ids worth decoding
// speculatively.  The policy is the classic exponential ramp (as in
// rapidgzip's fetcher): a stride-1 forward pattern doubles the prefetch
// degree per access up to `max_degree`; any seek resets it, so random
// access never floods the pool with wasted decodes.  The first access of a
// fresh pattern prefetches nothing — one access is not yet a pattern.
//
// Not thread-safe: the Reader serializes on_access() under its own mutex
// (the policy is a few integers; contention is irrelevant).
#pragma once

#include <cstddef>
#include <vector>

namespace fz {

class Prefetcher {
 public:
  /// `max_degree` bounds the chunks prefetched ahead of a sequential sweep
  /// (0 disables prefetching entirely).
  explicit Prefetcher(size_t max_degree) : max_degree_(max_degree) {}

  /// Record a demand access covering chunks [first, last] of a container
  /// with `chunk_count` chunks.  Returns the ids to decode speculatively:
  /// ascending, starting at last+1, clamped to the container — empty when
  /// the access does not extend a sequential pattern.
  std::vector<size_t> on_access(size_t first, size_t last, size_t chunk_count);

  /// Forget the current pattern (degree resets to 1).
  void reset();

  size_t max_degree() const { return max_degree_; }
  size_t degree() const { return degree_; }

 private:
  static constexpr size_t kNoPattern = static_cast<size_t>(-1);

  size_t max_degree_;
  size_t next_expected_ = kNoPattern;  ///< chunk after the previous access
  size_t degree_ = 1;
};

}  // namespace fz
