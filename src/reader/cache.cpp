// fzlint:hot-path — the cache mutex serializes every chunk lookup of every
// reader thread; fzlint flags allocation and blocking inside its critical
// sections.
#include "reader/cache.hpp"

#include "telemetry/telemetry.hpp"

namespace fz {

namespace {

void tick(telemetry::Sink* sink, telemetry::Counter c, i64 delta = 1) {
  if (sink != nullptr) sink->count(c, delta);
}

}  // namespace

ChunkCache::ChunkCache(size_t budget_bytes, telemetry::Sink* sink)
    : budget_(budget_bytes), sink_(sink) {}

ChunkCache::Lookup ChunkCache::acquire(size_t id, bool prefetch) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(id);
  if (it != map_.end()) {
    Entry& e = *it->second;
    e.last_use = ++clock_;
    if (!prefetch) {
      ++stats_.hits;
      tick(sink_, telemetry::Counter::ReaderChunkHit);
      if (e.prefetched) {
        // Count the prefetch as useful exactly once, whether the decode has
        // landed yet or is still in flight (either way it got a head start).
        e.prefetched = false;
        ++stats_.prefetch_hits;
        tick(sink_, telemetry::Counter::ReaderPrefetchHit);
      }
    }
    return {it->second, false};
  }
  if (prefetch) {
    ++stats_.prefetch_issued;
    tick(sink_, telemetry::Counter::ReaderPrefetchIssued);
  } else {
    ++stats_.misses;
    tick(sink_, telemetry::Counter::ReaderChunkMiss);
  }
  // Miss path only: the placeholder's control block is noise next to the
  // chunk decode the caller is about to run, and allocating it outside the
  // lock would charge every HIT an allocation it never needs.
  EntryPtr entry = std::make_shared<Entry>();  // fzlint:allow(lock-discipline)
  entry->prefetched = prefetch;
  entry->last_use = ++clock_;
  map_.emplace(id, entry);  // fzlint:allow(lock-discipline)
  return {entry, true};
}

void ChunkCache::publish(size_t id, const EntryPtr& entry, size_t bytes) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    entry->ready = true;
    if (entry->error != nullptr) {
      // Don't cache failures: drop the placeholder so a later access
      // retries the decode (the waiters still hold the entry and rethrow).
      map_.erase(id);
    } else {
      entry->charged_bytes = bytes;
      stats_.resident_bytes += bytes;
      ++stats_.resident_chunks;
      evict_locked();
    }
  }
  ready_cv_.notify_all();
}

void ChunkCache::wait_ready(const EntryPtr& entry) {
  std::unique_lock<std::mutex> lock(mu_);
  // Condition-variable wait releases the mutex while parked.
  ready_cv_.wait(lock, [&] { return entry->ready; });  // fzlint:allow(lock-discipline)
  if (entry->error != nullptr) std::rethrow_exception(entry->error);
}

void ChunkCache::evict_locked() {
  while (stats_.resident_bytes > budget_) {
    auto victim = map_.end();
    for (auto it = map_.begin(); it != map_.end(); ++it) {
      // Only published entries are evictable: an in-flight placeholder has
      // no bytes charged yet and its loader still expects to publish it.
      if (!it->second->ready) continue;
      if (victim == map_.end() ||
          it->second->last_use < victim->second->last_use)
        victim = it;
    }
    if (victim == map_.end()) return;
    stats_.resident_bytes -= victim->second->charged_bytes;
    --stats_.resident_chunks;
    ++stats_.evictions;
    tick(sink_, telemetry::Counter::ReaderChunkEvicted);
    map_.erase(victim);
  }
}

ChunkCache::Stats ChunkCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace fz
