// Experiment drivers shared by the benchmark binaries (bench/).
//
// These encode the paper's evaluation protocol (§4.1–4.2): range-relative
// error bounds {1e-2, 5e-3, 1e-3, 5e-4, 1e-4}, PSNR-matching of the
// fixed-rate cuZFP against FZ-GPU, kernel-time throughput from the device
// model, and the overall data-transfer throughput formula of §4.6.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "baselines/compressor.hpp"
#include "cudasim/device_model.hpp"
#include "datasets/generators.hpp"
#include "metrics/metrics.hpp"

namespace fz::bench {

/// The paper's five range-relative error bounds, largest first.
const std::vector<double>& paper_error_bounds();

struct Measurement {
  std::string compressor;
  std::string dataset;
  double rel_eb = 0;      ///< 0 for fixed-rate runs
  double bitrate_in = 0;  ///< requested rate (fixed-rate runs)
  double ratio = 0;
  double bitrate = 0;
  double psnr_db = 0;
  double max_abs_error = 0;
  double ssim = 0;
  double compress_seconds = 0;    ///< modeled device time
  double decompress_seconds = 0;  ///< modeled device time
  double throughput_gbps = 0;     ///< input_bytes / compress_seconds
  size_t input_bytes = 0;
  size_t compressed_bytes = 0;
  bool ok = true;                 ///< false when the compressor bailed
  std::string note;
};

/// Run one compressor on one field at one parameter and collect metrics.
/// `compute_ssim` is optional because SSIM is expensive on large 3-D data.
Measurement measure(const GpuCompressor& comp, const Field& field, double param,
                    const cudasim::DeviceModel& dev, bool compute_ssim = false);

/// The paper's cuZFP protocol: sweep bitrates and return the measurement
/// whose PSNR is closest to `target_psnr_db` (nullopt when no swept rate
/// gets within `tolerance_db`, mirroring the paper's missing bars).
std::optional<Measurement> match_cuzfp_psnr(const GpuCompressor& cuzfp,
                                            const Field& field,
                                            double target_psnr_db,
                                            const cudasim::DeviceModel& dev,
                                            double tolerance_db = 3.0,
                                            bool compute_ssim = false);

/// Overall CPU-GPU data-transfer throughput (paper §4.6):
///   T_overall = ((BW·CR)^-1 + T_compr^-1)^-1
double overall_throughput_gbps(double link_bw_gbps, double ratio,
                               double compress_throughput_gbps);

/// The evaluation fields at benchmark scale, with the paper's HACC
/// log-transform pre-applied.
std::vector<Field> evaluation_fields(double scale = 0.22, u64 seed = 42);

}  // namespace fz::bench
