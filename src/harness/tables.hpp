// Fixed-width table and CSV emitters for the benchmark binaries, so every
// figure/table reproduction prints the same rows the paper reports.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fz::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);
  /// Render as an aligned ASCII table.
  void print(std::ostream& os) const;
  /// Render as CSV (for downstream plotting).
  void print_csv(std::ostream& os) const;

  size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Number formatting helpers shared by the bench binaries.
std::string fmt(double v, int precision = 2);
std::string fmt_ratio(double v);
std::string fmt_gbps(double v);
std::string fmt_db(double v);

}  // namespace fz::bench
