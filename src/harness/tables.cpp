#include "harness/tables.hpp"

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace fz::bench {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  FZ_REQUIRE(cells.size() == headers_.size(), "table row arity mismatch");
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  // Plot-friendly output: FZ_BENCH_CSV=1 appends a CSV copy of each table.
  const bool also_csv = std::getenv("FZ_BENCH_CSV") != nullptr;
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto line = [&] {
    os << '+';
    for (const size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& row) {
    os << '|';
    for (size_t c = 0; c < row.size(); ++c)
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c])) << row[c]
         << " |";
    os << '\n';
  };
  line();
  emit(headers_);
  line();
  for (const auto& row : rows_) emit(row);
  line();
  if (also_csv) {
    os << "# csv\n";
    print_csv(os);
  }
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string fmt_ratio(double v) { return fmt(v, 1) + "x"; }
std::string fmt_gbps(double v) { return fmt(v, v >= 10 ? 1 : 2); }
std::string fmt_db(double v) { return fmt(v, 1); }

}  // namespace fz::bench
