#include "harness/experiment.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "datasets/transforms.hpp"
#include "metrics/ssim.hpp"

namespace fz::bench {

const std::vector<double>& paper_error_bounds() {
  static const std::vector<double> ebs{1e-2, 5e-3, 1e-3, 5e-4, 1e-4};
  return ebs;
}

namespace {

/// Size-emulation factor: ratio of this field's size to the paper's
/// full-scale field of the same dataset.  Fixed costs (kernel launches,
/// codebook builds) are charged at this relative weight so scaled proxy
/// fields report full-scale throughput (see DeviceModel::seconds).
double size_emulation_scale(const Field& field) {
  for (const Dataset ds : all_datasets()) {
    if (field.dataset == dataset_name(ds)) {
      const double full_bytes =
          static_cast<double>(dataset_info(ds).full_dims.count()) * sizeof(f32);
      return std::min(1.0, static_cast<double>(field.bytes()) / full_bytes);
    }
  }
  return 1.0;  // unknown dataset: charge fixed costs in full
}

}  // namespace

Measurement measure(const GpuCompressor& comp, const Field& field, double param,
                    const cudasim::DeviceModel& dev, bool compute_ssim) {
  Measurement m;
  m.compressor = comp.name();
  m.dataset = field.dataset;
  m.input_bytes = field.bytes();
  if (comp.mode() == GpuCompressor::Mode::ErrorBounded) {
    m.rel_eb = param;
  } else {
    m.bitrate_in = param;
  }
  if (!comp.supports(field)) {
    m.ok = false;
    m.note = "unsupported input";
    return m;
  }

  const RunResult r = comp.run(field, param);
  m.compressed_bytes = r.compressed_bytes;
  m.ratio = r.ratio();
  m.bitrate = r.bitrate();

  const DistortionStats d = distortion(field.values(), r.reconstructed);
  m.psnr_db = d.psnr_db;
  m.max_abs_error = d.max_abs_error;
  if (compute_ssim) m.ssim = ssim_field(field.values(), r.reconstructed, field.dims);

  const double fixed_scale = size_emulation_scale(field);
  for (const auto& c : r.compression_costs)
    m.compress_seconds += dev.seconds(c, fixed_scale);
  for (const auto& c : r.decompression_costs)
    m.decompress_seconds += dev.seconds(c, fixed_scale);
  if (r.native_compress_seconds > 0) {
    m.compress_seconds = r.native_compress_seconds;
    m.decompress_seconds = r.native_decompress_seconds;
  }
  m.throughput_gbps =
      m.compress_seconds > 0
          ? static_cast<double>(m.input_bytes) / 1e9 / m.compress_seconds
          : 0;
  return m;
}

std::optional<Measurement> match_cuzfp_psnr(const GpuCompressor& cuzfp,
                                            const Field& field,
                                            double target_psnr_db,
                                            const cudasim::DeviceModel& dev,
                                            double tolerance_db,
                                            bool compute_ssim) {
  FZ_REQUIRE(cuzfp.mode() == GpuCompressor::Mode::FixedRate,
             "psnr matching expects a fixed-rate compressor");
  // The paper "investigate[s] a series of bitrates and select[s] the
  // bitrates with the same average PSNR as ours".
  static const double rates[] = {0.5, 1,  1.5, 2,  2.5, 3,  3.5, 4,  5,  6,
                                 7,   8,  9,   10, 11,  12, 13,  14, 16, 18,
                                 20,  22, 24,  26, 28};
  std::optional<Measurement> best;
  double best_gap = tolerance_db;
  for (const double rate : rates) {
    Measurement m = measure(cuzfp, field, rate, dev, compute_ssim);
    const double gap = std::fabs(m.psnr_db - target_psnr_db);
    if (gap <= best_gap) {
      best_gap = gap;
      best = std::move(m);
    }
    // Rates are ascending, PSNR is monotone: once we overshoot well past
    // the target there is nothing better ahead.
    if (m.psnr_db > target_psnr_db + 2 * tolerance_db) break;
  }
  return best;
}

double overall_throughput_gbps(double link_bw_gbps, double ratio,
                               double compress_throughput_gbps) {
  FZ_REQUIRE(link_bw_gbps > 0 && ratio > 0 && compress_throughput_gbps > 0,
             "overall throughput: bad inputs");
  return 1.0 / (1.0 / (link_bw_gbps * ratio) + 1.0 / compress_throughput_gbps);
}

std::vector<Field> evaluation_fields(double scale, u64 seed) {
  std::vector<Field> fields = benchmark_suite(scale, seed);
  for (Field& f : fields) {
    // The paper evaluates the log-transformed HACC dataset (§4.1).
    if (f.dataset == "HACC") log_transform(f);
  }
  return fields;
}

}  // namespace fz::bench
