// Distortion and ratio metrics used by the evaluation (paper §4.2).
#pragma once

#include <span>

#include "common/types.hpp"

namespace fz {

struct DistortionStats {
  double max_abs_error = 0;
  double mse = 0;
  double psnr_db = 0;       ///< 20 log10(range) - 10 log10(mse)
  double value_range = 0;   ///< of the original data
  double nrmse = 0;         ///< sqrt(mse) / range
};

/// Compare reconstructed data against the original.
DistortionStats distortion(FloatSpan original, FloatSpan reconstructed);

/// True iff every |orig - recon| <= bound (+ tiny float slack).
bool error_bounded(FloatSpan original, FloatSpan reconstructed, double bound);

/// Compression ratio and bitrate (bits per value, 32 / ratio for f32).
struct RatioStats {
  double ratio = 0;
  double bitrate = 0;
};
RatioStats ratio_stats(size_t original_bytes, size_t compressed_bytes);

}  // namespace fz
