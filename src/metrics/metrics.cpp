#include "metrics/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace fz {

DistortionStats distortion(FloatSpan original, FloatSpan reconstructed) {
  FZ_REQUIRE(original.size() == reconstructed.size() && !original.empty(),
             "distortion: size mismatch");
  DistortionStats s;
  double vmin = original[0], vmax = original[0];
  double sum_sq = 0;
  for (size_t i = 0; i < original.size(); ++i) {
    const double d = static_cast<double>(original[i]) - reconstructed[i];
    s.max_abs_error = std::max(s.max_abs_error, std::fabs(d));
    sum_sq += d * d;
    vmin = std::min(vmin, static_cast<double>(original[i]));
    vmax = std::max(vmax, static_cast<double>(original[i]));
  }
  s.mse = sum_sq / static_cast<double>(original.size());
  s.value_range = vmax - vmin;
  if (s.mse <= 0) {
    s.psnr_db = 999.0;  // lossless reconstruction sentinel
    s.nrmse = 0;
  } else {
    s.psnr_db = 20.0 * std::log10(s.value_range) - 10.0 * std::log10(s.mse);
    s.nrmse = std::sqrt(s.mse) / s.value_range;
  }
  return s;
}

bool error_bounded(FloatSpan original, FloatSpan reconstructed, double bound) {
  FZ_REQUIRE(original.size() == reconstructed.size(), "size mismatch");
  // The reconstruction is stored as f32, so the achievable bound is the
  // requested one plus half an ulp at the value's magnitude (f32 epsilon
  // 2^-23) — the standard caveat of every f32-output error-bounded
  // compressor.
  for (size_t i = 0; i < original.size(); ++i) {
    const double d = std::fabs(static_cast<double>(original[i]) - reconstructed[i]);
    const double slack = bound * 1e-6 +
                         std::fabs(static_cast<double>(original[i])) * 6e-8 +
                         1e-30;
    if (d > bound + slack) return false;
  }
  return true;
}

RatioStats ratio_stats(size_t original_bytes, size_t compressed_bytes) {
  RatioStats r;
  if (compressed_bytes == 0) return r;
  r.ratio = static_cast<double>(original_bytes) / static_cast<double>(compressed_bytes);
  r.bitrate = 32.0 / r.ratio;
  return r;
}

}  // namespace fz
