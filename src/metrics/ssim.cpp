#include "metrics/ssim.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace fz {

namespace {

/// SSIM of one window pair given accumulated moments.
double ssim_from_moments(double sum_a, double sum_b, double sum_aa,
                         double sum_bb, double sum_ab, double n, double c1,
                         double c2) {
  const double mu_a = sum_a / n;
  const double mu_b = sum_b / n;
  const double var_a = std::max(sum_aa / n - mu_a * mu_a, 0.0);
  const double var_b = std::max(sum_bb / n - mu_b * mu_b, 0.0);
  const double cov = sum_ab / n - mu_a * mu_b;
  const double num = (2 * mu_a * mu_b + c1) * (2 * cov + c2);
  const double den = (mu_a * mu_a + mu_b * mu_b + c1) * (var_a + var_b + c2);
  return den == 0 ? 1.0 : num / den;
}

double dynamic_range(FloatSpan a) {
  const auto [lo, hi] = std::minmax_element(a.begin(), a.end());
  return static_cast<double>(*hi) - static_cast<double>(*lo);
}

}  // namespace

double ssim_2d(FloatSpan a, FloatSpan b, size_t nx, size_t ny,
               const SsimParams& params) {
  FZ_REQUIRE(a.size() == b.size() && a.size() == nx * ny, "ssim: size mismatch");
  const int w = params.window;
  FZ_REQUIRE(w > 0 && static_cast<size_t>(w) <= nx && static_cast<size_t>(w) <= ny,
             "ssim: window larger than field");
  const double range = dynamic_range(a);
  const double c1 = (params.k1 * range) * (params.k1 * range);
  const double c2 = (params.k2 * range) * (params.k2 * range);
  const size_t stride = static_cast<size_t>(std::max(params.stride, 1));

  const size_t wy_count = (ny - static_cast<size_t>(w)) / stride + 1;
  std::vector<double> row_sums(wy_count, 0.0);
  std::vector<u64> row_counts(wy_count, 0);
  parallel_for(0, wy_count, [&](size_t wy_idx) {
    const size_t wy = wy_idx * stride;
    double acc = 0;
    u64 cnt = 0;
    for (size_t wx = 0; wx + static_cast<size_t>(w) <= nx; wx += stride) {
      double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
      for (int dy = 0; dy < w; ++dy) {
        const size_t base = wx + nx * (wy + static_cast<size_t>(dy));
        for (int dx = 0; dx < w; ++dx) {
          const double va = a[base + static_cast<size_t>(dx)];
          const double vb = b[base + static_cast<size_t>(dx)];
          sa += va;
          sb += vb;
          saa += va * va;
          sbb += vb * vb;
          sab += va * vb;
        }
      }
      acc += ssim_from_moments(sa, sb, saa, sbb, sab,
                               static_cast<double>(w) * w, c1, c2);
      ++cnt;
    }
    row_sums[wy_idx] = acc;
    row_counts[wy_idx] = cnt;
  });
  double total = 0;
  u64 count = 0;
  for (size_t i = 0; i < wy_count; ++i) {
    total += row_sums[i];
    count += row_counts[i];
  }
  return count == 0 ? 1.0 : total / static_cast<double>(count);
}

double ssim_field(FloatSpan a, FloatSpan b, Dims dims, const SsimParams& params) {
  FZ_REQUIRE(a.size() == b.size() && a.size() == dims.count(), "ssim: size mismatch");
  if (dims.rank() == 1) {
    // 1-D: windows along the only axis.
    const double range = dynamic_range(a);
    const double c1 = (params.k1 * range) * (params.k1 * range);
    const double c2 = (params.k2 * range) * (params.k2 * range);
    const size_t w = static_cast<size_t>(params.window) * params.window;
    if (a.size() < w) return 1.0;
    double total = 0;
    u64 count = 0;
    for (size_t off = 0; off + w <= a.size();
         off += static_cast<size_t>(std::max(params.stride, 1)) * 8) {
      double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
      for (size_t i = off; i < off + w; ++i) {
        const double va = a[i], vb = b[i];
        sa += va;
        sb += vb;
        saa += va * va;
        sbb += vb * vb;
        sab += va * vb;
      }
      total += ssim_from_moments(sa, sb, saa, sbb, sab, static_cast<double>(w),
                                 c1, c2);
      ++count;
    }
    return count == 0 ? 1.0 : total / static_cast<double>(count);
  }
  if (dims.rank() == 2) return ssim_2d(a, b, dims.x, dims.y, params);
  // 3-D: mean over z-slices (with a stride-sized step to bound cost on
  // large fields).
  double total = 0;
  u64 count = 0;
  const size_t plane = dims.x * dims.y;
  for (size_t iz = 0; iz < dims.z; ++iz) {
    total += ssim_2d(a.subspan(iz * plane, plane), b.subspan(iz * plane, plane),
                     dims.x, dims.y, params);
    ++count;
  }
  return total / static_cast<double>(count);
}

}  // namespace fz
