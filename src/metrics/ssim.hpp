// Structural Similarity Index (SSIM) for reconstructed-quality evaluation
// (paper §4.7, Fig. 12).  The standard windowed formulation (Wang et al.;
// see also "Understanding SSIM", arXiv:2006.13846) applied to 2-D data;
// 3-D fields are scored as the mean SSIM over their z-slices.
#pragma once

#include "common/types.hpp"

namespace fz {

struct SsimParams {
  int window = 8;       ///< square window edge (non-overlapping mean if stride==window)
  int stride = 1;       ///< sliding-window stride
  double k1 = 0.01;
  double k2 = 0.03;
};

/// Mean SSIM between two 2-D fields of extent (nx, ny).
/// `dynamic_range` defaults to the original data's value range.
double ssim_2d(FloatSpan a, FloatSpan b, size_t nx, size_t ny,
               const SsimParams& params = {});

/// Mean SSIM over z-slices of a 3-D field; falls back to 1-D windows for
/// rank-1 data.
double ssim_field(FloatSpan a, FloatSpan b, Dims dims,
                  const SsimParams& params = {});

}  // namespace fz
