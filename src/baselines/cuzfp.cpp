#include "baselines/cuzfp.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "substrate/bitio.hpp"

namespace fz::bench {

namespace {

using cudasim::CostSheet;

constexpr u32 kZfpMagic = 0x50465a43u;  // "CZFP"
constexpr int kEbias = 127;             // f32 exponent bias for emax coding

#pragma pack(push, 1)
struct ZfpHeader {
  u32 magic;
  u8 rank;
  u8 pad[3];
  u64 nx, ny, nz;
  f64 rate;             // bits per value
  u64 payload_words;    // u64 words of bit stream
  u64 payload_bits;
};
#pragma pack(pop)

// ---- per-block geometry -----------------------------------------------------

int block_values(int rank) { return 1 << (2 * rank); }  // 4, 16, 64

/// Total-sequency ordering of block coefficients (low frequencies first).
/// Any fixed permutation round-trips; sorting by i+j+k puts energy early,
/// which is what makes truncation graceful (zfp's PERM tables do the same).
const std::vector<int>& sequency_order(int rank) {
  static const std::vector<int> orders[3] = {
      [] {
        std::vector<int> o(4);
        std::iota(o.begin(), o.end(), 0);
        return o;
      }(),
      [] {
        std::vector<int> o(16);
        std::iota(o.begin(), o.end(), 0);
        std::stable_sort(o.begin(), o.end(), [](int a, int b) {
          return (a % 4 + a / 4) < (b % 4 + b / 4);
        });
        return o;
      }(),
      [] {
        std::vector<int> o(64);
        std::iota(o.begin(), o.end(), 0);
        auto deg = [](int i) { return i % 4 + (i / 4) % 4 + i / 16; };
        std::stable_sort(o.begin(), o.end(),
                         [&](int a, int b) { return deg(a) < deg(b); });
        return o;
      }(),
  };
  return orders[rank - 1];
}

// ---- lifting transform (zfp's non-orthogonal transform) ---------------------

void fwd_lift(i32* p, size_t s) {
  i32 x = p[0 * s], y = p[1 * s], z = p[2 * s], w = p[3 * s];
  x += w; x >>= 1; w -= x;
  z += y; z >>= 1; y -= z;
  x += z; x >>= 1; z -= x;
  w += y; w >>= 1; y -= w;
  w += y >> 1; y -= w >> 1;
  p[0 * s] = x; p[1 * s] = y; p[2 * s] = z; p[3 * s] = w;
}

void inv_lift(i32* p, size_t s) {
  // Each line undoes one forward step, in reverse order (the >>1 in the
  // forward pass drops one bit, so the pair is near- but not bit-exact —
  // same as zfp's).
  i32 x = p[0 * s], y = p[1 * s], z = p[2 * s], w = p[3 * s];
  y += w >> 1; w -= y >> 1;
  y += w; w <<= 1; w -= y;
  z += x; x <<= 1; x -= z;
  y += z; z <<= 1; z -= y;
  w += x; x <<= 1; x -= w;
  p[0 * s] = x; p[1 * s] = y; p[2 * s] = z; p[3 * s] = w;
}

void fwd_transform(i32* b, int rank) {
  if (rank == 1) {
    fwd_lift(b, 1);
    return;
  }
  if (rank == 2) {
    for (int y = 0; y < 4; ++y) fwd_lift(b + 4 * y, 1);
    for (int x = 0; x < 4; ++x) fwd_lift(b + x, 4);
    return;
  }
  for (int z = 0; z < 4; ++z)
    for (int y = 0; y < 4; ++y) fwd_lift(b + 4 * y + 16 * z, 1);
  for (int z = 0; z < 4; ++z)
    for (int x = 0; x < 4; ++x) fwd_lift(b + x + 16 * z, 4);
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 4; ++x) fwd_lift(b + x + 4 * y, 16);
}

void inv_transform(i32* b, int rank) {
  if (rank == 1) {
    inv_lift(b, 1);
    return;
  }
  if (rank == 2) {
    for (int x = 0; x < 4; ++x) inv_lift(b + x, 4);
    for (int y = 0; y < 4; ++y) inv_lift(b + 4 * y, 1);
    return;
  }
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 4; ++x) inv_lift(b + x + 4 * y, 16);
  for (int z = 0; z < 4; ++z)
    for (int x = 0; x < 4; ++x) inv_lift(b + x + 16 * z, 4);
  for (int z = 0; z < 4; ++z)
    for (int y = 0; y < 4; ++y) inv_lift(b + 4 * y + 16 * z, 1);
}

// ---- negabinary -------------------------------------------------------------

u32 int2uint(i32 v) {
  return (static_cast<u32>(v) + 0xaaaaaaaau) ^ 0xaaaaaaaau;
}
i32 uint2int(u32 v) {
  return static_cast<i32>((v ^ 0xaaaaaaaau) - 0xaaaaaaaau);
}

// ---- bit-plane coding (zfp's group-testing scheme) ---------------------------

void encode_ints(BitWriterLsb& s, const u32* data, int size, int maxbits) {
  int bits = maxbits;
  for (int k = 32, n = 0; bits && k-- > 0;) {
    // Gather bit plane k across the block.
    u64 x = 0;
    for (int i = 0; i < size; ++i)
      x += static_cast<u64>((data[i] >> k) & 1u) << i;
    // First n coefficients are known-significant: verbatim.
    const int m = std::min(n, bits);
    bits -= m;
    s.put_bits(x, m);
    // m can equal 64 (every coefficient of a 3D block significant) and a
    // full-width shift is undefined.
    x = m < 64 ? x >> m : 0;
    // Group-test the rest (original zfp control flow): the outer bit asks
    // "any significant coefficient left in this plane?", the inner bits
    // emit the run of zeros up to (and including) the next significant one.
    for (; n < size && bits && (bits--, s.put_bit_r(x != 0)); x >>= 1, n++)
      for (; n < size - 1 && bits && (bits--, !s.put_bit_r(x & 1u)); x >>= 1, n++)
        ;
  }
  // Fixed rate: pad the block to its exact budget.
  while (bits-- > 0) s.put_bit(false);
}

void decode_ints(BitReaderLsb& s, u32* data, int size, int maxbits) {
  std::fill_n(data, size, 0u);
  int bits = maxbits;
  for (int k = 32, n = 0; bits && k-- > 0;) {
    const int m = std::min(n, bits);
    bits -= m;
    u64 x = s.get_bits(m);
    for (; n < size && bits && (bits--, s.get_bit()); x += u64{1} << n++)
      for (; n < size - 1 && bits && (bits--, !s.get_bit()); n++)
        ;
    for (int i = 0; x; ++i, x >>= 1)
      if (x & 1u) data[i] += 1u << k;
  }
  // Skip the padding so the next block starts at its fixed offset.
  while (bits-- > 0) s.get_bit();
}

// ---- block gather/scatter with edge replication ------------------------------

void gather_block(FloatSpan d, Dims dims, size_t bx, size_t by, size_t bz,
                  int rank, f32* block) {
  auto clamp = [](size_t v, size_t n) { return v < n ? v : n - 1; };
  int idx = 0;
  const int ze = rank >= 3 ? 4 : 1;
  const int ye = rank >= 2 ? 4 : 1;
  for (int z = 0; z < ze; ++z)
    for (int y = 0; y < ye; ++y)
      for (int x = 0; x < 4; ++x)
        block[idx++] = d[dims.linear(clamp(bx * 4 + x, dims.x),
                                     clamp(by * 4 + y, dims.y),
                                     clamp(bz * 4 + z, dims.z))];
}

void scatter_block(std::span<f32> d, Dims dims, size_t bx, size_t by, size_t bz,
                   int rank, const f32* block) {
  int idx = 0;
  const int ze = rank >= 3 ? 4 : 1;
  const int ye = rank >= 2 ? 4 : 1;
  for (int z = 0; z < ze; ++z)
    for (int y = 0; y < ye; ++y)
      for (int x = 0; x < 4; ++x, ++idx) {
        const size_t ix = bx * 4 + x, iy = by * 4 + y, iz = bz * 4 + z;
        if (ix < dims.x && iy < dims.y && iz < dims.z)
          d[dims.linear(ix, iy, iz)] = block[idx];
      }
}

int block_budget_bits(double rate, int size) {
  // At least the zero flag + emax so every block is self-delimiting.
  return std::max(static_cast<int>(std::llround(rate * size)), 10);
}

}  // namespace

std::vector<u8> zfp_compress(FloatSpan data, Dims dims, double rate) {
  FZ_REQUIRE(data.size() == dims.count() && !data.empty(), "zfp: bad input");
  FZ_REQUIRE(rate > 0 && rate <= 32, "zfp: rate out of range");
  const int rank = dims.rank();
  const int size = block_values(rank);
  const auto& order = sequency_order(rank);
  const int maxbits = block_budget_bits(rate, size);

  const size_t nbx = div_ceil(dims.x, 4);
  const size_t nby = rank >= 2 ? div_ceil(dims.y, 4) : 1;
  const size_t nbz = rank >= 3 ? div_ceil(dims.z, 4) : 1;

  BitWriterLsb bw;
  f32 fblock[64];
  i32 iblock[64];
  u32 ublock[64];
  for (size_t bz = 0; bz < nbz; ++bz)
    for (size_t by = 0; by < nby; ++by)
      for (size_t bx = 0; bx < nbx; ++bx) {
        gather_block(data, dims, bx, by, bz, rank, fblock);
        f32 maxabs = 0;
        for (int i = 0; i < size; ++i)
          maxabs = std::max(maxabs, std::fabs(fblock[i]));
        int used = 0;
        if (maxabs == 0) {
          bw.put_bit(false);  // empty block
          used = 1;
        } else {
          bw.put_bit(true);
          const int e = std::ilogb(maxabs);
          bw.put_bits(static_cast<u64>(e + kEbias + 32), 9);
          // Block floating point: |q| < 2^29 leaves lifting headroom.
          for (int i = 0; i < size; ++i)
            iblock[i] = static_cast<i32>(
                std::ldexp(static_cast<double>(fblock[i]), 28 - e));
          fwd_transform(iblock, rank);
          for (int i = 0; i < size; ++i)
            ublock[i] = int2uint(iblock[order[static_cast<size_t>(i)]]);
          encode_ints(bw, ublock, size, maxbits - 10);
          used = maxbits;
        }
        // Pad empty blocks to the fixed budget too (fixed-rate layout).
        for (; used < maxbits; ++used) bw.put_bit(false);
      }

  const size_t payload_bits = bw.bit_count();
  const std::vector<u64> words = bw.take();

  std::vector<u8> stream;
  ZfpHeader h{};
  h.magic = kZfpMagic;
  h.rank = static_cast<u8>(rank);
  h.nx = dims.x;
  h.ny = dims.y;
  h.nz = dims.z;
  h.rate = rate;
  h.payload_words = words.size();
  h.payload_bits = payload_bits;
  ByteWriter w(stream);
  w.put(h);
  w.put_bytes(ByteSpan{reinterpret_cast<const u8*>(words.data()),
                       words.size() * sizeof(u64)});
  return stream;
}

std::vector<f32> zfp_decompress(ByteSpan stream, Dims* dims_out) {
  ByteReader rd(stream);
  const ZfpHeader h = rd.get<ZfpHeader>();
  FZ_FORMAT_REQUIRE(h.magic == kZfpMagic, "not a zfp stream");
  FZ_FORMAT_REQUIRE(h.rank >= 1 && h.rank <= 3, "zfp: bad rank");
  const Dims dims{h.nx, h.ny, h.nz};
  FZ_FORMAT_REQUIRE(dims.count() > 0, "zfp: bad dims");
  // Every block costs >= 10 bits and covers <= 64 values; reject corrupt
  // dims before allocating the output array.
  FZ_FORMAT_REQUIRE(dims.count() <= h.payload_bits * 8, "zfp: dims exceed payload");
  const ByteSpan payload = rd.get_bytes(h.payload_words * sizeof(u64));
  std::vector<u64> words(h.payload_words);
  std::memcpy(words.data(), payload.data(), payload.size());

  const int rank = h.rank;
  const int size = block_values(rank);
  const auto& order = sequency_order(rank);
  const int maxbits = block_budget_bits(h.rate, size);

  const size_t nbx = div_ceil(dims.x, 4);
  const size_t nby = rank >= 2 ? div_ceil(dims.y, 4) : 1;
  const size_t nbz = rank >= 3 ? div_ceil(dims.z, 4) : 1;
  FZ_FORMAT_REQUIRE(h.payload_bits >= nbx * nby * nbz, "zfp: truncated payload");

  BitReaderLsb br(words, h.payload_bits);
  std::vector<f32> out(dims.count(), 0.0f);
  f32 fblock[64];
  i32 iblock[64];
  u32 ublock[64];
  for (size_t bz = 0; bz < nbz; ++bz)
    for (size_t by = 0; by < nby; ++by)
      for (size_t bx = 0; bx < nbx; ++bx) {
        int used = 1;
        if (!br.get_bit()) {
          std::fill_n(fblock, size, 0.0f);
        } else {
          const int e = static_cast<int>(br.get_bits(9)) - kEbias - 32;
          used += 9;
          decode_ints(br, ublock, size, maxbits - 10);
          used = maxbits;
          for (int i = 0; i < size; ++i)
            iblock[order[static_cast<size_t>(i)]] = uint2int(ublock[i]);
          inv_transform(iblock, rank);
          for (int i = 0; i < size; ++i)
            fblock[i] = static_cast<f32>(
                std::ldexp(static_cast<double>(iblock[i]), e - 28));
        }
        for (; used < maxbits; ++used) br.get_bit();
        scatter_block(out, dims, bx, by, bz, rank, fblock);
      }
  if (dims_out != nullptr) *dims_out = dims;
  return out;
}

RunResult CuzfpCompressor::run(const Field& field, double rate) const {
  RunResult r;
  r.compressor = name();
  r.input_bytes = field.bytes();

  const std::vector<u8> stream = zfp_compress(field.values(), field.dims, rate);
  r.compressed_bytes = stream.size();
  r.reconstructed = zfp_decompress(stream);

  // Cost model: one kernel; compute-heavy per block (lifting + bit-plane
  // serialization dominate), DRAM traffic read 4n + write rate·n/8.  The
  // group-testing inner loop serializes on the per-block bit cursor, which
  // is why real cuZFP falls short of the bandwidth bound.
  const size_t n = field.count();
  CostSheet c;
  c.name = "zfp-encode";
  c.kernel_launches = 1;
  c.global_bytes_read = n * sizeof(f32);
  c.global_bytes_written =
      static_cast<u64>(static_cast<double>(n) * rate / 8.0);
  const int rank = field.dims.rank();
  // Lifting passes plus the group-testing plane coder, whose per-block bit
  // cursor serializes lanes — cuZFP is compute-bound, which is why its
  // throughput barely changes between A100 and A4000 (paper §4.4).
  c.thread_ops = n * (300 + 25 * static_cast<u64>(rank)) +
                 static_cast<u64>(static_cast<double>(n) * rate * 6.0);
  r.compression_costs.push_back(c);

  CostSheet dc = c;
  dc.name = "zfp-decode";
  std::swap(dc.global_bytes_read, dc.global_bytes_written);
  r.decompression_costs.push_back(dc);
  return r;
}

}  // namespace fz::bench
