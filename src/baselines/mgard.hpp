// MGARD-GPU baseline (Chen et al., IPDPS'21): multigrid-based hierarchical
// data refactoring.  This implementation decomposes the field over a dyadic
// node hierarchy: the coarsest grid is quantized directly, then each finer
// level's "detail" nodes are predicted by multilinear interpolation from
// the already-reconstructed coarser grid and their residuals quantized.
// Predicting from *reconstructed* values keeps the per-node error exactly
// bounded; the quantizer uses eb/2, reproducing MGARD's characteristic
// over-preservation (paper §4.3: "MGARD-GPU has higher PSNR on all datasets
// because [it] over-preserves the data distortion").  The refactored
// coefficients are entropy-coded with a DEFLATE-like LZ77+Huffman back end
// executed on the host — the serial phase that caps MGARD-GPU's throughput
// (paper §1: "MGARD-GPU uses DEFLATE ... on the CPU, causing low
// throughput").
#pragma once

#include "baselines/compressor.hpp"

namespace fz::bench {

class MgardCompressor final : public GpuCompressor {
 public:
  std::string name() const override { return "MGARD-GPU"; }
  RunResult run(const Field& field, double rel_eb) const override;

  /// The paper: "due to memory issues, MGARD-GPU cannot work correctly on
  /// 1D datasets" — reproduced as an explicit capability limit.
  bool supports(const Field& field) const override {
    return field.dims.rank() >= 2;
  }
};

}  // namespace fz::bench
