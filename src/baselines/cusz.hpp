// cuSZ baseline (Tian et al., PACT'20): dual-quantization with radius
// shift + outlier separation, followed by coarse-grained GPU Huffman
// encoding of the quantization codes.
//
// Variants:
//  * "cuSZ"      — full pipeline including the Huffman codebook build.
//  * "cuSZ-ncb"  — codebook-build time excluded from the device model (the
//    paper's comparison point: that phase can run on the CPU).
//  * "cuSZ-RLE"  — run-length encoding in place of Huffman, the high-error-
//    bound optimization of Tian et al. (CLUSTER'21, paper reference [32]).
#pragma once

#include "baselines/compressor.hpp"

namespace fz::bench {

class CuszCompressor final : public GpuCompressor {
 public:
  enum class Encoding { Huffman, Rle };

  explicit CuszCompressor(bool include_codebook_build,
                          Encoding encoding = Encoding::Huffman)
      : include_codebook_build_(include_codebook_build), encoding_(encoding) {}

  std::string name() const override {
    if (encoding_ == Encoding::Rle) return "cuSZ-RLE";
    return include_codebook_build_ ? "cuSZ" : "cuSZ-ncb";
  }
  RunResult run(const Field& field, double rel_eb) const override;
  bool supports(const Field& field) const override;

  static constexpr u32 kRadius = 512;
  static constexpr size_t kNumBins = 2 * kRadius;  // codes in [0, 1024)

 private:
  bool include_codebook_build_;
  Encoding encoding_;
};

std::unique_ptr<GpuCompressor> make_cusz_rle();

}  // namespace fz::bench
