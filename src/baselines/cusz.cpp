#include "baselines/cusz.hpp"

#include <algorithm>
#include <cstring>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "core/costs.hpp"
#include "core/lorenzo.hpp"
#include "core/pipeline.hpp"
#include "core/quantizer.hpp"
#include "substrate/bitio.hpp"
#include "substrate/histogram.hpp"
#include "substrate/huffman.hpp"
#include "substrate/rle.hpp"

namespace fz::bench {

namespace {

using cudasim::CostSheet;

constexpr u32 kCuszMagic = 0x5a535543u;  // "CUSZ"

#pragma pack(push, 1)
struct CuszHeader {
  u32 magic;
  u8 rank;
  u8 pad[3];
  u64 nx, ny, nz;
  u64 count;
  f64 abs_eb;
  u32 radius;
  u64 outlier_count;
  u64 huffman_bytes;
};
#pragma pack(pop)

CostSheet histogram_cost(size_t n) {
  CostSheet c;
  c.name = "histogram";
  c.kernel_launches = 1;
  c.global_bytes_read = n * sizeof(u16);
  c.global_bytes_written = CuszCompressor::kNumBins * sizeof(u32) * 64;  // per-SM partials
  c.thread_ops = n * 4;
  // Shared-memory atomics contend on hot bins.
  c.shared_transactions = n * 2;
  return c;
}

CostSheet huffman_encode_cost(size_t n, size_t encoded_bytes) {
  CostSheet c;
  c.name = "huffman-encode";
  c.kernel_launches = 2;  // per-symbol code gather + chunk merge
  c.global_bytes_read = n * sizeof(u16) + n * sizeof(u32);  // codes + codebook hits
  c.global_bytes_written = encoded_bytes;
  // Variable-length bit packing: shift/or chains, atomic bit-cursor
  // bookkeeping, and irregular shared-buffer writes per symbol (the paper:
  // "irregular memory access ... the number of bits varies for each
  // symbol").  Compute-bound: this is what keeps cuSZ-ncb at roughly half
  // of FZ-GPU's throughput (paper 4.4).
  c.thread_ops = n * 180;
  c.shared_transactions = n * 10;
  return c;
}

CostSheet codebook_cost() {
  CostSheet c;
  c.name = "huffman-codebook";
  c.kernel_launches = 1;
  // Size-independent: the dominant, roughly constant phase the paper
  // identifies ("the Huffman codebook generating time in cuSZ is almost
  // the same among all datasets").
  c.fixed_ns = codebook_build_serial_ns(CuszCompressor::kNumBins);
  return c;
}

CostSheet rle_encode_cost(size_t n, size_t encoded_bytes) {
  CostSheet c;
  c.name = "rle-encode";
  c.kernel_launches = 2;  // run-boundary scan + compaction
  c.global_bytes_read = n * sizeof(u16) * 2;
  c.global_bytes_written = encoded_bytes;
  // Boundary detection + prefix sum over runs: regular accesses, few ops —
  // this is why [32] uses RLE to dodge Huffman's irregularity.
  c.thread_ops = n * 10;
  return c;
}

CostSheet outlier_cost(size_t outliers) {
  CostSheet c;
  c.name = "outlier-gather";
  c.kernel_launches = 1;
  c.global_bytes_read = outliers * 16;
  c.global_bytes_written = outliers * 16;
  c.thread_ops = outliers * 4;
  return c;
}

}  // namespace

bool CuszCompressor::supports(const Field& field) const {
  // The paper: "cuSZ cannot work correctly on 3D QMCPACK due to a Huffman
  // encoding error; therefore, we apply cuSZ on the 1D QMCPACK (flattened)".
  // Our implementation has no such defect, so everything is supported; the
  // harness flattens QMCPACK for cuSZ to mirror the paper's protocol.
  (void)field;
  return true;
}

RunResult CuszCompressor::run(const Field& field, double rel_eb) const {
  RunResult r;
  r.compressor = name();
  r.input_bytes = field.bytes();

  const double abs_eb = field.resolve_eb(ErrorBound::relative(rel_eb));
  FZ_REQUIRE(abs_eb > 0, "bad error bound");

  // --- compression ---------------------------------------------------------
  std::vector<i64> pq(field.count());
  prequantize(field.values(), abs_eb, pq);
  lorenzo_forward(pq, field.dims, pq);
  QuantV1Result q = quant_encode_v1(pq, kRadius);

  const std::vector<u8> huff = encoding_ == Encoding::Huffman
                                   ? huffman_compress(q.codes, kNumBins)
                                   : rle_encode(q.codes);

  std::vector<u8> stream;
  CuszHeader h{};
  h.magic = kCuszMagic;
  h.rank = static_cast<u8>(field.dims.rank());
  h.nx = field.dims.x;
  h.ny = field.dims.y;
  h.nz = field.dims.z;
  h.count = field.count();
  h.abs_eb = abs_eb;
  h.radius = kRadius;
  h.outlier_count = q.outliers.size();
  h.huffman_bytes = huff.size();
  ByteWriter w(stream);
  w.put(h);
  w.put_bytes(huff);
  for (const Outlier& o : q.outliers) {
    w.put<u32>(static_cast<u32>(o.index));
    w.put<i32>(static_cast<i32>(o.delta));
  }
  r.compressed_bytes = stream.size();

  // Compression cost: pred-quant v1 + histogram + codebook build (unless
  // -ncb) + Huffman encode + outlier gather.
  FzStats st;
  st.count = field.count();
  st.outliers = q.outliers.size();
  FzParams v1;
  v1.quant = QuantVersion::V1Original;
  v1.fused_host_graph = false;
  r.compression_costs.push_back(fz_compression_costs(st, v1).front());
  if (encoding_ == Encoding::Huffman) {
    r.compression_costs.push_back(histogram_cost(st.count));
    if (include_codebook_build_) r.compression_costs.push_back(codebook_cost());
    r.compression_costs.push_back(huffman_encode_cost(st.count, huff.size()));
  } else {
    r.compression_costs.push_back(rle_encode_cost(st.count, huff.size()));
  }
  r.compression_costs.push_back(outlier_cost(q.outliers.size()));

  // --- decompression -------------------------------------------------------
  ByteReader rd(stream);
  const CuszHeader h2 = rd.get<CuszHeader>();
  FZ_FORMAT_REQUIRE(h2.magic == kCuszMagic, "not a cuSZ stream");
  const ByteSpan huff_bytes = rd.get_bytes(h2.huffman_bytes);
  QuantV1Result dq;
  dq.radius = h2.radius;
  {
    std::vector<u16> codes = encoding_ == Encoding::Huffman
                                 ? huffman_decompress(huff_bytes)
                                 : rle_decode(huff_bytes, h2.count);
    FZ_FORMAT_REQUIRE(codes.size() == h2.count, "code count mismatch");
    dq.codes = std::move(codes);
  }
  dq.outliers.resize(h2.outlier_count);
  for (auto& o : dq.outliers) {
    o.index = rd.get<u32>();
    o.delta = rd.get<i32>();
  }
  std::vector<i64> deltas(h2.count);
  quant_decode_v1(dq, deltas);
  lorenzo_inverse(deltas, field.dims, deltas);
  r.reconstructed.resize(h2.count);
  dequantize(deltas, h2.abs_eb, r.reconstructed);

  // Decompression cost mirrors compression minus the codebook build
  // (decode reuses the serialized lengths).  The Huffman tail is the
  // segment-parallel gap-array decode the stream now carries offsets for.
  if (encoding_ == Encoding::Huffman) {
    r.decompression_costs.push_back(huffman_gap_decode_cost(
        st.count, huff.size(),
        huffman_gap_bytes(st.count, kHuffDefaultChunk, kHuffDefaultSegment)));
  } else {
    CostSheet dec;
    dec.name = "rle-decode";
    dec.kernel_launches = 2;
    dec.global_bytes_read = huff.size() + st.count * sizeof(u32);
    dec.global_bytes_written = st.count * sizeof(u16);
    dec.thread_ops = st.count * 8;
    r.decompression_costs.push_back(dec);
  }
  auto inv = fz_decompression_costs(st, v1);
  r.decompression_costs.push_back(inv.back());  // inverse pred-quant
  r.decompression_costs.push_back(outlier_cost(q.outliers.size()));
  return r;
}

}  // namespace fz::bench
