// cuSZx baseline (Yu et al., HPDC'22): an ultrafast error-bounded
// compressor that splits the input into fixed-size blocks and handles
// *constant* blocks (whole block reproducible by one value within the
// bound) with a single float, and non-constant blocks with lightweight
// per-block fixed-width bit packing of quantized offsets.  Block-wise
// redundancy only — hence very high throughput but modest ratios
// (paper §4.3/§4.4).
#pragma once

#include "baselines/compressor.hpp"

namespace fz::bench {

class CuszxCompressor final : public GpuCompressor {
 public:
  std::string name() const override { return "cuSZx"; }
  RunResult run(const Field& field, double rel_eb) const override;

  static constexpr size_t kBlockSize = 128;
};

/// Standalone codec entry points (used by tests and the simulated kernels).
/// Payload layout per 128-value block:
///   [u8 tag][f32 mid]              tag = 0: constant block
///   [u8 tag][f32 mid][packed bits] tag = b: b-bit zigzag codes, MSB-first
std::vector<u8> szx_encode_payload(FloatSpan data, double abs_eb);
std::vector<f32> szx_decode_payload(ByteSpan payload, size_t count,
                                    double abs_eb);

}  // namespace fz::bench
