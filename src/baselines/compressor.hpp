// Common interface for all evaluated GPU compressors (paper §4.1).
//
// Each implementation compresses to a real self-describing byte stream and
// decompresses it back, returning (a) the reconstruction, (b) the modeled
// device cost sheets for compression and decompression, and (c) algorithm
// statistics.  Error-bounded compressors take a range-relative error bound;
// cuZFP (fixed-rate mode only, like the real one) takes a bitrate instead —
// the harness PSNR-matches it against FZ-GPU exactly as the paper does.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "cudasim/cost_sheet.hpp"
#include "datasets/field.hpp"

namespace fz::bench {

struct RunResult {
  std::string compressor;
  size_t input_bytes = 0;
  size_t compressed_bytes = 0;
  std::vector<f32> reconstructed;
  std::vector<cudasim::CostSheet> compression_costs;
  std::vector<cudasim::CostSheet> decompression_costs;
  /// Native wall-clock seconds (CPU implementations only; 0 for modeled).
  double native_compress_seconds = 0;
  double native_decompress_seconds = 0;

  double ratio() const {
    return compressed_bytes == 0
               ? 0
               : static_cast<double>(input_bytes) / compressed_bytes;
  }
  double bitrate() const { return ratio() == 0 ? 0 : 32.0 / ratio(); }
  cudasim::CostSheet total_compression_cost() const {
    return cudasim::sum(compression_costs, compressor);
  }
};

class GpuCompressor {
 public:
  enum class Mode { ErrorBounded, FixedRate };

  virtual ~GpuCompressor() = default;
  virtual std::string name() const = 0;
  virtual Mode mode() const { return Mode::ErrorBounded; }

  /// `param` is a range-relative error bound for error-bounded compressors
  /// and a bitrate (bits/value) for fixed-rate ones.
  virtual RunResult run(const Field& field, double param) const = 0;

  /// Some baselines cannot handle every input (the paper: MGARD-GPU fails
  /// on 1-D data; cuSZ needs QMCPACK flattened to 1-D).
  virtual bool supports(const Field& field) const {
    (void)field;
    return true;
  }
};

/// All five evaluated compressors, in the paper's order:
/// FZ-GPU, cuSZ, cuSZ-ncb, cuZFP, cuSZx, MGARD-GPU.
std::vector<std::unique_ptr<GpuCompressor>> make_all_compressors();

std::unique_ptr<GpuCompressor> make_fzgpu();
std::unique_ptr<GpuCompressor> make_cusz(bool include_codebook_build = true);
std::unique_ptr<GpuCompressor> make_cuszx();
std::unique_ptr<GpuCompressor> make_cuzfp();
std::unique_ptr<GpuCompressor> make_mgard();

}  // namespace fz::bench
