#include "baselines/cuszx.hpp"

#include <algorithm>
#include <cmath>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "substrate/bitio.hpp"

namespace fz::bench {

namespace {

using cudasim::CostSheet;

constexpr u32 kSzxMagic = 0x785a5343u;  // "CSZx"

#pragma pack(push, 1)
struct SzxHeader {
  u32 magic;
  u8 rank;
  u8 pad[3];
  u64 nx, ny, nz;
  u64 count;
  f64 abs_eb;
  u64 payload_bytes;
};
#pragma pack(pop)

CostSheet stats_kernel_cost(size_t n) {
  CostSheet c;
  c.name = "block-stats";
  c.kernel_launches = 1;
  c.global_bytes_read = n * sizeof(f32);
  c.global_bytes_written = n / CuszxCompressor::kBlockSize * 8;
  c.thread_ops = n * 3;  // min/max reduction
  return c;
}

CostSheet pack_kernel_cost(size_t n, size_t out_bytes) {
  CostSheet c;
  c.name = "block-pack";
  c.kernel_launches = 1;
  c.global_bytes_read = n * sizeof(f32);
  c.global_bytes_written = out_bytes;
  c.thread_ops = n * 6;  // quantize + shift/or pack
  return c;
}

}  // namespace

std::vector<u8> szx_encode_payload(FloatSpan d, double abs_eb) {
  FZ_REQUIRE(abs_eb > 0, "bad error bound");
  const double two_eb = 2.0 * abs_eb;
  const size_t n = d.size();
  const size_t nblocks = div_ceil(n, CuszxCompressor::kBlockSize);

  // Per block: [u8 tag] tag=0 -> constant: [f32 mid]
  //            tag=b  -> non-constant: [f32 mid][packed b-bit zigzag codes]
  std::vector<u8> payload;
  ByteWriter pw(payload);
  for (size_t blk = 0; blk < nblocks; ++blk) {
    const size_t b = blk * CuszxCompressor::kBlockSize;
    const size_t e = std::min(b + CuszxCompressor::kBlockSize, n);
    f32 lo = d[b], hi = d[b];
    for (size_t i = b; i < e; ++i) {
      lo = std::min(lo, d[i]);
      hi = std::max(hi, d[i]);
    }
    const f32 mid = (lo + hi) * 0.5f;
    if (static_cast<double>(hi) - lo <= two_eb) {
      pw.put<u8>(0);
      pw.put<f32>(mid);
      continue;
    }
    // Quantize offsets from mid; width = bits of the largest zigzag code.
    u32 codes[CuszxCompressor::kBlockSize];
    int width = 1;
    for (size_t i = b; i < e; ++i) {
      const i64 q = std::llround((static_cast<double>(d[i]) - mid) / two_eb);
      // Range check: |d - mid| <= range/2 so q fits easily in 32 bits at
      // the evaluated bounds; clamp defensively.
      const i64 clamped = std::clamp<i64>(q, INT32_MIN / 2, INT32_MAX / 2);
      codes[i - b] = zigzag_encode(static_cast<i32>(clamped));
      width = std::max(width, bit_width_u32(codes[i - b]));
    }
    pw.put<u8>(static_cast<u8>(width));
    pw.put<f32>(mid);
    BitWriterMsb bw;
    for (size_t i = b; i < e; ++i) bw.put_bits(codes[i - b], width);
    const std::vector<u8> bits = bw.take();
    pw.put_bytes(bits);
  }
  return payload;
}

std::vector<f32> szx_decode_payload(ByteSpan payload, size_t count,
                                    double abs_eb) {
  FZ_REQUIRE(abs_eb > 0, "bad error bound");
  const size_t nblocks = div_ceil(count, CuszxCompressor::kBlockSize);
  std::vector<f32> out(count);
  ByteReader pr(payload);
  for (size_t blk = 0; blk < nblocks; ++blk) {
    const size_t b = blk * CuszxCompressor::kBlockSize;
    const size_t e = std::min(b + CuszxCompressor::kBlockSize, count);
    const u8 tag = pr.get<u8>();
    const f32 mid = pr.get<f32>();
    if (tag == 0) {
      for (size_t i = b; i < e; ++i) out[i] = mid;
      continue;
    }
    FZ_FORMAT_REQUIRE(tag <= 32, "bad cuSZx block width");
    const size_t nbits = static_cast<size_t>(tag) * (e - b);
    const ByteSpan bits = pr.get_bytes(div_ceil(nbits, 8));
    BitReaderMsb br(bits);
    for (size_t i = b; i < e; ++i) {
      const u32 code = static_cast<u32>(br.get_bits(tag));
      const i32 q = zigzag_decode(code);
      out[i] = static_cast<f32>(static_cast<double>(mid) +
                                static_cast<double>(q) * 2.0 * abs_eb);
    }
  }
  return out;
}

RunResult CuszxCompressor::run(const Field& field, double rel_eb) const {
  RunResult r;
  r.compressor = name();
  r.input_bytes = field.bytes();
  const double abs_eb = field.resolve_eb(ErrorBound::relative(rel_eb));
  FZ_REQUIRE(abs_eb > 0, "bad error bound");

  const size_t n = field.count();

  // --- compression ---------------------------------------------------------
  const std::vector<u8> payload = szx_encode_payload(field.values(), abs_eb);

  std::vector<u8> stream;
  SzxHeader h{};
  h.magic = kSzxMagic;
  h.rank = static_cast<u8>(field.dims.rank());
  h.nx = field.dims.x;
  h.ny = field.dims.y;
  h.nz = field.dims.z;
  h.count = n;
  h.abs_eb = abs_eb;
  h.payload_bytes = payload.size();
  ByteWriter w(stream);
  w.put(h);
  w.put_bytes(payload);
  r.compressed_bytes = stream.size();

  r.compression_costs.push_back(stats_kernel_cost(n));
  r.compression_costs.push_back(pack_kernel_cost(n, payload.size()));

  // --- decompression -------------------------------------------------------
  ByteReader rd(stream);
  const SzxHeader h2 = rd.get<SzxHeader>();
  FZ_FORMAT_REQUIRE(h2.magic == kSzxMagic, "not a cuSZx stream");
  const ByteSpan pl = rd.get_bytes(h2.payload_bytes);
  r.reconstructed = szx_decode_payload(pl, h2.count, h2.abs_eb);

  CostSheet unpack = pack_kernel_cost(n, payload.size());
  unpack.name = "block-unpack";
  std::swap(unpack.global_bytes_read, unpack.global_bytes_written);
  r.decompression_costs.push_back(unpack);
  return r;
}

}  // namespace fz::bench
