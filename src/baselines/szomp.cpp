#include "baselines/szomp.hpp"

#include "common/timer.hpp"
#include "core/lorenzo.hpp"
#include "core/pipeline.hpp"
#include "core/quantizer.hpp"
#include "substrate/huffman.hpp"

namespace fz::bench {

RunResult run_fz_omp(const Field& field, double rel_eb, int iters) {
  RunResult r;
  r.compressor = "FZ-OMP";
  r.input_bytes = field.bytes();

  FzParams params;
  params.eb = ErrorBound::relative(rel_eb);
  FzCompressed c;
  r.native_compress_seconds = time_best_of(
      iters, [&] { c = fz_compress(field.values(), field.dims, params); });
  r.compressed_bytes = c.bytes.size();
  FzDecompressed d;
  r.native_decompress_seconds =
      time_best_of(iters, [&] { d = fz_decompress(c.bytes); });
  r.reconstructed = std::move(d.data);
  return r;
}

RunResult run_sz_omp(const Field& field, double rel_eb, int iters) {
  RunResult r;
  r.compressor = "SZ-OMP";
  r.input_bytes = field.bytes();
  const double abs_eb = ErrorBound::relative(rel_eb).resolve(field.value_range());

  constexpr u32 kRadius = 512;
  std::vector<u8> huff;
  std::vector<Outlier> outliers;
  r.native_compress_seconds = time_best_of(iters, [&] {
    std::vector<i64> pq(field.count());
    prequantize(field.values(), abs_eb, pq);
    lorenzo_forward(pq, field.dims, pq);
    QuantV1Result q = quant_encode_v1(pq, kRadius);
    outliers = std::move(q.outliers);
    huff = huffman_compress(q.codes, 2 * kRadius);
  });
  r.compressed_bytes = huff.size() + outliers.size() * 16;

  r.native_decompress_seconds = time_best_of(iters, [&] {
    std::vector<u16> codes = huffman_decompress(huff);
    QuantV1Result q;
    q.radius = kRadius;
    q.codes = std::move(codes);
    q.outliers = outliers;
    std::vector<i64> deltas(field.count());
    quant_decode_v1(q, deltas);
    lorenzo_inverse(deltas, field.dims, deltas);
    r.reconstructed.resize(field.count());
    dequantize(deltas, abs_eb, r.reconstructed);
  });
  return r;
}

}  // namespace fz::bench
