// cuZFP baseline (Lindstrom, TVCG'14; LLNL cuZFP): transform-based
// fixed-rate compression.  Implemented from scratch for 1/2/3-D f32 data:
//
//   * the field is split into 4^d blocks (edges padded by replication),
//   * each block is converted to block-floating-point integers using the
//     block's maximum exponent,
//   * the non-orthogonal lifting transform decorrelates along each axis,
//   * coefficients are reordered by total sequency and mapped to
//     negabinary,
//   * bit planes are coded MSB-first with ZFP's group-testing scheme,
//     truncated at the fixed per-block bit budget (rate · 4^d bits).
//
// Like the real cuZFP, only the fixed-rate mode exists (paper §2.1: "cuZFP
// ... supports only the fixed-rate mode"); the harness PSNR-matches it
// against the error-bounded compressors.
#pragma once

#include "baselines/compressor.hpp"

namespace fz::bench {

class CuzfpCompressor final : public GpuCompressor {
 public:
  std::string name() const override { return "cuZFP"; }
  Mode mode() const override { return Mode::FixedRate; }

  /// `param` is the bitrate in bits/value (e.g. 8 => ratio 4 for f32).
  RunResult run(const Field& field, double param) const override;
};

/// Standalone codec entry points (used by tests).
std::vector<u8> zfp_compress(FloatSpan data, Dims dims, double rate);
std::vector<f32> zfp_decompress(ByteSpan stream, Dims* dims_out = nullptr);

}  // namespace fz::bench
