// CPU baselines measured with real wall-clock time (paper §4.4):
//  * FZ-OMP — the FZ pipeline itself, which is OpenMP-parallel end to end,
//  * SZ-OMP — the SZ 2.x OpenMP mode: chunked Lorenzo + quantization +
//    Huffman entropy coding (no dictionary stage, matching sz_omp.c).
#pragma once

#include "baselines/compressor.hpp"

namespace fz::bench {

/// Multithreaded CPU run of the FZ pipeline; native_*_seconds are filled
/// with measured wall-clock time (best of `iters`).
RunResult run_fz_omp(const Field& field, double rel_eb, int iters = 3);

/// Multithreaded CPU run of the SZ-OMP pipeline.
RunResult run_sz_omp(const Field& field, double rel_eb, int iters = 3);

}  // namespace fz::bench
