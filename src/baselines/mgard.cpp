#include "baselines/mgard.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "substrate/bitio.hpp"
#include "substrate/huffman.hpp"
#include "substrate/lz77.hpp"

namespace fz::bench {

namespace {

using cudasim::CostSheet;

constexpr u32 kMgardMagic = 0x4452474du;  // "MGRD"
constexpr u32 kCodeRadius = 1 << 14;      // residual code = zigzag-free shift
constexpr size_t kNumBins = 2 * kCodeRadius;

#pragma pack(push, 1)
struct MgardHeader {
  u32 magic;
  u8 rank;
  u8 levels;
  u8 pad[2];
  u64 nx, ny, nz;
  u64 count;
  f64 abs_eb;
  u64 outlier_count;
  u64 payload_bytes;
};
#pragma pack(pop)

int pick_levels(Dims dims) {
  const size_t m = std::max({dims.x, dims.y, dims.z});
  int l = 0;
  while ((size_t{1} << (l + 1)) < m && l < 6) ++l;
  return l;
}

/// Visit every node of the hierarchy exactly once, coarse to fine.  The
/// callback receives (index, prediction) where the prediction interpolates
/// the *current contents* of `values` at already-visited coarser nodes
/// (coarsest-level nodes get prediction 0).  Both the compressor and the
/// decompressor drive this with the same traversal, so they agree bit for
/// bit.
void visit_hierarchy(Dims dims, int levels, std::span<f64> values,
                     const std::function<f64(size_t idx, f64 pred)>& emit) {
  const size_t coarsest = size_t{1} << levels;

  // Coarsest grid: direct values.
  for (size_t z = 0; z < dims.z; z += coarsest)
    for (size_t y = 0; y < dims.y; y += coarsest)
      for (size_t x = 0; x < dims.x; x += coarsest) {
        const size_t idx = dims.linear(x, y, z);
        values[idx] = emit(idx, 0.0);
      }

  // Finer levels: detail nodes predicted from stride-2s neighbours.
  for (int l = levels - 1; l >= 0; --l) {
    const size_t s = size_t{1} << l;
    const size_t s2 = s * 2;
    for (size_t z = 0; z < dims.z; z += s)
      for (size_t y = 0; y < dims.y; y += s)
        for (size_t x = 0; x < dims.x; x += s) {
          const bool ox = (x % s2) != 0;
          const bool oy = (y % s2) != 0;
          const bool oz = (z % s2) != 0;
          if (!ox && !oy && !oz) continue;  // survives to the coarser grid
          // Multilinear interpolation over the odd axes: average the 2^k
          // corners at coords rounded to multiples of 2s (clamped).
          f64 pred = 0.0;
          int corners = 0;
          const size_t xs[2] = {ox ? x - s : x,
                                ox ? std::min(x + s, dims.x - 1) : x};
          const size_t ys[2] = {oy ? y - s : y,
                                oy ? std::min(y + s, dims.y - 1) : y};
          const size_t zs[2] = {oz ? z - s : z,
                                oz ? std::min(z + s, dims.z - 1) : z};
          for (int cz = 0; cz <= (oz ? 1 : 0); ++cz)
            for (int cy = 0; cy <= (oy ? 1 : 0); ++cy)
              for (int cx = 0; cx <= (ox ? 1 : 0); ++cx) {
                pred += values[dims.linear(xs[cx], ys[cy], zs[cz])];
                ++corners;
              }
          pred /= corners;
          const size_t idx = dims.linear(x, y, z);
          values[idx] = emit(idx, pred);
        }
  }
}

CostSheet refactor_cost(size_t n, int levels, int rank) {
  CostSheet c;
  c.name = "multigrid-refactor";
  // One kernel per (level, axis) for decomposition plus correction kernels:
  // MGARD launches many small kernels.
  c.kernel_launches = static_cast<u64>(levels) * rank * 4;
  c.global_bytes_read = n * sizeof(f32) * 3;  // multiple passes over the data
  c.global_bytes_written = n * sizeof(f32) * 2;
  c.thread_ops = n * 90;  // interpolation stencils + level bookkeeping
  return c;
}

CostSheet host_deflate_cost(size_t code_bytes) {
  CostSheet c;
  c.name = "host-deflate";
  // Codes cross PCIe, DEFLATE runs on the CPU (~0.25 GB/s single stream),
  // the compressed result is host-resident.  This is the serial phase that
  // dominates MGARD-GPU's compression time.
  const double pcie_ns = static_cast<double>(code_bytes) / 11.4;  // GB/s
  const double deflate_ns = static_cast<double>(code_bytes) / 0.25;
  c.serial_ns = pcie_ns + deflate_ns;
  return c;
}

}  // namespace

RunResult MgardCompressor::run(const Field& field, double rel_eb) const {
  FZ_REQUIRE(supports(field), "MGARD-GPU cannot compress 1-D data");
  RunResult r;
  r.compressor = name();
  r.input_bytes = field.bytes();

  const double abs_eb = field.resolve_eb(ErrorBound::relative(rel_eb));
  FZ_REQUIRE(abs_eb > 0, "bad error bound");
  // Over-preservation: quantize at half the requested tolerance.
  const double eb_q = abs_eb / 2.0;
  const double two_eb = 2.0 * eb_q;

  const Dims dims = field.dims;
  const int levels = pick_levels(dims);
  const size_t n = field.count();

  // --- compression: refactor + quantize ------------------------------------
  std::vector<f64> recon(n, 0.0);
  std::vector<u16> codes;
  codes.reserve(n);
  std::vector<std::pair<u64, i64>> outliers;
  FloatSpan d = field.values();
  size_t order = 0;
  visit_hierarchy(dims, levels, recon, [&](size_t idx, f64 pred) -> f64 {
    const f64 residual = static_cast<f64>(d[idx]) - pred;
    const i64 q = std::llround(residual / two_eb);
    if (q > -static_cast<i64>(kCodeRadius) && q < static_cast<i64>(kCodeRadius)) {
      codes.push_back(static_cast<u16>(q + kCodeRadius));
    } else {
      codes.push_back(0);
      outliers.emplace_back(order, q);
    }
    ++order;
    // Reconstruct with the exact quantized residual (outliers carry q
    // verbatim, so this holds for both cases).
    return pred + static_cast<f64>(q) * two_eb;
  });

  // --- entropy back end: LZ77 over the code bytes, then Huffman ------------
  const ByteSpan code_bytes{reinterpret_cast<const u8*>(codes.data()),
                            codes.size() * sizeof(u16)};
  const std::vector<u8> lz = lz_compress(code_bytes);
  std::vector<u16> lz_syms(lz.begin(), lz.end());
  const std::vector<u8> payload = huffman_compress(lz_syms, 256);

  std::vector<u8> stream;
  MgardHeader h{};
  h.magic = kMgardMagic;
  h.rank = static_cast<u8>(dims.rank());
  h.levels = static_cast<u8>(levels);
  h.nx = dims.x;
  h.ny = dims.y;
  h.nz = dims.z;
  h.count = n;
  h.abs_eb = abs_eb;
  h.outlier_count = outliers.size();
  h.payload_bytes = payload.size();
  ByteWriter w(stream);
  w.put(h);
  w.put<u64>(lz.size());
  w.put_bytes(payload);
  for (const auto& [idx, q] : outliers) {
    w.put<u64>(idx);
    w.put<i64>(q);
  }
  r.compressed_bytes = stream.size();

  r.compression_costs.push_back(refactor_cost(n, levels, dims.rank()));
  r.compression_costs.push_back(host_deflate_cost(code_bytes.size()));

  // --- decompression --------------------------------------------------------
  ByteReader rd(stream);
  const MgardHeader h2 = rd.get<MgardHeader>();
  FZ_FORMAT_REQUIRE(h2.magic == kMgardMagic, "not an MGARD stream");
  FZ_FORMAT_REQUIRE(h2.count <= stream.size() * 512, "MGARD: count exceeds stream");
  const u64 lz_size = rd.get<u64>();
  const ByteSpan pl = rd.get_bytes(h2.payload_bytes);
  std::vector<u16> lz_dec_syms = huffman_decompress(pl);
  std::vector<u8> lz_dec(lz_dec_syms.begin(), lz_dec_syms.end());
  FZ_FORMAT_REQUIRE(lz_dec.size() == lz_size, "MGARD: LZ payload mismatch");
  const std::vector<u8> code_raw =
      lz_decompress(lz_dec, h2.count * sizeof(u16));
  std::vector<u16> dcodes(h2.count);
  std::memcpy(dcodes.data(), code_raw.data(), code_raw.size());
  std::vector<std::pair<u64, i64>> doutliers(h2.outlier_count);
  for (auto& [idx, q] : doutliers) {
    idx = rd.get<u64>();
    q = rd.get<i64>();
  }

  const double dtwo_eb = 2.0 * (h2.abs_eb / 2.0);
  std::vector<f64> rec2(h2.count, 0.0);
  size_t cursor = 0;
  size_t out_cursor = 0;
  visit_hierarchy(dims, h2.levels, rec2, [&](size_t idx, f64 pred) -> f64 {
    (void)idx;
    const u16 code = dcodes[cursor];
    i64 q;
    if (code == 0) {
      FZ_FORMAT_REQUIRE(out_cursor < doutliers.size() &&
                            doutliers[out_cursor].first == cursor,
                        "MGARD: outlier stream desync");
      q = doutliers[out_cursor++].second;
    } else {
      q = static_cast<i64>(code) - kCodeRadius;
    }
    ++cursor;
    return pred + static_cast<f64>(q) * dtwo_eb;
  });
  r.reconstructed.resize(h2.count);
  for (size_t i = 0; i < h2.count; ++i)
    r.reconstructed[i] = static_cast<f32>(rec2[i]);

  CostSheet dec = refactor_cost(n, levels, dims.rank());
  dec.name = "multigrid-recompose";
  r.decompression_costs.push_back(dec);
  r.decompression_costs.push_back(host_deflate_cost(code_bytes.size()));
  return r;
}

}  // namespace fz::bench
