#include "baselines/compressor.hpp"

#include "baselines/cusz.hpp"
#include "baselines/cuszx.hpp"
#include "baselines/cuzfp.hpp"
#include "baselines/mgard.hpp"
#include "core/pipeline.hpp"

namespace fz::bench {

namespace {

/// FZ-GPU: the library's own pipeline behind the common interface.
class FzGpuCompressor final : public GpuCompressor {
 public:
  std::string name() const override { return "FZ-GPU"; }

  RunResult run(const Field& field, double rel_eb) const override {
    RunResult r;
    r.compressor = name();
    r.input_bytes = field.bytes();
    FzParams params;
    params.eb = ErrorBound::relative(rel_eb);
    FzCompressed c = fz_compress(field.values(), field.dims, params);
    r.compressed_bytes = c.bytes.size();
    r.compression_costs = c.stage_costs;
    FzDecompressed d = fz_decompress(c.bytes);
    r.reconstructed = std::move(d.data);
    r.decompression_costs = d.stage_costs;
    return r;
  }
};

}  // namespace

std::unique_ptr<GpuCompressor> make_fzgpu() {
  return std::make_unique<FzGpuCompressor>();
}

std::unique_ptr<GpuCompressor> make_cusz(bool include_codebook_build) {
  return std::make_unique<CuszCompressor>(include_codebook_build);
}

std::unique_ptr<GpuCompressor> make_cuszx() {
  return std::make_unique<CuszxCompressor>();
}

std::unique_ptr<GpuCompressor> make_cuzfp() {
  return std::make_unique<CuzfpCompressor>();
}

std::unique_ptr<GpuCompressor> make_mgard() {
  return std::make_unique<MgardCompressor>();
}

std::unique_ptr<GpuCompressor> make_cusz_rle() {
  return std::make_unique<CuszCompressor>(false, CuszCompressor::Encoding::Rle);
}

std::vector<std::unique_ptr<GpuCompressor>> make_all_compressors() {
  std::vector<std::unique_ptr<GpuCompressor>> v;
  v.push_back(make_fzgpu());
  v.push_back(make_cusz(true));
  v.push_back(make_cusz(false));
  v.push_back(make_cuzfp());
  v.push_back(make_cuszx());
  v.push_back(make_mgard());
  return v;
}

}  // namespace fz::bench
