#include "cudasim/device_model.hpp"

#include <algorithm>

namespace fz::cudasim {

// Bandwidth/compute figures are *effective achievable* values for
// compression-style kernels (55-65% of the datasheet peaks), which is what
// roofline models of real SZ-family kernels hit; using peaks instead
// uniformly inflates every compressor by the same factor and does not
// change the relative results.
DeviceSpec DeviceSpec::a100() {
  return DeviceSpec{
      .name = "A100",
      .mem_bw_gbps = 700.0,      // ~45% of 1555 GB/s HBM2 peak
      .smem_tx_per_ns = 2000.0,
      .ops_per_ns = 9000.0,
      .launch_overhead_us = 5.0,
      .pcie_bw_gbps = 11.4,  // 4 GPUs sharing 32-lane PCIe 4.0 (paper §4.6)
      .sm_count = 108,
  };
}

DeviceSpec DeviceSpec::a4000() {
  return DeviceSpec{
      .name = "A4000",
      .mem_bw_gbps = 250.0,  // ~56% of 448 GB/s GDDR6 peak
      .smem_tx_per_ns = 800.0,
      // Ampere consumer parts double FP32 per SM, so per-clock throughput
      // falls off much less than the 108:40 SM ratio suggests — this is why
      // cuZFP (compute-bound) degrades far less than the memory-bound
      // compressors between A100 and A4000 (paper §4.4).
      .ops_per_ns = 5300.0,
      .launch_overhead_us = 5.0,
      .pcie_bw_gbps = 11.4,
      .sm_count = 40,
  };
}

double DeviceModel::seconds(const CostSheet& cost, double fixed_cost_scale) const {
  const double launch_s = static_cast<double>(cost.kernel_launches) *
                          spec_.launch_overhead_us * 1e-6 * fixed_cost_scale;
  const double dram_s =
      static_cast<double>(cost.global_bytes()) / (spec_.mem_bw_gbps * 1e9);
  const double smem_s =
      static_cast<double>(cost.shared_transactions) / (spec_.smem_tx_per_ns * 1e9);
  // Divergent branches serialize both sides of the branch across the warp;
  // charge a fixed replay cost per event.
  const double ops = static_cast<double>(cost.thread_ops) +
                     32.0 * static_cast<double>(cost.divergent_branches);
  const double compute_s = ops / (spec_.ops_per_ns * 1e9);
  const double roofline_s = std::max({dram_s, smem_s, compute_s});
  return launch_s + roofline_s + cost.serial_ns * 1e-9 +
         cost.fixed_ns * 1e-9 * fixed_cost_scale;
}

double DeviceModel::throughput_gbps(const CostSheet& cost, u64 input_bytes) const {
  const double s = seconds(cost);
  return s <= 0 ? 0.0 : static_cast<double>(input_bytes) / 1e9 / s;
}

}  // namespace fz::cudasim
