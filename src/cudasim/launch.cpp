#include "cudasim/launch.hpp"

#include <ucontext.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <exception>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "telemetry/telemetry.hpp"

// AddressSanitizer tracks one stack per thread; every ucontext switch must
// be bracketed with __sanitizer_start/finish_switch_fiber or the first deep
// unwind on a fiber stack (an exception leaving a kernel body) is reported
// as a stack-use-after-scope inside the unwinder.
#if defined(__SANITIZE_ADDRESS__)
#define FZ_CUDASIM_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define FZ_CUDASIM_ASAN 1
#endif
#endif
#ifdef FZ_CUDASIM_ASAN
#include <sanitizer/common_interface_defs.h>
#endif

namespace fz::cudasim {

namespace {

enum class FiberState { Ready, WaitBarrier, WaitWarp, Done };

struct Fiber {
  ucontext_t ctx{};
  std::vector<u8> stack;
  FiberState state = FiberState::Ready;
  u32 ltid = 0;
  void* asan_fake_stack = nullptr;  // ASan fake-stack handle across yields
  // fzcheck bookkeeping: how many barriers / collectives this thread has
  // executed, and where it last arrived at a barrier.
  u32 barrier_seq = 0;
  u32 collective_seq = 0;
  SrcLoc barrier_loc;
};

/// One in-flight warp collective: lanes deposit values and park until the
/// whole (live part of the) warp has arrived.
struct WarpOp {
  enum class Kind { None, Ballot, Any, Shfl };
  Kind kind = Kind::None;
  u32 arrived = 0;  // lane mask
  std::array<u32, kWarpSize> values{};
  std::array<u32, kWarpSize> srcs{};  // shfl source lanes
  // Results are delivered through per-lane mailboxes so the op can be
  // reset (and reused for the next collective) the moment it completes,
  // even before slower lanes have been rescheduled to consume theirs.
  std::array<u32, kWarpSize> mailbox{};
  u32 mailbox_valid = 0;
  // fzcheck: per-lane arrival site and collective count, for divergence
  // detection when the op completes.
  std::array<SrcLoc, kWarpSize> locs{};
  std::array<u32, kWarpSize> seqs{};
};

/// Shared-memory access trace of one warp, slot-paired across lanes: the
/// k-th shared access performed by each lane is assumed to belong to the
/// same (lockstep) instruction, which holds for the divergence-free access
/// patterns of the fz kernels.
struct WarpSmemTrace {
  std::array<u32, kWarpSize> seq{};  // per-lane access counter
  // slot -> lane -> (valid, word index)
  std::vector<std::array<std::pair<bool, u32>, kWarpSize>> slots;
  // slot -> source location of the first access recorded in it (fzcheck
  // bank-conflict lint; empty when not sanitizing).
  std::vector<SrcLoc> slot_locs;
};

}  // namespace

class BlockRunner {
 public:
  BlockRunner(const LaunchConfig& cfg, const KernelFn& fn, CostSheet& cost,
              Sanitizer* san)
      : cfg_(cfg), fn_(fn), cost_(cost), san_(san) {}

  void run_block(Dim3 block_idx);

  // -- called from fibers via ThreadCtx -----------------------------------
  void sync_threads(SrcLoc loc);
  u32 ballot(bool pred, SrcLoc loc);
  bool any(bool pred, SrcLoc loc);
  u32 shfl(u32 v, u32 src_lane, SrcLoc loc);
  void* shared_raw(const char* key, size_t bytes);
  void shared_access(size_t word_index) { record_bank(word_index, SrcLoc{}); }
  bool shared_record(const char* key, size_t view_bytes, size_t byte_begin,
                     size_t nbytes, bool write, SrcLoc loc);
  void global_oob(bool write, size_t index, size_t size, SrcLoc loc);
  void count_global_read(size_t b) { cost_.global_bytes_read += b; }
  void count_global_write(size_t b) { cost_.global_bytes_written += b; }
  void count_ops(size_t n) { cost_.thread_ops += n; }
  void count_divergence() { cost_.divergent_branches += 1; }

  ThreadCtx& current_ctx() { return ctxs_[current_]; }

 private:
  void fiber_body();
  static void fiber_entry();
  void resume_fiber(u32 t);
  void yield_to_scheduler();
  u32 live_count() const;
  u32 live_warp_mask(u32 warp) const;
  u32 launch_warp_mask(u32 warp) const;
  void release_barrier_if_complete();
  void release_warp_op_if_complete(u32 warp);
  u32 warp_collective(WarpOp::Kind kind, u32 value, u32 src, SrcLoc loc);
  void complete_warp_op(u32 warp);
  void record_bank(size_t word_index, SrcLoc loc);
  void flush_smem_traces();
  void report_deadlock_parkings();

  const LaunchConfig& cfg_;
  const KernelFn& fn_;
  CostSheet& cost_;
  Sanitizer* san_ = nullptr;

  std::vector<Fiber> fibers_;
  std::vector<ThreadCtx> ctxs_;
  ucontext_t sched_ctx_{};
  u32 current_ = 0;
  u32 nthreads_ = 0;

  u32 barrier_waiting_ = 0;
  const void* sched_stack_bottom_ = nullptr;  // captured at first fiber entry
  size_t sched_stack_size_ = 0;
  std::exception_ptr pending_exception_;
  std::vector<WarpOp> warp_ops_;
  std::vector<WarpSmemTrace> smem_traces_;
  std::map<std::string, AlignedBuffer> shared_arenas_;
};

namespace {
thread_local BlockRunner* g_runner = nullptr;
}

void BlockRunner::fiber_entry() {
  BlockRunner* r = g_runner;
#ifdef FZ_CUDASIM_ASAN
  // Complete the scheduler->fiber switch and learn the scheduler's stack
  // bounds so yields back can announce them.
  __sanitizer_finish_switch_fiber(nullptr, &r->sched_stack_bottom_,
                                  &r->sched_stack_size_);
#endif
  r->fiber_body();
}

void BlockRunner::fiber_body() {
  // Exceptions cannot unwind across swapcontext; capture and rethrow from
  // the scheduler.  (Kernel bodies hold no owning resources, so abandoning
  // the sibling fibers' stacks on error is safe.)
  try {
    fn_(ctxs_[current_]);
  } catch (...) {
    pending_exception_ = std::current_exception();
  }
  fibers_[current_].state = FiberState::Done;
  // A completed thread may unblock a barrier held by the remaining threads,
  // or complete a warp collective its siblings already arrived at (live-
  // lane semantics must not depend on scheduling order).
  release_barrier_if_complete();
  release_warp_op_if_complete(current_ / kWarpSize);
#ifdef FZ_CUDASIM_ASAN
  // Final exit: a null save slot tells ASan to destroy this fiber's fake stack.
  __sanitizer_start_switch_fiber(nullptr, sched_stack_bottom_, sched_stack_size_);
#endif
  swapcontext(&fibers_[current_].ctx, &sched_ctx_);
  FZ_REQUIRE(false, "resumed a finished simulated thread");
}

void BlockRunner::run_block(Dim3 block_idx) {
  nthreads_ = cfg_.block.count();
  FZ_REQUIRE(nthreads_ > 0, "empty block");
  const u32 nwarps = (nthreads_ + kWarpSize - 1) / kWarpSize;

  fibers_.assign(nthreads_, Fiber{});
  ctxs_.clear();
  ctxs_.reserve(nthreads_);
  warp_ops_.assign(nwarps, WarpOp{});
  smem_traces_.assign(nwarps, WarpSmemTrace{});
  shared_arenas_.clear();
  barrier_waiting_ = 0;
  if (san_ != nullptr) san_->begin_block(block_idx, nthreads_);

  for (u32 t = 0; t < nthreads_; ++t) {
    ThreadCtx ctx(*this);
    ctx.block_idx = block_idx;
    ctx.block_dim = cfg_.block;
    ctx.grid_dim = cfg_.grid;
    ctx.thread_idx = Dim3{t % cfg_.block.x, (t / cfg_.block.x) % cfg_.block.y,
                          t / (cfg_.block.x * cfg_.block.y)};
    ctxs_.push_back(ctx);

    Fiber& f = fibers_[t];
    f.ltid = t;
    f.stack.resize(cfg_.stack_bytes);
    getcontext(&f.ctx);
    f.ctx.uc_stack.ss_sp = f.stack.data();
    f.ctx.uc_stack.ss_size = f.stack.size();
    f.ctx.uc_link = &sched_ctx_;
    makecontext(&f.ctx, reinterpret_cast<void (*)()>(&BlockRunner::fiber_entry), 0);
  }

  g_runner = this;
  // Round-robin scheduler: run every Ready fiber until all are Done.
  bool progress = true;
  while (progress) {
    progress = false;
    bool all_done = true;
    for (u32 t = 0; t < nthreads_; ++t) {
      if (fibers_[t].state == FiberState::Done) continue;
      all_done = false;
      if (fibers_[t].state != FiberState::Ready) continue;
      current_ = t;
      progress = true;
      resume_fiber(t);
      if (pending_exception_) {
        g_runner = nullptr;
        std::rethrow_exception(std::exchange(pending_exception_, nullptr));
      }
    }
    if (all_done) break;
    if (!progress) {
      report_deadlock_parkings();
      g_runner = nullptr;
      FZ_REQUIRE(false, "simulated block deadlocked in kernel '" + cfg_.name +
                            "' (divergent collective or missing barrier "
                            "participant)");
    }
  }
  g_runner = nullptr;
  flush_smem_traces();
}

void BlockRunner::report_deadlock_parkings() {
  if (san_ == nullptr) return;
  std::vector<Sanitizer::ParkedThread> parked;
  for (const Fiber& f : fibers_) {
    if (f.state == FiberState::WaitBarrier) {
      parked.push_back({f.ltid, true, f.barrier_loc});
    } else if (f.state == FiberState::WaitWarp) {
      const WarpOp& op = warp_ops_[f.ltid / kWarpSize];
      parked.push_back({f.ltid, false, op.locs[f.ltid % kWarpSize]});
    }
  }
  san_->on_deadlock(parked);
}

void BlockRunner::resume_fiber(u32 t) {
#ifdef FZ_CUDASIM_ASAN
  void* fake = nullptr;
  __sanitizer_start_switch_fiber(&fake, fibers_[t].stack.data(),
                                 fibers_[t].stack.size());
  swapcontext(&sched_ctx_, &fibers_[t].ctx);
  __sanitizer_finish_switch_fiber(fake, nullptr, nullptr);
#else
  swapcontext(&sched_ctx_, &fibers_[t].ctx);
#endif
}

void BlockRunner::yield_to_scheduler() {
#ifdef FZ_CUDASIM_ASAN
  Fiber& f = fibers_[current_];
  __sanitizer_start_switch_fiber(&f.asan_fake_stack, sched_stack_bottom_,
                                 sched_stack_size_);
  swapcontext(&f.ctx, &sched_ctx_);
  __sanitizer_finish_switch_fiber(fibers_[current_].asan_fake_stack, nullptr,
                                  nullptr);
#else
  swapcontext(&fibers_[current_].ctx, &sched_ctx_);
#endif
}

u32 BlockRunner::live_count() const {
  u32 n = 0;
  for (const auto& f : fibers_)
    if (f.state != FiberState::Done) ++n;
  return n;
}

u32 BlockRunner::live_warp_mask(u32 warp) const {
  u32 mask = 0;
  const u32 base = warp * kWarpSize;
  for (u32 l = 0; l < kWarpSize; ++l) {
    const u32 t = base + l;
    if (t < nthreads_ && fibers_[t].state != FiberState::Done) mask |= 1u << l;
  }
  return mask;
}

u32 BlockRunner::launch_warp_mask(u32 warp) const {
  u32 mask = 0;
  const u32 base = warp * kWarpSize;
  for (u32 l = 0; l < kWarpSize; ++l)
    if (base + l < nthreads_) mask |= 1u << l;
  return mask;
}

void BlockRunner::release_barrier_if_complete() {
  if (barrier_waiting_ == 0) return;
  if (barrier_waiting_ < live_count()) return;
  if (san_ != nullptr) {
    std::vector<Sanitizer::BarrierArrival> arrivals;
    arrivals.reserve(barrier_waiting_);
    for (const Fiber& f : fibers_)
      if (f.state == FiberState::WaitBarrier)
        arrivals.push_back({f.ltid, f.barrier_seq, f.barrier_loc});
    san_->on_barrier_release(arrivals);
  }
  barrier_waiting_ = 0;
  for (auto& f : fibers_)
    if (f.state == FiberState::WaitBarrier) f.state = FiberState::Ready;
}

void BlockRunner::sync_threads(SrcLoc loc) {
  Fiber& f = fibers_[current_];
  f.barrier_seq += 1;
  f.barrier_loc = loc;
  f.state = FiberState::WaitBarrier;
  ++barrier_waiting_;
  release_barrier_if_complete();
  yield_to_scheduler();
}

void BlockRunner::complete_warp_op(u32 warp) {
  WarpOp& op = warp_ops_[warp];
  const u32 arrived = op.arrived;
  switch (op.kind) {
    case WarpOp::Kind::Ballot:
    case WarpOp::Kind::Any: {
      u32 bits = 0;
      for (u32 l = 0; l < kWarpSize; ++l)
        if ((arrived >> l & 1u) && op.values[l]) bits |= 1u << l;
      const u32 result = op.kind == WarpOp::Kind::Any ? (bits != 0 ? 1 : 0) : bits;
      for (u32 l = 0; l < kWarpSize; ++l)
        if (arrived >> l & 1u) op.mailbox[l] = result;
      break;
    }
    case WarpOp::Kind::Shfl: {
      for (u32 l = 0; l < kWarpSize; ++l) {
        if (!(arrived >> l & 1u)) continue;
        op.mailbox[l] = op.values[op.srcs[l] % kWarpSize];
      }
      break;
    }
    case WarpOp::Kind::None:
      FZ_REQUIRE(false, "completing empty warp op");
  }
  if (san_ != nullptr)
    san_->on_collective_complete(warp, arrived, launch_warp_mask(warp),
                                 op.locs, op.seqs);
  op.mailbox_valid |= arrived;
  // Reset the op immediately: results live in the mailboxes now, so a fast
  // lane may begin the next collective before slow lanes consume theirs.
  op.arrived = 0;
  op.kind = WarpOp::Kind::None;
  // Wake every parked lane of the warp.
  const u32 base = warp * kWarpSize;
  for (u32 l = 0; l < kWarpSize; ++l) {
    const u32 t = base + l;
    if (t < nthreads_ && fibers_[t].state == FiberState::WaitWarp)
      fibers_[t].state = FiberState::Ready;
  }
}

void BlockRunner::release_warp_op_if_complete(u32 warp) {
  WarpOp& op = warp_ops_[warp];
  if (op.arrived == 0) return;
  const u32 live = live_warp_mask(warp);
  if ((op.arrived & live) == live) complete_warp_op(warp);
}

u32 BlockRunner::warp_collective(WarpOp::Kind kind, u32 value, u32 src,
                                 SrcLoc loc) {
  const u32 warp = current_ / kWarpSize;
  const u32 lane = current_ % kWarpSize;
  WarpOp& op = warp_ops_[warp];
  FZ_REQUIRE((op.mailbox_valid >> lane & 1u) == 0,
             "lane re-entered collective with unconsumed result");
  if (op.arrived == 0) {
    op.kind = kind;
  } else if (op.kind != kind) {
    if (san_ != nullptr) san_->on_collective_kind_mismatch(warp, lane, loc);
    FZ_REQUIRE(false,
               "divergent warp collective in kernel '" + cfg_.name + "'");
  }
  Fiber& f = fibers_[current_];
  f.collective_seq += 1;
  op.values[lane] = value;
  op.srcs[lane] = src;
  op.locs[lane] = loc;
  op.seqs[lane] = f.collective_seq;
  op.arrived |= 1u << lane;

  const u32 live = live_warp_mask(warp);
  if ((op.arrived & live) == live) {
    complete_warp_op(warp);
  } else {
    fibers_[current_].state = FiberState::WaitWarp;
    yield_to_scheduler();
  }
  FZ_REQUIRE(op.mailbox_valid >> lane & 1u, "warp collective lost its result");
  op.mailbox_valid &= ~(1u << lane);
  return op.mailbox[lane];
}

u32 BlockRunner::ballot(bool pred, SrcLoc loc) {
  return warp_collective(WarpOp::Kind::Ballot, pred ? 1 : 0, 0, loc);
}

bool BlockRunner::any(bool pred, SrcLoc loc) {
  return warp_collective(WarpOp::Kind::Any, pred ? 1 : 0, 0, loc) != 0;
}

u32 BlockRunner::shfl(u32 v, u32 src_lane, SrcLoc loc) {
  return warp_collective(WarpOp::Kind::Shfl, v, src_lane, loc);
}

void* BlockRunner::shared_raw(const char* key, size_t bytes) {
  auto [it, inserted] = shared_arenas_.try_emplace(key);
  if (inserted) it->second.resize(bytes);
  FZ_REQUIRE(it->second.size() >= bytes, "shared array size mismatch");
  return it->second.data();
}

void BlockRunner::record_bank(size_t word_index, SrcLoc loc) {
  const u32 warp = current_ / kWarpSize;
  const u32 lane = current_ % kWarpSize;
  WarpSmemTrace& tr = smem_traces_[warp];
  const u32 slot = tr.seq[lane]++;
  if (slot >= tr.slots.size()) {
    tr.slots.resize(slot + 1);
    if (san_ != nullptr) tr.slot_locs.resize(slot + 1);
  }
  if (san_ != nullptr && slot < tr.slot_locs.size() &&
      tr.slot_locs[slot].file == nullptr)
    tr.slot_locs[slot] = loc;
  tr.slots[slot][lane] = {true, static_cast<u32>(word_index)};
  cost_.shared_accesses += 1;
}

bool BlockRunner::shared_record(const char* key, size_t view_bytes,
                                size_t byte_begin, size_t nbytes, bool write,
                                SrcLoc loc) {
  if (byte_begin + nbytes > view_bytes) {
    if (san_ != nullptr) {
      // Report and skip the access so the analysis can keep running.
      san_->on_shared_access(key, view_bytes, byte_begin, nbytes, write,
                             current_, loc);
      return false;
    }
    FZ_REQUIRE(false, "shared access out of bounds in kernel '" + cfg_.name +
                          "': " + key + "[+" + std::to_string(byte_begin) +
                          "] (array holds " + std::to_string(view_bytes) +
                          " bytes)");
  }
  record_bank(byte_begin / 4, loc);
  if (san_ != nullptr)
    return san_->on_shared_access(key, view_bytes, byte_begin, nbytes, write,
                                  current_, loc);
  return true;
}

void BlockRunner::global_oob(bool write, size_t index, size_t size,
                             SrcLoc loc) {
  if (san_ != nullptr) {
    san_->on_global_oob(write, index, size, current_, loc);
    return;
  }
  FZ_REQUIRE(false, "global access out of bounds in kernel '" + cfg_.name +
                        "': index " + std::to_string(index) +
                        " (array holds " + std::to_string(size) +
                        " element(s))");
}

void BlockRunner::flush_smem_traces() {
  // Transactions per slot = max over banks of the number of *distinct*
  // 4-byte words the warp touches in that bank (broadcast of one word is a
  // single transaction).
  u32 warp_index = 0;
  for (auto& tr : smem_traces_) {
    for (size_t s = 0; s < tr.slots.size(); ++s) {
      const auto& slot = tr.slots[s];
      std::array<std::vector<u32>, kWarpSize> words_per_bank;
      for (const auto& [valid, word] : slot) {
        if (!valid) continue;
        words_per_bank[word % kWarpSize].push_back(word);
      }
      u32 tx = 0;
      for (auto& words : words_per_bank) {
        std::sort(words.begin(), words.end());
        words.erase(std::unique(words.begin(), words.end()), words.end());
        tx = std::max<u32>(tx, static_cast<u32>(words.size()));
      }
      cost_.shared_transactions += tx;
      if (san_ != nullptr)
        san_->on_bank_slot(warp_index, tx,
                           s < tr.slot_locs.size() ? tr.slot_locs[s]
                                                   : SrcLoc{});
    }
    tr.slots.clear();
    tr.slot_locs.clear();
    tr.seq.fill(0);
    ++warp_index;
  }
}

// ---- ThreadCtx forwarding --------------------------------------------------

void ThreadCtx::sync_threads(std::source_location loc) {
  runner_.sync_threads(detail::to_srcloc(loc));
}
u32 ThreadCtx::ballot(bool pred, std::source_location loc) {
  return runner_.ballot(pred, detail::to_srcloc(loc));
}
bool ThreadCtx::any(bool pred, std::source_location loc) {
  return runner_.any(pred, detail::to_srcloc(loc));
}
u32 ThreadCtx::shfl(u32 v, u32 src_lane, std::source_location loc) {
  return runner_.shfl(v, src_lane, detail::to_srcloc(loc));
}
void* ThreadCtx::shared_raw(const char* key, size_t bytes) {
  return runner_.shared_raw(key, bytes);
}
void ThreadCtx::shared_access(size_t word_index) { runner_.shared_access(word_index); }
bool ThreadCtx::shared_record(const char* key, size_t view_bytes,
                              size_t byte_begin, size_t nbytes, bool write,
                              SrcLoc loc) {
  return runner_.shared_record(key, view_bytes, byte_begin, nbytes, write, loc);
}
void ThreadCtx::global_oob(bool write, size_t index, size_t size, SrcLoc loc) {
  runner_.global_oob(write, index, size, loc);
}
void ThreadCtx::count_global_read(size_t bytes) { runner_.count_global_read(bytes); }
void ThreadCtx::count_global_write(size_t bytes) { runner_.count_global_write(bytes); }
void ThreadCtx::count_ops(size_t n) { runner_.count_ops(n); }
void ThreadCtx::count_divergence() { runner_.count_divergence(); }

CostSheet launch(const LaunchConfig& cfg, const KernelFn& fn) {
  CostSheet cost;
  cost.name = cfg.name;
  cost.kernel_launches = 1;

  // One span per simulated launch so kernel timelines interleave with the
  // host-stage spans in the same trace.  cfg.name is a std::string whose
  // storage may die before the trace is flushed; intern it in the sink.
  telemetry::Sink* sink = telemetry::active_sink();
  telemetry::Span span(sink, sink != nullptr ? sink->intern(cfg.name)
                                             : nullptr);

  ScopedSanitizer* scoped = scoped_sanitizer();
  const bool sanitize =
      cfg.sanitize || cfg.report != nullptr || scoped != nullptr;
  SanitizerReport local;
  SanitizerReport* out = cfg.report != nullptr ? cfg.report
                         : scoped != nullptr   ? &scoped->report()
                                               : &local;
  SanitizerOptions opts;
  // An explicit per-launch config wins; otherwise inherit the scope's.
  if (cfg.sanitize || cfg.report != nullptr || scoped == nullptr)
    opts.bank_conflict_limit = cfg.bank_conflict_limit;
  else
    opts = scoped->options();

  std::optional<Sanitizer> san;
  if (sanitize) san.emplace(cfg.name, cfg.block, opts, *out);

  BlockRunner runner(cfg, fn, cost, san ? &*san : nullptr);
  for (u32 bz = 0; bz < cfg.grid.z; ++bz)
    for (u32 by = 0; by < cfg.grid.y; ++by)
      for (u32 bx = 0; bx < cfg.grid.x; ++bx) runner.run_block(Dim3{bx, by, bz});

  // Fail-fast mode: sanitize requested but nowhere to deliver findings.
  if (sanitize && out == &local && !local.clean())
    throw Error("fzcheck[" + cfg.name + "]: " + local.to_string());
  if (span.enabled()) {
    span.arg("global_bytes_read", static_cast<double>(cost.global_bytes_read));
    span.arg("global_bytes_written",
             static_cast<double>(cost.global_bytes_written));
    span.arg("shared_transactions",
             static_cast<double>(cost.shared_transactions));
    span.arg("thread_ops", static_cast<double>(cost.thread_ops));
    span.arg("divergent_branches",
             static_cast<double>(cost.divergent_branches));
  }
  return cost;
}

}  // namespace fz::cudasim
