#include "cudasim/launch.hpp"

#include <ucontext.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <exception>
#include <utility>

#include "common/error.hpp"

// AddressSanitizer tracks one stack per thread; every ucontext switch must
// be bracketed with __sanitizer_start/finish_switch_fiber or the first deep
// unwind on a fiber stack (an exception leaving a kernel body) is reported
// as a stack-use-after-scope inside the unwinder.
#if defined(__SANITIZE_ADDRESS__)
#define FZ_CUDASIM_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define FZ_CUDASIM_ASAN 1
#endif
#endif
#ifdef FZ_CUDASIM_ASAN
#include <sanitizer/common_interface_defs.h>
#endif

namespace fz::cudasim {

namespace {

enum class FiberState { Ready, WaitBarrier, WaitWarp, Done };

struct Fiber {
  ucontext_t ctx{};
  std::vector<u8> stack;
  FiberState state = FiberState::Ready;
  u32 ltid = 0;
  void* asan_fake_stack = nullptr;  // ASan fake-stack handle across yields
};

/// One in-flight warp collective: lanes deposit values and park until the
/// whole (live part of the) warp has arrived.
struct WarpOp {
  enum class Kind { None, Ballot, Any, Shfl };
  Kind kind = Kind::None;
  u32 arrived = 0;  // lane mask
  std::array<u32, kWarpSize> values{};
  std::array<u32, kWarpSize> srcs{};  // shfl source lanes
  // Results are delivered through per-lane mailboxes so the op can be
  // reset (and reused for the next collective) the moment it completes,
  // even before slower lanes have been rescheduled to consume theirs.
  std::array<u32, kWarpSize> mailbox{};
  u32 mailbox_valid = 0;
};

/// Shared-memory access trace of one warp, slot-paired across lanes: the
/// k-th shared access performed by each lane is assumed to belong to the
/// same (lockstep) instruction, which holds for the divergence-free access
/// patterns of the fz kernels.
struct WarpSmemTrace {
  std::array<u32, kWarpSize> seq{};  // per-lane access counter
  // slot -> lane -> (valid, word index)
  std::vector<std::array<std::pair<bool, u32>, kWarpSize>> slots;
};

}  // namespace

class BlockRunner {
 public:
  BlockRunner(const LaunchConfig& cfg, const KernelFn& fn, CostSheet& cost)
      : cfg_(cfg), fn_(fn), cost_(cost) {}

  void run_block(Dim3 block_idx);

  // -- called from fibers via ThreadCtx -----------------------------------
  void sync_threads();
  u32 ballot(bool pred);
  bool any(bool pred);
  u32 shfl(u32 v, u32 src_lane);
  void* shared_raw(const char* key, size_t bytes);
  void shared_access(size_t word_index);
  void count_global_read(size_t b) { cost_.global_bytes_read += b; }
  void count_global_write(size_t b) { cost_.global_bytes_written += b; }
  void count_ops(size_t n) { cost_.thread_ops += n; }
  void count_divergence() { cost_.divergent_branches += 1; }

  ThreadCtx& current_ctx() { return ctxs_[current_]; }

 private:
  void fiber_body();
  static void fiber_entry();
  void resume_fiber(u32 t);
  void yield_to_scheduler();
  u32 live_count() const;
  u32 live_warp_mask(u32 warp) const;
  void release_barrier_if_complete();
  u32 warp_collective(WarpOp::Kind kind, u32 value, u32 src = 0);
  void complete_warp_op(u32 warp);
  void flush_smem_traces();

  const LaunchConfig& cfg_;
  const KernelFn& fn_;
  CostSheet& cost_;

  std::vector<Fiber> fibers_;
  std::vector<ThreadCtx> ctxs_;
  ucontext_t sched_ctx_{};
  u32 current_ = 0;
  u32 nthreads_ = 0;

  u32 barrier_waiting_ = 0;
  const void* sched_stack_bottom_ = nullptr;  // captured at first fiber entry
  size_t sched_stack_size_ = 0;
  std::exception_ptr pending_exception_;
  std::vector<WarpOp> warp_ops_;
  std::vector<WarpSmemTrace> smem_traces_;
  std::map<std::string, AlignedBuffer> shared_arenas_;
};

namespace {
thread_local BlockRunner* g_runner = nullptr;
}

void BlockRunner::fiber_entry() {
  BlockRunner* r = g_runner;
#ifdef FZ_CUDASIM_ASAN
  // Complete the scheduler->fiber switch and learn the scheduler's stack
  // bounds so yields back can announce them.
  __sanitizer_finish_switch_fiber(nullptr, &r->sched_stack_bottom_,
                                  &r->sched_stack_size_);
#endif
  r->fiber_body();
}

void BlockRunner::fiber_body() {
  // Exceptions cannot unwind across swapcontext; capture and rethrow from
  // the scheduler.  (Kernel bodies hold no owning resources, so abandoning
  // the sibling fibers' stacks on error is safe.)
  try {
    fn_(ctxs_[current_]);
  } catch (...) {
    pending_exception_ = std::current_exception();
  }
  fibers_[current_].state = FiberState::Done;
  // A completed thread may unblock a barrier held by the remaining threads.
  release_barrier_if_complete();
#ifdef FZ_CUDASIM_ASAN
  // Final exit: a null save slot tells ASan to destroy this fiber's fake stack.
  __sanitizer_start_switch_fiber(nullptr, sched_stack_bottom_, sched_stack_size_);
#endif
  swapcontext(&fibers_[current_].ctx, &sched_ctx_);
  FZ_REQUIRE(false, "resumed a finished simulated thread");
}

void BlockRunner::run_block(Dim3 block_idx) {
  nthreads_ = cfg_.block.count();
  FZ_REQUIRE(nthreads_ > 0, "empty block");
  const u32 nwarps = (nthreads_ + kWarpSize - 1) / kWarpSize;

  fibers_.assign(nthreads_, Fiber{});
  ctxs_.clear();
  ctxs_.reserve(nthreads_);
  warp_ops_.assign(nwarps, WarpOp{});
  smem_traces_.assign(nwarps, WarpSmemTrace{});
  shared_arenas_.clear();
  barrier_waiting_ = 0;

  for (u32 t = 0; t < nthreads_; ++t) {
    ThreadCtx ctx(*this);
    ctx.block_idx = block_idx;
    ctx.block_dim = cfg_.block;
    ctx.grid_dim = cfg_.grid;
    ctx.thread_idx = Dim3{t % cfg_.block.x, (t / cfg_.block.x) % cfg_.block.y,
                          t / (cfg_.block.x * cfg_.block.y)};
    ctxs_.push_back(ctx);

    Fiber& f = fibers_[t];
    f.ltid = t;
    f.stack.resize(cfg_.stack_bytes);
    getcontext(&f.ctx);
    f.ctx.uc_stack.ss_sp = f.stack.data();
    f.ctx.uc_stack.ss_size = f.stack.size();
    f.ctx.uc_link = &sched_ctx_;
    makecontext(&f.ctx, reinterpret_cast<void (*)()>(&BlockRunner::fiber_entry), 0);
  }

  g_runner = this;
  // Round-robin scheduler: run every Ready fiber until all are Done.
  bool progress = true;
  while (progress) {
    progress = false;
    bool all_done = true;
    for (u32 t = 0; t < nthreads_; ++t) {
      if (fibers_[t].state == FiberState::Done) continue;
      all_done = false;
      if (fibers_[t].state != FiberState::Ready) continue;
      current_ = t;
      progress = true;
      resume_fiber(t);
      if (pending_exception_) {
        g_runner = nullptr;
        std::rethrow_exception(std::exchange(pending_exception_, nullptr));
      }
    }
    if (all_done) break;
    if (!progress) {
      FZ_REQUIRE(false, "simulated block deadlocked in kernel '" + cfg_.name +
                            "' (divergent collective or missing barrier "
                            "participant)");
    }
  }
  g_runner = nullptr;
  flush_smem_traces();
}

void BlockRunner::resume_fiber(u32 t) {
#ifdef FZ_CUDASIM_ASAN
  void* fake = nullptr;
  __sanitizer_start_switch_fiber(&fake, fibers_[t].stack.data(),
                                 fibers_[t].stack.size());
  swapcontext(&sched_ctx_, &fibers_[t].ctx);
  __sanitizer_finish_switch_fiber(fake, nullptr, nullptr);
#else
  swapcontext(&sched_ctx_, &fibers_[t].ctx);
#endif
}

void BlockRunner::yield_to_scheduler() {
#ifdef FZ_CUDASIM_ASAN
  Fiber& f = fibers_[current_];
  __sanitizer_start_switch_fiber(&f.asan_fake_stack, sched_stack_bottom_,
                                 sched_stack_size_);
  swapcontext(&f.ctx, &sched_ctx_);
  __sanitizer_finish_switch_fiber(fibers_[current_].asan_fake_stack, nullptr,
                                  nullptr);
#else
  swapcontext(&fibers_[current_].ctx, &sched_ctx_);
#endif
}

u32 BlockRunner::live_count() const {
  u32 n = 0;
  for (const auto& f : fibers_)
    if (f.state != FiberState::Done) ++n;
  return n;
}

u32 BlockRunner::live_warp_mask(u32 warp) const {
  u32 mask = 0;
  const u32 base = warp * kWarpSize;
  for (u32 l = 0; l < kWarpSize; ++l) {
    const u32 t = base + l;
    if (t < nthreads_ && fibers_[t].state != FiberState::Done) mask |= 1u << l;
  }
  return mask;
}

void BlockRunner::release_barrier_if_complete() {
  if (barrier_waiting_ == 0) return;
  if (barrier_waiting_ < live_count()) return;
  barrier_waiting_ = 0;
  for (auto& f : fibers_)
    if (f.state == FiberState::WaitBarrier) f.state = FiberState::Ready;
}

void BlockRunner::sync_threads() {
  fibers_[current_].state = FiberState::WaitBarrier;
  ++barrier_waiting_;
  release_barrier_if_complete();
  yield_to_scheduler();
}

void BlockRunner::complete_warp_op(u32 warp) {
  WarpOp& op = warp_ops_[warp];
  const u32 arrived = op.arrived;
  switch (op.kind) {
    case WarpOp::Kind::Ballot:
    case WarpOp::Kind::Any: {
      u32 bits = 0;
      for (u32 l = 0; l < kWarpSize; ++l)
        if ((arrived >> l & 1u) && op.values[l]) bits |= 1u << l;
      const u32 result = op.kind == WarpOp::Kind::Any ? (bits != 0 ? 1 : 0) : bits;
      for (u32 l = 0; l < kWarpSize; ++l)
        if (arrived >> l & 1u) op.mailbox[l] = result;
      break;
    }
    case WarpOp::Kind::Shfl: {
      for (u32 l = 0; l < kWarpSize; ++l) {
        if (!(arrived >> l & 1u)) continue;
        op.mailbox[l] = op.values[op.srcs[l] % kWarpSize];
      }
      break;
    }
    case WarpOp::Kind::None:
      FZ_REQUIRE(false, "completing empty warp op");
  }
  op.mailbox_valid |= arrived;
  // Reset the op immediately: results live in the mailboxes now, so a fast
  // lane may begin the next collective before slow lanes consume theirs.
  op.arrived = 0;
  op.kind = WarpOp::Kind::None;
  // Wake every parked lane of the warp.
  const u32 base = warp * kWarpSize;
  for (u32 l = 0; l < kWarpSize; ++l) {
    const u32 t = base + l;
    if (t < nthreads_ && fibers_[t].state == FiberState::WaitWarp)
      fibers_[t].state = FiberState::Ready;
  }
}

u32 BlockRunner::warp_collective(WarpOp::Kind kind, u32 value, u32 src) {
  const u32 warp = current_ / kWarpSize;
  const u32 lane = current_ % kWarpSize;
  WarpOp& op = warp_ops_[warp];
  FZ_REQUIRE((op.mailbox_valid >> lane & 1u) == 0,
             "lane re-entered collective with unconsumed result");
  if (op.arrived == 0) {
    op.kind = kind;
  } else {
    FZ_REQUIRE(op.kind == kind,
               "divergent warp collective in kernel '" + cfg_.name + "'");
  }
  op.values[lane] = value;
  op.srcs[lane] = src;
  op.arrived |= 1u << lane;

  const u32 live = live_warp_mask(warp);
  if ((op.arrived & live) == live) {
    complete_warp_op(warp);
  } else {
    fibers_[current_].state = FiberState::WaitWarp;
    yield_to_scheduler();
  }
  FZ_REQUIRE(op.mailbox_valid >> lane & 1u, "warp collective lost its result");
  op.mailbox_valid &= ~(1u << lane);
  return op.mailbox[lane];
}

u32 BlockRunner::ballot(bool pred) {
  return warp_collective(WarpOp::Kind::Ballot, pred ? 1 : 0);
}

bool BlockRunner::any(bool pred) {
  return warp_collective(WarpOp::Kind::Any, pred ? 1 : 0) != 0;
}

u32 BlockRunner::shfl(u32 v, u32 src_lane) {
  return warp_collective(WarpOp::Kind::Shfl, v, src_lane);
}

void* BlockRunner::shared_raw(const char* key, size_t bytes) {
  auto [it, inserted] = shared_arenas_.try_emplace(key);
  if (inserted) it->second.resize(bytes);
  FZ_REQUIRE(it->second.size() >= bytes, "shared array size mismatch");
  return it->second.data();
}

void BlockRunner::shared_access(size_t word_index) {
  const u32 warp = current_ / kWarpSize;
  const u32 lane = current_ % kWarpSize;
  WarpSmemTrace& tr = smem_traces_[warp];
  const u32 slot = tr.seq[lane]++;
  if (slot >= tr.slots.size()) tr.slots.resize(slot + 1);
  tr.slots[slot][lane] = {true, static_cast<u32>(word_index)};
  cost_.shared_accesses += 1;
}

void BlockRunner::flush_smem_traces() {
  // Transactions per slot = max over banks of the number of *distinct*
  // 4-byte words the warp touches in that bank (broadcast of one word is a
  // single transaction).
  for (auto& tr : smem_traces_) {
    for (const auto& slot : tr.slots) {
      std::array<std::vector<u32>, kWarpSize> words_per_bank;
      for (const auto& [valid, word] : slot) {
        if (!valid) continue;
        words_per_bank[word % kWarpSize].push_back(word);
      }
      u32 tx = 0;
      for (auto& words : words_per_bank) {
        std::sort(words.begin(), words.end());
        words.erase(std::unique(words.begin(), words.end()), words.end());
        tx = std::max<u32>(tx, static_cast<u32>(words.size()));
      }
      cost_.shared_transactions += tx;
    }
    tr.slots.clear();
    tr.seq.fill(0);
  }
}

// ---- ThreadCtx forwarding --------------------------------------------------

void ThreadCtx::sync_threads() { runner_.sync_threads(); }
u32 ThreadCtx::ballot(bool pred) { return runner_.ballot(pred); }
bool ThreadCtx::any(bool pred) { return runner_.any(pred); }
u32 ThreadCtx::shfl(u32 v, u32 src_lane) { return runner_.shfl(v, src_lane); }
void* ThreadCtx::shared_raw(const char* key, size_t bytes) {
  return runner_.shared_raw(key, bytes);
}
void ThreadCtx::shared_access(size_t word_index) { runner_.shared_access(word_index); }
void ThreadCtx::count_global_read(size_t bytes) { runner_.count_global_read(bytes); }
void ThreadCtx::count_global_write(size_t bytes) { runner_.count_global_write(bytes); }
void ThreadCtx::count_ops(size_t n) { runner_.count_ops(n); }
void ThreadCtx::count_divergence() { runner_.count_divergence(); }

CostSheet launch(const LaunchConfig& cfg, const KernelFn& fn) {
  CostSheet cost;
  cost.name = cfg.name;
  cost.kernel_launches = 1;
  BlockRunner runner(cfg, fn, cost);
  for (u32 bz = 0; bz < cfg.grid.z; ++bz)
    for (u32 by = 0; by < cfg.grid.y; ++by)
      for (u32 bx = 0; bx < cfg.grid.x; ++bx) runner.run_block(Dim3{bx, by, bz});
  return cost;
}

}  // namespace fz::cudasim
