#include "cudasim/sanitizer.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/error.hpp"

namespace fz::cudasim {

const char* hazard_name(Hazard kind) {
  switch (kind) {
    case Hazard::SharedRace: return "shared-race";
    case Hazard::SharedOutOfBounds: return "shared-out-of-bounds";
    case Hazard::GlobalOutOfBounds: return "global-out-of-bounds";
    case Hazard::UninitRead: return "uninitialized-read";
    case Hazard::DivergentBarrier: return "divergent-barrier";
    case Hazard::DivergentCollective: return "divergent-collective";
    case Hazard::BankConflict: return "bank-conflict";
  }
  return "unknown";
}

std::string SrcLoc::to_string() const {
  if (file == nullptr) return "<unknown>";
  // Report the basename: full build paths add noise, not information.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p)
    if (*p == '/' || *p == '\\') base = p + 1;
  return std::string(base) + ":" + std::to_string(line);
}

std::string AccessSite::to_string() const {
  std::string s = write ? "write " : "read ";
  s += array + "[+" + std::to_string(index) + "]";
  if (tid != kNoThread) {
    s += " by thread (" + std::to_string(thread.x) + "," +
         std::to_string(thread.y) + "," + std::to_string(thread.z) + ")";
  }
  if (loc.file != nullptr) s += " at " + loc.to_string();
  return s;
}

std::string Finding::to_string() const {
  std::string s = "[";
  s += hazard_name(kind);
  s += "] kernel '" + kernel + "' block (" + std::to_string(block.x) + "," +
       std::to_string(block.y) + "," + std::to_string(block.z) + "): ";
  s += detail.empty() ? first.to_string() : detail;
  return s;
}

void SanitizerReport::add(Finding finding) {
  u64& n = counts_[static_cast<size_t>(finding.kind)];
  ++n;
  if (n <= kMaxStoredPerKind) findings_.push_back(std::move(finding));
}

void SanitizerReport::clear() {
  findings_.clear();
  counts_.fill(0);
}

u64 SanitizerReport::total() const {
  u64 n = 0;
  for (const u64 c : counts_) n += c;
  return n;
}

std::string SanitizerReport::to_string() const {
  if (clean()) return "no hazards detected";
  std::string s = std::to_string(total()) + " hazard(s):";
  for (size_t k = 0; k < kHazardKinds; ++k) {
    if (counts_[k] == 0) continue;
    s += " " + std::string(hazard_name(static_cast<Hazard>(k))) + "=" +
         std::to_string(counts_[k]);
  }
  for (const Finding& f : findings_) s += "\n  " + f.to_string();
  const u64 stored = findings_.size();
  if (stored < total())
    s += "\n  ... (" + std::to_string(total() - stored) + " more suppressed)";
  return s;
}

// ---- ScopedSanitizer --------------------------------------------------------

namespace {
thread_local ScopedSanitizer* g_scoped = nullptr;
}

ScopedSanitizer::ScopedSanitizer(SanitizerOptions options)
    : options_(options), prev_(g_scoped) {
  g_scoped = this;
}

ScopedSanitizer::~ScopedSanitizer() { g_scoped = prev_; }

ScopedSanitizer* scoped_sanitizer() { return g_scoped; }

// ---- Sanitizer --------------------------------------------------------------

Sanitizer::Sanitizer(std::string kernel, Dim3 block_dim,
                     SanitizerOptions options, SanitizerReport& out)
    : kernel_(std::move(kernel)),
      block_dim_(block_dim),
      options_(options),
      out_(out) {}

void Sanitizer::begin_block(Dim3 block_idx, u32 nthreads) {
  block_idx_ = block_idx;
  nthreads_ = nthreads;
  block_epoch_ = 0;
  warp_epochs_.assign((nthreads + kWarpSize - 1) / kWarpSize, 0);
  arenas_.clear();
}

AccessSite Sanitizer::site(u32 tid, bool write, const std::string& array,
                           size_t index, SrcLoc loc) const {
  AccessSite a;
  a.tid = tid;
  if (tid != kNoThread) {
    a.thread = Dim3{tid % block_dim_.x, (tid / block_dim_.x) % block_dim_.y,
                    tid / (block_dim_.x * block_dim_.y)};
  }
  a.write = write;
  a.array = array;
  a.index = index;
  a.loc = loc;
  return a;
}

Finding Sanitizer::base_finding(Hazard kind) const {
  Finding f;
  f.kind = kind;
  f.kernel = kernel_;
  f.block = block_idx_;
  return f;
}

bool Sanitizer::same_epoch(u32 other_tid, u32 other_bepoch, u32 other_wepoch,
                           u32 tid) const {
  if (other_bepoch != block_epoch_) return false;
  const u32 warp = tid / kWarpSize;
  const u32 other_warp = other_tid / kWarpSize;
  // Same warp: a completed warp collective (epoch bump) orders the pair.
  if (warp == other_warp) return other_wepoch == warp_epochs_[warp];
  return true;
}

bool Sanitizer::on_shared_access(const char* key, size_t view_bytes,
                                 size_t byte_begin, size_t nbytes, bool write,
                                 u32 tid, SrcLoc loc) {
  const std::string array(key);
  if (byte_begin + nbytes > view_bytes) {
    Finding f = base_finding(Hazard::SharedOutOfBounds);
    f.first = site(tid, write, array, byte_begin, loc);
    f.detail = f.first.to_string() + " out of bounds (array holds " +
               std::to_string(view_bytes) + " bytes)";
    out_.add(std::move(f));
    return false;
  }

  Arena& arena = arenas_[array];
  if (arena.shadow.size() < byte_begin + nbytes)
    arena.shadow.resize(std::max(view_bytes, byte_begin + nbytes));

  const u32 wepoch = warp_epochs_[tid / kWarpSize];
  bool race_reported = false;
  bool uninit_reported = false;
  for (size_t i = 0; i < nbytes; ++i) {
    ByteShadow& b = arena.shadow[byte_begin + i];
    const size_t byte = byte_begin + i;
    if (write) {
      if (!race_reported && b.w_tid != kNoThread && b.w_tid != tid &&
          same_epoch(b.w_tid, b.w_bepoch, b.w_wepoch, tid)) {
        Finding f = base_finding(Hazard::SharedRace);
        f.first = site(tid, true, array, byte, loc);
        f.second = site(b.w_tid, true, array, byte, b.w_loc);
        f.detail = f.first.to_string() + " races with prior " +
                   f.second.to_string() + " (no barrier between them)";
        out_.add(std::move(f));
        race_reported = true;
      }
      // Read/write race: check both recorded same-epoch readers.
      const auto check_reader = [&](u32 r_tid, SrcLoc r_loc) {
        if (race_reported || r_tid == kNoThread || r_tid == tid) return;
        if (!same_epoch(r_tid, b.r_bepoch, b.r_wepoch, tid)) return;
        Finding f = base_finding(Hazard::SharedRace);
        f.first = site(tid, true, array, byte, loc);
        f.second = site(r_tid, false, array, byte, r_loc);
        f.detail = f.first.to_string() + " races with prior " +
                   f.second.to_string() + " (no barrier between them)";
        out_.add(std::move(f));
        race_reported = true;
      };
      check_reader(b.r_tid, b.r_loc);
      check_reader(b.r2_tid, b.r2_loc);
      b.w_tid = tid;
      b.w_bepoch = block_epoch_;
      b.w_wepoch = wepoch;
      b.w_loc = loc;
      b.written = true;
    } else {
      if (!uninit_reported && !b.written) {
        Finding f = base_finding(Hazard::UninitRead);
        f.first = site(tid, false, array, byte, loc);
        f.detail = f.first.to_string() +
                   " reads memory no thread has written (shared memory is "
                   "uninitialized on real hardware)";
        out_.add(std::move(f));
        uninit_reported = true;
      }
      if (!race_reported && b.w_tid != kNoThread && b.w_tid != tid &&
          same_epoch(b.w_tid, b.w_bepoch, b.w_wepoch, tid)) {
        Finding f = base_finding(Hazard::SharedRace);
        f.first = site(tid, false, array, byte, loc);
        f.second = site(b.w_tid, true, array, byte, b.w_loc);
        f.detail = f.first.to_string() + " races with prior " +
                   f.second.to_string() + " (no barrier between them)";
        out_.add(std::move(f));
        race_reported = true;
      }
      // Track up to two distinct readers of the current epoch so a later
      // writer can be paired even when it is itself one of the readers.
      const bool stale = b.r_tid == kNoThread ||
                         !same_epoch(b.r_tid, b.r_bepoch, b.r_wepoch, tid);
      if (stale) {
        b.r_tid = tid;
        b.r_bepoch = block_epoch_;
        b.r_wepoch = wepoch;
        b.r_loc = loc;
        b.r2_tid = kNoThread;
      } else if (b.r_tid != tid && b.r2_tid == kNoThread) {
        b.r2_tid = tid;
        b.r2_loc = loc;
      }
    }
  }
  return true;
}

void Sanitizer::on_global_oob(bool write, size_t index, size_t size, u32 tid,
                              SrcLoc loc) {
  Finding f = base_finding(Hazard::GlobalOutOfBounds);
  f.first = site(tid, write, "global", index, loc);
  f.detail = f.first.to_string() + " out of bounds (array holds " +
             std::to_string(size) + " element(s))";
  out_.add(std::move(f));
}

void Sanitizer::on_barrier_release(
    const std::vector<BarrierArrival>& arrivals) {
  if (!arrivals.empty()) {
    const BarrierArrival& ref = arrivals.front();
    for (const BarrierArrival& a : arrivals) {
      const bool same_site = a.loc.file == ref.loc.file &&
                             a.loc.line == ref.loc.line;
      if (same_site && a.seq == ref.seq) continue;
      Finding f = base_finding(Hazard::DivergentBarrier);
      f.first = site(ref.tid, false, "__syncthreads", ref.seq, ref.loc);
      f.second = site(a.tid, false, "__syncthreads", a.seq, a.loc);
      f.detail = "__syncthreads under divergent control flow: thread " +
                 std::to_string(ref.tid) + " at " + ref.loc.to_string() +
                 " (barrier #" + std::to_string(ref.seq) +
                 ") paired with thread " + std::to_string(a.tid) + " at " +
                 a.loc.to_string() + " (barrier #" + std::to_string(a.seq) +
                 ")";
      out_.add(std::move(f));
      break;  // one finding per release is enough
    }
  }
  ++block_epoch_;
}

namespace {
std::string mask_hex(u32 mask) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%08x", mask);
  return buf;
}
}  // namespace

void Sanitizer::on_collective_complete(
    u32 warp, u32 arrived, u32 expected,
    const std::array<SrcLoc, kWarpSize>& locs,
    const std::array<u32, kWarpSize>& seqs) {
  u32 ref_lane = kWarpSize;
  for (u32 l = 0; l < kWarpSize; ++l) {
    if (arrived >> l & 1u) {
      ref_lane = l;
      break;
    }
  }
  if (arrived != expected) {
    Finding f = base_finding(Hazard::DivergentCollective);
    if (ref_lane < kWarpSize)
      f.first = site(warp * kWarpSize + ref_lane, false, "warp-collective",
                     seqs[ref_lane], locs[ref_lane]);
    f.detail = "warp " + std::to_string(warp) +
               " collective completed with arrival mask " + mask_hex(arrived) +
               ", expected " + mask_hex(expected) +
               " (lane(s) exited or diverged before a full-mask collective)";
    out_.add(std::move(f));
  } else if (ref_lane < kWarpSize) {
    for (u32 l = ref_lane + 1; l < kWarpSize; ++l) {
      if (!(arrived >> l & 1u)) continue;
      const bool same_site = locs[l].file == locs[ref_lane].file &&
                             locs[l].line == locs[ref_lane].line;
      if (same_site && seqs[l] == seqs[ref_lane]) continue;
      Finding f = base_finding(Hazard::DivergentCollective);
      f.first = site(warp * kWarpSize + ref_lane, false, "warp-collective",
                     seqs[ref_lane], locs[ref_lane]);
      f.second = site(warp * kWarpSize + l, false, "warp-collective", seqs[l],
                      locs[l]);
      f.detail = "warp " + std::to_string(warp) +
                 " collective paired divergent lanes: lane " +
                 std::to_string(ref_lane) + " at " +
                 locs[ref_lane].to_string() + " (call #" +
                 std::to_string(seqs[ref_lane]) + ") with lane " +
                 std::to_string(l) + " at " + locs[l].to_string() +
                 " (call #" + std::to_string(seqs[l]) + ")";
      out_.add(std::move(f));
      break;
    }
  }
  if (warp < warp_epochs_.size()) ++warp_epochs_[warp];
}

void Sanitizer::on_collective_kind_mismatch(u32 warp, u32 lane, SrcLoc loc) {
  Finding f = base_finding(Hazard::DivergentCollective);
  f.first = site(warp * kWarpSize + lane, false, "warp-collective", 0, loc);
  f.detail = "warp " + std::to_string(warp) + " lane " + std::to_string(lane) +
             " at " + loc.to_string() +
             " entered a different collective kind than its warp siblings";
  out_.add(std::move(f));
}

void Sanitizer::on_deadlock(const std::vector<ParkedThread>& parked) {
  u32 at_barrier = 0;
  u32 at_collective = 0;
  const ParkedThread* barrier_rep = nullptr;
  const ParkedThread* collective_rep = nullptr;
  for (const ParkedThread& p : parked) {
    if (p.at_barrier) {
      ++at_barrier;
      if (barrier_rep == nullptr) barrier_rep = &p;
    } else {
      ++at_collective;
      if (collective_rep == nullptr) collective_rep = &p;
    }
  }
  Finding f = base_finding(at_collective > 0 ? Hazard::DivergentCollective
                                             : Hazard::DivergentBarrier);
  f.detail = "block deadlocked: " + std::to_string(at_barrier) +
             " thread(s) parked at __syncthreads";
  if (barrier_rep != nullptr)
    f.detail += " (" + barrier_rep->loc.to_string() + ")";
  f.detail += ", " + std::to_string(at_collective) +
              " lane(s) parked in a warp collective";
  if (collective_rep != nullptr)
    f.detail += " (" + collective_rep->loc.to_string() + ")";
  if (barrier_rep != nullptr)
    f.first = site(barrier_rep->tid, false, "__syncthreads", 0,
                   barrier_rep->loc);
  if (collective_rep != nullptr)
    f.second = site(collective_rep->tid, false, "warp-collective", 0,
                    collective_rep->loc);
  out_.add(std::move(f));
}

void Sanitizer::on_bank_slot(u32 warp, u32 degree, SrcLoc loc) {
  if (degree < options_.bank_conflict_limit) return;
  Finding f = base_finding(Hazard::BankConflict);
  f.first = site(kNoThread, false, "shared", 0, loc);
  f.detail = "warp " + std::to_string(warp) +
             " shared-memory access slot has conflict degree " +
             std::to_string(degree) + " (limit " +
             std::to_string(options_.bank_conflict_limit) + ")";
  if (loc.file != nullptr) f.detail += " at " + loc.to_string();
  out_.add(std::move(f));
}

}  // namespace fz::cudasim
