// fzcheck: a compute-sanitizer-style hazard analyzer for the CUDA
// execution-model simulator.
//
// When enabled (LaunchConfig::sanitize, a caller-supplied report, or a
// ScopedSanitizer on the calling thread), every shared/global transaction
// that already flows through the BlockRunner's accounting hooks is also fed
// to a `Sanitizer`, which reports:
//
//   * shared-memory data races — write/write and read/write to the same
//     BYTE by different threads with no ordering barrier between them.
//     Ordering is tracked with barrier epochs: a block-wide epoch bumped at
//     every __syncthreads release, refined by a per-warp epoch bumped at
//     every completed warp collective (ballot/any/shfl synchronize a warp
//     like __syncwarp).  Two accesses by different threads conflict iff
//     they fall in the same block epoch and are not ordered by a warp
//     epoch of a common warp.
//   * out-of-bounds shared/global accesses — checked against the logical
//     array view (SharedMem<T> extent or the container passed to
//     gload/gstore), so an off-by-one inside an oversized arena is caught.
//   * uninitialized shared reads — bytes read before any thread of the
//     block wrote them.  The simulator zero-fills shared arenas; real
//     hardware does not, so such reads are silent corruption on a GPU.
//   * divergent __syncthreads / warp collectives — mismatched arrival
//     masks: a collective that completes without every launched lane of
//     the warp, lanes arriving from different source locations or with
//     different per-lane collective counts, and blocks that deadlock with
//     threads parked at a barrier while warp ops wait (compute-sanitizer's
//     "barrier error").
//   * bank-conflict lint — any lockstep shared-memory access slot whose
//     conflict degree (transactions for one warp access) reaches
//     `bank_conflict_limit`, so an unpadded 32x32 tile is flagged at test
//     time even though it is functionally correct.
//
// Reports carry the kernel name, block/thread coordinates, the array key,
// and the two conflicting accesses with their source locations.  Disabled
// mode costs one null-pointer test per event.  See docs/SANITIZER.md.
#pragma once

#include <array>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "cudasim/dim3.hpp"

namespace fz::cudasim {

enum class Hazard : u8 {
  SharedRace = 0,
  SharedOutOfBounds,
  GlobalOutOfBounds,
  UninitRead,
  DivergentBarrier,
  DivergentCollective,
  BankConflict,
};
constexpr size_t kHazardKinds = 7;
const char* hazard_name(Hazard kind);

constexpr u32 kNoThread = 0xffffffffu;
constexpr u32 kDefaultBankConflictLimit = 8;

/// Lightweight source position (std::source_location distilled to the two
/// fields worth reporting; file_name() points at static storage).
struct SrcLoc {
  const char* file = nullptr;
  u32 line = 0;
  std::string to_string() const;
};

/// One side of a hazard: which thread touched which array element, how.
struct AccessSite {
  u32 tid = kNoThread;  ///< linear thread id within the block
  Dim3 thread;          ///< thread coordinates within the block
  bool write = false;
  std::string array;  ///< shared arena key, or "global"
  size_t index = 0;   ///< byte offset (shared) / element index (global)
  SrcLoc loc;
  std::string to_string() const;
};

struct Finding {
  Hazard kind = Hazard::SharedRace;
  std::string kernel;
  Dim3 block;
  AccessSite first;
  AccessSite second;   ///< conflicting access, when the hazard is a pair
  std::string detail;  ///< one-line human-readable description
  std::string to_string() const;
};

/// Structured output of a sanitized launch.  Counts every hazard; stores
/// the first kMaxStoredPerKind findings of each kind in full detail.
class SanitizerReport {
 public:
  static constexpr size_t kMaxStoredPerKind = 16;

  void add(Finding finding);
  void clear();

  u64 total() const;
  u64 count(Hazard kind) const {
    return counts_[static_cast<size_t>(kind)];
  }
  bool clean() const { return total() == 0; }
  const std::vector<Finding>& findings() const { return findings_; }
  std::string to_string() const;

 private:
  std::vector<Finding> findings_;
  std::array<u64, kHazardKinds> counts_{};
};

struct SanitizerOptions {
  /// Lint threshold: a warp access slot whose conflict degree (shared
  /// transactions) is >= this limit is reported as Hazard::BankConflict.
  u32 bank_conflict_limit = kDefaultBankConflictLimit;
};

/// RAII switch: while alive, every cudasim::launch on this thread runs
/// with hazard analysis on, accumulating into report().  This is the
/// "fzcheck mode" used by tests to sweep whole simulated pipelines:
///
///   ScopedSanitizer fzcheck;
///   sim_bitshuffle_mark_fused(...);
///   ASSERT_TRUE(fzcheck.report().clean()) << fzcheck.report().to_string();
class ScopedSanitizer {
 public:
  explicit ScopedSanitizer(SanitizerOptions options = {});
  ~ScopedSanitizer();
  ScopedSanitizer(const ScopedSanitizer&) = delete;
  ScopedSanitizer& operator=(const ScopedSanitizer&) = delete;

  SanitizerReport& report() { return report_; }
  const SanitizerReport& report() const { return report_; }
  const SanitizerOptions& options() const { return options_; }

 private:
  SanitizerReport report_;
  SanitizerOptions options_;
  ScopedSanitizer* prev_ = nullptr;
};

/// Innermost active ScopedSanitizer on this thread, or nullptr.
ScopedSanitizer* scoped_sanitizer();

/// The per-launch hazard checker driven by BlockRunner.  One instance
/// spans all blocks of a launch (findings accumulate in the report);
/// shadow state resets per block, matching shared-memory lifetime.
class Sanitizer {
 public:
  Sanitizer(std::string kernel, Dim3 block_dim, SanitizerOptions options,
            SanitizerReport& out);

  void begin_block(Dim3 block_idx, u32 nthreads);

  /// Race / OOB / uninit analysis of one shared access.  Returns false
  /// when the access is out of bounds (the caller must skip the physical
  /// access); in-bounds accesses always return true.
  bool on_shared_access(const char* key, size_t view_bytes, size_t byte_begin,
                        size_t nbytes, bool write, u32 tid, SrcLoc loc);

  void on_global_oob(bool write, size_t index, size_t size, u32 tid,
                     SrcLoc loc);

  struct BarrierArrival {
    u32 tid = kNoThread;
    u32 seq = 0;  ///< how many __syncthreads this thread has executed
    SrcLoc loc;
  };
  void on_barrier_release(const std::vector<BarrierArrival>& arrivals);

  /// A warp collective completed.  `expected` is the mask of lanes that
  /// existed at block launch; locs/seqs are the per-lane arrival records.
  void on_collective_complete(u32 warp, u32 arrived, u32 expected,
                              const std::array<SrcLoc, kWarpSize>& locs,
                              const std::array<u32, kWarpSize>& seqs);

  void on_collective_kind_mismatch(u32 warp, u32 lane, SrcLoc loc);

  struct ParkedThread {
    u32 tid = kNoThread;
    bool at_barrier = false;  ///< false: parked in a warp collective
    SrcLoc loc;
  };
  void on_deadlock(const std::vector<ParkedThread>& parked);

  /// Bank-conflict lint: one lockstep access slot of one warp produced
  /// `degree` shared transactions.
  void on_bank_slot(u32 warp, u32 degree, SrcLoc loc);

  u32 bank_limit() const { return options_.bank_conflict_limit; }

 private:
  struct ByteShadow {
    u32 w_tid = kNoThread;
    u32 w_bepoch = 0;
    u32 w_wepoch = 0;
    SrcLoc w_loc;
    u32 r_tid = kNoThread;
    u32 r_bepoch = 0;
    u32 r_wepoch = 0;
    SrcLoc r_loc;
    u32 r2_tid = kNoThread;  ///< second distinct same-epoch reader
    SrcLoc r2_loc;
    bool written = false;
  };
  struct Arena {
    std::vector<ByteShadow> shadow;
  };

  AccessSite site(u32 tid, bool write, const std::string& array, size_t index,
                  SrcLoc loc) const;
  Finding base_finding(Hazard kind) const;
  bool same_epoch(u32 other_tid, u32 other_bepoch, u32 other_wepoch,
                  u32 tid) const;

  std::string kernel_;
  Dim3 block_dim_;
  SanitizerOptions options_;
  SanitizerReport& out_;

  Dim3 block_idx_;
  u32 nthreads_ = 0;
  u32 block_epoch_ = 0;
  std::vector<u32> warp_epochs_;
  std::map<std::string, Arena> arenas_;
};

}  // namespace fz::cudasim
