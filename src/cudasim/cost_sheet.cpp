#include "cudasim/cost_sheet.hpp"

namespace fz::cudasim {

CostSheet& CostSheet::operator+=(const CostSheet& o) {
  kernel_launches += o.kernel_launches;
  global_bytes_read += o.global_bytes_read;
  global_bytes_written += o.global_bytes_written;
  shared_accesses += o.shared_accesses;
  shared_transactions += o.shared_transactions;
  thread_ops += o.thread_ops;
  divergent_branches += o.divergent_branches;
  serial_ns += o.serial_ns;
  fixed_ns += o.fixed_ns;
  return *this;
}

CostSheet sum(const std::vector<CostSheet>& parts, const std::string& name) {
  CostSheet total;
  total.name = name;
  for (const auto& p : parts) total += p;
  return total;
}

}  // namespace fz::cudasim
