// CostSheet: the per-kernel resource accounting that feeds the analytical
// device timing model (see DESIGN.md §1).  Costs are gathered either by the
// fiber simulator (small inputs, exact) or computed analytically from data
// statistics by the pipeline stages (full-size benchmark inputs).
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace fz::cudasim {

struct CostSheet {
  std::string name;          ///< kernel or stage label
  u64 kernel_launches = 0;   ///< number of device kernel launches
  u64 global_bytes_read = 0;
  u64 global_bytes_written = 0;
  u64 shared_accesses = 0;     ///< per-lane shared-memory accesses
  u64 shared_transactions = 0; ///< bank-conflict-adjusted transactions
  u64 thread_ops = 0;          ///< per-lane arithmetic/logic operations
  u64 divergent_branches = 0;  ///< warp-divergence events
  double serial_ns = 0;        ///< inherently serial, size-proportional time
                               ///  (e.g. host DEFLATE, atomic contention)
  double fixed_ns = 0;         ///< inherently serial, size-INDEPENDENT time
                               ///  (e.g. Huffman codebook build).  Scaled by
                               ///  the size-emulation factor alongside the
                               ///  launch latency (DeviceModel::seconds).

  CostSheet& operator+=(const CostSheet& o);
  u64 global_bytes() const { return global_bytes_read + global_bytes_written; }
};

CostSheet sum(const std::vector<CostSheet>& parts, const std::string& name);

}  // namespace fz::cudasim
