// Warp-accurate CUDA execution-model simulator.
//
// Kernels are ordinary C++ callables written in CUDA's per-thread style,
// receiving a ThreadCtx that exposes the launch geometry, __syncthreads,
// warp collectives (__ballot_sync / __any_sync / __shfl_sync), and
// block-shared memory.  Each simulated thread runs on a cooperative fiber
// (ucontext); a block's fibers are scheduled round-robin and park at
// synchronization points, so the collective semantics match hardware:
//   * a warp collective completes only when every live lane of the warp
//     has arrived (divergent collectives throw, as they would deadlock),
//   * __syncthreads releases only when every live thread of the block
//     has arrived.
// The simulator also keeps a CostSheet: global traffic (via the gload/
// gstore helpers), shared-memory transactions with bank-conflict
// accounting (via shared_access or the instrumented SharedMem views),
// per-lane op counts, and divergence events.  This is the apparatus used
// to validate the paper's kernels (bit-identical to the native reference)
// and its shared-memory padding claim (§3.3).  Full-size benchmark costs
// come from analytical sheets instead (see core/costs.hpp).
//
// Opt-in hazard analysis ("fzcheck"): set LaunchConfig::sanitize (or hold
// a ScopedSanitizer) and the same accounting hooks feed a
// cudasim::Sanitizer that reports shared-memory races, out-of-bounds and
// uninitialized accesses, divergent barriers/collectives, and a
// bank-conflict lint — see cudasim/sanitizer.hpp and docs/SANITIZER.md.
#pragma once

#include <functional>
#include <map>
#include <source_location>
#include <string>
#include <type_traits>
#include <vector>

#include "common/buffer.hpp"
#include "common/types.hpp"
#include "cudasim/cost_sheet.hpp"
#include "cudasim/dim3.hpp"
#include "cudasim/sanitizer.hpp"

namespace fz::cudasim {

class BlockRunner;
template <typename T>
class SharedMem;

namespace detail {
inline SrcLoc to_srcloc(const std::source_location& loc) {
  return SrcLoc{loc.file_name(), loc.line()};
}
}  // namespace detail

/// Per-thread view handed to the kernel body.
class ThreadCtx {
 public:
  Dim3 thread_idx;
  Dim3 block_idx;
  Dim3 block_dim;
  Dim3 grid_dim;

  /// Linear thread id within the block (x fastest).
  u32 linear_tid() const {
    return thread_idx.x + block_dim.x * (thread_idx.y + block_dim.y * thread_idx.z);
  }
  u32 lane() const { return linear_tid() % kWarpSize; }
  u32 warp_id() const { return linear_tid() / kWarpSize; }

  /// __syncthreads().
  void sync_threads(
      std::source_location loc = std::source_location::current());

  /// __ballot_sync(full mask, pred): bit i of the result is lane i's pred.
  u32 ballot(bool pred,
             std::source_location loc = std::source_location::current());
  /// __any_sync(full mask, pred).
  bool any(bool pred,
           std::source_location loc = std::source_location::current());
  /// __shfl_sync(full mask, v, src_lane).
  u32 shfl(u32 v, u32 src_lane,
           std::source_location loc = std::source_location::current());

  /// Block-shared zero-initialized array, keyed by name; every thread that
  /// calls this with the same key receives the same storage.  Accesses
  /// through the raw pointer are NOT instrumented — pair them with
  /// shared_access() for bank accounting, or use shared_mem() instead.
  template <typename T>
  T* shared(const char* key, size_t count) {
    return static_cast<T*>(shared_raw(key, count * sizeof(T)));
  }

  /// Instrumented block-shared array (same storage as shared() for the
  /// same key).  ld()/st() feed the bank-conflict accounting and, under
  /// fzcheck, the race/bounds/uninit analysis.
  template <typename T>
  SharedMem<T> shared_mem(const char* key, size_t count);

  /// Counted global-memory access helpers (raw-pointer form; not bounds-
  /// checkable — prefer the container form below in kernel code).
  template <typename T>
  T gload(const T* p) {
    count_global_read(sizeof(T));
    return *p;
  }
  template <typename T>
  void gstore(T* p, T v) {
    count_global_write(sizeof(T));
    *p = v;
  }

  /// Bounds-checked global load: element i of any contiguous container
  /// (span, vector, PooledBuffer view).  Out of bounds is a hard error, or
  /// a GlobalOutOfBounds finding (and a skipped access) under fzcheck.
  template <typename C>
    requires requires(const C& c) { c.data(); c.size(); }
  auto gload(const C& c, size_t i,
             std::source_location loc = std::source_location::current())
      -> std::remove_cvref_t<decltype(c.data()[0])> {
    using T = std::remove_cvref_t<decltype(c.data()[0])>;
    count_global_read(sizeof(T));
    if (i >= c.size()) {
      global_oob(false, i, c.size(), detail::to_srcloc(loc));
      return T{};
    }
    return c.data()[i];
  }
  /// Bounds-checked global store, mirror of the checked gload.
  template <typename C, typename V>
    requires requires(C& c) { c.data(); c.size(); }
  void gstore(C& c, size_t i, V v,
              std::source_location loc = std::source_location::current()) {
    using T = std::remove_reference_t<decltype(c.data()[0])>;
    count_global_write(sizeof(T));
    if (i >= c.size()) {
      global_oob(true, i, c.size(), detail::to_srcloc(loc));
      return;
    }
    c.data()[i] = static_cast<T>(v);
  }

  /// Record one shared-memory access by this lane to 4-byte word
  /// `word_index`; the runner derives bank conflicts from the per-warp
  /// access pattern (lockstep slot pairing).  Uninstrumented escape hatch
  /// used with shared(); shared_mem() records automatically.
  void shared_access(size_t word_index);

  void count_global_read(size_t bytes);
  void count_global_write(size_t bytes);
  void count_ops(size_t n);
  /// Record a warp-divergent branch event.
  void count_divergence();

 private:
  template <typename T>
  friend class SharedMem;
  friend class BlockRunner;
  explicit ThreadCtx(BlockRunner& runner) : runner_(runner) {}
  void* shared_raw(const char* key, size_t bytes);
  /// Cost accounting + hazard analysis for one shared access.  Returns
  /// false when the access must be skipped (out of bounds under fzcheck).
  bool shared_record(const char* key, size_t view_bytes, size_t byte_begin,
                     size_t nbytes, bool write, SrcLoc loc);
  void global_oob(bool write, size_t index, size_t size, SrcLoc loc);
  BlockRunner& runner_;
};

/// Typed view of a block-shared array with instrumented accessors.  ld/st
/// are the simulated SASS LDS/STS: each call records one shared-memory
/// transaction slot and, under fzcheck, runs the hazard checks.
template <typename T>
class SharedMem {
 public:
  T ld(size_t i,
       std::source_location loc = std::source_location::current()) const {
    if (!ctx_->shared_record(key_, count_ * sizeof(T), i * sizeof(T),
                             sizeof(T), false, detail::to_srcloc(loc)))
      return T{};
    return p_[i];
  }
  void st(size_t i, T v,
          std::source_location loc = std::source_location::current()) const {
    if (!ctx_->shared_record(key_, count_ * sizeof(T), i * sizeof(T),
                             sizeof(T), true, detail::to_srcloc(loc)))
      return;
    p_[i] = v;
  }
  size_t size() const { return count_; }
  /// Uninstrumented raw storage (tests; zero-cost bulk checks).
  T* raw() const { return p_; }

 private:
  friend class ThreadCtx;
  SharedMem(ThreadCtx* ctx, const char* key, T* p, size_t count)
      : ctx_(ctx), key_(key), p_(p), count_(count) {}
  ThreadCtx* ctx_;
  const char* key_;
  T* p_;
  size_t count_;
};

template <typename T>
SharedMem<T> ThreadCtx::shared_mem(const char* key, size_t count) {
  return SharedMem<T>(this, key,
                      static_cast<T*>(shared_raw(key, count * sizeof(T))),
                      count);
}

using KernelFn = std::function<void(ThreadCtx&)>;

struct LaunchConfig {
  std::string name = "kernel";
  Dim3 grid;
  Dim3 block;
  /// Fiber stack size per simulated thread.
  size_t stack_bytes = 64 * 1024;

  /// Run the launch under the fzcheck hazard analyzer.  Findings go to
  /// `report` when set; with no report (and no ScopedSanitizer on the
  /// calling thread) any hazard throws an Error summarizing the report.
  bool sanitize = false;
  /// Structured sanitizer output (caller-owned; findings are appended).
  /// Setting this implies sanitize.
  SanitizerReport* report = nullptr;
  /// Bank-conflict lint threshold (conflict degree >= limit is reported).
  u32 bank_conflict_limit = kDefaultBankConflictLimit;
};

/// Execute the kernel over the whole grid (blocks sequentially, threads of a
/// block as cooperating fibers) and return the accumulated cost sheet.
CostSheet launch(const LaunchConfig& cfg, const KernelFn& fn);

}  // namespace fz::cudasim
