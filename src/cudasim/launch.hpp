// Warp-accurate CUDA execution-model simulator.
//
// Kernels are ordinary C++ callables written in CUDA's per-thread style,
// receiving a ThreadCtx that exposes the launch geometry, __syncthreads,
// warp collectives (__ballot_sync / __any_sync / __shfl_sync), and
// block-shared memory.  Each simulated thread runs on a cooperative fiber
// (ucontext); a block's fibers are scheduled round-robin and park at
// synchronization points, so the collective semantics match hardware:
//   * a warp collective completes only when every live lane of the warp
//     has arrived (divergent collectives throw, as they would deadlock),
//   * __syncthreads releases only when every live thread of the block
//     has arrived.
// The simulator also keeps a CostSheet: global traffic (via the gload/
// gstore helpers), shared-memory transactions with bank-conflict
// accounting (via shared_access), per-lane op counts, and divergence
// events.  This is the apparatus used to validate the paper's kernels
// (bit-identical to the native reference) and its shared-memory padding
// claim (§3.3).  Full-size benchmark costs come from analytical sheets
// instead (see core/costs.hpp).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/buffer.hpp"
#include "common/types.hpp"
#include "cudasim/cost_sheet.hpp"
#include "cudasim/dim3.hpp"

namespace fz::cudasim {

class BlockRunner;

/// Per-thread view handed to the kernel body.
class ThreadCtx {
 public:
  Dim3 thread_idx;
  Dim3 block_idx;
  Dim3 block_dim;
  Dim3 grid_dim;

  /// Linear thread id within the block (x fastest).
  u32 linear_tid() const {
    return thread_idx.x + block_dim.x * (thread_idx.y + block_dim.y * thread_idx.z);
  }
  u32 lane() const { return linear_tid() % kWarpSize; }
  u32 warp_id() const { return linear_tid() / kWarpSize; }

  /// __syncthreads().
  void sync_threads();

  /// __ballot_sync(full mask, pred): bit i of the result is lane i's pred.
  u32 ballot(bool pred);
  /// __any_sync(full mask, pred).
  bool any(bool pred);
  /// __shfl_sync(full mask, v, src_lane).
  u32 shfl(u32 v, u32 src_lane);

  /// Block-shared zero-initialized array, keyed by name; every thread that
  /// calls this with the same key receives the same storage.
  template <typename T>
  T* shared(const char* key, size_t count) {
    return static_cast<T*>(shared_raw(key, count * sizeof(T)));
  }

  /// Counted global-memory access helpers.
  template <typename T>
  T gload(const T* p) {
    count_global_read(sizeof(T));
    return *p;
  }
  template <typename T>
  void gstore(T* p, T v) {
    count_global_write(sizeof(T));
    *p = v;
  }

  /// Record one shared-memory access by this lane to 4-byte word
  /// `word_index`; the runner derives bank conflicts from the per-warp
  /// access pattern (lockstep slot pairing).
  void shared_access(size_t word_index);

  void count_global_read(size_t bytes);
  void count_global_write(size_t bytes);
  void count_ops(size_t n);
  /// Record a warp-divergent branch event.
  void count_divergence();

 private:
  friend class BlockRunner;
  explicit ThreadCtx(BlockRunner& runner) : runner_(runner) {}
  void* shared_raw(const char* key, size_t bytes);
  BlockRunner& runner_;
};

using KernelFn = std::function<void(ThreadCtx&)>;

struct LaunchConfig {
  std::string name = "kernel";
  Dim3 grid;
  Dim3 block;
  /// Fiber stack size per simulated thread.
  size_t stack_bytes = 64 * 1024;
};

/// Execute the kernel over the whole grid (blocks sequentially, threads of a
/// block as cooperating fibers) and return the accumulated cost sheet.
CostSheet launch(const LaunchConfig& cfg, const KernelFn& fn);

}  // namespace fz::cudasim
