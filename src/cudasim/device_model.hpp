// Analytical GPU timing model.
//
// FZ-GPU and its competitors are dominated by global-memory traffic, fixed
// kernel-launch latency, and (for cuSZ/MGARD) long serial phases.  A roofline
// model over the CostSheet therefore reproduces the *relative* throughput
// structure of the paper's Figures 1 and 8-11 — which compressor wins, by
// roughly what factor, and where the crossovers are — without a cycle-level
// simulator.  See DESIGN.md §1 for the substitution rationale.
#pragma once

#include <string>

#include "cudasim/cost_sheet.hpp"

namespace fz::cudasim {

struct DeviceSpec {
  std::string name;
  double mem_bw_gbps;        ///< DRAM bandwidth (GB/s)
  double smem_tx_per_ns;     ///< shared-memory transactions retired per ns
  double ops_per_ns;         ///< per-lane integer/logic ops retired per ns
  double launch_overhead_us; ///< per-kernel launch latency (µs)
  double pcie_bw_gbps;       ///< effective host link bandwidth per GPU (GB/s)
  int sm_count;

  /// NVIDIA A100 (108 SMs, 40 GB HBM2): ~1555 GB/s DRAM, ~2 TB/s effective
  /// shared-memory, launch latency ~5 µs on a busy queue, 16-lane PCIe 4.0
  /// shared 4-ways => 11.4 GB/s measured by the paper (§4.6).
  static DeviceSpec a100();
  /// NVIDIA RTX A4000 (40 SMs, 16 GB GDDR6): ~448 GB/s DRAM.
  static DeviceSpec a4000();
};

class DeviceModel {
 public:
  explicit DeviceModel(DeviceSpec spec) : spec_(std::move(spec)) {}

  const DeviceSpec& spec() const { return spec_; }

  /// Modeled execution time (seconds) of one kernel/stage cost sheet:
  /// launch latency + roofline over {DRAM, shared memory, compute} + the
  /// inherently serial components.
  ///
  /// `fixed_cost_scale` implements size emulation: size-proportional costs
  /// are scale-invariant in throughput, but fixed costs (kernel launches,
  /// codebook builds) are not — when a benchmark runs on a field scaled to
  /// fraction F of the paper's full size, passing F charges the fixed
  /// costs at the same *relative* weight they would have at full scale, so
  /// the reported GB/s matches a full-size run.
  double seconds(const CostSheet& cost, double fixed_cost_scale = 1.0) const;

  /// Modeled throughput (GB/s) for compressing `input_bytes` at this cost.
  double throughput_gbps(const CostSheet& cost, u64 input_bytes) const;

 private:
  DeviceSpec spec_;
};

}  // namespace fz::cudasim
