// CUDA-like launch geometry types for the execution-model simulator.
#pragma once

#include "common/types.hpp"

namespace fz::cudasim {

struct Dim3 {
  u32 x = 1;
  u32 y = 1;
  u32 z = 1;

  constexpr Dim3() = default;
  constexpr Dim3(u32 nx) : x(nx) {}
  constexpr Dim3(u32 nx, u32 ny) : x(nx), y(ny) {}
  constexpr Dim3(u32 nx, u32 ny, u32 nz) : x(nx), y(ny), z(nz) {}

  constexpr u32 count() const { return x * y * z; }
  constexpr bool operator==(const Dim3&) const = default;
};

constexpr u32 kWarpSize = 32;

}  // namespace fz::cudasim
