// Umbrella header: the public API of the FZ library.
//
//   #include "fz.hpp"
//
//   fz::FzParams params;
//   params.eb = fz::ErrorBound::relative(1e-3);
//   auto compressed = fz::fz_compress(data, fz::Dims{nx, ny, nz}, params);
//   auto restored   = fz::fz_decompress(compressed.bytes);
//
// The engine behind all of it is fz::Codec (core/codec.hpp): a reusable
// object holding the stage graphs and a scratch-buffer pool, so repeated
// calls run allocation-free.  The fz_compress / fz_decompress one-shots
// above are thin conveniences that construct a Codec per call — prefer a
// long-lived Codec (one per thread) in services and loops.
//
// Error handling comes in two flavours: the classic API throws fz::Error
// subclasses (ParamError, FormatError), and every entry point now has a
// non-throwing try_* twin (Codec::try_compress / try_decompress,
// fz::try_inspect) returning fz::Status (common/status.hpp) — the boundary
// type for services and FFI, where a failure must become a response, never
// an unwind.
//
// Long-lived serving lives in fz::Service (service/service.hpp): a worker
// pool with one Codec per worker, a bounded admission queue with explicit
// backpressure, per-tenant policy, and small-request batching, consuming
// fz::Request / producing fz::Response (service/job.hpp).  The fzd daemon
// wraps it behind a Unix-socket wire protocol (service/server.hpp,
// service/client.hpp); see docs/SERVICE.md.
//
// Observability lives in fz::telemetry (telemetry/telemetry.hpp): attach a
// telemetry::Sink via FzParams::telemetry (or set FZ_TRACE=<path>) to get
// per-stage spans, pool counters, and Chrome-trace export.  See
// docs/OBSERVABILITY.md.  A Service shares its sink with every worker
// Codec and renders it all as one scrapeable stats page.
//
// Random access lives in fz::Reader (reader/reader.hpp): point it at a
// chunked container and read any N-D slice — misses decode on a persistent
// thread pool through an LRU chunk cache, with sequential sweeps prefetched.
//
// Individual subsystem headers remain includable on their own; this header
// pulls in everything a typical application needs: the compressor (f32 +
// f64 + chunked), the reusable Codec, stream inspection, the service
// harness, random-access reads, telemetry, metrics for verification, and
// file I/O for SDRBench-format data.
#pragma once

#include "common/status.hpp"         // fz::Status / StatusCode
#include "common/types.hpp"          // Dims, ErrorBound, scalar aliases
#include "core/chunked.hpp"          // multi-GPU / streaming containers
#include "core/codec.hpp"            // fz::Codec — the reusable engine
#include "core/pipeline.hpp"         // one-shots, FzParams, inspect()
#include "datasets/field.hpp"        // Field
#include "datasets/loader.hpp"       // .f32/.f64 file I/O
#include "metrics/metrics.hpp"       // distortion, error_bounded
#include "reader/reader.hpp"         // fz::Reader — random-access slices
#include "service/client.hpp"        // fzd wire client
#include "service/service.hpp"       // fz::Service — the job harness
#include "telemetry/telemetry.hpp"   // spans, counters, trace export
