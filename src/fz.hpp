// Umbrella header: the public API of the FZ library.
//
//   #include "fz.hpp"
//
//   fz::FzParams params;
//   params.eb = fz::ErrorBound::relative(1e-3);
//   auto compressed = fz::fz_compress(data, fz::Dims{nx, ny, nz}, params);
//   auto restored   = fz::fz_decompress(compressed.bytes);
//
// Individual subsystem headers remain includable on their own; this header
// pulls in everything a typical application needs: the compressor (f32 +
// f64 + chunked), error-bound types, metrics for verification, and file
// I/O for SDRBench-format data.
#pragma once

#include "common/types.hpp"        // Dims, ErrorBound, scalar aliases
#include "core/chunked.hpp"        // multi-GPU / streaming containers
#include "core/pipeline.hpp"       // fz_compress / fz_decompress (+_f64)
#include "datasets/field.hpp"      // Field
#include "datasets/loader.hpp"     // .f32/.f64 file I/O
#include "metrics/metrics.hpp"     // distortion, error_bounded
