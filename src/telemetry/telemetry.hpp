// fz::telemetry — structured observability for the compression pipeline.
//
// The paper's whole evaluation is per-stage: where does each kernel spend
// its time, how many bytes does it move (Figs. 8–11)?  This subsystem makes
// that view available from any running Codec, not just the bench harness:
//
//   * Span        — RAII stage scope: wall time plus numeric attributes
//                   (bytes in/out, SIMD tier, tile count, pool hits, ...).
//   * Sink        — collects spans from any number of threads.  Each thread
//                   appends to its own chunked ring recorder with a single
//                   release store (lock-free on the hot path); recorders are
//                   merged when a snapshot/export is taken.
//   * Counter     — monotonically updated process counters (pool hit/miss,
//                   bytes retained, dropped events) on the same Sink.
//   * Exporters   — write_summary() renders an aggregated per-stage table
//                   (count, total ms, GB/s, chunk-latency percentiles,
//                   compression ratio); write_chrome_trace() emits JSON for
//                   chrome://tracing / Perfetto, one timeline row per
//                   recording thread, so per-worker scheduling gaps in the
//                   chunked pipeline are directly visible.
//
// Attachment points:
//   * FzParams::telemetry — per-codec sink pointer (core/pipeline.hpp).
//   * FZ_TRACE=<path>     — process-wide env sink; every Codec without an
//                           explicit sink (and every cudasim launch) records
//                           into it, and the Chrome trace is written to
//                           <path> at process exit.
//   * ScopedSink          — thread-local override consulted wherever no
//                           explicit sink was given: Codec construction,
//                           chunked containers, and cudasim::launch all
//                           fall back to active_sink().
//
// Overhead contract: when no sink is attached every hook is one
// branch-on-nullptr — compressed streams stay byte-identical and the
// steady-state paths stay allocation-free (pinned by
// CodecTest.SteadyStateDoesNotAllocate and the telemetry tests).  With a
// sink attached, appends are wait-free for the owning thread; memory grows
// one fixed-size event chunk at a time up to a hard cap, after which events
// are counted as dropped rather than recorded.
//
// Thread-safety: all Sink methods may be called from any thread.  A Span
// must begin and end on the same thread (it holds that thread's recorder).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace fz::telemetry {

/// One completed span.  Plain data; `name`/arg keys point at static strings
/// or strings interned on the owning Sink, so events stay trivially
/// copyable and the hot path never copies characters.
struct TraceEvent {
  static constexpr u32 kMaxArgs = 8;

  struct Arg {
    const char* key = nullptr;
    double value = 0;
  };

  const char* name = nullptr;
  u64 start_ns = 0;  ///< steady-clock ns since the sink's epoch
  u64 dur_ns = 0;
  u32 tid = 0;       ///< recorder (thread) index within the sink
  u16 depth = 0;     ///< span nesting depth on that thread at start
  u16 n_args = 0;
  std::array<Arg, kMaxArgs> args{};
};

/// Fixed process counters updated atomically on the hot path.
enum class Counter : u32 {
  PoolHit = 0,        ///< BufferPool::acquire served from the free list
  PoolMiss,           ///< BufferPool::acquire that had to allocate
  PoolBytesAllocated, ///< cumulative bytes of fresh pool allocations
  PoolBytesRetained,  ///< gauge: bytes currently cached on pool free lists
  EventsDropped,      ///< spans discarded because a recorder hit its cap
  ReaderChunkHit,     ///< Reader demand access answered from the chunk cache
  ReaderChunkMiss,    ///< Reader demand access that had to decode the chunk
  ReaderPrefetchIssued,  ///< chunk decodes issued speculatively
  ReaderPrefetchHit,  ///< demand access that landed on a prefetched chunk
  ReaderChunkEvicted, ///< decoded chunks dropped by the cache's byte budget
  kCount
};
const char* counter_name(Counter c);

namespace detail {

/// Per-thread event log: a linked list of fixed-size chunks.  The owning
/// thread is the only writer; it publishes each event with one release
/// store of the chunk's count (and each new chunk with a release store of
/// the `next` pointer), so concurrent snapshot readers see only fully
/// written events.  No locks, no CAS loops on the append path.
class ThreadRecorder {
 public:
  static constexpr size_t kChunkEvents = 1024;
  /// Hard cap per recorder (chunks); beyond it events count as dropped.
  static constexpr size_t kMaxChunks = 1024;

  explicit ThreadRecorder(u32 tid) : tid_(tid) {}
  ThreadRecorder(const ThreadRecorder&) = delete;
  ThreadRecorder& operator=(const ThreadRecorder&) = delete;
  ~ThreadRecorder();

  u32 tid() const { return tid_; }

  /// Owner thread only.  Ownership is established by Sink::recorder()'s
  /// thread-local registry: a recorder is only ever handed to the thread
  /// that minted it, so these fields need no synchronization.
  bool push(const TraceEvent& ev);
  u16 depth() const { return depth_; }
  void enter() { ++depth_; }
  void leave() { --depth_; }

  /// Any thread: append every published event to `out`.
  void collect(std::vector<TraceEvent>& out) const;

 private:
  struct Chunk {
    std::array<TraceEvent, kChunkEvents> events;
    std::atomic<u32> count{0};
    std::atomic<Chunk*> next{nullptr};
  };

  u32 tid_;
  u16 depth_ = 0;      // owner thread only
  size_t chunks_ = 1;  // owner thread only
  Chunk head_;
  Chunk* tail_ = &head_;  // owner thread only
};

}  // namespace detail

class Span;

/// A telemetry sink: the collection point for spans and counters.  Create
/// one per measurement scope (a service, a bench run, a CLI invocation) and
/// hand it to codecs via FzParams::telemetry, or let FZ_TRACE install a
/// process-wide one.
class Sink {
 public:
  Sink();
  Sink(const Sink&) = delete;
  Sink& operator=(const Sink&) = delete;
  ~Sink();

  // ---- counters ------------------------------------------------------------
  void count(Counter c, i64 delta) {
    counters_[static_cast<u32>(c)].fetch_add(static_cast<u64>(delta),
                                             std::memory_order_relaxed);
  }
  u64 counter(Counter c) const {
    return counters_[static_cast<u32>(c)].load(std::memory_order_relaxed);
  }

  // ---- recording -----------------------------------------------------------
  /// Nanoseconds since this sink's construction (the trace epoch).
  u64 now_ns() const;

  /// Copy a dynamic string into sink-owned storage and return a pointer
  /// that stays valid for the sink's lifetime (for TraceEvent names coming
  /// from std::string, e.g. simulated kernel names).  Deduplicated.
  const char* intern(std::string_view s);

  // ---- export --------------------------------------------------------------
  /// Merge every thread's recorder into one list, sorted by start time.
  std::vector<TraceEvent> snapshot() const;

  /// Aggregated per-stage rows derived from a snapshot.
  struct StageSummary {
    std::string name;
    size_t count = 0;
    double total_ms = 0;
    double bytes = 0;   ///< sum of "bytes_in" args (0 if never attributed)
    double gbps = 0;    ///< bytes / total time (decimal GB, as in the paper)
  };
  std::vector<StageSummary> stage_summaries() const;

  /// Human-readable aggregate: per-stage table, chunk-latency percentiles,
  /// compression ratio, counters.
  void write_summary(std::ostream& os) const;

  /// chrome://tracing / Perfetto JSON ("traceEvents" array of complete
  /// events, one tid per recording thread).
  void write_chrome_trace(std::ostream& os) const;

 private:
  friend class Span;
  detail::ThreadRecorder* recorder();

  const u64 id_;  // process-unique, for the thread-local recorder cache
  u64 epoch_ns_;
  std::array<std::atomic<u64>, static_cast<u32>(Counter::kCount)> counters_{};

  mutable std::mutex reg_mu_;
  std::vector<std::unique_ptr<detail::ThreadRecorder>> recorders_;

  std::mutex intern_mu_;
  std::set<std::string, std::less<>> interned_;
};

/// RAII stage scope.  With a null sink every method is a single branch.
/// Begin and end must happen on the same thread.
class Span {
 public:
  Span(Sink* sink, const char* name);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  /// Attach a numeric attribute (drops silently past TraceEvent::kMaxArgs).
  void arg(const char* key, double value);

  /// Record the span now (idempotent; the destructor is then a no-op).
  void end();

  bool enabled() const { return sink_ != nullptr; }
  Sink* sink() const { return sink_; }

 private:
  Sink* sink_;
  detail::ThreadRecorder* rec_ = nullptr;
  TraceEvent ev_{};
};

/// Every process counter of `sink`, one `fz_counter{name="..."} value` line
/// each — the machine-readable sibling of Sink::write_summary's counter row.
/// Both the fzd stats endpoint (fz::Service::write_stats_text) and
/// `fz_cli slice --stats` render pool/reader counters through this one
/// function, so the two surfaces can never drift.
void write_counters_text(const Sink& sink, std::ostream& os);

/// The FZ_TRACE process sink: created on first use when the env var is set
/// (nullptr otherwise).  The Chrome trace is written to $FZ_TRACE at normal
/// process exit; flush_env_sink() writes it earlier on demand.
Sink* env_sink();
void flush_env_sink();

/// Thread-local sink override consulted by every layer when no explicit
/// FzParams::telemetry sink was given (Codec construction, the chunked
/// containers, cudasim::launch).  active_sink() returns the innermost
/// ScopedSink's sink, else env_sink().  Useful for tracing code you cannot
/// pass params through — e.g. the CLI's --trace flag wraps the whole
/// command in one ScopedSink.
class ScopedSink {
 public:
  explicit ScopedSink(Sink* sink);
  ~ScopedSink();
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

 private:
  Sink* prev_;
};
Sink* active_sink();

}  // namespace fz::telemetry
