// fzlint:hot-path — the recorder registry and intern locks back the
// lock-free span append path; fzlint flags allocation and blocking inside
// their critical sections.
#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <ostream>

namespace fz::telemetry {

namespace {

u64 steady_ns() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count());
}

std::atomic<u64> g_next_sink_id{1};

/// Thread-local cache: the last (sink, recorder) pair this thread used.
/// Keyed by the sink's process-unique id, not its address, so a new sink
/// allocated at a freed sink's address can never inherit a stale recorder.
struct RecorderCache {
  u64 sink_id = 0;
  detail::ThreadRecorder* rec = nullptr;
};
thread_local RecorderCache t_recorder_cache;

/// Set by ~RecorderRegistry: on the main thread, glibc runs TLS destructors
/// at the start of exit(), BEFORE static destructors — so a static-duration
/// sink (the FZ_TRACE EnvSink) reaches ~Sink with this thread's registry
/// vector already destroyed.  The flag is trivially-destructible, so it
/// stays readable through the whole teardown and lets ~Sink skip the dead
/// vector instead of iterating its freed buffer.
thread_local bool t_registry_dead = false;

/// Every (sink, recorder) pair this thread has ever minted, so a thread that
/// alternates between sinks re-finds its recorder without consulting the
/// sink's registry.  This thread-local list — not a std::thread::id match
/// against the sink's recorders — is the authority for "has this thread used
/// this sink before": thread ids are reused after a join, so an id match
/// could hand a dead worker's recorder to an unrelated fresh thread with no
/// happens-before edge between the two owners (a data race on the
/// owner-only fields; short-lived task-crew threads hit this in practice).
struct RecorderRegistry {
  std::vector<RecorderCache> entries;
  ~RecorderRegistry() { t_registry_dead = true; }
};
thread_local RecorderRegistry t_recorder_registry;

thread_local Sink* t_scoped_sink = nullptr;

}  // namespace

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::PoolHit: return "pool_hits";
    case Counter::PoolMiss: return "pool_misses";
    case Counter::PoolBytesAllocated: return "pool_bytes_allocated";
    case Counter::PoolBytesRetained: return "pool_bytes_retained";
    case Counter::EventsDropped: return "events_dropped";
    case Counter::ReaderChunkHit: return "reader_chunk_hits";
    case Counter::ReaderChunkMiss: return "reader_chunk_misses";
    case Counter::ReaderPrefetchIssued: return "reader_prefetch_issued";
    case Counter::ReaderPrefetchHit: return "reader_prefetch_hits";
    case Counter::ReaderChunkEvicted: return "reader_chunks_evicted";
    case Counter::kCount: break;
  }
  return "unknown";
}

// ---- detail::ThreadRecorder -------------------------------------------------

namespace detail {

ThreadRecorder::~ThreadRecorder() {
  Chunk* c = head_.next.load(std::memory_order_acquire);
  while (c != nullptr) {
    Chunk* next = c->next.load(std::memory_order_acquire);
    delete c;
    c = next;
  }
}

bool ThreadRecorder::push(const TraceEvent& ev) {
  u32 n = tail_->count.load(std::memory_order_relaxed);
  if (n == kChunkEvents) {
    if (chunks_ == kMaxChunks) return false;
    Chunk* fresh = new Chunk();
    tail_->next.store(fresh, std::memory_order_release);
    tail_ = fresh;
    ++chunks_;
    n = 0;
  }
  tail_->events[n] = ev;
  tail_->count.store(n + 1, std::memory_order_release);
  return true;
}

void ThreadRecorder::collect(std::vector<TraceEvent>& out) const {
  for (const Chunk* c = &head_; c != nullptr;
       c = c->next.load(std::memory_order_acquire)) {
    const u32 n = c->count.load(std::memory_order_acquire);
    for (u32 i = 0; i < n; ++i) out.push_back(c->events[i]);
  }
}

}  // namespace detail

// ---- Sink -------------------------------------------------------------------

Sink::Sink() : id_(g_next_sink_id.fetch_add(1)), epoch_ns_(steady_ns()) {}

Sink::~Sink() {
  // Drop this thread's cache and registry entry if they point into us;
  // other threads' thread-locals are keyed by id_ and can never match a
  // future sink, so their stale entries are inert.
  if (t_recorder_cache.sink_id == id_) t_recorder_cache = {};
  if (!t_registry_dead)
    std::erase_if(t_recorder_registry.entries,
                  [this](const RecorderCache& e) { return e.sink_id == id_; });
}

u64 Sink::now_ns() const { return steady_ns() - epoch_ns_; }

const char* Sink::intern(std::string_view s) {
  const std::lock_guard<std::mutex> lock(intern_mu_);
  // Deduplicated: allocates once per distinct name for the sink's
  // lifetime, then every later intern of that name is a pure lookup.
  return interned_.emplace(s).first->c_str();  // fzlint:allow(lock-discipline)
}

detail::ThreadRecorder* Sink::recorder() {
  if (t_recorder_cache.sink_id == id_) return t_recorder_cache.rec;
  // Cache miss can also mean "this thread switched sinks and came back" —
  // the thread-local registry re-finds the recorder without minting a
  // duplicate timeline.  A genuinely new thread starts with an empty
  // registry and always mints a fresh recorder, even if it inherited a
  // dead thread's reused std::thread::id.
  detail::ThreadRecorder* rec = nullptr;
  for (const auto& entry : t_recorder_registry.entries)
    if (entry.sink_id == id_) {
      rec = entry.rec;
      break;
    }
  if (rec == nullptr) {
    const std::lock_guard<std::mutex> lock(reg_mu_);
    // Minting a recorder happens once per (thread, sink) pair; every
    // subsequent span from this thread takes the lock-free cache path
    // above, so this is registration cost, not append cost.
    recorders_.push_back(  // fzlint:allow(lock-discipline)
        std::make_unique<detail::ThreadRecorder>(  // fzlint:allow(lock-discipline)
            static_cast<u32>(recorders_.size())));
    rec = recorders_.back().get();
    t_recorder_registry.entries.push_back({id_, rec});  // fzlint:allow(lock-discipline)
  }
  t_recorder_cache = {id_, rec};
  return rec;
}

std::vector<TraceEvent> Sink::snapshot() const {
  std::vector<TraceEvent> out;
  {
    const std::lock_guard<std::mutex> lock(reg_mu_);
    for (const auto& rec : recorders_) rec->collect(out);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

namespace {

double arg_value(const TraceEvent& ev, std::string_view key, double fallback) {
  for (u16 i = 0; i < ev.n_args; ++i)
    if (key == ev.args[i].key) return ev.args[i].value;
  return fallback;
}

}  // namespace

namespace {

std::vector<Sink::StageSummary> summarize(const std::vector<TraceEvent>& events) {
  using StageSummary = Sink::StageSummary;
  std::vector<StageSummary> rows;
  for (const TraceEvent& ev : events) {
    auto it = std::find_if(rows.begin(), rows.end(), [&](const StageSummary& r) {
      return r.name == ev.name;
    });
    if (it == rows.end()) {
      rows.push_back({});
      it = rows.end() - 1;
      it->name = ev.name;
    }
    ++it->count;
    it->total_ms += static_cast<double>(ev.dur_ns) / 1e6;
    it->bytes += arg_value(ev, "bytes_in", 0);
  }
  for (StageSummary& r : rows)
    r.gbps = r.total_ms <= 0 ? 0 : r.bytes / (r.total_ms * 1e-3) / 1e9;
  return rows;
}

}  // namespace

std::vector<Sink::StageSummary> Sink::stage_summaries() const {
  return summarize(snapshot());
}

void Sink::write_summary(std::ostream& os) const {
  const std::vector<TraceEvent> events = snapshot();
  const std::vector<StageSummary> rows = summarize(events);
  os << "telemetry summary\n";
  os << "  spans by name:\n";
  size_t width = 4;
  for (const StageSummary& r : rows) width = std::max(width, r.name.size());
  for (const StageSummary& r : rows) {
    os << "    " << std::left << std::setw(static_cast<int>(width)) << r.name
       << std::right << "  n=" << std::setw(6) << r.count << "  total="
       << std::fixed << std::setprecision(3) << std::setw(10) << r.total_ms
       << " ms";
    if (r.bytes > 0)
      os << "  " << std::setprecision(3) << std::setw(8) << r.gbps << " GB/s";
    os << "\n";
  }

  // Chunk latency percentiles (the chunked container's per-chunk spans).
  std::vector<double> chunk_ms;
  double bytes_in = 0, bytes_out = 0;
  for (const TraceEvent& ev : events) {
    const std::string_view name = ev.name;
    if (name == "chunk-compress" || name == "chunk-decompress")
      chunk_ms.push_back(static_cast<double>(ev.dur_ns) / 1e6);
    // Top-level runs only: a chunked compress also emits one nested
    // "compress" span per chunk, which would double-count the bytes.
    if ((name == "compress" || name == "compress-chunked") && ev.depth == 0) {
      bytes_in += arg_value(ev, "bytes_in", 0);
      bytes_out += arg_value(ev, "bytes_out", 0);
    }
  }
  if (!chunk_ms.empty()) {
    std::sort(chunk_ms.begin(), chunk_ms.end());
    const auto pct = [&](double p) {
      const size_t i = static_cast<size_t>(
          p * static_cast<double>(chunk_ms.size() - 1) + 0.5);
      return chunk_ms[i];
    };
    double mean = 0;
    for (double v : chunk_ms) mean += v;
    mean /= static_cast<double>(chunk_ms.size());
    os << "  chunk latency (ms): n=" << chunk_ms.size() << " min="
       << std::setprecision(3) << chunk_ms.front() << " mean=" << mean
       << " p95=" << pct(0.95) << " max=" << chunk_ms.back() << "\n";
  }
  if (bytes_out > 0)
    os << "  compression ratio: " << std::setprecision(2)
       << bytes_in / bytes_out << "x (" << static_cast<u64>(bytes_in) << " -> "
       << static_cast<u64>(bytes_out) << " bytes)\n";

  os << "  counters:";
  for (u32 c = 0; c < static_cast<u32>(Counter::kCount); ++c)
    os << " " << counter_name(static_cast<Counter>(c)) << "="
       << counter(static_cast<Counter>(c));
  os << "\n";
}

void write_counters_text(const Sink& sink, std::ostream& os) {
  for (u32 c = 0; c < static_cast<u32>(Counter::kCount); ++c)
    os << "fz_counter{name=\"" << counter_name(static_cast<Counter>(c))
       << "\"} " << sink.counter(static_cast<Counter>(c)) << "\n";
}

namespace {

/// Minimal JSON string escape (names are identifiers in practice, but a
/// user-supplied kernel label must not be able to break the trace file).
void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char tmp[8];
          std::snprintf(tmp, sizeof(tmp), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          os << tmp;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

}  // namespace

void Sink::write_chrome_trace(std::ostream& os) const {
  const std::vector<TraceEvent> events = snapshot();
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":";
    write_json_string(os, ev.name);
    // Chrome wants microseconds.  %.3f keeps full ns resolution.
    char tmp[96];
    std::snprintf(tmp, sizeof(tmp),
                  ",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u",
                  static_cast<double>(ev.start_ns) / 1e3,
                  static_cast<double>(ev.dur_ns) / 1e3, ev.tid);
    os << tmp;
    if (ev.n_args != 0) {
      os << ",\"args\":{";
      for (u16 i = 0; i < ev.n_args; ++i) {
        if (i != 0) os << ",";
        write_json_string(os, ev.args[i].key);
        std::snprintf(tmp, sizeof(tmp), ":%.17g", ev.args[i].value);
        os << tmp;
      }
      os << "}";
    }
    os << "}";
  }
  // Counters ride along as metadata-style instant events at the tail.
  for (u32 c = 0; c < static_cast<u32>(Counter::kCount); ++c) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":";
    write_json_string(os, std::string("counter/") +
                              counter_name(static_cast<Counter>(c)));
    char tmp[96];
    std::snprintf(tmp, sizeof(tmp),
                  ",\"ph\":\"C\",\"ts\":0,\"pid\":1,\"args\":{\"value\":%llu}}",
                  static_cast<unsigned long long>(
                      counter(static_cast<Counter>(c))));
    os << tmp;
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

// ---- Span -------------------------------------------------------------------

Span::Span(Sink* sink, const char* name) : sink_(sink) {
  if (sink_ == nullptr) return;
  rec_ = sink_->recorder();
  ev_.name = name;
  ev_.tid = rec_->tid();
  ev_.depth = rec_->depth();
  rec_->enter();
  ev_.start_ns = sink_->now_ns();  // last: exclude setup from the measurement
}

void Span::arg(const char* key, double value) {
  if (sink_ == nullptr || ev_.n_args == TraceEvent::kMaxArgs) return;
  ev_.args[ev_.n_args++] = {key, value};
}

void Span::end() {
  if (sink_ == nullptr) return;
  ev_.dur_ns = sink_->now_ns() - ev_.start_ns;
  rec_->leave();
  if (!rec_->push(ev_)) sink_->count(Counter::EventsDropped, 1);
  sink_ = nullptr;
}

// ---- env sink + scoped override ---------------------------------------------

namespace {

struct EnvSink {
  std::unique_ptr<Sink> sink;
  std::string path;
  std::atomic<bool> flushed{false};

  EnvSink() {
    const char* p = std::getenv("FZ_TRACE");
    if (p == nullptr || *p == '\0') return;
    path = p;
    sink = std::make_unique<Sink>();
  }

  // Flushing from the destructor (not atexit) keeps the ordering sound: an
  // atexit callback registered during construction would run AFTER this
  // object's own destructor at exit, i.e. on a dead sink.
  ~EnvSink() { flush(); }

  void flush() {
    if (sink == nullptr || flushed.exchange(true)) return;
    std::ofstream os(path);
    if (os) sink->write_chrome_trace(os);
  }
};

EnvSink& env_sink_state() {
  static EnvSink state;  // leak-free: unique_ptr member, static duration
  return state;
}

}  // namespace

Sink* env_sink() { return env_sink_state().sink.get(); }

void flush_env_sink() { env_sink_state().flush(); }

ScopedSink::ScopedSink(Sink* sink) : prev_(t_scoped_sink) {
  t_scoped_sink = sink;
}

ScopedSink::~ScopedSink() { t_scoped_sink = prev_; }

Sink* active_sink() {
  return t_scoped_sink != nullptr ? t_scoped_sink : env_sink();
}

}  // namespace fz::telemetry
