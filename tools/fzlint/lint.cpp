#include "fzlint/lint.hpp"

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <set>
#include <sstream>
#include <string_view>

#include "fzlint/lexer.hpp"

namespace fzlint {

namespace {

// ---- suppression markers ----------------------------------------------------

/// Per-file `fzlint:allow(rule,...)` markers: rule -> lines where findings
/// are silenced (the marker's line and the next one, so a marker can sit
/// either at the end of the offending line or on its own line above it).
using AllowMap = std::map<std::string, std::set<int>>;

AllowMap collect_allows(const LexedFile& lexed) {
  AllowMap allows;
  constexpr std::string_view kMarker = "fzlint:allow(";
  for (const Comment& comment : lexed.comments) {
    size_t at = comment.text.find(kMarker);
    while (at != std::string::npos) {
      const size_t open = at + kMarker.size();
      const size_t close = comment.text.find(')', open);
      if (close == std::string::npos) break;
      std::string rules = comment.text.substr(open, close - open);
      size_t start = 0;
      while (start <= rules.size()) {
        size_t comma = rules.find(',', start);
        if (comma == std::string::npos) comma = rules.size();
        std::string rule = rules.substr(start, comma - start);
        rule.erase(0, rule.find_first_not_of(" \t"));
        const size_t last = rule.find_last_not_of(" \t");
        if (last != std::string::npos) rule.erase(last + 1);
        if (!rule.empty()) {
          allows[rule].insert(comment.line);
          allows[rule].insert(comment.line + 1);
        }
        start = comma + 1;
      }
      at = comment.text.find(kMarker, close);
    }
  }
  return allows;
}

bool has_marker(const LexedFile& lexed, std::string_view marker) {
  for (const Comment& comment : lexed.comments)
    if (comment.text.find(marker) != std::string::npos) return true;
  return false;
}

// ---- layer graph ------------------------------------------------------------

struct LayerGraph {
  /// layer -> direct dependencies ("*" entries become `star`).
  std::map<std::string, std::vector<std::string>> deps;
  std::set<std::string> star;  ///< layers allowed to include everything
  /// layer -> transitive dependency closure (direct deps expanded).
  std::map<std::string, std::set<std::string>> closure;
  std::vector<std::string> errors;
};

void close_over(const std::string& layer, LayerGraph& g,
                std::set<std::string>& visiting) {
  if (g.closure.count(layer) != 0) return;
  if (!visiting.insert(layer).second) {
    g.errors.push_back("layer dependency cycle through '" + layer +
                       "' — the declared graph must be a DAG");
    g.closure[layer];  // break the recursion; the error already fails the run
    return;
  }
  std::set<std::string> reach;
  for (const std::string& dep : g.deps[layer]) {
    reach.insert(dep);
    close_over(dep, g, visiting);
    const auto& sub = g.closure[dep];
    reach.insert(sub.begin(), sub.end());
  }
  visiting.erase(layer);
  if (reach.count(layer) != 0)
    g.errors.push_back("layer '" + layer + "' depends on itself");
  g.closure[layer] = std::move(reach);
}

LayerGraph parse_layers(const std::string& text, const std::string& path) {
  LayerGraph g;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  std::vector<std::pair<std::string, int>> pending_deps;  // dep, line
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string name;
    if (!(fields >> name)) continue;
    if (name.back() != ':') {
      g.errors.push_back(path + ":" + std::to_string(lineno) +
                         ": expected 'layer: dep dep ...', got '" + name + "'");
      continue;
    }
    name.pop_back();
    if (g.deps.count(name) != 0) {
      g.errors.push_back(path + ":" + std::to_string(lineno) + ": layer '" +
                         name + "' declared twice");
      continue;
    }
    auto& deps = g.deps[name];
    std::string dep;
    while (fields >> dep) {
      if (dep == "*") {
        g.star.insert(name);
      } else {
        deps.push_back(dep);
        pending_deps.emplace_back(dep, lineno);
      }
    }
  }
  for (const auto& [dep, at] : pending_deps)
    if (g.deps.count(dep) == 0)
      g.errors.push_back(path + ":" + std::to_string(at) +
                         ": dependency on undeclared layer '" + dep + "'");
  if (g.errors.empty()) {
    std::set<std::string> visiting;
    for (const auto& [layer, unused] : g.deps) close_over(layer, g, visiting);
  }
  return g;
}

std::vector<std::string> split_path(const std::string& path) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= path.size()) {
    size_t slash = path.find('/', start);
    if (slash == std::string::npos) slash = path.size();
    if (slash > start) parts.push_back(path.substr(start, slash - start));
    start = slash + 1;
  }
  return parts;
}

/// The layer a repo-relative file belongs to ("" = outside the layered
/// world; layering is skipped for such files).
std::string layer_of_file(const std::string& path) {
  const std::vector<std::string> parts = split_path(path);
  if (parts.empty()) return "";
  if (parts[0] == "src") {
    if (parts.size() >= 3) return parts[1];
    if (parts.size() == 2 && parts[1] == "fz.hpp") return "fz";
    return "";
  }
  if (parts[0] == "tools" || parts[0] == "tests" || parts[0] == "examples" ||
      parts[0] == "bench")
    return parts[0];
  return "";
}

/// The layer an include path targets ("" = not a layered project header:
/// same-directory includes, external headers, unknown components).
std::string layer_of_include(const std::string& include_path,
                             const LayerGraph& g) {
  if (include_path == "fz.hpp") return "fz";
  const size_t slash = include_path.find('/');
  if (slash == std::string::npos) return "";
  const std::string head = include_path.substr(0, slash);
  return g.deps.count(head) != 0 ? head : "";
}

void check_layering(const Config& config, const SourceFile& file,
                    const LexedFile& lexed, const LayerGraph& g,
                    std::vector<Finding>& out) {
  const std::string layer = layer_of_file(file.path);
  if (layer.empty()) return;
  if (g.deps.count(layer) == 0) {
    out.push_back({file.path, 1, kRuleLayering,
                   "layer '" + layer + "' is not declared in " +
                       config.layers_path +
                       " — add it with its dependencies"});
    return;
  }
  if (g.star.count(layer) != 0) return;
  const std::set<std::string>& allowed = g.closure.at(layer);
  for (const Include& inc : lexed.includes) {
    if (inc.angled) continue;
    const std::string target = layer_of_include(inc.path, g);
    if (target.empty() || target == layer) continue;
    if (allowed.count(target) != 0) continue;
    std::string deps_list;
    for (const std::string& d : g.deps.at(layer))
      deps_list += (deps_list.empty() ? "" : ", ") + d;
    if (deps_list.empty()) deps_list = "(none)";
    out.push_back({file.path, inc.line, kRuleLayering,
                   "layer '" + layer + "' may not include '" + inc.path +
                       "' (layer '" + target + "'); declared deps of '" +
                       layer + "': " + deps_list});
  }
}

// ---- lock discipline --------------------------------------------------------

bool is_growth_call(const std::string& name) {
  static const std::set<std::string> kGrowth = {
      "push_back", "emplace_back", "push_front", "emplace_front",
      "emplace",   "insert",       "resize",     "reserve",
      "append"};
  return kGrowth.count(name) != 0;
}

bool is_wait_call(const std::string& name) {
  static const std::set<std::string> kWait = {"wait", "wait_for", "wait_until",
                                              "join"};
  return kWait.count(name) != 0;
}

void check_lock_discipline(const SourceFile& file, const LexedFile& lexed,
                           std::vector<Finding>& out) {
  if (!has_marker(lexed, kHotPathMarker)) return;

  struct ActiveLock {
    int depth;
    int line;
  };
  std::vector<ActiveLock> locks;
  int depth = 0;
  const auto& toks = lexed.tokens;

  auto text_at = [&](size_t i) -> const std::string& {
    static const std::string empty;
    return i < toks.size() ? toks[i].text : empty;
  };
  auto kind_at = [&](size_t i) {
    return i < toks.size() ? toks[i].kind : TokKind::Punct;
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::Punct) {
      if (t.text == "{") ++depth;
      if (t.text == "}") {
        depth = depth > 0 ? depth - 1 : 0;
        while (!locks.empty() && locks.back().depth > depth) locks.pop_back();
      }
      continue;
    }
    if (t.kind != TokKind::Identifier) continue;

    if (t.text == "lock_guard" || t.text == "unique_lock" ||
        t.text == "scoped_lock") {
      locks.push_back({depth, t.line});
      continue;
    }
    if (locks.empty()) continue;

    const std::string held =
        " while holding the lock taken at line " +
        std::to_string(locks.back().line) +
        " — move it outside the critical section";
    const std::string& prev = i > 0 ? toks[i - 1].text : "";
    const bool member_call = prev == "." || prev == "->";

    if (t.text == "new" && prev != "operator") {
      out.push_back({file.path, t.line, kRuleLockDiscipline,
                     "'new' allocates" + held});
    } else if (t.text.rfind("make_", 0) == 0 &&
               (text_at(i + 1) == "(" || text_at(i + 1) == "<")) {
      out.push_back({file.path, t.line, kRuleLockDiscipline,
                     "'" + t.text + "' allocates" + held});
    } else if (member_call && is_growth_call(t.text) &&
               text_at(i + 1) == "(") {
      out.push_back({file.path, t.line, kRuleLockDiscipline,
                     "container growth '." + t.text + "()' may allocate" +
                         held});
    } else if (member_call && is_wait_call(t.text) && text_at(i + 1) == "(") {
      out.push_back({file.path, t.line, kRuleLockDiscipline,
                     "blocking '." + t.text + "()'" + held});
    } else if ((t.text == "sleep_for" || t.text == "sleep_until") &&
               text_at(i + 1) == "(") {
      out.push_back({file.path, t.line, kRuleLockDiscipline,
                     "blocking '" + t.text + "'" + held});
    } else if (t.text == "Span" &&
               (kind_at(i + 1) == TokKind::Identifier ||
                text_at(i + 1) == "(" || text_at(i + 1) == "{")) {
      out.push_back({file.path, t.line, kRuleLockDiscipline,
                     "telemetry Span constructed" + held +
                         " (spans time their whole scope; a span inside a "
                         "lock measures contention as work)"});
    }
  }
}

// ---- layout audit -----------------------------------------------------------

struct FieldLayout {
  std::string name;
  std::uint64_t offset;
  std::uint64_t size;
  int line;
};

struct StructLayout {
  std::string name;
  int line;
  std::uint64_t size = 0;
  std::vector<FieldLayout> fields;
};

/// Byte width of the scalar types the on-disk structs are built from.
/// Anything else inside a packed struct is a layout-audit finding: fzlint
/// must be able to compute the layout it certifies.
std::uint64_t scalar_size(const std::string& type) {
  static const std::map<std::string, std::uint64_t> kSizes = {
      {"u8", 1},  {"i8", 1},  {"char", 1},    {"bool", 1},
      {"u16", 2}, {"i16", 2}, {"u32", 4},     {"i32", 4},
      {"f32", 4}, {"u64", 8}, {"i64", 8},     {"f64", 8},
      {"float", 4},           {"double", 8},
      {"uint8_t", 1},  {"int8_t", 1},  {"uint16_t", 2}, {"int16_t", 2},
      {"uint32_t", 4}, {"int32_t", 4}, {"uint64_t", 8}, {"int64_t", 8}};
  const auto it = kSizes.find(type);
  return it == kSizes.end() ? 0 : it->second;
}

bool parse_uint(const std::string& text, std::uint64_t& value) {
  std::string digits;
  for (char c : text)
    if (c != '\'') digits.push_back(c);
  // Strip integer suffixes (u, l, ull, ...).
  while (!digits.empty()) {
    const char c = digits.back();
    if (c == 'u' || c == 'U' || c == 'l' || c == 'L')
      digits.pop_back();
    else
      break;
  }
  if (digits.empty()) return false;
  try {
    size_t used = 0;
    value = std::stoull(digits, &used, 0);
    return used == digits.size();
  } catch (...) {
    return false;
  }
}

bool pp_is_pack_push(const std::string& text) {
  return text.find("pragma") != std::string::npos &&
         text.find("pack") != std::string::npos &&
         text.find("push") != std::string::npos;
}
bool pp_is_pack_pop(const std::string& text) {
  return text.find("pragma") != std::string::npos &&
         text.find("pack") != std::string::npos &&
         text.find("pop") != std::string::npos;
}

/// Parse every `struct Name { scalar fields... };` inside #pragma
/// pack(push, 1) regions.  Reports (as findings) members it cannot size —
/// the audit refuses to certify a layout it cannot compute.
std::vector<StructLayout> parse_packed_structs(const SourceFile& file,
                                               const LexedFile& lexed,
                                               std::vector<Finding>& out) {
  std::vector<StructLayout> structs;
  const auto& toks = lexed.tokens;
  int pack_depth = 0;

  auto text_at = [&](size_t i) -> const std::string& {
    static const std::string empty;
    return i < toks.size() ? toks[i].text : empty;
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::Pp) {
      if (pp_is_pack_push(t.text)) ++pack_depth;
      if (pp_is_pack_pop(t.text)) pack_depth = std::max(0, pack_depth - 1);
      continue;
    }
    if (pack_depth == 0 || t.kind != TokKind::Identifier || t.text != "struct")
      continue;
    if (i + 2 >= toks.size() || toks[i + 1].kind != TokKind::Identifier ||
        text_at(i + 2) != "{")
      continue;  // forward declaration or something fancier

    StructLayout layout;
    layout.name = toks[i + 1].text;
    layout.line = toks[i + 1].line;
    size_t j = i + 3;
    int braces = 1;
    std::uint64_t offset = 0;
    bool parse_ok = true;

    while (j < toks.size() && braces > 0) {
      const Token& m = toks[j];
      if (m.kind == TokKind::Punct && m.text == "{") {
        ++braces;
        ++j;
        continue;
      }
      if (m.kind == TokKind::Punct && m.text == "}") {
        --braces;
        ++j;
        continue;
      }
      if (braces != 1 || m.kind != TokKind::Identifier) {
        ++j;
        continue;
      }
      // A member declaration: TYPE name[, name...][arrays];
      const std::uint64_t elem = scalar_size(m.text);
      if (elem == 0) {
        out.push_back(
            {file.path, m.line, kRuleLayoutAudit,
             "cannot compute the layout of packed struct '" + layout.name +
                 "': member type '" + m.text +
                 "' is not a fixed-width scalar — on-disk structs must be "
                 "flat scalar records"});
        parse_ok = false;
        // Skip to the end of this struct.
        while (j < toks.size() && braces > 0) {
          if (toks[j].kind == TokKind::Punct && toks[j].text == "{") ++braces;
          if (toks[j].kind == TokKind::Punct && toks[j].text == "}") --braces;
          ++j;
        }
        break;
      }
      ++j;
      // Declarator list.
      while (j < toks.size()) {
        if (toks[j].kind != TokKind::Identifier) break;
        FieldLayout field;
        field.name = toks[j].text;
        field.line = toks[j].line;
        field.offset = offset;
        std::uint64_t count = 1;
        ++j;
        if (text_at(j) == "[") {
          std::uint64_t n = 0;
          if (j + 2 < toks.size() && toks[j + 1].kind == TokKind::Number &&
              parse_uint(toks[j + 1].text, n) && text_at(j + 2) == "]") {
            count = n;
            j += 3;
          } else {
            out.push_back({file.path, field.line, kRuleLayoutAudit,
                           "cannot compute the layout of packed struct '" +
                               layout.name + "': array extent of '" +
                               field.name + "' is not a literal"});
            parse_ok = false;
            break;
          }
        }
        if (text_at(j) == "=") {
          // Default member initializer (e.g. `u32 magic = kMagic;`): skip
          // to the ',' or ';' that ends this declarator — initializers
          // don't affect layout.
          ++j;
          int depth = 0;
          while (j < toks.size()) {
            const std::string& t = toks[j].text;
            if (toks[j].kind == TokKind::Punct) {
              if (t == "(" || t == "{" || t == "[") ++depth;
              else if (t == ")" || t == "}" || t == "]") --depth;
              else if (depth == 0 && (t == "," || t == ";")) break;
            }
            ++j;
          }
        }
        field.size = elem * count;
        offset += field.size;
        layout.fields.push_back(field);
        if (text_at(j) == ",") {
          ++j;
          continue;
        }
        break;
      }
      if (!parse_ok) break;
      if (text_at(j) == ";") ++j;
    }
    if (parse_ok && !layout.fields.empty()) {
      layout.size = offset;
      structs.push_back(std::move(layout));
    }
    i = j > i ? j - 1 : i;
  }
  return structs;
}

struct AssertedValue {
  std::uint64_t value;
  int line;
};

struct LayoutAsserts {
  std::map<std::string, AssertedValue> sizeof_of;  // struct -> asserted size
  std::map<std::string, std::map<std::string, AssertedValue>> offset_of;
  std::map<std::string, int> trivially_copyable;  // struct -> assert line
};

/// Collect static_assert(sizeof(T) == N), static_assert(offsetof(T, f) == N)
/// and static_assert(std::is_trivially_copyable_v<T>) facts from the token
/// stream.  Values must be integer literals — that is the point: the
/// numbers in the header are the contract fzlint checks the declaration
/// against.
LayoutAsserts collect_layout_asserts(const LexedFile& lexed) {
  LayoutAsserts facts;
  const auto& toks = lexed.tokens;

  auto text_at = [&](size_t i) -> const std::string& {
    static const std::string empty;
    return i < toks.size() ? toks[i].text : empty;
  };

  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::Identifier ||
        toks[i].text != "static_assert" || text_at(i + 1) != "(")
      continue;
    size_t j = i + 2;
    if (text_at(j) == "std" && text_at(j + 1) == "::") j += 2;

    if (text_at(j) == "sizeof" && text_at(j + 1) == "(" &&
        toks.size() > j + 5 && toks[j + 2].kind == TokKind::Identifier &&
        text_at(j + 3) == ")" && text_at(j + 4) == "==" &&
        toks[j + 5].kind == TokKind::Number) {
      std::uint64_t value = 0;
      if (parse_uint(toks[j + 5].text, value))
        facts.sizeof_of[toks[j + 2].text] = {value, toks[i].line};
    } else if (text_at(j) == "offsetof" && text_at(j + 1) == "(" &&
               toks.size() > j + 7 &&
               toks[j + 2].kind == TokKind::Identifier &&
               text_at(j + 3) == "," &&
               toks[j + 4].kind == TokKind::Identifier &&
               text_at(j + 5) == ")" && text_at(j + 6) == "==" &&
               toks[j + 7].kind == TokKind::Number) {
      std::uint64_t value = 0;
      if (parse_uint(toks[j + 7].text, value))
        facts.offset_of[toks[j + 2].text][toks[j + 4].text] = {value,
                                                               toks[i].line};
    } else if (text_at(j) == "is_trivially_copyable_v" &&
               text_at(j + 1) == "<" && toks.size() > j + 2 &&
               toks[j + 2].kind == TokKind::Identifier) {
      facts.trivially_copyable[toks[j + 2].text] = toks[i].line;
    } else if (text_at(j) == "is_trivially_copyable" &&
               text_at(j + 1) == "<" && toks.size() > j + 2 &&
               toks[j + 2].kind == TokKind::Identifier) {
      facts.trivially_copyable[toks[j + 2].text] = toks[i].line;
    }
  }
  return facts;
}

void check_layout(const SourceFile& file, const LexedFile& lexed,
                  std::vector<Finding>& out) {
  const std::vector<StructLayout> structs =
      parse_packed_structs(file, lexed, out);
  const LayoutAsserts facts = collect_layout_asserts(lexed);

  for (const StructLayout& s : structs) {
    // sizeof.
    const auto size_it = facts.sizeof_of.find(s.name);
    if (size_it == facts.sizeof_of.end()) {
      out.push_back({file.path, s.line, kRuleLayoutAudit,
                     "on-disk struct '" + s.name +
                         "' has no static_assert(sizeof(" + s.name + ") == " +
                         std::to_string(s.size) + ")"});
    } else if (size_it->second.value != s.size) {
      out.push_back({file.path, size_it->second.line, kRuleLayoutAudit,
                     "sizeof assert for '" + s.name + "' says " +
                         std::to_string(size_it->second.value) +
                         " but the declaration lays out to " +
                         std::to_string(s.size) + " bytes"});
    }
    // offsetof, every field.
    const auto offsets_it = facts.offset_of.find(s.name);
    for (const FieldLayout& f : s.fields) {
      const AssertedValue* asserted = nullptr;
      if (offsets_it != facts.offset_of.end()) {
        const auto it = offsets_it->second.find(f.name);
        if (it != offsets_it->second.end()) asserted = &it->second;
      }
      if (asserted == nullptr) {
        out.push_back({file.path, f.line, kRuleLayoutAudit,
                       "field '" + s.name + "::" + f.name +
                           "' has no static_assert(offsetof(" + s.name + ", " +
                           f.name + ") == " + std::to_string(f.offset) + ")"});
      } else if (asserted->value != f.offset) {
        out.push_back({file.path, asserted->line, kRuleLayoutAudit,
                       "offsetof assert for '" + s.name + "::" + f.name +
                           "' says " + std::to_string(asserted->value) +
                           " but the declaration places it at byte " +
                           std::to_string(f.offset)});
      }
    }
    // Asserts naming fields the declaration does not have (stale asserts).
    if (offsets_it != facts.offset_of.end()) {
      for (const auto& [field, asserted] : offsets_it->second) {
        const bool known =
            std::any_of(s.fields.begin(), s.fields.end(),
                        [&](const FieldLayout& f) { return f.name == field; });
        if (!known)
          out.push_back({file.path, asserted.line, kRuleLayoutAudit,
                         "offsetof assert names '" + s.name + "::" + field +
                             "', which the declaration does not have"});
      }
    }
    // Trivial copyability: memcpy in/out of the stream must be legal.
    if (facts.trivially_copyable.count(s.name) == 0)
      out.push_back({file.path, s.line, kRuleLayoutAudit,
                     "on-disk struct '" + s.name +
                         "' has no static_assert(std::is_trivially_copyable_v<" +
                         s.name + ">)"});
  }
}

// ---- hygiene ----------------------------------------------------------------

bool in_src(const std::string& path) { return path.rfind("src/", 0) == 0; }

bool is_thread_pool_file(const std::string& path) {
  return path == "src/common/thread_pool.hpp" ||
         path == "src/common/thread_pool.cpp";
}

void check_hygiene(const SourceFile& file, const LexedFile& lexed,
                   std::vector<Finding>& out) {
  if (!in_src(file.path)) return;
  static const std::map<std::string, std::string> kBannedCalls = {
      {"malloc", "use AlignedBuffer / BufferPool (common/buffer.hpp)"},
      {"calloc", "use AlignedBuffer / BufferPool (common/buffer.hpp)"},
      {"realloc", "use AlignedBuffer / BufferPool (common/buffer.hpp)"},
      {"printf", "library code must not write to stdout; return data or "
                 "take an ostream (examples/ may print)"},
      {"fprintf", "library code must not write to stdio; take an ostream "
                  "(examples/ may print)"},
      {"sprintf", "unbounded formatting; use std::string / ostringstream"},
      {"rand", "not reproducible across platforms; use common/rng.hpp"},
      {"srand", "not reproducible across platforms; use common/rng.hpp"}};

  const auto& toks = lexed.tokens;
  auto text_at = [&](size_t i) -> const std::string& {
    static const std::string empty;
    return i < toks.size() ? toks[i].text : empty;
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::Identifier) continue;
    const std::string& prev = i > 0 ? toks[i - 1].text : "";

    const auto banned = kBannedCalls.find(t.text);
    if (banned != kBannedCalls.end() && text_at(i + 1) == "(" &&
        prev != "." && prev != "->" && prev != "operator") {
      out.push_back({file.path, t.line, kRuleHygiene,
                     "banned call '" + t.text + "()': " + banned->second});
      continue;
    }

    // std::thread outside the pool implementation.  std::thread::<member>
    // (hardware_concurrency, id) is metadata, not thread creation — allowed.
    if (t.text == "std" && text_at(i + 1) == "::" &&
        text_at(i + 2) == "thread" && text_at(i + 3) != "::" &&
        !is_thread_pool_file(file.path)) {
      out.push_back(
          {file.path, t.line, kRuleHygiene,
           "raw std::thread outside common/thread_pool.{hpp,cpp}: use "
           "fz::ThreadPool or run_task_crew so threads stay pooled and "
           "exceptions stay contained"});
    }
  }
}

}  // namespace

// ---- engine -----------------------------------------------------------------

Report run_lint(const Config& config, const std::vector<SourceFile>& files) {
  Report report;
  for (const char* rule : {kRuleLayering, kRuleLockDiscipline,
                           kRuleLayoutAudit, kRuleHygiene})
    report.per_rule[rule] = 0;

  const LayerGraph graph = parse_layers(config.layers_text, config.layers_path);
  for (const std::string& err : graph.errors)
    report.errors.push_back("[layering] " + err);

  const std::set<std::string> layout_files(config.layout_files.begin(),
                                           config.layout_files.end());

  std::vector<Finding> findings;
  for (const SourceFile& file : files) {
    const LexedFile lexed = lex(file.content);
    const AllowMap allows = collect_allows(lexed);

    std::vector<Finding> raw;
    if (graph.errors.empty()) check_layering(config, file, lexed, graph, raw);
    check_lock_discipline(file, lexed, raw);
    if (layout_files.count(file.path) != 0) check_layout(file, lexed, raw);
    check_hygiene(file, lexed, raw);

    for (Finding& f : raw) {
      const auto allowed = allows.find(f.rule);
      if (allowed != allows.end() && allowed->second.count(f.line) != 0) {
        ++report.suppressed;
        continue;
      }
      findings.push_back(std::move(f));
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  for (const Finding& f : findings) ++report.per_rule[f.rule];
  report.findings = std::move(findings);
  return report;
}

// ---- reporters --------------------------------------------------------------

void write_text_report(const Report& report, std::ostream& os) {
  for (const std::string& err : report.errors) os << "fzlint: error: " << err << "\n";
  for (const Finding& f : report.findings)
    os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
       << "\n";
  for (const auto& [rule, count] : report.per_rule)
    os << "fzlint: " << rule << ": " << count << " finding"
       << (count == 1 ? "" : "s") << "\n";
  os << "fzlint: " << report.findings.size() << " total, " << report.suppressed
     << " suppressed, " << report.errors.size() << " errors — "
     << (report.clean() ? "clean" : "FAILED") << "\n";
}

namespace {

void json_escape(const std::string& s, std::ostream& os) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void write_json_report(const Report& report, std::ostream& os) {
  os << "{\n  \"findings\": [";
  for (size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"file\": ";
    json_escape(f.file, os);
    os << ", \"line\": " << f.line << ", \"rule\": ";
    json_escape(f.rule, os);
    os << ", \"message\": ";
    json_escape(f.message, os);
    os << "}";
  }
  os << (report.findings.empty() ? "" : "\n  ") << "],\n  \"summary\": {";
  bool first = true;
  for (const auto& [rule, count] : report.per_rule) {
    os << (first ? "" : ", ");
    json_escape(rule, os);
    os << ": " << count;
    first = false;
  }
  os << "},\n  \"suppressed\": " << report.suppressed << ",\n  \"errors\": [";
  for (size_t i = 0; i < report.errors.size(); ++i) {
    os << (i == 0 ? "" : ", ");
    json_escape(report.errors[i], os);
  }
  os << "],\n  \"clean\": " << (report.clean() ? "true" : "false") << "\n}\n";
}

}  // namespace fzlint
