#include "fzlint/lexer.hpp"

#include <cctype>

namespace fzlint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) {}

  bool done() const { return pos_ >= src_.size(); }
  char peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char take() {
    const char c = src_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }
  int line() const { return line_; }
  size_t pos() const { return pos_; }
  std::string_view slice(size_t from) const {
    return src_.substr(from, pos_ - from);
  }

 private:
  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
};

/// Consume a quoted literal starting at the opening quote.  Handles escape
/// sequences; stops at the closing quote or end-of-file.
void take_quoted(Cursor& c, char quote) {
  c.take();  // opening quote
  while (!c.done()) {
    const char ch = c.take();
    if (ch == '\\' && !c.done()) {
      c.take();
      continue;
    }
    if (ch == quote) return;
  }
}

/// Consume R"delim( ... )delim" starting at the opening double quote.
void take_raw_string(Cursor& c) {
  c.take();  // the "
  std::string delim;
  while (!c.done() && c.peek() != '(') delim.push_back(c.take());
  if (!c.done()) c.take();  // the (
  const std::string closer = ")" + delim + "\"";
  std::string tail;
  while (!c.done()) {
    tail.push_back(c.take());
    if (tail.size() > closer.size()) tail.erase(tail.begin());
    if (tail == closer) return;
  }
}

/// Numbers: consume digits, separators, radix prefixes, suffixes and
/// exponents.  A sign after e/E/p/P belongs to the literal.
void take_number(Cursor& c) {
  while (!c.done()) {
    const char ch = c.peek();
    if (std::isalnum(static_cast<unsigned char>(ch)) || ch == '.' ||
        ch == '\'') {
      const char taken = c.take();
      if ((taken == 'e' || taken == 'E' || taken == 'p' || taken == 'P') &&
          (c.peek() == '+' || c.peek() == '-'))
        c.take();
      continue;
    }
    break;
  }
}

/// Fold one preprocessor directive (with backslash continuations) into a
/// single normalized string; newlines inside become spaces.
std::string take_pp_line(Cursor& c) {
  std::string text;
  while (!c.done()) {
    const char ch = c.peek();
    if (ch == '\\' && (c.peek(1) == '\n' ||
                       (c.peek(1) == '\r' && c.peek(2) == '\n'))) {
      c.take();                       // backslash
      while (c.peek() != '\n') c.take();
      c.take();                       // newline
      text.push_back(' ');
      continue;
    }
    if (ch == '\n') break;
    if (ch == '/' && c.peek(1) == '/') break;  // trailing comment
    if (ch == '/' && c.peek(1) == '*') break;  // handled by main loop
    text.push_back(c.take());
  }
  // Trim trailing whitespace for stable matching.
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back())))
    text.pop_back();
  return text;
}

/// Parse `#include "path"` / `#include <path>` out of a folded directive.
bool parse_include(const std::string& directive, std::string& path,
                   bool& angled) {
  size_t i = 0;
  auto skip_ws = [&] {
    while (i < directive.size() &&
           std::isspace(static_cast<unsigned char>(directive[i])))
      ++i;
  };
  skip_ws();
  if (i >= directive.size() || directive[i] != '#') return false;
  ++i;
  skip_ws();
  if (directive.compare(i, 7, "include") != 0) return false;
  i += 7;
  skip_ws();
  if (i >= directive.size()) return false;
  const char open = directive[i];
  const char close = open == '<' ? '>' : open == '"' ? '"' : '\0';
  if (close == '\0') return false;
  const size_t start = ++i;
  const size_t end = directive.find(close, start);
  if (end == std::string::npos) return false;
  path = directive.substr(start, end - start);
  angled = open == '<';
  return true;
}

}  // namespace

LexedFile lex(std::string_view src) {
  LexedFile out;
  Cursor c(src);
  bool line_start = true;  // only whitespace seen so far on this line

  while (!c.done()) {
    const char ch = c.peek();

    if (ch == '\n') {
      c.take();
      line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(ch))) {
      c.take();
      continue;
    }

    // Comments.
    if (ch == '/' && c.peek(1) == '/') {
      const int line = c.line();
      c.take();
      c.take();
      const size_t from = c.pos();
      while (!c.done() && c.peek() != '\n') c.take();
      out.comments.push_back({std::string(c.slice(from)), line});
      continue;
    }
    if (ch == '/' && c.peek(1) == '*') {
      const int line = c.line();
      c.take();
      c.take();
      const size_t from = c.pos();
      size_t end = c.pos();
      while (!c.done()) {
        if (c.peek() == '*' && c.peek(1) == '/') {
          end = c.pos();
          c.take();
          c.take();
          break;
        }
        c.take();
        end = c.pos();
      }
      std::string_view body = c.slice(from);
      body = body.substr(0, end - from);
      out.comments.push_back({std::string(body), line});
      continue;
    }

    // Preprocessor directive: '#' first on its (logical) line.
    if (ch == '#' && line_start) {
      const int line = c.line();
      const std::string directive = take_pp_line(c);
      std::string path;
      bool angled = false;
      if (parse_include(directive, path, angled))
        out.includes.push_back({path, line, angled});
      out.tokens.push_back({TokKind::Pp, directive, line});
      line_start = false;
      continue;
    }
    line_start = false;

    // Literals.
    if (ch == '"') {
      const int line = c.line();
      take_quoted(c, '"');
      out.tokens.push_back({TokKind::String, "\"\"", line});
      continue;
    }
    if (ch == '\'') {
      const int line = c.line();
      take_quoted(c, '\'');
      out.tokens.push_back({TokKind::CharLit, "''", line});
      continue;
    }

    // Identifiers (and raw-string / encoding prefixes).
    if (ident_start(ch)) {
      const int line = c.line();
      const size_t from = c.pos();
      while (!c.done() && ident_char(c.peek())) c.take();
      std::string text(c.slice(from));
      // R"(...)" — the identifier was actually a raw-string prefix.
      if ((text == "R" || text == "u8R" || text == "uR" || text == "UR" ||
           text == "LR") &&
          c.peek() == '"') {
        take_raw_string(c);
        out.tokens.push_back({TokKind::String, "\"\"", line});
        continue;
      }
      // "..."-adjacent encoding prefixes (u8"x").
      if ((text == "u8" || text == "u" || text == "U" || text == "L") &&
          c.peek() == '"') {
        take_quoted(c, '"');
        out.tokens.push_back({TokKind::String, "\"\"", line});
        continue;
      }
      out.tokens.push_back({TokKind::Identifier, std::move(text), line});
      continue;
    }

    // Numbers (including .5 style).
    if (std::isdigit(static_cast<unsigned char>(ch)) ||
        (ch == '.' && std::isdigit(static_cast<unsigned char>(c.peek(1))))) {
      const int line = c.line();
      const size_t from = c.pos();
      take_number(c);
      out.tokens.push_back({TokKind::Number, std::string(c.slice(from)), line});
      continue;
    }

    // Punctuation.  Keep the three sequences rules match on as single
    // tokens; everything else is one character at a time.
    {
      const int line = c.line();
      if (ch == ':' && c.peek(1) == ':') {
        c.take();
        c.take();
        out.tokens.push_back({TokKind::Punct, "::", line});
      } else if (ch == '-' && c.peek(1) == '>') {
        c.take();
        c.take();
        out.tokens.push_back({TokKind::Punct, "->", line});
      } else if (ch == '=' && c.peek(1) == '=') {
        c.take();
        c.take();
        out.tokens.push_back({TokKind::Punct, "==", line});
      } else {
        out.tokens.push_back({TokKind::Punct, std::string(1, c.take()), line});
      }
    }
  }
  return out;
}

}  // namespace fzlint
