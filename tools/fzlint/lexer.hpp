// fzlint's C++ lexer: just enough tokenization to drive the rule engine.
//
// This is deliberately not a compiler front end.  fzlint needs four things
// from a translation unit, and nothing else:
//
//   * the code tokens (identifiers, numbers, punctuation) with line numbers,
//     so rules can pattern-match constructs like `std::lock_guard` scopes,
//     `static_assert(sizeof(T) == N)`, or banned calls;
//   * the comments, separately, so `// fzlint:allow(<rule>)` suppressions
//     and `// fzlint:hot-path` file markers are visible to the engine but
//     never confused with code;
//   * the `#include` directives with their paths (layering rule);
//   * preprocessor directives as opaque single tokens in stream order, so
//     the layout rule can find `#pragma pack(push, 1)` regions positionally.
//
// The lexer understands line/block comments, string/char literals including
// raw strings, digit separators, and backslash-continued preprocessor
// lines.  It does not do phase-2 trigraphs, UCNs, or macro expansion —
// project style never uses them, and a rule that mis-fires on such code can
// be suppressed.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace fzlint {

enum class TokKind {
  Identifier,  ///< [A-Za-z_][A-Za-z0-9_]*  (keywords included)
  Number,      ///< integer/float literal, suffixes and separators attached
  String,      ///< "..." or R"delim(...)delim" — content NOT tokenized
  CharLit,     ///< '...'
  Punct,       ///< one operator/punctuator; "::" "->" "==" kept whole
  Pp,          ///< one whole preprocessor directive, continuations folded
};

struct Token {
  TokKind kind;
  std::string text;
  int line;  ///< 1-based line of the token's first character
};

struct Comment {
  std::string text;  ///< without the // or /* */ markers
  int line;          ///< 1-based line where the comment starts
};

struct Include {
  std::string path;  ///< as written between the quotes/brackets
  int line;
  bool angled;  ///< <system> include (true) vs "project" include (false)
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<Include> includes;
};

/// Tokenize one source file.  Never throws on malformed input: an
/// unterminated literal or comment simply ends at end-of-file.
LexedFile lex(std::string_view src);

}  // namespace fzlint
