// fzlint — the project's own static analyzer, run as a hard CI gate.
//
// clang-tidy is a best-effort gate here (skipped when the binary is absent)
// and cannot express project-specific invariants anyway.  fzlint closes
// that hole with four rule families the fused/concurrent code actually
// depends on, each checkable from source alone:
//
//   layering        — project includes must follow the DAG declared in
//                     tools/fzlint_layers.txt (cycles in the declaration
//                     itself are also an error).
//   lock-discipline — in files annotated `// fzlint:hot-path`, no
//                     allocation (`new`, `make_*`, container growth),
//                     blocking waits, or telemetry Span construction inside
//                     a std::lock_guard / unique_lock / scoped_lock scope.
//   layout-audit    — every struct declared inside a `#pragma pack(push, 1)`
//                     region of an on-disk-format header must be pinned by
//                     static_asserts (sizeof, offsetof of every field,
//                     trivial copyability) whose literal values agree with
//                     the declaration fzlint parsed.
//   hygiene         — banned tokens in src/: raw malloc/calloc/realloc,
//                     printf-family, rand(), and std::thread outside
//                     common/thread_pool.{hpp,cpp}.
//
// Suppression: `// fzlint:allow(<rule>[,<rule>...])` silences findings of
// the named rules on the comment's line and the line immediately after.
// Suppressions are counted and reported, never silent.
//
// The library works on in-memory sources so the unit tests can drive every
// rule with fixture files; main.cpp adds the directory walker and CLI.
// fzlint depends only on the C++ standard library — it must stay buildable
// with the stock project toolchain, with no libclang or other externals.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace fzlint {

inline constexpr const char* kRuleLayering = "layering";
inline constexpr const char* kRuleLockDiscipline = "lock-discipline";
inline constexpr const char* kRuleLayoutAudit = "layout-audit";
inline constexpr const char* kRuleHygiene = "hygiene";

/// Marker comment that opts a file into the lock-discipline rule.
inline constexpr const char* kHotPathMarker = "fzlint:hot-path";

struct SourceFile {
  std::string path;     ///< repo-relative, forward slashes (e.g. "src/core/x.cpp")
  std::string content;  ///< full text
};

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct Report {
  /// Findings that survived suppression, in file/line order.
  std::vector<Finding> findings;
  /// Post-suppression count per rule; every rule is present, 0 when clean.
  std::map<std::string, int> per_rule;
  /// Findings silenced by `fzlint:allow` markers.
  int suppressed = 0;
  /// Configuration / internal problems (bad layers file, unreadable input).
  /// Any entry makes the run fail, like a finding.
  std::vector<std::string> errors;

  bool clean() const { return findings.empty() && errors.empty(); }
};

struct Config {
  /// Text of the layer declaration file (see tools/fzlint_layers.txt for
  /// the format: `layer: dep dep ...`, `*` = may depend on everything).
  std::string layers_text;
  /// Path the declarations came from, for messages only.
  std::string layers_path = "tools/fzlint_layers.txt";
  /// Files whose packed structs the layout-audit rule must pin.
  std::vector<std::string> layout_files = {"src/core/format.hpp",
                                           "src/service/wire.hpp"};
};

/// Run every rule over `files` and return the merged report.
Report run_lint(const Config& config, const std::vector<SourceFile>& files);

/// `path:line: [rule] message` per finding, then a one-line-per-rule
/// summary (also printed when clean — the gate's heartbeat).
void write_text_report(const Report& report, std::ostream& os);

/// Machine-readable report: {findings, summary, suppressed, errors, clean}.
void write_json_report(const Report& report, std::ostream& os);

}  // namespace fzlint
