// fzlint CLI: walk the repo, run every rule, report, exit nonzero on any
// finding.  See lint.hpp for the rule families and suppression syntax.
//
//   fzlint [--root DIR] [--layers FILE] [--json OUT] [dirs...]
//
//   --root DIR     repo root (default: current directory); all paths are
//                  resolved and reported relative to it
//   --layers FILE  layer DAG declaration (default: tools/fzlint_layers.txt
//                  under the root)
//   --json OUT     also write the machine-readable report to OUT
//   dirs...        directories to walk, relative to the root
//                  (default: src tools examples tests bench)
//
// Exit codes: 0 clean, 1 findings or configuration errors, 2 usage errors.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "fzlint/lint.hpp"

namespace {

namespace fs = std::filesystem;

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc" ||
         ext == ".hh" || ext == ".cxx";
}

std::string slashed(const fs::path& p) {
  std::string s = p.generic_string();
  return s;
}

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--root DIR] [--layers FILE] [--json OUT] [dirs...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::string layers_rel = "tools/fzlint_layers.txt";
  std::string json_out;
  std::vector<std::string> dirs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--layers" && i + 1 < argc) {
      layers_rel = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      dirs.push_back(arg);
    }
  }
  if (dirs.empty()) dirs = {"src", "tools", "examples", "tests", "bench"};

  fzlint::Config config;
  config.layers_path = layers_rel;
  if (!read_file(root / layers_rel, config.layers_text)) {
    std::cerr << "fzlint: cannot read layer declarations at "
              << slashed(root / layers_rel) << "\n";
    return 2;
  }

  std::vector<fzlint::SourceFile> files;
  for (const std::string& dir : dirs) {
    const fs::path base = root / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) continue;  // e.g. no bench/ checkout
    for (fs::recursive_directory_iterator it(base, ec), end;
         it != end && !ec; it.increment(ec)) {
      if (!it->is_regular_file() || !lintable(it->path())) continue;
      fzlint::SourceFile file;
      file.path = slashed(fs::relative(it->path(), root));
      if (!read_file(it->path(), file.content)) {
        std::cerr << "fzlint: cannot read " << file.path << "\n";
        return 2;
      }
      files.push_back(std::move(file));
    }
    if (ec) {
      std::cerr << "fzlint: error walking " << slashed(base) << ": "
                << ec.message() << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end(),
            [](const fzlint::SourceFile& a, const fzlint::SourceFile& b) {
              return a.path < b.path;
            });

  const fzlint::Report report = fzlint::run_lint(config, files);

  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::binary);
    if (!out) {
      std::cerr << "fzlint: cannot write " << json_out << "\n";
      return 2;
    }
    fzlint::write_json_report(report, out);
  }
  fzlint::write_text_report(report, std::cout);
  return report.clean() ? 0 : 1;
}
