// Multi-GPU scaling (paper §4.1): "multi-GPU processing is considered
// embarrassingly parallel with regard to single-GPU processing ... we
// partition data in a coarse-grained manner ... with a data chunk
// independent from another."
//
// The chunked container (core/chunked.hpp) is that partitioning.  This
// bench models 1/2/4/8 A100s each compressing its own chunk concurrently:
// wall time = max over chunks of the chunk's modeled kernel time, so
// aggregate throughput should scale near-linearly, with the compression
// ratio essentially unchanged.
// Chunks also genuinely execute in parallel on the host (one worker thread
// per modeled device, each with a private fz::Codec), so alongside the
// modeled per-device time the bench reports the measured host wall clock —
// chunked compression must scale with the worker count.
#include <algorithm>
#include <iostream>

#include "common/timer.hpp"
#include "core/chunked.hpp"
#include "cudasim/device_model.hpp"
#include "datasets/generators.hpp"
#include "harness/experiment.hpp"
#include "harness/tables.hpp"

int main() {
  using namespace fz;
  using namespace fz::bench;

  const cudasim::DeviceModel a100(cudasim::DeviceSpec::a100());
  const Field f = generate_field(Dataset::Nyx, scaled_dims(Dataset::Nyx, 0.3));
  const double full_bytes =
      static_cast<double>(dataset_info(Dataset::Nyx).full_dims.count()) * 4;
  const double fixed_scale = static_cast<double>(f.bytes()) / full_bytes;

  std::cout << "Multi-GPU scaling via coarse-grained chunking (paper 4.1)\n"
            << "field: Nyx " << f.dims.to_string() << " ("
            << fmt(static_cast<double>(f.bytes()) / 1e6, 1)
            << " MB), rel eb 1e-3, A100 model per device\n\n";

  Table t({"GPUs", "aggregate GB/s", "scaling", "host GB/s", "host scaling",
           "ratio", "ratio vs 1-GPU"});
  double base_tp = 0, base_ratio = 0, base_host = 0;
  for (const size_t gpus : {1u, 2u, 4u, 8u}) {
    ChunkedParams params;
    params.base.eb = ErrorBound::relative(1e-3);
    params.num_chunks = gpus;
    params.max_parallelism = gpus;  // one host worker per modeled device
    const ChunkedCompressed c = fz_compress_chunked(f.values(), f.dims, params);

    // Devices run concurrently: wall time is the slowest chunk.
    double wall = 0;
    for (const auto& chunk : c.chunk_costs) {
      double chunk_s = 0;
      for (const auto& k : chunk) chunk_s += a100.seconds(k, fixed_scale);
      wall = std::max(wall, chunk_s);
    }
    const double tp = static_cast<double>(f.bytes()) / 1e9 / wall;
    // Host wall clock of the same run: the chunk workers really do execute
    // in parallel, so this column should scale too (bounded by the host's
    // physical core count rather than by the device model).
    const double host_s = time_best_of(3, [&] {
      const ChunkedCompressed again =
          fz_compress_chunked(f.values(), f.dims, params);
      (void)again;
    });
    const double host_tp = throughput_gbps(f.bytes(), host_s);
    if (gpus == 1) {
      base_tp = tp;
      base_ratio = c.stats.ratio();
      base_host = host_tp;
    }
    t.add_row({std::to_string(gpus), fmt_gbps(tp), fmt(tp / base_tp, 2) + "x",
               fmt_gbps(host_tp), fmt(host_tp / base_host, 2) + "x",
               fmt_ratio(c.stats.ratio()),
               fmt(100.0 * c.stats.ratio() / base_ratio, 1) + "%"});
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: near-linear modeled scaling (no cross-chunk\n"
               "dependency) with <1% ratio loss from Lorenzo restarts at\n"
               "chunk boundaries.  The host columns track the same curve\n"
               "until the machine runs out of physical cores.\n";
  return 0;
}
