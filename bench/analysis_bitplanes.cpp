// Bit-plane analysis: the empirical basis of the FZ design (§3.2-3.3).
//
// For each dataset at two error bounds, prints the fraction of nonzero
// 16-byte blocks contributed by each bit plane of the sign-magnitude
// quantization codes after bitshuffle.  This is the data behind the
// design claims:
//   * most residual magnitudes occupy only the low planes,
//   * the MSB-as-sign representation keeps the high planes empty where
//     two's complement would fill them for every small negative value,
//   * hence the sparsification encoder's zero blocks cluster by plane.
#include <algorithm>
#include <array>
#include <iostream>

#include "common/bits.hpp"
#include "core/bitshuffle.hpp"
#include "core/lorenzo.hpp"
#include "core/pipeline.hpp"
#include "core/quantizer.hpp"
#include "datasets/generators.hpp"
#include "harness/experiment.hpp"
#include "harness/tables.hpp"

namespace {

using namespace fz;

/// Per-plane nonzero-block fraction of a code array (planes of the u16
/// codes: 0-14 magnitude, 15 sign).
std::array<double, 16> plane_density(std::span<const u16> codes) {
  std::array<u64, 16> nonzero{};
  const size_t n = codes.size();
  // Count, per plane, the 64-code groups (16-byte blocks after shuffle
  // cover 4 units x 16 codes... use the actual block span: 256 codes) with
  // any bit set in that plane.
  constexpr size_t kSpan = 256;  // codes covered by one flag block
  for (size_t base = 0; base < n; base += kSpan) {
    const size_t end = std::min(base + kSpan, n);
    u16 any = 0;
    std::array<bool, 16> hit{};
    for (size_t i = base; i < end; ++i) {
      any |= codes[i];
      for (int p = 0; p < 16; ++p)
        if (codes[i] >> p & 1) hit[static_cast<size_t>(p)] = true;
    }
    (void)any;
    for (int p = 0; p < 16; ++p)
      if (hit[static_cast<size_t>(p)]) ++nonzero[static_cast<size_t>(p)];
  }
  std::array<double, 16> frac{};
  const double blocks = static_cast<double>(fz::div_ceil(n, kSpan));
  for (int p = 0; p < 16; ++p)
    frac[static_cast<size_t>(p)] = static_cast<double>(nonzero[static_cast<size_t>(p)]) / blocks;
  return frac;
}

std::vector<u16> codes_for(const Field& f, double rel_eb, bool sign_magnitude) {
  const double abs_eb = f.resolve_eb(ErrorBound::relative(rel_eb));
  std::vector<i64> pq(f.count());
  prequantize(f.values(), abs_eb, pq);
  lorenzo_forward(pq, f.dims, pq);
  std::vector<u16> codes(pq.size());
  for (size_t i = 0; i < pq.size(); ++i) {
    const i64 clipped = std::clamp<i64>(pq[i], -32767, 32767);
    codes[i] = sign_magnitude
                   ? sign_magnitude_encode(static_cast<i32>(clipped))
                   : static_cast<u16>(static_cast<i16>(clipped));  // 2's compl
  }
  return codes;
}

}  // namespace

int main() {
  using namespace fz::bench;
  const auto fields = evaluation_fields();

  std::cout << "Bit-plane block density after dual-quantization (fraction of\n"
               "256-code spans with any bit set per plane; planes 0-14 =\n"
               "magnitude LSB..MSB, plane 15 = sign).  Lower = more zero\n"
               "blocks for the sparsification encoder.\n\n";

  for (const double eb : {1e-2, 1e-4}) {
    std::cout << "== rel eb " << fmt(eb, 4) << " ==\n";
    Table t({"dataset", "p0", "p2", "p4", "p6", "p8", "p10", "p12", "sign",
             "mean(SM)", "mean(2's compl)"});
    for (const Field& f : fields) {
      const auto sm = plane_density(codes_for(f, eb, true));
      const auto tc = plane_density(codes_for(f, eb, false));
      double sm_mean = 0, tc_mean = 0;
      for (int p = 0; p < 16; ++p) {
        sm_mean += sm[static_cast<size_t>(p)] / 16;
        tc_mean += tc[static_cast<size_t>(p)] / 16;
      }
      t.add_row({f.dataset, fmt(sm[0], 2), fmt(sm[2], 2), fmt(sm[4], 2),
                 fmt(sm[6], 2), fmt(sm[8], 2), fmt(sm[10], 2), fmt(sm[12], 2),
                 fmt(sm[15], 2), fmt(sm_mean, 3), fmt(tc_mean, 3)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected: density falls off sharply above the low planes;\n"
               "sign-magnitude mean density is well below two's complement\n"
               "(which fills every high plane for small negatives) — the\n"
               "rationale for the paper's MSB-as-sign format (3.2).\n";
  return 0;
}
