// Performance regression bench (PR3 stages + PR5 tile parallelism):
// wall-clock GB/s of each vectorized pipeline stage at every SIMD dispatch
// level, end-to-end compression throughput for the {unfused, fused-serial,
// fused-parallel} x {scalar, best-SIMD} configs on the tier-1 benchmark
// suite, a fused-parallel thread-scaling sweep (1/2/4/max workers,
// compress AND decompress), and decompression throughput.  Emits a
// machine-readable JSON report (default BENCH_pr5.json) consumed by
// scripts/bench_smoke.sh; the human table goes to stdout.  Byte-identity
// of every config's stream against the scalar-unfused reference is
// asserted while measuring.
//
// PR8 adds a gap-array Huffman decode sweep: per-dataset quantization codes
// are Huffman-encoded once, then decoded at 1/2/4/max workers (table-driven)
// plus the bit-serial ablation at one worker, with symbol identity asserted
// on every timed run.  Those rows go to a second report (default
// BENCH_pr8.json), gated separately by scripts/bench_smoke.sh.
//
// PR10 adds the decompress mirror: end-to-end fused vs classic (staged)
// decompression per dataset with byte-identity asserted on every timed run,
// plus a 3-D z-carry chunked-scan thread sweep on a flat volume (the shape
// whose y-extent is too small for the row-parallel path).  Those rows go to
// a third report (default BENCH_pr10.json), gated by scripts/bench_smoke.sh.
//
// Usage: regress [--scale S] [--iters N] [--out FILE] [--huff-out FILE]
//                [--pr10-out FILE]
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "common/bits.hpp"
#include "common/parallel.hpp"
#include "common/simd.hpp"
#include "core/bitshuffle.hpp"
#include "core/codec.hpp"
#include "core/format.hpp"
#include "core/kernels_simd.hpp"
#include "core/lorenzo.hpp"
#include "core/pipeline.hpp"
#include "core/quantizer.hpp"
#include "datasets/generators.hpp"
#include "harness/tables.hpp"
#include "substrate/histogram.hpp"
#include "substrate/huffman.hpp"

namespace {

using namespace fz;

double min_seconds(int iters, const std::function<void()>& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < iters; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

double gbps(size_t bytes, double secs) {
  return static_cast<double>(bytes) / secs / 1e9;
}

std::vector<SimdLevel> levels_under_test() {
  std::vector<SimdLevel> levels{SimdLevel::Scalar};
  if (simd_supported() >= SimdLevel::SSE2) levels.push_back(SimdLevel::SSE2);
  if (simd_supported() >= SimdLevel::AVX2) levels.push_back(SimdLevel::AVX2);
  return levels;
}

struct JsonWriter {
  std::string buf = "{\n";
  bool first_section = true;

  void section(const std::string& key) {
    if (!first_section) buf += ",\n";
    first_section = false;
    buf += "  \"" + key + "\": ";
  }
  static std::string num(double v) {
    char tmp[64];
    std::snprintf(tmp, sizeof(tmp), "%.6g", v);
    return tmp;
  }
  std::string finish() { return buf + "\n}\n"; }
};

struct StageRow {
  std::string stage, level;
  double value_gbps;
};

struct CompressRow {
  std::string dataset, config;
  double value_gbps;
};

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.12;
  int iters = 3;
  std::string out_path = "BENCH_pr5.json";
  std::string huff_out_path = "BENCH_pr8.json";
  std::string pr10_out_path = "BENCH_pr10.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--scale" && i + 1 < argc) scale = std::stod(argv[++i]);
    else if (arg == "--iters" && i + 1 < argc) iters = std::stoi(argv[++i]);
    else if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
    else if (arg == "--huff-out" && i + 1 < argc) huff_out_path = argv[++i];
    else if (arg == "--pr10-out" && i + 1 < argc) pr10_out_path = argv[++i];
    else {
      std::cerr << "usage: regress [--scale S] [--iters N] [--out FILE] "
                   "[--huff-out FILE] [--pr10-out FILE]\n";
      return 2;
    }
  }

  const auto levels = levels_under_test();
  const SimdLevel best = resolve_simd(SimdDispatch::Auto);
  const size_t hw_threads = max_threads();
  std::cout << "PR5 regression bench: scale=" << scale << " iters=" << iters
            << " best SIMD level: " << simd_level_name(best)
            << " hw threads: " << hw_threads << "\n\n";

  // ---- per-stage throughput at every dispatch level ------------------------
  const Field stage_field = generate_field(
      Dataset::Hurricane, scaled_dims(Dataset::Hurricane, std::max(scale, 0.1)), 42);
  const size_t n = stage_field.count();
  const double abs_eb = 1e-3 * stage_field.value_range();
  const size_t padded = round_up(n, kCodesPerTile);
  const size_t words = padded / 2;

  std::vector<i64> pq(padded, 0);
  std::vector<u16> codes(padded, 0);
  std::vector<u32> shuffled(words), unshuffled(words);
  std::vector<u8> byte_flags(words / kBlockWords),
      bit_flags(words / kBlockWords / 8);
  std::vector<i64> row_scratch(fused_row_scratch_elems(stage_field.dims));
  std::vector<i64> plane_scratch(fused_plane_scratch_elems(stage_field.dims));

  std::vector<StageRow> stage_rows;
  bench::Table stage_table({"stage", "level", "GB/s"});
  for (const SimdLevel level : levels) {
    const auto add = [&](const std::string& stage, size_t bytes,
                         const std::function<void()>& fn) {
      const double t = min_seconds(iters, fn);
      stage_rows.push_back({stage, simd_level_name(level), gbps(bytes, t)});
      stage_table.add_row({stage, simd_level_name(level),
                           JsonWriter::num(gbps(bytes, t))});
    };
    add("prequant-f32", n * 4, [&] {
      prequantize_simd(stage_field.values(), abs_eb, std::span<i64>(pq).first(n),
                       level);
    });
    add("prequant-f32fast", n * 4, [&] {
      prequantize_f32fast(stage_field.values(), abs_eb,
                          std::span<i64>(pq).first(n), level);
    });
    lorenzo_forward(std::span<const i64>(pq).first(n), stage_field.dims,
                    std::span<i64>(pq).first(n));
    pq[0] = 0;
    add("encode-v2", n * 8, [&] {
      quant_encode_v2_simd(std::span<const i64>(pq).first(n),
                           std::span<u16>(codes).first(n), level);
    });
    const std::span<const u32> code_words{
        reinterpret_cast<const u32*>(codes.data()), words};
    add("bitshuffle", words * 4,
        [&] { bitshuffle_tiles_simd(code_words, shuffled, level); });
    add("mark", words * 4,
        [&] { mark_blocks_simd(shuffled, byte_flags, bit_flags, level); });
    add("bitunshuffle", words * 4,
        [&] { bitunshuffle_tiles_simd(shuffled, unshuffled, level); });
    add("fused-tile-pipeline", n * 4, [&] {
      fused_quant_shuffle_mark(stage_field.values(), stage_field.dims, abs_eb,
                               /*f32_fast=*/false, shuffled, byte_flags,
                               bit_flags, row_scratch, plane_scratch, level);
    });
    const FusedParallelPlan plan =
        fused_parallel_plan(stage_field.dims, /*workers=*/0);
    std::vector<i64> strip_scratch(plan.scratch_elems);
    add("fused-parallel-pipeline", n * 4, [&] {
      fused_quant_shuffle_mark_parallel(
          stage_field.values(), stage_field.dims, abs_eb, /*f32_fast=*/false,
          shuffled, byte_flags, bit_flags, strip_scratch, plan, level);
    });
  }
  std::cout << "Stage throughput (" << stage_field.dataset << " "
            << stage_field.dims.to_string() << ", abs eb "
            << JsonWriter::num(abs_eb) << "):\n";
  stage_table.print(std::cout);

  // ---- end-to-end compression: {unfused, fused-serial, fused-parallel}
  //      x {scalar, best} ---------------------------------------------------
  struct Config {
    const char* name;
    bool fused;
    bool serial_tiles;  // fused graph only: pre-PR5 streaming reference
    SimdDispatch simd;
  };
  const Config configs[] = {
      {"unfused-scalar", false, false, SimdDispatch::Scalar},
      {"unfused-simd", false, false, SimdDispatch::Auto},
      {"fused-serial-scalar", true, true, SimdDispatch::Scalar},
      {"fused-serial-simd", true, true, SimdDispatch::Auto},
      {"fused-parallel-scalar", true, false, SimdDispatch::Scalar},
      {"fused-parallel-simd", true, false, SimdDispatch::Auto},
  };
  constexpr size_t kRef = 0, kSerialSimd = 3, kParallelSimd = 5;

  std::vector<CompressRow> compress_rows;
  std::vector<std::pair<std::string, double>> speedups;
  std::vector<std::pair<std::string, double>> parallel_vs_serial;
  std::vector<CompressRow> decompress_rows;
  struct ScalingRow {
    std::string dataset;
    size_t workers;
    double compress_gbps, decompress_gbps;
  };
  std::vector<ScalingRow> scaling_rows;

  bench::Table comp_table({"dataset", "unfused-scalar", "unfused-simd",
                           "fused-serial-simd", "fused-parallel-simd",
                           "speedup", "par/serial"});
  bool identical = true;
  for (const Field& f : benchmark_suite(scale, 42)) {
    FzParams params;
    params.eb = ErrorBound::relative(1e-3);
    std::vector<u8> reference;
    std::vector<double> results;
    for (const Config& c : configs) {
      params.fused_host_graph = c.fused;
      params.fused_serial_tiles = c.serial_tiles;
      params.fused_workers = 0;  // one strip per hardware thread
      params.simd = c.simd;
      FzCompressed comp;
      const double t = min_seconds(
          iters, [&] { comp = fz_compress(f.values(), f.dims, params); });
      if (reference.empty()) reference = comp.bytes;
      else if (comp.bytes != reference) identical = false;
      results.push_back(gbps(f.bytes(), t));
      compress_rows.push_back({f.dataset, c.name, results.back()});
    }
    const double speedup = results[kParallelSimd] / results[kRef];
    speedups.emplace_back(f.dataset, speedup);
    parallel_vs_serial.emplace_back(
        f.dataset, results[kParallelSimd] / results[kSerialSimd]);
    comp_table.add_row({f.dataset, JsonWriter::num(results[0]),
                        JsonWriter::num(results[1]),
                        JsonWriter::num(results[kSerialSimd]),
                        JsonWriter::num(results[kParallelSimd]),
                        JsonWriter::num(speedup) + "x",
                        JsonWriter::num(parallel_vs_serial.back().second) +
                            "x"});

    // Thread-scaling sweep (compress + decompress) at 1/2/4/max workers.
    // The stream is identical at every worker count (asserted above and in
    // tests); only the wall clock may change.
    for (const size_t workers : {size_t{1}, size_t{2}, size_t{4}, size_t{0}}) {
      FzParams p;
      p.eb = ErrorBound::relative(1e-3);
      p.fused_workers = workers;
      Codec codec(p);
      FzCompressed comp;
      const double tc = min_seconds(
          iters, [&] { comp = codec.compress(f.values(), f.dims); });
      std::vector<f32> out(f.count());
      const double td = min_seconds(
          iters, [&] { codec.decompress_into(comp.bytes, out); });
      const size_t eff = workers == 0 ? hw_threads : workers;
      scaling_rows.push_back(
          {f.dataset, eff, gbps(f.bytes(), tc), gbps(f.bytes(), td)});
      if (workers == 0)
        decompress_rows.push_back({f.dataset, "fused-parallel-simd",
                                   gbps(f.bytes(), td)});
    }
  }
  std::cout << "\nCompression throughput (GB/s), rel eb 1e-3; speedup = "
               "fused-parallel-simd over unfused-scalar, par/serial = "
               "fused-parallel-simd over fused-serial-simd:\n";
  comp_table.print(std::cout);
  std::cout << "\nstreams byte-identical across configs: "
            << (identical ? "yes" : "NO — BUG") << "\n";

  bench::Table scale_table(
      {"dataset", "workers", "compress GB/s", "decompress GB/s"});
  for (const ScalingRow& r : scaling_rows)
    scale_table.add_row({r.dataset, std::to_string(r.workers),
                         JsonWriter::num(r.compress_gbps),
                         JsonWriter::num(r.decompress_gbps)});
  std::cout << "\nFused-parallel thread scaling:\n";
  scale_table.print(std::cout);

  // ---- PR8: gap-array Huffman decode thread scaling ------------------------
  // Real per-dataset code distributions: v1 quantization codes (the cuSZ
  // baseline's Huffman input), encoded once per dataset with the default
  // gap layout.  Symbol identity is asserted on every timed decode.
  struct HuffRow {
    std::string dataset;
    size_t workers;
    double value_gbps;
  };
  std::vector<HuffRow> huff_rows;
  std::vector<std::pair<std::string, double>> huff_table_speedup;
  std::vector<std::pair<std::string, double>> huff_par_vs_serial;
  bool huff_identical = true;

  bench::Table huff_table({"dataset", "w=1", "w=2", "w=4", "w=max",
                           "bit-serial", "table/bits", "par/serial"});
  for (const Field& f : benchmark_suite(scale, 42)) {
    const double eb = f.resolve_eb(ErrorBound::relative(1e-3));
    std::vector<i64> hpq(f.count());
    prequantize(f.values(), eb, hpq);
    lorenzo_forward(hpq, f.dims, hpq);
    hpq[0] = 0;
    const QuantV1Result q = quant_encode_v1(hpq, 512);
    const std::vector<u16>& hsyms = q.codes;
    const auto hist = histogram<u16>(hsyms, 1024);
    const HuffmanCodebook book = HuffmanCodebook::build(hist);
    const std::vector<u8> enc = huffman_encode(hsyms, book);
    const std::vector<u8> legacy =
        huffman_encode(hsyms, book, HuffmanEncodeOptions{kHuffDefaultChunk, 0});
    const size_t bytes = hsyms.size() * sizeof(u16);

    std::vector<double> per_worker;
    for (const size_t workers : {size_t{1}, size_t{2}, size_t{4}, size_t{0}}) {
      std::vector<u16> dec;
      const double t = min_seconds(iters, [&] {
        dec = huffman_decode(enc, book, {.workers = workers});
      });
      if (dec != hsyms) huff_identical = false;
      per_worker.push_back(gbps(bytes, t));
      huff_rows.push_back(
          {f.dataset, workers == 0 ? hw_threads : workers, per_worker.back()});
    }
    std::vector<u16> dec_bits;
    const double t_bits = min_seconds(iters, [&] {
      dec_bits = huffman_decode(enc, book, {.workers = 1, .table_fast = false});
    });
    if (dec_bits != hsyms) huff_identical = false;
    if (huffman_decode(legacy, book) != hsyms) huff_identical = false;
    const double bits_gbps = gbps(bytes, t_bits);
    huff_table_speedup.emplace_back(f.dataset, per_worker[0] / bits_gbps);
    huff_par_vs_serial.emplace_back(f.dataset, per_worker[3] / per_worker[0]);
    huff_table.add_row(
        {f.dataset, JsonWriter::num(per_worker[0]),
         JsonWriter::num(per_worker[1]), JsonWriter::num(per_worker[2]),
         JsonWriter::num(per_worker[3]), JsonWriter::num(bits_gbps),
         JsonWriter::num(huff_table_speedup.back().second) + "x",
         JsonWriter::num(huff_par_vs_serial.back().second) + "x"});
  }
  std::cout << "\nGap-array Huffman decode throughput (GB/s of decoded "
               "symbols); table/bits = table-driven over bit-serial at one "
               "worker, par/serial = max workers over one worker:\n";
  huff_table.print(std::cout);
  std::cout << "decoded symbols identical across every path: "
            << (huff_identical ? "yes" : "NO — BUG") << "\n";

  // ---- PR10: fused vs classic decompress + 3-D z-carry scan scaling --------
  struct FusedDecompRow {
    std::string dataset;
    double fused_gbps, unfused_gbps;
  };
  std::vector<FusedDecompRow> fused_decomp_rows;
  bool decomp_identical = true;

  bench::Table fd_table({"dataset", "fused GB/s", "classic GB/s", "ratio"});
  for (const Field& f : benchmark_suite(scale, 42)) {
    FzParams cp;
    cp.eb = ErrorBound::relative(1e-3);
    Codec compressor(cp);
    const FzCompressed comp = compressor.compress(f.values(), f.dims);

    FzParams on = cp;
    on.fused_decompress = true;
    on.fused_workers = 0;
    FzParams off = on;
    off.fused_decompress = false;
    Codec codec_on(on), codec_off(off);
    std::vector<f32> a(f.count()), b(f.count());
    const double t_on = min_seconds(
        iters, [&] { codec_on.decompress_into(comp.bytes, a); });
    const double t_off = min_seconds(
        iters, [&] { codec_off.decompress_into(comp.bytes, b); });
    if (std::memcmp(a.data(), b.data(), a.size() * sizeof(f32)) != 0)
      decomp_identical = false;
    fused_decomp_rows.push_back(
        {f.dataset, gbps(f.bytes(), t_on), gbps(f.bytes(), t_off)});
    fd_table.add_row(
        {f.dataset, JsonWriter::num(fused_decomp_rows.back().fused_gbps),
         JsonWriter::num(fused_decomp_rows.back().unfused_gbps),
         JsonWriter::num(fused_decomp_rows.back().fused_gbps /
                         fused_decomp_rows.back().unfused_gbps) +
             "x"});
  }
  std::cout << "\nFused vs classic decompression (GB/s of restored f32):\n";
  fd_table.print(std::cout);
  std::cout << "restored fields byte-identical fused vs classic: "
            << (decomp_identical ? "yes" : "NO — BUG") << "\n";

  // Chunked z-carry sweep: a flat volume (y < workers) so scan_z takes the
  // plane-granular chunked path at workers > 1 and the serial column scan
  // at workers == 1.  Bytes asserted identical at every worker count.
  struct ZScanRow {
    size_t workers;
    double value_gbps;
  };
  std::vector<ZScanRow> zscan_rows;
  bool zscan_identical = true;
  {
    // Fixed-size volume (16 MB of i64), independent of --scale: the scan is
    // a pure memory sweep, and sub-millisecond timings on small volumes are
    // too noisy to gate on.
    const Dims zdims{1024, 1, 2048};
    const int ziters = std::max(iters, 5);
    std::vector<i64> deltas(zdims.count());
    {
      u64 state = 0x9e3779b97f4a7c15ull;
      for (auto& v : deltas) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        v = static_cast<i64>(state >> 40) - (1 << 23);
      }
    }
    std::vector<i64> reference(deltas.size());
    lorenzo_inverse(deltas, zdims, reference, /*workers=*/1);
    const size_t zbytes = deltas.size() * sizeof(i64);
    bench::Table z_table({"workers", "GB/s"});
    for (const size_t workers : {size_t{1}, size_t{2}, size_t{4}, size_t{0}}) {
      std::vector<i64> out(deltas.size());
      const double t = min_seconds(
          ziters, [&] { lorenzo_inverse(deltas, zdims, out, workers); });
      if (out != reference) zscan_identical = false;
      zscan_rows.push_back(
          {workers == 0 ? hw_threads : workers, gbps(zbytes, t)});
      z_table.add_row({std::to_string(zscan_rows.back().workers),
                       JsonWriter::num(zscan_rows.back().value_gbps)});
    }
    std::cout << "\n3-D z-carry inverse scan thread scaling ("
              << zdims.to_string() << " flat volume):\n";
    z_table.print(std::cout);
    std::cout << "scan bytes identical across worker counts: "
              << (zscan_identical ? "yes" : "NO — BUG") << "\n";
  }

  // ---- JSON report ---------------------------------------------------------
  JsonWriter w;
  w.section("bench");
  w.buf += "\"pr5-regress\"";
  w.section("scale");
  w.buf += JsonWriter::num(scale);
  w.section("iters");
  w.buf += JsonWriter::num(iters);
  w.section("best_level");
  w.buf += std::string("\"") + simd_level_name(best) + "\"";
  w.section("max_threads");
  w.buf += JsonWriter::num(static_cast<double>(hw_threads));
  w.section("streams_identical");
  w.buf += identical ? "true" : "false";
  w.section("stages");
  w.buf += "[\n";
  for (size_t i = 0; i < stage_rows.size(); ++i) {
    w.buf += "    {\"stage\": \"" + stage_rows[i].stage + "\", \"level\": \"" +
             stage_rows[i].level +
             "\", \"gbps\": " + JsonWriter::num(stage_rows[i].value_gbps) + "}" +
             (i + 1 < stage_rows.size() ? "," : "") + "\n";
  }
  w.buf += "  ]";
  w.section("compress");
  w.buf += "[\n";
  for (size_t i = 0; i < compress_rows.size(); ++i) {
    w.buf += "    {\"dataset\": \"" + compress_rows[i].dataset +
             "\", \"config\": \"" + compress_rows[i].config +
             "\", \"gbps\": " + JsonWriter::num(compress_rows[i].value_gbps) +
             "}" + (i + 1 < compress_rows.size() ? "," : "") + "\n";
  }
  w.buf += "  ]";
  w.section("decompress");
  w.buf += "[\n";
  for (size_t i = 0; i < decompress_rows.size(); ++i) {
    w.buf += "    {\"dataset\": \"" + decompress_rows[i].dataset +
             "\", \"config\": \"" + decompress_rows[i].config +
             "\", \"gbps\": " + JsonWriter::num(decompress_rows[i].value_gbps) +
             "}" + (i + 1 < decompress_rows.size() ? "," : "") + "\n";
  }
  w.buf += "  ]";
  w.section("thread_scaling");
  w.buf += "[\n";
  for (size_t i = 0; i < scaling_rows.size(); ++i) {
    w.buf += "    {\"dataset\": \"" + scaling_rows[i].dataset +
             "\", \"workers\": " +
             JsonWriter::num(static_cast<double>(scaling_rows[i].workers)) +
             ", \"compress_gbps\": " +
             JsonWriter::num(scaling_rows[i].compress_gbps) +
             ", \"decompress_gbps\": " +
             JsonWriter::num(scaling_rows[i].decompress_gbps) + "}" +
             (i + 1 < scaling_rows.size() ? "," : "") + "\n";
  }
  w.buf += "  ]";
  w.section("speedups");
  w.buf += "{\n";
  for (size_t i = 0; i < speedups.size(); ++i) {
    w.buf += "    \"" + speedups[i].first +
             "\": " + JsonWriter::num(speedups[i].second) +
             (i + 1 < speedups.size() ? "," : "") + "\n";
  }
  w.buf += "  }";
  w.section("parallel_vs_serial");
  w.buf += "{\n";
  for (size_t i = 0; i < parallel_vs_serial.size(); ++i) {
    w.buf += "    \"" + parallel_vs_serial[i].first +
             "\": " + JsonWriter::num(parallel_vs_serial[i].second) +
             (i + 1 < parallel_vs_serial.size() ? "," : "") + "\n";
  }
  w.buf += "  }";

  std::ofstream out(out_path);
  out << w.finish();
  std::cout << "wrote " << out_path << "\n";

  // ---- PR8 JSON report -----------------------------------------------------
  JsonWriter hw;
  hw.section("bench");
  hw.buf += "\"pr8-huffman\"";
  hw.section("scale");
  hw.buf += JsonWriter::num(scale);
  hw.section("iters");
  hw.buf += JsonWriter::num(iters);
  hw.section("max_threads");
  hw.buf += JsonWriter::num(static_cast<double>(hw_threads));
  hw.section("huffman_identical");
  hw.buf += huff_identical ? "true" : "false";
  hw.section("huffman_decode");
  hw.buf += "[\n";
  for (size_t i = 0; i < huff_rows.size(); ++i) {
    hw.buf += "    {\"dataset\": \"" + huff_rows[i].dataset +
              "\", \"workers\": " +
              JsonWriter::num(static_cast<double>(huff_rows[i].workers)) +
              ", \"gbps\": " + JsonWriter::num(huff_rows[i].value_gbps) + "}" +
              (i + 1 < huff_rows.size() ? "," : "") + "\n";
  }
  hw.buf += "  ]";
  hw.section("huffman_table_speedup");
  hw.buf += "{\n";
  for (size_t i = 0; i < huff_table_speedup.size(); ++i) {
    hw.buf += "    \"" + huff_table_speedup[i].first +
              "\": " + JsonWriter::num(huff_table_speedup[i].second) +
              (i + 1 < huff_table_speedup.size() ? "," : "") + "\n";
  }
  hw.buf += "  }";
  hw.section("huffman_parallel_vs_serial");
  hw.buf += "{\n";
  for (size_t i = 0; i < huff_par_vs_serial.size(); ++i) {
    hw.buf += "    \"" + huff_par_vs_serial[i].first +
              "\": " + JsonWriter::num(huff_par_vs_serial[i].second) +
              (i + 1 < huff_par_vs_serial.size() ? "," : "") + "\n";
  }
  hw.buf += "  }";

  std::ofstream huff_out(huff_out_path);
  huff_out << hw.finish();
  std::cout << "wrote " << huff_out_path << "\n";

  // ---- PR10 JSON report ----------------------------------------------------
  JsonWriter pw;
  pw.section("bench");
  pw.buf += "\"pr10-fused-decompress\"";
  pw.section("scale");
  pw.buf += JsonWriter::num(scale);
  pw.section("iters");
  pw.buf += JsonWriter::num(iters);
  pw.section("max_threads");
  pw.buf += JsonWriter::num(static_cast<double>(hw_threads));
  pw.section("decompress_identical");
  pw.buf += decomp_identical ? "true" : "false";
  pw.section("zscan_identical");
  pw.buf += zscan_identical ? "true" : "false";
  pw.section("fused_decompress");
  pw.buf += "[\n";
  for (size_t i = 0; i < fused_decomp_rows.size(); ++i) {
    pw.buf += "    {\"dataset\": \"" + fused_decomp_rows[i].dataset +
              "\", \"fused_gbps\": " +
              JsonWriter::num(fused_decomp_rows[i].fused_gbps) +
              ", \"unfused_gbps\": " +
              JsonWriter::num(fused_decomp_rows[i].unfused_gbps) + "}" +
              (i + 1 < fused_decomp_rows.size() ? "," : "") + "\n";
  }
  pw.buf += "  ]";
  pw.section("zscan_scaling");
  pw.buf += "[\n";
  for (size_t i = 0; i < zscan_rows.size(); ++i) {
    pw.buf += "    {\"workers\": " +
              JsonWriter::num(static_cast<double>(zscan_rows[i].workers)) +
              ", \"gbps\": " + JsonWriter::num(zscan_rows[i].value_gbps) +
              "}" + (i + 1 < zscan_rows.size() ? "," : "") + "\n";
  }
  pw.buf += "  ]";

  std::ofstream pr10_out(pr10_out_path);
  pr10_out << pw.finish();
  std::cout << "wrote " << pr10_out_path << "\n";
  return identical && huff_identical && decomp_identical && zscan_identical
             ? 0
             : 1;
}
