// §4.4 "Comparison with the CPU implementation" reproduction: wall-clock
// throughput of FZ-OMP (this library's native OpenMP pipeline) versus
// SZ-OMP (Lorenzo + quantization + Huffman) on this machine, plus the
// modeled FZ-GPU(A100)/FZ-OMP speedup the paper reports (37x average).
#include <iostream>

#include "baselines/compressor.hpp"
#include "baselines/szomp.hpp"
#include "common/parallel.hpp"
#include "harness/experiment.hpp"
#include "harness/tables.hpp"

int main() {
  using namespace fz;
  using namespace fz::bench;

  // Smaller scale: these are real single-machine wall-clock measurements.
  const auto fields = evaluation_fields(0.12);
  const cudasim::DeviceModel a100(cudasim::DeviceSpec::a100());
  const auto fzgpu = make_fzgpu();
  const double rel_eb = 1e-3;

  std::cout << "CPU comparison (paper 4.4), " << max_threads()
            << " thread(s), rel eb 1e-3\n"
            << "FZ-OMP / SZ-OMP: measured wall clock on this machine;\n"
            << "FZ-GPU: A100 device model.\n\n";

  Table t({"dataset", "FZ-OMP GB/s", "SZ-OMP GB/s", "FZ-OMP/SZ-OMP",
           "FZ-GPU GB/s (model)", "FZ-GPU/FZ-OMP"});
  for (const Field& f : fields) {
    const RunResult omp = run_fz_omp(f, rel_eb, 2);
    const RunResult szomp = run_sz_omp(f, rel_eb, 2);
    const Measurement gpu = measure(*fzgpu, f, rel_eb, a100);
    const double t_omp =
        static_cast<double>(f.bytes()) / 1e9 / omp.native_compress_seconds;
    const double t_sz =
        static_cast<double>(f.bytes()) / 1e9 / szomp.native_compress_seconds;
    t.add_row({f.dataset, fmt_gbps(t_omp), fmt_gbps(t_sz), fmt(t_omp / t_sz, 2),
               fmt_gbps(gpu.throughput_gbps),
               fmt(gpu.throughput_gbps / t_omp, 1)});
  }
  t.print(std::cout);
  std::cout << "\nExpected shape (paper, 32-core Xeon): FZ-OMP 1.7-2.5x\n"
               "faster than SZ-OMP; FZ-GPU(A100) ~31-42x over FZ-OMP (our\n"
               "CPU has fewer cores, so the GPU/CPU gap scales accordingly).\n";
  return 0;
}
