// Figure 9 reproduction: compression throughput on the RTX A4000 device
// model (same protocol as Figure 8).
#include "throughput_common.hpp"

int main() {
  return fz::bench::run_throughput_figure(fz::cudasim::DeviceSpec::a4000(),
                                          "Figure 9");
}
