// Random-access regression bench (PR6 reader subsystem): slice reads
// through fz::Reader vs. full-stream decompression, the cold/hot cache
// split, a many-reader concurrency sweep over one shared Reader, and the
// sequential-sweep prefetch hit rate.  Byte-identity of every slice
// against the full decompress is asserted while measuring.  Emits a
// machine-readable JSON report (default BENCH_pr6.json) consumed by
// scripts/bench_smoke.sh; the human table goes to stdout.
//
// Usage: random_access [--scale S] [--iters N] [--out FILE]
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/chunked.hpp"
#include "datasets/generators.hpp"
#include "reader/reader.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace fz;

double min_seconds(int iters, const std::function<void()>& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < iters; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

double gbps(size_t bytes, double secs) {
  return static_cast<double>(bytes) / secs / 1e9;
}

/// A reproducible batch of random interior slices (each a y/z-slab window,
/// so every read touches a strict subset of the chunks).
std::vector<Slice> random_slices(Dims dims, size_t count, u64 seed) {
  Rng rng(seed);
  std::vector<Slice> slices;
  slices.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Slice s;
    s.nx = 1 + rng.below(dims.x);
    s.ny = 1 + rng.below(dims.y);
    s.nz = 1 + rng.below(std::max<size_t>(dims.z / 4, 1));
    s.x = rng.below(dims.x - s.nx + 1);
    s.y = rng.below(dims.y - s.ny + 1);
    s.z = rng.below(dims.z - s.nz + 1);
    slices.push_back(s);
  }
  return slices;
}

std::vector<f32> reference_slice(const std::vector<f32>& full, Dims d,
                                 const Slice& s) {
  std::vector<f32> out(s.count());
  for (size_t z = 0; z < s.nz; ++z)
    for (size_t y = 0; y < s.ny; ++y)
      for (size_t x = 0; x < s.nx; ++x)
        out[(z * s.ny + y) * s.nx + x] =
            full[d.linear(s.x + x, s.y + y, s.z + z)];
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.12;
  int iters = 3;
  std::string out_path = "BENCH_pr6.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--scale" && i + 1 < argc) scale = std::stod(argv[++i]);
    else if (arg == "--iters" && i + 1 < argc) iters = std::stoi(argv[++i]);
    else if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
    else {
      std::cerr << "usage: random_access [--scale S] [--iters N] [--out FILE]\n";
      return 2;
    }
  }

  const size_t hw_threads = std::max(1u, std::thread::hardware_concurrency());
  const Field field = generate_field(
      Dataset::Hurricane, scaled_dims(Dataset::Hurricane, std::max(scale, 0.05)),
      42);
  const Dims dims = field.dims;

  ChunkedParams params;
  params.num_chunks = 16;
  const ChunkedCompressed comp = fz_compress_chunked(field.values(), dims, params);
  const std::vector<f32> full = fz_decompress_chunked(comp.bytes).data;
  const size_t chunks = fz_chunk_count(comp.bytes);

  std::cout << "PR6 random-access bench: scale=" << scale << " iters=" << iters
            << " dims=" << dims.to_string() << " chunks=" << chunks
            << " hw threads=" << hw_threads << "\n\n";

  // ---- baseline: full-stream decompression ---------------------------------
  const double full_secs =
      min_seconds(iters, [&] { (void)fz_decompress_chunked(comp.bytes); });
  const double full_gbps = gbps(full.size() * sizeof(f32), full_secs);
  std::printf("%-28s %8.3f GB/s\n", "full-stream decompress", full_gbps);

  // ---- correctness + cold/hot random slices --------------------------------
  const std::vector<Slice> slices = random_slices(dims, 24, 7);
  size_t slice_bytes = 0;
  for (const Slice& s : slices) slice_bytes += s.count() * sizeof(f32);

  bool byte_identical = true;
  {
    Reader reader(comp.bytes, ReaderOptions{});
    for (const Slice& s : slices) {
      const std::vector<f32> got = reader.read(s);
      const std::vector<f32> want = reference_slice(full, dims, s);
      byte_identical &= got.size() == want.size() &&
                        std::memcmp(got.data(), want.data(),
                                    want.size() * sizeof(f32)) == 0;
    }
  }

  // Cold: a fresh Reader per pass, so every slice decodes its chunks.
  std::vector<f32> out(dims.count());
  const double cold_secs = min_seconds(iters, [&] {
    Reader reader(comp.bytes, ReaderOptions{});
    for (const Slice& s : slices)
      reader.read(s, std::span<f32>(out.data(), s.count()));
  });
  const double cold_gbps = gbps(slice_bytes, cold_secs);

  // Hot: one warmed Reader, every chunk already decoded and resident.
  Reader hot_reader(comp.bytes, ReaderOptions{});
  for (const Slice& s : slices)
    hot_reader.read(s, std::span<f32>(out.data(), s.count()));
  const ReaderStats warm_base = hot_reader.stats();
  const double hot_secs = min_seconds(iters, [&] {
    for (const Slice& s : slices)
      hot_reader.read(s, std::span<f32>(out.data(), s.count()));
  });
  const double hot_gbps = gbps(slice_bytes, hot_secs);
  const ReaderStats warm_end = hot_reader.stats();
  const u64 hot_accesses = (warm_end.hits + warm_end.misses) -
                           (warm_base.hits + warm_base.misses);
  const double hot_hit_rate =
      hot_accesses == 0
          ? 0.0
          : static_cast<double>(warm_end.hits - warm_base.hits) /
                static_cast<double>(hot_accesses);
  std::printf("%-28s %8.3f GB/s\n", "random slices (cold cache)", cold_gbps);
  std::printf("%-28s %8.3f GB/s  (hit rate %.2f)\n",
              "random slices (hot cache)", hot_gbps, hot_hit_rate);
  std::printf("%-28s %8s\n", "slices byte-identical",
              byte_identical ? "yes" : "NO");

  // ---- many-reader concurrency sweep over one shared Reader ----------------
  std::vector<size_t> caller_counts{1, 2, 4};
  if (hw_threads > 4) caller_counts.push_back(hw_threads);
  std::vector<std::pair<size_t, double>> concurrency;
  for (const size_t callers : caller_counts) {
    Reader reader(comp.bytes, ReaderOptions{});
    // Warm once so the sweep measures concurrent cache service, not a
    // decode race (the cold path is covered above).
    for (const Slice& s : slices)
      reader.read(s, std::span<f32>(out.data(), s.count()));
    const double secs = min_seconds(iters, [&] {
      std::vector<std::thread> crew;
      crew.reserve(callers);
      for (size_t c = 0; c < callers; ++c) {
        crew.emplace_back([&, c] {
          std::vector<f32> mine(dims.count());
          const std::vector<Slice> batch = random_slices(dims, 24, 100 + c);
          for (const Slice& s : batch)
            reader.read(s, std::span<f32>(mine.data(), s.count()));
        });
      }
      for (auto& t : crew) t.join();
    });
    // Aggregate bytes: every caller reads its own 24-slice batch.
    size_t batch_bytes = 0;
    for (size_t c = 0; c < callers; ++c)
      for (const Slice& s : random_slices(dims, 24, 100 + c))
        batch_bytes += s.count() * sizeof(f32);
    concurrency.emplace_back(callers, gbps(batch_bytes, secs));
    std::printf("shared reader, %2zu callers  %8.3f GB/s\n", callers,
                concurrency.back().second);
  }

  // ---- sequential sweep: prefetch effectiveness ----------------------------
  telemetry::Sink sink;
  ReaderOptions sweep_options;
  sweep_options.telemetry = &sink;
  Reader sweep_reader(comp.bytes, sweep_options);
  const size_t step = std::max<size_t>(dims.z / chunks, 1);
  for (size_t z = 0; z + step <= dims.z; z += step) {
    Slice s;
    s.z = z;
    s.nx = dims.x;
    s.ny = dims.y;
    s.nz = step;
    sweep_reader.read(s, std::span<f32>(out.data(), s.count()));
  }
  const ReaderStats sweep = sweep_reader.stats();
  std::printf("%-28s issued %llu, hits %llu\n", "sequential-sweep prefetch",
              static_cast<unsigned long long>(sweep.prefetch_issued),
              static_cast<unsigned long long>(sweep.prefetch_hits));

  // ---- JSON report ---------------------------------------------------------
  std::string json = "{\n";
  char tmp[256];
  std::snprintf(tmp, sizeof(tmp),
                "  \"scale\": %g,\n  \"iters\": %d,\n  \"chunks\": %zu,\n",
                scale, iters, chunks);
  json += tmp;
  std::snprintf(tmp, sizeof(tmp), "  \"byte_identical\": %s,\n",
                byte_identical ? "true" : "false");
  json += tmp;
  std::snprintf(tmp, sizeof(tmp),
                "  \"full_decompress_gbps\": %.6g,\n"
                "  \"cold_slice_gbps\": %.6g,\n"
                "  \"hot_slice_gbps\": %.6g,\n"
                "  \"hot_hit_rate\": %.6g,\n",
                full_gbps, cold_gbps, hot_gbps, hot_hit_rate);
  json += tmp;
  json += "  \"concurrency_gbps\": {";
  for (size_t i = 0; i < concurrency.size(); ++i) {
    std::snprintf(tmp, sizeof(tmp), "%s\"%zu\": %.6g",
                  i == 0 ? "" : ", ", concurrency[i].first,
                  concurrency[i].second);
    json += tmp;
  }
  json += "},\n";
  std::snprintf(tmp, sizeof(tmp),
                "  \"prefetch_issued\": %llu,\n  \"prefetch_hits\": %llu\n",
                static_cast<unsigned long long>(sweep.prefetch_issued),
                static_cast<unsigned long long>(sweep.prefetch_hits));
  json += tmp;
  json += "}\n";

  std::ofstream out_file(out_path, std::ios::binary);
  out_file << json;
  std::cout << "\nreport written to " << out_path << "\n";
  return byte_identical ? 0 : 1;
}
