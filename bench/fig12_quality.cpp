// Figure 12 reproduction: reconstructed data quality (PSNR + SSIM) of the
// five compressors on a Hurricane z-slice at a matched compression ratio
// of ~22.8x (paper §4.7).  Parameters are searched per compressor to hit
// the target ratio, mirroring the paper's "similar compression ratio ...
// with different error bounds or bitrate configured".
#include <cmath>
#include <iostream>
#include <optional>

#include "baselines/compressor.hpp"
#include "datasets/transforms.hpp"
#include "harness/experiment.hpp"
#include "harness/tables.hpp"
#include "metrics/ssim.hpp"

namespace {

using namespace fz;
using namespace fz::bench;

/// Search the parameter that brings the compressor closest to the target
/// ratio (error bound sweep for error-bounded, rate sweep for fixed-rate).
std::optional<Measurement> match_ratio(const GpuCompressor& comp,
                                       const Field& f, double target_ratio,
                                       const cudasim::DeviceModel& dev) {
  std::optional<Measurement> best;
  if (comp.mode() == GpuCompressor::Mode::FixedRate) {
    for (double rate = 0.5; rate <= 16.0; rate *= 1.3) {
      const Measurement m = measure(comp, f, rate, dev, /*ssim=*/true);
      if (!best ||
          std::fabs(m.ratio - target_ratio) < std::fabs(best->ratio - target_ratio))
        best = m;
    }
    return best;
  }
  for (double eb = 1e-5; eb <= 0.6; eb *= 1.5) {
    if (!comp.supports(f)) return std::nullopt;
    const Measurement m = measure(comp, f, eb, dev, /*ssim=*/true);
    if (!m.ok) continue;
    if (!best ||
        std::fabs(m.ratio - target_ratio) < std::fabs(best->ratio - target_ratio))
      best = m;
  }
  return best;
}

}  // namespace

int main() {
  const double target_ratio = 26.5;
  // A 2-D slice of the Hurricane QRAIN-like field (the paper uses slice 50
  // of QSNOWf48; our generator's rain-band field plays the same role).
  const Dims dims3 = scaled_dims(Dataset::Hurricane, 0.5);
  const Field vol =
      generate_field_variant(Dataset::Hurricane, "QRAIN", dims3, 42);
  const Field f = slice_z(vol, dims3.z / 2);
  const cudasim::DeviceModel a100(cudasim::DeviceSpec::a100());

  // The paper matches at ~22.8x; our synthetic rain field dithers slightly
  // more under quantization, moving the FZ/cuSZ ratio crossover up — 26.5x
  // is the point where both sit at comparable error bounds (EXPERIMENTS.md).
  std::cout << "Figure 12: reconstructed quality at matched ratio ~"
            << fmt(target_ratio, 1) << "x\n"
            << "field: Hurricane rain-band slice " << f.dims.to_string()
            << "\n\n";

  Table t({"compressor", "ratio", "PSNR dB", "SSIM", "modeled compr GB/s"});
  for (const auto& comp : make_all_compressors()) {
    if (comp->name() == "cuSZ-ncb") continue;  // not part of Fig. 12
    const auto m = match_ratio(*comp, f, target_ratio, a100);
    if (!m) {
      t.add_row({comp->name(), "-", "-", "-", "-"});
      continue;
    }
    t.add_row({comp->name(), fmt(m->ratio, 1), fmt_db(m->psnr_db),
               fmt(m->ssim, 4), fmt_gbps(m->throughput_gbps)});
  }
  t.print(std::cout);
  std::cout << "\nExpected shape (paper): FZ-GPU PSNR == cuSZ (shared error\n"
               "control), SSIM highest for FZ-GPU; cuZFP and cuSZx PSNR\n"
               "well below; MGARD-GPU slightly higher PSNR but far lower\n"
               "throughput.\n";
  return 0;
}
