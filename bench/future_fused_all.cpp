// Future-work projection (paper §6, item 1): "exploit fusing all GPU
// kernels into one to improve the performance further."
//
// Compares the shipped three-kernel pipeline against the single-persistent-
// kernel cost model (core/costs.hpp: fz_fully_fused_cost) on the A100: the
// fused design eliminates the intermediate code/shuffled-word DRAM round
// trips and two kernel launches, at the price of a decoupled-lookback scan
// inside the kernel.
#include <iostream>

#include "core/costs.hpp"
#include "core/pipeline.hpp"
#include "cudasim/device_model.hpp"
#include "datasets/generators.hpp"
#include "harness/experiment.hpp"
#include "harness/tables.hpp"

int main() {
  using namespace fz;
  using namespace fz::bench;

  const cudasim::DeviceModel a100(cudasim::DeviceSpec::a100());
  const auto fields = evaluation_fields();
  const double rel_eb = 1e-3;

  std::cout << "Future work (paper 6.1): fully-fused single-kernel pipeline\n"
            << "projection vs the shipped 3-kernel pipeline, A100 model, "
               "rel eb 1e-3\n\n";

  Table t({"dataset", "3-kernel GB/s", "fused-all GB/s", "projected speedup",
           "DRAM bytes saved"});
  for (const Field& f : fields) {
    FzParams params;
    params.eb = ErrorBound::relative(rel_eb);
    const FzCompressed c = fz_compress(f.values(), f.dims, params);

    double full_bytes = static_cast<double>(f.bytes());
    for (const Dataset ds : all_datasets())
      if (f.dataset == dataset_name(ds))
        full_bytes = static_cast<double>(dataset_info(ds).full_dims.count()) * 4;
    const double fixed_scale = static_cast<double>(f.bytes()) / full_bytes;

    double pipeline_s = 0;
    u64 pipeline_bytes = 0;
    for (const auto& k : c.stage_costs) {
      pipeline_s += a100.seconds(k, fixed_scale);
      pipeline_bytes += k.global_bytes();
    }
    const cudasim::CostSheet fused = fz_fully_fused_cost(c.stats);
    const double fused_s = a100.seconds(fused, fixed_scale);

    t.add_row({f.dataset,
               fmt_gbps(static_cast<double>(f.bytes()) / 1e9 / pipeline_s),
               fmt_gbps(static_cast<double>(f.bytes()) / 1e9 / fused_s),
               fmt(pipeline_s / fused_s, 2) + "x",
               fmt(static_cast<double>(pipeline_bytes - fused.global_bytes()) /
                       1e6,
                   1) + " MB"});
  }
  t.print(std::cout);
  std::cout << "\nThe projection bounds the gain at roughly the ratio of\n"
               "eliminated DRAM traffic; it assumes the in-kernel lookback\n"
               "scan costs ~1 ns per tile of serialization.\n";
  return 0;
}
