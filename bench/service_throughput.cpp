// Service-harness regression bench (PR9 fz::Service / fzd): compress jobs
// streamed through the long-lived service vs. the same work on a direct
// fz::Codec, the multi-client scaling of the worker pool, client-observed
// job-latency percentiles, and a queue-saturation segment that must
// produce explicit QueueFull backpressure.  Byte-identity of every service
// response against the direct codec is asserted while measuring.  Emits a
// machine-readable JSON report (default BENCH_pr9.json) consumed by
// scripts/bench_smoke.sh; the human table goes to stdout.
//
// Usage: service_throughput [--scale S] [--iters N] [--out FILE]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/thread_pool.hpp"
#include "datasets/generators.hpp"
#include "service/service.hpp"

namespace {

using namespace fz;

double min_seconds(int iters, const std::function<void()>& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < iters; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

double gbps(size_t bytes, double secs) {
  return static_cast<double>(bytes) / secs / 1e9;
}

Request make_request(const Field& f) {
  Request req;
  req.kind = JobKind::Compress;
  req.dims = f.dims;
  req.eb = ErrorBound::relative(1e-3);
  const u8* p = reinterpret_cast<const u8*>(f.values().data());
  req.payload.assign(p, p + f.bytes());
  return req;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.06;
  int iters = 3;
  std::string out_path = "BENCH_pr9.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--scale" && i + 1 < argc) scale = std::stod(argv[++i]);
    else if (arg == "--iters" && i + 1 < argc) iters = std::stoi(argv[++i]);
    else if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
    else {
      std::cerr << "usage: service_throughput [--scale S] [--iters N] "
                   "[--out FILE]\n";
      return 2;
    }
  }

  const size_t hw = static_cast<size_t>(max_threads());
  const Field field = generate_field(
      Dataset::CESM, scaled_dims(Dataset::CESM, std::max(scale, 0.02)), 11);
  const Request req = make_request(field);
  const size_t jobs_per_round = 16;
  const size_t round_bytes = jobs_per_round * field.bytes();

  std::cout << "PR9 service bench: scale=" << scale << " iters=" << iters
            << " dims=" << field.dims.to_string() << " hw threads=" << hw
            << "\n\n";

  // ---- baseline: the same jobs on a direct Codec ---------------------------
  FzParams params;
  params.eb = req.eb;
  params.fused_workers = 1;  // match the service's per-worker codec config
  Codec direct(params);
  FzCompressed expect;
  if (!direct.try_compress(field.values(), field.dims, expect).ok()) {
    std::cerr << "direct compress failed\n";
    return 1;
  }
  const double direct_secs = min_seconds(iters, [&] {
    FzCompressed out;
    for (size_t i = 0; i < jobs_per_round; ++i)
      (void)direct.try_compress(field.values(), field.dims, out);
  });
  const double direct_gbps = gbps(round_bytes, direct_secs);
  std::printf("%-30s %8.3f GB/s\n", "direct codec (1 thread)", direct_gbps);

  // ---- service, one worker / one client: pure harness overhead -------------
  bool byte_identical = true;
  double svc1_gbps = 0;
  {
    Service::Options opt;
    opt.workers = 1;
    Service svc(opt);
    Response resp;
    (void)svc.submit(req, resp);  // warm the worker codec
    byte_identical &= resp.status.ok() && resp.payload == expect.bytes;
    const double secs = min_seconds(iters, [&] {
      for (size_t i = 0; i < jobs_per_round; ++i) (void)svc.submit(req, resp);
    });
    byte_identical &= resp.payload == expect.bytes;
    svc1_gbps = gbps(round_bytes, secs);
  }
  std::printf("%-30s %8.3f GB/s\n", "service (1 worker, 1 client)", svc1_gbps);

  // ---- service, all workers / matching clients: pool scaling ---------------
  double svcN_gbps = 0;
  std::vector<double> latencies_us;
  u64 dropped = 0, failed = 0;
  {
    Service svc;  // default: one worker per hardware thread
    const size_t clients = std::max<size_t>(hw, 2);
    const size_t per_client = 8;
    std::atomic<int> mismatches{0};
    // Warm every worker codec before timing.
    run_task_crew(clients, clients, [&](size_t, size_t) {
      Response resp;
      (void)svc.submit(req, resp);
    });
    std::vector<std::vector<double>> lat(clients);
    const double secs = min_seconds(iters, [&] {
      for (auto& v : lat) v.clear();
      run_task_crew(clients, clients, [&](size_t c, size_t) {
        Response resp;
        for (size_t i = 0; i < per_client; ++i) {
          const auto t0 = std::chrono::steady_clock::now();
          const Status s = svc.submit(req, resp);
          const auto t1 = std::chrono::steady_clock::now();
          lat[c].push_back(
              std::chrono::duration<double, std::micro>(t1 - t0).count());
          if (!s.ok() || resp.payload != expect.bytes) ++mismatches;
        }
      });
    });
    byte_identical &= mismatches.load() == 0;
    svcN_gbps = gbps(clients * per_client * field.bytes(), secs);
    for (const auto& v : lat)
      latencies_us.insert(latencies_us.end(), v.begin(), v.end());
    const Service::Counters c = svc.counters();
    dropped = c.dropped_exceptions;
    failed = c.failed;
  }
  std::printf("%-30s %8.3f GB/s\n", "service (all workers)", svcN_gbps);

  std::sort(latencies_us.begin(), latencies_us.end());
  const auto pct = [&](double q) {
    if (latencies_us.empty()) return 0.0;
    const size_t i = std::min(latencies_us.size() - 1,
                              static_cast<size_t>(q * latencies_us.size()));
    return latencies_us[i];
  };
  const double p50 = pct(0.50), p99 = pct(0.99);
  std::printf("%-30s %8.0f / %.0f us\n", "job latency p50 / p99", p50, p99);

  // ---- saturation: a tiny queue must reject, not block or grow -------------
  u64 queue_full = 0;
  {
    Service::Options opt;
    opt.workers = 1;
    opt.queue_depth = 2;
    opt.batch_max = 1;
    Service svc(opt);
    const size_t floods = 4 * std::max<size_t>(hw, 2);
    run_task_crew(floods, floods, [&](size_t, size_t) {
      Response resp;
      for (int i = 0; i < 8; ++i) (void)svc.submit(req, resp);
    });
    queue_full = svc.counters().rejected_queue_full;
  }
  std::printf("%-30s %8llu rejects\n", "saturation backpressure",
              static_cast<unsigned long long>(queue_full));

  const double ratio1 = svc1_gbps / std::max(direct_gbps, 1e-12);
  const double scaling = svcN_gbps / std::max(svc1_gbps, 1e-12);
  std::printf("\nservice/direct (1 worker) %.2fx, pool scaling %.2fx, "
              "byte-identical %s\n",
              ratio1, scaling, byte_identical ? "yes" : "NO");

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"scale\": " << scale << ",\n"
      << "  \"iters\": " << iters << ",\n"
      << "  \"max_threads\": " << hw << ",\n"
      << "  \"byte_identical\": " << (byte_identical ? "true" : "false")
      << ",\n"
      << "  \"direct_gbps\": " << direct_gbps << ",\n"
      << "  \"service_1w_gbps\": " << svc1_gbps << ",\n"
      << "  \"service_all_gbps\": " << svcN_gbps << ",\n"
      << "  \"service_1w_vs_direct\": " << ratio1 << ",\n"
      << "  \"pool_scaling\": " << scaling << ",\n"
      << "  \"latency_p50_us\": " << p50 << ",\n"
      << "  \"latency_p99_us\": " << p99 << ",\n"
      << "  \"queue_full_rejects\": " << queue_full << ",\n"
      << "  \"failed_jobs\": " << failed << ",\n"
      << "  \"dropped_exceptions\": " << dropped << "\n"
      << "}\n";
  std::cout << "report written to " << out_path << "\n";
  return byte_identical && dropped == 0 ? 0 : 1;
}
