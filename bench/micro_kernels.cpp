// google-benchmark microbenchmarks of the native kernels: wall-clock
// throughput of each pipeline stage and substrate codec on this machine.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/bitshuffle.hpp"
#include "core/encoder.hpp"
#include "core/lorenzo.hpp"
#include "core/pipeline.hpp"
#include "core/quantizer.hpp"
#include "datasets/generators.hpp"
#include <algorithm>
#include <cmath>

#include "substrate/huffman.hpp"
#include "substrate/lz77.hpp"
#include "substrate/scan.hpp"

namespace {

using namespace fz;

std::vector<u32> random_words(size_t n, u64 seed = 1) {
  Rng rng(seed);
  std::vector<u32> v(n);
  for (auto& w : v) w = rng.next_u32();
  return v;
}

void BM_Prequantize(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Field f = generate_field(Dataset::Hurricane, Dims{n});
  std::vector<i64> out(n);
  for (auto _ : state) {
    prequantize(f.values(), 1e-3, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations() * n * 4));
}
BENCHMARK(BM_Prequantize)->Arg(1 << 16)->Arg(1 << 20);

void BM_LorenzoForward3D(benchmark::State& state) {
  const size_t e = static_cast<size_t>(state.range(0));
  const Dims dims{e, e, e};
  std::vector<i64> p(dims.count(), 7), d(dims.count());
  for (auto _ : state) {
    lorenzo_forward(p, dims, d);
    benchmark::DoNotOptimize(d.data());
  }
  state.SetBytesProcessed(
      static_cast<i64>(state.iterations() * dims.count() * 4));
}
BENCHMARK(BM_LorenzoForward3D)->Arg(32)->Arg(64);

void BM_BitshuffleTiles(benchmark::State& state) {
  const size_t words = static_cast<size_t>(state.range(0));
  const auto in = random_words(words);
  std::vector<u32> out(words);
  for (auto _ : state) {
    bitshuffle_tiles(in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations() * words * 4));
}
BENCHMARK(BM_BitshuffleTiles)->Arg(kTileWords * 16)->Arg(kTileWords * 256);

void BM_EncodeBlocks(benchmark::State& state) {
  // Realistic post-shuffle sparsity (~20% nonzero blocks).
  Rng rng(3);
  std::vector<u32> words(static_cast<size_t>(state.range(0)), 0);
  for (size_t b = 0; b < words.size() / kBlockWords; ++b)
    if (rng.uniform() < 0.2) words[b * kBlockWords] = rng.next_u32() | 1;
  for (auto _ : state) {
    const EncodeResult enc = encode_blocks(words);
    benchmark::DoNotOptimize(enc.blocks.data());
  }
  state.SetBytesProcessed(
      static_cast<i64>(state.iterations() * words.size() * 4));
}
BENCHMARK(BM_EncodeBlocks)->Arg(kTileWords * 64);

void BM_PrefixSum(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<u32> in(n, 1), out(n);
  for (auto _ : state) {
    scan_exclusive_parallel(in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations() * n * 4));
}
BENCHMARK(BM_PrefixSum)->Arg(1 << 20);

void BM_HuffmanEncode(benchmark::State& state) {
  Rng rng(5);
  std::vector<u16> syms(static_cast<size_t>(state.range(0)));
  for (auto& s : syms)
    s = static_cast<u16>(
        std::clamp<i64>(512 + std::llround(rng.normal(0.0, 4.0)), 0, 1023));
  for (auto _ : state) {
    const auto stream = huffman_compress(syms, 1024);
    benchmark::DoNotOptimize(stream.data());
  }
  state.SetBytesProcessed(
      static_cast<i64>(state.iterations() * syms.size() * 2));
}
BENCHMARK(BM_HuffmanEncode)->Arg(1 << 18);

void BM_LzCompress(benchmark::State& state) {
  Rng rng(6);
  std::vector<u8> data(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < data.size(); ++i)
    data[i] = i % 4 == 0 ? static_cast<u8>(rng.next_u32()) : 0;
  for (auto _ : state) {
    const auto c = lz_compress(data);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations() * data.size()));
}
BENCHMARK(BM_LzCompress)->Arg(1 << 18);

void BM_BitunshuffleTiles(benchmark::State& state) {
  const size_t words = static_cast<size_t>(state.range(0));
  const auto in = random_words(words, 7);
  std::vector<u32> out(words);
  for (auto _ : state) {
    bitunshuffle_tiles(in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations() * words * 4));
}
BENCHMARK(BM_BitunshuffleTiles)->Arg(kTileWords * 64);

void BM_DecodeBlocks(benchmark::State& state) {
  Rng rng(8);
  std::vector<u32> words(static_cast<size_t>(state.range(0)), 0);
  for (size_t b = 0; b < words.size() / kBlockWords; ++b)
    if (rng.uniform() < 0.2) words[b * kBlockWords] = rng.next_u32() | 1;
  const EncodeResult enc = encode_blocks(words);
  std::vector<u32> out(words.size());
  for (auto _ : state) {
    decode_blocks(enc.bit_flags, enc.blocks, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(
      static_cast<i64>(state.iterations() * words.size() * 4));
}
BENCHMARK(BM_DecodeBlocks)->Arg(kTileWords * 64);

void BM_HuffmanDecode(benchmark::State& state) {
  Rng rng(9);
  std::vector<u16> syms(static_cast<size_t>(state.range(0)));
  for (auto& s : syms)
    s = static_cast<u16>(
        std::clamp<i64>(512 + std::llround(rng.normal(0.0, 4.0)), 0, 1023));
  const auto stream = huffman_compress(syms, 1024);
  for (auto _ : state) {
    const auto back = huffman_decompress(stream);
    benchmark::DoNotOptimize(back.data());
  }
  state.SetBytesProcessed(
      static_cast<i64>(state.iterations() * syms.size() * 2));
}
BENCHMARK(BM_HuffmanDecode)->Arg(1 << 18);

void BM_LorenzoInverse3D(benchmark::State& state) {
  const size_t e = static_cast<size_t>(state.range(0));
  const Dims dims{e, e, e};
  std::vector<i64> d(dims.count(), 1), p(dims.count());
  for (auto _ : state) {
    lorenzo_inverse(d, dims, p);
    benchmark::DoNotOptimize(p.data());
  }
  state.SetBytesProcessed(
      static_cast<i64>(state.iterations() * dims.count() * 4));
}
BENCHMARK(BM_LorenzoInverse3D)->Arg(64);

void BM_FzCompressEndToEnd(benchmark::State& state) {
  const Field f =
      generate_field(Dataset::Hurricane, scaled_dims(Dataset::Hurricane, 0.12));
  FzParams params;
  params.eb = ErrorBound::relative(1e-3);
  for (auto _ : state) {
    const FzCompressed c = fz_compress(f.values(), f.dims, params);
    benchmark::DoNotOptimize(c.bytes.data());
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations() * f.bytes()));
}
BENCHMARK(BM_FzCompressEndToEnd);

void BM_FzDecompressEndToEnd(benchmark::State& state) {
  const Field f =
      generate_field(Dataset::Hurricane, scaled_dims(Dataset::Hurricane, 0.12));
  FzParams params;
  params.eb = ErrorBound::relative(1e-3);
  const FzCompressed c = fz_compress(f.values(), f.dims, params);
  for (auto _ : state) {
    const FzDecompressed d = fz_decompress(c.bytes);
    benchmark::DoNotOptimize(d.data.data());
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations() * f.bytes()));
}
BENCHMARK(BM_FzDecompressEndToEnd);

}  // namespace

BENCHMARK_MAIN();
