// Table 1 reproduction: the evaluation datasets.  Prints the full-scale
// SDRBench dimensions the paper lists alongside the scaled synthetic
// instances this repository generates (DESIGN.md §1 documents the
// substitution).
#include <iostream>

#include "datasets/generators.hpp"
#include "harness/tables.hpp"

int main() {
  using namespace fz;
  using bench::Table;

  std::cout << "Table 1: real-world float datasets used in evaluation\n"
            << "(paper-scale dims from SDRBench; generated instances are\n"
            << " statistically matched synthetic stand-ins at bench scale)\n\n";

  Table t({"dataset", "domain", "paper dims", "paper MB", "#fields",
           "example fields", "bench dims", "bench MB"});
  for (const Dataset ds : all_datasets()) {
    const DatasetInfo& info = dataset_info(ds);
    const Dims bench_dims = scaled_dims(ds, 0.22);
    const Field f = generate_field(ds, bench_dims);
    t.add_row({info.name, info.domain, info.full_dims.to_string(),
               bench::fmt(info.full_field_mb, 2), std::to_string(info.num_fields),
               info.example_fields, bench_dims.to_string(),
               bench::fmt(static_cast<double>(f.bytes()) / 1e6, 2)});
  }
  t.print(std::cout);
  return 0;
}
