// Figure 11 reproduction: overall CPU-GPU data-transfer throughput
// T_overall = ((BW*CR)^-1 + T_compr^-1)^-1 with BW = 11.4 GB/s (the
// paper's measured per-GPU PCIe bandwidth with 4 GPUs active), A100 model.
#include <iostream>

#include "baselines/compressor.hpp"
#include "harness/experiment.hpp"
#include "harness/tables.hpp"

int main() {
  using namespace fz;
  using namespace fz::bench;

  const auto fields = evaluation_fields();
  const cudasim::DeviceModel a100(cudasim::DeviceSpec::a100());
  const double bw = a100.spec().pcie_bw_gbps;
  const auto compressors = make_all_compressors();

  std::cout << "Figure 11: overall CPU-GPU data-transfer throughput (GB/s), "
               "BW = "
            << fmt(bw, 1) << " GB/s, A100 model\n\n";

  int fz_wins = 0, cells = 0;
  for (const Field& f : fields) {
    std::cout << "== " << f.dataset << " " << f.dims.to_string() << " ==\n";
    Table t({"rel eb", "cuSZ", "cuZFP", "cuSZx", "MGARD-GPU", "FZ-GPU"});
    for (const double eb : paper_error_bounds()) {
      Field flat = f;
      if (f.dataset == "QMCPACK") flat.dims = Dims{f.count()};

      const Measurement m_fz = measure(*compressors[0], f, eb, a100);
      const Measurement m_sz = measure(*compressors[1], flat, eb, a100);
      const auto m_zfp =
          match_cuzfp_psnr(*compressors[3], f, m_fz.psnr_db, a100);
      const Measurement m_szx = measure(*compressors[4], f, eb, a100);
      const Measurement m_mg = measure(*compressors[5], f, eb, a100);

      auto overall = [&](const Measurement& m) -> double {
        if (!m.ok || m.ratio <= 0 || m.throughput_gbps <= 0) return -1;
        return overall_throughput_gbps(bw, m.ratio, m.throughput_gbps);
      };
      auto cell = [&](const Measurement& m) {
        const double v = overall(m);
        return v < 0 ? std::string("-") : fmt_gbps(v);
      };
      const double o_fz = overall(m_fz);
      double best_other = -1;
      for (const Measurement* m : {&m_sz, &m_szx, &m_mg})
        best_other = std::max(best_other, overall(*m));
      if (m_zfp) best_other = std::max(best_other, overall(*m_zfp));
      fz_wins += o_fz >= best_other;
      ++cells;

      t.add_row({fmt(eb, 4), cell(m_sz),
                 m_zfp ? cell(*m_zfp) : std::string("-"), cell(m_szx),
                 cell(m_mg), cell(m_fz)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "FZ-GPU has the best overall throughput in " << fz_wins << "/"
            << cells
            << " cells (paper: best on almost all datasets at all bounds).\n";
  return 0;
}
