// Figure 8 reproduction: compression throughput of all six compressor
// configurations on the A100 device model, six datasets x five bounds.
#include "throughput_common.hpp"

int main() {
  return fz::bench::run_throughput_figure(fz::cudasim::DeviceSpec::a100(),
                                          "Figure 8");
}
