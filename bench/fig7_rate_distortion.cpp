// Figure 7 reproduction: rate-distortion (PSNR vs bitrate) of the five GPU
// lossy compressors on the six datasets.  Error-bounded compressors sweep
// the paper's five relative error bounds; cuZFP sweeps bitrates and is
// PSNR-matched per point, exactly as in §4.3.
#include <iostream>

#include "baselines/compressor.hpp"
#include "harness/experiment.hpp"
#include "harness/tables.hpp"

int main() {
  using namespace fz;
  using namespace fz::bench;

  const auto fields = evaluation_fields();
  const cudasim::DeviceModel a100(cudasim::DeviceSpec::a100());
  const auto fzgpu = make_fzgpu();
  const auto cusz = make_cusz();
  const auto cuszx = make_cuszx();
  const auto mgard = make_mgard();
  const auto cuzfp = make_cuzfp();

  std::cout << "Figure 7: rate-distortion (bitrate in bits/value, PSNR in dB)\n\n";

  for (const Field& f : fields) {
    std::cout << "== " << f.dataset << " " << f.dims.to_string() << " ==\n";
    Table t({"rel eb", "FZ-GPU br", "FZ-GPU dB", "cuSZ br", "cuSZ dB",
             "cuSZx br", "cuSZx dB", "MGARD br", "MGARD dB", "cuZFP br",
             "cuZFP dB"});
    for (const double eb : paper_error_bounds()) {
      // cuSZ runs on flattened QMCPACK, mirroring the paper's workaround.
      Field flat = f;
      if (f.dataset == "QMCPACK") flat.dims = Dims{f.count()};

      const Measurement m_fz = measure(*fzgpu, f, eb, a100);
      const Measurement m_sz = measure(*cusz, flat, eb, a100);
      const Measurement m_szx = measure(*cuszx, f, eb, a100);
      const Measurement m_mg = measure(*mgard, f, eb, a100);
      const auto m_zfp = match_cuzfp_psnr(*cuzfp, f, m_fz.psnr_db, a100);

      auto cell_br = [](const Measurement& m) {
        return m.ok ? fmt(m.bitrate, 2) : std::string("-");
      };
      auto cell_db = [](const Measurement& m) {
        return m.ok ? fmt_db(m.psnr_db) : std::string("-");
      };
      t.add_row({fmt(eb, 4), cell_br(m_fz), cell_db(m_fz), cell_br(m_sz),
                 cell_db(m_sz), cell_br(m_szx), cell_db(m_szx), cell_br(m_mg),
                 cell_db(m_mg),
                 m_zfp ? fmt(m_zfp->bitrate, 2) : std::string("-"),
                 m_zfp ? fmt_db(m_zfp->psnr_db) : std::string("-")});
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Expected shape (paper): FZ-GPU ~= cuSZ bitrate; FZ-GPU beats\n"
               "cuSZ on RTM at high eb; cuZFP needs ~2x the bitrate of FZ-GPU\n"
               "for equal PSNR except smooth high-eb corners (Nyx/RTM); cuSZx\n"
               "bitrate is the largest; MGARD over-preserves (higher PSNR at\n"
               "the same nominal eb).\n";
  return 0;
}
