// Shared driver for the Figure 8 / Figure 9 compression-throughput
// reproductions (they differ only in the device model).
#pragma once

#include <iostream>

#include "baselines/compressor.hpp"
#include "harness/experiment.hpp"
#include "harness/tables.hpp"

namespace fz::bench {

inline int run_throughput_figure(const cudasim::DeviceSpec& spec,
                                 const char* figure_name) {
  const auto fields = evaluation_fields();
  const cudasim::DeviceModel dev(spec);
  const auto compressors = make_all_compressors();
  const auto& fzgpu = *compressors[0];
  const auto& cuzfp = *compressors[3];

  std::cout << figure_name
            << ": compression throughput (GB/s), device model: "
            << spec.name << "\n"
            << "cuZFP is PSNR-matched to FZ-GPU per cell (paper protocol);\n"
               "'-' marks unsupported or unmatchable cases.\n\n";

  double fz_sum = 0, cusz_sum = 0, zfp_sum = 0, szx_sum = 0, mgard_sum = 0;
  int fz_n = 0, cusz_n = 0, zfp_n = 0, szx_n = 0, mgard_n = 0;

  for (const Field& f : fields) {
    std::cout << "== " << f.dataset << " " << f.dims.to_string() << " ==\n";
    Table t({"rel eb", "cuSZ", "cuSZ-ncb", "cuZFP", "cuSZx", "MGARD-GPU",
             "FZ-GPU"});
    for (const double eb : paper_error_bounds()) {
      Field flat = f;
      if (f.dataset == "QMCPACK") flat.dims = Dims{f.count()};

      const Measurement m_fz = measure(fzgpu, f, eb, dev);
      const Measurement m_sz = measure(*compressors[1], flat, eb, dev);
      const Measurement m_ncb = measure(*compressors[2], flat, eb, dev);
      const auto m_zfp = match_cuzfp_psnr(cuzfp, f, m_fz.psnr_db, dev);
      const Measurement m_szx = measure(*compressors[4], f, eb, dev);
      const Measurement m_mg = measure(*compressors[5], f, eb, dev);

      auto cell = [](const Measurement& m) {
        return m.ok ? fmt_gbps(m.throughput_gbps) : std::string("-");
      };
      t.add_row({fmt(eb, 4), cell(m_sz), cell(m_ncb),
                 m_zfp ? fmt_gbps(m_zfp->throughput_gbps) : std::string("-"),
                 cell(m_szx), cell(m_mg), cell(m_fz)});

      fz_sum += m_fz.throughput_gbps;
      ++fz_n;
      if (m_sz.ok) {
        cusz_sum += m_sz.throughput_gbps;
        ++cusz_n;
      }
      if (m_zfp) {
        zfp_sum += m_zfp->throughput_gbps;
        ++zfp_n;
      }
      if (m_szx.ok) {
        szx_sum += m_szx.throughput_gbps;
        ++szx_n;
      }
      if (m_mg.ok) {
        mgard_sum += m_mg.throughput_gbps;
        ++mgard_n;
      }
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  const double fz_avg = fz_sum / fz_n;
  std::cout << "Average throughput (GB/s): FZ-GPU " << fmt_gbps(fz_avg)
            << ", cuSZ " << fmt_gbps(cusz_sum / cusz_n) << ", cuZFP "
            << fmt_gbps(zfp_sum / std::max(zfp_n, 1)) << ", cuSZx "
            << fmt_gbps(szx_sum / szx_n) << ", MGARD-GPU "
            << fmt_gbps(mgard_sum / std::max(mgard_n, 1)) << "\n";
  std::cout << "Average speedups: FZ-GPU/cuSZ = "
            << fmt(fz_avg / (cusz_sum / cusz_n), 1) << "x, FZ-GPU/cuZFP = "
            << fmt(fz_avg / (zfp_sum / std::max(zfp_n, 1)), 1)
            << "x, cuSZx/FZ-GPU = " << fmt((szx_sum / szx_n) / fz_avg, 1)
            << "x\n";
  return 0;
}

}  // namespace fz::bench
