// Figure 10 reproduction: per-kernel throughput of the proposed
// optimizations (paper §4.5), A100 model, rel eb 1e-4:
//   pred-quant-v1        original dual-quantization (shift + outliers)
//   pred-quant-v2        optimized (sign-magnitude, no outliers)
//   bitshuffle-mark-v1   two separate kernels
//   bitshuffle-mark-v2   fused kernel
//   prefix-sum-encode-v1 encode fed by v1 quantization codes
//   prefix-sum-encode-v2 encode fed by v2 codes (fewer nonzero blocks)
#include <iostream>
#include <map>

#include "core/pipeline.hpp"
#include "cudasim/device_model.hpp"
#include "datasets/generators.hpp"
#include "harness/experiment.hpp"
#include "harness/tables.hpp"

int main() {
  using namespace fz;
  using namespace fz::bench;

  const cudasim::DeviceModel a100(cudasim::DeviceSpec::a100());
  const double rel_eb = 1e-4;
  const auto fields = evaluation_fields();

  std::cout << "Figure 10: optimization ablation, per-kernel throughput "
               "(GB/s), A100 model, rel eb 1e-4\n\n";

  Table t({"dataset", "pred-quant v1", "pred-quant v2", "bitshuf-mark v1",
           "bitshuf-mark v2", "psum-encode v1", "psum-encode v2"});

  for (const Field& f : fields) {
    FzParams v1_split, v2_split, v2_fused;
    v1_split.eb = v2_split.eb = v2_fused.eb = ErrorBound::relative(rel_eb);
    v1_split.quant = QuantVersion::V1Original;
    v1_split.fused_host_graph = false;
    v1_split.fused_bitshuffle_mark = false;
    v2_split.fused_bitshuffle_mark = false;

    const FzCompressed cv1 = fz_compress(f.values(), f.dims, v1_split);
    const FzCompressed cv2s = fz_compress(f.values(), f.dims, v2_split);
    const FzCompressed cv2f = fz_compress(f.values(), f.dims, v2_fused);

    // Fixed costs scaled to the dataset's full size (size emulation).
    double full_bytes = static_cast<double>(f.bytes());
    for (const Dataset ds : all_datasets())
      if (f.dataset == dataset_name(ds))
        full_bytes =
            static_cast<double>(dataset_info(ds).full_dims.count()) * 4;
    const double fixed_scale = static_cast<double>(f.bytes()) / full_bytes;

    auto tp = [&](const std::vector<cudasim::CostSheet>& costs,
                  const std::string& prefix) {
      double s = 0;
      for (const auto& c : costs)
        if (c.name.rfind(prefix, 0) == 0) s += a100.seconds(c, fixed_scale);
      return static_cast<double>(f.bytes()) / 1e9 / s;
    };
    // Split bitshuffle+mark = sum of the two kernels.
    auto tp_split_shuffle = [&](const FzCompressed& c) {
      double s = 0;
      for (const auto& k : c.stage_costs)
        if (k.name == "bitshuffle" || k.name == "mark")
          s += a100.seconds(k, fixed_scale);
      return static_cast<double>(f.bytes()) / 1e9 / s;
    };

    t.add_row({f.dataset, fmt_gbps(tp(cv1.stage_costs, "pred-quant-v1")),
               fmt_gbps(tp(cv2f.stage_costs, "pred-quant-v2")),
               fmt_gbps(tp_split_shuffle(cv2s)),
               fmt_gbps(tp(cv2f.stage_costs, "bitshuffle-mark-fused")),
               fmt_gbps(tp(cv1.stage_costs, "prefix-sum-encode")),
               fmt_gbps(tp(cv2f.stage_costs, "prefix-sum-encode"))});
  }
  t.print(std::cout);
  std::cout
      << "\nExpected shape (paper): v2 pred-quant up to ~1.7x faster (no\n"
         "branches/outliers); fused bitshuffle-mark ~1.1x; v2 encode up to\n"
         "~1.9x (fewer nonzero blocks), except HACC where v1's outlier\n"
         "handling would have absorbed the irregular integers.\n";
  return 0;
}
