// CPU thread scaling (paper §4.4 footnote 5: "the performance of both
// FZ-OMP and SZ-OMP increases as the number of threads increases to 32
// (with up to 21.2x speedup), but it does not increase much with more than
// 32 threads").  Measures FZ-OMP compression wall clock at 1..N threads on
// this machine.
#include <cstdio>
#include <vector>

#if defined(FZ_HAVE_OPENMP)
#include <omp.h>
#endif

#include "baselines/szomp.hpp"
#include "common/parallel.hpp"
#include "datasets/generators.hpp"
#include "harness/experiment.hpp"

int main() {
  using namespace fz;
  using namespace fz::bench;

  const auto fields = evaluation_fields(0.12);
  const Field& f = fields[2];  // Hurricane
  const int hw_threads = max_threads();

  std::printf("FZ-OMP thread scaling, field %s %s (%.1f MB), rel eb 1e-3\n",
              f.dataset.c_str(), f.dims.to_string().c_str(),
              static_cast<double>(f.bytes()) / 1e6);
  std::printf("hardware threads available: %d\n\n", hw_threads);
  std::printf("%8s %14s %14s %9s\n", "threads", "compress GB/s",
              "decompress GB/s", "scaling");

  double base = 0;
  for (int threads = 1; threads <= hw_threads; threads *= 2) {
#if defined(FZ_HAVE_OPENMP)
    omp_set_num_threads(threads);
#endif
    const RunResult r = run_fz_omp(f, 1e-3, 2);
    const double comp =
        static_cast<double>(f.bytes()) / 1e9 / r.native_compress_seconds;
    const double decomp =
        static_cast<double>(f.bytes()) / 1e9 / r.native_decompress_seconds;
    if (threads == 1) base = comp;
    std::printf("%8d %14.3f %14.3f %8.2fx\n", threads, comp, decomp,
                comp / base);
  }
#if defined(FZ_HAVE_OPENMP)
  omp_set_num_threads(hw_threads);  // restore
#endif
  std::printf(
      "\nExpected shape (paper, 32-core Xeon): near-linear scaling up to\n"
      "the physical core count, then flat (\"does not increase much with\n"
      "more than 32 threads ... due to the limited workload per core\").\n"
      "On a single-core machine this prints one row.\n");
  return 0;
}
