// CPU thread scaling (paper §4.4 footnote 5: "the performance of both
// FZ-OMP and SZ-OMP increases as the number of threads increases to 32
// (with up to 21.2x speedup), but it does not increase much with more than
// 32 threads").  Measures FZ-OMP compression wall clock at 1..N threads on
// this machine.
//
// A second table measures the chunked container's parallel chunk execution
// (core/chunked.hpp): chunk count fixed, worker count swept, each worker
// running a private fz::Codec.  This is the pooled-codec path, so past the
// first iteration no worker touches the heap for scratch.
#include <cstdio>
#include <vector>

#if defined(FZ_HAVE_OPENMP)
#include <omp.h>
#endif

#include "baselines/szomp.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "core/chunked.hpp"
#include "datasets/generators.hpp"
#include "harness/experiment.hpp"

int main() {
  using namespace fz;
  using namespace fz::bench;

  const auto fields = evaluation_fields(0.12);
  const Field& f = fields[2];  // Hurricane
  const int hw_threads = max_threads();

  std::printf("FZ-OMP thread scaling, field %s %s (%.1f MB), rel eb 1e-3\n",
              f.dataset.c_str(), f.dims.to_string().c_str(),
              static_cast<double>(f.bytes()) / 1e6);
  std::printf("hardware threads available: %d\n\n", hw_threads);
  std::printf("%8s %14s %14s %9s\n", "threads", "compress GB/s",
              "decompress GB/s", "scaling");

  double base = 0;
  for (int threads = 1; threads <= hw_threads; threads *= 2) {
#if defined(FZ_HAVE_OPENMP)
    omp_set_num_threads(threads);
#endif
    const RunResult r = run_fz_omp(f, 1e-3, 2);
    const double comp =
        static_cast<double>(f.bytes()) / 1e9 / r.native_compress_seconds;
    const double decomp =
        static_cast<double>(f.bytes()) / 1e9 / r.native_decompress_seconds;
    if (threads == 1) base = comp;
    std::printf("%8d %14.3f %14.3f %8.2fx\n", threads, comp, decomp,
                comp / base);
  }
#if defined(FZ_HAVE_OPENMP)
  omp_set_num_threads(hw_threads);  // restore
#endif
  std::printf(
      "\nExpected shape (paper, 32-core Xeon): near-linear scaling up to\n"
      "the physical core count, then flat (\"does not increase much with\n"
      "more than 32 threads ... due to the limited workload per core\").\n"
      "On a single-core machine this prints one row.\n");

  // ---- chunked container: parallel chunk workers ---------------------------
  // Inner loops single-threaded (1 OpenMP thread) so the sweep isolates the
  // chunk-level parallelism of parallel_tasks + per-worker codecs.
#if defined(FZ_HAVE_OPENMP)
  omp_set_num_threads(1);
#endif
  // Sweep to at least 4 workers even on small machines: extra rows there
  // just show oversubscription staying flat, which still exercises the
  // multi-worker path.
  const int max_workers = hw_threads > 4 ? hw_threads : 4;
  ChunkedParams cparams;
  cparams.base.eb = ErrorBound::relative(1e-3);
  cparams.num_chunks = static_cast<size_t>(max_workers) * 2;  // load balance
  std::printf(
      "\nChunked-container scaling: %zu chunks, worker count swept\n"
      "(per-worker codecs; inner kernels pinned to 1 thread)\n\n",
      cparams.num_chunks);
  std::printf("%8s %14s %14s %9s\n", "workers", "compress GB/s",
              "decompress GB/s", "scaling");
  double chunk_base = 0;
  for (int workers = 1; workers <= max_workers; workers *= 2) {
    cparams.max_parallelism = static_cast<size_t>(workers);
    ChunkedCompressed c;
    const double comp_s = time_best_of(
        2, [&] { c = fz_compress_chunked(f.values(), f.dims, cparams); });
    const double decomp_s = time_best_of(2, [&] {
      const FzDecompressed d =
          fz_decompress_chunked(c.bytes, cparams.max_parallelism);
      (void)d;
    });
    const double comp = throughput_gbps(f.bytes(), comp_s);
    const double decomp = throughput_gbps(f.bytes(), decomp_s);
    if (workers == 1) chunk_base = comp;
    std::printf("%8d %14.3f %14.3f %8.2fx\n", workers, comp, decomp,
                comp / chunk_base);
  }
#if defined(FZ_HAVE_OPENMP)
  omp_set_num_threads(hw_threads);  // restore
#endif
  std::printf(
      "\nExpected shape: scaling tracks the worker count until it reaches\n"
      "the physical cores; the container bytes are identical at every\n"
      "worker count.\n");
  return 0;
}
