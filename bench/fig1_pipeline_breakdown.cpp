// Figure 1 reproduction: per-kernel relative time and throughput of the
// FZ-GPU pipeline versus the cuSZ pipeline, on one Hurricane field at
// relative error bound 1e-4 (the paper's annotation setting), A100 model.
#include <iostream>

#include "baselines/compressor.hpp"
#include "cudasim/device_model.hpp"
#include "datasets/generators.hpp"
#include "harness/experiment.hpp"
#include "harness/tables.hpp"

int main() {
  using namespace fz;
  using namespace fz::bench;

  const Field f =
      generate_field(Dataset::Hurricane, scaled_dims(Dataset::Hurricane, 0.22));
  const cudasim::DeviceModel a100(cudasim::DeviceSpec::a100());
  const double rel_eb = 1e-4;

  std::cout << "Figure 1: compression pipeline kernel breakdown\n"
            << "field: Hurricane " << f.dims.to_string() << " ("
            << fmt(static_cast<double>(f.bytes()) / 1e6, 1)
            << " MB), rel eb = 1e-4, device model: A100\n\n";

  // Fixed costs are scaled to the full Hurricane field size (size
  // emulation, DESIGN.md §1).
  const double fixed_scale =
      static_cast<double>(f.bytes()) /
      (static_cast<double>(dataset_info(Dataset::Hurricane).full_dims.count()) * 4);

  const auto report = [&](const char* title, const RunResult& r) {
    double total = 0;
    for (const auto& c : r.compression_costs)
      total += a100.seconds(c, fixed_scale);
    Table t({"kernel", "time %", "throughput GB/s"});
    for (const auto& c : r.compression_costs) {
      const double s = a100.seconds(c, fixed_scale);
      t.add_row({c.name, fmt(100.0 * s / total, 1),
                 fmt_gbps(static_cast<double>(f.bytes()) / 1e9 / s)});
    }
    t.add_row({"TOTAL", "100.0",
               fmt_gbps(static_cast<double>(f.bytes()) / 1e9 / total)});
    std::cout << title << "\n";
    t.print(std::cout);
    std::cout << "\n";
  };

  report("FZ-GPU pipeline:", make_fzgpu()->run(f, rel_eb));
  report("cuSZ pipeline:", make_cusz()->run(f, rel_eb));
  return 0;
}
