// Decompression throughput (paper §4.4): "the decompression pipeline is
// highly symmetrical to the compression pipeline, exhibiting throughput
// nearly identical to that of compression."  This bench makes that claim
// checkable: modeled compression vs decompression throughput per dataset
// for FZ-GPU and the baselines, A100 model.
#include <iostream>

#include "baselines/compressor.hpp"
#include "harness/experiment.hpp"
#include "harness/tables.hpp"

int main() {
  using namespace fz;
  using namespace fz::bench;

  const cudasim::DeviceModel a100(cudasim::DeviceSpec::a100());
  const auto fields = evaluation_fields();
  const double rel_eb = 1e-3;

  std::cout << "Decompression vs compression throughput (GB/s), A100 model, "
               "rel eb 1e-3\n\n";

  const auto compressors = make_all_compressors();
  Table t({"dataset", "FZ compr", "FZ decomp", "FZ ratio", "cuSZ compr",
           "cuSZ decomp", "cuSZx compr", "cuSZx decomp"});
  for (const Field& f : fields) {
    Field flat = f;
    if (f.dataset == "QMCPACK") flat.dims = Dims{f.count()};
    const Measurement fz_ = measure(*compressors[0], f, rel_eb, a100);
    const Measurement sz = measure(*compressors[1], flat, rel_eb, a100);
    const Measurement szx = measure(*compressors[4], f, rel_eb, a100);
    auto decomp = [&](const Measurement& m) {
      return m.decompress_seconds > 0
                 ? static_cast<double>(m.input_bytes) / 1e9 / m.decompress_seconds
                 : 0.0;
    };
    t.add_row({f.dataset, fmt_gbps(fz_.throughput_gbps), fmt_gbps(decomp(fz_)),
               fmt(decomp(fz_) / fz_.throughput_gbps, 2),
               fmt_gbps(sz.throughput_gbps), fmt_gbps(decomp(sz)),
               fmt_gbps(szx.throughput_gbps), fmt_gbps(decomp(szx))});
  }
  t.print(std::cout);
  std::cout << "\nExpected shape (paper): FZ decompression ~= compression\n"
               "(symmetric pipeline); cuSZ decompression skips the codebook\n"
               "build so it runs well above its compression.\n";
  return 0;
}
