// Multi-field evaluation: the paper's datasets have many fields per dataset
// (Table 1: HACC 6, CESM 70, Hurricane 13, ...), and the evaluation names
// two examples each.  This bench runs FZ-GPU and cuSZ on the named second
// fields — HACC vx (velocities), CESM CLDICE (sparse cloud ice), Hurricane
// QRAIN (sparse rain bands) — to show behaviour beyond the representative
// field used in the figure benches.
#include <iostream>

#include "baselines/compressor.hpp"
#include "datasets/transforms.hpp"
#include "harness/experiment.hpp"
#include "harness/tables.hpp"

int main() {
  using namespace fz;
  using namespace fz::bench;

  const cudasim::DeviceModel a100(cudasim::DeviceSpec::a100());
  const auto fzgpu = make_fzgpu();
  const auto cusz = make_cusz();

  struct Variant {
    Dataset ds;
    const char* field;
  };
  const Variant variants[] = {
      {Dataset::HACC, "vx"},
      {Dataset::CESM, "CLDICE"},
      {Dataset::Hurricane, "QRAIN"},
  };

  std::cout << "Second-field evaluation (Table 1 example fields), A100 model\n\n";
  Table t({"dataset", "field", "rel eb", "FZ ratio", "FZ PSNR", "FZ GB/s",
           "cuSZ ratio", "cuSZ PSNR", "cuSZ GB/s"});
  for (const auto& [ds, field] : variants) {
    Field f = generate_field_variant(ds, field, scaled_dims(ds, 0.22), 42);
    for (const double eb : {1e-2, 1e-4}) {
      const Measurement m_fz = measure(*fzgpu, f, eb, a100);
      const Measurement m_sz = measure(*cusz, f, eb, a100);
      t.add_row({f.dataset, f.name, fmt(eb, 4), fmt_ratio(m_fz.ratio),
                 fmt_db(m_fz.psnr_db), fmt_gbps(m_fz.throughput_gbps),
                 fmt_ratio(m_sz.ratio), fmt_db(m_sz.psnr_db),
                 fmt_gbps(m_sz.throughput_gbps)});
    }
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: identical PSNR per row (shared error\n"
               "control); the sparse fields (CLDICE/QRAIN) reach much higher\n"
               "ratios than their datasets' dense fields; FZ throughput stays\n"
               "stable across fields while cuSZ's moves with entropy and the\n"
               "codebook overhead.\n";
  return 0;
}
