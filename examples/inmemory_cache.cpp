// In-memory compression cache — the §2.4 use case: "compressed data will
// be cached in the GPU global memory and decompressed on the GPU directly
// when the reconstructed data is needed for computation."
//
// A simulation loop produces timestep fields; the cache keeps every
// timestep compressed and decompresses on demand, reporting the memory a
// raw cache would have needed versus what the compressed cache uses.
#include <cstdio>
#include <map>
#include <vector>

#include "datasets/generators.hpp"
#include "fz.hpp"

namespace {

using namespace fz;

/// A minimal compressed field cache keyed by timestep.
class CompressedCache {
 public:
  explicit CompressedCache(ErrorBound eb) : eb_(eb) {}

  void put(int step, const Field& field) {
    FzParams params;
    params.eb = eb_;
    FzCompressed c = fz_compress(field.values(), field.dims, params);
    raw_bytes_ += field.bytes();
    stored_bytes_ += c.bytes.size();
    entries_[step] = std::move(c.bytes);
  }

  std::vector<f32> get(int step) const {
    return fz_decompress(entries_.at(step)).data;
  }

  size_t raw_bytes() const { return raw_bytes_; }
  size_t stored_bytes() const { return stored_bytes_; }

 private:
  ErrorBound eb_;
  std::map<int, std::vector<u8>> entries_;
  size_t raw_bytes_ = 0;
  size_t stored_bytes_ = 0;
};

}  // namespace

int main() {
  const int timesteps = 8;
  CompressedCache cache(ErrorBound::relative(1e-3));
  const Dims dims = scaled_dims(Dataset::Nyx, 0.15);

  std::printf("caching %d timesteps of a Nyx-like %s field...\n", timesteps,
              dims.to_string().c_str());
  std::vector<Field> truth;
  for (int step = 0; step < timesteps; ++step) {
    // Each timestep evolves (different seed stands in for dynamics).
    truth.push_back(generate_field(Dataset::Nyx, dims, 100 + step));
    cache.put(step, truth.back());
  }

  std::printf("raw cache would use : %8.2f MB\n",
              static_cast<double>(cache.raw_bytes()) / 1e6);
  std::printf("compressed cache    : %8.2f MB  (%.1fx less)\n",
              static_cast<double>(cache.stored_bytes()) / 1e6,
              static_cast<double>(cache.raw_bytes()) / cache.stored_bytes());

  // Random-access decompression with quality check.
  for (const int step : {0, timesteps / 2, timesteps - 1}) {
    const auto restored = cache.get(step);
    const DistortionStats d = distortion(truth[step].values(), restored);
    std::printf("step %d: PSNR %.1f dB, max err %.3g\n", step, d.psnr_db,
                d.max_abs_error);
  }
  return 0;
}
