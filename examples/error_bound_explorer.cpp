// Error-bound explorer: sweep error bounds on any of the six datasets and
// print the resulting rate-distortion table plus modeled device throughput
// — a small interactive-style tool for picking a bound.
//
// Usage: error_bound_explorer [dataset] [scale]
//   dataset in {hacc, cesm, hurricane, nyx, qmcpack, rtm} (default cesm)
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "harness/experiment.hpp"
#include "harness/tables.hpp"

int main(int argc, char** argv) {
  using namespace fz;
  using namespace fz::bench;

  Dataset ds = Dataset::CESM;
  if (argc > 1) {
    const std::string want = argv[1];
    bool found = false;
    for (const Dataset d : all_datasets()) {
      std::string name = dataset_name(d);
      for (auto& ch : name) ch = static_cast<char>(std::tolower(ch));
      if (name == want) {
        ds = d;
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr,
                   "unknown dataset '%s' (try hacc/cesm/hurricane/nyx/"
                   "qmcpack/rtm)\n",
                   argv[1]);
      return 1;
    }
  }
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.2;

  const Field f = generate_field(ds, scaled_dims(ds, scale));
  const cudasim::DeviceModel a100(cudasim::DeviceSpec::a100());
  const auto fz = make_fzgpu();

  std::printf("FZ error-bound explorer: %s %s (%.1f MB)\n\n",
              f.dataset.c_str(), f.dims.to_string().c_str(),
              static_cast<double>(f.bytes()) / 1e6);

  Table t({"rel eb", "ratio", "bits/val", "PSNR dB", "max err",
           "A100 GB/s (model)"});
  for (const double eb : {5e-2, 1e-2, 5e-3, 1e-3, 5e-4, 1e-4, 5e-5}) {
    const Measurement m = measure(*fz, f, eb, a100);
    t.add_row({fmt(eb, 5), fmt_ratio(m.ratio), fmt(m.bitrate, 2),
               fmt_db(m.psnr_db),
               fmt(m.max_abs_error, 6), fmt_gbps(m.throughput_gbps)});
  }
  t.print(std::cout);
  std::printf("\nPick the loosest bound whose PSNR meets your analysis "
              "needs; ratio falls roughly linearly in log(eb).\n");
  return 0;
}
