// fz_cli: command-line compressor for headerless f32 files (the SDRBench
// format the real FZ-GPU CLI consumes).
//
//   fz_cli compress   <in.f32> <out.fz> -d NX [NY [NZ]] [-e REL_EB] [-a ABS_EB]
//                     [-c CHUNKS]
//   fz_cli decompress <in.fz>  <out.f32>
//   fz_cli slice      <in.fz>  <out.f32> -o OX [OY [OZ]] -n NX [NY [NZ]]
//                     [-w WORKERS] [-m CACHE_MB]   # random access via fz::Reader
//   fz_cli info       <in.fz>                      # incl. the chunk index
//   fz_cli verify     <orig.f32> <in.fz>           # check the error bound
//
// With --socket PATH (a serving fzd daemon, see docs/SERVICE.md) the
// r-prefixed commands run the same jobs remotely over the wire protocol:
//   fz_cli --socket /run/fzd.sock rcompress   <in.f32> <out.fz> -d NX [NY [NZ]]
//   fz_cli --socket /run/fzd.sock rdecompress <in.fz> <out.f32>
//   fz_cli --socket /run/fzd.sock rinfo       <in.fz>
//   fz_cli --socket /run/fzd.sock rstats      # scrape the daemon's stats text
//
// Any command accepts --trace <out.json>: the whole run is recorded into a
// telemetry sink and exported as a Chrome trace (open in chrome://tracing
// or https://ui.perfetto.dev), with a per-stage summary on stderr.
// `--stats` prints the run's process counters (pool hits, reader chunk
// cache hits/misses, prefetches) in the same `fz_counter{...}` text format
// the fzd stats endpoint serves, so local and remote runs are comparable.
//
// Examples:
//   fz_cli compress CLDHGH_1_1800_3600.f32 cldhgh.fz -d 3600 1800 -e 1e-3
//   fz_cli decompress cldhgh.fz restored.f32
//   fz_cli --trace trace.json compress CLDHGH_1_1800_3600.f32 out.fz -d 3600 1800
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "datasets/generators.hpp"
#include "fz.hpp"

namespace {

using namespace fz;

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  fz_cli compress   <in.f32> <out.fz> -d NX [NY [NZ]] [-e REL_EB]\n"
      "                    [-a ABS_EB] [-c CHUNKS]\n"
      "  fz_cli decompress <in.fz> <out.f32>\n"
      "  fz_cli slice      <in.fz> <out.f32> -o OX [OY [OZ]] -n NX [NY [NZ]]\n"
      "                    [-w WORKERS] [-m CACHE_MB]\n"
      "  fz_cli info       <in.fz>\n"
      "  fz_cli verify     <orig.f32> <in.fz>\n"
      "  fz_cli selftest\n"
      "remote commands (need --socket; run on a serving fzd daemon):\n"
      "  fz_cli rcompress   <in.f32> <out.fz> -d NX [NY [NZ]] [-e REL_EB]\n"
      "                     [-a ABS_EB] [-t f32|f64]\n"
      "  fz_cli rdecompress <in.fz> <out.f32>\n"
      "  fz_cli rinfo       <in.fz>\n"
      "  fz_cli rstats\n"
      "global flags (before the command):\n"
      "  --trace <out.json>   write a Chrome trace of the run\n"
      "  --stats              print fz_counter{...} process counters\n"
      "  --socket <path>      fzd daemon socket for the r* commands\n");
  return 2;
}

/// Socket path from --socket; the r* commands refuse to run without it.
std::string g_socket;

fz::Client connect_or_die() {
  if (g_socket.empty()) {
    std::fprintf(stderr, "error: r* commands need --socket <path>\n");
    std::exit(2);
  }
  return fz::Client(g_socket);
}

int report_status(const char* what, const Status& s) {
  std::fprintf(stderr, "error: %s: %s\n", what, s.to_string().c_str());
  return 1;
}

bool is_container(ByteSpan bytes) {
  return bytes.size() >= 4 && bytes[0] == 'F' && bytes[1] == 'Z' &&
         bytes[2] == 'C' && bytes[3] == 'K';
}

int cmd_compress(int argc, char** argv) {
  if (argc < 5) return usage();
  const std::string in_path = argv[2];
  const std::string out_path = argv[3];
  Dims dims;
  ErrorBound eb = ErrorBound::relative(1e-3);
  size_t chunks = 1;
  bool f64_input = false;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "-d") == 0) {
      std::vector<size_t> d;
      while (i + 1 < argc && argv[i + 1][0] != '-')
        d.push_back(static_cast<size_t>(std::atoll(argv[++i])));
      if (d.empty() || d.size() > 3) return usage();
      dims = d.size() == 1 ? Dims{d[0]}
             : d.size() == 2 ? Dims{d[0], d[1]}
                             : Dims{d[0], d[1], d[2]};
    } else if (std::strcmp(argv[i], "-e") == 0 && i + 1 < argc) {
      eb = ErrorBound::relative(std::atof(argv[++i]));
    } else if (std::strcmp(argv[i], "-a") == 0 && i + 1 < argc) {
      eb = ErrorBound::absolute(std::atof(argv[++i]));
    } else if (std::strcmp(argv[i], "-p") == 0 && i + 1 < argc) {
      eb = ErrorBound::pointwise_relative(std::atof(argv[++i]));
    } else if (std::strcmp(argv[i], "-c") == 0 && i + 1 < argc) {
      chunks = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "-t") == 0 && i + 1 < argc) {
      const std::string t = argv[++i];
      if (t == "f64") {
        f64_input = true;
      } else if (t != "f32") {
        return usage();
      }
    } else {
      return usage();
    }
  }
  if (dims.count() == 0) return usage();

  if (f64_input) {
    // Double-precision path (single stream; chunked containers are f32-only
    // for now).
    const std::vector<f64> data = load_f64_file(in_path, dims);
    FzParams params;
    params.eb = eb;
    const FzCompressed c = fz_compress_f64(data, dims, params);
    save_bytes(out_path, c.bytes);
    std::printf("%s: %zu -> %zu bytes (%.2fx, %.2f bits/value, f64)\n",
                out_path.c_str(), data.size() * sizeof(f64), c.bytes.size(),
                c.stats.ratio(), 64.0 / c.stats.ratio());
    return 0;
  }

  const Field f = load_f32_file(in_path, dims);
  if (chunks > 1) {
    ChunkedParams params;
    params.base.eb = eb;
    params.num_chunks = chunks;
    const ChunkedCompressed c = fz_compress_chunked(f.values(), f.dims, params);
    save_bytes(out_path, c.bytes);
    std::printf("%s: %zu -> %zu bytes (%.2fx, %.2f bits/value, %zu chunks)\n",
                out_path.c_str(), f.bytes(), c.bytes.size(), c.stats.ratio(),
                c.stats.bitrate(), c.num_chunks);
  } else {
    FzParams params;
    params.eb = eb;
    const FzCompressed c = fz_compress(f.values(), f.dims, params);
    save_bytes(out_path, c.bytes);
    std::printf("%s: %zu -> %zu bytes (%.2fx, %.2f bits/value)\n",
                out_path.c_str(), f.bytes(), c.bytes.size(), c.stats.ratio(),
                c.stats.bitrate());
  }
  return 0;
}

int cmd_decompress(int argc, char** argv) {
  if (argc != 4) return usage();
  const std::vector<u8> bytes = load_bytes(argv[2]);
  if (!is_container(bytes) && inspect(bytes).dtype_bytes == 8) {
    const FzDecompressed64 d = fz_decompress_f64(bytes);
    save_f64_file(argv[3], d.data);
    std::printf("%s: %s, %zu values (f64)\n", argv[3],
                d.dims.to_string().c_str(), d.data.size());
    return 0;
  }
  const FzDecompressed d =
      is_container(bytes) ? fz_decompress_chunked(bytes) : fz_decompress(bytes);
  save_f32_file(argv[3], d.data);
  std::printf("%s: %s, %zu values\n", argv[3], d.dims.to_string().c_str(),
              d.data.size());
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc != 3) return usage();
  const std::vector<u8> bytes = load_bytes(argv[2]);
  if (is_container(bytes)) {
    const StreamInfo info = inspect(bytes);
    std::printf("FZ container v%u: dims %s, %zu values, %zu chunks, "
                "%zu bytes (ratio %.2fx)\n",
                info.container_version, info.dims.to_string().c_str(),
                info.count, info.chunks.size(), info.stream_bytes,
                info.ratio());
    std::printf("  abs eb %.6g, quant v%d%s\n", info.abs_eb,
                static_cast<int>(info.quant),
                info.log_transform ? ", log-transform" : "");
    std::printf("  index: %s\n",
                info.container_version >= 2
                    ? "embedded (O(1) random access)"
                    : "legacy size table (synthesized)");
    std::printf("  %6s %12s %12s %12s  %s\n", "chunk", "offset", "bytes",
                "elem-off", "dims");
    for (size_t i = 0; i < info.chunks.size(); ++i) {
      const ChunkEntry& c = info.chunks[i];
      std::printf("  %6zu %12zu %12zu %12zu  %s\n", i, c.offset, c.bytes,
                  c.elem_offset, c.dims.to_string().c_str());
    }
    return 0;
  }
  const StreamInfo info = inspect(bytes);
  std::printf("FZ stream v%u: dims %s, %zu values (f%u)\n",
              info.format_version, info.dims.to_string().c_str(), info.count,
              info.dtype_bytes * 8);
  std::printf("  abs eb %.6g, quant v%d%s", info.abs_eb,
              static_cast<int>(info.quant),
              info.log_transform ? ", log-transform" : "");
  if (info.quant == QuantVersion::V1Original)
    std::printf(", radius %u", info.radius);
  std::printf("\n");
  std::printf("  layout: header %zu + bit-flags %zu + blocks %zu + "
              "outliers %zu = %zu bytes (ratio %.2fx)\n",
              info.header_bytes, info.bit_flag_bytes, info.block_bytes,
              info.outlier_bytes, info.stream_bytes, info.ratio());
  std::printf("  blocks: %zu/%zu nonzero, %zu saturated values\n",
              info.nonzero_blocks, info.total_blocks, info.saturated);
  return 0;
}

int cmd_slice(int argc, char** argv) {
  if (argc < 5) return usage();
  const std::vector<u8> bytes = load_bytes(argv[2]);
  const std::string out_path = argv[3];
  ReaderOptions options;
  std::vector<size_t> origin, extent;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0) {
      while (i + 1 < argc && argv[i + 1][0] != '-')
        origin.push_back(static_cast<size_t>(std::atoll(argv[++i])));
    } else if (std::strcmp(argv[i], "-n") == 0) {
      while (i + 1 < argc && argv[i + 1][0] != '-')
        extent.push_back(static_cast<size_t>(std::atoll(argv[++i])));
    } else if (std::strcmp(argv[i], "-w") == 0 && i + 1 < argc) {
      options.workers = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "-m") == 0 && i + 1 < argc) {
      options.cache_bytes = static_cast<size_t>(std::atoll(argv[++i])) << 20;
    } else {
      return usage();
    }
  }
  if (extent.empty() || extent.size() > 3 || origin.size() > 3)
    return usage();
  Slice s;
  if (origin.size() > 0) s.x = origin[0];
  if (origin.size() > 1) s.y = origin[1];
  if (origin.size() > 2) s.z = origin[2];
  if (extent.size() > 0) s.nx = extent[0];
  if (extent.size() > 1) s.ny = extent[1];
  if (extent.size() > 2) s.nz = extent[2];

  Reader reader(bytes, options);
  const std::vector<f32> data = reader.read(s);
  save_f32_file(out_path, data);
  const ReaderStats stats = reader.stats();
  std::printf("%s: slice %zux%zux%zu at (%zu,%zu,%zu) of %s, %zu values\n",
              out_path.c_str(), s.nx, s.ny, s.nz, s.x, s.y, s.z,
              reader.dims().to_string().c_str(), data.size());
  std::printf("  %zu chunks, cache: %llu hits / %llu misses, %llu prefetched\n",
              reader.chunk_count(),
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.prefetch_issued));
  return 0;
}

int cmd_selftest() {
  // End-to-end self check without external data: generate a field, round
  // trip it through temp files in every mode, verify the bounds.
  const Dims dims{60, 50};
  const Field f = generate_field(Dataset::CESM, dims, 7);
  const std::string f32_path = "/tmp/fz_cli_selftest.f32";
  const std::string fz_path = "/tmp/fz_cli_selftest.fz";
  save_f32_file(f32_path, f.values());

  struct Mode {
    const char* name;
    ErrorBound eb;
    size_t chunks;
  };
  const Mode modes[] = {
      {"relative", ErrorBound::relative(1e-3), 1},
      {"absolute", ErrorBound::absolute(1e-2), 1},
      {"chunked", ErrorBound::relative(1e-3), 3},
  };
  bool all_ok = true;
  for (const Mode& m : modes) {
    if (m.chunks > 1) {
      ChunkedParams params;
      params.base.eb = m.eb;
      params.num_chunks = m.chunks;
      const ChunkedCompressed c =
          fz_compress_chunked(f.values(), f.dims, params);
      save_bytes(fz_path, c.bytes);
      const FzDecompressed d = fz_decompress_chunked(load_bytes(fz_path));
      const bool ok = error_bounded(f.values(), d.data, c.stats.abs_eb);
      std::printf("selftest %-8s: ratio %.2fx, bound %s\n", m.name,
                  c.stats.ratio(), ok ? "HELD" : "VIOLATED");
      all_ok &= ok;
    } else {
      FzParams params;
      params.eb = m.eb;
      const FzCompressed c = fz_compress(f.values(), f.dims, params);
      save_bytes(fz_path, c.bytes);
      const FzDecompressed d = fz_decompress(load_bytes(fz_path));
      const bool ok = error_bounded(f.values(), d.data, c.stats.abs_eb);
      std::printf("selftest %-8s: ratio %.2fx, bound %s\n", m.name,
                  c.stats.ratio(), ok ? "HELD" : "VIOLATED");
      all_ok &= ok;
    }
  }
  // Random access: slice the chunked container through fz::Reader twice (a
  // sequential sweep, so the second pass exercises the warm cache) and
  // check every slice against the full decompress.
  {
    ChunkedParams params;
    params.base.eb = ErrorBound::relative(1e-3);
    params.num_chunks = 4;
    const ChunkedCompressed c = fz_compress_chunked(f.values(), f.dims, params);
    const FzDecompressed full = fz_decompress_chunked(c.bytes);
    Reader reader(c.bytes, ReaderOptions{.workers = 2});
    bool ok = true;
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t y = 0; y + 10 <= dims.y; y += 10) {
        const Slice s{.x = 5, .y = y, .nx = 40, .ny = 10};
        const std::vector<f32> got = reader.read(s);
        for (size_t iy = 0; iy < s.ny; ++iy)
          for (size_t ix = 0; ix < s.nx; ++ix)
            ok &= got[iy * s.nx + ix] ==
                  full.data[(s.y + iy) * dims.x + s.x + ix];
      }
    }
    const ReaderStats rs = reader.stats();
    ok &= rs.hits > 0;  // the second pass must be answered from the cache
    std::printf("selftest %-8s: %zu chunks, %llu hits / %llu misses, "
                "slices %s\n",
                "reader", reader.chunk_count(),
                static_cast<unsigned long long>(rs.hits),
                static_cast<unsigned long long>(rs.misses),
                ok ? "EXACT" : "WRONG");
    all_ok &= ok;
  }

  std::remove(f32_path.c_str());
  std::remove(fz_path.c_str());
  std::printf("selftest: %s\n", all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}

int cmd_verify(int argc, char** argv) {
  if (argc != 4) return usage();
  const std::vector<u8> bytes = load_bytes(argv[3]);
  const FzDecompressed d =
      is_container(bytes) ? fz_decompress_chunked(bytes) : fz_decompress(bytes);
  const Field orig = load_f32_file(argv[2], d.dims);
  const double abs_eb =
      is_container(bytes) ? 0.0 : inspect(bytes).abs_eb;
  const DistortionStats stats = distortion(orig.values(), d.data);
  std::printf("max abs error %.6g  PSNR %.2f dB\n", stats.max_abs_error,
              stats.psnr_db);
  if (abs_eb > 0) {
    const bool ok = error_bounded(orig.values(), d.data, abs_eb);
    std::printf("bound %.6g: %s\n", abs_eb, ok ? "HELD" : "VIOLATED");
    return ok ? 0 : 1;
  }
  return 0;
}

// --- remote commands: the same jobs, served by a running fzd daemon ------

int cmd_rcompress(int argc, char** argv) {
  if (argc < 5) return usage();
  const std::string in_path = argv[2];
  const std::string out_path = argv[3];
  Dims dims;
  ErrorBound eb = ErrorBound::relative(1e-3);
  bool f64_input = false;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "-d") == 0) {
      std::vector<size_t> d;
      while (i + 1 < argc && argv[i + 1][0] != '-')
        d.push_back(static_cast<size_t>(std::atoll(argv[++i])));
      if (d.empty() || d.size() > 3) return usage();
      dims = d.size() == 1 ? Dims{d[0]}
             : d.size() == 2 ? Dims{d[0], d[1]}
                             : Dims{d[0], d[1], d[2]};
    } else if (std::strcmp(argv[i], "-e") == 0 && i + 1 < argc) {
      eb = ErrorBound::relative(std::atof(argv[++i]));
    } else if (std::strcmp(argv[i], "-a") == 0 && i + 1 < argc) {
      eb = ErrorBound::absolute(std::atof(argv[++i]));
    } else if (std::strcmp(argv[i], "-t") == 0 && i + 1 < argc) {
      const std::string t = argv[++i];
      if (t == "f64") {
        f64_input = true;
      } else if (t != "f32") {
        return usage();
      }
    } else {
      return usage();
    }
  }
  if (dims.count() == 0) return usage();

  Client client = connect_or_die();
  Response resp;
  Status s;
  size_t in_bytes = 0;
  if (f64_input) {
    const std::vector<f64> data = load_f64_file(in_path, dims);
    in_bytes = data.size() * sizeof(f64);
    s = client.compress_f64(data, dims, eb, resp);
  } else {
    const Field f = load_f32_file(in_path, dims);
    in_bytes = f.bytes();
    s = client.compress(f.values(), dims, eb, resp);
  }
  if (!s.ok()) return report_status("rcompress", s);
  save_bytes(out_path, resp.payload);
  std::printf("%s: %zu -> %zu bytes (%.2fx, %s, via fzd)\n", out_path.c_str(),
              in_bytes, resp.payload.size(), resp.stats.ratio(),
              f64_input ? "f64" : "f32");
  return 0;
}

int cmd_rdecompress(int argc, char** argv) {
  if (argc != 4) return usage();
  const std::vector<u8> bytes = load_bytes(argv[2]);
  Client client = connect_or_die();
  Response resp;
  const Status s = client.decompress(bytes, resp);
  if (!s.ok()) return report_status("rdecompress", s);
  // The response payload already is the raw little-endian sample file.
  save_bytes(argv[3], resp.payload);
  std::printf("%s: %s, %zu values (f%u, via fzd)\n", argv[3],
              resp.dims.to_string().c_str(),
              resp.payload.size() / resp.dtype_bytes, resp.dtype_bytes * 8);
  return 0;
}

int cmd_rinfo(int argc, char** argv) {
  if (argc != 3) return usage();
  const std::vector<u8> bytes = load_bytes(argv[2]);
  Client client = connect_or_die();
  Response resp;
  const Status s = client.inspect(bytes, resp);
  if (!s.ok()) return report_status("rinfo", s);
  const StreamInfo& info = resp.info;
  std::printf("FZ stream v%u: dims %s, %zu values (f%u, via fzd)\n",
              info.format_version, info.dims.to_string().c_str(), info.count,
              info.dtype_bytes * 8);
  std::printf("  abs eb %.6g, quant v%d%s\n", info.abs_eb,
              static_cast<int>(info.quant),
              info.log_transform ? ", log-transform" : "");
  std::printf("  %zu bytes (ratio %.2fx), blocks %zu/%zu nonzero\n",
              info.stream_bytes, info.ratio(), info.nonzero_blocks,
              info.total_blocks);
  return 0;
}

int cmd_rstats(int argc, char**) {
  if (argc != 2) return usage();
  Client client = connect_or_die();
  std::string text;
  const Status s = client.stats_text(text);
  if (!s.ok()) return report_status("rstats", s);
  std::fputs(text.c_str(), stdout);
  return 0;
}

}  // namespace

int run_command(int argc, char** argv) {
  const std::string cmd = argv[1];
  if (cmd == "compress") return cmd_compress(argc, argv);
  if (cmd == "decompress") return cmd_decompress(argc, argv);
  if (cmd == "slice") return cmd_slice(argc, argv);
  if (cmd == "info") return cmd_info(argc, argv);
  if (cmd == "verify") return cmd_verify(argc, argv);
  if (cmd == "selftest") return cmd_selftest();
  if (cmd == "rcompress") return cmd_rcompress(argc, argv);
  if (cmd == "rdecompress") return cmd_rdecompress(argc, argv);
  if (cmd == "rinfo") return cmd_rinfo(argc, argv);
  if (cmd == "rstats") return cmd_rstats(argc, argv);
  return usage();
}

int main(int argc, char** argv) {
  // Strip global flags so the per-command parsers see a clean argv.
  std::string trace_path;
  bool print_stats = false;
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
      trace_path = argv[++i];
    else if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc)
      g_socket = argv[++i];
    else if (std::strcmp(argv[i], "--stats") == 0)
      print_stats = true;
    else
      args.push_back(argv[i]);
  }
  if (args.size() < 2) return usage();

  try {
    if (trace_path.empty() && !print_stats)
      return run_command(static_cast<int>(args.size()), args.data());

    // ScopedSink makes this sink the fallback for every codec, chunked
    // container, reader chunk cache, and simulated kernel launch in the
    // command — no parameter plumbing needed.
    telemetry::Sink sink;
    int rc;
    {
      telemetry::ScopedSink scope(&sink);
      rc = run_command(static_cast<int>(args.size()), args.data());
    }
    if (print_stats) {
      // Same fz_counter{...} text the fzd stats endpoint serves: one
      // telemetry path for local fz_cli runs and the daemon.
      telemetry::write_counters_text(sink, std::cout);
    }
    if (!trace_path.empty()) {
      std::ofstream out(trace_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "error: cannot write trace to %s\n",
                     trace_path.c_str());
        return 1;
      }
      sink.write_chrome_trace(out);
      sink.write_summary(std::cerr);
      std::fprintf(stderr, "trace written to %s\n", trace_path.c_str());
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
