// Snapshot archive — the HACC-style storage use case from the paper's
// introduction: a cosmology code writes particle snapshots; compressing
// them with a point-wise relative bound (via the log transform, §4.1)
// multiplies the effective storage and I/O bandwidth.
//
// Writes a small multi-snapshot archive file to /tmp and reads it back.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <vector>

#include "datasets/generators.hpp"
#include "datasets/transforms.hpp"
#include "fz.hpp"

namespace {

using namespace fz;

struct ArchiveEntry {
  u64 offset;
  u64 size;
};

}  // namespace

int main() {
  const char* path = "/tmp/fz_snapshot_archive.bin";
  const int snapshots = 4;
  const Dims dims{200000};  // 1-D particle coordinates
  const double pointwise_rel = 1e-3;
  const double abs_eb = log_abs_bound_for_relative(pointwise_rel);

  // ---- write ---------------------------------------------------------------
  std::vector<ArchiveEntry> toc;
  std::vector<Field> originals;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    size_t raw = 0, stored = 0;
    for (int s = 0; s < snapshots; ++s) {
      Field f = generate_field(Dataset::HACC, dims, 1000 + s);
      originals.push_back(f);  // keep original for verification
      log_transform(f);        // absolute bound on log(x) = relative on x

      FzParams params;
      params.eb = ErrorBound::absolute(abs_eb);
      const FzCompressed c = fz_compress(f.values(), f.dims, params);
      toc.push_back({static_cast<u64>(out.tellp()), c.bytes.size()});
      out.write(reinterpret_cast<const char*>(c.bytes.data()),
                static_cast<std::streamsize>(c.bytes.size()));
      raw += f.bytes();
      stored += c.bytes.size();
    }
    std::printf("archived %d snapshots: %.2f MB raw -> %.2f MB (%.1fx)\n",
                snapshots, static_cast<double>(raw) / 1e6,
                static_cast<double>(stored) / 1e6,
                static_cast<double>(raw) / static_cast<double>(stored));
  }

  // ---- read back & verify the point-wise relative bound ---------------------
  std::ifstream in(path, std::ios::binary);
  for (int s = 0; s < snapshots; ++s) {
    std::vector<u8> bytes(toc[static_cast<size_t>(s)].size);
    in.seekg(static_cast<std::streamoff>(toc[static_cast<size_t>(s)].offset));
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));

    FzDecompressed d = fz_decompress(bytes);
    exp_transform(d.data);  // undo the log transform

    double worst_rel = 0;
    const Field& orig = originals[static_cast<size_t>(s)];
    for (size_t i = 0; i < d.data.size(); ++i) {
      const double rel =
          std::fabs(static_cast<double>(d.data[i]) - orig.data[i]) /
          std::fabs(orig.data[i]);
      worst_rel = rel > worst_rel ? rel : worst_rel;
    }
    std::printf("snapshot %d: worst point-wise relative error %.3e (bound %.0e) %s\n",
                s, worst_rel, pointwise_rel,
                worst_rel <= pointwise_rel * 1.01 ? "OK" : "VIOLATED");
  }
  std::remove(path);
  return 0;
}
