// MPI-style message compression — the use case from §2.4 / [34] (Zhou et
// al., IPDPS'21: "Designing high-performance MPI libraries with on-the-fly
// compression for modern GPU clusters").
//
// A 3-D domain-decomposed solver exchanges halo slabs every step.  Whether
// compressing a message pays off depends on its size: kernel-launch latency
// dominates tiny messages, while large messages approach the compressor's
// streaming throughput and the paper's overall-throughput formula takes
// over.  This example sweeps the halo thickness and prints the crossover
// on a 100 GbE-class link.
// A solver compresses a halo every step, so the example holds one
// fz::Codec for the whole sweep: after the first (warm-up) message every
// compression runs out of the codec's buffer pool with zero scratch heap
// allocations — the pool counters printed at the end prove it.
#include <cstdio>
#include <vector>

#include "cudasim/device_model.hpp"
#include "datasets/generators.hpp"
#include "fz.hpp"
#include "harness/experiment.hpp"

namespace {

using namespace fz;

/// Extract a `depth`-plane halo slab starting at z = 0.
std::vector<f32> halo_slab(const Field& f, size_t depth) {
  std::vector<f32> msg(f.dims.x * f.dims.y * depth);
  for (size_t iz = 0; iz < depth; ++iz)
    for (size_t iy = 0; iy < f.dims.y; ++iy)
      for (size_t ix = 0; ix < f.dims.x; ++ix)
        msg[(iz * f.dims.y + iy) * f.dims.x + ix] =
            f.data[f.dims.linear(ix, iy, iz)];
  return msg;
}

}  // namespace

int main() {
  const Dims dims = scaled_dims(Dataset::Hurricane, 0.5);
  const Field f = generate_field(Dataset::Hurricane, dims, 7);
  const cudasim::DeviceModel a100(cudasim::DeviceSpec::a100());
  const double rel_eb = 1e-3;
  const double link_bw = 12.5;  // GB/s, 100 GbE

  std::printf("halo-exchange message compression (paper 2.4 use case)\n");
  std::printf("subdomain %s, rel eb 1e-3, link: 100 GbE (12.5 GB/s)\n\n",
              dims.to_string().c_str());
  std::printf("%10s %8s %14s %14s %14s %9s\n", "message", "ratio",
              "compress us", "wire plain us", "wire compr us", "speedup");

  FzParams params;
  params.eb = ErrorBound::relative(rel_eb);
  Codec codec(params);  // reused across messages: scratch pools amortize

  for (const size_t depth : {size_t{1}, size_t{4}, size_t{16}, dims.z}) {
    const std::vector<f32> msg = halo_slab(f, depth);
    const FzCompressed c = codec.compress(msg, Dims{dims.x, dims.y, depth});
    const FzDecompressed d = codec.decompress(c.bytes);

    double compress_s = 0;
    for (const auto& k : c.stage_costs) compress_s += a100.seconds(k);
    // Receiver decompresses too; its time mirrors compression (§4.4).
    const double raw_mb = static_cast<double>(msg.size()) * 4;
    const double wire_plain_s = raw_mb / (link_bw * 1e9);
    const double wire_compr_s =
        static_cast<double>(c.bytes.size()) / (link_bw * 1e9) +
        2 * compress_s;  // compress + symmetric decompress

    std::printf("%7.2f MB %7.1fx %14.1f %14.1f %14.1f %8.2fx\n", raw_mb / 1e6,
                c.stats.ratio(), compress_s * 1e6, wire_plain_s * 1e6,
                wire_compr_s * 1e6, wire_plain_s / wire_compr_s);
    (void)d;
  }

  // Steady-state allocation behaviour of the reused codec: the message
  // sizes step upward, so each new size may miss once; repeating any size
  // is pure pool hits.
  const auto pool = codec.pool().stats();
  std::printf(
      "\ncodec scratch pool: %zu hits, %zu misses, %.1f MB peak scratch\n",
      pool.hits, pool.misses,
      static_cast<double>(pool.peak_allocated_bytes) / 1e6);

  std::printf(
      "\nSmall messages lose to kernel-launch latency; once the message\n"
      "amortizes the launches, effective bandwidth approaches CR x link\n"
      "speed — the regime [34] exploits and the paper's overall-throughput\n"
      "metric (4.6) captures.  FZ-GPU's high compression throughput moves\n"
      "the crossover to smaller messages than Huffman-based cuSZ would.\n");
  return 0;
}
