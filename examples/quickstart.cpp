// Quickstart: compress a 3-D field with an error bound, decompress it,
// and verify the bound — the five-line workflow from the README.
#include <cstdio>

#include "datasets/generators.hpp"
#include "fz.hpp"

int main() {
  using namespace fz;

  // 1. Get some data (here: a synthetic Hurricane-like 3-D field).
  const Field field =
      generate_field(Dataset::Hurricane, scaled_dims(Dataset::Hurricane, 0.2));
  std::printf("field: %s %s, %.1f MB\n", field.dataset.c_str(),
              field.dims.to_string().c_str(),
              static_cast<double>(field.bytes()) / 1e6);

  // 2. Compress with a range-relative error bound of 1e-3.
  FzParams params;
  params.eb = ErrorBound::relative(1e-3);
  const FzCompressed compressed =
      fz_compress(field.values(), field.dims, params);
  std::printf("compressed: %.1f MB -> %.2f MB  (ratio %.1fx, %.2f bits/value)\n",
              static_cast<double>(field.bytes()) / 1e6,
              static_cast<double>(compressed.bytes.size()) / 1e6,
              compressed.stats.ratio(), compressed.stats.bitrate());

  // 3. Decompress (the stream is self-describing).
  const FzDecompressed restored = fz_decompress(compressed.bytes);

  // 4. Verify the error bound and inspect quality.
  const DistortionStats d = distortion(field.values(), restored.data);
  const bool ok =
      error_bounded(field.values(), restored.data, compressed.stats.abs_eb);
  std::printf("max error: %.3g (bound %.3g) -> %s\n", d.max_abs_error,
              compressed.stats.abs_eb, ok ? "BOUND HELD" : "BOUND VIOLATED");
  std::printf("PSNR: %.1f dB\n", d.psnr_db);
  return ok ? 0 : 1;
}
