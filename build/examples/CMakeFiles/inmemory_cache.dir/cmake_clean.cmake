file(REMOVE_RECURSE
  "CMakeFiles/inmemory_cache.dir/inmemory_cache.cpp.o"
  "CMakeFiles/inmemory_cache.dir/inmemory_cache.cpp.o.d"
  "inmemory_cache"
  "inmemory_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inmemory_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
