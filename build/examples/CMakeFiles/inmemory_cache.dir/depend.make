# Empty dependencies file for inmemory_cache.
# This may be replaced when dependencies are built.
