# Empty compiler generated dependencies file for fz_cli.
# This may be replaced when dependencies are built.
