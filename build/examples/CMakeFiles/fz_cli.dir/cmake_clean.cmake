file(REMOVE_RECURSE
  "CMakeFiles/fz_cli.dir/fz_cli.cpp.o"
  "CMakeFiles/fz_cli.dir/fz_cli.cpp.o.d"
  "fz_cli"
  "fz_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fz_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
