file(REMOVE_RECURSE
  "CMakeFiles/error_bound_explorer.dir/error_bound_explorer.cpp.o"
  "CMakeFiles/error_bound_explorer.dir/error_bound_explorer.cpp.o.d"
  "error_bound_explorer"
  "error_bound_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_bound_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
