# Empty compiler generated dependencies file for error_bound_explorer.
# This may be replaced when dependencies are built.
