file(REMOVE_RECURSE
  "CMakeFiles/message_compression.dir/message_compression.cpp.o"
  "CMakeFiles/message_compression.dir/message_compression.cpp.o.d"
  "message_compression"
  "message_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/message_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
