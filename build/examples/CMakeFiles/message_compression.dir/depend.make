# Empty dependencies file for message_compression.
# This may be replaced when dependencies are built.
