# Empty compiler generated dependencies file for snapshot_archive.
# This may be replaced when dependencies are built.
