file(REMOVE_RECURSE
  "CMakeFiles/snapshot_archive.dir/snapshot_archive.cpp.o"
  "CMakeFiles/snapshot_archive.dir/snapshot_archive.cpp.o.d"
  "snapshot_archive"
  "snapshot_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
