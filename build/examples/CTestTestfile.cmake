# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_inmemory_cache "/root/repo/build/examples/inmemory_cache")
set_tests_properties(example_inmemory_cache PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_snapshot_archive "/root/repo/build/examples/snapshot_archive")
set_tests_properties(example_snapshot_archive PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_error_bound_explorer "/root/repo/build/examples/error_bound_explorer")
set_tests_properties(example_error_bound_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_message_compression "/root/repo/build/examples/message_compression")
set_tests_properties(example_message_compression PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fz_cli_usage "/root/repo/build/examples/fz_cli")
set_tests_properties(example_fz_cli_usage PROPERTIES  PASS_REGULAR_EXPRESSION "usage:" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fz_cli_selftest "/root/repo/build/examples/fz_cli" "selftest")
set_tests_properties(example_fz_cli_selftest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
