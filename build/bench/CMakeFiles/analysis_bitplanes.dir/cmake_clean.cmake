file(REMOVE_RECURSE
  "CMakeFiles/analysis_bitplanes.dir/analysis_bitplanes.cpp.o"
  "CMakeFiles/analysis_bitplanes.dir/analysis_bitplanes.cpp.o.d"
  "analysis_bitplanes"
  "analysis_bitplanes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_bitplanes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
