# Empty dependencies file for analysis_bitplanes.
# This may be replaced when dependencies are built.
