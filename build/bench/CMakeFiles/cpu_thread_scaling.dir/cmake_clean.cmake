file(REMOVE_RECURSE
  "CMakeFiles/cpu_thread_scaling.dir/cpu_thread_scaling.cpp.o"
  "CMakeFiles/cpu_thread_scaling.dir/cpu_thread_scaling.cpp.o.d"
  "cpu_thread_scaling"
  "cpu_thread_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_thread_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
