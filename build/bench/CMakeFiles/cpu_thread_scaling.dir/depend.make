# Empty dependencies file for cpu_thread_scaling.
# This may be replaced when dependencies are built.
