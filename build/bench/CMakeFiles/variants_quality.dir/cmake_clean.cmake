file(REMOVE_RECURSE
  "CMakeFiles/variants_quality.dir/variants_quality.cpp.o"
  "CMakeFiles/variants_quality.dir/variants_quality.cpp.o.d"
  "variants_quality"
  "variants_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variants_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
