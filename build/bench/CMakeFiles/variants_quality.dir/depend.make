# Empty dependencies file for variants_quality.
# This may be replaced when dependencies are built.
