# Empty dependencies file for fig1_pipeline_breakdown.
# This may be replaced when dependencies are built.
