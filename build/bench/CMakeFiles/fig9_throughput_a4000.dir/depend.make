# Empty dependencies file for fig9_throughput_a4000.
# This may be replaced when dependencies are built.
