file(REMOVE_RECURSE
  "CMakeFiles/fig9_throughput_a4000.dir/fig9_throughput_a4000.cpp.o"
  "CMakeFiles/fig9_throughput_a4000.dir/fig9_throughput_a4000.cpp.o.d"
  "fig9_throughput_a4000"
  "fig9_throughput_a4000.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_throughput_a4000.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
