# Empty dependencies file for fig8_throughput_a100.
# This may be replaced when dependencies are built.
