# Empty dependencies file for fig7_rate_distortion.
# This may be replaced when dependencies are built.
