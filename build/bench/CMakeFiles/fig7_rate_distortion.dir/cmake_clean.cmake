file(REMOVE_RECURSE
  "CMakeFiles/fig7_rate_distortion.dir/fig7_rate_distortion.cpp.o"
  "CMakeFiles/fig7_rate_distortion.dir/fig7_rate_distortion.cpp.o.d"
  "fig7_rate_distortion"
  "fig7_rate_distortion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_rate_distortion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
