file(REMOVE_RECURSE
  "CMakeFiles/cpu_fz_omp.dir/cpu_fz_omp.cpp.o"
  "CMakeFiles/cpu_fz_omp.dir/cpu_fz_omp.cpp.o.d"
  "cpu_fz_omp"
  "cpu_fz_omp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_fz_omp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
