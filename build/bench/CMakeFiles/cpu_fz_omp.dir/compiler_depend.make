# Empty compiler generated dependencies file for cpu_fz_omp.
# This may be replaced when dependencies are built.
