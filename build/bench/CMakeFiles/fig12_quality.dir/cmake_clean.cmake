file(REMOVE_RECURSE
  "CMakeFiles/fig12_quality.dir/fig12_quality.cpp.o"
  "CMakeFiles/fig12_quality.dir/fig12_quality.cpp.o.d"
  "fig12_quality"
  "fig12_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
