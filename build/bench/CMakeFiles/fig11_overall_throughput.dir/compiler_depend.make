# Empty compiler generated dependencies file for fig11_overall_throughput.
# This may be replaced when dependencies are built.
