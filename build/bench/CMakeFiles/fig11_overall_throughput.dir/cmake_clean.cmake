file(REMOVE_RECURSE
  "CMakeFiles/fig11_overall_throughput.dir/fig11_overall_throughput.cpp.o"
  "CMakeFiles/fig11_overall_throughput.dir/fig11_overall_throughput.cpp.o.d"
  "fig11_overall_throughput"
  "fig11_overall_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_overall_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
