file(REMOVE_RECURSE
  "CMakeFiles/future_fused_all.dir/future_fused_all.cpp.o"
  "CMakeFiles/future_fused_all.dir/future_fused_all.cpp.o.d"
  "future_fused_all"
  "future_fused_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_fused_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
