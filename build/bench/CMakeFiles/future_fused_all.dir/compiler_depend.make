# Empty compiler generated dependencies file for future_fused_all.
# This may be replaced when dependencies are built.
