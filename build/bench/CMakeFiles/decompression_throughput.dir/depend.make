# Empty dependencies file for decompression_throughput.
# This may be replaced when dependencies are built.
