# Empty dependencies file for test_bitshuffle.
# This may be replaced when dependencies are built.
