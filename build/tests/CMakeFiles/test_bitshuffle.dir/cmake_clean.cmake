file(REMOVE_RECURSE
  "CMakeFiles/test_bitshuffle.dir/test_bitshuffle.cpp.o"
  "CMakeFiles/test_bitshuffle.dir/test_bitshuffle.cpp.o.d"
  "test_bitshuffle"
  "test_bitshuffle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitshuffle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
