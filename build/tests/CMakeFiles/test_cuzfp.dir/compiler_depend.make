# Empty compiler generated dependencies file for test_cuzfp.
# This may be replaced when dependencies are built.
