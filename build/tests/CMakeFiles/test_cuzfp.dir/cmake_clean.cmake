file(REMOVE_RECURSE
  "CMakeFiles/test_cuzfp.dir/test_cuzfp.cpp.o"
  "CMakeFiles/test_cuzfp.dir/test_cuzfp.cpp.o.d"
  "test_cuzfp"
  "test_cuzfp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cuzfp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
