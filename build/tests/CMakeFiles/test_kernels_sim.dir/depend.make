# Empty dependencies file for test_kernels_sim.
# This may be replaced when dependencies are built.
