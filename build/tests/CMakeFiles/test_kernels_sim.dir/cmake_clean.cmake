file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_sim.dir/test_kernels_sim.cpp.o"
  "CMakeFiles/test_kernels_sim.dir/test_kernels_sim.cpp.o.d"
  "test_kernels_sim"
  "test_kernels_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
