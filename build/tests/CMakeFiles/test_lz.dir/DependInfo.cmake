
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_lz.cpp" "tests/CMakeFiles/test_lz.dir/test_lz.cpp.o" "gcc" "tests/CMakeFiles/test_lz.dir/test_lz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fz_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fz_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fz_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fz_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fz_substrate.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fz_cudasim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fz_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
