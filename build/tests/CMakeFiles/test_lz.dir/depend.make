# Empty dependencies file for test_lz.
# This may be replaced when dependencies are built.
