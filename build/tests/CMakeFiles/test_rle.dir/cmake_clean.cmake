file(REMOVE_RECURSE
  "CMakeFiles/test_rle.dir/test_rle.cpp.o"
  "CMakeFiles/test_rle.dir/test_rle.cpp.o.d"
  "test_rle"
  "test_rle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
