file(REMOVE_RECURSE
  "libfz_metrics.a"
)
