file(REMOVE_RECURSE
  "CMakeFiles/fz_metrics.dir/metrics/metrics.cpp.o"
  "CMakeFiles/fz_metrics.dir/metrics/metrics.cpp.o.d"
  "CMakeFiles/fz_metrics.dir/metrics/ssim.cpp.o"
  "CMakeFiles/fz_metrics.dir/metrics/ssim.cpp.o.d"
  "libfz_metrics.a"
  "libfz_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fz_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
