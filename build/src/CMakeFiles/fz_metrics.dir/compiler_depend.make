# Empty compiler generated dependencies file for fz_metrics.
# This may be replaced when dependencies are built.
