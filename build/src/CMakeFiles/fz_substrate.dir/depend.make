# Empty dependencies file for fz_substrate.
# This may be replaced when dependencies are built.
