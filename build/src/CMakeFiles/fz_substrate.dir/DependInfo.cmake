
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/substrate/bitio.cpp" "src/CMakeFiles/fz_substrate.dir/substrate/bitio.cpp.o" "gcc" "src/CMakeFiles/fz_substrate.dir/substrate/bitio.cpp.o.d"
  "/root/repo/src/substrate/histogram.cpp" "src/CMakeFiles/fz_substrate.dir/substrate/histogram.cpp.o" "gcc" "src/CMakeFiles/fz_substrate.dir/substrate/histogram.cpp.o.d"
  "/root/repo/src/substrate/huffman.cpp" "src/CMakeFiles/fz_substrate.dir/substrate/huffman.cpp.o" "gcc" "src/CMakeFiles/fz_substrate.dir/substrate/huffman.cpp.o.d"
  "/root/repo/src/substrate/lz77.cpp" "src/CMakeFiles/fz_substrate.dir/substrate/lz77.cpp.o" "gcc" "src/CMakeFiles/fz_substrate.dir/substrate/lz77.cpp.o.d"
  "/root/repo/src/substrate/rle.cpp" "src/CMakeFiles/fz_substrate.dir/substrate/rle.cpp.o" "gcc" "src/CMakeFiles/fz_substrate.dir/substrate/rle.cpp.o.d"
  "/root/repo/src/substrate/scan.cpp" "src/CMakeFiles/fz_substrate.dir/substrate/scan.cpp.o" "gcc" "src/CMakeFiles/fz_substrate.dir/substrate/scan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fz_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
