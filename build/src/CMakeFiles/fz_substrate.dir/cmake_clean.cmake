file(REMOVE_RECURSE
  "CMakeFiles/fz_substrate.dir/substrate/bitio.cpp.o"
  "CMakeFiles/fz_substrate.dir/substrate/bitio.cpp.o.d"
  "CMakeFiles/fz_substrate.dir/substrate/histogram.cpp.o"
  "CMakeFiles/fz_substrate.dir/substrate/histogram.cpp.o.d"
  "CMakeFiles/fz_substrate.dir/substrate/huffman.cpp.o"
  "CMakeFiles/fz_substrate.dir/substrate/huffman.cpp.o.d"
  "CMakeFiles/fz_substrate.dir/substrate/lz77.cpp.o"
  "CMakeFiles/fz_substrate.dir/substrate/lz77.cpp.o.d"
  "CMakeFiles/fz_substrate.dir/substrate/rle.cpp.o"
  "CMakeFiles/fz_substrate.dir/substrate/rle.cpp.o.d"
  "CMakeFiles/fz_substrate.dir/substrate/scan.cpp.o"
  "CMakeFiles/fz_substrate.dir/substrate/scan.cpp.o.d"
  "libfz_substrate.a"
  "libfz_substrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fz_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
