file(REMOVE_RECURSE
  "libfz_substrate.a"
)
