file(REMOVE_RECURSE
  "CMakeFiles/fz_baselines.dir/baselines/compressor.cpp.o"
  "CMakeFiles/fz_baselines.dir/baselines/compressor.cpp.o.d"
  "CMakeFiles/fz_baselines.dir/baselines/cusz.cpp.o"
  "CMakeFiles/fz_baselines.dir/baselines/cusz.cpp.o.d"
  "CMakeFiles/fz_baselines.dir/baselines/cuszx.cpp.o"
  "CMakeFiles/fz_baselines.dir/baselines/cuszx.cpp.o.d"
  "CMakeFiles/fz_baselines.dir/baselines/cuzfp.cpp.o"
  "CMakeFiles/fz_baselines.dir/baselines/cuzfp.cpp.o.d"
  "CMakeFiles/fz_baselines.dir/baselines/mgard.cpp.o"
  "CMakeFiles/fz_baselines.dir/baselines/mgard.cpp.o.d"
  "CMakeFiles/fz_baselines.dir/baselines/szomp.cpp.o"
  "CMakeFiles/fz_baselines.dir/baselines/szomp.cpp.o.d"
  "libfz_baselines.a"
  "libfz_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fz_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
