# Empty dependencies file for fz_baselines.
# This may be replaced when dependencies are built.
