
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/compressor.cpp" "src/CMakeFiles/fz_baselines.dir/baselines/compressor.cpp.o" "gcc" "src/CMakeFiles/fz_baselines.dir/baselines/compressor.cpp.o.d"
  "/root/repo/src/baselines/cusz.cpp" "src/CMakeFiles/fz_baselines.dir/baselines/cusz.cpp.o" "gcc" "src/CMakeFiles/fz_baselines.dir/baselines/cusz.cpp.o.d"
  "/root/repo/src/baselines/cuszx.cpp" "src/CMakeFiles/fz_baselines.dir/baselines/cuszx.cpp.o" "gcc" "src/CMakeFiles/fz_baselines.dir/baselines/cuszx.cpp.o.d"
  "/root/repo/src/baselines/cuzfp.cpp" "src/CMakeFiles/fz_baselines.dir/baselines/cuzfp.cpp.o" "gcc" "src/CMakeFiles/fz_baselines.dir/baselines/cuzfp.cpp.o.d"
  "/root/repo/src/baselines/mgard.cpp" "src/CMakeFiles/fz_baselines.dir/baselines/mgard.cpp.o" "gcc" "src/CMakeFiles/fz_baselines.dir/baselines/mgard.cpp.o.d"
  "/root/repo/src/baselines/szomp.cpp" "src/CMakeFiles/fz_baselines.dir/baselines/szomp.cpp.o" "gcc" "src/CMakeFiles/fz_baselines.dir/baselines/szomp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fz_substrate.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fz_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fz_cudasim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fz_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
