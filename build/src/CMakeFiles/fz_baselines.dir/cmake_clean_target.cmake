file(REMOVE_RECURSE
  "libfz_baselines.a"
)
