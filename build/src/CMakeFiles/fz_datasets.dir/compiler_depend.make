# Empty compiler generated dependencies file for fz_datasets.
# This may be replaced when dependencies are built.
