file(REMOVE_RECURSE
  "CMakeFiles/fz_datasets.dir/datasets/field.cpp.o"
  "CMakeFiles/fz_datasets.dir/datasets/field.cpp.o.d"
  "CMakeFiles/fz_datasets.dir/datasets/generators.cpp.o"
  "CMakeFiles/fz_datasets.dir/datasets/generators.cpp.o.d"
  "CMakeFiles/fz_datasets.dir/datasets/loader.cpp.o"
  "CMakeFiles/fz_datasets.dir/datasets/loader.cpp.o.d"
  "CMakeFiles/fz_datasets.dir/datasets/transforms.cpp.o"
  "CMakeFiles/fz_datasets.dir/datasets/transforms.cpp.o.d"
  "libfz_datasets.a"
  "libfz_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fz_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
