
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datasets/field.cpp" "src/CMakeFiles/fz_datasets.dir/datasets/field.cpp.o" "gcc" "src/CMakeFiles/fz_datasets.dir/datasets/field.cpp.o.d"
  "/root/repo/src/datasets/generators.cpp" "src/CMakeFiles/fz_datasets.dir/datasets/generators.cpp.o" "gcc" "src/CMakeFiles/fz_datasets.dir/datasets/generators.cpp.o.d"
  "/root/repo/src/datasets/loader.cpp" "src/CMakeFiles/fz_datasets.dir/datasets/loader.cpp.o" "gcc" "src/CMakeFiles/fz_datasets.dir/datasets/loader.cpp.o.d"
  "/root/repo/src/datasets/transforms.cpp" "src/CMakeFiles/fz_datasets.dir/datasets/transforms.cpp.o" "gcc" "src/CMakeFiles/fz_datasets.dir/datasets/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fz_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
