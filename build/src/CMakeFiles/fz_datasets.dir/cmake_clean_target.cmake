file(REMOVE_RECURSE
  "libfz_datasets.a"
)
