file(REMOVE_RECURSE
  "CMakeFiles/fz_common.dir/common/buffer.cpp.o"
  "CMakeFiles/fz_common.dir/common/buffer.cpp.o.d"
  "CMakeFiles/fz_common.dir/common/error.cpp.o"
  "CMakeFiles/fz_common.dir/common/error.cpp.o.d"
  "CMakeFiles/fz_common.dir/common/timer.cpp.o"
  "CMakeFiles/fz_common.dir/common/timer.cpp.o.d"
  "libfz_common.a"
  "libfz_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fz_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
