# Empty dependencies file for fz_common.
# This may be replaced when dependencies are built.
