file(REMOVE_RECURSE
  "libfz_common.a"
)
