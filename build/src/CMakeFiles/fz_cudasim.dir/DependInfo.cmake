
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cudasim/cost_sheet.cpp" "src/CMakeFiles/fz_cudasim.dir/cudasim/cost_sheet.cpp.o" "gcc" "src/CMakeFiles/fz_cudasim.dir/cudasim/cost_sheet.cpp.o.d"
  "/root/repo/src/cudasim/device_model.cpp" "src/CMakeFiles/fz_cudasim.dir/cudasim/device_model.cpp.o" "gcc" "src/CMakeFiles/fz_cudasim.dir/cudasim/device_model.cpp.o.d"
  "/root/repo/src/cudasim/launch.cpp" "src/CMakeFiles/fz_cudasim.dir/cudasim/launch.cpp.o" "gcc" "src/CMakeFiles/fz_cudasim.dir/cudasim/launch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fz_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
