# Empty dependencies file for fz_cudasim.
# This may be replaced when dependencies are built.
