file(REMOVE_RECURSE
  "CMakeFiles/fz_cudasim.dir/cudasim/cost_sheet.cpp.o"
  "CMakeFiles/fz_cudasim.dir/cudasim/cost_sheet.cpp.o.d"
  "CMakeFiles/fz_cudasim.dir/cudasim/device_model.cpp.o"
  "CMakeFiles/fz_cudasim.dir/cudasim/device_model.cpp.o.d"
  "CMakeFiles/fz_cudasim.dir/cudasim/launch.cpp.o"
  "CMakeFiles/fz_cudasim.dir/cudasim/launch.cpp.o.d"
  "libfz_cudasim.a"
  "libfz_cudasim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fz_cudasim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
