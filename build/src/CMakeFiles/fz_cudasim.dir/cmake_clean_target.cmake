file(REMOVE_RECURSE
  "libfz_cudasim.a"
)
