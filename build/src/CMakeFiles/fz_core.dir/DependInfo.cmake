
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bitshuffle.cpp" "src/CMakeFiles/fz_core.dir/core/bitshuffle.cpp.o" "gcc" "src/CMakeFiles/fz_core.dir/core/bitshuffle.cpp.o.d"
  "/root/repo/src/core/chunked.cpp" "src/CMakeFiles/fz_core.dir/core/chunked.cpp.o" "gcc" "src/CMakeFiles/fz_core.dir/core/chunked.cpp.o.d"
  "/root/repo/src/core/costs.cpp" "src/CMakeFiles/fz_core.dir/core/costs.cpp.o" "gcc" "src/CMakeFiles/fz_core.dir/core/costs.cpp.o.d"
  "/root/repo/src/core/encoder.cpp" "src/CMakeFiles/fz_core.dir/core/encoder.cpp.o" "gcc" "src/CMakeFiles/fz_core.dir/core/encoder.cpp.o.d"
  "/root/repo/src/core/kernels_sim.cpp" "src/CMakeFiles/fz_core.dir/core/kernels_sim.cpp.o" "gcc" "src/CMakeFiles/fz_core.dir/core/kernels_sim.cpp.o.d"
  "/root/repo/src/core/lorenzo.cpp" "src/CMakeFiles/fz_core.dir/core/lorenzo.cpp.o" "gcc" "src/CMakeFiles/fz_core.dir/core/lorenzo.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/CMakeFiles/fz_core.dir/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/fz_core.dir/core/pipeline.cpp.o.d"
  "/root/repo/src/core/quantizer.cpp" "src/CMakeFiles/fz_core.dir/core/quantizer.cpp.o" "gcc" "src/CMakeFiles/fz_core.dir/core/quantizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fz_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fz_substrate.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fz_cudasim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
