file(REMOVE_RECURSE
  "CMakeFiles/fz_core.dir/core/bitshuffle.cpp.o"
  "CMakeFiles/fz_core.dir/core/bitshuffle.cpp.o.d"
  "CMakeFiles/fz_core.dir/core/chunked.cpp.o"
  "CMakeFiles/fz_core.dir/core/chunked.cpp.o.d"
  "CMakeFiles/fz_core.dir/core/costs.cpp.o"
  "CMakeFiles/fz_core.dir/core/costs.cpp.o.d"
  "CMakeFiles/fz_core.dir/core/encoder.cpp.o"
  "CMakeFiles/fz_core.dir/core/encoder.cpp.o.d"
  "CMakeFiles/fz_core.dir/core/kernels_sim.cpp.o"
  "CMakeFiles/fz_core.dir/core/kernels_sim.cpp.o.d"
  "CMakeFiles/fz_core.dir/core/lorenzo.cpp.o"
  "CMakeFiles/fz_core.dir/core/lorenzo.cpp.o.d"
  "CMakeFiles/fz_core.dir/core/pipeline.cpp.o"
  "CMakeFiles/fz_core.dir/core/pipeline.cpp.o.d"
  "CMakeFiles/fz_core.dir/core/quantizer.cpp.o"
  "CMakeFiles/fz_core.dir/core/quantizer.cpp.o.d"
  "libfz_core.a"
  "libfz_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fz_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
