# Empty dependencies file for fz_core.
# This may be replaced when dependencies are built.
