file(REMOVE_RECURSE
  "libfz_core.a"
)
