file(REMOVE_RECURSE
  "libfz_harness.a"
)
