# Empty dependencies file for fz_harness.
# This may be replaced when dependencies are built.
