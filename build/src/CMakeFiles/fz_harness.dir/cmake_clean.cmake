file(REMOVE_RECURSE
  "CMakeFiles/fz_harness.dir/harness/experiment.cpp.o"
  "CMakeFiles/fz_harness.dir/harness/experiment.cpp.o.d"
  "CMakeFiles/fz_harness.dir/harness/tables.cpp.o"
  "CMakeFiles/fz_harness.dir/harness/tables.cpp.o.d"
  "libfz_harness.a"
  "libfz_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fz_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
