// Invariants of the analytical device cost model — the part of the
// reproduction that stands in for GPU wall clocks (DESIGN.md §1), so its
// structure is tested like any other component.
#include <gtest/gtest.h>

#include "core/costs.hpp"
#include "core/pipeline.hpp"
#include "cudasim/device_model.hpp"
#include "datasets/generators.hpp"

namespace fz {
namespace {

FzStats stats_for(size_t count, double nz_fraction, size_t outliers = 0) {
  FzStats st;
  st.count = count;
  st.input_bytes = count * 4;
  st.total_blocks = count * 2 / 16;  // u16 codes, 16-byte blocks
  st.nonzero_blocks =
      static_cast<size_t>(static_cast<double>(st.total_blocks) * nz_fraction);
  st.outliers = outliers;
  return st;
}

TEST(CostModel, PipelineHasThreeStagesFusedFourSplit) {
  const FzStats st = stats_for(1 << 20, 0.3);
  FzParams fused, split;
  split.fused_bitshuffle_mark = false;
  EXPECT_EQ(fz_compression_costs(st, fused).size(), 3u);
  EXPECT_EQ(fz_compression_costs(st, split).size(), 4u);
}

TEST(CostModel, CostsScaleLinearlyWithSize) {
  FzParams params;
  const auto small = fz_compression_costs(stats_for(1 << 18, 0.3), params);
  const auto big = fz_compression_costs(stats_for(1 << 22, 0.3), params);
  for (size_t i = 0; i < small.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(big[i].global_bytes()) /
                    static_cast<double>(small[i].global_bytes()),
                16.0, 0.5)
        << small[i].name;
    EXPECT_EQ(big[i].kernel_launches, small[i].kernel_launches);
  }
}

TEST(CostModel, V1WritesMoreThanV2) {
  // The dense outlier array + shift writes are the 1.7x story (§4.5).
  const FzStats st = stats_for(1 << 20, 0.3, /*outliers=*/1000);
  FzParams v1, v2;
  v1.quant = QuantVersion::V1Original;
  v1.fused_host_graph = false;
  EXPECT_GT(fz_compression_costs(st, v1)[0].global_bytes(),
            fz_compression_costs(st, v2)[0].global_bytes());
}

TEST(CostModel, FusionSavesOneGlobalRoundTrip) {
  const FzStats st = stats_for(1 << 20, 0.3);
  FzParams fused, split;
  split.fused_bitshuffle_mark = false;
  u64 fused_bytes = 0, split_bytes = 0, fused_launches = 0, split_launches = 0;
  for (const auto& c : fz_compression_costs(st, fused)) {
    fused_bytes += c.global_bytes();
    fused_launches += c.kernel_launches;
  }
  for (const auto& c : fz_compression_costs(st, split)) {
    split_bytes += c.global_bytes();
    split_launches += c.kernel_launches;
  }
  // The split mark kernel re-reads the whole shuffled array.
  EXPECT_EQ(split_bytes - fused_bytes, (st.count / 2) * 4);
  EXPECT_EQ(split_launches, fused_launches + 1);
}

TEST(CostModel, EncodeCostTracksNonzeroBlocks) {
  FzParams params;
  const auto sparse = fz_compression_costs(stats_for(1 << 20, 0.05), params);
  const auto dense = fz_compression_costs(stats_for(1 << 20, 0.95), params);
  EXPECT_GT(dense.back().global_bytes(), sparse.back().global_bytes());
}

TEST(CostModel, DecompressionMirrorsCompression) {
  const FzStats st = stats_for(1 << 20, 0.3);
  FzParams params;
  const auto comp = fz_compression_costs(st, params);
  const auto decomp = fz_decompression_costs(st, params);
  ASSERT_EQ(comp.size(), decomp.size());
  u64 cb = 0, db = 0;
  for (const auto& c : comp) cb += c.global_bytes();
  for (const auto& c : decomp) db += c.global_bytes();
  EXPECT_EQ(cb, db);  // symmetric traffic => symmetric throughput (§4.4)
  EXPECT_EQ(decomp.front().name.rfind("inv-", 0), 0u);
}

TEST(CostModel, FullyFusedBeatsPipelineOnTrafficAndLaunches) {
  const FzStats st = stats_for(1 << 22, 0.3);
  FzParams params;
  u64 pipeline_bytes = 0, pipeline_launches = 0;
  for (const auto& c : fz_compression_costs(st, params)) {
    pipeline_bytes += c.global_bytes();
    pipeline_launches += c.kernel_launches;
  }
  const auto fused = fz_fully_fused_cost(st);
  EXPECT_LT(fused.global_bytes(), pipeline_bytes / 2);
  EXPECT_EQ(fused.kernel_launches, 1u);
  EXPECT_LT(fused.kernel_launches, pipeline_launches);

  const cudasim::DeviceModel a100(cudasim::DeviceSpec::a100());
  double pipeline_s = 0;
  for (const auto& c : fz_compression_costs(st, params))
    pipeline_s += a100.seconds(c);
  EXPECT_LT(a100.seconds(fused), pipeline_s);
}

TEST(CostModel, RealRunStatsFeedTheModelConsistently) {
  // End-to-end: stats from a real compression produce stage costs whose
  // DRAM traffic is within sane physical bounds.
  const Field f = generate_field(Dataset::Hurricane,
                                 scaled_dims(Dataset::Hurricane, 0.1), 5);
  FzParams params;
  params.eb = ErrorBound::relative(1e-3);
  const FzCompressed c = fz_compress(f.values(), f.dims, params);
  u64 total = 0;
  for (const auto& k : c.stage_costs) total += k.global_bytes();
  // Must at least read the input once and write the codes once...
  EXPECT_GE(total, f.bytes() + f.count() * 2);
  // ...and cannot exceed a handful of full-array round trips.
  EXPECT_LE(total, 10 * f.bytes());
}

TEST(CostModel, FusedTileSheetDropsExactlyTheCodeRoundTrip) {
  // The fused tile pipeline (PR3) merges the pred-quant and
  // bitshuffle-mark sheets into one launch; the DRAM bytes it saves are
  // precisely the u16 code array's write + padded re-read, with the
  // arithmetic (thread ops, shared traffic) unchanged.
  const FzStats st = stats_for((1 << 20) + 12345, 0.3);
  FzParams params;  // V2, fused bitshuffle-mark
  const auto split = fz_compression_costs(st, params);
  const cudasim::CostSheet fused = fz_fused_tile_cost(st);

  const u64 split_bytes = split[0].global_bytes() + split[1].global_bytes();
  EXPECT_EQ(split_bytes - fused.global_bytes(), fz_fusion_traffic_saved(st));
  EXPECT_EQ(fused.thread_ops, split[0].thread_ops + split[1].thread_ops);
  EXPECT_EQ(fused.shared_transactions,
            split[0].shared_transactions + split[1].shared_transactions);
  EXPECT_EQ(fused.kernel_launches, 1u);
  EXPECT_LT(fused.global_bytes(), split_bytes);

  // On the modeled device the fused stage is strictly faster.
  const cudasim::DeviceModel dev{cudasim::DeviceSpec::a100()};
  EXPECT_LT(dev.seconds(fused),
            dev.seconds(split[0]) + dev.seconds(split[1]));
}

TEST(CostModel, HaloRecomputeTermScalesWithStripsAndStencilReach) {
  // PR5's strip scheme pays (strips - 1) halo re-prequantizations whose
  // size is the Lorenzo stencil's linear reach: 1 element in 1-D, a row
  // plus one in 2-D, a plane plus a row plus one in 3-D.
  EXPECT_EQ(fz_halo_recompute_elems(Dims{1 << 20}, 1), 0u);
  EXPECT_EQ(fz_halo_recompute_elems(Dims{1 << 20}, 4), 3u);
  EXPECT_EQ(fz_halo_recompute_elems(Dims{512, 2048}, 4), 3u * 513);
  EXPECT_EQ(fz_halo_recompute_elems(Dims{128, 64, 128}, 8),
            7u * (128 * 64 + 128 + 1));

  const FzStats st = stats_for((1 << 20) + 12345, 0.3);
  const Dims dims{512, 2048};
  const cudasim::CostSheet serial = fz_fused_tile_cost(st);
  const cudasim::CostSheet one = fz_fused_parallel_cost(st, dims, 1);
  // A single strip recomputes nothing: identical resource counts.
  EXPECT_EQ(one.global_bytes(), serial.global_bytes());
  EXPECT_EQ(one.thread_ops, serial.thread_ops);

  // More strips → strictly more halo input reads and quantization ops,
  // monotonically, and by exactly the halo term.
  u64 prev_bytes = one.global_bytes();
  for (const size_t strips : {size_t{2}, size_t{4}, size_t{16}}) {
    const cudasim::CostSheet c = fz_fused_parallel_cost(st, dims, strips);
    const u64 halo = fz_halo_recompute_elems(dims, strips);
    EXPECT_EQ(c.global_bytes_read,
              serial.global_bytes_read + halo * sizeof(f32));
    EXPECT_GT(c.global_bytes(), prev_bytes);
    EXPECT_GT(c.thread_ops, serial.thread_ops);
    prev_bytes = c.global_bytes();
  }

  // The overhead stays a sliver of the stage: even at 16 strips the halo
  // reads are under 1% of the input on this shape.
  const cudasim::CostSheet wide = fz_fused_parallel_cost(st, dims, 16);
  EXPECT_LT(wide.global_bytes_read - serial.global_bytes_read,
            serial.global_bytes_read / 100);
}

}  // namespace
}  // namespace fz
