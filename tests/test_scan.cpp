#include "common/error.hpp"
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "substrate/scan.hpp"

namespace fz {
namespace {

std::vector<u32> random_input(size_t n, u64 seed, u32 max_v = 4) {
  Rng rng(seed);
  std::vector<u32> v(n);
  for (auto& x : v) x = static_cast<u32>(rng.below(max_v));
  return v;
}

class ScanSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(ScanSizes, ParallelMatchesSequential) {
  const size_t n = GetParam();
  const auto in = random_input(n, 7 + n);
  std::vector<u32> ref(n), par(n);
  scan_exclusive_sequential(in, ref);
  scan_exclusive_parallel(in, par);
  EXPECT_EQ(par, ref);
}

TEST_P(ScanSizes, DeviceModelMatchesSequential) {
  const size_t n = GetParam();
  const auto in = random_input(n, 90 + n);
  std::vector<u32> ref(n), dev(n);
  scan_exclusive_sequential(in, ref);
  const auto cost = scan_exclusive_device_model(in, dev);
  EXPECT_EQ(dev, ref);
  EXPECT_EQ(cost.kernel_launches, 2u);
  if (n > 0) {
    EXPECT_GT(cost.global_bytes(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanSizes,
                         ::testing::Values(0, 1, 2, 3, 63, 64, 65, 4095, 4096,
                                           4097, 100000, 1 << 20));

TEST(Scan, ExclusiveSemantics) {
  const std::vector<u32> in{5, 0, 2, 1};
  std::vector<u32> out(4);
  scan_exclusive_sequential(in, out);
  EXPECT_EQ(out, (std::vector<u32>{0, 5, 5, 7}));
}

TEST(Scan, AllOnesGivesIota) {
  const std::vector<u32> in(1000, 1);
  std::vector<u32> out(1000);
  scan_exclusive_parallel(in, out);
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i);
}

TEST(Scan, SizeMismatchThrows) {
  const std::vector<u32> in(4, 1);
  std::vector<u32> out(3);
  EXPECT_THROW(scan_exclusive_sequential(in, out), Error);
}

}  // namespace
}  // namespace fz
