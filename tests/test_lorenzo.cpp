#include "common/error.hpp"
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/lorenzo.hpp"

namespace fz {
namespace {

std::vector<i64> random_values(size_t n, u64 seed, i64 amp = 1000) {
  Rng rng(seed);
  std::vector<i64> v(n);
  for (auto& x : v)
    x = static_cast<i64>(rng.below(static_cast<u64>(2 * amp))) - amp;
  return v;
}

class LorenzoDims : public ::testing::TestWithParam<Dims> {};

TEST_P(LorenzoDims, ForwardInverseIsIdentity) {
  const Dims dims = GetParam();
  const auto p = random_values(dims.count(), 42 + dims.count());
  std::vector<i64> delta(p.size()), back(p.size());
  lorenzo_forward(p, dims, delta);
  lorenzo_inverse(delta, dims, back);
  EXPECT_EQ(back, p);
}

TEST_P(LorenzoDims, InPlaceMatchesOutOfPlace) {
  const Dims dims = GetParam();
  const auto p = random_values(dims.count(), 77 + dims.count());
  std::vector<i64> out(p.size());
  lorenzo_forward(p, dims, out);
  std::vector<i64> inplace = p;
  lorenzo_forward(inplace, dims, inplace);
  EXPECT_EQ(inplace, out);

  std::vector<i64> inv_ref(p.size());
  lorenzo_inverse(out, dims, inv_ref);
  lorenzo_inverse(inplace, dims, inplace);
  EXPECT_EQ(inplace, inv_ref);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LorenzoDims,
    ::testing::Values(Dims{1}, Dims{2}, Dims{17}, Dims{4096}, Dims{1, 1},
                      Dims{5, 7}, Dims{64, 64}, Dims{33, 1}, Dims{1, 33},
                      Dims{3, 4, 5}, Dims{16, 16, 16}, Dims{31, 7, 3},
                      Dims{1, 1, 9}));

TEST(Lorenzo, ConstantDataHasSparseResiduals) {
  // A constant field: only the very first element carries the value; the
  // rest must be zero — the property the whole pipeline exploits.
  const Dims dims{16, 16, 16};
  std::vector<i64> p(dims.count(), 123);
  std::vector<i64> delta(p.size());
  lorenzo_forward(p, dims, delta);
  EXPECT_EQ(delta[0], 123);
  for (size_t i = 1; i < delta.size(); ++i) EXPECT_EQ(delta[i], 0) << i;
}

TEST(Lorenzo, LinearRampIn1DIsConstantResidual) {
  const Dims dims{100};
  std::vector<i64> p(100);
  for (size_t i = 0; i < 100; ++i) p[i] = static_cast<i64>(3 * i);
  std::vector<i64> delta(100);
  lorenzo_forward(p, dims, delta);
  EXPECT_EQ(delta[0], 0);
  for (size_t i = 1; i < 100; ++i) EXPECT_EQ(delta[i], 3);
}

TEST(Lorenzo, BilinearSurfaceIn2DVanishes) {
  // f(x,y) = a + bx + cy (+ dxy) is exactly predicted by the order-1
  // Lorenzo stencil away from the boundary.
  const Dims dims{32, 32};
  std::vector<i64> p(dims.count());
  for (size_t y = 0; y < 32; ++y)
    for (size_t x = 0; x < 32; ++x)
      p[dims.linear(x, y)] = static_cast<i64>(7 + 2 * x + 5 * y + 3 * x * y);
  std::vector<i64> delta(p.size());
  lorenzo_forward(p, dims, delta);
  for (size_t y = 1; y < 32; ++y)
    for (size_t x = 1; x < 32; ++x)
      EXPECT_EQ(delta[dims.linear(x, y)], 3) << x << "," << y;  // d·1 term
}

TEST(Lorenzo, TrilinearFieldIn3DVanishesInInterior) {
  const Dims dims{8, 8, 8};
  std::vector<i64> p(dims.count());
  for (size_t z = 0; z < 8; ++z)
    for (size_t y = 0; y < 8; ++y)
      for (size_t x = 0; x < 8; ++x)
        p[dims.linear(x, y, z)] = static_cast<i64>(1 + x + 2 * y + 4 * z);
  std::vector<i64> delta(p.size());
  lorenzo_forward(p, dims, delta);
  for (size_t z = 1; z < 8; ++z)
    for (size_t y = 1; y < 8; ++y)
      for (size_t x = 1; x < 8; ++x)
        EXPECT_EQ(delta[dims.linear(x, y, z)], 0);
}

TEST(Lorenzo, SmoothDataYieldsSmallResiduals) {
  // Smooth sinusoid: residual magnitudes must be far below data magnitude.
  const Dims dims{64, 64};
  std::vector<i64> p(dims.count());
  for (size_t y = 0; y < 64; ++y)
    for (size_t x = 0; x < 64; ++x)
      p[dims.linear(x, y)] = static_cast<i64>(
          10000 * std::sin(0.1 * static_cast<double>(x)) *
          std::cos(0.07 * static_cast<double>(y)));
  std::vector<i64> delta(p.size());
  lorenzo_forward(p, dims, delta);
  i64 max_delta = 0;
  for (size_t y = 1; y < 64; ++y)
    for (size_t x = 1; x < 64; ++x)
      max_delta = std::max(max_delta, std::abs(delta[dims.linear(x, y)]));
  EXPECT_LT(max_delta, 100);  // < 1% of the 10000 amplitude
}

TEST(Lorenzo, SizeMismatchThrows) {
  std::vector<i64> p(10), d(9);
  EXPECT_THROW(lorenzo_forward(p, Dims{10}, d), Error);
}

TEST(Lorenzo, ChunkedInverseScansAreScheduleIndependent) {
  // PR5 decompression: the inverse prefix scans run chunk-local with a
  // boundary-offset propagation pass, so the reconstruction is
  // byte-identical for every worker count.  Integer adds are associative —
  // the chunk partition can never show in the output.  Shapes chosen so
  // the chunked paths actually engage: a long 1-D array (>= 2^15 elements
  // per chunk) and a single tall 2-D plane (>= 32 rows per chunk).
  for (const Dims dims : {Dims{1 << 18}, Dims{(1 << 18) + 77}, Dims{48, 512},
                          Dims{7, 300}}) {
    const auto p = random_values(dims.count(), 99 + dims.count());
    std::vector<i64> delta(p.size());
    lorenzo_forward(p, dims, delta);

    std::vector<i64> serial(p.size());
    lorenzo_inverse(delta, dims, serial, /*workers=*/1);
    EXPECT_EQ(serial, p);

    for (const size_t workers : {size_t{0}, size_t{2}, size_t{3}, size_t{8},
                                 size_t{17}}) {
      std::vector<i64> out(p.size());
      lorenzo_inverse(delta, dims, out, workers);
      ASSERT_EQ(out, serial) << "dims " << dims.x << "x" << dims.y
                             << " workers " << workers;
      // In place too, as the decompression stage runs it.
      std::vector<i64> inplace = delta;
      lorenzo_inverse(inplace, dims, inplace, workers);
      ASSERT_EQ(inplace, serial) << "in-place workers " << workers;
    }
  }
}

}  // namespace
}  // namespace fz
