#include "common/bits.hpp"
#include "common/error.hpp"
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "core/kernels_simd.hpp"
#include "core/quantizer.hpp"
#include "datasets/generators.hpp"

namespace fz {
namespace {

TEST(Prequantize, ErrorBoundInvariant) {
  Rng rng(1);
  std::vector<f32> data(10000);
  for (auto& v : data) v = static_cast<f32>(rng.uniform(-100.0, 100.0));
  // The reconstruction is rounded to f32, so the achievable bound is eb
  // plus half an ulp at the data magnitude (~100 here) — the same caveat
  // real SZ-family compressors carry for bounds near f32 precision.
  const double half_ulp = 100.0 * 6e-8;
  for (const double eb : {1.0, 0.1, 1e-3, 1e-5}) {
    std::vector<i64> p(data.size());
    prequantize(data, eb, p);
    std::vector<f32> back(data.size());
    dequantize(p, eb, back);
    for (size_t i = 0; i < data.size(); ++i) {
      EXPECT_LE(std::fabs(static_cast<double>(data[i]) - back[i]),
                eb * (1 + 1e-6) + half_ulp)
          << "eb=" << eb << " i=" << i;
    }
  }
}

TEST(Prequantize, RoundsToNearest) {
  const std::vector<f32> data{0.0f, 0.9f, 1.1f, -0.9f, -1.1f, 2.0f};
  std::vector<i64> p(data.size());
  prequantize(data, 0.5, p);  // 2*eb = 1.0
  EXPECT_EQ(p, (std::vector<i64>{0, 1, 1, -1, -1, 2}));
}

TEST(Prequantize, RejectsNonPositiveBound) {
  std::vector<f32> data{1.0f};
  std::vector<i64> p(1);
  EXPECT_THROW(prequantize(data, 0.0, p), Error);
  EXPECT_THROW(prequantize(data, -1.0, p), Error);
}

TEST(QuantV2, RoundTripInRange) {
  Rng rng(2);
  std::vector<i64> deltas(50000);
  for (auto& d : deltas)
    d = static_cast<i64>(rng.below(65534)) - 32767;  // full representable range
  const QuantV2Result q = quant_encode_v2(deltas);
  EXPECT_EQ(q.saturated, 0u);
  std::vector<i64> back(deltas.size());
  quant_decode_v2(q.codes, back);
  EXPECT_EQ(back, deltas);
}

TEST(QuantV2, SaturationIsCountedAndClamped) {
  const std::vector<i64> deltas{0, 32767, 32768, -32768, 1000000, -1000000};
  const QuantV2Result q = quant_encode_v2(deltas);
  EXPECT_EQ(q.saturated, 4u);
  std::vector<i64> back(deltas.size());
  quant_decode_v2(q.codes, back);
  EXPECT_EQ(back[0], 0);
  EXPECT_EQ(back[1], 32767);
  EXPECT_EQ(back[2], 32767);
  EXPECT_EQ(back[3], -32767);
  EXPECT_EQ(back[4], 32767);
  EXPECT_EQ(back[5], -32767);
}

TEST(QuantV2, ZeroMapsToZeroCode) {
  const std::vector<i64> deltas{0, 0, 0};
  const QuantV2Result q = quant_encode_v2(deltas);
  for (const u16 c : q.codes) EXPECT_EQ(c, 0);
}

TEST(QuantV2, SmallMagnitudesUseLowBitsOnly) {
  // The bitshuffle-friendliness property: |δ| < 2^k touches only the k low
  // bit planes plus the sign plane.
  const std::vector<i64> deltas{3, -3, 7, -7};
  const QuantV2Result q = quant_encode_v2(deltas);
  for (const u16 c : q.codes) EXPECT_EQ(c & 0x7ff8 & ~kSignBit16, 0);
}

TEST(QuantV1, RoundTripWithOutliers) {
  Rng rng(3);
  std::vector<i64> deltas(20000);
  for (size_t i = 0; i < deltas.size(); ++i) {
    deltas[i] = i % 97 == 0 ? static_cast<i64>(rng.below(100000)) + 600
                            : static_cast<i64>(rng.below(1000)) - 500;
  }
  const QuantV1Result q = quant_encode_v1(deltas, 512);
  EXPECT_GT(q.outliers.size(), 0u);
  std::vector<i64> back(deltas.size());
  quant_decode_v1(q, back);
  EXPECT_EQ(back, deltas);
}

TEST(QuantV1, CodesAreShiftedIntoRange) {
  const std::vector<i64> deltas{-511, 0, 511};
  const QuantV1Result q = quant_encode_v1(deltas, 512);
  EXPECT_EQ(q.outliers.size(), 0u);
  EXPECT_EQ(q.codes[0], 1u);
  EXPECT_EQ(q.codes[1], 512u);
  EXPECT_EQ(q.codes[2], 1023u);
}

TEST(QuantV1, BoundaryValuesAreOutliers) {
  const std::vector<i64> deltas{-512, 512, 513, -513};
  const QuantV1Result q = quant_encode_v1(deltas, 512);
  EXPECT_EQ(q.outliers.size(), 4u);
  for (const u16 c : q.codes) EXPECT_EQ(c, 0u);
  std::vector<i64> back(deltas.size());
  quant_decode_v1(q, back);
  EXPECT_EQ(back, deltas);
}

TEST(QuantV1, OutliersSortedByIndex) {
  std::vector<i64> deltas(10000, 0);
  deltas[9000] = 100000;
  deltas[50] = -100000;
  deltas[4000] = 99999;
  const QuantV1Result q = quant_encode_v1(deltas, 512);
  ASSERT_EQ(q.outliers.size(), 3u);
  EXPECT_EQ(q.outliers[0].index, 50u);
  EXPECT_EQ(q.outliers[1].index, 4000u);
  EXPECT_EQ(q.outliers[2].index, 9000u);
}

TEST(QuantV1, RejectsBadRadius) {
  std::vector<i64> d{0};
  EXPECT_THROW(quant_encode_v1(d, 1), Error);
  EXPECT_THROW(quant_encode_v1(d, 1 << 15), Error);
}

class DualQuantProperty : public ::testing::TestWithParam<double> {};

TEST_P(DualQuantProperty, EndToEndBoundThroughBothVersions) {
  // prequant -> (v1|v2) -> decode -> dequant stays within eb.
  const double eb = GetParam();
  Rng rng(11);
  std::vector<f32> data(5000);
  f32 acc = 0;
  for (auto& v : data) {
    acc += static_cast<f32>(rng.normal(0.0, 0.3));
    v = acc;  // random walk: mostly small deltas, occasional big ones
  }
  std::vector<i64> p(data.size());
  prequantize(data, eb, p);
  // First differences stand in for Lorenzo residuals: small magnitudes.
  std::vector<i64> deltas(p.size());
  for (size_t i = p.size(); i-- > 1;) deltas[i] = p[i] - p[i - 1];
  deltas[0] = p[0] % 1000;  // keep the seed value representable too

  {
    const QuantV2Result q = quant_encode_v2(deltas);
    ASSERT_EQ(q.saturated, 0u);  // walk steps are far below 2^15 * 2eb
    std::vector<i64> back(deltas.size());
    quant_decode_v2(q.codes, back);
    EXPECT_EQ(back, deltas);
  }
  {
    const QuantV1Result q = quant_encode_v1(deltas, 512);
    std::vector<i64> back(deltas.size());
    quant_decode_v1(q, back);
    EXPECT_EQ(back, deltas);
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, DualQuantProperty,
                         ::testing::Values(1e-1, 1e-2, 1e-3));

TEST(QuantizerTest, F32FastPathMatchesExactOnTier1) {
  // ISSUE PR3 satellite: the float-multiply fast path must produce the
  // exact same quantization codes as the double path on the tier-1
  // benchmark datasets (its margin test guarantees this in general; this
  // pins it on the data we actually ship results for).
  for (const Field& f : benchmark_suite(0.08, 42)) {
    const auto [lo, hi] = std::minmax_element(f.data.begin(), f.data.end());
    const double range = static_cast<double>(*hi) - static_cast<double>(*lo);
    for (const double rel : {1e-2, 1e-4}) {
      const double eb = rel * range;
      std::vector<i64> want(f.data.size()), got(f.data.size());
      prequantize(f.values(), eb, want);
      for (const SimdLevel level :
           {SimdLevel::Scalar, resolve_simd(SimdDispatch::Auto)}) {
        std::fill(got.begin(), got.end(), -1);
        prequantize_f32fast(f.values(), eb, got, level);
        ASSERT_EQ(want, got) << f.dataset << "/" << f.name << " rel=" << rel
                             << " " << simd_level_name(level);
      }
    }
  }
}

TEST(QuantizerTest, F32FastDequantHonoursBound) {
  // Reconstruction via float(p) * float(2eb): error at most the bound plus
  // f32 representation noise of the value itself.
  Rng rng(7);
  const double eb = 1e-3;
  std::vector<f32> data(10000);
  for (auto& v : data) v = static_cast<f32>(rng.uniform(-500.0, 500.0));
  std::vector<i64> p(data.size());
  prequantize(std::span<const f32>{data}, eb, p);
  std::vector<f32> rec(data.size());
  dequantize_f32fast(p, eb, rec);
  for (size_t i = 0; i < data.size(); ++i)
    ASSERT_NEAR(rec[i], data[i], eb + std::fabs(data[i]) * 0x1p-22) << i;
}

}  // namespace
}  // namespace fz
