#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/chunked.hpp"
#include "datasets/generators.hpp"
#include "metrics/metrics.hpp"

namespace fz {
namespace {

Field make_smooth(Dims dims, u64 seed) {
  Field f;
  f.dataset = "synthetic";
  f.name = "smooth";
  f.dims = dims;
  f.data.resize(dims.count());
  Rng rng(seed);
  const double fx = rng.uniform(0.02, 0.1);
  for (size_t z = 0; z < dims.z; ++z)
    for (size_t y = 0; y < dims.y; ++y)
      for (size_t x = 0; x < dims.x; ++x)
        f.data[dims.linear(x, y, z)] = static_cast<f32>(
            50.0 * std::sin(fx * static_cast<double>(x + 2 * y + 3 * z)));
  return f;
}

struct ChunkCase {
  Dims dims;
  size_t chunks;
};

class Chunked : public ::testing::TestWithParam<ChunkCase> {};

TEST_P(Chunked, RoundTripWithinBound) {
  const auto [dims, chunks] = GetParam();
  const Field f = make_smooth(dims, 3 + dims.count());
  ChunkedParams params;
  params.base.eb = ErrorBound::relative(1e-3);
  params.num_chunks = chunks;
  const ChunkedCompressed c = fz_compress_chunked(f.values(), f.dims, params);
  EXPECT_LE(c.num_chunks, chunks);
  EXPECT_GE(c.num_chunks, 1u);
  const FzDecompressed d = fz_decompress_chunked(c.bytes);
  EXPECT_EQ(d.dims, f.dims);
  EXPECT_TRUE(error_bounded(f.values(), d.data, c.stats.abs_eb));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Chunked,
    ::testing::Values(ChunkCase{Dims{10000}, 4}, ChunkCase{Dims{10000}, 1},
                      ChunkCase{Dims{100}, 16},  // more chunks than sensible
                      ChunkCase{Dims{64, 48}, 4}, ChunkCase{Dims{24, 24, 23}, 4},
                      ChunkCase{Dims{16, 16, 3}, 8}));  // chunks > z extent

TEST(Chunked, SingleChunkMatchesUnchunkedSemantics) {
  const Field f = make_smooth(Dims{4096}, 7);
  ChunkedParams params;
  params.base.eb = ErrorBound::relative(1e-3);
  params.num_chunks = 1;
  const ChunkedCompressed c = fz_compress_chunked(f.values(), f.dims, params);
  const FzDecompressed chunked = fz_decompress_chunked(c.bytes);

  FzParams plain = params.base;
  const FzCompressed p = fz_compress(f.values(), f.dims, plain);
  const FzDecompressed direct = fz_decompress(p.bytes);
  EXPECT_EQ(chunked.data, direct.data);
}

TEST(Chunked, ChunksShareTheGlobalAbsoluteBound) {
  // A field whose chunks have very different local ranges: the bound must
  // come from the global range, not per-chunk ranges.
  Field f;
  f.dims = Dims{8192};
  f.data.resize(f.dims.count());
  for (size_t i = 0; i < f.data.size(); ++i)
    f.data[i] = i < 4096 ? static_cast<f32>(i % 7) * 0.001f   // tiny range
                         : static_cast<f32>(i % 100);         // big range
  ChunkedParams params;
  params.base.eb = ErrorBound::relative(1e-3);
  params.num_chunks = 2;
  const ChunkedCompressed c = fz_compress_chunked(f.values(), f.dims, params);
  const double global_eb = 1e-3 * f.value_range();
  EXPECT_NEAR(c.stats.abs_eb, global_eb, global_eb * 1e-9);
  const FzDecompressed d = fz_decompress_chunked(c.bytes);
  EXPECT_TRUE(error_bounded(f.values(), d.data, global_eb));
}

TEST(Chunked, RandomAccessDecompressesOneChunk) {
  const Field f = make_smooth(Dims{32, 32, 20}, 9);
  ChunkedParams params;
  params.base.eb = ErrorBound::relative(1e-3);
  params.num_chunks = 5;
  const ChunkedCompressed c = fz_compress_chunked(f.values(), f.dims, params);
  ASSERT_EQ(fz_chunk_count(c.bytes), 5u);

  size_t offset = 0;
  const FzDecompressed chunk2 = fz_decompress_chunk(c.bytes, 2, &offset);
  EXPECT_EQ(chunk2.dims.x, 32u);
  EXPECT_EQ(chunk2.dims.y, 32u);
  EXPECT_EQ(offset, 32u * 32 * 8);  // chunks 0,1 hold 4 slabs each
  // The chunk's reconstruction matches the corresponding full-field region.
  const FzDecompressed full = fz_decompress_chunked(c.bytes);
  for (size_t i = 0; i < chunk2.data.size(); ++i)
    EXPECT_EQ(chunk2.data[i], full.data[offset + i]);
}

TEST(Chunked, PerChunkCostsExposeTheParallelAxis) {
  const Field f = make_smooth(Dims{64, 64, 16}, 11);
  ChunkedParams params;
  params.base.eb = ErrorBound::relative(1e-3);
  params.num_chunks = 4;
  const ChunkedCompressed c = fz_compress_chunked(f.values(), f.dims, params);
  ASSERT_EQ(c.chunk_costs.size(), 4u);
  for (const auto& costs : c.chunk_costs) EXPECT_EQ(costs.size(), 3u);
}

TEST(Chunked, SmallChunksCostRatioButStayBounded) {
  const Field f = make_smooth(Dims{40000}, 13);
  ChunkedParams one, many;
  one.base.eb = many.base.eb = ErrorBound::relative(1e-3);
  one.num_chunks = 1;
  many.num_chunks = 64;
  const auto c1 = fz_compress_chunked(f.values(), f.dims, one);
  const auto cn = fz_compress_chunked(f.values(), f.dims, many);
  // Lorenzo restarts + per-chunk headers/padding cost ratio...
  EXPECT_LE(cn.stats.ratio(), c1.stats.ratio() * 1.001);
  // ...but not catastrophically (each chunk still holds whole tiles).
  EXPECT_GT(cn.stats.ratio(), c1.stats.ratio() * 0.2);
}

TEST(Chunked, RejectsCorruptContainer) {
  const Field f = make_smooth(Dims{4096}, 15);
  ChunkedParams params;
  params.num_chunks = 2;
  const ChunkedCompressed c = fz_compress_chunked(f.values(), f.dims, params);

  std::vector<u8> bad = c.bytes;
  bad[0] ^= 0xff;
  EXPECT_THROW(fz_decompress_chunked(bad), FormatError);

  std::vector<u8> truncated(c.bytes.begin(), c.bytes.end() - 12);
  EXPECT_THROW(fz_decompress_chunked(truncated), FormatError);

  EXPECT_THROW(fz_decompress_chunk(c.bytes, 99), FormatError);
}

}  // namespace
}  // namespace fz
